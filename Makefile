GO ?= go

.PHONY: all ci fmt-check vet build test bench bench-smoke smoke chaos clean

all: vet build test

# ci is the gate for pull requests: static checks (gofmt + vet), the
# deterministic chaos suite, the full race-enabled test suite, and a
# koshabench smoke run that fails unless the JSON output carries the
# latency-percentile fields.
ci: fmt-check vet build
	$(MAKE) chaos
	$(GO) test -race ./...
	$(MAKE) smoke

# chaos runs the deterministic fault-injection harness under the race
# detector: the scripted failure scenarios, a randomized schedule, and the
# seed-replay determinism check (see internal/chaos). Every failure message
# carries the run's seed; replay it with
#   go test -race ./internal/chaos -run <TestName> -v
# Opt into the longer randomized soak with KOSHA_CHAOS_SOAK=<runs>, pinning
# its base seed with KOSHA_CHAOS_SEED=<seed>.
chaos:
	$(GO) test -race -count=1 ./internal/chaos

smoke:
	@out=$$($(GO) run ./cmd/koshabench -exp latency -quick -format json); \
	for f in p50_ms p95_ms p99_ms mean_route_hops; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench latency JSON ok"
	@out=$$($(GO) run ./cmd/koshabench -exp sync -quick -format json); \
	for f in full_bytes delta_bytes delta_pct files_sent; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench sync JSON ok"
	@out=$$($(GO) run ./cmd/koshabench -exp stream -quick -format json); \
	for f in seq_rpcs_base seq_rpcs_stream read_rpc_ratio write_rpc_ratio seq_mbps_stream; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench stream JSON ok"

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short -race ./...

# bench runs the concurrency-scaling benchmark (sweep goroutine counts to
# see the sharded hot path scale) alongside the cache-ablation benchmark,
# the full-vs-delta replica sync comparison, and the large-file streaming
# comparison (stop-and-wait vs pipelined readahead + write-back).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallelMetadata' -cpu=1,2,4,8 -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkAblationMetadataCache' -short -benchtime=1x .
	$(GO) run ./cmd/koshabench -exp sync
	$(GO) run ./cmd/koshabench -exp stream

bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x ./...

clean:
	$(GO) clean ./...
