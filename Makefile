GO ?= go

.PHONY: all ci fmt-check vet build test bench bench-smoke smoke scale-smoke metrics-smoke chaos soak clean

all: vet build test

# ci is the gate for pull requests: static checks (gofmt + vet), the
# deterministic chaos suite, the full race-enabled test suite (which covers
# the sampler and trace-propagation tests), a koshabench smoke run that
# fails unless the JSON output carries the latency-percentile fields, and a
# /metrics exposition smoke against a live koshad.
ci: fmt-check vet build
	$(MAKE) chaos
	$(GO) test -race ./...
	$(MAKE) smoke
	$(MAKE) scale-smoke
	$(MAKE) metrics-smoke

# chaos runs the deterministic fault-injection harness under the race
# detector: the scripted failure scenarios, a randomized schedule, and the
# seed-replay determinism check (see internal/chaos). Every failure message
# carries the run's seed; replay it with
#   go test -race ./internal/chaos -run <TestName> -v
# Opt into the longer randomized soak with KOSHA_CHAOS_SOAK=<runs>, pinning
# its base seed with KOSHA_CHAOS_SEED=<seed>.
chaos:
	$(GO) test -race -count=1 ./internal/chaos

# soak is the gated slow target: the 500-node scale-out soak (internal/scale)
# replaying >= 10K Purdue-trace operations under diurnal availability churn
# with the overlay invariant oracle enforced every epoch, followed by the
# maintenance scrub soak (internal/chaos) that injects silent corruption in
# batches and requires the anti-entropy scrub to converge every batch. Each
# run's seed is logged; replay a failure with
#   KOSHA_SCALE_SOAK=1 KOSHA_SCALE_SEED=<seed> go test ./internal/scale -run TestSoakLarge -v
#   KOSHA_MAINT_SOAK=1 KOSHA_MAINT_SEED=<seed> go test ./internal/chaos -run TestMaintScrubSoak -v
soak:
	KOSHA_SCALE_SOAK=1 $(GO) test -count=1 -timeout 30m ./internal/scale -run TestSoakLarge -v
	KOSHA_MAINT_SOAK=1 $(GO) test -count=1 -timeout 30m ./internal/chaos -run TestMaintScrubSoak -v

# scale-smoke is the quick (<=100-node) scale-sweep variant wired into ci:
# two soak points plus the hops-vs-N JSON fields the docs table is built from.
scale-smoke:
	@out=$$($(GO) run ./cmd/koshabench -exp scale -quick -format json); \
	for f in mean_route_hops probe_mean_hops mean_join_ms replica_fanout; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "scale-smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "scale-smoke: koshabench scale JSON ok"

smoke:
	@out=$$($(GO) run ./cmd/koshabench -exp latency -quick -format json); \
	for f in p50_ms p95_ms p99_ms mean_route_hops; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench latency JSON ok"
	@out=$$($(GO) run ./cmd/koshabench -exp sync -quick -format json); \
	for f in full_bytes delta_bytes delta_pct files_sent; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench sync JSON ok"
	@out=$$($(GO) run ./cmd/koshabench -exp dedup -quick -format json); \
	for f in dedup_ratio stored_bytes edit_delta_bytes promote_delta_bytes; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench dedup JSON ok"
	@out=$$($(GO) run ./cmd/koshabench -exp stream -quick -format json); \
	for f in seq_rpcs_base seq_rpcs_stream read_rpc_ratio write_rpc_ratio seq_mbps_stream; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench stream JSON ok"
	@out=$$($(GO) run ./cmd/koshabench -exp rebalance -quick -format json); \
	for f in skew_before skew_after moved_bytes moved_fraction high_water; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench rebalance JSON ok"

# metrics-smoke spawns a real koshad with the pprof/metrics listener on and
# asserts the Prometheus exposition carries an overlay-health gauge and a
# per-op latency histogram.
metrics-smoke:
	@$(GO) build -o /tmp/koshad-smoke ./cmd/koshad; \
	/tmp/koshad-smoke -listen 127.0.0.1:7391 -pprof 127.0.0.1:7392 -seed 7 >/dev/null 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	out=""; \
	for i in $$(seq 1 50); do \
		out=$$(curl -sf http://127.0.0.1:7392/metrics) && break; \
		sleep 0.2; \
	done; \
	[ -n "$$out" ] || { echo "metrics-smoke: /metrics never answered" >&2; exit 1; }; \
	echo "$$out" | grep -q '^kosha_overlay_leafset_size ' || { echo "metrics-smoke: overlay-health gauge missing" >&2; exit 1; }; \
	echo "$$out" | grep -q '^# TYPE kosha_op_lookup_ns histogram' || { echo "metrics-smoke: latency histogram missing" >&2; exit 1; }; \
	echo "metrics-smoke: /metrics exposition ok"

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short -race ./...

# bench runs the concurrency-scaling benchmark (sweep goroutine counts to
# see the sharded hot path scale) alongside the cache-ablation benchmark,
# the full-vs-delta replica sync comparison, the content-addressed chunk
# store comparison (dedup ratio, chunk-delta edits, promote repair), and
# the large-file streaming comparison (stop-and-wait vs pipelined
# readahead + write-back).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallelMetadata' -cpu=1,2,4,8 -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkAblationMetadataCache' -short -benchtime=1x .
	$(GO) run ./cmd/koshabench -exp sync
	$(GO) run ./cmd/koshabench -exp dedup
	$(GO) run ./cmd/koshabench -exp stream

bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x ./...

clean:
	$(GO) clean ./...
