GO ?= go

.PHONY: all ci vet build test bench-smoke smoke clean

all: vet build test

# ci is the gate for pull requests: static checks, the full race-enabled
# test suite, and a koshabench smoke run that fails unless the JSON output
# carries the latency-percentile fields.
ci: vet build
	$(GO) test -race ./...
	$(MAKE) smoke

smoke:
	@out=$$($(GO) run ./cmd/koshabench -exp latency -quick -format json); \
	for f in p50_ms p95_ms p99_ms mean_route_hops; do \
		echo "$$out" | grep -q "\"$$f\"" || { echo "smoke: missing $$f in koshabench JSON" >&2; exit 1; }; \
	done; \
	echo "smoke: koshabench latency JSON ok"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short -race ./...

bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x ./...

clean:
	$(GO) clean ./...
