GO ?= go

.PHONY: all vet build test bench-smoke clean

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short -race ./...

bench-smoke:
	$(GO) test -short -bench=. -benchtime=1x ./...

clean:
	$(GO) clean ./...
