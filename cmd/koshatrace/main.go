// Command koshatrace emits the synthetic workload traces the experiments
// consume (file-system contents and node availability), for inspection or
// for use by external tooling. These are inputs to the benchmarks — for the
// operation traces a running cluster records, see "koshactl trace dump".
//
//	koshatrace -kind fs -seed 1            # file-system trace (CSV: path,bytes)
//	koshatrace -kind fs -small             # scaled-down variant
//	koshatrace -kind avail -nodes 200      # availability trace (CSV: hour,up-count)
//	koshatrace -kind avail -full           # full per-node up/down matrix
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	kind := flag.String("kind", "fs", "trace kind: fs or avail")
	seed := flag.Uint64("seed", 1, "generator seed")
	small := flag.Bool("small", false, "use the scaled-down fs config")
	nodes := flag.Int("nodes", 200, "machine count for the availability trace")
	full := flag.Bool("full", false, "availability: emit the full per-node matrix")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "fs":
		cfg := trace.PurdueFSConfig()
		if *small {
			cfg = trace.SmallFSConfig()
		}
		tr := trace.GenFS(cfg, *seed)
		fmt.Fprintf(w, "# users=%d files=%d bytes=%d seed=%d\n",
			tr.Users, len(tr.Files), tr.TotalBytes(), *seed)
		for _, f := range tr.Files {
			fmt.Fprintf(w, "%s,%d\n", f.Path, f.Size)
		}

	case "avail":
		cfg := trace.CorporateAvailConfig(*nodes)
		tr := trace.GenAvail(cfg, *seed)
		hour, down := tr.MaxSimultaneousFailures()
		fmt.Fprintf(w, "# hours=%d nodes=%d seed=%d max-down=%d@hour%d\n",
			tr.Hours, tr.Nodes, *seed, down, hour)
		for h := 0; h < tr.Hours; h++ {
			if *full {
				fmt.Fprintf(w, "%d", h)
				for _, up := range tr.Up[h] {
					if up {
						fmt.Fprint(w, ",1")
					} else {
						fmt.Fprint(w, ",0")
					}
				}
				fmt.Fprintln(w)
			} else {
				fmt.Fprintf(w, "%d,%d\n", h, tr.UpCount(h))
			}
		}

	default:
		fmt.Fprintf(os.Stderr, "koshatrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
