package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"0":    0,
		"1024": 1024,
		"3K":   3 << 10,
		"512M": 512 << 20,
		"10G":  10 << 30,
		"10g":  10 << 30,
		" 2K ": 2 << 10,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "12Q", "G"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
