// Command koshad runs one Kosha node as a long-lived daemon over TCP: the
// contributed store, its NFS export, the Pastry overlay endpoint, and the
// koshad interposition logic, plus the koshactl administrative service.
//
// Start a first node, then join more against it:
//
//	koshad -listen 127.0.0.1:7001
//	koshad -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//	koshad -listen 127.0.0.1:7003 -join 127.0.0.1:7001 -capacity 10G
//
// then drive the shared file system from any node with koshactl.
package main

import (
	"crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/diskfs"
	"repro/internal/id"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "TCP address to serve on (also the node's overlay address)")
	join := flag.String("join", "", "address of an existing node to join ('' starts a new overlay)")
	capacity := flag.String("capacity", "0", "contributed store bytes (supports K/M/G suffix; 0 = unlimited)")
	level := flag.Int("level", 1, "distribution level L")
	replicas := flag.Int("replicas", 1, "replication factor K")
	redirects := flag.Int("redirects", 4, "capacity redirection attempts")
	stabilize := flag.Duration("stabilize", 10*time.Second, "overlay stabilization interval")
	datadir := flag.String("datadir", "", "persist the contributed store in this directory (default: in-memory)")
	seed := flag.Uint64("seed", 0, "nodeId seed (0 = random)")
	statsEvery := flag.Duration("statsevery", 0, "log per-op latency stats at this interval (0 = off)")
	sampleEvery := flag.Duration("sampleevery", 0, "retain time-series metric samples at this interval (0 = off)")
	probeEvery := flag.Duration("probeevery", 30*time.Second, "refresh overlay-health gauges at this interval (0 = only on /metrics scrape)")
	slowOp := flag.Duration("slowop", 0, "flight-record operations slower than this (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address ('' = off)")
	flag.Parse()

	capBytes, err := parseSize(*capacity)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tn, err := tcpnet.Listen(*listen, simnet.LAN100)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tn.Close()

	s := *seed
	if s == 0 {
		var b [8]byte
		rand.Read(b[:])
		s = binary.BigEndian.Uint64(b[:])
	}
	nodeID := id.Rand128(&s)

	cfg := core.Config{
		DistributionLevel: *level,
		Replicas:          *replicas,
		RedirectAttempts:  *redirects,
		Capacity:          capBytes,
		// A real transport serves real clients: histogram samples are wall
		// time, not the modeled simnet cost.
		WallClockStats: true,
		SlowOpNS:       slowOp.Nanoseconds(),
	}
	if *replicas == 0 {
		cfg.Replicas = -1
	}
	var node *core.Node
	if *datadir != "" {
		store, err := diskfs.Open(*datadir, capBytes, simnet.Disk7200)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		node = core.NewNodeWithStore(tn.Addr(), nodeID, tn, cfg, store)
	} else {
		node = core.NewNode(tn.Addr(), nodeID, tn, cfg)
	}
	node.AttachCtl()

	if _, err := node.Join(simnet.Addr(*join)); err != nil {
		fmt.Fprintf(os.Stderr, "koshad: join: %v\n", err)
		os.Exit(1)
	}
	node.Overlay().Stabilize()
	node.SyncReplicas()

	fmt.Printf("koshad: serving on %s  nodeId=%s  L=%d K=%d capacity=%s\n",
		tn.Addr(), nodeID.Short(), *level, cfg.Replicas, *capacity)
	if *join != "" {
		fmt.Printf("koshad: joined overlay via %s (%d leaf-set neighbors)\n",
			*join, len(node.Overlay().Leaf()))
	}

	if *pprofAddr != "" {
		// /metrics rides the same listener as pprof: Prometheus text
		// exposition of the node's registry, with the overlay-health
		// gauges refreshed on every scrape.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			node.ProbeHealth()
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := obs.WriteProm(w, node.Obs().Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "koshad: metrics: %v\n", err)
			}
		})
		go func() {
			fmt.Printf("koshad: pprof on http://%s/debug/pprof/, metrics on http://%s/metrics\n", *pprofAddr, *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "koshad: pprof: %v\n", err)
			}
		}()
	}

	if *sampleEvery > 0 {
		node.Sampler().Start(*sampleEvery)
		defer node.Sampler().Stop()
	}

	var probeC <-chan time.Time
	if *probeEvery > 0 {
		pt := time.NewTicker(*probeEvery)
		defer pt.Stop()
		probeC = pt.C
	}

	var statsC <-chan time.Time
	if *statsEvery > 0 {
		st := time.NewTicker(*statsEvery)
		defer st.Stop()
		statsC = st.C
	}

	ticker := time.NewTicker(*stabilize)
	defer ticker.Stop()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			node.Overlay().Stabilize()
			node.SyncReplicas()
		case <-statsC:
			logStats(node)
		case <-probeC:
			node.ProbeHealth()
		case <-sigs:
			fmt.Println("koshad: leaving overlay")
			node.Overlay().Leave()
			return
		}
	}
}

// logStats prints one line per active op histogram plus the route-hop mean,
// the daemon's periodic observability heartbeat.
func logStats(node *core.Node) {
	s := node.Obs().Snapshot()
	for _, name := range s.HistNames() {
		h := s.Hists[name]
		if h.Count == 0 {
			continue
		}
		fmt.Printf("koshad: stats %-16s count=%d mean=%s p50=%s p95=%s p99=%s\n",
			name, h.Count, rnd(h.Mean()), rnd(h.Quantile(50)),
			rnd(h.Quantile(95)), rnd(h.Quantile(99)))
	}
	if n := s.Counters["route.count"]; n > 0 {
		fmt.Printf("koshad: stats route hops mean=%.2f routes=%d\n",
			s.MeanRatio("route.hops", "route.count"), n)
	}
	ev := node.Events().Snapshot(0)
	if len(ev.Counts) > 0 {
		fmt.Printf("koshad: stats events failover=%d resync=%d join=%d departure=%d\n",
			ev.Counts[obs.EvFailover], ev.Counts[obs.EvResync],
			ev.Counts[obs.EvJoin], ev.Counts[obs.EvDeparture])
	}
}

func rnd(d time.Duration) string { return d.Round(time.Microsecond).String() }

// parseSize parses "10G"/"512M"/"3K"/plain bytes.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("koshad: bad size %q", s)
	}
	return v * mult, nil
}
