// Command koshabench regenerates the paper's tables and figures.
//
// Usage:
//
//	koshabench -exp table1|table2|fig5|fig6|fig7|scale|model|cache|latency|sync|dedup|stream|churn|rebalance|all [-runs N] [-quick] [-format table|csv|json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/mab"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig5, fig6, fig7, scale, model, cache, latency, sync, dedup, stream, churn, rebalance, all")
	runs := flag.Int("runs", 0, "override the number of averaged runs (0 = default)")
	quick := flag.Bool("quick", false, "scaled-down workloads for a fast smoke run")
	format := flag.String("format", "table", "output format: table, csv, or json (json: latency only)")
	sample := flag.Bool("sample", false, "latency: retain per-phase time-series samples in the output")
	flag.Parse()
	csv := *format == "csv"

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		opts := experiments.DefaultTable1Options()
		if *runs > 0 {
			opts.Runs = *runs
		}
		if *quick {
			opts.Workload = mab.Tiny()
			opts.Runs = 2
		}
		res, err := experiments.RunTable1(opts)
		if err != nil {
			return err
		}
		if csv {
			res.FprintCSV(os.Stdout, opts)
		} else {
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("fig5", func() error {
		opts := experiments.DefaultFigure5Options()
		if *runs > 0 {
			opts.Seeds = *runs
		}
		if *quick {
			opts.Trace = trace.SmallFSConfig()
			opts.Seeds = 5
		}
		res, err := experiments.RunFigure5(opts)
		if err != nil {
			return err
		}
		if csv {
			res.FprintCSV(os.Stdout, opts)
		} else {
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("fig6", func() error {
		opts := experiments.DefaultFigure6Options()
		if *runs > 0 {
			opts.Seeds = *runs
		}
		if *quick {
			opts.Trace = trace.SmallFSConfig()
			// Scale capacities with the smaller trace (keep the 3:4:5 mix).
			for i := range opts.Capacities {
				opts.Capacities[i] /= 256
			}
			opts.Seeds = 5
		}
		res, err := experiments.RunFigure6(opts)
		if err != nil {
			return err
		}
		if csv {
			res.FprintCSV(os.Stdout, opts)
		} else {
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("fig7", func() error {
		opts := experiments.DefaultFigure7Options()
		if *runs > 0 {
			opts.Runs = *runs
		}
		if *quick {
			opts.Trace = trace.SmallFSConfig()
			opts.Nodes = 50
			opts.Avail = trace.CorporateAvailConfig(50)
			opts.Runs = 3
		}
		res, err := experiments.RunFigure7(opts)
		if err != nil {
			return err
		}
		if csv {
			res.FprintCSV(os.Stdout, opts)
		} else {
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("scale", func() error {
		opts := experiments.DefaultScaleOptions()
		if *quick {
			opts.NodeCounts = []int{50, 100}
			opts.Epochs = 6
			opts.Ops = 180
			opts.FS = trace.SmallFSConfig()
		}
		res, err := experiments.RunScale(opts)
		if err != nil {
			return err
		}
		switch {
		case *format == "json":
			return res.FprintJSON(os.Stdout)
		case csv:
			res.FprintCSV(os.Stdout, opts)
		default:
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("model", func() error {
		opts := experiments.DefaultModelOptions()
		rows := experiments.RunModel(opts)
		if csv {
			experiments.FprintModelCSV(os.Stdout, rows)
		} else {
			experiments.FprintModel(os.Stdout, rows, opts)
		}
		return nil
	})

	run("table2", func() error {
		opts := experiments.DefaultTable2Options()
		if *runs > 0 {
			opts.Runs = *runs
		}
		if *quick {
			opts.Workload = mab.Tiny()
			opts.Runs = 2
		}
		res, err := experiments.RunTable2(opts)
		if err != nil {
			return err
		}
		if csv {
			res.FprintCSV(os.Stdout, opts)
		} else {
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("latency", func() error {
		opts := experiments.DefaultLatencyOptions()
		opts.Sample = *sample
		if *quick {
			opts.Dirs = 3
			opts.FilesPerDir = 4
			opts.FileSize = 4 << 10
		}
		res, err := experiments.RunLatency(opts)
		if err != nil {
			return err
		}
		switch *format {
		case "json":
			return res.FprintJSON(os.Stdout)
		case "csv":
			res.FprintCSV(os.Stdout, opts)
		default:
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("sync", func() error {
		opts := experiments.DefaultSyncOptions()
		if *quick {
			opts.Files = 32
			opts.FileSize = 2 << 10
		}
		res, err := experiments.RunSync(opts)
		if err != nil {
			return err
		}
		switch *format {
		case "json":
			return res.FprintJSON(os.Stdout)
		case "csv":
			res.FprintCSV(os.Stdout, opts)
		default:
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("dedup", func() error {
		opts := experiments.DefaultDedupOptions()
		if *quick {
			opts.Users = 2
			opts.FilesPerUser = 8
			opts.FileSize = 64 << 10
			opts.EditFileSize = 1 << 20
		}
		res, err := experiments.RunDedup(opts)
		if err != nil {
			return err
		}
		switch *format {
		case "json":
			return res.FprintJSON(os.Stdout)
		case "csv":
			res.FprintCSV(os.Stdout, opts)
		default:
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("stream", func() error {
		opts := experiments.DefaultStreamOptions()
		if *quick {
			opts.FileBytes = 8 << 20
			opts.RandReads = 8
			opts.WriteCount = 64
		}
		res, err := experiments.RunStream(opts)
		if err != nil {
			return err
		}
		switch *format {
		case "json":
			return res.FprintJSON(os.Stdout)
		case "csv":
			res.FprintCSV(os.Stdout, opts)
		default:
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("rebalance", func() error {
		opts := experiments.DefaultRebalanceOptions()
		if *quick {
			opts.Trees = 24
			opts.BigFile = 48 << 10
			opts.SmallFile = 6 << 10
		}
		res, err := experiments.RunRebalance(opts)
		if err != nil {
			return err
		}
		switch *format {
		case "json":
			return res.FprintJSON(os.Stdout)
		case "csv":
			res.FprintCSV(os.Stdout, opts)
		default:
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("churn", func() error {
		opts := experiments.DefaultChurnOptions()
		if *runs > 0 {
			opts.Runs = *runs
		}
		if *quick {
			opts.Replicas = []int{2}
			opts.Failed = []int{0, 1}
			opts.Files = 16
			opts.Runs = 1
		}
		res, err := experiments.RunChurn(opts)
		if err != nil {
			return err
		}
		if csv {
			res.FprintCSV(os.Stdout, opts)
		} else {
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})

	run("cache", func() error {
		opts := experiments.DefaultCacheAblationOptions()
		if *quick {
			opts.Dirs = 2
			opts.FilesPerDir = 8
			opts.Sweeps = 2
		}
		res, err := experiments.RunCacheAblation(opts)
		if err != nil {
			return err
		}
		if csv {
			res.FprintCSV(os.Stdout, opts)
		} else {
			res.Fprint(os.Stdout, opts)
		}
		return nil
	})
}
