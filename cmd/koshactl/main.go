// Command koshactl drives a running koshad's virtual file system from the
// command line, the way a user shell would use the /kosha mount:
//
//	koshactl -node 127.0.0.1:7001 put /alice/doc.txt local.txt
//	koshactl -node 127.0.0.1:7002 get /alice/doc.txt
//	koshactl -node 127.0.0.1:7001 ls /alice
//	koshactl -node 127.0.0.1:7001 mkdir /projects/sim
//	koshactl -node 127.0.0.1:7001 rm /projects
//	koshactl -node 127.0.0.1:7001 stat /alice/doc.txt
//	koshactl -node 127.0.0.1:7001 status
//
// Any node answers for any path: location is transparent.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: koshactl -node host:port <command> [args]

commands:
  ls <path>            list a virtual directory
  get <path>           print a file's contents to stdout
  put <path> [file]    store a file (stdin when no local file given)
  mkdir <path>         create a directory (and ancestors)
  rm <path>            remove a file or subtree
  stat <path>          show entry attributes
  status               show the node's store occupancy and overlay identity
  cluster              crawl the overlay from this node and summarize every member
  tree <path>          recursively list a virtual subtree
`)
	os.Exit(2)
}

func main() {
	node := flag.String("node", "127.0.0.1:7001", "address of any koshad")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	tn := tcpnet.Dialer("koshactl", simnet.LAN100)
	defer tn.Close()
	ctl := &core.CtlClient{Net: tn, From: tn.Addr(), To: simnet.Addr(*node)}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "koshactl: %v\n", err)
		os.Exit(1)
	}

	switch args[0] {
	case "ls":
		if len(args) != 2 {
			usage()
		}
		ents, _, err := ctl.List(args[1])
		if err != nil {
			fail(err)
		}
		for _, e := range ents {
			marker := ""
			switch e.Type {
			case localfs.TypeDir:
				marker = "/"
			case localfs.TypeSymlink:
				marker = "@"
			}
			fmt.Printf("%s%s\n", e.Name, marker)
		}

	case "get":
		if len(args) != 2 {
			usage()
		}
		data, _, err := ctl.ReadFile(args[1])
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(data)

	case "put":
		if len(args) != 2 && len(args) != 3 {
			usage()
		}
		var data []byte
		var err error
		if len(args) == 3 {
			data, err = os.ReadFile(args[2])
		} else {
			data, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			fail(err)
		}
		if _, err := ctl.WriteFile(args[1], data); err != nil {
			fail(err)
		}
		fmt.Printf("stored %d bytes at %s\n", len(data), args[1])

	case "mkdir":
		if len(args) != 2 {
			usage()
		}
		if _, err := ctl.MkdirAll(args[1]); err != nil {
			fail(err)
		}

	case "rm":
		if len(args) != 2 {
			usage()
		}
		if _, err := ctl.RemoveAll(args[1]); err != nil {
			fail(err)
		}

	case "stat":
		if len(args) != 2 {
			usage()
		}
		st, _, err := ctl.Stat(args[1])
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %s mode %o size %d\n", args[1], st.Type, st.Mode, st.Size)

	case "status":
		st, _, err := ctl.Status()
		if err != nil {
			fail(err)
		}
		fmt.Printf("node %s\n  nodeId      %s\n  leaf set    %d neighbors\n  files       %d\n  used bytes  %d\n",
			*node, st.NodeID, st.LeafSize, st.Files, st.UsedBytes)
		if st.TotalBytes > 0 {
			fmt.Printf("  capacity    %d (%.1f%% used)\n", st.TotalBytes,
				float64(st.UsedBytes)/float64(st.TotalBytes)*100)
		} else {
			fmt.Printf("  capacity    unlimited\n")
		}

	case "tree":
		if len(args) != 2 {
			usage()
		}
		var walk func(p, indent string)
		walk = func(p, indent string) {
			ents, _, err := ctl.List(p)
			if err != nil {
				fail(err)
			}
			for _, e := range ents {
				child := p + "/" + e.Name
				if p == "/" {
					child = "/" + e.Name
				}
				switch e.Type {
				case localfs.TypeDir:
					fmt.Printf("%s%s/\n", indent, e.Name)
					walk(child, indent+"  ")
				case localfs.TypeSymlink:
					fmt.Printf("%s%s@\n", indent, e.Name)
				default:
					st, _, err := ctl.Stat(child)
					if err != nil {
						fmt.Printf("%s%s\n", indent, e.Name)
						continue
					}
					fmt.Printf("%s%s (%d bytes)\n", indent, e.Name, st.Size)
				}
			}
		}
		fmt.Println(args[1])
		walk(args[1], "  ")

	case "cluster":
		peers, _, err := ctl.Peers()
		if err != nil {
			fail(err)
		}
		addrs := []simnet.Addr{simnet.Addr(*node)}
		for _, p := range peers {
			addrs = append(addrs, p.Addr)
		}
		fmt.Printf("%-22s %-12s %8s %12s %10s\n", "node", "nodeId", "files", "used", "capacity")
		var totFiles, totUsed int64
		for _, a := range addrs {
			peerCtl := &core.CtlClient{Net: tn, From: tn.Addr(), To: a}
			st, _, err := peerCtl.Status()
			if err != nil {
				fmt.Printf("%-22s %s\n", a, "unreachable")
				continue
			}
			capStr := "unlimited"
			if st.TotalBytes > 0 {
				capStr = fmt.Sprintf("%d", st.TotalBytes)
			}
			fmt.Printf("%-22s %-12s %8d %12d %10s\n", a, st.NodeID[:8], st.Files, st.UsedBytes, capStr)
			totFiles += st.Files
			totUsed += st.UsedBytes
		}
		fmt.Printf("%-22s %-12s %8d %12d\n", "TOTAL", "", totFiles, totUsed)

	default:
		usage()
	}
}
