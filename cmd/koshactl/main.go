// Command koshactl drives a running koshad's virtual file system from the
// command line, the way a user shell would use the /kosha mount:
//
//	koshactl -node 127.0.0.1:7001 put /alice/doc.txt local.txt
//	koshactl -node 127.0.0.1:7002 get /alice/doc.txt
//	koshactl -node 127.0.0.1:7001 ls /alice
//	koshactl -node 127.0.0.1:7001 mkdir /projects/sim
//	koshactl -node 127.0.0.1:7001 rm /projects
//	koshactl -node 127.0.0.1:7001 stat /alice/doc.txt
//	koshactl -node 127.0.0.1:7001 status
//
// Any node answers for any path: location is transparent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: koshactl -node host:port <command> [args]

commands:
  ls <path>            list a virtual directory
  get <path>           print a file's contents to stdout
  put <path> [file]    store a file (stdin when no local file given)
  mkdir <path>         create a directory (and ancestors)
  rm <path>            remove a file or subtree
  stat <path>          show entry attributes
  status               show the node's store occupancy and overlay identity
  cluster              crawl the overlay from this node and summarize every member
  tree <path>          recursively list a virtual subtree
  stats [cluster]      per-op latency percentiles, route hops, and overlay events
                       for this node (or aggregated over the whole cluster)
  trace dump [n]       dump the n most recent operation traces (default: all)
  trace -id <hex>      collect span fragments from every live node and print
                       the assembled cross-node causal tree for one trace id
  trace -slow [n]      dump the slow-op flight recorder (never-evicted ring)
  samples [n]          dump retained time-series samples (CSV; -json for JSON)

trace dump filters:
  -op <OP>             keep only traces of this operation (e.g. LOOKUP)
  -path <prefix>       keep only traces whose path has this prefix
  -min-dur <dur>       keep only traces at least this long (e.g. 2ms)

flags:
  -json                emit stats/trace/samples output as JSON instead of text
`)
	os.Exit(2)
}

func main() {
	node := flag.String("node", "127.0.0.1:7001", "address of any koshad")
	jsonOut := flag.Bool("json", false, "emit stats/trace output as JSON")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	tn := tcpnet.Dialer("koshactl", simnet.LAN100)
	defer tn.Close()
	ctl := &core.CtlClient{Net: tn, From: tn.Addr(), To: simnet.Addr(*node)}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "koshactl: %v\n", err)
		os.Exit(1)
	}

	switch args[0] {
	case "ls":
		if len(args) != 2 {
			usage()
		}
		ents, _, err := ctl.List(args[1])
		if err != nil {
			fail(err)
		}
		for _, e := range ents {
			marker := ""
			switch e.Type {
			case localfs.TypeDir:
				marker = "/"
			case localfs.TypeSymlink:
				marker = "@"
			}
			fmt.Printf("%s%s\n", e.Name, marker)
		}

	case "get":
		if len(args) != 2 {
			usage()
		}
		data, _, err := ctl.ReadFile(args[1])
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(data)

	case "put":
		if len(args) != 2 && len(args) != 3 {
			usage()
		}
		var data []byte
		var err error
		if len(args) == 3 {
			data, err = os.ReadFile(args[2])
		} else {
			data, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			fail(err)
		}
		if _, err := ctl.WriteFile(args[1], data); err != nil {
			fail(err)
		}
		fmt.Printf("stored %d bytes at %s\n", len(data), args[1])

	case "mkdir":
		if len(args) != 2 {
			usage()
		}
		if _, err := ctl.MkdirAll(args[1]); err != nil {
			fail(err)
		}

	case "rm":
		if len(args) != 2 {
			usage()
		}
		if _, err := ctl.RemoveAll(args[1]); err != nil {
			fail(err)
		}

	case "stat":
		if len(args) != 2 {
			usage()
		}
		st, _, err := ctl.Stat(args[1])
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %s mode %o size %d\n", args[1], st.Type, st.Mode, st.Size)

	case "status":
		st, _, err := ctl.Status()
		if err != nil {
			fail(err)
		}
		fmt.Printf("node %s\n  nodeId      %s\n  leaf set    %d neighbors\n  files       %d\n  used bytes  %d\n",
			*node, st.NodeID, st.LeafSize, st.Files, st.UsedBytes)
		if st.TotalBytes > 0 {
			fmt.Printf("  capacity    %d (%.1f%% used)\n", st.TotalBytes,
				float64(st.UsedBytes)/float64(st.TotalBytes)*100)
		} else {
			fmt.Printf("  capacity    unlimited\n")
		}

	case "tree":
		if len(args) != 2 {
			usage()
		}
		var walk func(p, indent string)
		walk = func(p, indent string) {
			ents, _, err := ctl.List(p)
			if err != nil {
				fail(err)
			}
			for _, e := range ents {
				child := p + "/" + e.Name
				if p == "/" {
					child = "/" + e.Name
				}
				switch e.Type {
				case localfs.TypeDir:
					fmt.Printf("%s%s/\n", indent, e.Name)
					walk(child, indent+"  ")
				case localfs.TypeSymlink:
					fmt.Printf("%s%s@\n", indent, e.Name)
				default:
					st, _, err := ctl.Stat(child)
					if err != nil {
						fmt.Printf("%s%s\n", indent, e.Name)
						continue
					}
					fmt.Printf("%s%s (%d bytes)\n", indent, e.Name, st.Size)
				}
			}
		}
		fmt.Println(args[1])
		walk(args[1], "  ")

	case "cluster":
		peers, _, err := ctl.Peers()
		if err != nil {
			fail(err)
		}
		addrs := []simnet.Addr{simnet.Addr(*node)}
		for _, p := range peers {
			addrs = append(addrs, p.Addr)
		}
		fmt.Printf("%-22s %-12s %8s %12s %10s\n", "node", "nodeId", "files", "used", "capacity")
		var totFiles, totUsed int64
		for _, a := range addrs {
			peerCtl := &core.CtlClient{Net: tn, From: tn.Addr(), To: a}
			st, _, err := peerCtl.Status()
			if err != nil {
				fmt.Printf("%-22s %s\n", a, "unreachable")
				continue
			}
			capStr := "unlimited"
			if st.TotalBytes > 0 {
				capStr = fmt.Sprintf("%d", st.TotalBytes)
			}
			fmt.Printf("%-22s %-12s %8d %12d %10s\n", a, st.NodeID[:8], st.Files, st.UsedBytes, capStr)
			totFiles += st.Files
			totUsed += st.UsedBytes
		}
		fmt.Printf("%-22s %-12s %8d %12d\n", "TOTAL", "", totFiles, totUsed)

	case "stats":
		if len(args) > 1 && args[1] == "cluster" {
			peers, _, err := ctl.Peers()
			if err != nil {
				fail(err)
			}
			addrs := []simnet.Addr{simnet.Addr(*node)}
			for _, p := range peers {
				addrs = append(addrs, p.Addr)
			}
			var nodes []core.StatsPayload
			agg := core.StatsPayload{Addr: "cluster"}
			for _, a := range addrs {
				peerCtl := &core.CtlClient{Net: tn, From: tn.Addr(), To: a}
				p, _, err := peerCtl.Stats()
				if err != nil {
					fmt.Fprintf(os.Stderr, "koshactl: %s unreachable: %v\n", a, err)
					continue
				}
				nodes = append(nodes, p)
				agg.Stats.Merge(p.Stats)
				agg.Events.Merge(p.Events)
			}
			agg.Events.Recent = nil
			if *jsonOut {
				emitJSON(struct {
					Cluster core.StatsPayload   `json:"cluster"`
					Nodes   []core.StatsPayload `json:"nodes"`
				}{agg, nodes})
				return
			}
			for _, p := range nodes {
				printStats("node "+p.Addr, p)
			}
			printStats(fmt.Sprintf("CLUSTER (%d nodes)", len(nodes)), agg)
			return
		}
		p, _, err := ctl.Stats()
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			emitJSON(p)
			return
		}
		printStats("node "+p.Addr, p)

	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		idStr := fs.String("id", "", "32-hex-digit trace id to assemble cluster-wide")
		opFilter := fs.String("op", "", "keep only traces of this operation")
		pathFilter := fs.String("path", "", "keep only traces whose path has this prefix")
		minDur := fs.Duration("min-dur", 0, "keep only traces at least this long")
		slow := fs.Bool("slow", false, "dump the slow-op flight recorder instead")
		// Accept "trace dump [n] [-flags]" and "trace [-flags] [n]": strip
		// the dump keyword and a leading count before flag parsing (the
		// stdlib FlagSet stops at the first non-flag argument).
		rest := args[1:]
		isDump := false
		count := 0
		if len(rest) > 0 && rest[0] == "dump" {
			isDump = true
			rest = rest[1:]
		}
		if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			var err error
			if count, err = strconv.Atoi(rest[0]); err != nil {
				usage()
			}
			rest = rest[1:]
		}
		fs.Parse(rest)
		switch tail := fs.Args(); len(tail) {
		case 0:
		case 1:
			var err error
			if count, err = strconv.Atoi(tail[0]); err != nil {
				usage()
			}
		default:
			usage()
		}

		if *idStr != "" {
			hi, lo, err := obs.ParseTraceID(*idStr)
			if err != nil {
				fail(err)
			}
			at, err := assembleTrace(tn, simnet.Addr(*node), hi, lo)
			if err != nil {
				fail(err)
			}
			if *jsonOut {
				emitJSON(at)
				return
			}
			printAssembled(at)
			return
		}

		if !isDump && !*slow {
			usage()
		}

		var traces []obs.Trace
		var err error
		if *slow {
			traces, _, err = ctl.SlowDump(count)
		} else {
			traces, _, err = ctl.TraceDump(count)
		}
		if err != nil {
			fail(err)
		}
		traces = filterTraces(traces, *opFilter, *pathFilter, *minDur)
		if *jsonOut {
			emitJSON(traces)
			return
		}
		for _, t := range traces {
			printTrace(t)
		}

	case "samples":
		count := 0
		if len(args) == 2 {
			var err error
			if count, err = strconv.Atoi(args[1]); err != nil {
				usage()
			}
		}
		samples, _, err := ctl.Samples(count)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			emitJSON(samples)
			return
		}
		if err := obs.WriteSamplesCSV(os.Stdout, samples); err != nil {
			fail(err)
		}

	default:
		usage()
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "koshactl: %v\n", err)
		os.Exit(1)
	}
}

func dur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// printStats renders one node's (or the cluster aggregate's) stats payload:
// a per-operation latency table, mean route hop count, and overlay events.
func printStats(title string, p core.StatsPayload) {
	fmt.Println(title)
	if p.NodeID != "" {
		fmt.Printf("  nodeId %s\n", p.NodeID)
	}
	s := p.Stats
	header := false
	for _, name := range s.HistNames() {
		op := strings.TrimPrefix(name, "op.")
		if op == name {
			continue
		}
		h := s.Hists[name]
		if h.Count == 0 {
			continue
		}
		if !header {
			fmt.Printf("  %-14s %8s %10s %10s %10s %10s %10s\n",
				"op", "count", "mean", "p50", "p95", "p99", "max")
			header = true
		}
		fmt.Printf("  %-14s %8d %10s %10s %10s %10s %10s\n", op, h.Count,
			dur(h.Mean()), dur(h.Quantile(50)), dur(h.Quantile(95)),
			dur(h.Quantile(99)), dur(time.Duration(h.MaxNS)))
	}
	if n := s.Counters["route.count"]; n > 0 {
		fmt.Printf("  mean route hops %.2f over %d routes\n",
			s.MeanRatio("route.hops", "route.count"), n)
	}
	fmt.Printf("  ops %d (%d errors)   nfs rpcs %d (%d bytes)\n",
		s.Counters["ops.total"], s.Counters["ops.errors"],
		s.Counters["nfs.rpcs"], s.Counters["nfs.bytes"])
	if hits, misses := s.Counters["repl.sync.digest.hits"], s.Counters["repl.sync.digest.misses"]; hits+misses > 0 {
		fmt.Printf("  replica sync: %d bytes, %d files sent, %d skipped, digest hit %.1f%% (%d/%d)\n",
			s.Counters["repl.sync.bytes"], s.Counters["repl.sync.files.sent"],
			s.Counters["repl.sync.files.skipped"],
			float64(hits)/float64(hits+misses)*100, hits, hits+misses)
	}
	if stored, deduped := s.Counters["repl.cas.blocks.stored"], s.Counters["repl.cas.blocks.deduped"]; stored+deduped > 0 {
		fmt.Printf("  chunk store: %d blocks stored, %d deduped, %d fetched, %d bytes gc'd\n",
			stored, deduped, s.Counters["repl.cas.blocks.fetched"],
			s.Counters["repl.cas.bytes.gc"])
	}
	if ra := s.Counters["io.readahead.hits"] + s.Counters["io.readahead.wasted"]; ra > 0 {
		fmt.Printf("  readahead: %d hits, %d wasted\n",
			s.Counters["io.readahead.hits"], s.Counters["io.readahead.wasted"])
	}
	if fl := s.Counters["io.writeback.flushes"]; fl > 0 {
		fmt.Printf("  write-back: %d writes coalesced over %d flushes\n",
			s.Counters["io.writeback.coalesced"], fl)
	}
	if rounds := s.Counters["maint.scrub.rounds"]; rounds > 0 {
		fmt.Printf("  scrub: %d rounds, %d divergences (%d repaired), %d bad blocks\n",
			rounds, s.Counters["maint.scrub.divergences"],
			s.Counters["maint.scrub.repaired"], s.Counters["maint.scrub.badblocks"])
	}
	if moves := s.Counters["maint.rebalance.moves"]; moves > 0 {
		fmt.Printf("  rebalance: %d moves, %d bytes migrated\n",
			moves, s.Counters["maint.rebalance.bytes"])
	}
	if bp, ok := s.Gauges["maint.util.bp"]; ok {
		fmt.Printf("  utilization %.1f%%\n", float64(bp)/100)
	}
	if len(p.Events.Counts) > 0 {
		kinds := make([]string, 0, len(p.Events.Counts))
		for k := range p.Events.Counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("  events:")
		for _, k := range kinds {
			fmt.Printf(" %s=%d", k, p.Events.Counts[k])
		}
		fmt.Println()
	}
}

// filterTraces applies the trace dump filters client-side: operation name,
// path prefix, and minimum total duration.
func filterTraces(ts []obs.Trace, op, pathPrefix string, minDur time.Duration) []obs.Trace {
	if op == "" && pathPrefix == "" && minDur == 0 {
		return ts
	}
	out := ts[:0]
	for _, t := range ts {
		if op != "" && !strings.EqualFold(t.Op, op) {
			continue
		}
		if pathPrefix != "" && !strings.HasPrefix(t.Path, pathPrefix) {
			continue
		}
		if minDur > 0 && time.Duration(t.TotalNS) < minDur {
			continue
		}
		out = append(out, t)
	}
	return out
}

// assembleTrace crawls the overlay from seed, collects every live node's
// fragment of the trace (origin record plus server spans), and reassembles
// the cluster-wide causal tree.
func assembleTrace(tn simnet.Caller, seed simnet.Addr, hi, lo uint64) (*obs.AssembledTrace, error) {
	from := seed
	if d, ok := tn.(interface{ Addr() simnet.Addr }); ok {
		from = d.Addr()
	}
	seedCtl := &core.CtlClient{Net: tn, From: from, To: seed}
	addrs := []simnet.Addr{seed}
	if peers, _, err := seedCtl.Peers(); err == nil {
		for _, p := range peers {
			addrs = append(addrs, p.Addr)
		}
	}
	var origin *obs.Trace
	var frags []obs.SpanRecord
	reached := 0
	for _, a := range addrs {
		ctl := &core.CtlClient{Net: tn, From: from, To: a}
		p, _, err := ctl.TraceFrag(hi, lo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "koshactl: %s unreachable: %v\n", a, err)
			continue
		}
		reached++
		if p.Origin != nil && origin == nil {
			origin = p.Origin
		}
		frags = append(frags, p.Spans...)
	}
	if reached == 0 {
		return nil, fmt.Errorf("no node answered for trace %s", obs.FormatTraceID(hi, lo))
	}
	at := obs.Assemble(hi, lo, origin, frags)
	if at.SpanCount == 0 && at.Origin == nil {
		return nil, fmt.Errorf("trace %s not found on any of %d nodes (evicted or never recorded)",
			obs.FormatTraceID(hi, lo), reached)
	}
	return at, nil
}

// printAssembled renders the cluster-wide causal tree of one trace: the
// origin line (op, path, originating node, end-to-end latency), the overlay
// hops the origin recorded, then the span tree with per-edge latency.
func printAssembled(at *obs.AssembledTrace) {
	fmt.Printf("trace %s", obs.FormatTraceID(at.Hi, at.Lo))
	if o := at.Origin; o != nil {
		fmt.Printf("  %s %s  origin %s  total %s", o.Op, o.Path, o.Node, dur(time.Duration(o.TotalNS)))
		if o.Failovers > 0 {
			fmt.Printf("  failovers %d", o.Failovers)
		}
		if o.Err != "" {
			fmt.Printf("  err %q", o.Err)
		}
	}
	fmt.Printf("\n  %d spans across %d nodes\n", at.SpanCount, at.NodeCount)
	if o := at.Origin; o != nil {
		for _, h := range o.Hops {
			fmt.Printf("  hop %s (%s) prefix %d\n", h.Addr, h.ID, h.Prefix)
		}
	}
	at.Walk(func(depth int, n *obs.TraceNode) {
		sp := n.Span
		fmt.Printf("  %s%-24s node=%-16s from=%-16s %s",
			strings.Repeat("  ", depth), sp.Name, sp.Node, sp.From, dur(time.Duration(sp.DurNS)))
		if sp.Err != "" {
			fmt.Printf("  err %q", sp.Err)
		}
		fmt.Println()
	})
}

// printTrace renders one operation trace as a compact multi-line record.
func printTrace(t obs.Trace) {
	fmt.Printf("#%d %s %s  total %s", t.ID, t.Op, t.Path, dur(time.Duration(t.TotalNS)))
	if t.ServedBy != "" {
		fmt.Printf("  served by %s", t.ServedBy)
	}
	if t.Replicas > 0 {
		fmt.Printf("  replicas %d", t.Replicas)
	}
	if t.Failovers > 0 {
		fmt.Printf("  failovers %d", t.Failovers)
	}
	if t.Err != "" {
		fmt.Printf("  err %q", t.Err)
	}
	fmt.Println()
	for _, h := range t.Hops {
		fmt.Printf("    hop %s (%s) prefix %d\n", h.Addr, h.ID, h.Prefix)
	}
	for _, sp := range t.Spans {
		node := sp.Node
		if node == "" {
			node = "-"
		}
		fmt.Printf("    span %-10s %-20s %s\n", sp.Name, node, dur(time.Duration(sp.DurNS)))
	}
}
