package kosha_test

import (
	"fmt"
	"testing"

	"repro/kosha"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:  6,
		Seed:   1,
		Config: kosha.Config{Replicas: 2, DistributionLevel: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 6 || len(c.Alive()) != 6 {
		t.Fatalf("len=%d alive=%d", c.Len(), len(c.Alive()))
	}

	m := c.Mount(0)
	if _, err := m.WriteFile("/alice/notes/todo.txt", []byte("reproduce kosha")); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Mount(5).ReadFile("/alice/notes/todo.txt")
	if err != nil || string(data) != "reproduce kosha" {
		t.Fatalf("read %q err=%v", data, err)
	}

	// Handle-level API.
	vh, attr, _, err := m.LookupPath("/alice/notes/todo.txt")
	if err != nil || attr.Type != kosha.TypeRegular {
		t.Fatalf("lookup %+v err=%v", attr, err)
	}
	buf, eof, _, err := m.Read(vh, 0, 1024)
	if err != nil || !eof || len(buf) != len(data) {
		t.Fatalf("read via handle: %d bytes eof=%v err=%v", len(buf), eof, err)
	}

	// Failure transparency through the public surface.
	stats := c.StoreStats()
	if len(stats) != 6 {
		t.Fatalf("stats len %d", len(stats))
	}
	for i := range c.Nodes() {
		if c.Nodes()[i].Addr() == "" {
			t.Fatal("node without address")
		}
	}
}

func TestPublicAPIFailover(t *testing.T) {
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:  5,
		Seed:   2,
		Config: kosha.Config{Replicas: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mount(0)
	for i := 0; i < 4; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/docs/f%d", i), []byte("safe")); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a node that is not the client's.
	c.Fail(3)
	c.Stabilize()
	for i := 0; i < 4; i++ {
		data, _, err := m.ReadFile(fmt.Sprintf("/docs/f%d", i))
		if err != nil || string(data) != "safe" {
			t.Fatalf("post-failure read f%d: %q err=%v", i, data, err)
		}
	}
	if err := c.Revive(3); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Alive()); got != 5 {
		t.Fatalf("alive after revive = %d", got)
	}
}

// ExampleNewCluster demonstrates the quickstart flow.
func ExampleNewCluster() {
	c, err := kosha.NewCluster(kosha.ClusterOptions{Nodes: 4, Seed: 7, Config: kosha.Config{Replicas: 1}})
	if err != nil {
		panic(err)
	}
	m := c.Mount(0)
	m.WriteFile("/team/hello.txt", []byte("hello from kosha"))
	data, _, _ := c.Mount(3).ReadFile("/team/hello.txt")
	fmt.Println(string(data))
	// Output: hello from kosha
}
