// Package kosha is the public API of the Kosha reproduction: a peer-to-peer
// enhancement for NFS (Butt, Johnson, Zheng, Hu — ACM/IEEE SC 2004).
//
// Kosha aggregates the unused disk space of many machines into a single
// shared file system with normal NFS semantics. Nodes join a Pastry
// overlay; directories are hashed onto nodes by name up to a configurable
// distribution level; every file is replicated on K leaf-set neighbors; and
// node failures are handled transparently by re-resolving onto a replica.
//
// The quickest way in:
//
//	c, err := kosha.NewCluster(kosha.ClusterOptions{Nodes: 8, Config: kosha.Config{Replicas: 2}})
//	if err != nil { ... }
//	m := c.Mount(0)                                  // any node's koshad
//	m.WriteFile("/alice/notes/todo.txt", []byte("…"))
//	data, _, err := c.Mount(5).ReadFile("/alice/notes/todo.txt") // same image everywhere
//
// Every operation returns a simulated cost (see Cost): the time the
// operation would have taken on the paper's testbed under the calibrated
// network/disk model, which is what the benchmark harnesses report.
package kosha

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/simnet"
)

// Re-exported core types. Config tunes a node (distribution level, replica
// count, redirection attempts, contributed capacity); Mount is the client
// view of the virtual file system through one node's koshad; VH is a
// virtual file handle; Attr carries NFS-style attributes; Cost is simulated
// elapsed time.
type (
	Config     = core.Config
	Node       = core.Node
	Mount      = core.Mount
	VH         = core.VH
	DirEntry   = core.DirEntry
	Attr       = localfs.Attr
	SetAttr    = localfs.SetAttr
	Cost       = simnet.Cost
	FileType   = localfs.FileType
	NodeStat   = cluster.NodeStat
	ClusterOpt = cluster.Options
)

// File types for DirEntry.Type and Attr.Type.
const (
	TypeRegular = localfs.TypeRegular
	TypeDir     = localfs.TypeDir
	TypeSymlink = localfs.TypeSymlink
)

// RootVH is the virtual handle of the mount root.
const RootVH = core.RootVH

// ClusterOptions configures NewCluster.
type ClusterOptions = cluster.Options

// Cluster is a set of Kosha nodes sharing one overlay, emulated in-process
// (the paper's LAN testbed).
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster builds, joins, and stabilizes a Kosha cluster.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	c, err := cluster.New(opts)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c}, nil
}

// Mount attaches a client through node i's koshad; operations on any mount
// see the same file system image.
func (c *Cluster) Mount(i int) *Mount { return c.inner.Mount(i) }

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.inner.Nodes }

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.inner.Nodes) }

// AddNode joins one more node into the overlay; existing content whose keys
// now root at the newcomer migrates to it (mobility transparency).
func (c *Cluster) AddNode() (*Node, error) { return c.inner.AddNode() }

// Fail crashes node i; clients transparently fail over to replicas.
func (c *Cluster) Fail(i int) { c.inner.Fail(i) }

// Revive restarts node i with a fresh overlay identity; its store is purged
// and it re-acquires content for the keys it now owns.
func (c *Cluster) Revive(i int) error { return c.inner.Revive(i) }

// Stabilize runs overlay repair and replica synchronization; call it after
// injecting failures to let the system re-establish its invariants.
func (c *Cluster) Stabilize() { c.inner.Stabilize() }

// StoreStats reports per-node occupancy (files and bytes), useful for
// observing load balance.
func (c *Cluster) StoreStats() []NodeStat { return c.inner.StoreStats() }

// Alive lists the indices of nodes currently up.
func (c *Cluster) Alive() []int { return c.inner.Alive() }
