package kosha_test

import (
	"fmt"

	"repro/kosha"
)

// ExampleCluster_Fail shows transparent fault handling: after the node
// holding a directory crashes, reads silently come from a replica.
func ExampleCluster_Fail() {
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:  6,
		Seed:   42,
		Config: kosha.Config{Replicas: 2},
	})
	if err != nil {
		panic(err)
	}
	m := c.Mount(0)
	m.WriteFile("/prod/config.yaml", []byte("replicas: 2"))

	// Find and crash the node that stores /prod.
	pl, _, _ := c.Nodes()[0].ResolvePath("/prod")
	for i, nd := range c.Nodes() {
		if nd.Addr() == pl.Node && i != 0 {
			c.Fail(i)
		}
	}

	data, _, err := m.ReadFile("/prod/config.yaml")
	fmt.Println(string(data), err)
	// Output: replicas: 2 <nil>
}

// ExampleMount_Statfs shows the aggregated-storage view: the cluster's
// contributed space presented as one pool.
func ExampleMount_Statfs() {
	caps := []int64{1 << 30, 2 << 30, 3 << 30}
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:      3,
		Seed:       7,
		Config:     kosha.Config{Replicas: 1},
		Capacities: caps,
	})
	if err != nil {
		panic(err)
	}
	st, _, _ := c.Mount(0).Statfs()
	fmt.Printf("%d nodes pooling %d GiB\n", st.Nodes, st.TotalBytes>>30)
	// Output: 3 nodes pooling 6 GiB
}

// ExampleConfig_distributionLevel shows how deeper distribution levels
// spread a project tree over more nodes.
func ExampleConfig_distributionLevel() {
	c, err := kosha.NewCluster(kosha.ClusterOptions{
		Nodes:  8,
		Seed:   11,
		Config: kosha.Config{Replicas: -1, DistributionLevel: 2},
	})
	if err != nil {
		panic(err)
	}
	m := c.Mount(0)
	for i := 0; i < 4; i++ {
		m.WriteFile(fmt.Sprintf("/proj/mod%d/src.go", i), []byte("package m"))
	}
	nodes := map[string]bool{}
	for i := 0; i < 4; i++ {
		pl, _, _ := c.Nodes()[0].ResolvePath(fmt.Sprintf("/proj/mod%d", i))
		nodes[string(pl.Node)] = true
	}
	fmt.Println(len(nodes) > 1)
	// Output: true
}
