package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultSampleBuf is the default capacity of a sampler's ring: at one
// sample per second this retains about ten minutes of timeline.
const DefaultSampleBuf = 600

// HistSample is the per-interval view of one histogram: how many
// observations landed in the interval and the quantiles of just those
// observations (computed from the bucket deltas, not the lifetime totals).
type HistSample struct {
	Count uint64 `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P95NS int64  `json:"p95_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
}

// Sample is one timestamped slice of the registry: counter deltas expressed
// as per-second rates, gauge values, and interval histogram quantiles. Only
// metrics that moved during the interval are included, so idle samples stay
// small.
type Sample struct {
	T      time.Time             `json:"t"`
	DurNS  int64                 `json:"dur_ns"`
	Rates  map[string]float64    `json:"rates,omitempty"`
	Gauges map[string]int64      `json:"gauges,omitempty"`
	Hists  map[string]HistSample `json:"hists,omitempty"`
}

// Sampler periodically snapshots a Registry into a bounded ring of deltas:
// the substrate for charting any experiment or soak over time instead of
// reading one end-of-run total. Drive it either with Start (wall-clock
// goroutine, for koshad) or with explicit TickNow calls (deterministic, for
// tests and the bench harness).
type Sampler struct {
	src func() Snapshot

	mu    sync.Mutex
	last  Snapshot
	lastT time.Time
	ring  []Sample
	cap   int
	next  int
	full  bool

	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a sampler over reg retaining up to capacity samples
// (<= 0 selects DefaultSampleBuf).
func NewSampler(reg *Registry, capacity int) *Sampler {
	return NewSamplerFunc(reg.Snapshot, capacity)
}

// NewSamplerFunc samples an arbitrary snapshot source — e.g. a bench harness
// merging every cluster node's registry into one cluster-wide timeline.
func NewSamplerFunc(src func() Snapshot, capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultSampleBuf
	}
	return &Sampler{src: src, cap: capacity}
}

// TickNow takes one sample at the given timestamp. The first tick only
// establishes the baseline snapshot and records nothing. Returns the sample
// recorded (zero Sample on the baseline tick).
func (s *Sampler) TickNow(now time.Time) Sample {
	if s == nil {
		return Sample{}
	}
	snap := s.src()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastT.IsZero() {
		s.last, s.lastT = snap, now
		return Sample{}
	}
	sm := diffSample(s.last, snap, s.lastT, now)
	s.last, s.lastT = snap, now
	if !s.full && s.next == len(s.ring) && len(s.ring) < s.cap {
		s.ring = append(s.ring, sm)
	} else {
		s.ring[s.next] = sm
	}
	s.next++
	if s.next == s.cap {
		s.next = 0
		s.full = true
	}
	return sm
}

func diffSample(prev, cur Snapshot, prevT, now time.Time) Sample {
	sm := Sample{T: now, DurNS: now.Sub(prevT).Nanoseconds()}
	secs := float64(sm.DurNS) / float64(time.Second)
	for name, v := range cur.Counters {
		d := v - prev.Counters[name]
		if d == 0 {
			continue
		}
		if sm.Rates == nil {
			sm.Rates = make(map[string]float64)
		}
		if secs > 0 {
			sm.Rates[name] = float64(d) / secs
		} else {
			sm.Rates[name] = float64(d)
		}
	}
	for name, v := range cur.Gauges {
		if sm.Gauges == nil {
			sm.Gauges = make(map[string]int64)
		}
		sm.Gauges[name] = v
	}
	for name, h := range cur.Hists {
		d := h
		d.Buckets = append([]uint64(nil), h.Buckets...)
		if p, ok := prev.Hists[name]; ok {
			for i := range d.Buckets {
				if i < len(p.Buckets) {
					d.Buckets[i] -= p.Buckets[i]
				}
			}
			d.Count -= p.Count
			d.SumNS -= p.SumNS
		}
		if d.Count == 0 {
			continue
		}
		if sm.Hists == nil {
			sm.Hists = make(map[string]HistSample)
		}
		sm.Hists[name] = HistSample{
			Count: d.Count,
			P50NS: int64(d.Quantile(50)),
			P95NS: int64(d.Quantile(95)),
			P99NS: int64(d.Quantile(99)),
			MaxNS: d.MaxNS,
		}
	}
	return sm
}

// Recent returns up to n samples, oldest first (n <= 0 means all retained).
func (s *Sampler) Recent(n int) []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	size := s.next
	start := 0
	if s.full {
		size = s.cap
		start = s.next
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Sample, 0, n)
	for i := size - n; i < size; i++ {
		out = append(out, s.ring[(start+i)%s.cap])
	}
	return out
}

// Start launches the wall-clock sampling goroutine at the given interval.
// A second Start without Stop is a no-op.
func (s *Sampler) Start(interval time.Duration) {
	if s == nil || interval <= 0 {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()
	s.TickNow(time.Now()) // baseline
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				s.TickNow(now)
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it to exit.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// WriteSamplesJSON dumps samples as a JSON array.
func WriteSamplesJSON(w io.Writer, samples []Sample) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(samples)
}

// WriteSamplesCSV dumps samples in long form — one row per metric per
// sample: t_unix_ns,metric,kind,value. Long form keeps the schema stable as
// metrics come and go, which is what plotting pipelines want.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	if _, err := fmt.Fprintln(w, "t_unix_ns,metric,kind,value"); err != nil {
		return err
	}
	for _, sm := range samples {
		t := sm.T.UnixNano()
		for _, name := range sortedKeysF(sm.Rates) {
			fmt.Fprintf(w, "%d,%s,rate,%.3f\n", t, name, sm.Rates[name])
		}
		for _, name := range sortedKeysI(sm.Gauges) {
			fmt.Fprintf(w, "%d,%s,gauge,%d\n", t, name, sm.Gauges[name])
		}
		for _, name := range sortedKeysH(sm.Hists) {
			h := sm.Hists[name]
			fmt.Fprintf(w, "%d,%s.count,hist,%d\n", t, name, h.Count)
			fmt.Fprintf(w, "%d,%s.p50_ns,hist,%d\n", t, name, h.P50NS)
			fmt.Fprintf(w, "%d,%s.p95_ns,hist,%d\n", t, name, h.P95NS)
			fmt.Fprintf(w, "%d,%s.p99_ns,hist,%d\n", t, name, h.P99NS)
		}
	}
	return nil
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysH(m map[string]HistSample) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
