package obs

import (
	"fmt"
	"strconv"
)

// TraceContext is the propagation header that rides every RPC envelope: a
// 128-bit trace identifier (Hi, Lo) naming one end-to-end operation, and the
// span id of the caller-side stage that issued the RPC. A server receiving a
// context records its own span as a child of Span and hands a re-parented
// context to any nested calls it makes, so replica fan-out and overlay hops
// form a causal tree reassemblable from per-node fragments alone.
//
// The zero value means "no trace": transports skip span recording entirely,
// keeping untraced traffic (stabilization pings, maintenance chatter) free.
type TraceContext struct {
	Hi   uint64 `json:"hi"`
	Lo   uint64 `json:"lo"`
	Span uint64 `json:"span"`
}

// Valid reports whether the context names a real trace.
func (c TraceContext) Valid() bool { return c.Hi != 0 || c.Lo != 0 }

// Child returns the context a server hands to its own outgoing calls: same
// trace, re-parented under the server's span.
func (c TraceContext) Child(span uint64) TraceContext {
	return TraceContext{Hi: c.Hi, Lo: c.Lo, Span: span}
}

// TraceID formats the 128-bit trace id as 32 lowercase hex digits, the form
// koshactl trace -id accepts.
func (c TraceContext) TraceID() string { return FormatTraceID(c.Hi, c.Lo) }

// FormatTraceID renders a (hi, lo) pair as 32 hex digits.
func FormatTraceID(hi, lo uint64) string { return fmt.Sprintf("%016x%016x", hi, lo) }

// ParseTraceID parses the 32-hex-digit form back into (hi, lo). Shorter
// strings are accepted as a bare lo (leading zeros implied) so hand-typed
// ids from test logs still resolve.
func ParseTraceID(s string) (hi, lo uint64, err error) {
	if len(s) > 32 {
		return 0, 0, fmt.Errorf("obs: trace id %q longer than 32 hex digits", s)
	}
	if len(s) > 16 {
		hi, err = strconv.ParseUint(s[:len(s)-16], 16, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
		}
		s = s[len(s)-16:]
	}
	lo, err = strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return hi, lo, nil
}

// SpanRecord is one server-side span fragment: the trace it belongs to, its
// position in the causal tree (Parent -> Span), and what ran where. Recorded
// by the transport layer on the serving node, so every service (nfs, kosha,
// pastry, ctl) gets spans without per-handler instrumentation.
type SpanRecord struct {
	Hi     uint64 `json:"hi"`
	Lo     uint64 `json:"lo"`
	Parent uint64 `json:"parent"`
	Span   uint64 `json:"span"`
	Name   string `json:"name"`
	From   string `json:"from,omitempty"`
	Node   string `json:"node"`
	DurNS  int64  `json:"dur_ns"`
	Err    string `json:"err,omitempty"`
}
