// Package obs is the observability layer threaded through the Kosha stack:
// a lock-cheap metrics registry (counters, gauges, fixed-bucket latency
// histograms), span-style operation traces kept in a bounded ring buffer,
// and an overlay-health event log. One Registry backs every counter in the
// system — the NFS client's RPC counters, the simulated network's traffic
// counters, and the per-node operation metrics all snapshot from here — so
// experiment harnesses and the koshactl stats surface read one source of
// truth instead of three ad-hoc counter types.
//
// Durations are recorded in simulated time under internal/simnet (the cost
// returned by each operation) and in wall time under internal/tcpnet (the
// daemon sets Config.WallClockStats); the registry itself is agnostic and
// stores nanoseconds.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Standard operation names used as histogram keys ("op.<name>") across the
// stack. Mount-level NFS-shaped operations use the NFSv3 procedure
// vocabulary; overlay and maintenance operations use lower-case names.
const (
	OpLookup    = "LOOKUP"
	OpGetattr   = "GETATTR"
	OpSetattr   = "SETATTR"
	OpRead      = "READ"
	OpWrite     = "WRITE"
	OpCreate    = "CREATE"
	OpMkdir     = "MKDIR"
	OpReaddir   = "READDIRPLUS"
	OpRemove    = "REMOVE"
	OpRmdir     = "RMDIR"
	OpRename    = "RENAME"
	OpSymlink   = "SYMLINK"
	OpReadlink  = "READLINK"
	OpCommit    = "COMMIT"
	OpRoute     = "route"
	OpReplicate = "replicate"
	OpFailover  = "failover"
	OpResync    = "resync"
)

// OpCode is a dense index for the mount-level operations above, letting hot
// paths reach their per-op histogram by array index instead of hashing the
// op name on every call.
type OpCode uint8

// Mount-level operation codes, in the same order as the name constants.
const (
	OpcLookup OpCode = iota
	OpcGetattr
	OpcSetattr
	OpcRead
	OpcWrite
	OpcCreate
	OpcMkdir
	OpcReaddir
	OpcRemove
	OpcRmdir
	OpcRename
	OpcSymlink
	OpcReadlink
	OpcCommit
	OpcCount // number of codes; not an operation
)

var opNames = [OpcCount]string{
	OpcLookup:   OpLookup,
	OpcGetattr:  OpGetattr,
	OpcSetattr:  OpSetattr,
	OpcRead:     OpRead,
	OpcWrite:    OpWrite,
	OpcCreate:   OpCreate,
	OpcMkdir:    OpMkdir,
	OpcReaddir:  OpReaddir,
	OpcRemove:   OpRemove,
	OpcRmdir:    OpRmdir,
	OpcRename:   OpRename,
	OpcSymlink:  OpSymlink,
	OpcReadlink: OpReadlink,
	OpcCommit:   OpCommit,
}

// String returns the operation name used as the histogram key suffix.
func (c OpCode) String() string {
	if c < OpcCount {
		return opNames[c]
	}
	return "unknown"
}

// --- counters and gauges ---

// Counter is a monotonically increasing (between resets) uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store overwrites the value (reset support).
func (c *Counter) Store(v uint64) { c.v.Store(v) }

// Gauge is a settable int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// --- histograms ---

// Histogram geometry: bucket i covers durations up to histBase<<i, so the
// fixed 40-bucket table spans 1µs to 2^39µs (~6 days) with factor-2
// resolution. Everything larger lands in the last (overflow) bucket.
const (
	HistBuckets = 40
	histBase    = int64(time.Microsecond)
)

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) time.Duration {
	if i >= HistBuckets-1 {
		return time.Duration(histBase << (HistBuckets - 1))
	}
	return time.Duration(histBase << i)
}

func bucketFor(ns int64) int {
	if ns <= histBase {
		return 0
	}
	v := uint64((ns + histBase - 1) / histBase) // ceil in base units
	b := bits.Len64(v - 1)                      // smallest b with 1<<b >= v
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Histogram is a fixed-bucket latency histogram with atomic buckets. All
// methods are safe for concurrent use and never allocate on the record path.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
}

// Observe records one duration. The total count is not kept separately —
// it is the sum of the buckets, computed at snapshot time — so the record
// path pays two atomic adds plus a usually-settled max check.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.sum.Add(ns)
	if cur := h.max.Load(); ns > cur {
		for !h.max.CompareAndSwap(cur, ns) {
			if cur = h.max.Load(); ns <= cur {
				break
			}
		}
	}
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

func (h *Histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	s.Buckets = make([]uint64, HistBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a histogram, JSON-serializable for
// the CTL stats surface.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MaxNS   int64    `json:"max_ns"`
	Buckets []uint64 `json:"buckets"`
}

// Mean returns the average observed duration.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// Quantile returns the p-th percentile (0..100) as the upper bound of the
// bucket holding that rank, clamped to the observed maximum.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			up := BucketUpper(i)
			if s.MaxNS > 0 && time.Duration(s.MaxNS) < up {
				return time.Duration(s.MaxNS)
			}
			return up
		}
	}
	return time.Duration(s.MaxNS)
}

// merge adds o into s (bucket-wise; shapes are fixed so they always match).
func (s *HistSnapshot) merge(o HistSnapshot) {
	if s.Buckets == nil {
		s.Buckets = make([]uint64, HistBuckets)
	}
	for i := range o.Buckets {
		if i < len(s.Buckets) {
			s.Buckets[i] += o.Buckets[i]
		}
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
}

// --- registry ---

// Registry holds named counters, gauges, and histograms. Lookup is a
// read-locked map access; the returned metric pointers are stable, so hot
// paths cache them and pay only atomic operations per record.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry. Maps are pre-sized for a typical
// node's metric set so construction-time registration does not rehash.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter, 16),
		gauges:   make(map[string]*Gauge, 4),
		hists:    make(map[string]*Histogram, 32),
	}
}

// Histograms returns (creating if needed) the named histograms in order,
// with one lock acquisition and one backing allocation for every histogram
// created. Node construction registers its whole per-op set this way.
func (r *Registry) Histograms(names ...string) []*Histogram {
	out := make([]*Histogram, len(names))
	r.mu.Lock()
	defer r.mu.Unlock()
	missing := 0
	for _, name := range names {
		if r.hists[name] == nil {
			missing++
		}
	}
	slab := make([]Histogram, missing)
	for i, name := range names {
		h, ok := r.hists[name]
		if !ok {
			slab, h = slab[1:], &slab[0]
			r.hists[name] = h
		}
		out[i] = h
	}
	return out
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Observe records a duration into the named histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	r.Histogram(name).Observe(d)
}

// Reset zeroes every metric in place. Metric entries are never removed, so a
// pointer cached by a hot path (or a name a reader is about to query) stays
// valid across resets — resetting loses no metric entries.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Store(0)
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot copies every metric. The result is JSON-serializable and is the
// payload of the CTL stats procedure.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms"`
}

// Snapshot returns a point-in-time copy of the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	for name, h := range r.hists {
		s.Hists[name] = h.snapshot()
	}
	return s
}

// Merge folds another snapshot into this one: counters and histogram buckets
// add, gauges add. Used by koshactl to build the cluster-wide aggregate from
// per-node snapshots.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	if len(o.Gauges) > 0 {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		for k, v := range o.Gauges {
			s.Gauges[k] += v
		}
	}
	if s.Hists == nil {
		s.Hists = make(map[string]HistSnapshot)
	}
	for k, v := range o.Hists {
		h := s.Hists[k]
		h.merge(v)
		s.Hists[k] = h
	}
}

// HistNames returns the snapshot's histogram names, sorted, for stable
// rendering.
func (s Snapshot) HistNames() []string {
	names := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MeanRatio divides two counters (0 when the denominator is 0); the mean
// route hop count is MeanRatio("route.hops", "route.count").
func (s Snapshot) MeanRatio(num, den string) float64 {
	d := s.Counters[den]
	if d == 0 {
		return 0
	}
	return float64(s.Counters[num]) / float64(d)
}
