package obs

import (
	"sort"
)

// TraceNode is one node of an assembled causal tree: a server-side span and
// the spans it caused (nested RPCs the server issued while handling it).
type TraceNode struct {
	Span     SpanRecord   `json:"span"`
	Children []*TraceNode `json:"children,omitempty"`
}

// AssembledTrace is the cluster-wide view of one operation, rebuilt from the
// originating node's Trace plus server-span fragments collected from every
// live node. Roots are the spans directly caused by the origin (route hops,
// the serving NFS RPC, the primary apply); deeper fan-out (mirrors pushed by
// the primary) hangs beneath them. Spans whose parent fragment was evicted
// from its ring surface as additional roots rather than being dropped.
type AssembledTrace struct {
	Hi     uint64       `json:"hi"`
	Lo     uint64       `json:"lo"`
	Origin *Trace       `json:"origin,omitempty"`
	Roots  []*TraceNode `json:"roots,omitempty"`
	// NodeCount is how many distinct cluster nodes contributed spans
	// (including the origin).
	NodeCount int `json:"node_count"`
	SpanCount int `json:"span_count"`
}

// Assemble rebuilds the causal tree for one trace id from an optional origin
// trace and span fragments gathered across the cluster. Duplicate fragments
// (the same span collected twice) are dropped; ordering is deterministic
// (children sorted by span id) so identical inputs render identically.
func Assemble(hi, lo uint64, origin *Trace, frags []SpanRecord) *AssembledTrace {
	at := &AssembledTrace{Hi: hi, Lo: lo, Origin: origin}
	nodes := make(map[uint64]*TraceNode, len(frags))
	seen := make(map[string]bool)
	order := make([]uint64, 0, len(frags))
	for _, f := range frags {
		if f.Hi != hi || f.Lo != lo || f.Span == 0 {
			continue
		}
		if nodes[f.Span] != nil {
			continue
		}
		nodes[f.Span] = &TraceNode{Span: f}
		order = append(order, f.Span)
		if !seen[f.Node] {
			seen[f.Node] = true
		}
		at.SpanCount++
	}
	if origin != nil && origin.Node != "" && !seen[origin.Node] {
		seen[origin.Node] = true
	}
	at.NodeCount = len(seen)

	rootSpan := uint64(0)
	if origin != nil {
		rootSpan = origin.Span
	}
	for _, id := range order {
		n := nodes[id]
		if n.Span.Parent != rootSpan {
			if p := nodes[n.Span.Parent]; p != nil {
				p.Children = append(p.Children, n)
				continue
			}
		}
		at.Roots = append(at.Roots, n)
	}
	sortTree(at.Roots)
	return at
}

func sortTree(ns []*TraceNode) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Span < ns[j].Span.Span })
	for _, n := range ns {
		sortTree(n.Children)
	}
}

// Walk visits every node of the tree depth-first, parents before children.
func (a *AssembledTrace) Walk(fn func(depth int, n *TraceNode)) {
	var rec func(depth int, ns []*TraceNode)
	rec = func(depth int, ns []*TraceNode) {
		for _, n := range ns {
			fn(depth, n)
			rec(depth+1, n.Children)
		}
	}
	rec(0, a.Roots)
}
