package obs

import (
	"sync"
	"time"
)

// Overlay-health event kinds.
const (
	EvJoin       = "join"
	EvDeparture  = "departure"
	EvFailover   = "failover"
	EvResync     = "resync"
	EvCachePurge = "cache-purge"
	// Background-maintenance event kinds (internal/maint): a scrub-detected
	// divergence being repaired, and a rebalancer subtree migration.
	EvScrubRepair   = "scrub-repair"
	EvRebalanceMove = "rebalance-move"
)

// Counter names for RPC retry accounting, shared by the core retrier and the
// experiment harnesses that report them.
const (
	// CtrRetries counts transient-failure retransmissions the RPC retrier
	// issued (each backoff-then-retry is one).
	CtrRetries = "rpc.retries"
	// CtrGiveups counts calls that exhausted the retry budget and surfaced
	// ErrUnreachable to the caller (genuine node-death suspicion).
	CtrGiveups = "rpc.giveups"
)

// Event is one overlay-health occurrence: a leaf-set join or departure, a
// transparent failover, a replica resync, or a cache purge.
type Event struct {
	Seq    uint64    `json:"seq"`
	Kind   string    `json:"kind"`
	Node   string    `json:"node,omitempty"` // node the event concerns (joined/left/failed peer)
	Detail string    `json:"detail,omitempty"`
	At     time.Time `json:"at"`
}

// DefaultEventBuf is the default capacity of the per-node event ring buffer.
// Per-kind counts survive eviction, so the ring only bounds how much recent
// detail `koshactl stats` can show; it is kept small because every node in
// every simulated cluster pays for it up front.
const DefaultEventBuf = 128

// EventLog is a bounded ring of recent events plus running per-kind counts
// (the counts survive ring eviction so stats stay accurate).
type EventLog struct {
	mu     sync.Mutex
	cap    int
	seq    uint64
	ring   []Event
	next   int
	full   bool
	counts map[string]uint64
}

// NewEventLog returns a log retaining up to capacity events (<= 0 uses
// DefaultEventBuf).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventBuf
	}
	return &EventLog{
		cap:    capacity,
		counts: make(map[string]uint64),
	}
}

// Add records an event. The ring grows geometrically up to cap so quiet
// nodes (and the many short-lived nodes of simulated clusters) never pay
// for the full buffer.
func (l *EventLog) Add(kind, node, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev := Event{Seq: l.seq, Kind: kind, Node: node, Detail: detail, At: time.Now()}
	if !l.full && l.next == len(l.ring) && len(l.ring) < l.cap {
		if len(l.ring) == cap(l.ring) {
			grown := cap(l.ring) * 2
			if grown == 0 {
				grown = 8
			}
			if grown > l.cap {
				grown = l.cap
			}
			next := make([]Event, len(l.ring), grown)
			copy(next, l.ring)
			l.ring = next
		}
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
	}
	l.next++
	if l.next == l.cap {
		l.next = 0
		l.full = true
	}
	l.counts[kind]++
	l.mu.Unlock()
}

// Count returns how many events of kind have ever been recorded.
func (l *EventLog) Count(kind string) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[kind]
}

// EventsSnapshot is the JSON-serializable view of an EventLog.
type EventsSnapshot struct {
	Counts map[string]uint64 `json:"counts"`
	Recent []Event           `json:"recent,omitempty"`
}

// Snapshot returns per-kind totals plus up to n recent events, newest first
// (n <= 0 means all retained).
func (l *EventLog) Snapshot(n int) EventsSnapshot {
	if l == nil {
		return EventsSnapshot{Counts: map[string]uint64{}}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := EventsSnapshot{Counts: make(map[string]uint64, len(l.counts))}
	for k, v := range l.counts {
		s.Counts[k] = v
	}
	size := l.next
	if l.full {
		size = l.cap
	}
	if n <= 0 || n > size {
		n = size
	}
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += l.cap
		}
		s.Recent = append(s.Recent, l.ring[idx])
	}
	return s
}

// Merge folds another snapshot's counts into this one (recent lists are not
// merged — cluster aggregation only needs the totals).
func (s *EventsSnapshot) Merge(o EventsSnapshot) {
	if s.Counts == nil {
		s.Counts = make(map[string]uint64)
	}
	for k, v := range o.Counts {
		s.Counts[k] += v
	}
}
