package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceIDFormatParse(t *testing.T) {
	hi, lo := uint64(0x0123456789abcdef), uint64(0xfedcba9876543210)
	s := FormatTraceID(hi, lo)
	if len(s) != 32 {
		t.Fatalf("FormatTraceID length = %d, want 32 (%q)", len(s), s)
	}
	gh, gl, err := ParseTraceID(s)
	if err != nil || gh != hi || gl != lo {
		t.Fatalf("round trip: got (%x, %x) err=%v", gh, gl, err)
	}
	// Short form: fewer than 16 digits parse as a bare lo.
	gh, gl, err = ParseTraceID("beef")
	if err != nil || gh != 0 || gl != 0xbeef {
		t.Fatalf("short form: got (%x, %x) err=%v", gh, gl, err)
	}
	// 17 digits split across hi and lo.
	gh, gl, err = ParseTraceID("10000000000000002")
	if err != nil || gh != 1 || gl != 2 {
		t.Fatalf("17 digits: got (%x, %x) err=%v", gh, gl, err)
	}
	if _, _, err := ParseTraceID(strings.Repeat("f", 33)); err == nil {
		t.Fatal("33 digits accepted")
	}
	if _, _, err := ParseTraceID("xyz"); err == nil {
		t.Fatal("non-hex accepted")
	}
}

func TestTraceContextChildAndValid(t *testing.T) {
	var zero TraceContext
	if zero.Valid() {
		t.Fatal("zero context reports valid")
	}
	c := TraceContext{Hi: 1, Lo: 2, Span: 3}
	if !c.Valid() {
		t.Fatal("context not valid")
	}
	ch := c.Child(9)
	if ch.Hi != 1 || ch.Lo != 2 || ch.Span != 9 {
		t.Fatalf("Child = %+v", ch)
	}
	if c.TraceID() != FormatTraceID(1, 2) {
		t.Fatalf("TraceID = %q", c.TraceID())
	}
}

func TestTracerSeededIDDeterminism(t *testing.T) {
	mk := func(seed uint64) []uint64 {
		tr := NewTracer(8)
		tr.SeedIDs(seed)
		var out []uint64
		for i := 0; i < 4; i++ {
			op := tr.Start("READ", "/p", "n")
			out = append(out, op.Hi, op.Lo, op.Span, tr.NextSpanID())
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id %d differs across same-seed tracers: %x vs %x", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("id %d is zero — indistinguishable from no-trace", i)
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical id streams")
	}
}

func TestSpanRingSpansFor(t *testing.T) {
	tr := NewTracer(4) // span ring = 4 * spanRingFactor = 16
	for i := 0; i < 10; i++ {
		tr.RecordSpan(SpanRecord{Hi: 1, Lo: 1, Span: uint64(i + 1), Name: "a"})
		tr.RecordSpan(SpanRecord{Hi: 2, Lo: 2, Span: uint64(i + 100), Name: "b"})
	}
	got := tr.SpansFor(1, 1)
	// 20 records through a 16-slot ring: the oldest 4 are gone; of the 16
	// retained, half belong to trace (1,1).
	if len(got) != 8 {
		t.Fatalf("SpansFor(1,1) = %d records, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Span < got[i-1].Span {
			t.Fatalf("spans not oldest-first: %v", got)
		}
	}
	if len(tr.SpansFor(3, 3)) != 0 {
		t.Fatal("unknown trace returned spans")
	}
}

func TestSlowFlightRecorder(t *testing.T) {
	tr := NewTracer(2) // tiny main ring so chatter wraps it quickly
	tr.SetSlowThreshold(int64(time.Millisecond))

	slow := tr.Start("WRITE", "/slow", "n0")
	tr.Finish(slow, 5*time.Millisecond, nil)
	// Flood the main ring with fast ops.
	for i := 0; i < 10; i++ {
		tr.Finish(tr.Start("READ", "/fast", "n0"), time.Microsecond, nil)
	}
	got := tr.Slow(0)
	if len(got) != 1 || got[0].Path != "/slow" {
		t.Fatalf("Slow = %+v, want the one slow op", got)
	}
	// The main ring evicted it, but FindTrace still resolves via the recorder.
	if _, ok := tr.FindTrace(slow.Hi, slow.Lo); !ok {
		t.Fatal("slow trace evicted despite flight recorder")
	}
	// Below-threshold ops never enter the recorder.
	if len(tr.Slow(0)) != 1 {
		t.Fatal("fast ops leaked into the slow ring")
	}
}

func TestAssembleTree(t *testing.T) {
	origin := &Trace{Hi: 7, Lo: 8, Span: 100, Node: "n0", Op: "WRITE"}
	frags := []SpanRecord{
		{Hi: 7, Lo: 8, Parent: 100, Span: 2, Name: "pastry.next-hop", Node: "n1"},
		{Hi: 7, Lo: 8, Parent: 100, Span: 1, Name: "nfs.WRITE", Node: "n2"},
		{Hi: 7, Lo: 8, Parent: 1, Span: 3, Name: "kosha.mirror", Node: "n3"},
		{Hi: 7, Lo: 8, Parent: 1, Span: 3, Name: "kosha.mirror", Node: "n3"}, // duplicate
		{Hi: 9, Lo: 9, Parent: 100, Span: 4, Name: "other-trace", Node: "n4"},
		{Hi: 7, Lo: 8, Parent: 999, Span: 5, Name: "orphan", Node: "n4"}, // evicted parent
	}
	at := Assemble(7, 8, origin, frags)
	if at.SpanCount != 4 {
		t.Fatalf("SpanCount = %d, want 4 (dedup + foreign filtered)", at.SpanCount)
	}
	// n0 (origin), n1, n2, n3, n4.
	if at.NodeCount != 5 {
		t.Fatalf("NodeCount = %d, want 5", at.NodeCount)
	}
	// Roots: spans 1, 2 (children of origin) and 5 (orphan), sorted by id.
	if len(at.Roots) != 3 || at.Roots[0].Span.Span != 1 || at.Roots[1].Span.Span != 2 || at.Roots[2].Span.Span != 5 {
		t.Fatalf("roots = %+v", at.Roots)
	}
	kids := at.Roots[0].Children
	if len(kids) != 1 || kids[0].Span.Name != "kosha.mirror" {
		t.Fatalf("children of serving span = %+v", kids)
	}
	var walked []uint64
	at.Walk(func(depth int, n *TraceNode) {
		if n.Span.Span == 3 && depth != 1 {
			t.Fatalf("mirror at depth %d", depth)
		}
		walked = append(walked, n.Span.Span)
	})
	if len(walked) != 4 {
		t.Fatalf("Walk visited %d nodes", len(walked))
	}
	// Without an origin, children of the (unknown) root span become roots.
	at = Assemble(7, 8, nil, frags)
	if len(at.Roots) != 3 || at.NodeCount != 4 {
		t.Fatalf("no-origin assemble: roots=%d nodes=%d", len(at.Roots), at.NodeCount)
	}
}

func TestSamplerDeltasAndRing(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 3)
	t0 := time.Unix(1000, 0)
	if sm := s.TickNow(t0); sm.Rates != nil || sm.Gauges != nil {
		t.Fatalf("baseline tick recorded data: %+v", sm)
	}
	if len(s.Recent(0)) != 0 {
		t.Fatal("baseline tick entered the ring")
	}

	reg.Counter("net.messages").Add(10)
	reg.Gauge("overlay.leafset.size").Set(4)
	reg.Observe("op.READ", 3*time.Millisecond)
	sm := s.TickNow(t0.Add(2 * time.Second))
	if got := sm.Rates["net.messages"]; got != 5 {
		t.Fatalf("rate = %v, want 5/s", got)
	}
	if sm.Gauges["overlay.leafset.size"] != 4 {
		t.Fatalf("gauge = %v", sm.Gauges)
	}
	h, ok := sm.Hists["op.READ"]
	if !ok || h.Count != 1 || h.P50NS <= 0 {
		t.Fatalf("hist sample = %+v", h)
	}

	// An idle interval reports no counter movement or hist activity.
	sm = s.TickNow(t0.Add(3 * time.Second))
	if len(sm.Rates) != 0 || len(sm.Hists) != 0 {
		t.Fatalf("idle interval not empty: %+v", sm)
	}

	// Ring stays bounded at capacity, oldest-first.
	for i := 0; i < 5; i++ {
		reg.Counter("net.messages").Add(1)
		s.TickNow(t0.Add(time.Duration(4+i) * time.Second))
	}
	got := s.Recent(0)
	if len(got) != 3 {
		t.Fatalf("ring size = %d, want cap 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i].T.After(got[i-1].T) {
			t.Fatalf("Recent not oldest-first: %v then %v", got[i-1].T, got[i].T)
		}
	}
}

func TestSamplerFuncMergesSources(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	merged := func() Snapshot {
		sa, sb := a.Snapshot(), b.Snapshot()
		out := Snapshot{Counters: map[string]uint64{}}
		for k, v := range sa.Counters {
			out.Counters[k] += v
		}
		for k, v := range sb.Counters {
			out.Counters[k] += v
		}
		return out
	}
	s := NewSamplerFunc(merged, 8)
	t0 := time.Unix(0, 0)
	s.TickNow(t0)
	a.Counter("x").Add(3)
	b.Counter("x").Add(4)
	sm := s.TickNow(t0.Add(time.Second))
	if sm.Rates["x"] != 7 {
		t.Fatalf("merged rate = %v, want 7", sm.Rates["x"])
	}
}

func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net.messages").Add(12)
	reg.Gauge("overlay.leafset.size").Set(9)
	reg.Observe("op.READ", 500*time.Nanosecond) // bucket 0
	reg.Observe("op.READ", 3*time.Microsecond)  // bucket 2

	var b strings.Builder
	if err := WriteProm(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE kosha_net_messages_total counter",
		"kosha_net_messages_total 12",
		"# TYPE kosha_overlay_leafset_size gauge",
		"kosha_overlay_leafset_size 9",
		"# TYPE kosha_op_read_ns histogram",
		"kosha_op_read_ns_bucket{le=\"+Inf\"} 2",
		"kosha_op_read_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: bucket 2's le line includes bucket 0's count.
	le2 := "kosha_op_read_ns_bucket{le=\"" + "4000" + "\"} 2"
	if !strings.Contains(out, le2) {
		t.Fatalf("cumulative bucket %q missing:\n%s", le2, out)
	}
}

func TestWriteSamplesCSVLongForm(t *testing.T) {
	s := []Sample{{
		T:      time.Unix(5, 0),
		DurNS:  int64(time.Second),
		Rates:  map[string]float64{"net.messages": 2.5},
		Gauges: map[string]int64{"overlay.replica.lag": 1},
		Hists:  map[string]HistSample{"op.READ": {Count: 3, P50NS: 10, P95NS: 20, P99NS: 30}},
	}}
	var b strings.Builder
	if err := WriteSamplesCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "t_unix_ns,metric,kind,value" {
		t.Fatalf("header = %q", lines[0])
	}
	want := map[string]bool{
		"5000000000,net.messages,rate,2.500":     false,
		"5000000000,overlay.replica.lag,gauge,1": false,
		"5000000000,op.READ.count,hist,3":        false,
	}
	for _, ln := range lines[1:] {
		if _, ok := want[ln]; ok {
			want[ln] = true
		}
	}
	for ln, seen := range want {
		if !seen {
			t.Fatalf("CSV missing row %q:\n%s", ln, b.String())
		}
	}
}
