package obs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{30 * 24 * time.Hour, HistBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketFor(int64(c.d)); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < HistBuckets; i++ {
		if got := bucketFor(int64(BucketUpper(i))); got != i && i < HistBuckets-1 {
			t.Errorf("bucketFor(BucketUpper(%d)) = %d", i, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations spread over two decades; Quantile returns the bucket
	// upper bound, so check rank ordering rather than exact values.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * 10 * time.Microsecond) // 10µs..1ms
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.MaxNS != int64(time.Millisecond) {
		t.Fatalf("max = %v, want 1ms", time.Duration(s.MaxNS))
	}
	p50, p95, p99 := s.Quantile(50), s.Quantile(95), s.Quantile(99)
	if p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// p50 of 10µs..1ms uniform is ~500µs; bucket upper bound can at most
	// double that.
	if p50 < 500*time.Microsecond || p50 > time.Millisecond {
		t.Errorf("p50 = %v, want in [500µs, 1ms]", p50)
	}
	if p99 > time.Duration(s.MaxNS) {
		t.Errorf("p99 = %v exceeds max %v", p99, time.Duration(s.MaxNS))
	}
	if got := s.Mean(); got <= 0 {
		t.Errorf("mean = %v, want > 0", got)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(5 * time.Microsecond)
		b.Observe(3 * time.Millisecond)
	}
	sa, sb := a.snapshot(), b.snapshot()
	sa.merge(sb)
	if sa.Count != 20 {
		t.Fatalf("merged count = %d, want 20", sa.Count)
	}
	if sa.MaxNS != int64(3*time.Millisecond) {
		t.Errorf("merged max = %v, want 3ms", time.Duration(sa.MaxNS))
	}
	wantSum := int64(10*5*time.Microsecond + 10*3*time.Millisecond)
	if sa.SumNS != wantSum {
		t.Errorf("merged sum = %d, want %d", sa.SumNS, wantSum)
	}
	var total uint64
	for _, c := range sa.Buckets {
		total += c
	}
	if total != 20 {
		t.Errorf("merged bucket total = %d, want 20", total)
	}
}

func TestRegistryResetInPlace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("h")
	g := r.Gauge("g")
	c.Add(7)
	g.Set(-3)
	h.Observe(time.Millisecond)
	r.Reset()
	// The same pointers must still be live and zeroed — Reset never removes
	// entries, which is what makes cached metric pointers safe.
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Fatalf("reset left values: c=%d g=%d h=%d", c.Load(), g.Load(), h.Count())
	}
	if r.Counter("x") != c || r.Histogram("h") != h || r.Gauge("g") != g {
		t.Fatal("reset replaced metric pointers")
	}
	c.Add(1)
	if r.Snapshot().Counters["x"] != 1 {
		t.Fatal("cached pointer disconnected from registry after reset")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Add(1)
				r.Observe(fmt.Sprintf("h%d", i%2), time.Duration(j)*time.Microsecond)
				if j%100 == 0 {
					r.Reset()
				}
				_ = r.Snapshot()
			}
		}(i)
	}
	wg.Wait()
}

func TestSnapshotMergeAndMeanRatio(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("route.count").Add(2)
	r1.Counter("route.hops").Add(3)
	r2.Counter("route.count").Add(2)
	r2.Counter("route.hops").Add(5)
	r1.Observe("op.LOOKUP", time.Millisecond)
	r2.Observe("op.LOOKUP", 2*time.Millisecond)
	r2.Observe("op.READ", time.Microsecond)

	var agg Snapshot
	agg.Merge(r1.Snapshot())
	agg.Merge(r2.Snapshot())
	if got := agg.MeanRatio("route.hops", "route.count"); got != 2.0 {
		t.Errorf("mean route hops = %v, want 2.0", got)
	}
	if agg.Hists["op.LOOKUP"].Count != 2 {
		t.Errorf("merged LOOKUP count = %d, want 2", agg.Hists["op.LOOKUP"].Count)
	}
	names := agg.HistNames()
	if len(names) != 2 || names[0] != "op.LOOKUP" || names[1] != "op.READ" {
		t.Errorf("HistNames = %v", names)
	}
	if got := agg.MeanRatio("nope", "also-nope"); got != 0 {
		t.Errorf("MeanRatio on missing counters = %v, want 0", got)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		sp := tr.Start("LOOKUP", fmt.Sprintf("/p%d", i), "node00")
		sp.AddHop("ab12", "node01", 2)
		sp.SetServedBy("node01")
		tr.Finish(sp, time.Duration(i)*time.Millisecond, nil)
	}
	got := tr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want 4", len(got))
	}
	// Newest first: paths /p10../p7.
	for i, want := range []string{"/p10", "/p9", "/p8", "/p7"} {
		if got[i].Path != want {
			t.Errorf("recent[%d].Path = %s, want %s", i, got[i].Path, want)
		}
	}
	if got[0].ServedBy != "node01" || len(got[0].Hops) != 1 {
		t.Errorf("trace lost fields: %+v", got[0])
	}
	if sub := tr.Recent(2); len(sub) != 2 || sub[0].Path != "/p10" {
		t.Errorf("Recent(2) = %+v", sub)
	}
}

func TestTracerDisabledAndNilSafety(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.Start("READ", "/x", "node00")
	if sp != nil {
		t.Fatal("disabled tracer returned a trace")
	}
	// Every mutator must tolerate the nil trace.
	sp.AddHop("a", "b", 1)
	sp.AddSpan("rpc", "node01", time.Millisecond)
	sp.SetServedBy("node01")
	sp.SetReplicas(2)
	sp.Failover()
	tr.Finish(sp, time.Millisecond, errors.New("boom"))
	if got := tr.Recent(0); got != nil {
		t.Fatalf("disabled tracer retained traces: %v", got)
	}
	var nilTracer *Tracer
	if nilTracer.Start("X", "/", "n") != nil || nilTracer.Recent(1) != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestEventLogCountsSurviveEviction(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Add(EvFailover, "node03", "x")
	}
	l.Add(EvResync, "node01", "")
	s := l.Snapshot(0)
	if s.Counts[EvFailover] != 10 || s.Counts[EvResync] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if len(s.Recent) != 4 {
		t.Fatalf("retained %d events, want 4", len(s.Recent))
	}
	if s.Recent[0].Kind != EvResync {
		t.Errorf("newest event kind = %s, want %s", s.Recent[0].Kind, EvResync)
	}
	var agg EventsSnapshot
	agg.Merge(s)
	agg.Merge(s)
	if agg.Counts[EvFailover] != 20 {
		t.Errorf("merged failover count = %d, want 20", agg.Counts[EvFailover])
	}
	var nilLog *EventLog
	nilLog.Add(EvJoin, "n", "")
	if nilLog.Count(EvJoin) != 0 {
		t.Fatal("nil event log not inert")
	}
}
