package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4). Naming scheme: every metric is prefixed kosha_ and the
// registry's dotted names are mangled to underscores, so "net.messages"
// becomes kosha_net_messages_total and "op.LOOKUP" the histogram
// kosha_op_lookup_ns. Histograms are exported in nanoseconds with the
// registry's fixed factor-2 bucket bounds.
func WriteProm(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	for _, name := range s.HistNames() {
		h := s.Hists[name]
		pn := promName(name) + "_ns"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for i, b := range h.Buckets {
			cum += b
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, int64(BucketUpper(i)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.SumNS, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName mangles a registry metric name into a valid Prometheus metric
// name: kosha_ prefix, lowercase, [a-z0-9_] only.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("kosha_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
