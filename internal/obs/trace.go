package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceBuf is the default capacity of the per-node trace ring buffer.
const DefaultTraceBuf = 256

// Hop is one overlay routing step: the node contacted, its nodeId, and how
// many nodeId digits it shares with the destination key (the prefix-match
// depth that Pastry routing is improving at each step).
type Hop struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Prefix int    `json:"prefix"`
}

// Span is one timed stage inside an operation (resolve, route, an NFS RPC,
// replica fan-out, a failover retry).
type Span struct {
	Name  string `json:"name"`
	Node  string `json:"node,omitempty"`
	DurNS int64  `json:"dur_ns"`
}

// Trace follows one virtual-mount operation end to end: Mount resolve →
// pastry route (hop by hop) → NFS RPC → replica fan-out. A trace is built by
// a single goroutine (the one running the op) and published to the ring
// buffer by Finish.
type Trace struct {
	ID        uint64    `json:"id"`
	Op        string    `json:"op"`
	Path      string    `json:"path"`
	Node      string    `json:"node"` // originating node
	Start     time.Time `json:"start"`
	TotalNS   int64     `json:"total_ns"`
	Hops      []Hop     `json:"hops,omitempty"`
	Spans     []Span    `json:"spans,omitempty"`
	ServedBy  string    `json:"served_by,omitempty"` // node that served the final NFS RPC
	Replicas  int       `json:"replicas,omitempty"`  // replica fan-out of the final apply
	Failovers int       `json:"failovers,omitempty"`
	Err       string    `json:"err,omitempty"`
}

// All mutators are nil-safe so instrumentation points never need to guard
// against tracing being disabled.

// AddHop appends an overlay hop.
func (t *Trace) AddHop(id, addr string, prefix int) {
	if t == nil {
		return
	}
	t.Hops = append(t.Hops, Hop{ID: id, Addr: addr, Prefix: prefix})
}

// AddSpan appends a timed stage.
func (t *Trace) AddSpan(name, node string, d time.Duration) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{Name: name, Node: node, DurNS: int64(d)})
}

// SetServedBy records the node that served the operation's final NFS RPC.
func (t *Trace) SetServedBy(node string) {
	if t == nil || node == "" {
		return
	}
	t.ServedBy = node
}

// SetReplicas records the replica fan-out width of the final apply.
func (t *Trace) SetReplicas(k int) {
	if t == nil {
		return
	}
	t.Replicas = k
}

// Failover counts a transparent failover retry.
func (t *Trace) Failover() {
	if t == nil {
		return
	}
	t.Failovers++
}

// Tracer hands out traces and keeps the most recent ones in a bounded ring
// buffer. A zero-capacity tracer is disabled and returns nil traces (every
// Trace mutator is nil-safe, so instrumented paths pay one nil check).
type Tracer struct {
	cap  int
	seq  atomic.Uint64
	mu   sync.Mutex
	ring []Trace
	next int
	full bool
}

// NewTracer returns a tracer retaining up to capacity traces; capacity <= 0
// disables tracing.
func NewTracer(capacity int) *Tracer {
	return &Tracer{cap: capacity}
}

// Enabled reports whether the tracer retains traces; instrumentation can
// skip building trace labels when it does not.
func (t *Tracer) Enabled() bool { return t != nil && t.cap > 0 }

// Start begins a trace for one operation, or returns nil if disabled.
func (t *Tracer) Start(op, path, node string) *Trace {
	if t == nil || t.cap <= 0 {
		return nil
	}
	return &Trace{
		ID:    t.seq.Add(1),
		Op:    op,
		Path:  path,
		Node:  node,
		Start: time.Now(),
	}
}

// Finish records the total duration and publishes the trace into the ring.
// The ring grows geometrically up to cap so lightly-used tracers never pay
// for the full buffer.
func (t *Tracer) Finish(tr *Trace, total time.Duration, err error) {
	if t == nil || tr == nil {
		return
	}
	tr.TotalNS = int64(total)
	if err != nil {
		tr.Err = err.Error()
	}
	t.mu.Lock()
	if !t.full && t.next == len(t.ring) && len(t.ring) < t.cap {
		if len(t.ring) == cap(t.ring) {
			grown := cap(t.ring) * 2
			if grown == 0 {
				grown = 8
			}
			if grown > t.cap {
				grown = t.cap
			}
			next := make([]Trace, len(t.ring), grown)
			copy(next, t.ring)
			t.ring = next
		}
		t.ring = append(t.ring, *tr)
	} else {
		t.ring[t.next] = *tr
	}
	t.next++
	if t.next == t.cap {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns up to n of the most recent traces, newest first. n <= 0
// means all retained traces. The result is a deep copy: Hops and Spans are
// cloned so callers can hold or mutate a snapshot without aliasing the ring
// (a shallow struct copy would share the slices' backing arrays).
func (t *Tracer) Recent(n int) []Trace {
	if t == nil || t.cap <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = t.cap
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := t.next - 1 - i
		if idx < 0 {
			idx += t.cap
		}
		tr := t.ring[idx]
		tr.Hops = append([]Hop(nil), tr.Hops...)
		tr.Spans = append([]Span(nil), tr.Spans...)
		out = append(out, tr)
	}
	return out
}
