package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceBuf is the default capacity of the per-node trace ring buffer.
const DefaultTraceBuf = 256

// DefaultSlowBuf is the capacity of the slow-op flight recorder ring: traces
// exceeding the SLO threshold are copied here so a burst of fast chatter
// cannot evict the interesting outliers from observation.
const DefaultSlowBuf = 64

// spanRingFactor sizes the server-span fragment ring relative to the trace
// ring: one traced op can fan out to several server spans (route hops, the
// serving RPC, K mirrors), so fragments need proportionally more room.
const spanRingFactor = 4

// Hop is one overlay routing step: the node contacted, its nodeId, and how
// many nodeId digits it shares with the destination key (the prefix-match
// depth that Pastry routing is improving at each step).
type Hop struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Prefix int    `json:"prefix"`
}

// Span is one timed stage inside an operation (resolve, route, an NFS RPC,
// replica fan-out, a failover retry).
type Span struct {
	Name  string `json:"name"`
	Node  string `json:"node,omitempty"`
	DurNS int64  `json:"dur_ns"`
}

// Trace follows one virtual-mount operation end to end: Mount resolve →
// pastry route (hop by hop) → NFS RPC → replica fan-out. A trace is built by
// a single goroutine (the one running the op) and published to the ring
// buffer by Finish.
type Trace struct {
	ID uint64 `json:"id"`
	// Hi/Lo are the cluster-wide 128-bit trace id carried across RPC
	// boundaries by TraceContext; Span is the id of the trace's root span
	// (every server-side fragment of this op descends from it). Drawn from
	// the tracer's seeded generator so runs replay deterministically.
	Hi        uint64    `json:"hi,omitempty"`
	Lo        uint64    `json:"lo,omitempty"`
	Span      uint64    `json:"span,omitempty"`
	Op        string    `json:"op"`
	Path      string    `json:"path"`
	Node      string    `json:"node"` // originating node
	Start     time.Time `json:"start"`
	TotalNS   int64     `json:"total_ns"`
	Hops      []Hop     `json:"hops,omitempty"`
	Spans     []Span    `json:"spans,omitempty"`
	ServedBy  string    `json:"served_by,omitempty"` // node that served the final NFS RPC
	Replicas  int       `json:"replicas,omitempty"`  // replica fan-out of the final apply
	Failovers int       `json:"failovers,omitempty"`
	Err       string    `json:"err,omitempty"`
}

// All mutators are nil-safe so instrumentation points never need to guard
// against tracing being disabled.

// AddHop appends an overlay hop.
func (t *Trace) AddHop(id, addr string, prefix int) {
	if t == nil {
		return
	}
	t.Hops = append(t.Hops, Hop{ID: id, Addr: addr, Prefix: prefix})
}

// AddSpan appends a timed stage.
func (t *Trace) AddSpan(name, node string, d time.Duration) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{Name: name, Node: node, DurNS: int64(d)})
}

// SetServedBy records the node that served the operation's final NFS RPC.
func (t *Trace) SetServedBy(node string) {
	if t == nil || node == "" {
		return
	}
	t.ServedBy = node
}

// SetReplicas records the replica fan-out width of the final apply.
func (t *Trace) SetReplicas(k int) {
	if t == nil {
		return
	}
	t.Replicas = k
}

// Failover counts a transparent failover retry.
func (t *Trace) Failover() {
	if t == nil {
		return
	}
	t.Failovers++
}

// Ctx returns the propagation context for RPCs issued under this trace: the
// trace id parented at the root span. Nil-safe: a disabled trace yields the
// zero context, which transports treat as "do not record".
func (t *Trace) Ctx() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	return TraceContext{Hi: t.Hi, Lo: t.Lo, Span: t.Span}
}

// Tracer hands out traces and keeps the most recent ones in a bounded ring
// buffer. A zero-capacity tracer is disabled and returns nil traces (every
// Trace mutator is nil-safe, so instrumented paths pay one nil check).
type Tracer struct {
	cap     int
	seq     atomic.Uint64
	idState atomic.Uint64 // splitmix64 state behind trace/span ids
	slowNS  atomic.Int64  // SLO threshold; 0 disables the flight recorder

	mu   sync.Mutex
	ring []Trace
	next int
	full bool

	spanMu   sync.Mutex
	spans    []SpanRecord
	spanCap  int
	spanNext int
	spanFull bool

	slowMu   sync.Mutex
	slow     []Trace
	slowNext int
	slowFull bool
}

// NewTracer returns a tracer retaining up to capacity traces; capacity <= 0
// disables tracing.
func NewTracer(capacity int) *Tracer {
	return &Tracer{cap: capacity, spanCap: capacity * spanRingFactor}
}

// SeedIDs seeds the deterministic generator behind trace and span ids. Nodes
// seed with a per-node derivation of the run seed, so ids are unique across
// the cluster yet identical between replays of the same schedule.
func (t *Tracer) SeedIDs(seed uint64) {
	if t == nil {
		return
	}
	t.idState.Store(seed)
}

// rand64 advances the seeded splitmix64 stream. Never returns 0 so a valid
// trace id is always distinguishable from the zero ("no trace") context.
func (t *Tracer) rand64() uint64 {
	return mix64(t.idState.Add(0x9e3779b97f4a7c15))
}

// rand3 derives three id words (trace hi/lo + root span) from ONE advance of
// the stream: Start runs on every client operation, often from many
// goroutines at once, and a single atomic RMW on the shared state keeps the
// contention there no worse than the pre-tracing sequence counter.
func (t *Tracer) rand3() (a, b, c uint64) {
	base := t.idState.Add(0x9e3779b97f4a7c15)
	return mix64(base), mix64(base ^ 0x94d049bb133111eb), mix64(base ^ 0xbf58476d1ce4e5b9)
}

// mix64 is the splitmix64 finalizer, zero-guarded.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// NextSpanID hands out a span id for a server-side span; called by the
// transport before it invokes the handler so nested calls can be parented
// under the not-yet-recorded span. Nil-safe.
func (t *Tracer) NextSpanID() uint64 {
	if t == nil {
		return 0
	}
	return t.rand64()
}

// SetSlowThreshold arms the slow-op flight recorder: finished traces whose
// total meets or exceeds ns are copied into a separate ring that op chatter
// never evicts. ns <= 0 disarms it.
func (t *Tracer) SetSlowThreshold(ns int64) {
	if t == nil {
		return
	}
	t.slowNS.Store(ns)
}

// RecordSpan publishes one server-side span fragment into the span ring.
func (t *Tracer) RecordSpan(rec SpanRecord) {
	if t == nil || t.spanCap <= 0 {
		return
	}
	t.spanMu.Lock()
	if !t.spanFull && t.spanNext == len(t.spans) && len(t.spans) < t.spanCap {
		t.spans = append(t.spans, rec)
	} else {
		t.spans[t.spanNext] = rec
	}
	t.spanNext++
	if t.spanNext == t.spanCap {
		t.spanNext = 0
		t.spanFull = true
	}
	t.spanMu.Unlock()
}

// SpansFor returns the retained span fragments belonging to trace (hi, lo),
// oldest first.
func (t *Tracer) SpansFor(hi, lo uint64) []SpanRecord {
	if t == nil {
		return nil
	}
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	size := t.spanNext
	start := 0
	if t.spanFull {
		size = t.spanCap
		start = t.spanNext
	}
	var out []SpanRecord
	for i := 0; i < size; i++ {
		rec := t.spans[(start+i)%t.spanCap]
		if rec.Hi == hi && rec.Lo == lo {
			out = append(out, rec)
		}
	}
	return out
}

// Slow returns up to n traces from the flight recorder, newest first (n <= 0
// means all). Deep-copied like Recent.
func (t *Tracer) Slow(n int) []Trace {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	size := t.slowNext
	if t.slowFull {
		size = DefaultSlowBuf
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := t.slowNext - 1 - i
		if idx < 0 {
			idx += DefaultSlowBuf
		}
		tr := t.slow[idx]
		tr.Hops = append([]Hop(nil), tr.Hops...)
		tr.Spans = append([]Span(nil), tr.Spans...)
		out = append(out, tr)
	}
	return out
}

// FindTrace looks up a retained trace by its cluster-wide id, searching the
// main ring and the flight recorder. Returns a deep copy.
func (t *Tracer) FindTrace(hi, lo uint64) (Trace, bool) {
	for _, tr := range t.Recent(0) {
		if tr.Hi == hi && tr.Lo == lo {
			return tr, true
		}
	}
	for _, tr := range t.Slow(0) {
		if tr.Hi == hi && tr.Lo == lo {
			return tr, true
		}
	}
	return Trace{}, false
}

func (t *Tracer) recordSlow(tr *Trace) {
	t.slowMu.Lock()
	if !t.slowFull && t.slowNext == len(t.slow) && len(t.slow) < DefaultSlowBuf {
		t.slow = append(t.slow, *tr)
	} else {
		t.slow[t.slowNext] = *tr
	}
	// The ring aliases the finished trace's Hops/Spans; the op goroutine is
	// done with them by Finish, and readers (Slow) deep-copy on the way out.
	t.slowNext++
	if t.slowNext == DefaultSlowBuf {
		t.slowNext = 0
		t.slowFull = true
	}
	t.slowMu.Unlock()
}

// Enabled reports whether the tracer retains traces; instrumentation can
// skip building trace labels when it does not.
func (t *Tracer) Enabled() bool { return t != nil && t.cap > 0 }

// Start begins a trace for one operation, or returns nil if disabled.
func (t *Tracer) Start(op, path, node string) *Trace {
	if t == nil || t.cap <= 0 {
		return nil
	}
	hi, lo, span := t.rand3()
	return &Trace{
		ID:    t.seq.Add(1),
		Hi:    hi,
		Lo:    lo,
		Span:  span,
		Op:    op,
		Path:  path,
		Node:  node,
		Start: time.Now(),
	}
}

// Finish records the total duration and publishes the trace into the ring.
// The ring grows geometrically up to cap so lightly-used tracers never pay
// for the full buffer.
func (t *Tracer) Finish(tr *Trace, total time.Duration, err error) {
	if t == nil || tr == nil {
		return
	}
	tr.TotalNS = int64(total)
	if err != nil {
		tr.Err = err.Error()
	}
	if slow := t.slowNS.Load(); slow > 0 && tr.TotalNS >= slow {
		t.recordSlow(tr)
	}
	t.mu.Lock()
	if !t.full && t.next == len(t.ring) && len(t.ring) < t.cap {
		if len(t.ring) == cap(t.ring) {
			grown := cap(t.ring) * 2
			if grown == 0 {
				grown = 8
			}
			if grown > t.cap {
				grown = t.cap
			}
			next := make([]Trace, len(t.ring), grown)
			copy(next, t.ring)
			t.ring = next
		}
		t.ring = append(t.ring, *tr)
	} else {
		t.ring[t.next] = *tr
	}
	t.next++
	if t.next == t.cap {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns up to n of the most recent traces, newest first. n <= 0
// means all retained traces. The result is a deep copy: Hops and Spans are
// cloned so callers can hold or mutate a snapshot without aliasing the ring
// (a shallow struct copy would share the slices' backing arrays).
func (t *Tracer) Recent(n int) []Trace {
	if t == nil || t.cap <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = t.cap
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := t.next - 1 - i
		if idx < 0 {
			idx += t.cap
		}
		tr := t.ring[idx]
		tr.Hops = append([]Hop(nil), tr.Hops...)
		tr.Spans = append([]Span(nil), tr.Spans...)
		out = append(out, tr)
	}
	return out
}
