package repl

import (
	"fmt"
	"testing"

	"repro/internal/cas"
	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/merkle"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/simnet"
)

// fakeOverlay is a scripted Overlay: fixed ownership answer, fixed replica
// set, fixed route target.
type fakeOverlay struct {
	isRoot  bool
	reps    []pastry.NodeInfo
	routeTo pastry.NodeInfo
}

func (f *fakeOverlay) EnsureRootFor(id.ID) (bool, simnet.Cost) { return f.isRoot, 0 }
func (f *fakeOverlay) ReplicaCandidates(int) []pastry.NodeInfo { return f.reps }
func (f *fakeOverlay) Route(id.ID) (pastry.RouteResult, error) {
	return pastry.RouteResult{Node: f.routeTo}, nil
}

// mirrorRec is one recorded Mirror call.
type mirrorRec struct {
	to      simnet.Addr
	op      FSOp
	primary bool
}

// fakePeer records Mirror traffic and answers StatTree/DigestTree/DirDigests
// from scripts keyed by "addr path".
type fakePeer struct {
	mirrors []mirrorRec
	stats   map[string]TreeStat
	digests map[string]TreeDigest
	dirs    map[string][]merkle.Entry // presence of the key = directory exists
}

func (f *fakePeer) Mirror(_ obs.TraceContext, to simnet.Addr, t Track, op FSOp, primary bool) (simnet.Cost, error) {
	f.mirrors = append(f.mirrors, mirrorRec{to: to, op: op, primary: primary})
	return 0, nil
}

func (f *fakePeer) StatTree(_ obs.TraceContext, to simnet.Addr, root string) (TreeStat, simnet.Cost, error) {
	return f.stats[fmt.Sprintf("%s %s", to, root)], 0, nil
}

func (f *fakePeer) DigestTree(_ obs.TraceContext, to simnet.Addr, root string) (TreeDigest, simnet.Cost, error) {
	return f.digests[fmt.Sprintf("%s %s", to, root)], 0, nil
}

func (f *fakePeer) DirDigests(_ obs.TraceContext, to simnet.Addr, dir string) ([]merkle.Entry, bool, simnet.Cost, error) {
	ents, ok := f.dirs[fmt.Sprintf("%s %s", to, dir)]
	return ents, ok, 0, nil
}

func (f *fakePeer) Promote(obs.TraceContext, simnet.Addr, Track) (bool, simnet.Cost, error) {
	return false, 0, nil
}

func (f *fakePeer) LookupPath(obs.TraceContext, simnet.Addr, string) (nfs.Handle, localfs.Attr, simnet.Cost, error) {
	return nfs.Handle{}, localfs.Attr{}, 0, fmt.Errorf("fakePeer: no remote store")
}

func (f *fakePeer) ReadDir(obs.TraceContext, simnet.Addr, nfs.Handle) ([]nfs.DirEntry, simnet.Cost, error) {
	return nil, 0, fmt.Errorf("fakePeer: no remote store")
}

func (f *fakePeer) ReadStream(obs.TraceContext, simnet.Addr, nfs.Handle, int64, int, int) ([]byte, bool, simnet.Cost, error) {
	return nil, false, 0, fmt.Errorf("fakePeer: no remote store")
}

func (f *fakePeer) ReadLink(obs.TraceContext, simnet.Addr, string) (string, simnet.Cost, error) {
	return "", 0, fmt.Errorf("fakePeer: no remote store")
}

func (f *fakePeer) ChunkManifest(obs.TraceContext, simnet.Addr, string, []cas.Hash) (cas.Manifest, bool, []bool, simnet.Cost, error) {
	return nil, false, nil, 0, fmt.Errorf("fakePeer: no remote store")
}

func (f *fakePeer) ChunkFetch(obs.TraceContext, simnet.Addr, string, []cas.Hash) ([][]byte, simnet.Cost, error) {
	return nil, 0, fmt.Errorf("fakePeer: no remote store")
}

func testEngine(ov *fakeOverlay, peer *fakePeer) (*Engine, localfs.FileSystem) {
	store := localfs.New(0, simnet.DiskModel{})
	e := New(Options{
		Self:     "self",
		Store:    store,
		Overlay:  ov,
		Peer:     peer,
		Replicas: 1,
		Key:      func(pn string) id.ID { return id.HashKey(pn) },
		Events:   obs.NewEventLog(16),
		Registry: obs.NewRegistry(),
	})
	return e, store
}

func TestStampAndTrackVersionChain(t *testing.T) {
	e, _ := testEngine(&fakeOverlay{}, &fakePeer{})
	tr := Track{PN: "docs", Root: "/docs"}

	// First mutation gets version 1; Track records it.
	got := e.Stamp(tr, FSOp{Kind: FSMkdirAll, Path: "/docs"})
	if got.Ver != 1 {
		t.Fatalf("first stamp Ver = %d, want 1", got.Ver)
	}
	e.Track(got, FSOp{Kind: FSMkdirAll, Path: "/docs"})
	if v := e.VerOf("/docs"); v != 1 {
		t.Fatalf("VerOf = %d, want 1", v)
	}

	// Next mutation continues the chain.
	got = e.Stamp(tr, FSOp{Kind: FSCreate, Path: "/docs/a"})
	if got.Ver != 2 {
		t.Fatalf("second stamp Ver = %d, want 2", got.Ver)
	}
	e.Track(got, FSOp{Kind: FSCreate, Path: "/docs/a"})

	// A storage-root rename rekeys the record, carrying the version chain.
	renamed := Track{PN: "docs", Root: "/docs-v2"}
	op := FSOp{Kind: FSRename, Path: "/docs", Path2: "/docs-v2"}
	renamed = e.Stamp(renamed, op)
	if renamed.Ver != 3 {
		t.Fatalf("rename stamp Ver = %d, want 3 (continues old chain)", renamed.Ver)
	}
	e.Track(renamed, op)
	if v := e.VerOf("/docs-v2"); v != 3 {
		t.Fatalf("VerOf new root = %d, want 3", v)
	}
	if _, ok := e.TrackedRoots()["/docs"]; ok {
		t.Fatal("old root record survived the rename rekeying")
	}

	// Removing the hierarchy root leaves a tombstone with a live version.
	dead := e.Stamp(Track{PN: "docs", Root: "/docs-v2"}, FSOp{Kind: FSRemoveAll, Path: "/docs-v2"})
	e.Track(dead, FSOp{Kind: FSRemoveAll, Path: "/docs-v2"})
	if !e.IsDead("/docs-v2") {
		t.Fatal("root removal did not tombstone the record")
	}
	if v := e.VerOf("/docs-v2"); v != 4 {
		t.Fatalf("tombstone Ver = %d, want 4", v)
	}

	e.Untrack("/docs-v2")
	if len(e.TrackedRoots()) != 0 {
		t.Fatal("Untrack left records behind")
	}
}

func TestTrackedRootsIsASnapshot(t *testing.T) {
	e, _ := testEngine(&fakeOverlay{}, &fakePeer{})
	e.Track(Track{PN: "a", Root: "/a", Ver: 1}, FSOp{Kind: FSMkdirAll, Path: "/a"})
	snap := e.TrackedRoots()
	delete(snap, "/a")
	snap["/bogus"] = "bogus"
	if got := e.TrackedRoots(); len(got) != 1 || got["/a"] != "a" {
		t.Fatalf("mutating the snapshot leaked into the engine: %v", got)
	}
}

func TestPromoteDemoteLocalRoundtrip(t *testing.T) {
	e, store := testEngine(&fakeOverlay{}, &fakePeer{})
	if err := store.WriteFile(RepPath("/proj")+"/file.txt", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	tr := Track{PN: "proj", Root: "/proj", Ver: 2}

	if !e.PromoteLocal(tr) {
		t.Fatal("PromoteLocal reported nothing surfaced")
	}
	if data, err := store.ReadFile("/proj/file.txt"); err != nil || string(data) != "payload" {
		t.Fatalf("primary path after promote: %q err=%v", data, err)
	}
	if _, err := store.LookupPath(RepPath("/proj")); err == nil {
		t.Fatal("replica-area copy survived promotion")
	}
	// Idempotent: nothing left to surface.
	if e.PromoteLocal(tr) {
		t.Fatal("second PromoteLocal surfaced something")
	}

	e.DemoteLocal(tr)
	if _, err := store.LookupPath("/proj"); err == nil {
		t.Fatal("primary path survived demotion")
	}
	if data, err := store.ReadFile(RepPath("/proj") + "/file.txt"); err != nil || string(data) != "payload" {
		t.Fatalf("replica area after demote: %q err=%v", data, err)
	}
}

func TestPromoteLocalHonorsTombstone(t *testing.T) {
	e, store := testEngine(&fakeOverlay{}, &fakePeer{})
	if err := store.WriteFile(RepPath("/gone")+"/stale.txt", []byte("old")); err != nil {
		t.Fatal(err)
	}
	e.Track(Track{PN: "gone", Root: "/gone", Ver: 5}, FSOp{Kind: FSRemoveAll, Path: "/gone"})
	if e.PromoteLocal(Track{PN: "gone", Root: "/gone"}) {
		t.Fatal("promoted a deleted hierarchy")
	}
	if _, err := store.LookupPath(RepPath("/gone")); err == nil {
		t.Fatal("stale replica-area data survived a known deletion")
	}
}

func TestSyncPushesToReplicas(t *testing.T) {
	rep := pastry.NodeInfo{ID: id.HashKey("r1"), Addr: "r1"}
	ov := &fakeOverlay{isRoot: true, reps: []pastry.NodeInfo{rep}}
	peer := &fakePeer{stats: map[string]TreeStat{}} // replica holds nothing
	e, store := testEngine(ov, peer)

	if err := store.WriteFile("/music/a.mp3", []byte("notes")); err != nil {
		t.Fatal(err)
	}
	e.Track(Track{PN: "music", Root: "/music", Ver: 1}, FSOp{Kind: FSMkdirAll, Path: "/music"})

	e.Sync()

	if len(peer.mirrors) == 0 {
		t.Fatal("Sync as primary pushed nothing to its replica")
	}
	var sawFlagCreate, sawFlagRemove, sawData bool
	for _, m := range peer.mirrors {
		if m.to != "r1" {
			t.Fatalf("mirror to %s, want r1", m.to)
		}
		if m.primary {
			t.Fatal("primary->replica refresh must land in the replica area")
		}
		switch {
		case m.op.Kind == FSWriteFile && m.op.Path == "/music/"+MigrationFlag:
			sawFlagCreate = true
		case m.op.Kind == FSRemove && m.op.Path == "/music/"+MigrationFlag:
			sawFlagRemove = true
		case m.op.Kind == FSWrite && m.op.Path == "/music/a.mp3":
			sawData = true
			if !sawFlagCreate {
				t.Fatal("data pushed before the migration flag was set")
			}
			if string(m.op.Data) != "notes" {
				t.Fatalf("pushed data %q", m.op.Data)
			}
		}
	}
	if !sawFlagCreate || !sawData || !sawFlagRemove {
		t.Fatalf("push sequence incomplete: flag=%v data=%v unflag=%v",
			sawFlagCreate, sawData, sawFlagRemove)
	}
}

func TestSyncMigratesWhenOwnershipMoved(t *testing.T) {
	newOwner := pastry.NodeInfo{ID: id.HashKey("n2"), Addr: "n2"}
	ov := &fakeOverlay{isRoot: false, routeTo: newOwner}
	peer := &fakePeer{stats: map[string]TreeStat{}}
	e, store := testEngine(ov, peer)

	if err := store.WriteFile("/work/w.txt", []byte("w")); err != nil {
		t.Fatal(err)
	}
	e.Track(Track{PN: "work", Root: "/work", Ver: 3}, FSOp{Kind: FSMkdirAll, Path: "/work"})

	e.Sync()

	var pushed bool
	for _, m := range peer.mirrors {
		if m.to == "n2" && m.op.Kind == FSWrite && m.op.Path == "/work/w.txt" {
			pushed = true
			if !m.primary {
				t.Fatal("migration push must target the new primary's namespace")
			}
		}
	}
	if !pushed {
		t.Fatal("Sync did not migrate the subtree to the new owner")
	}
	// Our copy stays behind as a replica, parked in the replica area.
	if _, err := store.LookupPath("/work"); err == nil {
		t.Fatal("primary-path copy survived the migration")
	}
	if data, err := store.ReadFile(RepPath("/work") + "/w.txt"); err != nil || string(data) != "w" {
		t.Fatalf("replica-area copy after migration: %q err=%v", data, err)
	}
}

func TestSyncPropagatesDeletionToReplicas(t *testing.T) {
	rep := pastry.NodeInfo{ID: id.HashKey("r1"), Addr: "r1"}
	ov := &fakeOverlay{isRoot: true, reps: []pastry.NodeInfo{rep}}
	// The replica still holds a copy older than the tombstone.
	peer := &fakePeer{stats: map[string]TreeStat{
		"r1 " + RepPath("/dead"): {Exists: true, Ver: 1, Files: 1},
	}}
	e, _ := testEngine(ov, peer)
	e.Track(Track{PN: "dead", Root: "/dead", Ver: 2}, FSOp{Kind: FSRemoveAll, Path: "/dead"})

	e.Sync()

	var sawRemove bool
	for _, m := range peer.mirrors {
		if m.to == "r1" && m.op.Kind == FSRemoveAll && m.op.Path == "/dead" && !m.primary {
			sawRemove = true
		}
	}
	if !sawRemove {
		t.Fatal("tombstoned root's deletion never reached the stale replica")
	}
}

func TestAdoptRootAdoptsNewerTombstone(t *testing.T) {
	rep := pastry.NodeInfo{ID: id.HashKey("r1"), Addr: "r1"}
	ov := &fakeOverlay{isRoot: true, reps: []pastry.NodeInfo{rep}}
	// The replica reports the subtree deleted at a newer version than ours.
	peer := &fakePeer{stats: map[string]TreeStat{
		"r1 " + RepPath("/share"): {Exists: false, Ver: 7},
	}}
	e, store := testEngine(ov, peer)
	if err := store.WriteFile("/share/s.txt", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	e.Track(Track{PN: "share", Root: "/share", Ver: 2}, FSOp{Kind: FSMkdirAll, Path: "/share"})

	_, changed := e.AdoptRoot(obs.TraceContext{}, Track{PN: "share", Root: "/share", Ver: 2})
	if !changed {
		t.Fatal("adopting a newer deletion must report a state change")
	}
	if !e.IsDead("/share") {
		t.Fatal("record is not a tombstone after adopting the deletion")
	}
	if v := e.VerOf("/share"); v != 7 {
		t.Fatalf("tombstone Ver = %d, want the replica's 7", v)
	}
	if _, err := store.LookupPath("/share"); err == nil {
		t.Fatal("stale local copy survived adopting the deletion")
	}
}
