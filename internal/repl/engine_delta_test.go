package repl

import (
	"bytes"
	"path"
	"testing"

	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/merkle"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/simnet"
)

// storePeer is a Peer backed by a real remote store: Mirror applies ops the
// way a replica node would (replica-area translation, lenient semantics),
// and the digest/read procedures answer from the store. It makes the delta
// protocol testable end to end without a network.
type storePeer struct {
	remote  localfs.FileSystem
	mk      *merkle.Cache
	mirrors []mirrorRec
	vers    map[string]uint64 // primary-relative root -> recorded Ver
}

func newStorePeer() *storePeer {
	remote := localfs.New(0, simnet.DiskModel{})
	return &storePeer{remote: remote, mk: merkle.NewCache(remote), vers: map[string]uint64{}}
}

func (s *storePeer) Mirror(_ obs.TraceContext, to simnet.Addr, t Track, op FSOp, primary bool) (simnet.Cost, error) {
	s.mirrors = append(s.mirrors, mirrorRec{to: to, op: op, primary: primary})
	if !primary {
		op.Path = RepPath(op.Path)
		if op.Path2 != "" {
			op.Path2 = RepPath(op.Path2)
		}
	}
	if err := applyLenient(s.remote, op); err != nil {
		return 0, err
	}
	s.vers[t.Root] = t.Ver
	return 0, nil
}

// applyLenient executes the op kinds the push protocol emits, with the
// tolerant semantics core's replica apply uses.
func applyLenient(fs localfs.FileSystem, op FSOp) error {
	parent := func(p string) (localfs.Attr, error) {
		if _, err := fs.MkdirAll(path.Dir(p)); err != nil {
			return localfs.Attr{}, err
		}
		return fs.LookupPath(path.Dir(p))
	}
	switch op.Kind {
	case FSMkdirAll:
		_, err := fs.MkdirAll(op.Path)
		return err
	case FSWriteFile:
		return fs.WriteFile(op.Path, op.Data)
	case FSCreate:
		dir, err := parent(op.Path)
		if err != nil {
			return err
		}
		_, _, err = fs.Create(dir.Ino, path.Base(op.Path), op.Mode, false)
		return err
	case FSWrite:
		a, err := fs.LookupPath(op.Path)
		if err != nil {
			return err
		}
		_, _, err = fs.Write(a.Ino, op.Offset, op.Data)
		return err
	case FSRemove:
		dir, err := fs.LookupPath(path.Dir(op.Path))
		if err != nil {
			return nil
		}
		fs.Remove(dir.Ino, path.Base(op.Path))
		return nil
	case FSRemoveAll:
		return fs.RemoveAll(op.Path)
	case FSSymlink:
		dir, err := parent(op.Path)
		if err != nil {
			return err
		}
		fs.RemoveAll(op.Path)
		_, _, err = fs.Symlink(dir.Ino, path.Base(op.Path), op.Target)
		return err
	}
	return nil
}

func (s *storePeer) StatTree(_ obs.TraceContext, to simnet.Addr, root string) (TreeStat, simnet.Cost, error) {
	return TreeStat{}, 0, nil
}

func (s *storePeer) Promote(obs.TraceContext, simnet.Addr, Track) (bool, simnet.Cost, error) {
	return false, 0, nil
}

func (s *storePeer) DigestTree(_ obs.TraceContext, to simnet.Addr, root string) (TreeDigest, simnet.Cost, error) {
	var td TreeDigest
	td.Ver = s.vers[PrimaryRoot(root)]
	if _, err := s.remote.LookupPath(root); err != nil {
		return td, 0, nil
	}
	td.Exists = true
	if _, err := s.remote.LookupPath(path.Join(root, MigrationFlag)); err == nil {
		td.Flag = true
	}
	if d, err := s.mk.DigestOf(root); err == nil {
		td.Root = d
	}
	return td, 0, nil
}

func (s *storePeer) DirDigests(_ obs.TraceContext, to simnet.Addr, dir string) ([]merkle.Entry, bool, simnet.Cost, error) {
	ents, ok, err := s.mk.Entries(dir)
	return ents, ok, 0, err
}

func (s *storePeer) LookupPath(_ obs.TraceContext, to simnet.Addr, phys string) (nfs.Handle, localfs.Attr, simnet.Cost, error) {
	attr, err := s.remote.LookupPath(phys)
	if err != nil {
		return nfs.Handle{}, localfs.Attr{}, 0, err
	}
	return nfs.Handle{Ino: attr.Ino}, attr, 0, nil
}

func (s *storePeer) ReadDir(_ obs.TraceContext, to simnet.Addr, fh nfs.Handle) ([]nfs.DirEntry, simnet.Cost, error) {
	ents, _, err := s.remote.Readdir(fh.Ino)
	if err != nil {
		return nil, 0, err
	}
	out := make([]nfs.DirEntry, 0, len(ents))
	for _, ent := range ents {
		out = append(out, nfs.DirEntry{Name: ent.Name, Ino: ent.Ino, Type: ent.Type})
	}
	return out, 0, nil
}

func (s *storePeer) ReadStream(_ obs.TraceContext, to simnet.Addr, fh nfs.Handle, off int64, chunk, chunks int) ([]byte, bool, simnet.Cost, error) {
	var data []byte
	for i := 0; i < chunks; i++ {
		piece, eof, _, err := s.remote.Read(fh.Ino, off, chunk)
		if err != nil {
			return nil, false, 0, err
		}
		data = append(data, piece...)
		off += int64(len(piece))
		if eof || len(piece) < chunk {
			return data, eof, 0, nil
		}
	}
	return data, false, 0, nil
}

func (s *storePeer) ReadLink(_ obs.TraceContext, to simnet.Addr, phys string) (string, simnet.Cost, error) {
	attr, err := s.remote.LookupPath(phys)
	if err != nil {
		return "", 0, err
	}
	t, _, err := s.remote.Readlink(attr.Ino)
	return t, 0, err
}

func deltaEngine(t *testing.T, peer Peer) (*Engine, localfs.FileSystem, *obs.Registry) {
	t.Helper()
	store := localfs.New(0, simnet.DiskModel{})
	reg := obs.NewRegistry()
	rep := pastry.NodeInfo{ID: id.HashKey("r1"), Addr: "r1"}
	e := New(Options{
		Self:     "self",
		Store:    store,
		Overlay:  &fakeOverlay{isRoot: true, reps: []pastry.NodeInfo{rep}},
		Peer:     peer,
		Replicas: 1,
		Key:      func(pn string) id.ID { return id.HashKey(pn) },
		Events:   obs.NewEventLog(16),
		Registry: reg,
	})
	return e, store, reg
}

// Regression (satellite fix): fetchTree used to skip ANY file named like the
// migration flag, silently dropping legitimately-named user files deeper in
// the tree. Only the root-level sentinel is protocol state.
func TestFetchTreeKeepsNestedFlagNamedFile(t *testing.T) {
	peer := newStorePeer()
	src := RepPath("/docs")
	if err := peer.remote.WriteFile(src+"/"+MigrationFlag, nil); err != nil {
		t.Fatal(err)
	}
	if err := peer.remote.WriteFile(src+"/a.txt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := peer.remote.WriteFile(src+"/nest/"+MigrationFlag, []byte("user data")); err != nil {
		t.Fatal(err)
	}
	e, store, _ := deltaEngine(t, peer)

	if _, err := e.fetchTree(obs.TraceContext{}, "r1", Track{PN: "docs", Root: "/docs"}, 5); err != nil {
		t.Fatal(err)
	}
	if data, err := store.ReadFile("/docs/a.txt"); err != nil || string(data) != "a" {
		t.Fatalf("/docs/a.txt: %q err=%v", data, err)
	}
	if data, err := store.ReadFile("/docs/nest/" + MigrationFlag); err != nil || string(data) != "user data" {
		t.Fatalf("nested flag-named user file was dropped: %q err=%v", data, err)
	}
	if _, err := store.LookupPath("/docs/" + MigrationFlag); err == nil {
		t.Fatal("root-level migration sentinel was fetched as content")
	}
	if v := e.VerOf("/docs"); v != 5 {
		t.Fatalf("adopted version %d, want 5", v)
	}
}

// Satellite fix: pushes ship file contents in bounded chunks rather than one
// whole-file op.
func TestSendFileChunksLargePayload(t *testing.T) {
	e, store, _ := deltaEngine(t, newStorePeer())
	payload := bytes.Repeat([]byte("x"), PushChunk*2+PushChunk/2)
	if err := store.WriteFile("/big/blob", payload); err != nil {
		t.Fatal(err)
	}
	var ops []FSOp
	step := func(op FSOp) error { ops = append(ops, op); return nil }
	if err := e.sendFile("/big/blob", "/big/blob", step); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 || ops[0].Kind != FSCreate {
		t.Fatalf("got %d ops (first %v), want FSCreate + 3 chunked FSWrites", len(ops), ops[0].Kind)
	}
	var rebuilt []byte
	for i, op := range ops[1:] {
		if op.Kind != FSWrite {
			t.Fatalf("op %d kind %v, want FSWrite", i+1, op.Kind)
		}
		if op.Offset != int64(len(rebuilt)) {
			t.Fatalf("op %d offset %d, want %d", i+1, op.Offset, len(rebuilt))
		}
		if len(op.Data) > PushChunk {
			t.Fatalf("chunk %d bytes exceeds the %d limit", len(op.Data), PushChunk)
		}
		rebuilt = append(rebuilt, op.Data...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatal("chunks do not reassemble to the source file")
	}
}

// The tentpole guarantee: a matching replica costs one digest exchange and
// zero mutations; a one-file change ships only that file; and the replica
// tree is never removed wholesale (stays readable throughout).
func TestEnsureTreeDeltaSkipsAndShipsOnlyChanges(t *testing.T) {
	peer := newStorePeer()
	e, store, reg := deltaEngine(t, peer)

	files := []string{"f0.txt", "f1.txt", "f2.txt", "f3.txt", "f4.txt"}
	for _, name := range files {
		if err := store.WriteFile("/proj/"+name, []byte("content of "+name)); err != nil {
			t.Fatal(err)
		}
		if err := peer.remote.WriteFile(RepPath("/proj")+"/"+name, []byte("content of "+name)); err != nil {
			t.Fatal(err)
		}
	}
	peer.vers["/proj"] = 1
	tr := Track{PN: "proj", Root: "/proj", Ver: 1}

	// Identical copy, identical version: one digest exchange, no mutations.
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", tr, false); err != nil {
		t.Fatal(err)
	}
	if len(peer.mirrors) != 0 {
		t.Fatalf("matching replica still received %d ops: %v", len(peer.mirrors), peer.mirrors)
	}
	if h := reg.Counter("repl.sync.digest.hits").Load(); h == 0 {
		t.Fatal("digest hit not counted")
	}

	// Touch one file; the delta must ship that file and nothing else.
	if err := store.WriteFile("/proj/f2.txt", []byte("CHANGED")); err != nil {
		t.Fatal(err)
	}
	tr.Ver = 2
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", tr, false); err != nil {
		t.Fatal(err)
	}
	var wrote []string
	for _, m := range peer.mirrors {
		if m.op.Kind == FSRemoveAll {
			t.Fatalf("delta sync issued FSRemoveAll on %s: replicas must stay readable", m.op.Path)
		}
		if m.op.Kind == FSCreate || m.op.Kind == FSWrite {
			wrote = append(wrote, m.op.Path)
		}
	}
	for _, p := range wrote {
		if p != "/proj/f2.txt" {
			t.Fatalf("unchanged path %s was re-shipped", p)
		}
	}
	if len(wrote) == 0 {
		t.Fatal("changed file never shipped")
	}

	// The replica's bytes now match the primary's, and the sentinel is gone.
	want, err := merkle.DigestPath(store, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	got, err := merkle.DigestPath(peer.remote, RepPath("/proj"))
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatal("replica digest diverges from primary after delta sync")
	}
	if _, err := peer.remote.LookupPath(RepPath("/proj") + "/" + MigrationFlag); err == nil {
		t.Fatal("migration sentinel left behind after sync")
	}
	if sent := reg.Counter("repl.sync.files.sent").Load(); sent != 1 {
		t.Fatalf("files.sent = %d, want 1", sent)
	}
	if skipped := reg.Counter("repl.sync.files.skipped").Load(); skipped < 4 {
		t.Fatalf("files.skipped = %d, want >= 4", skipped)
	}

	// A deletion propagates as a targeted remove of the stale entry only.
	attr, err := store.LookupPath("/proj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Remove(attr.Ino, "f4.txt"); err != nil {
		t.Fatal(err)
	}
	tr.Ver = 3
	peer.mirrors = nil
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", tr, false); err != nil {
		t.Fatal(err)
	}
	var removed []string
	for _, m := range peer.mirrors {
		if m.op.Kind == FSRemoveAll {
			removed = append(removed, m.op.Path)
		}
	}
	if len(removed) != 1 || removed[0] != "/proj/f4.txt" {
		t.Fatalf("stale-entry removal ops %v, want exactly /proj/f4.txt", removed)
	}
	if _, err := peer.remote.LookupPath(RepPath("/proj") + "/f4.txt"); err == nil {
		t.Fatal("deleted file survived on the replica")
	}
}

// Content-identical replica whose recorded version lags is re-stamped with a
// single metadata op instead of a re-push.
func TestEnsureTreeRestampsMatchingReplica(t *testing.T) {
	peer := newStorePeer()
	e, store, _ := deltaEngine(t, peer)
	if err := store.WriteFile("/w/x.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := peer.remote.WriteFile(RepPath("/w")+"/x.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	peer.vers["/w"] = 1
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", Track{PN: "w", Root: "/w", Ver: 4}, false); err != nil {
		t.Fatal(err)
	}
	if len(peer.mirrors) != 1 || peer.mirrors[0].op.Kind != FSMkdirAll {
		t.Fatalf("restamp ops %v, want a single FSMkdirAll", peer.mirrors)
	}
	if peer.vers["/w"] != 4 {
		t.Fatalf("replica version %d after restamp, want 4", peer.vers["/w"])
	}
}
