package repl

import (
	"bytes"
	"path"
	"testing"

	"repro/internal/cas"
	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/merkle"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/simnet"
)

// storePeer is a Peer backed by a real remote store: Mirror applies ops the
// way a replica node would (replica-area translation, lenient semantics),
// and the digest/read procedures answer from the store. It makes the delta
// protocol testable end to end without a network.
type storePeer struct {
	remote  localfs.FileSystem
	mk      *merkle.Cache
	blocks  *cas.Store // the remote's content-addressed block index
	mirrors []mirrorRec
	vers    map[string]uint64    // primary-relative root -> recorded Ver
	fetches map[simnet.Addr]int  // CHUNK_FETCH round trips per holder address
	down    map[simnet.Addr]bool // addresses whose block procedures fail
}

var errPeerDown = &nfs.Error{Proc: nfs.Proc(200), Status: nfs.ErrIO}

func newStorePeer() *storePeer {
	remote := localfs.New(0, simnet.DiskModel{})
	blocks := cas.NewStore(remote, nil)
	return &storePeer{
		remote:  remote,
		mk:      merkle.NewCacheWithStore(remote, blocks),
		blocks:  blocks,
		vers:    map[string]uint64{},
		fetches: map[simnet.Addr]int{},
		down:    map[simnet.Addr]bool{},
	}
}

func (s *storePeer) Mirror(_ obs.TraceContext, to simnet.Addr, t Track, op FSOp, primary bool) (simnet.Cost, error) {
	s.mirrors = append(s.mirrors, mirrorRec{to: to, op: op, primary: primary})
	if !primary {
		op.Path = RepPath(op.Path)
		if op.Path2 != "" {
			op.Path2 = RepPath(op.Path2)
		}
	}
	if op.Kind == FSChunkWrite {
		// Assemble like a replica node would: inline bytes from the op,
		// references from the remote's own block index.
		data, err := s.assemble(op)
		if err != nil {
			return 0, err
		}
		op = FSOp{Kind: FSWrite, Path: op.Path, Offset: op.Offset, Data: data}
	}
	if err := applyLenient(s.remote, op); err != nil {
		return 0, err
	}
	s.vers[t.Root] = t.Ver
	return 0, nil
}

// assemble resolves an FSChunkWrite span the way core's replica apply does.
func (s *storePeer) assemble(op FSOp) ([]byte, error) {
	var buf []byte
	data := op.Data
	local := map[cas.Hash][]byte{}
	for _, cr := range op.Chunks {
		if cr.Inline {
			if len(data) < int(cr.Len) {
				return nil, ErrMissingChunk
			}
			b := data[:cr.Len]
			data = data[cr.Len:]
			if cas.SumChunk(b) != cr.Hash {
				return nil, ErrMissingChunk
			}
			buf = append(buf, b...)
			local[cr.Hash] = b
			continue
		}
		if b, ok := local[cr.Hash]; ok {
			buf = append(buf, b...)
			continue
		}
		b, ok := s.blocks.Get(cr.Hash)
		if !ok || len(b) != int(cr.Len) {
			return nil, ErrMissingChunk
		}
		buf = append(buf, b...)
		local[cr.Hash] = b
	}
	return buf, nil
}

// applyLenient executes the op kinds the push protocol emits, with the
// tolerant semantics core's replica apply uses.
func applyLenient(fs localfs.FileSystem, op FSOp) error {
	parent := func(p string) (localfs.Attr, error) {
		if _, err := fs.MkdirAll(path.Dir(p)); err != nil {
			return localfs.Attr{}, err
		}
		return fs.LookupPath(path.Dir(p))
	}
	switch op.Kind {
	case FSMkdirAll:
		_, err := fs.MkdirAll(op.Path)
		return err
	case FSWriteFile:
		return fs.WriteFile(op.Path, op.Data)
	case FSCreate:
		dir, err := parent(op.Path)
		if err != nil {
			return err
		}
		_, _, err = fs.Create(dir.Ino, path.Base(op.Path), op.Mode, false)
		return err
	case FSWrite:
		a, err := fs.LookupPath(op.Path)
		if err != nil {
			return err
		}
		_, _, err = fs.Write(a.Ino, op.Offset, op.Data)
		return err
	case FSRemove:
		dir, err := fs.LookupPath(path.Dir(op.Path))
		if err != nil {
			return nil
		}
		fs.Remove(dir.Ino, path.Base(op.Path))
		return nil
	case FSRemoveAll:
		return fs.RemoveAll(op.Path)
	case FSSetattr:
		a, err := fs.LookupPath(op.Path)
		if err != nil {
			return err
		}
		_, _, err = fs.Setattr(a.Ino, op.SetAttr)
		return err
	case FSSymlink:
		dir, err := parent(op.Path)
		if err != nil {
			return err
		}
		fs.RemoveAll(op.Path)
		_, _, err = fs.Symlink(dir.Ino, path.Base(op.Path), op.Target)
		return err
	}
	return nil
}

func (s *storePeer) StatTree(_ obs.TraceContext, to simnet.Addr, root string) (TreeStat, simnet.Cost, error) {
	return TreeStat{}, 0, nil
}

func (s *storePeer) Promote(obs.TraceContext, simnet.Addr, Track) (bool, simnet.Cost, error) {
	return false, 0, nil
}

func (s *storePeer) DigestTree(_ obs.TraceContext, to simnet.Addr, root string) (TreeDigest, simnet.Cost, error) {
	var td TreeDigest
	td.Ver = s.vers[PrimaryRoot(root)]
	if _, err := s.remote.LookupPath(root); err != nil {
		return td, 0, nil
	}
	td.Exists = true
	if _, err := s.remote.LookupPath(path.Join(root, MigrationFlag)); err == nil {
		td.Flag = true
	}
	if d, err := s.mk.DigestOf(root); err == nil {
		td.Root = d
	}
	return td, 0, nil
}

func (s *storePeer) DirDigests(_ obs.TraceContext, to simnet.Addr, dir string) ([]merkle.Entry, bool, simnet.Cost, error) {
	ents, ok, err := s.mk.Entries(dir)
	return ents, ok, 0, err
}

func (s *storePeer) LookupPath(_ obs.TraceContext, to simnet.Addr, phys string) (nfs.Handle, localfs.Attr, simnet.Cost, error) {
	attr, err := s.remote.LookupPath(phys)
	if err != nil {
		return nfs.Handle{}, localfs.Attr{}, 0, err
	}
	return nfs.Handle{Ino: attr.Ino}, attr, 0, nil
}

func (s *storePeer) ReadDir(_ obs.TraceContext, to simnet.Addr, fh nfs.Handle) ([]nfs.DirEntry, simnet.Cost, error) {
	ents, _, err := s.remote.Readdir(fh.Ino)
	if err != nil {
		return nil, 0, err
	}
	out := make([]nfs.DirEntry, 0, len(ents))
	for _, ent := range ents {
		out = append(out, nfs.DirEntry{Name: ent.Name, Ino: ent.Ino, Type: ent.Type})
	}
	return out, 0, nil
}

func (s *storePeer) ReadStream(_ obs.TraceContext, to simnet.Addr, fh nfs.Handle, off int64, chunk, chunks int) ([]byte, bool, simnet.Cost, error) {
	var data []byte
	for i := 0; i < chunks; i++ {
		piece, eof, _, err := s.remote.Read(fh.Ino, off, chunk)
		if err != nil {
			return nil, false, 0, err
		}
		data = append(data, piece...)
		off += int64(len(piece))
		if eof || len(piece) < chunk {
			return data, eof, 0, nil
		}
	}
	return data, false, 0, nil
}

func (s *storePeer) ReadLink(_ obs.TraceContext, to simnet.Addr, phys string) (string, simnet.Cost, error) {
	attr, err := s.remote.LookupPath(phys)
	if err != nil {
		return "", 0, err
	}
	t, _, err := s.remote.Readlink(attr.Ino)
	return t, 0, err
}

func (s *storePeer) ChunkManifest(_ obs.TraceContext, to simnet.Addr, phys string, want []cas.Hash) (cas.Manifest, bool, []bool, simnet.Cost, error) {
	if s.down[to] {
		return nil, false, nil, 0, errPeerDown
	}
	var man cas.Manifest
	exists := false
	if attr, err := s.remote.LookupPath(phys); err == nil && attr.Type == localfs.TypeRegular {
		if m, err := s.mk.ManifestOf(phys); err == nil {
			man, exists = m, true
		}
	}
	return man, exists, s.blocks.HasAll(want), 0, nil
}

func (s *storePeer) ChunkFetch(_ obs.TraceContext, to simnet.Addr, phys string, hashes []cas.Hash) ([][]byte, simnet.Cost, error) {
	if s.down[to] {
		return nil, 0, errPeerDown
	}
	s.fetches[to]++
	if phys != "" {
		if attr, err := s.remote.LookupPath(phys); err == nil && attr.Type == localfs.TypeRegular {
			s.mk.ManifestOf(phys)
		}
	}
	blocks := make([][]byte, len(hashes))
	for i, h := range hashes {
		if b, ok := s.blocks.Get(h); ok {
			blocks[i] = b
		}
	}
	return blocks, 0, nil
}

func deltaEngine(t *testing.T, peer Peer) (*Engine, localfs.FileSystem, *obs.Registry) {
	t.Helper()
	store := localfs.New(0, simnet.DiskModel{})
	reg := obs.NewRegistry()
	rep := pastry.NodeInfo{ID: id.HashKey("r1"), Addr: "r1"}
	e := New(Options{
		Self:     "self",
		Store:    store,
		Overlay:  &fakeOverlay{isRoot: true, reps: []pastry.NodeInfo{rep}},
		Peer:     peer,
		Replicas: 1,
		Key:      func(pn string) id.ID { return id.HashKey(pn) },
		Events:   obs.NewEventLog(16),
		Registry: reg,
	})
	return e, store, reg
}

// Regression (satellite fix): fetchTree used to skip ANY file named like the
// migration flag, silently dropping legitimately-named user files deeper in
// the tree. Only the root-level sentinel is protocol state.
func TestFetchTreeKeepsNestedFlagNamedFile(t *testing.T) {
	peer := newStorePeer()
	src := RepPath("/docs")
	if err := peer.remote.WriteFile(src+"/"+MigrationFlag, nil); err != nil {
		t.Fatal(err)
	}
	if err := peer.remote.WriteFile(src+"/a.txt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := peer.remote.WriteFile(src+"/nest/"+MigrationFlag, []byte("user data")); err != nil {
		t.Fatal(err)
	}
	e, store, _ := deltaEngine(t, peer)

	if _, err := e.fetchTree(obs.TraceContext{}, "r1", nil, Track{PN: "docs", Root: "/docs"}, 5); err != nil {
		t.Fatal(err)
	}
	if data, err := store.ReadFile("/docs/a.txt"); err != nil || string(data) != "a" {
		t.Fatalf("/docs/a.txt: %q err=%v", data, err)
	}
	if data, err := store.ReadFile("/docs/nest/" + MigrationFlag); err != nil || string(data) != "user data" {
		t.Fatalf("nested flag-named user file was dropped: %q err=%v", data, err)
	}
	if _, err := store.LookupPath("/docs/" + MigrationFlag); err == nil {
		t.Fatal("root-level migration sentinel was fetched as content")
	}
	if v := e.VerOf("/docs"); v != 5 {
		t.Fatalf("adopted version %d, want 5", v)
	}
}

// Satellite fix: whole-file pushes ship file contents in bounded chunks
// rather than one whole-file op. (sendFileWhole is the WholeFile baseline and
// the fallback when block negotiation fails.)
func TestSendFileChunksLargePayload(t *testing.T) {
	e, store, _ := deltaEngine(t, newStorePeer())
	payload := bytes.Repeat([]byte("x"), PushChunk*2+PushChunk/2)
	if err := store.WriteFile("/big/blob", payload); err != nil {
		t.Fatal(err)
	}
	var ops []FSOp
	step := func(op FSOp) error { ops = append(ops, op); return nil }
	if err := e.sendFileWhole("/big/blob", "/big/blob", step); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 || ops[0].Kind != FSCreate {
		t.Fatalf("got %d ops (first %v), want FSCreate + 3 chunked FSWrites", len(ops), ops[0].Kind)
	}
	var rebuilt []byte
	for i, op := range ops[1:] {
		if op.Kind != FSWrite {
			t.Fatalf("op %d kind %v, want FSWrite", i+1, op.Kind)
		}
		if op.Offset != int64(len(rebuilt)) {
			t.Fatalf("op %d offset %d, want %d", i+1, op.Offset, len(rebuilt))
		}
		if len(op.Data) > PushChunk {
			t.Fatalf("chunk %d bytes exceeds the %d limit", len(op.Data), PushChunk)
		}
		rebuilt = append(rebuilt, op.Data...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatal("chunks do not reassemble to the source file")
	}
}

// The tentpole guarantee: a matching replica costs one digest exchange and
// zero mutations; a one-file change ships only that file; and the replica
// tree is never removed wholesale (stays readable throughout).
func TestEnsureTreeDeltaSkipsAndShipsOnlyChanges(t *testing.T) {
	peer := newStorePeer()
	e, store, reg := deltaEngine(t, peer)

	files := []string{"f0.txt", "f1.txt", "f2.txt", "f3.txt", "f4.txt"}
	for _, name := range files {
		if err := store.WriteFile("/proj/"+name, []byte("content of "+name)); err != nil {
			t.Fatal(err)
		}
		if err := peer.remote.WriteFile(RepPath("/proj")+"/"+name, []byte("content of "+name)); err != nil {
			t.Fatal(err)
		}
	}
	peer.vers["/proj"] = 1
	tr := Track{PN: "proj", Root: "/proj", Ver: 1}

	// Identical copy, identical version: one digest exchange, no mutations.
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", tr, false); err != nil {
		t.Fatal(err)
	}
	if len(peer.mirrors) != 0 {
		t.Fatalf("matching replica still received %d ops: %v", len(peer.mirrors), peer.mirrors)
	}
	if h := reg.Counter("repl.sync.digest.hits").Load(); h == 0 {
		t.Fatal("digest hit not counted")
	}

	// Touch one file; the delta must ship that file and nothing else.
	if err := store.WriteFile("/proj/f2.txt", []byte("CHANGED")); err != nil {
		t.Fatal(err)
	}
	tr.Ver = 2
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", tr, false); err != nil {
		t.Fatal(err)
	}
	var wrote []string
	for _, m := range peer.mirrors {
		if m.op.Kind == FSRemoveAll {
			t.Fatalf("delta sync issued FSRemoveAll on %s: replicas must stay readable", m.op.Path)
		}
		if m.op.Kind == FSCreate || m.op.Kind == FSWrite || m.op.Kind == FSChunkWrite || m.op.Kind == FSSetattr {
			wrote = append(wrote, m.op.Path)
		}
	}
	for _, p := range wrote {
		if p != "/proj/f2.txt" {
			t.Fatalf("unchanged path %s was re-shipped", p)
		}
	}
	if len(wrote) == 0 {
		t.Fatal("changed file never shipped")
	}

	// The replica's bytes now match the primary's, and the sentinel is gone.
	want, err := merkle.DigestPath(store, "/proj")
	if err != nil {
		t.Fatal(err)
	}
	got, err := merkle.DigestPath(peer.remote, RepPath("/proj"))
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatal("replica digest diverges from primary after delta sync")
	}
	if _, err := peer.remote.LookupPath(RepPath("/proj") + "/" + MigrationFlag); err == nil {
		t.Fatal("migration sentinel left behind after sync")
	}
	if sent := reg.Counter("repl.sync.files.sent").Load(); sent != 1 {
		t.Fatalf("files.sent = %d, want 1", sent)
	}
	if skipped := reg.Counter("repl.sync.files.skipped").Load(); skipped < 4 {
		t.Fatalf("files.skipped = %d, want >= 4", skipped)
	}

	// A deletion propagates as a targeted remove of the stale entry only.
	attr, err := store.LookupPath("/proj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Remove(attr.Ino, "f4.txt"); err != nil {
		t.Fatal(err)
	}
	tr.Ver = 3
	peer.mirrors = nil
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", tr, false); err != nil {
		t.Fatal(err)
	}
	var removed []string
	for _, m := range peer.mirrors {
		if m.op.Kind == FSRemoveAll {
			removed = append(removed, m.op.Path)
		}
	}
	if len(removed) != 1 || removed[0] != "/proj/f4.txt" {
		t.Fatalf("stale-entry removal ops %v, want exactly /proj/f4.txt", removed)
	}
	if _, err := peer.remote.LookupPath(RepPath("/proj") + "/f4.txt"); err == nil {
		t.Fatal("deleted file survived on the replica")
	}
}

// patternBytes generates deterministic content with enough entropy for the
// content-defined chunker to cut naturally.
func patternBytes(n int, seed uint64) []byte {
	b := make([]byte, n)
	s := seed
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = byte(s >> 33)
	}
	return b
}

// The tentpole's delta guarantee, pinned: a small edit to a large file ships
// at most 10% of the file's bytes over the wire. The receiver's stale copy of
// the very file being negotiated is its chunk source — no pre-seeding.
func TestSendFileDeltaWithinTenPercent(t *testing.T) {
	peer := newStorePeer()
	e, store, reg := deltaEngine(t, peer)

	const size = 4 << 20
	content := patternBytes(size, 1)
	if err := store.WriteFile("/proj/big.bin", content); err != nil {
		t.Fatal(err)
	}
	if err := peer.remote.WriteFile(RepPath("/proj")+"/big.bin", content); err != nil {
		t.Fatal(err)
	}
	peer.vers["/proj"] = 1

	// A 16-byte edit in the middle: only the chunks spanning it change.
	edited := append([]byte(nil), content...)
	copy(edited[size/2:], []byte("EDITED-SIXTEEN-B"))
	if err := store.WriteFile("/proj/big.bin", edited); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", Track{PN: "proj", Root: "/proj", Ver: 2}, false); err != nil {
		t.Fatal(err)
	}
	if got, err := peer.remote.ReadFile(RepPath("/proj") + "/big.bin"); err != nil || !bytes.Equal(got, edited) {
		t.Fatalf("replica content diverged after delta (err=%v, %d bytes)", err, len(got))
	}
	shipped := reg.Counter("repl.sync.bytes").Load()
	if shipped == 0 {
		t.Fatal("no bytes shipped for a changed file")
	}
	if shipped > size/10 {
		t.Fatalf("delta shipped %d bytes, want <= %d (10%% of %d)", shipped, size/10, size)
	}
}

// The tentpole's swarm guarantee, pinned: a pull repair with a second settled
// holder available fetches blocks from at least two holders in parallel, and
// the rebuilt tree is byte-identical.
func TestFetchTreeSwarmUsesMultipleHolders(t *testing.T) {
	peer := newStorePeer()
	e, store, reg := deltaEngine(t, peer)

	content := patternBytes(1<<20, 7)
	if err := peer.remote.WriteFile(RepPath("/pull")+"/blob.bin", content); err != nil {
		t.Fatal(err)
	}
	if _, err := e.fetchTree(obs.TraceContext{}, "r1", []simnet.Addr{"r2"}, Track{PN: "pull", Root: "/pull"}, 3); err != nil {
		t.Fatal(err)
	}
	if got, err := store.ReadFile("/pull/blob.bin"); err != nil || !bytes.Equal(got, content) {
		t.Fatalf("pulled content diverged (err=%v, %d bytes)", err, len(got))
	}
	if peer.fetches["r1"] == 0 || peer.fetches["r2"] == 0 {
		t.Fatalf("block fetches not spread across holders: %v", peer.fetches)
	}
	if f := reg.Counter("repl.cas.blocks.fetched").Load(); f < 2 {
		t.Fatalf("blocks.fetched = %d, want >= 2", f)
	}
	if b := reg.Counter("repl.fetch.bytes").Load(); b != uint64(len(content)) {
		t.Fatalf("fetch.bytes = %d, want %d", b, len(content))
	}
}

// A holder dying mid-fetch must not fail the repair: its share of the WANT
// list is retried from the version's holder and the tree still converges.
func TestFetchTreeSurvivesDeadHolder(t *testing.T) {
	peer := newStorePeer()
	e, store, _ := deltaEngine(t, peer)

	content := patternBytes(1<<20, 9)
	if err := peer.remote.WriteFile(RepPath("/pull")+"/blob.bin", content); err != nil {
		t.Fatal(err)
	}
	peer.down["r2"] = true
	if _, err := e.fetchTree(obs.TraceContext{}, "r1", []simnet.Addr{"r2"}, Track{PN: "pull", Root: "/pull"}, 3); err != nil {
		t.Fatal(err)
	}
	if got, err := store.ReadFile("/pull/blob.bin"); err != nil || !bytes.Equal(got, content) {
		t.Fatalf("pulled content diverged with a dead holder (err=%v, %d bytes)", err, len(got))
	}
}

// A pull repair against a stale local copy fetches only the missing blocks:
// the local file's unchanged chunks resolve from the local index, not the
// network.
func TestPullFileFetchesOnlyMissingBlocks(t *testing.T) {
	peer := newStorePeer()
	e, store, reg := deltaEngine(t, peer)

	const size = 4 << 20
	remote := patternBytes(size, 11)
	stale := append([]byte(nil), remote...)
	copy(stale[size/4:], []byte("STALE-LOCAL-EDIT"))
	if err := peer.remote.WriteFile(RepPath("/pull")+"/doc.bin", remote); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFile("/pull/doc.bin", stale); err != nil {
		t.Fatal(err)
	}
	if _, err := e.fetchTree(obs.TraceContext{}, "r1", nil, Track{PN: "pull", Root: "/pull"}, 3); err != nil {
		t.Fatal(err)
	}
	if got, err := store.ReadFile("/pull/doc.bin"); err != nil || !bytes.Equal(got, remote) {
		t.Fatalf("pulled content diverged (err=%v, %d bytes)", err, len(got))
	}
	if b := reg.Counter("repl.fetch.bytes").Load(); b > size/10 {
		t.Fatalf("pull repair fetched %d bytes, want <= %d (stale copy should serve the rest)", b, size/10)
	}
}

// Content-identical replica whose recorded version lags is re-stamped with a
// single metadata op instead of a re-push.
func TestEnsureTreeRestampsMatchingReplica(t *testing.T) {
	peer := newStorePeer()
	e, store, _ := deltaEngine(t, peer)
	if err := store.WriteFile("/w/x.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := peer.remote.WriteFile(RepPath("/w")+"/x.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	peer.vers["/w"] = 1
	if _, err := e.ensureTree(obs.TraceContext{}, "r1", Track{PN: "w", Root: "/w", Ver: 4}, false); err != nil {
		t.Fatal(err)
	}
	if len(peer.mirrors) != 1 || peer.mirrors[0].op.Kind != FSMkdirAll {
		t.Fatalf("restamp ops %v, want a single FSMkdirAll", peer.mirrors)
	}
	if peer.vers["/w"] != 4 {
		t.Fatalf("replica version %d after restamp, want 4", peer.vers["/w"])
	}
}
