package repl

import (
	"errors"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/merkle"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/simnet"
)

// Overlay is the engine's view of the p2p substrate: key ownership checks,
// the current replica candidates, and raw routing. The core node adapts its
// Pastry instance to this (re-reading it across Revive incarnations).
type Overlay interface {
	// EnsureRootFor actively verifies whether this node owns key (pinging
	// and purging a better candidate if it is dead).
	EnsureRootFor(key id.ID) (bool, simnet.Cost)
	// ReplicaCandidates returns the K leaf-set neighbors that should hold
	// replicas for this node's keys.
	ReplicaCandidates(k int) []pastry.NodeInfo
	// Route resolves the node currently owning key.
	Route(key id.ID) (pastry.RouteResult, error)
}

// Peer is the engine's view of other nodes: the kosha-service RPCs used for
// replica maintenance plus the plain NFS reads tree fetches are built from.
// Every method takes the caller's trace context first, so anti-entropy and
// migration traffic shows up as server spans on the remote side of the
// assembled cross-node trace (a zero context propagates nothing).
type Peer interface {
	// Mirror ships one mutation to another node; primary selects whether it
	// lands in the primary namespace (migration push) or the replica area.
	Mirror(tc obs.TraceContext, to simnet.Addr, t Track, op FSOp, primary bool) (simnet.Cost, error)
	// StatTree summarizes the subtree stored at exactly root on to.
	StatTree(tc obs.TraceContext, to simnet.Addr, root string) (TreeStat, simnet.Cost, error)
	// Promote asks to, as the new owner of t's key, to surface its
	// replica-area copy; reports whether remote state changed.
	Promote(tc obs.TraceContext, to simnet.Addr, t Track) (bool, simnet.Cost, error)
	// DigestTree returns the Merkle digest summary of the subtree stored at
	// exactly root on to.
	DigestTree(tc obs.TraceContext, to simnet.Addr, root string) (TreeDigest, simnet.Cost, error)
	// DirDigests lists the immediate children of a remote directory with
	// their subtree digests; ok is false when dir is missing or not a
	// directory.
	DirDigests(tc obs.TraceContext, to simnet.Addr, dir string) ([]merkle.Entry, bool, simnet.Cost, error)
	// LookupPath resolves a physical path on a remote store.
	LookupPath(tc obs.TraceContext, to simnet.Addr, phys string) (nfs.Handle, localfs.Attr, simnet.Cost, error)
	// ReadDir lists a remote directory.
	ReadDir(tc obs.TraceContext, to simnet.Addr, fh nfs.Handle) ([]nfs.DirEntry, simnet.Cost, error)
	// ReadStream reads up to chunks consecutive chunk-byte pieces of a
	// remote file in one round trip, reporting EOF — the pipelined window
	// transfer tree fetches are built from.
	ReadStream(tc obs.TraceContext, to simnet.Addr, fh nfs.Handle, off int64, chunk, chunks int) ([]byte, bool, simnet.Cost, error)
	// ReadLink reads a remote symlink target by physical path.
	ReadLink(tc obs.TraceContext, to simnet.Addr, phys string) (string, simnet.Cost, error)
	// ChunkManifest negotiates at the block level (CHUNK_MANIFEST): it
	// returns the chunk manifest of the remote regular file at phys (exists
	// false when phys is missing or not a regular file, which also indexes
	// the remote copy's blocks as a side effect) and, for each hash in want,
	// whether the remote's block index already holds those bytes.
	ChunkManifest(tc obs.TraceContext, to simnet.Addr, phys string, want []cas.Hash) (man cas.Manifest, exists bool, have []bool, cost simnet.Cost, err error)
	// ChunkFetch retrieves blocks by content hash (CHUNK_FETCH); phys hints
	// at a file whose manifest covers the hashes so a holder that never
	// indexed it can do so on demand. blocks[i] is nil for hashes the remote
	// could not serve — callers verify every returned block against its hash.
	ChunkFetch(tc obs.TraceContext, to simnet.Addr, phys string, hashes []cas.Hash) (blocks [][]byte, cost simnet.Cost, err error)
}

// Options configures an Engine.
type Options struct {
	Self     simnet.Addr        // this node's address (event attribution)
	Store    localfs.FileSystem // the contributed partition
	Overlay  Overlay
	Peer     Peer
	Replicas int                   // K
	Key      func(pn string) id.ID // placement-name hash
	Events   *obs.EventLog         // may be nil-safe consumers only if non-nil
	Registry *obs.Registry
	// Tracer, when set, gives replica-maintenance runs their own cluster-wide
	// trace ids: each Sync becomes a traced operation whose remote traffic
	// records server spans on the peers it touches. Nil disables (all engine
	// RPCs then carry the zero context).
	Tracer *obs.Tracer
	// FullPush disables the Merkle delta protocol and restores the legacy
	// remove-and-recopy push. Kept for the sync experiment's baseline arm.
	FullPush bool
	// WholeFile disables block-level manifest negotiation: changed files are
	// shipped and fetched whole (the pre-chunk-store behavior). Kept for the
	// dedup experiment's baseline arm; implied by FullPush.
	WholeFile bool
}

// Engine tracks the replicated hierarchies this node holds and re-establishes
// the K-replica invariant after membership changes (Sections 4.2-4.4). All
// methods are safe for concurrent use; Sync is additionally self-excluding
// (overlapping calls collapse to one).
type Engine struct {
	self      simnet.Addr
	store     localfs.FileSystem
	ov        Overlay
	peer      Peer
	replicas  int
	key       func(pn string) id.ID
	events    *obs.EventLog
	reg       *obs.Registry
	tracer    *obs.Tracer
	mk        *merkle.Cache // subtree digests over store, mutation-invalidated
	cas       *cas.Store    // block index the merkle cache keeps in lockstep
	fullPush  bool
	wholeFile bool

	// Sync-traffic counters: payload bytes shipped, files sent vs skipped
	// by digest match, and whole-tree digest exchanges that hit vs missed.
	syncBytes    *obs.Counter
	syncSent     *obs.Counter
	syncSkipped  *obs.Counter
	digestHits   *obs.Counter
	digestMisses *obs.Counter
	// Pull-repair counters: blocks obtained over CHUNK_FETCH, and total
	// content bytes a tree fetch materialized over the network (both the
	// block and the whole-file path), so promote-repair traffic is
	// measurable independent of the surrounding sync chatter.
	blocksFetched *obs.Counter
	fetchBytes    *obs.Counter
	// routedFetched counts blocks obtained from a holder found via routing
	// after the leaf-set swarm (and its retry pass) came up empty.
	routedFetched *obs.Counter

	mu           sync.Mutex
	tracked      map[string]Track // physical subtree root -> metadata (PN, version)
	trackedLinks map[string]Track // level-1 special link path -> metadata
	fetchHook    func(holder simnet.Addr, blocks int)

	syncing atomic.Bool
}

// New builds an engine with empty tracking state.
func New(o Options) *Engine {
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	blocks := cas.NewStore(o.Store, o.Registry)
	return &Engine{
		self:          o.Self,
		store:         o.Store,
		ov:            o.Overlay,
		peer:          o.Peer,
		replicas:      o.Replicas,
		key:           o.Key,
		events:        o.Events,
		reg:           o.Registry,
		tracer:        o.Tracer,
		mk:            merkle.NewCacheWithStore(o.Store, blocks),
		cas:           blocks,
		fullPush:      o.FullPush,
		wholeFile:     o.WholeFile || o.FullPush,
		syncBytes:     o.Registry.Counter("repl.sync.bytes"),
		syncSent:      o.Registry.Counter("repl.sync.files.sent"),
		syncSkipped:   o.Registry.Counter("repl.sync.files.skipped"),
		digestHits:    o.Registry.Counter("repl.sync.digest.hits"),
		digestMisses:  o.Registry.Counter("repl.sync.digest.misses"),
		blocksFetched: o.Registry.Counter("repl.cas.blocks.fetched"),
		fetchBytes:    o.Registry.Counter("repl.fetch.bytes"),
		routedFetched: o.Registry.Counter("repl.cas.blocks.routed"),
		tracked:       make(map[string]Track),
		trackedLinks:  make(map[string]Track),
	}
}

// Reset discards all tracking state (node revival purges all Kosha data,
// Section 4.3.2).
func (e *Engine) Reset() {
	e.mu.Lock()
	e.tracked = make(map[string]Track)
	e.trackedLinks = make(map[string]Track)
	e.mu.Unlock()
	e.cas.Reset()
}

// TrackedRoots returns a snapshot (fresh map) of root -> placement name.
func (e *Engine) TrackedRoots() map[string]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]string, len(e.tracked))
	for k, v := range e.tracked {
		out[k] = v.PN
	}
	return out
}

// IsDead reports whether this node's record for a root is a tombstone.
func (e *Engine) IsDead(root string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tracked[root]
	return ok && t.Dead
}

// VerOf returns this node's recorded mutation counter for a root or link.
func (e *Engine) VerOf(key string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.tracked[key]; ok {
		return t.Ver
	}
	if t, ok := e.trackedLinks[key]; ok {
		return t.Ver
	}
	return 0
}

// Untrack drops the record for a root (remote-initiated cleanup).
func (e *Engine) Untrack(root string) {
	e.mu.Lock()
	delete(e.tracked, root)
	e.mu.Unlock()
}

// Stamp assigns the next mutation counter value for the op being applied at
// the primary; Track records it afterwards together with the op's liveness.
// A storage-root rename continues the old root's version chain.
func (e *Engine) Stamp(t Track, op FSOp) Track {
	e.mu.Lock()
	defer e.mu.Unlock()
	if op.Kind == FSRename && op.Path2 == t.Root {
		t.Ver = e.tracked[op.Path].Ver + 1
		return t
	}
	if t.Link != "" {
		t.Ver = e.trackedLinks[t.Link].Ver + 1
		return t
	}
	if t.Root == "" {
		t.Ver = 0
		return t
	}
	t.Ver = e.tracked[t.Root].Ver + 1
	return t
}

// Track records subtree/link ownership metadata shipped with a mutation.
func (e *Engine) Track(t Track, op FSOp) {
	if t.PN == "" {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if t.Link != "" {
		t.Dead = op.Kind == FSRemove
		e.trackedLinks[t.Link] = t
		return
	}
	if t.Root == "" {
		return
	}
	// A storage-root rename (the cheap-rename path) rekeys the entry,
	// carrying the version chain to the new root.
	if op.Kind == FSRename && (op.Path2 == t.Root || op.Path2 == RepPath(t.Root)) {
		old := PrimaryRoot(op.Path)
		if cur, ok := e.tracked[old]; ok {
			if cur.Ver > t.Ver {
				t.Ver = cur.Ver
			}
			delete(e.tracked, old)
		}
		e.tracked[t.Root] = t
		return
	}
	// A removal of the hierarchy root becomes a tombstone: the entry stays
	// with a bumped version so a node holding a stale copy can learn that
	// deletion is the newer state, and a later re-creation continues the
	// version chain above the tombstone.
	t.Dead = (op.Kind == FSRmdir || op.Kind == FSRemoveAll) &&
		(op.Path == t.Root || op.Path == RepPath(t.Root))
	// Last writer wins: the copy now reflects the sender's version, so the
	// record does too (a full re-push may legitimately lower it).
	e.tracked[t.Root] = t
}

// PruneUp removes empty scaffolding directories above a deleted entry,
// stopping at tracked subtree roots and the store root (Section 4.1.5: "The
// empty hierarchy leading to the subdirectory is then deleted").
func (e *Engine) PruneUp(dir string) {
	for dir != "/" && dir != "." {
		e.mu.Lock()
		_, isTracked := e.tracked[dir]
		e.mu.Unlock()
		if isTracked {
			return
		}
		attr, err := e.store.LookupPath(dir)
		if err != nil || attr.Type != localfs.TypeDir {
			return
		}
		ents, _, err := e.store.Readdir(attr.Ino)
		if err != nil || len(ents) > 0 {
			return
		}
		parent := path.Dir(dir)
		pattr, err := e.store.LookupPath(parent)
		if err != nil {
			return
		}
		if _, err := e.store.Rmdir(pattr.Ino, path.Base(dir)); err != nil {
			return
		}
		dir = parent
	}
}

// StatLocal summarizes the local subtree stored at exactly this path.
func (e *Engine) StatLocal(root string) TreeStat {
	var st TreeStat
	if _, err := e.store.LookupPath(root); err != nil {
		return st
	}
	st.Exists = true
	flagPath := path.Join(root, MigrationFlag)
	e.store.Walk(root, func(p string, a localfs.Attr, _ string) error {
		if a.Type == localfs.TypeDir {
			st.Dirs++
			return nil
		}
		// Only the root-level sentinel is protocol state; a user file that
		// happens to share the name deeper in the tree is ordinary data.
		if p == flagPath {
			st.Flag = true
			return nil
		}
		st.Files++
		st.Bytes += a.Size
		return nil
	})
	return st
}

// DigestLocal summarizes the local subtree stored at exactly this path by
// its Merkle root digest. Ver is left zero; the RPC layer stamps the
// holder's recorded mutation counter (the engine's VerOf) on the way out.
func (e *Engine) DigestLocal(root string) TreeDigest {
	var td TreeDigest
	if _, err := e.store.LookupPath(root); err != nil {
		return td
	}
	td.Exists = true
	if _, err := e.store.LookupPath(path.Join(root, MigrationFlag)); err == nil {
		td.Flag = true
	}
	if d, err := e.mk.DigestOf(root); err == nil {
		td.Root = d
	}
	return td
}

// DirDigestsLocal lists the immediate children of a local directory with
// their subtree digests; ok is false when dir is missing or not a directory.
func (e *Engine) DirDigestsLocal(dir string) ([]merkle.Entry, bool, error) {
	return e.mk.Entries(dir)
}

// LocalTreePath locates this node's copy of a subtree: at the primary path
// when it owns the key, otherwise in the replica area.
func (e *Engine) LocalTreePath(root string) (string, bool) {
	if _, err := e.store.LookupPath(root); err == nil {
		return root, true
	}
	if _, err := e.store.LookupPath(RepPath(root)); err == nil {
		return RepPath(root), true
	}
	return "", false
}

// PromoteLocal moves a replica-area copy of a subtree (or level-1 special
// link) to its primary path. Call only after confirming ownership of the
// key; it is a no-op when the primary path already exists or no replica
// copy is held. Reports whether it surfaced anything.
func (e *Engine) PromoteLocal(t Track) bool {
	target := t.Root
	if t.Link != "" {
		target = t.Link
	}
	if target == "" {
		return false
	}
	e.mu.Lock()
	meta, ok := e.tracked[t.Root]
	if t.Link != "" {
		meta, ok = e.trackedLinks[t.Link]
	}
	e.mu.Unlock()
	if ok && meta.Dead {
		// We saw the hierarchy's deletion: nothing to surface, and any
		// leftover replica-area data is stale.
		e.store.RemoveAll(RepPath(target))
		return false
	}
	if _, err := e.store.LookupPath(target); err == nil {
		return false
	}
	src := RepPath(target)
	if _, err := e.store.LookupPath(src); err != nil {
		return false
	}
	if _, err := e.store.MkdirAll(path.Dir(target)); err != nil {
		return false
	}
	spar, err := e.store.LookupPath(path.Dir(src))
	if err != nil {
		return false
	}
	dpar, err := e.store.LookupPath(path.Dir(target))
	if err != nil {
		return false
	}
	if _, err := e.store.Rename(spar.Ino, path.Base(src), dpar.Ino, path.Base(target)); err != nil {
		return false
	}
	e.PruneUp(path.Dir(src))
	e.Track(t, FSOp{Kind: FSMkdirAll, Path: t.Root})
	return true
}

// DemoteLocal moves this node's primary-path copy of a subtree (or link)
// back into the replica area, after ownership of the key moved elsewhere.
// Without this, a stale primary-path leftover would shadow the fresher
// replica-area copy the next time ownership returns here ("their copy on N
// becomes one of the replicas", Section 4.3.1).
func (e *Engine) DemoteLocal(t Track) {
	target := t.Root
	if t.Link != "" {
		target = t.Link
	}
	if target == "" || target == "/" {
		return
	}
	if _, err := e.store.LookupPath(target); err != nil {
		return
	}
	dst := RepPath(target)
	e.store.RemoveAll(dst)
	if _, err := e.store.MkdirAll(path.Dir(dst)); err != nil {
		return
	}
	spar, err := e.store.LookupPath(path.Dir(target))
	if err != nil {
		return
	}
	dpar, err := e.store.LookupPath(path.Dir(dst))
	if err != nil {
		return
	}
	if _, err := e.store.Rename(spar.Ino, path.Base(target), dpar.Ino, path.Base(dst)); err != nil {
		return
	}
	e.PruneUp(path.Dir(target))
}

// Sync re-establishes the replication invariant for every subtree and
// level-1 link this node tracks: if this node is the primary it pushes to
// its current K leaf-set neighbors; if ownership moved (a closer node
// joined) it migrates the subtree to the new primary, keeping its own copy
// as a replica (Section 4.3.1). Returns the simulated cost.
func (e *Engine) Sync() (total simnet.Cost) {
	if !e.syncing.CompareAndSwap(false, true) {
		return 0
	}
	defer e.syncing.Store(false)
	e.events.Add(obs.EvResync, string(e.self), "")
	// Each sync run is its own traced operation: the remote side of every
	// stat/digest/mirror below records a span under this trace id.
	str := e.tracer.Start(obs.OpResync, "/", string(e.self))
	tc := str.Ctx()
	defer func() {
		e.reg.Observe("op."+obs.OpResync, time.Duration(total))
		e.tracer.Finish(str, time.Duration(total), nil)
	}()
	// Snapshot in sorted order: map iteration order would otherwise vary the
	// RPC sequence between runs, breaking seed-exact replay of fault
	// schedules (the chaos harness's determinism contract).
	type trackedRoot struct {
		root string
		meta Track
	}
	e.mu.Lock()
	roots := make([]trackedRoot, 0, len(e.tracked))
	for r, t := range e.tracked {
		roots = append(roots, trackedRoot{r, t})
	}
	links := make([]Track, 0, len(e.trackedLinks))
	linkKeys := make([]string, 0, len(e.trackedLinks))
	for p := range e.trackedLinks {
		linkKeys = append(linkKeys, p)
	}
	sort.Strings(linkKeys)
	for _, p := range linkKeys {
		links = append(links, e.trackedLinks[p])
	}
	e.mu.Unlock()
	sort.Slice(roots, func(i, j int) bool { return roots[i].root < roots[j].root })

	for _, tr := range roots {
		root, meta := tr.root, tr.meta
		key := e.key(meta.PN)
		t := Track{PN: meta.PN, Root: root, Ver: meta.Ver, Dead: meta.Dead}
		if isRoot, c := e.ov.EnsureRootFor(key); isRoot {
			total = simnet.Seq(total, c)
			if meta.Dead {
				// Propagate the deletion to any replica still holding a
				// copy older than the tombstone. The replicas are
				// independent peers, so the fan-out cost is the slowest
				// branch, not the sum.
				var fan []simnet.Cost
				for _, rep := range e.ov.ReplicaCandidates(e.replicas) {
					st, c, err := e.peer.StatTree(tc, rep.Addr, RepPath(root))
					if err != nil || (!st.Exists && st.Ver >= t.Ver) {
						fan = append(fan, c)
						continue
					}
					mc, _ := e.peer.Mirror(tc, rep.Addr, t, FSOp{Kind: FSRemoveAll, Path: root}, false)
					fan = append(fan, simnet.Seq(c, mc))
				}
				total = simnet.Seq(total, simnet.Par(fan...))
				continue
			}
			// Surface any replica-area copy; if a replica holds a newer
			// version or a newer deletion, adopt it before refreshing.
			ac, _ := e.AdoptRoot(tc, t)
			total = simnet.Seq(total, ac)
			t.Ver = e.VerOf(root)
			if e.IsDead(root) {
				continue
			}
			var fan []simnet.Cost
			for _, rep := range e.ov.ReplicaCandidates(e.replicas) {
				c, _ := e.ensureTree(tc, rep.Addr, t, false)
				fan = append(fan, c)
			}
			total = simnet.Seq(total, simnet.Par(fan...))
			continue
		} else {
			total = simnet.Seq(total, c)
		}
		res, err := e.ov.Route(key)
		total = simnet.Seq(total, res.Cost)
		if err != nil || res.Node.Addr == e.self {
			continue
		}
		if meta.Dead {
			// Tell the new owner about the deletion unless it already
			// knows a state at least as new.
			st, c, err := e.peer.StatTree(tc, res.Node.Addr, root)
			total = simnet.Seq(total, c)
			if err == nil && st.Ver < t.Ver {
				c, _ = e.peer.Mirror(tc, res.Node.Addr, t, FSOp{Kind: FSRemoveAll, Path: root, Prune: true}, true)
				total = simnet.Seq(total, c)
			}
			continue
		}
		// Someone else owns the key now: migrate the subtree to them; our
		// copy stays behind as one of the replicas (Section 4.3.1), parked
		// back in the replica area.
		c, err := e.ensureTree(tc, res.Node.Addr, t, true)
		total = simnet.Seq(total, c)
		if err == nil {
			e.DemoteLocal(t)
		}
	}

	for _, t := range links {
		src, ok := e.LocalTreePath(t.Link)
		if !ok {
			continue
		}
		linkAttr, err := e.store.LookupPath(src)
		if err != nil {
			continue
		}
		tgt, _, err := e.store.Readlink(linkAttr.Ino)
		if err != nil {
			continue
		}
		op := FSOp{Kind: FSSymlink, Path: t.Link, Target: tgt}
		key := e.key(t.PN)
		if isRoot, c := e.ov.EnsureRootFor(key); isRoot {
			total = simnet.Seq(total, c)
			e.PromoteLocal(t)
			var fan []simnet.Cost
			for _, rep := range e.ov.ReplicaCandidates(e.replicas) {
				c, _ := e.peer.Mirror(tc, rep.Addr, t, op, false)
				fan = append(fan, c)
			}
			total = simnet.Seq(total, simnet.Par(fan...))
			continue
		} else {
			total = simnet.Seq(total, c)
		}
		res, err := e.ov.Route(key)
		total = simnet.Seq(total, res.Cost)
		if err != nil || res.Node.Addr == e.self {
			continue
		}
		c, merr := e.peer.Mirror(tc, res.Node.Addr, t, op, false)
		total = simnet.Seq(total, c)
		_, c, perr := e.peer.Promote(tc, res.Node.Addr, t)
		total = simnet.Seq(total, c)
		if merr == nil && perr == nil {
			e.DemoteLocal(t)
		}
	}
	return total
}

// ensureTree makes target hold an up-to-date replica-area copy of the
// local subtree. Root digests are exchanged first; a match means the
// remote copy is byte-identical and nothing moves. On a mismatch the delta
// walk descends only into differing directories and ships only changed
// files and deletions, under the MIGRATION_NOT_COMPLETE flag protocol
// (Section 4.4). When promote is set (the target is the new primary after
// an ownership change) the pushed copy lands at the primary path.
func (e *Engine) ensureTree(tc obs.TraceContext, target simnet.Addr, t Track, promote bool) (simnet.Cost, error) {
	src, ok := e.LocalTreePath(t.Root)
	if !ok {
		return 0, nil
	}
	localDigest, lerr := e.mk.DigestOf(src)
	if promote {
		// Migration to the key's new primary. Versions arbitrate: a
		// settled remote copy at least as new as ours wins; otherwise we
		// surface the remote's replica-area copy if that is new enough, or
		// push ours (§4.3.1, with the §4.4 flag protocol inside the push).
		remote, cost, err := e.peer.DigestTree(tc, target, t.Root)
		if err != nil {
			return cost, err
		}
		if remote.Exists && !remote.Flag && remote.Ver >= t.Ver {
			return cost, nil
		}
		if !remote.Exists && remote.Ver > t.Ver {
			// The target knows a strictly newer state and holds no data:
			// that is a deletion tombstone. Pushing our older copy would
			// resurrect the hierarchy; leave it and let the tombstone
			// propagate back to us through the normal sync path.
			return cost, nil
		}
		repRemote, c, err := e.peer.DigestTree(tc, target, RepPath(t.Root))
		cost = simnet.Seq(cost, c)
		if err != nil {
			return cost, err
		}
		if repRemote.Exists && !repRemote.Flag && repRemote.Ver >= t.Ver && !remote.Exists {
			_, c, err := e.peer.Promote(tc, target, t)
			return simnet.Seq(cost, c), err
		}
		c, err = e.deltaPush(tc, target, t, src, true, remote)
		return simnet.Seq(cost, c), err
	}

	// Primary -> replica refresh: the primary's copy is authoritative for
	// its version; a replica whose root digest already matches holds a
	// byte-identical copy and is left alone (at most re-stamped).
	remote, cost, err := e.peer.DigestTree(tc, target, RepPath(t.Root))
	if err != nil {
		return cost, err
	}
	if lerr == nil && remote.Exists && !remote.Flag && remote.Root == localDigest {
		e.digestHits.Add(1)
		if remote.Ver != t.Ver {
			// Content matches but the replica's recorded version lags (e.g.
			// it missed the mirrors but obtained the bytes elsewhere). One
			// metadata-only op re-stamps it without moving data.
			c, err := e.peer.Mirror(tc, target, t, FSOp{Kind: FSMkdirAll, Path: t.Root}, false)
			return simnet.Seq(cost, c), err
		}
		return cost, nil
	}
	e.digestMisses.Add(1)
	c, err := e.deltaPush(tc, target, t, src, false, remote)
	return simnet.Seq(cost, c), err
}

// PushChunk bounds the payload of a single mirrored write, matching
// fetchTree's read granularity, so arbitrarily large files sync with
// bounded memory on both ends. The client-side streaming data path shares
// this chunk size (core.Config.StreamChunk defaults to it).
const PushChunk = 1 << 20

// FetchWindow is how many PushChunk pieces a pull-repair tree fetch keeps
// in flight per ReadStream round trip.
const FetchWindow = 4

// deltaPush brings target's copy of the subtree (remote, already digested)
// up to date with the local copy at src, shipping only changed files and
// deletions. The migration flag is written at the hierarchy root first and
// removed only after the walk completes (Section 4.4); the tree underneath
// is edited in place, never removed wholesale, so the remote copy stays
// readable throughout.
func (e *Engine) deltaPush(tc obs.TraceContext, target simnet.Addr, t Track, src string, primary bool, remote TreeDigest) (simnet.Cost, error) {
	if e.fullPush {
		return e.pushTree(tc, target, t, src, primary)
	}
	var total simnet.Cost
	flag := path.Join(t.Root, MigrationFlag)

	add := func(c simnet.Cost) { total = simnet.Seq(total, c) }
	step := func(op FSOp) error {
		c, err := e.peer.Mirror(tc, target, t, op, primary)
		add(c)
		return err
	}

	if !remote.Exists {
		if err := step(FSOp{Kind: FSMkdirAll, Path: t.Root}); err != nil {
			return total, err
		}
	}
	if err := step(FSOp{Kind: FSWriteFile, Path: flag}); err != nil {
		return total, err
	}
	if err := e.syncDir(tc, target, t, src, t.Root, primary, step, add); err != nil {
		return total, err
	}
	err := step(FSOp{Kind: FSRemove, Path: flag})
	return total, err
}

// syncDir reconciles one directory level: it fetches the remote children's
// digests, ships entries whose digest differs (recursing into mismatching
// directories), skips matching subtrees entirely, and deletes remote-only
// entries. localDir is the local source directory, destDir the matching
// primary-relative destination (Mirror translates to the replica area when
// primary is false).
func (e *Engine) syncDir(tc obs.TraceContext, target simnet.Addr, t Track, localDir, destDir string, primary bool, step func(FSOp) error, add func(simnet.Cost)) error {
	queryDir := destDir
	if !primary {
		queryDir = RepPath(destDir)
	}
	remoteEnts, ok, c, err := e.peer.DirDigests(tc, target, queryDir)
	add(c)
	if err != nil {
		return err
	}
	if !ok {
		// Remote side missing or not a directory: (re)create it empty and
		// treat it as having no children. If that clobbered the hierarchy
		// root, re-arm the migration sentinel before copying underneath it.
		if err := step(FSOp{Kind: FSRemoveAll, Path: destDir}); err != nil {
			return err
		}
		if err := step(FSOp{Kind: FSMkdirAll, Path: destDir}); err != nil {
			return err
		}
		if destDir == t.Root {
			if err := step(FSOp{Kind: FSWriteFile, Path: path.Join(t.Root, MigrationFlag)}); err != nil {
				return err
			}
		}
		remoteEnts = nil
	}
	remote := make(map[string]merkle.Entry, len(remoteEnts))
	for _, ent := range remoteEnts {
		remote[ent.Name] = ent
	}
	// The root-level migration flag is protocol state, not content: never
	// shipped, never deleted mid-sync (deltaPush removes it at the end).
	if destDir == t.Root {
		delete(remote, MigrationFlag)
	}

	locals, ok, err := e.mk.Entries(localDir)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	for _, ent := range locals {
		if destDir == t.Root && ent.Name == MigrationFlag {
			continue
		}
		lsrc := joinChild(localDir, ent.Name)
		ldst := joinChild(destDir, ent.Name)
		rem, exists := remote[ent.Name]
		delete(remote, ent.Name)
		if exists && rem.Type == ent.Type && rem.Digest == ent.Digest {
			e.digestHits.Add(1)
			e.syncSkipped.Add(uint64(e.countFiles(lsrc, ent.Type)))
			continue
		}
		if exists {
			e.digestMisses.Add(1)
		}
		switch ent.Type {
		case localfs.TypeDir:
			if exists && rem.Type != localfs.TypeDir {
				if err := step(FSOp{Kind: FSRemoveAll, Path: ldst}); err != nil {
					return err
				}
			}
			if !exists || rem.Type != localfs.TypeDir {
				if err := step(FSOp{Kind: FSMkdirAll, Path: ldst}); err != nil {
					return err
				}
			}
			if err := e.syncDir(tc, target, t, lsrc, ldst, primary, step, add); err != nil {
				return err
			}
		case localfs.TypeSymlink:
			attr, err := e.store.LookupPath(lsrc)
			if err != nil {
				return err
			}
			symTarget, _, err := e.store.Readlink(attr.Ino)
			if err != nil {
				return err
			}
			if exists {
				if err := step(FSOp{Kind: FSRemoveAll, Path: ldst}); err != nil {
					return err
				}
			}
			if err := step(FSOp{Kind: FSSymlink, Path: ldst, Target: symTarget}); err != nil {
				return err
			}
		default:
			if exists && rem.Type != localfs.TypeRegular {
				if err := step(FSOp{Kind: FSRemoveAll, Path: ldst}); err != nil {
					return err
				}
			}
			if err := e.sendFile(tc, target, lsrc, ldst, primary, step, add); err != nil {
				return err
			}
		}
	}
	// Whatever remains on the remote side has no local counterpart: delete,
	// in sorted order so the RPC sequence is deterministic for seed replay.
	staleNames := make([]string, 0, len(remote))
	for name := range remote {
		staleNames = append(staleNames, name)
	}
	sort.Strings(staleNames)
	for _, name := range staleNames {
		if err := step(FSOp{Kind: FSRemoveAll, Path: joinChild(destDir, name)}); err != nil {
			return err
		}
	}
	return nil
}

// sendFile ships one regular file whose digest mismatched. On the normal
// path it negotiates at the block level: the local manifest's hashes are
// offered as a WANT list, the receiver answers which blocks its
// content-addressed index already holds (indexing its stale copy of this
// very file in the process), and only the missing chunks travel inline —
// a 1-changed-chunk file ships ~one chunk. Behind Options.WholeFile the
// legacy whole-file streaming is used instead.
func (e *Engine) sendFile(tc obs.TraceContext, target simnet.Addr, lsrc, ldst string, primary bool, step func(FSOp) error, add func(simnet.Cost)) error {
	if e.wholeFile {
		return e.sendFileWhole(lsrc, ldst, step)
	}
	attr, err := e.store.LookupPath(lsrc)
	if err != nil {
		return err
	}
	man, err := e.mk.ManifestOf(lsrc)
	if err != nil {
		return err
	}
	queryPath := ldst
	if !primary {
		queryPath = RepPath(ldst)
	}
	_, exists, have, c, err := e.peer.ChunkManifest(tc, target, queryPath, man.Hashes())
	add(c)
	if err != nil {
		// Negotiation is an optimization, not a dependency: fall back to the
		// verbatim stream (which will surface a real transport failure too).
		return e.sendFileWhole(lsrc, ldst, step)
	}
	if !exists {
		if err := step(FSOp{Kind: FSCreate, Path: ldst, Mode: attr.Mode}); err != nil {
			return err
		}
	}

	// Walk the manifest accumulating contiguous spans of chunks; each span
	// becomes one FSChunkWrite whose inline payload is bounded by PushChunk
	// and whose covered range is bounded by spanBytes, so memory stays
	// bounded on both ends regardless of file size.
	const spanBytes = 4 << 20
	var (
		refs      []ChunkRef
		data      []byte
		spanStart int64
		spanLen   int64
		off       int64
	)
	flush := func() error {
		if len(refs) == 0 {
			return nil
		}
		op := FSOp{Kind: FSChunkWrite, Path: ldst, Offset: spanStart, Chunks: refs, Data: data}
		if err := step(op); err != nil {
			// The receiver could not resolve a reference it promised (its
			// copy mutated between negotiation and apply): re-ship the span
			// verbatim. A transport failure fails the retry as well.
			raw, rerr := e.readRange(attr.Ino, spanStart, spanLen)
			if rerr != nil {
				return err
			}
			if err := step(FSOp{Kind: FSWrite, Path: ldst, Offset: spanStart, Data: raw}); err != nil {
				return err
			}
			e.syncBytes.Add(uint64(len(raw)))
		} else {
			e.syncBytes.Add(uint64(len(data)))
		}
		refs, data = nil, nil
		spanStart, spanLen = off, 0
		return nil
	}
	for i, ch := range man {
		inline := i >= len(have) || !have[i]
		if inline {
			b, err := e.readRange(attr.Ino, off, int64(ch.Len))
			if err != nil {
				return err
			}
			if len(data)+len(b) > PushChunk {
				if err := flush(); err != nil {
					return err
				}
			}
			data = append(data, b...)
		} else if spanLen >= spanBytes {
			if err := flush(); err != nil {
				return err
			}
		}
		refs = append(refs, ChunkRef{Hash: ch.Hash, Len: ch.Len, Inline: inline})
		off += int64(ch.Len)
		spanLen += int64(ch.Len)
	}
	if err := flush(); err != nil {
		return err
	}
	if exists {
		// The old remote file may extend past the new content: truncate.
		size := man.TotalLen()
		if err := step(FSOp{Kind: FSSetattr, Path: ldst, SetAttr: localfs.SetAttr{Size: &size}}); err != nil {
			return err
		}
	}
	e.syncSent.Add(1)
	return nil
}

// readRange reads exactly [off, off+n) of a local file.
func (e *Engine) readRange(ino uint64, off, n int64) ([]byte, error) {
	buf := make([]byte, 0, n)
	for int64(len(buf)) < n {
		data, eof, _, err := e.store.Read(ino, off+int64(len(buf)), int(n-int64(len(buf))))
		if err != nil {
			return nil, err
		}
		buf = append(buf, data...)
		if eof || len(data) == 0 {
			break
		}
	}
	if int64(len(buf)) != n {
		return nil, errors.New("repl: short local read")
	}
	return buf, nil
}

// sendFileWhole ships one regular file verbatim in PushChunk-sized pieces:
// a truncating create, then sequential writes. The WholeFile baseline and
// the fallback when block negotiation fails.
func (e *Engine) sendFileWhole(lsrc, ldst string, step func(FSOp) error) error {
	attr, err := e.store.LookupPath(lsrc)
	if err != nil {
		return err
	}
	if err := step(FSOp{Kind: FSCreate, Path: ldst, Mode: attr.Mode}); err != nil {
		return err
	}
	for off := int64(0); ; {
		data, eof, _, err := e.store.Read(attr.Ino, off, PushChunk)
		if err != nil {
			return err
		}
		if len(data) > 0 {
			if err := step(FSOp{Kind: FSWrite, Path: ldst, Offset: off, Data: data}); err != nil {
				return err
			}
			e.syncBytes.Add(uint64(len(data)))
			off += int64(len(data))
		}
		if eof || len(data) == 0 {
			break
		}
	}
	e.syncSent.Add(1)
	return nil
}

// countFiles returns the number of regular files under a matched local
// entry, for the files-skipped counter (a local walk only; no traffic).
func (e *Engine) countFiles(p string, typ localfs.FileType) int {
	if typ == localfs.TypeRegular {
		return 1
	}
	if typ != localfs.TypeDir {
		return 0
	}
	n := 0
	e.store.Walk(p, func(_ string, a localfs.Attr, _ string) error {
		if a.Type == localfs.TypeRegular {
			n++
		}
		return nil
	})
	return n
}

func joinChild(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// pushTree copies the local subtree at src to target wholesale: remove,
// recreate, re-ship every entry under the migration flag (Section 4.4).
// This is the legacy full push, retained behind Options.FullPush as the
// sync experiment's baseline; deltaPush replaces it on the normal path.
func (e *Engine) pushTree(tc obs.TraceContext, target simnet.Addr, t Track, src string, primary bool) (simnet.Cost, error) {
	var total simnet.Cost
	flag := path.Join(t.Root, MigrationFlag)

	step := func(op FSOp) error {
		c, err := e.peer.Mirror(tc, target, t, op, primary)
		total = simnet.Seq(total, c)
		return err
	}

	if err := step(FSOp{Kind: FSRemoveAll, Path: t.Root}); err != nil {
		return total, err
	}
	if err := step(FSOp{Kind: FSMkdirAll, Path: t.Root}); err != nil {
		return total, err
	}
	if err := step(FSOp{Kind: FSWriteFile, Path: flag}); err != nil {
		return total, err
	}
	werr := e.store.Walk(src, func(p string, a localfs.Attr, symTarget string) error {
		dst := t.Root + p[len(src):] // translate source prefix to dest root
		if dst == t.Root || dst == flag {
			return nil
		}
		switch a.Type {
		case localfs.TypeDir:
			return step(FSOp{Kind: FSMkdirAll, Path: dst})
		case localfs.TypeSymlink:
			return step(FSOp{Kind: FSSymlink, Path: dst, Target: symTarget})
		default:
			return e.sendFileWhole(p, dst, step)
		}
	})
	if werr != nil {
		return total, werr
	}
	err := step(FSOp{Kind: FSRemove, Path: flag})
	return total, err
}

// fetchTree pulls a remote replica-area copy of a subtree into this node's
// primary namespace, adopting the remote's version. Used when a freshly
// promoted primary discovers a replica holding a newer copy than the one it
// surfaced. On the normal path this is a block-level delta pull: the local
// (promoted, stale) copy is kept as a chunk source, directory digests skip
// identical subtrees, and each mismatching file is rebuilt from its remote
// manifest, fetching only the blocks no local file holds — in parallel from
// every settled holder in holders plus from itself. Behind
// Options.WholeFile the legacy remove-and-recopy walk runs instead.
func (e *Engine) fetchTree(tc obs.TraceContext, from simnet.Addr, holders []simnet.Addr, t Track, remoteVer uint64) (simnet.Cost, error) {
	var total simnet.Cost
	src := RepPath(t.Root)
	if e.wholeFile {
		if err := e.store.RemoveAll(t.Root); err != nil {
			return total, err
		}
		if _, err := e.store.MkdirAll(t.Root); err != nil {
			return total, err
		}
		if err := e.fetchTreeWhole(tc, from, src, t.Root, &total); err != nil {
			return total, err
		}
	} else {
		if _, err := e.store.MkdirAll(t.Root); err != nil {
			return total, err
		}
		if err := e.pullDir(tc, from, holders, src, t.Root, src, &total); err != nil {
			return total, err
		}
	}
	adopted := t
	adopted.Ver = remoteVer
	e.Track(adopted, FSOp{Kind: FSMkdirAll, Path: t.Root})
	return total, nil
}

// pullDir reconciles one local directory against its remote counterpart
// during a delta pull: matching child digests are skipped wholesale,
// mismatching files are rebuilt block-wise, and local-only entries are
// deleted. flagDir is the remote hierarchy root, where the migration
// sentinel is protocol state rather than content.
func (e *Engine) pullDir(tc obs.TraceContext, from simnet.Addr, holders []simnet.Addr, remoteDir, localDir, flagDir string, total *simnet.Cost) error {
	remoteEnts, ok, c, err := e.peer.DirDigests(tc, from, remoteDir)
	*total = simnet.Seq(*total, c)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	locals := make(map[string]merkle.Entry)
	if ents, lok, err := e.mk.Entries(localDir); err == nil && lok {
		for _, ent := range ents {
			locals[ent.Name] = ent
		}
	}
	for _, ent := range remoteEnts {
		if remoteDir == flagDir && ent.Name == MigrationFlag {
			continue
		}
		rp := joinChild(remoteDir, ent.Name)
		lp := joinChild(localDir, ent.Name)
		l, exists := locals[ent.Name]
		delete(locals, ent.Name)
		if exists && l.Type == ent.Type && l.Digest == ent.Digest {
			e.digestHits.Add(1)
			continue
		}
		if exists {
			e.digestMisses.Add(1)
		}
		switch ent.Type {
		case localfs.TypeDir:
			if exists && l.Type != localfs.TypeDir {
				if err := e.store.RemoveAll(lp); err != nil {
					return err
				}
			}
			if _, err := e.store.MkdirAll(lp); err != nil {
				return err
			}
			if err := e.pullDir(tc, from, holders, rp, lp, flagDir, total); err != nil {
				return err
			}
		case localfs.TypeSymlink:
			target, c, err := e.peer.ReadLink(tc, from, rp)
			*total = simnet.Seq(*total, c)
			if err != nil {
				return err
			}
			if exists {
				if err := e.store.RemoveAll(lp); err != nil {
					return err
				}
			}
			attr, err := e.store.LookupPath(path.Dir(lp))
			if err != nil {
				return err
			}
			if _, _, err := e.store.Symlink(attr.Ino, ent.Name, target); err != nil {
				return err
			}
		default:
			if exists && l.Type != localfs.TypeRegular {
				if err := e.store.RemoveAll(lp); err != nil {
					return err
				}
			}
			if err := e.pullFile(tc, from, holders, rp, lp, total); err != nil {
				return err
			}
		}
	}
	staleNames := make([]string, 0, len(locals))
	for name := range locals {
		staleNames = append(staleNames, name)
	}
	sort.Strings(staleNames)
	for _, name := range staleNames {
		if err := e.store.RemoveAll(joinChild(localDir, name)); err != nil {
			return err
		}
	}
	return nil
}

// pullFile rebuilds one local file from its remote chunk manifest. Blocks
// some indexed local file already holds are copied locally; the rest are
// fetched content-addressed from the holder swarm, with a ranged read from
// `from` as the per-block last resort. The new content is assembled fully
// before the local file is overwritten, so the stale copy stays available
// as a chunk source throughout.
func (e *Engine) pullFile(tc obs.TraceContext, from simnet.Addr, holders []simnet.Addr, rp, lp string, total *simnet.Cost) error {
	man, exists, _, c, err := e.peer.ChunkManifest(tc, from, rp, nil)
	*total = simnet.Seq(*total, c)
	if err != nil {
		return err
	}
	if !exists {
		return e.pullFileWhole(tc, from, rp, lp, total)
	}
	// Index the stale local copy (if any): its unchanged blocks then resolve
	// locally instead of over the network.
	if attr, lerr := e.store.LookupPath(lp); lerr == nil && attr.Type == localfs.TypeRegular {
		e.mk.ManifestOf(lp)
	}
	lens := make(map[cas.Hash]uint32, len(man))
	var need []cas.Hash
	for _, ch := range man {
		if _, dup := lens[ch.Hash]; dup {
			continue
		}
		lens[ch.Hash] = ch.Len
		if !e.cas.Has(ch.Hash) {
			need = append(need, ch.Hash)
		}
	}
	blocks := make(map[cas.Hash][]byte)
	if len(need) > 0 {
		e.fetchBlocks(tc, from, holders, rp, need, lens, blocks, total)
	}
	buf := make([]byte, 0, man.TotalLen())
	var off int64
	var fh nfs.Handle
	haveFh := false
	for _, ch := range man {
		if b, ok := blocks[ch.Hash]; ok {
			buf = append(buf, b...)
			off += int64(ch.Len)
			continue
		}
		if b, ok := e.cas.Get(ch.Hash); ok && len(b) == int(ch.Len) {
			buf = append(buf, b...)
			off += int64(ch.Len)
			continue
		}
		// Last resort: a ranged read of this chunk's extent from `from`.
		if !haveFh {
			var c simnet.Cost
			fh, _, c, err = e.peer.LookupPath(tc, from, rp)
			*total = simnet.Seq(*total, c)
			if err != nil {
				return err
			}
			haveFh = true
		}
		b := make([]byte, 0, ch.Len)
		for int64(len(b)) < int64(ch.Len) {
			part, eof, c, err := e.peer.ReadStream(tc, from, fh, off+int64(len(b)), int(ch.Len)-len(b), 1)
			*total = simnet.Seq(*total, c)
			if err != nil {
				return err
			}
			b = append(b, part...)
			if eof || len(part) == 0 {
				break
			}
		}
		if len(b) != int(ch.Len) {
			return errors.New("repl: short ranged chunk read")
		}
		e.fetchBytes.Add(uint64(len(b)))
		blocks[ch.Hash] = b
		buf = append(buf, b...)
		off += int64(ch.Len)
	}
	return e.store.WriteFile(lp, buf)
}

// pullFileWhole streams one remote file verbatim — the fallback when the
// remote cannot answer a manifest (and the building block of the WholeFile
// baseline's tree walk).
func (e *Engine) pullFileWhole(tc obs.TraceContext, from simnet.Addr, rp, lp string, total *simnet.Cost) error {
	fh, attr, c, err := e.peer.LookupPath(tc, from, rp)
	*total = simnet.Seq(*total, c)
	if err != nil {
		return err
	}
	data := make([]byte, 0, attr.Size)
	for off := int64(0); ; {
		chunk, eof, c, err := e.peer.ReadStream(tc, from, fh, off, PushChunk, FetchWindow)
		*total = simnet.Seq(*total, c)
		if err != nil {
			return err
		}
		data = append(data, chunk...)
		off += int64(len(chunk))
		if eof || len(chunk) == 0 {
			break
		}
	}
	e.fetchBytes.Add(uint64(len(data)))
	return e.store.WriteFile(lp, data)
}

// fetchBatch bounds how many blocks one CHUNK_FETCH round trip requests.
const fetchBatch = 16

// fetchBlocks retrieves the needed blocks from the holder swarm: the WANT
// list is partitioned round-robin across `from` plus every other settled
// holder, each holder's batches run as one branch of a simnet.Par fan-out,
// and every returned block is verified against its hash. Blocks a holder
// failed to serve are retried from `from`; whatever still cannot be
// obtained is simply left out of the result (pullFile falls back to a
// ranged read). The holder order is deterministic for seed-exact replay.
func (e *Engine) fetchBlocks(tc obs.TraceContext, from simnet.Addr, holders []simnet.Addr, pathHint string, need []cas.Hash, lens map[cas.Hash]uint32, out map[cas.Hash][]byte, total *simnet.Cost) {
	swarm := []simnet.Addr{from}
	seen := map[simnet.Addr]bool{from: true, e.self: true}
	sorted := append([]simnet.Addr(nil), holders...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, h := range sorted {
		if !seen[h] {
			seen[h] = true
			swarm = append(swarm, h)
		}
	}
	assign := make([][]cas.Hash, len(swarm))
	for i, h := range need {
		assign[i%len(swarm)] = append(assign[i%len(swarm)], h)
	}
	e.mu.Lock()
	hook := e.fetchHook
	e.mu.Unlock()

	accept := func(holder simnet.Addr, batch []cas.Hash, blocks [][]byte, missing *[]cas.Hash) {
		for i, h := range batch {
			var b []byte
			if i < len(blocks) {
				b = blocks[i]
			}
			if b == nil || len(b) != int(lens[h]) || cas.SumChunk(b) != h {
				if missing != nil {
					*missing = append(*missing, h)
				}
				continue
			}
			out[h] = b
			e.blocksFetched.Add(1)
			e.fetchBytes.Add(uint64(len(b)))
		}
	}

	var missing []cas.Hash
	var fan []simnet.Cost
	for hi, holder := range swarm {
		var hc simnet.Cost
		hashes := assign[hi]
		for start := 0; start < len(hashes); start += fetchBatch {
			end := start + fetchBatch
			if end > len(hashes) {
				end = len(hashes)
			}
			batch := hashes[start:end]
			blocks, c, err := e.peer.ChunkFetch(tc, holder, pathHint, batch)
			hc = simnet.Seq(hc, c)
			if hook != nil {
				hook(holder, len(batch))
			}
			if err != nil {
				missing = append(missing, hashes[start:]...)
				break
			}
			accept(holder, batch, blocks, &missing)
		}
		fan = append(fan, hc)
	}
	*total = simnet.Seq(*total, simnet.Par(fan...))

	// Retry pass against `from` for anything a holder could not serve.
	var unresolved []cas.Hash
	for start := 0; start < len(missing); start += fetchBatch {
		end := start + fetchBatch
		if end > len(missing) {
			end = len(missing)
		}
		batch := missing[start:end]
		blocks, c, err := e.peer.ChunkFetch(tc, from, pathHint, batch)
		*total = simnet.Seq(*total, c)
		if hook != nil {
			hook(from, len(batch))
		}
		if err != nil {
			unresolved = append(unresolved, missing[start:]...)
			break
		}
		accept(from, batch, blocks, &unresolved)
	}

	// Routed-holder fallback: when the leaf-set swarm came up empty, ask the
	// node that routing says owns the subtree's key — it serves the file at
	// its primary path. This covers the window where the candidates around us
	// are fresh (post-heal) but the settled owner is outside the leaf set.
	if len(unresolved) == 0 {
		return
	}
	alt, altCost, ok := e.routedSource(pathHint)
	*total = simnet.Seq(*total, altCost)
	if !ok || seen[alt] {
		return
	}
	altHint := PrimaryRoot(pathHint)
	for start := 0; start < len(unresolved); start += fetchBatch {
		end := start + fetchBatch
		if end > len(unresolved) {
			end = len(unresolved)
		}
		batch := unresolved[start:end]
		blocks, c, err := e.peer.ChunkFetch(tc, alt, altHint, batch)
		*total = simnet.Seq(*total, c)
		if hook != nil {
			hook(alt, len(batch))
		}
		if err != nil {
			return
		}
		before := len(out)
		accept(alt, batch, blocks, nil)
		e.routedFetched.Add(uint64(len(out) - before))
	}
}

// routedSource resolves the node that currently owns the key controlling the
// subtree containing pathHint (a physical path, possibly replica-area). The
// longest tracked-root prefix wins, keeping the lookup deterministic when
// nested hierarchies are tracked.
func (e *Engine) routedSource(pathHint string) (simnet.Addr, simnet.Cost, bool) {
	p := PrimaryRoot(pathHint)
	e.mu.Lock()
	var pn string
	best := -1
	for root, t := range e.tracked {
		if (root == p || strings.HasPrefix(p, root+"/")) && len(root) > best {
			pn, best = t.PN, len(root)
		}
	}
	e.mu.Unlock()
	if best < 0 || e.key == nil {
		return "", 0, false
	}
	res, err := e.ov.Route(e.key(pn))
	if err != nil || res.Node.Addr == e.self {
		return "", res.Cost, false
	}
	return res.Node.Addr, res.Cost, true
}

// fetchTreeWhole is the legacy full-copy walk over plain NFS reads: list,
// recurse, stream every file. Retained behind Options.WholeFile as the
// dedup experiment's promote-repair baseline.
func (e *Engine) fetchTreeWhole(tc obs.TraceContext, from simnet.Addr, src, root string, total *simnet.Cost) error {
	var walk func(remotePath, localPath string) error
	walk = func(remotePath, localPath string) error {
		fh, _, c, err := e.peer.LookupPath(tc, from, remotePath)
		*total = simnet.Seq(*total, c)
		if err != nil {
			return err
		}
		ents, c, err := e.peer.ReadDir(tc, from, fh)
		*total = simnet.Seq(*total, c)
		if err != nil {
			return err
		}
		for _, ent := range ents {
			rp := remotePath + "/" + ent.Name
			lp := localPath + "/" + ent.Name
			switch ent.Type {
			case localfs.TypeDir:
				if _, err := e.store.MkdirAll(lp); err != nil {
					return err
				}
				if err := walk(rp, lp); err != nil {
					return err
				}
			case localfs.TypeSymlink:
				target, c, err := e.peer.ReadLink(tc, from, rp)
				*total = simnet.Seq(*total, c)
				if err != nil {
					return err
				}
				attr, err := e.store.LookupPath(path.Dir(lp))
				if err != nil {
					return err
				}
				if _, _, err := e.store.Symlink(attr.Ino, ent.Name, target); err != nil {
					return err
				}
			default:
				// Only the sentinel at the hierarchy root is protocol
				// state; an identically-named user file deeper in the tree
				// is ordinary data and must be fetched.
				if ent.Name == MigrationFlag && remotePath == src {
					continue
				}
				if err := e.pullFileWhole(tc, from, rp, lp, total); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(src, root)
}

// AdoptRoot makes this node's primary-path copy of a subtree current after
// it becomes the key's owner: surface the local replica-area copy, then
// check the current replica candidates for a newer version and fetch it if
// one exists. Runs on the cold path only (first access after an ownership
// change, or replica synchronization). The second result reports whether
// read-repair changed local state — callers holding handles into the
// subtree must re-resolve when it did.
func (e *Engine) AdoptRoot(tc obs.TraceContext, t Track) (simnet.Cost, bool) {
	changed := e.PromoteLocal(t)
	if t.Root == "" || t.Link != "" {
		return 0, changed
	}
	var total simnet.Cost
	myVer := e.VerOf(t.Root)
	cands := e.ov.ReplicaCandidates(e.replicas)
	stats := make([]TreeStat, len(cands))
	alive := make([]bool, len(cands))
	for i, rep := range cands {
		st, c, err := e.peer.StatTree(tc, rep.Addr, RepPath(t.Root))
		total = simnet.Seq(total, c)
		if err != nil {
			continue
		}
		stats[i] = st
		alive[i] = true
	}
	for i, rep := range cands {
		if !alive[i] {
			continue
		}
		st := stats[i]
		if st.Flag || st.Ver <= myVer {
			continue
		}
		if !st.Exists {
			// The newer state is a deletion: adopt the tombstone.
			e.store.RemoveAll(t.Root)
			e.store.RemoveAll(RepPath(t.Root))
			dead := t
			dead.Ver = st.Ver
			e.Track(dead, FSOp{Kind: FSRemoveAll, Path: t.Root})
			myVer = st.Ver
			changed = true
			continue
		}
		// Every other candidate holding a settled copy can serve blocks for
		// the fetch, bitswap-style, in parallel with the version's holder.
		var holders []simnet.Addr
		for j, other := range cands {
			if j != i && alive[j] && stats[j].Exists && !stats[j].Flag {
				holders = append(holders, other.Addr)
			}
		}
		c, err := e.fetchTree(tc, rep.Addr, holders, t, st.Ver)
		total = simnet.Seq(total, c)
		if err == nil {
			myVer = st.Ver
			changed = true
		}
	}
	return total, changed
}

// ManifestLocal returns the chunk manifest of the local regular file at
// phys, computing and indexing it as needed — the CHUNK_MANIFEST server
// primitive. ok is false when phys is missing or not a regular file.
func (e *Engine) ManifestLocal(phys string) (cas.Manifest, bool) {
	attr, err := e.store.LookupPath(phys)
	if err != nil || attr.Type != localfs.TypeRegular {
		return nil, false
	}
	m, err := e.mk.ManifestOf(phys)
	if err != nil {
		return nil, false
	}
	return m, true
}

// HaveBlocks answers a HAVE query against the local block index.
func (e *Engine) HaveBlocks(hs []cas.Hash) []bool { return e.cas.HasAll(hs) }

// GetBlock serves one block's bytes from the local index (hash-verified) —
// the CHUNK_FETCH server primitive.
func (e *Engine) GetBlock(h cas.Hash) ([]byte, bool) { return e.cas.Get(h) }

// CASStats snapshots the block index accounting (dedup experiment).
func (e *Engine) CASStats() cas.StoreStats { return e.cas.Stats() }

// SetFetchHook installs a test hook invoked after every CHUNK_FETCH round
// trip a pull repair issues (holder address plus batch size). The chaos
// harness uses it to crash holders mid-fetch at a deterministic point.
func (e *Engine) SetFetchHook(fn func(holder simnet.Addr, blocks int)) {
	e.mu.Lock()
	e.fetchHook = fn
	e.mu.Unlock()
}

// ErrMissingChunk reports an FSChunkWrite reference the receiver could not
// resolve from its block index; the sender answers by re-shipping the span
// verbatim.
var ErrMissingChunk = errors.New("repl: referenced chunk not present locally")

// AssembleChunks materializes an FSChunkWrite span's bytes on the receiver:
// inline chunks are consumed from op.Data in order, references resolve
// against the local block index (or chunks appearing earlier in the same
// span). Every chunk is verified against its hash before use.
func (e *Engine) AssembleChunks(op FSOp) ([]byte, error) {
	var size int
	for _, cr := range op.Chunks {
		size += int(cr.Len)
	}
	buf := make([]byte, 0, size)
	data := op.Data
	local := make(map[cas.Hash][]byte)
	for _, cr := range op.Chunks {
		if cr.Inline {
			if len(data) < int(cr.Len) {
				return nil, ErrMissingChunk
			}
			b := data[:cr.Len]
			data = data[cr.Len:]
			if cas.SumChunk(b) != cr.Hash {
				return nil, ErrMissingChunk
			}
			buf = append(buf, b...)
			local[cr.Hash] = b
			continue
		}
		if b, ok := local[cr.Hash]; ok {
			buf = append(buf, b...)
			continue
		}
		b, ok := e.cas.Get(cr.Hash)
		if !ok || len(b) != int(cr.Len) {
			return nil, ErrMissingChunk
		}
		buf = append(buf, b...)
		local[cr.Hash] = b
	}
	return buf, nil
}
