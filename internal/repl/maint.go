package repl

import (
	"path"
	"sort"

	"repro/internal/cas"
	"repro/internal/localfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// This file is the engine surface the background maintenance subsystem
// (internal/maint) is built from: tracked-state snapshots, the anti-entropy
// verify/exchange primitives, and subtree migration as a library call. The
// maintenance engine owns scheduling, budgets, and policy; everything here
// is a single bounded action.

// TrackOf returns a snapshot of the tracked metadata for one subtree root.
func (e *Engine) TrackOf(root string) (Track, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tracked[root]
	if ok {
		t.Root = root
	}
	return t, ok
}

// Tracks returns a sorted snapshot of every tracked subtree root's metadata
// (Root filled in from the map key). Sorted so maintenance walks visit roots
// in a deterministic order.
func (e *Engine) Tracks() []Track {
	e.mu.Lock()
	out := make([]Track, 0, len(e.tracked))
	for root, t := range e.tracked {
		t.Root = root
		out = append(out, t)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Root < out[j].Root })
	return out
}

// Tombstone records the deletion of a tracked root at the next version and
// removes any local copies. The next Sync propagates the tombstone to the
// replica set exactly like a foreground removal would. Used by the
// rebalancer after a migration's ownership flip: the old root's data now
// lives under the new root on the new owner.
func (e *Engine) Tombstone(root string) {
	e.mu.Lock()
	t, ok := e.tracked[root]
	if !ok {
		e.mu.Unlock()
		return
	}
	t.Root = root
	t.Ver++
	t.Dead = true
	e.tracked[root] = t
	e.mu.Unlock()
	e.store.RemoveAll(root)
	e.store.RemoveAll(RepPath(root))
}

// EnsureReplica refreshes one candidate's replica-area copy of a tracked
// root — ensureTree as a library call, used when a digest exchange detects
// divergence outside any foreground event.
func (e *Engine) EnsureReplica(tc obs.TraceContext, target simnet.Addr, root string) (simnet.Cost, error) {
	t, ok := e.TrackOf(root)
	if !ok || t.Dead {
		return 0, nil
	}
	return e.ensureTree(tc, target, Track{PN: t.PN, Root: root, Ver: t.Ver}, false)
}

// CheckReplica compares this node's digest of a root it owns against one
// replica candidate's replica-area copy — the scrub's TREE_DIGEST exchange.
// diverged reports a settled remote copy whose content differs or is
// missing; in-flight copies (migration flag up) are never flagged.
func (e *Engine) CheckReplica(tc obs.TraceContext, cand simnet.Addr, root string) (diverged bool, cost simnet.Cost, err error) {
	local := e.DigestLocal(root)
	if !local.Exists || local.Flag {
		return false, 0, nil
	}
	remote, cost, err := e.peer.DigestTree(tc, cand, RepPath(root))
	if err != nil {
		return false, cost, err
	}
	if remote.Flag {
		return false, cost, nil
	}
	return !remote.Exists || remote.Root != local.Root, cost, nil
}

// MigrateTree pushes the local subtree at src to target as the new primary
// copy at t.Root, under the MIGRATION_NOT_COMPLETE flag protocol with
// chunk-negotiated delta transfer. src is separate from t.Root so a
// rebalance move can ship an existing hierarchy under a fresh destination
// root. Safe to retry after a mid-move target crash: the flag re-arms and
// negotiation skips blocks that already arrived.
func (e *Engine) MigrateTree(tc obs.TraceContext, target simnet.Addr, t Track, src string) (simnet.Cost, error) {
	if _, err := e.store.LookupPath(src); err != nil {
		return 0, err
	}
	remote, cost, err := e.peer.DigestTree(tc, target, t.Root)
	if err != nil {
		return cost, err
	}
	if remote.Exists && !remote.Flag && remote.Ver >= t.Ver {
		return cost, nil
	}
	c, err := e.deltaPush(tc, target, t, src, true, remote)
	return simnet.Seq(cost, c), err
}

// WarmChunks indexes an applied FSChunkWrite span into the local block
// index at the path and offset it landed at. The receiver-side half of
// warm-on-receive: the write's mutation notification just dropped this
// file's index entry, so re-registering the span keeps HAVE answers warm
// for the next negotiation without a digest recompute.
func (e *Engine) WarmChunks(phys string, op FSOp) {
	if op.Kind != FSChunkWrite || len(op.Chunks) == 0 {
		return
	}
	m := make(cas.Manifest, 0, len(op.Chunks))
	for _, cr := range op.Chunks {
		m = append(m, cas.Chunk{Hash: cr.Hash, Len: cr.Len})
	}
	e.cas.AddAt(phys, op.Offset, m)
}

// LocalFiles lists the regular files under this node's copy of a tracked
// root, in sorted walk order, with the physical path the copy lives at.
// The migration-flag sentinel is excluded: it is protocol state, not
// replicated content. Used by the maintenance scrub to build its
// file-verification schedule.
func (e *Engine) LocalFiles(root string) (src string, files []string) {
	src, ok := e.LocalTreePath(root)
	if !ok {
		return "", nil
	}
	flagPath := path.Join(src, MigrationFlag)
	e.store.Walk(src, func(p string, a localfs.Attr, _ string) error {
		if a.Type == localfs.TypeRegular && p != flagPath {
			files = append(files, p)
		}
		return nil
	})
	return src, files
}

// VerifyBlocks hash-checks up to n indexed blocks against the store,
// resuming from cursor (see cas.Store.VerifySample). Bad locations are
// pruned; a block left with no verifiable location counts as bad.
func (e *Engine) VerifyBlocks(cursor cas.Hash, n int) (next cas.Hash, checked, bad int) {
	return e.cas.VerifySample(cursor, n)
}

// VerifyOutcome classifies one VerifyFile check.
type VerifyOutcome int

const (
	// VerifyClean: the bytes match what replication believes (or the file
	// had no baseline yet and one was just established).
	VerifyClean VerifyOutcome = iota
	// VerifyRepaired: corruption was detected and the file rebuilt.
	VerifyRepaired
	// VerifyFailed: corruption was detected but some chunk could not be
	// recovered; the stale digest memo was dropped so digest exchanges see
	// the divergence.
	VerifyFailed
)

// BlockSource is one remote node a VerifyFile repair may fetch blocks from,
// with the physical path its copy of the file lives at (primary path on the
// owner, replica-area path on candidates).
type BlockSource struct {
	Addr simnet.Addr
	Phys string
}

// VerifyFile re-chunks the local regular file at phys and compares against
// the memoized manifest — the scrub's bit-rot detector. Silent corruption
// never fires a mutation notification, so the memo still describes the
// *intended* bytes; a mismatch means the media lied. Repair rebuilds the
// file to the cached manifest, preferring chunks still intact locally (the
// fresh re-chunk and the block index), then content-addressed fetches from
// helpers. Files without a baseline get one computed (counted clean).
func (e *Engine) VerifyFile(tc obs.TraceContext, phys string, helpers []BlockSource) (VerifyOutcome, simnet.Cost) {
	var total simnet.Cost
	attr, err := e.store.LookupPath(phys)
	if err != nil || attr.Type != localfs.TypeRegular {
		return VerifyClean, 0
	}
	cached, ok := e.mk.CachedManifest(phys)
	if !ok {
		e.mk.ManifestOf(phys)
		return VerifyClean, 0
	}
	data, err := e.store.ReadFile(phys)
	if err != nil {
		return VerifyClean, 0
	}
	fresh := cas.Split(data)
	if fresh.Equal(cached) {
		return VerifyClean, 0
	}

	// Gather the cached manifest's chunks: intact spans of the corrupt file
	// first, then the local block index, then the helper swarm.
	blocks := make(map[cas.Hash][]byte, len(cached))
	var off int64
	for _, ch := range fresh {
		blocks[ch.Hash] = data[off : off+int64(ch.Len)]
		off += int64(ch.Len)
	}
	lens := make(map[cas.Hash]uint32, len(cached))
	var need []cas.Hash
	for _, ch := range cached {
		if _, dup := lens[ch.Hash]; dup {
			continue
		}
		lens[ch.Hash] = ch.Len
		if b, ok := blocks[ch.Hash]; ok && len(b) == int(ch.Len) {
			continue
		}
		if b, ok := e.cas.Get(ch.Hash); ok && len(b) == int(ch.Len) {
			blocks[ch.Hash] = b
			continue
		}
		need = append(need, ch.Hash)
	}
	for _, h := range helpers {
		if len(need) == 0 {
			break
		}
		var rest []cas.Hash
		for start := 0; start < len(need); start += fetchBatch {
			end := start + fetchBatch
			if end > len(need) {
				end = len(need)
			}
			batch := need[start:end]
			got, c, err := e.peer.ChunkFetch(tc, h.Addr, h.Phys, batch)
			total = simnet.Seq(total, c)
			if err != nil {
				rest = append(rest, need[start:]...)
				break
			}
			for i, hh := range batch {
				var b []byte
				if i < len(got) {
					b = got[i]
				}
				if b == nil || len(b) != int(lens[hh]) || cas.SumChunk(b) != hh {
					rest = append(rest, hh)
					continue
				}
				blocks[hh] = b
				e.blocksFetched.Add(1)
				e.fetchBytes.Add(uint64(len(b)))
			}
		}
		need = rest
	}
	if len(need) > 0 {
		// Some chunk is gone everywhere we can reach. Leave the bytes but
		// drop the stale memo: digests now report the corrupt truth, so the
		// divergence surfaces in exchanges instead of hiding forever.
		e.mk.Invalidate(phys)
		return VerifyFailed, total
	}
	buf := make([]byte, 0, cached.TotalLen())
	for _, ch := range cached {
		buf = append(buf, blocks[ch.Hash]...)
	}
	if err := e.store.WriteFile(phys, buf); err != nil {
		return VerifyFailed, total
	}
	return VerifyRepaired, total
}
