// Package repl is Kosha's replication and subtree-tracking engine
// (Sections 4.2-4.4): it records which replicated hierarchies a node holds
// (primary or replica), arbitrates versions between copies, re-establishes
// the K-replica invariant after membership changes, and migrates subtrees
// when key ownership moves. The engine sees the rest of the system through
// two narrow interfaces — Overlay (who owns a key, who the replica
// candidates are) and Peer (remote stat/mirror/promote plus plain NFS reads
// for tree fetches) — so it carries no dependency on the koshad wiring that
// consumes it.
package repl

import (
	"fmt"

	"repro/internal/cas"
	"repro/internal/localfs"
	"repro/internal/merkle"
	"repro/internal/nfs"
)

// MigrationFlag is the sentinel file created at the root of a replicated
// hierarchy while content migration is in flight; its presence on a replica
// after a primary failure triggers re-migration (Section 4.4).
const MigrationFlag = "MIGRATION_NOT_COMPLETE"

// RepArea is the reserved store subtree holding replica copies. The paper
// keeps replicas "inaccessible to the local users" (Section 4.2); parking
// them outside the primary namespace also keeps a replica's scaffolding
// from colliding with the special links resolution probes. When a node is
// promoted to primary for a key it moves the copy from the replica area to
// the primary path (Sections 4.3-4.4).
const RepArea = "/.rep"

// RepPath translates a primary-relative physical path into the replica
// area.
func RepPath(p string) string {
	if p == "/" || p == "" {
		return RepArea
	}
	return RepArea + p
}

// PrimaryRoot strips the replica-area prefix, returning the primary-relative
// root that version records are keyed by.
func PrimaryRoot(p string) string {
	if len(p) > len(RepArea) && p[:len(RepArea)] == RepArea {
		return p[len(RepArea):]
	}
	return p
}

// FSOpKind enumerates the path-based store mutations replicated to mirrors.
type FSOpKind uint32

const (
	FSMkdirAll FSOpKind = iota + 1
	FSMkdir             // strict: fails if the directory exists
	FSCreate
	FSWrite
	FSSetattr
	FSRemove
	FSRmdir
	FSRemoveAll // recursive removal (migration resync, forced deletes)
	FSRename
	FSSymlink
	FSWriteFile  // create-or-truncate plus full contents, used by migration
	FSWriteV     // vectored write: a write-back buffer's coalesced spans
	FSChunkWrite // manifest span: chunk refs resolved against the receiver's block index
	FSRelink     // atomic ownership flip: replace the entry at Path with a symlink to Target
)

func (k FSOpKind) String() string {
	switch k {
	case FSMkdirAll:
		return "mkdirall"
	case FSCreate:
		return "create"
	case FSWrite:
		return "write"
	case FSSetattr:
		return "setattr"
	case FSRemove:
		return "remove"
	case FSRmdir:
		return "rmdir"
	case FSMkdir:
		return "mkdir"
	case FSRemoveAll:
		return "removeall"
	case FSRename:
		return "rename"
	case FSSymlink:
		return "symlink"
	case FSWriteFile:
		return "writefile"
	case FSWriteV:
		return "writev"
	case FSChunkWrite:
		return "chunkwrite"
	case FSRelink:
		return "relink"
	default:
		return fmt.Sprintf("fsop(%d)", uint32(k))
	}
}

// FSOp is one path-based store mutation. Path/Path2 are physical store
// paths. The same structure is executed at the primary (Apply) and shipped
// verbatim to replicas (Mirror), which keeps replica stores byte-identical
// mirrors of the primary's hierarchy (Section 4.2).
type FSOp struct {
	Kind    FSOpKind
	Path    string
	Path2   string // rename destination
	Data    []byte // write / writefile payload
	Offset  int64
	Mode    uint32
	Excl    bool
	Target  string // symlink target
	SetAttr localfs.SetAttr
	Prune   bool            // rmdir/remove: prune empty scaffolding above
	Spans   []nfs.WriteSpan // writev: coalesced spans, applied in order
	Chunks  []ChunkRef      // chunkwrite: the span's chunk sequence, at Offset
}

// ChunkRef is one chunk of an FSChunkWrite span. Inline chunks carry their
// bytes concatenated (in chunk order) in the op's Data; the rest are
// references the receiver resolves against its own content-addressed block
// index — bytes it already holds are never reshipped. The receiver
// hash-verifies both kinds and rejects the whole span if any reference
// cannot be resolved, which the sender answers by re-shipping the span
// verbatim.
type ChunkRef struct {
	Hash   cas.Hash
	Len    uint32
	Inline bool
}

// Track carries subtree-ownership metadata alongside mutations so replicas
// know which hierarchies they hold and for which keys, enabling them to act
// when they are promoted to primary (Section 4.4). Ver is the subtree's
// mutation counter: the primary bumps it on every apply, replicas record
// the value shipped with each mirror, and replica maintenance uses it to
// tell a fresh copy from one left behind by an old membership — higher
// version wins.
type Track struct {
	PN   string // controlling placement name; Key(PN) is the DHT key
	Root string // physical path of the replicated hierarchy root
	Link string // for level-1 special links: the link's name ("" if none)
	Ver  uint64 // subtree mutation counter
	Dead bool   // tombstone: the hierarchy was deleted at this version
}

// TreeStat summarizes a replicated hierarchy for cheap divergence checks
// during replica maintenance.
type TreeStat struct {
	Exists bool
	Files  int64
	Dirs   int64
	Bytes  int64
	Flag   bool   // MIGRATION_NOT_COMPLETE present
	Ver    uint64 // the holder's recorded mutation counter for the root
}

// Same reports whether two summaries describe equivalent, settled trees.
func (t TreeStat) Same(o TreeStat) bool {
	return t.Exists == o.Exists && !t.Flag && !o.Flag &&
		t.Files == o.Files && t.Dirs == o.Dirs && t.Bytes == o.Bytes
}

// TreeDigest summarizes a replicated hierarchy by its Merkle root digest:
// two settled copies are byte-identical exactly when their Root digests
// match, so replica maintenance can skip an entire subtree with one
// exchange and otherwise walk only the mismatching directories.
type TreeDigest struct {
	Exists bool
	Flag   bool          // MIGRATION_NOT_COMPLETE present at the root
	Ver    uint64        // the holder's recorded mutation counter for the root
	Root   merkle.Digest // content-structural digest of the subtree
}
