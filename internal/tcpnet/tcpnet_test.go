package tcpnet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/simnet"
)

func TestRoundTripOverTCP(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register(srv.Addr(), "echo", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return append([]byte("echo:"), req...), simnet.Cost(42), nil
	})

	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()
	resp, cost, err := cli.Call("client", srv.Addr(), "echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping" {
		t.Fatalf("resp = %q", resp)
	}
	if cost < simnet.Cost(42) {
		t.Fatalf("cost %v lost the remote processing component", cost)
	}
}

func TestLocalDispatchSkipsSocket(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register(srv.Addr(), "echo", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return req, simnet.Cost(7), nil
	})
	resp, cost, err := srv.Call(srv.Addr(), srv.Addr(), "echo", []byte("x"))
	if err != nil || string(resp) != "x" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	if cost != simnet.Cost(7) {
		t.Fatalf("local cost = %v, want handler cost only", cost)
	}
}

func TestHandlerErrorCrossesWire(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register(srv.Addr(), "fail", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return nil, 0, errors.New("handler exploded")
	})
	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()
	_, _, err = cli.Call("client", srv.Addr(), "fail", nil)
	if err == nil || err.Error() != "handler exploded" {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownServiceAndDeadPeer(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()

	if _, _, err := cli.Call("client", srv.Addr(), "ghost", nil); !errors.Is(err, simnet.ErrNoSuchService) {
		t.Fatalf("unknown service err = %v", err)
	}
	addr := srv.Addr()
	srv.Close()
	if _, _, err := cli.Call("client", addr, "echo", nil); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("dead peer err = %v", err)
	}
}

func TestConcurrentCallers(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register(srv.Addr(), "echo", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return req, 0, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := Dialer(simnet.Addr(fmt.Sprintf("c%d", g)), simnet.LAN100)
			defer cli.Close()
			payload := bytes.Repeat([]byte{byte(g)}, 1000)
			for i := 0; i < 40; i++ {
				resp, _, err := cli.Call(cli.Addr(), srv.Addr(), "echo", payload)
				if err != nil || !bytes.Equal(resp, payload) {
					t.Errorf("g%d i%d: err=%v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLargePayload(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register(srv.Addr(), "echo", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return req, 0, nil
	})
	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()
	payload := bytes.Repeat([]byte{0xab}, 4<<20)
	resp, _, err := cli.Call("client", srv.Addr(), "echo", payload)
	if err != nil || !bytes.Equal(resp, payload) {
		t.Fatalf("4MiB round trip failed: %v", err)
	}
}

// TestKoshaClusterOverTCP runs a full three-node Kosha deployment over real
// TCP sockets — the multi-process topology cmd/koshad provides, collapsed
// into one test process.
func TestKoshaClusterOverTCP(t *testing.T) {
	state := uint64(99)
	var nodes []*core.Node
	var nets []*Net
	for i := 0; i < 3; i++ {
		tn, err := Listen("127.0.0.1:0", simnet.LAN100)
		if err != nil {
			t.Fatal(err)
		}
		defer tn.Close()
		nets = append(nets, tn)
		nd := core.NewNode(tn.Addr(), id.Rand128(&state), tn, core.Config{Replicas: 1})
		nd.AttachCtl()
		var boot simnet.Addr
		if i > 0 {
			boot = nodes[0].Addr()
		}
		if _, err := nd.Join(boot); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	for round := 0; round < 3; round++ {
		for _, nd := range nodes {
			nd.Overlay().Stabilize()
		}
	}
	for _, nd := range nodes {
		nd.SyncReplicas()
	}

	// Direct mount I/O across TCP nodes.
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/wan/hello.txt", []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	data, _, err := nodes[2].NewMount().ReadFile("/wan/hello.txt")
	if err != nil || string(data) != "over tcp" {
		t.Fatalf("read %q err=%v", data, err)
	}

	// External koshactl client against a remote daemon.
	cli := Dialer("ctl-client", simnet.LAN100)
	defer cli.Close()
	ctl := &core.CtlClient{Net: cli, From: cli.Addr(), To: nodes[1].Addr()}
	if _, err := ctl.WriteFile("/wan/ctl.txt", []byte("from koshactl")); err != nil {
		t.Fatal(err)
	}
	got, _, err := ctl.ReadFile("/wan/ctl.txt")
	if err != nil || string(got) != "from koshactl" {
		t.Fatalf("ctl read %q err=%v", got, err)
	}
	ents, _, err := ctl.List("/wan")
	if err != nil || len(ents) != 2 {
		t.Fatalf("ctl list %v err=%v", ents, err)
	}
	st, _, err := ctl.Status()
	if err != nil || st.NodeID == "" {
		t.Fatalf("ctl status %+v err=%v", st, err)
	}
	if _, err := ctl.RemoveAll("/wan"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctl.Stat("/wan"); err == nil {
		t.Fatal("stat of removed dir should fail")
	}
}

// TestStalePooledConnRedials covers the pool-staleness path: a peer that
// closed an idle pooled connection (restart, keepalive timeout) must not
// surface as unreachable when a fresh dial would succeed. The test warms
// the pool, kills the pooled socket out from under the client, and expects
// the next call to transparently evict, redial, and succeed.
func TestStalePooledConnRedials(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register(srv.Addr(), "echo", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return req, simnet.Cost(1), nil
	})

	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()
	if _, _, err := cli.Call("client", srv.Addr(), "echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Kill the pooled socket the way a restarted peer would: the cached
	// conn object survives in the pool but its transport is dead.
	cli.mu.Lock()
	pooled := cli.conns[srv.Addr()]
	cli.mu.Unlock()
	if pooled == nil {
		t.Fatal("no pooled connection after first call")
	}
	pooled.c.Close()

	resp, _, err := cli.Call("client", srv.Addr(), "echo", []byte("after"))
	if err != nil {
		t.Fatalf("call after pooled-conn death: %v", err)
	}
	if string(resp) != "after" {
		t.Fatalf("resp = %q", resp)
	}

	// The dead conn must have been evicted, not resurrected.
	cli.mu.Lock()
	repooled := cli.conns[srv.Addr()]
	cli.mu.Unlock()
	if repooled == pooled {
		t.Fatal("stale connection still pooled")
	}
}

// TestFreshDialFailureIsUnreachable ensures the redial loop does not spin:
// an IO failure on a connection that was just dialed reports unreachability
// immediately.
func TestFreshDialFailureIsUnreachable(t *testing.T) {
	// A listener that accepts and instantly closes: dials succeed but the
	// first exchange always fails, so every attempt is on a "fresh" conn.
	ln, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close() // nothing is listening anymore

	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()
	if _, _, err := cli.Call("client", addr, "echo", []byte("x")); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}
