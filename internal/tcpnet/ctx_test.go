package tcpnet

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/simnet"
)

type recSink struct {
	mu   sync.Mutex
	next uint64
	recs []obs.SpanRecord
}

func (s *recSink) NextSpanID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next += 100
	return s.next
}

func (s *recSink) RecordServerSpan(ctx obs.TraceContext, span uint64, service string, from simnet.Addr, req []byte, cost simnet.Cost, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, obs.SpanRecord{Hi: ctx.Hi, Lo: ctx.Lo, Parent: ctx.Span, Span: span, Name: service, From: string(from)})
}

// TestTraceContextCrossesWire proves the propagation header survives the TCP
// frame: the remote handler sees the caller's trace re-parented under the
// server span the remote sink allocated.
func TestTraceContextCrossesWire(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sink := &recSink{}
	srv.SetSpanSink(srv.Addr(), sink)

	ctxCh := make(chan obs.TraceContext, 1)
	srv.RegisterCtx(srv.Addr(), "echo", func(ctx obs.TraceContext, from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		ctxCh <- ctx
		return req, simnet.Cost(1), nil
	})

	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()
	parent := obs.TraceContext{Hi: 0xdead, Lo: 0xbeef, Span: 7}
	if _, _, err := cli.CallCtx(parent, "client", srv.Addr(), "echo", []byte("hi")); err != nil {
		t.Fatal(err)
	}

	got := <-ctxCh
	if got.Hi != parent.Hi || got.Lo != parent.Lo {
		t.Fatalf("trace id mangled by framing: %+v", got)
	}
	if got.Span == parent.Span || got.Span == 0 {
		t.Fatalf("handler ctx not re-parented under a server span: %+v", got)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.recs) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(sink.recs))
	}
	r := sink.recs[0]
	if r.Hi != parent.Hi || r.Lo != parent.Lo || r.Parent != parent.Span || r.Span != got.Span {
		t.Fatalf("server span misfiled: %+v", r)
	}
	if r.From != "client" {
		t.Fatalf("From = %q", r.From)
	}
}

// TestZeroContextOverTCPStaysUntraced: plain Call must not fabricate spans.
func TestZeroContextOverTCPStaysUntraced(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sink := &recSink{}
	srv.SetSpanSink(srv.Addr(), sink)
	srv.Register(srv.Addr(), "echo", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return req, 0, nil
	})
	cli := Dialer("client", simnet.LAN100)
	defer cli.Close()
	if _, _, err := cli.Call("client", srv.Addr(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.recs) != 0 {
		t.Fatalf("untraced call recorded %d spans", len(sink.recs))
	}
}
