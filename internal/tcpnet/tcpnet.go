// Package tcpnet is the multi-process transport: the same request/response
// service surface as internal/simnet's in-process network, carried over
// real TCP connections. It lets the Kosha daemon (cmd/koshad) run one node
// per OS process on one box or across machines, with node addresses that
// are literally their host:port strings.
//
// Simulated costs still flow end-to-end: a reply carries the remote
// handler's reported cost, and the caller adds the calibrated link-model
// cost for the message sizes, so benchmark numbers remain comparable to
// the in-process emulation regardless of real wire latency.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// maxFrame bounds one request or response frame.
const maxFrame = 96 << 20

// Net is a TCP-backed simnet.Transport. Handlers registered for the local
// address are served from the listener; calls to other addresses dial out.
type Net struct {
	Link    simnet.LinkModel
	Timeout time.Duration // dial/IO deadline; default 5s

	local simnet.Addr
	ln    net.Listener

	mu       sync.Mutex
	services map[string]simnet.HandlerCtx
	sink     simnet.SpanSink
	conns    map[simnet.Addr]*conn
	inbound  map[net.Conn]struct{}

	closed  chan struct{}
	wg      sync.WaitGroup
	onceOff sync.Once
}

type conn struct {
	mu sync.Mutex
	c  net.Conn
}

// Listen starts a transport bound to listenAddr ("host:port"; port 0 picks
// a free port). The advertised node address is the listener's address.
func Listen(listenAddr string, link simnet.LinkModel) (*Net, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	n := &Net{
		Link:     link,
		Timeout:  5 * time.Second,
		local:    simnet.Addr(ln.Addr().String()),
		ln:       ln,
		services: make(map[string]simnet.HandlerCtx),
		conns:    make(map[simnet.Addr]*conn),
		inbound:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Dialer returns a client-only transport (no listener) that originates
// calls from the given logical address, for tools like koshactl.
func Dialer(from simnet.Addr, link simnet.LinkModel) *Net {
	return &Net{
		Link:     link,
		Timeout:  5 * time.Second,
		local:    from,
		services: make(map[string]simnet.HandlerCtx),
		conns:    make(map[simnet.Addr]*conn),
		inbound:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
}

// Addr returns the transport's local (advertised) address.
func (n *Net) Addr() simnet.Addr { return n.local }

// Close shuts the listener and all pooled connections.
func (n *Net) Close() error {
	n.onceOff.Do(func() { close(n.closed) })
	if n.ln != nil {
		n.ln.Close()
	}
	n.mu.Lock()
	for _, c := range n.conns {
		c.c.Close()
	}
	n.conns = make(map[simnet.Addr]*conn)
	for c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

// Register implements simnet.Transport. Only the local address can host
// services; registering for another address is a programming error.
func (n *Net) Register(addr simnet.Addr, service string, h simnet.Handler) {
	n.RegisterCtx(addr, service, func(_ obs.TraceContext, from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return h(from, req)
	})
}

// RegisterCtx installs a context-aware service handler at the local address.
func (n *Net) RegisterCtx(addr simnet.Addr, service string, h simnet.HandlerCtx) {
	if addr != n.local {
		panic(fmt.Sprintf("tcpnet: cannot register %q for remote address %s (local %s)", service, addr, n.local))
	}
	n.mu.Lock()
	n.services[service] = h
	n.mu.Unlock()
}

// SetSpanSink installs the local node's span recorder (nil clears it).
func (n *Net) SetSpanSink(addr simnet.Addr, s simnet.SpanSink) {
	if addr != n.local {
		panic(fmt.Sprintf("tcpnet: cannot set span sink for remote address %s (local %s)", addr, n.local))
	}
	n.mu.Lock()
	n.sink = s
	n.mu.Unlock()
}

func (n *Net) handlerFor(service string) (simnet.HandlerCtx, simnet.SpanSink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.services[service], n.sink
}

// serve dispatches one delivered request to the local handler, recording a
// server span when the envelope carries a trace context and a sink is
// installed. Shared by the loopback path and the listener.
func (n *Net) serve(ctx obs.TraceContext, from simnet.Addr, service string, req []byte) ([]byte, simnet.Cost, error) {
	h, sink := n.handlerFor(service)
	if h == nil {
		return nil, simnet.Cost(time.Second), fmt.Errorf("%w: %q on %s", simnet.ErrNoSuchService, service, n.local)
	}
	hctx := ctx
	var span uint64
	if ctx.Valid() && sink != nil {
		span = sink.NextSpanID()
		hctx = ctx.Child(span)
	}
	resp, cost, err := h(hctx, from, req)
	if span != 0 {
		sink.RecordServerSpan(ctx, span, service, from, req, cost, err)
	}
	return resp, cost, err
}

// Call implements simnet.Caller. Local calls dispatch directly (loopback);
// remote calls go over TCP. Cost composes the modeled link cost with the
// remote handler's reported processing cost.
func (n *Net) Call(from, to simnet.Addr, service string, req []byte) ([]byte, simnet.Cost, error) {
	return n.CallCtx(obs.TraceContext{}, from, to, service, req)
}

// CallCtx implements simnet.CtxCaller: the trace context rides the request
// frame and is rehydrated by the serving side.
func (n *Net) CallCtx(ctx obs.TraceContext, from, to simnet.Addr, service string, req []byte) ([]byte, simnet.Cost, error) {
	if to == n.local {
		return n.serve(ctx, from, service, req)
	}

	var wireCost simnet.Cost
	wireCost = n.Link.MessageCost(len(req))
	resp, procCost, err := n.roundTrip(ctx, to, service, req)
	if err != nil {
		return nil, simnet.Cost(time.Second), err
	}
	wireCost = simnet.Seq(wireCost, n.Link.MessageCost(len(resp)))
	return resp, simnet.Seq(wireCost, procCost), nil
}

// getConn returns the pooled connection to a peer, dialing if none is
// cached. fresh reports whether the connection was just dialed: an IO error
// on a fresh connection is a real reachability problem, while one on a
// cached connection may just mean the peer closed it while idle.
func (n *Net) getConn(to simnet.Addr) (c *conn, fresh bool, err error) {
	n.mu.Lock()
	c = n.conns[to]
	n.mu.Unlock()
	if c != nil {
		return c, false, nil
	}
	raw, err := net.DialTimeout("tcp", string(to), n.Timeout)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %s -> %s: %v", simnet.ErrUnreachable, n.local, to, err)
	}
	c = &conn{c: raw}
	n.mu.Lock()
	if existing := n.conns[to]; existing != nil {
		n.mu.Unlock()
		raw.Close()
		return existing, false, nil
	}
	n.conns[to] = c
	n.mu.Unlock()
	return c, true, nil
}

func (n *Net) dropConn(to simnet.Addr, c *conn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	c.c.Close()
}

// roundTrip sends one framed request on the pooled connection and reads the
// response. One in-flight request per connection keeps framing trivial.
// A cached connection can have been closed by the peer while idle (server
// restart, keepalive timeout); an IO failure on one evicts it and redials
// once before the failure is reported as unreachability.
func (n *Net) roundTrip(ctx obs.TraceContext, to simnet.Addr, service string, req []byte) ([]byte, simnet.Cost, error) {
	var frame []byte
	for attempt := 0; ; attempt++ {
		c, fresh, err := n.getConn(to)
		if err != nil {
			return nil, 0, err
		}
		frame, err = n.exchange(c, ctx, service, req)
		if err != nil {
			n.dropConn(to, c)
			if !fresh && attempt == 0 {
				continue // stale pooled connection; retry on a fresh dial
			}
			return nil, 0, fmt.Errorf("%w: %s -> %s: %v", simnet.ErrUnreachable, n.local, to, err)
		}
		break
	}
	d := wire.NewDecoder(frame)
	ok := d.Bool()
	cost := simnet.Cost(d.Int64())
	if !ok {
		msg := d.String()
		if d.Err() != nil {
			return nil, cost, d.Err()
		}
		return nil, cost, decodeRemoteError(msg)
	}
	resp := d.Opaque()
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	return resp, cost, nil
}

// exchange performs one framed request/response on a connection. The trace
// context travels as three fixed words after the service name.
func (n *Net) exchange(c *conn, ctx obs.TraceContext, service string, req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	e := wire.NewEncoder(88 + len(req))
	e.PutString(string(n.local))
	e.PutString(service)
	e.PutUint64(ctx.Hi)
	e.PutUint64(ctx.Lo)
	e.PutUint64(ctx.Span)
	e.PutOpaque(req)

	c.c.SetDeadline(time.Now().Add(n.Timeout))
	if err := writeFrame(c.c, e.Bytes()); err != nil {
		return nil, err
	}
	return readFrame(c.c)
}

// decodeRemoteError rehydrates sentinel errors that cross the wire as
// strings so errors.Is keeps working for failover decisions.
func decodeRemoteError(msg string) error {
	switch {
	case strings.Contains(msg, simnet.ErrNoSuchService.Error()):
		return fmt.Errorf("%w: %s", simnet.ErrNoSuchService, msg)
	case strings.Contains(msg, simnet.ErrUnreachable.Error()):
		return fmt.Errorf("%w: %s", simnet.ErrUnreachable, msg)
	default:
		return errors.New(msg)
	}
}

func (n *Net) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			continue
		}
		n.mu.Lock()
		n.inbound[raw] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(raw)
	}
}

func (n *Net) serveConn(raw net.Conn) {
	defer n.wg.Done()
	defer func() {
		raw.Close()
		n.mu.Lock()
		delete(n.inbound, raw)
		n.mu.Unlock()
	}()
	for {
		raw.SetReadDeadline(time.Now().Add(10 * time.Minute))
		frame, err := readFrame(raw)
		if err != nil {
			return
		}
		d := wire.NewDecoder(frame)
		from := simnet.Addr(d.String())
		service := d.String()
		ctx := obs.TraceContext{Hi: d.Uint64(), Lo: d.Uint64(), Span: d.Uint64()}
		req := d.Opaque()
		if d.Err() != nil {
			return
		}

		e := wire.NewEncoder(256)
		resp, cost, herr := n.serve(ctx, from, service, req)
		if herr != nil {
			e.PutBool(false)
			e.PutInt64(int64(cost))
			e.PutString(herr.Error())
		} else {
			e.PutBool(true)
			e.PutInt64(int64(cost))
			e.PutOpaque(resp)
		}
		raw.SetWriteDeadline(time.Now().Add(n.Timeout))
		if err := writeFrame(raw, e.Bytes()); err != nil {
			return
		}
	}
}

func writeFrame(w io.Writer, p []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(p)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", size)
	}
	p := make([]byte, size)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}
