package experiments

import (
	"fmt"
	"io"

	"repro/internal/mab"
)

// CSV emitters for every experiment, so results can be piped straight into
// plotting tools (`koshabench -exp fig6 -format csv > fig6.csv`).

// FprintCSV writes Table 1 as rows of phase,config,seconds,overhead_pct.
func (r *Table1Result) FprintCSV(w io.Writer, opts Table1Options) {
	fmt.Fprintln(w, "phase,config,seconds,overhead_pct")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%s,NFS,%.4f,\n", p, r.NFS[p])
		for _, n := range opts.NodeCounts {
			c := r.Kosha[n][p]
			fmt.Fprintf(w, "%s,Kosha-%d,%.4f,%.2f\n", p, n, c.Seconds, c.Overhead)
		}
	}
	fmt.Fprintf(w, "total,NFS,%.4f,\n", r.NFSTotal)
	for _, n := range opts.NodeCounts {
		c := r.KoshaTotal[n]
		fmt.Fprintf(w, "total,Kosha-%d,%.4f,%.2f\n", n, c.Seconds, c.Overhead)
	}
}

// FprintCSV writes Table 2 as rows of phase,level,seconds.
func (r *Table2Result) FprintCSV(w io.Writer, opts Table2Options) {
	fmt.Fprintln(w, "phase,level,seconds")
	for _, p := range r.Phases {
		for _, l := range opts.Levels {
			fmt.Fprintf(w, "%s,%d,%.4f\n", p, l, r.Seconds[l][p])
		}
	}
	for _, l := range opts.Levels {
		fmt.Fprintf(w, "total,%d,%.4f\n", l, r.Totals[l])
	}
	for _, l := range opts.Levels {
		fmt.Fprintf(w, "overhead_pct,%d,%.2f\n", l, r.Overhead[l])
	}
}

// FprintCSV writes Figure 5 as rows of
// level,files_mean_pct,files_std_pct,bytes_mean_pct,bytes_std_pct
// with level -1 for the per-file bound.
func (r *Figure5Result) FprintCSV(w io.Writer, opts Figure5Options) {
	fmt.Fprintln(w, "level,files_mean_pct,files_std_pct,bytes_mean_pct,bytes_std_pct")
	rows := append(append([]Figure5Row(nil), r.Rows...), r.PerFile)
	for _, row := range rows {
		fmt.Fprintf(w, "%d,%.4f,%.4f,%.4f,%.4f\n",
			row.Level, row.MeanFilesPct, row.StdFilesPct, row.MeanBytesPct, row.StdBytesPct)
	}
}

// FprintCSV writes Figure 6 as rows of utilization,attempts,failure_ratio.
func (r *Figure6Result) FprintCSV(w io.Writer, opts Figure6Options) {
	fmt.Fprintln(w, "utilization,attempts,failure_ratio")
	for _, c := range r.Curves {
		for b := range c.Util {
			fmt.Fprintf(w, "%.3f,%d,%.6f\n", c.Util[b], c.Attempts, c.Failure[b])
		}
	}
}

// FprintCSV writes Figure 7 as rows of hour,replicas,available_pct.
func (r *Figure7Result) FprintCSV(w io.Writer, opts Figure7Options) {
	fmt.Fprintln(w, "hour,replicas,available_pct")
	for _, s := range r.Series {
		for h, v := range s.HourlyPct {
			fmt.Fprintf(w, "%d,%d,%.6f\n", h, s.Replicas, v)
		}
	}
}

// FprintModelCSV writes the analytic model as rows of n,hops,remote_frac,d_us.
func FprintModelCSV(w io.Writer, rows []ModelRow) {
	fmt.Fprintln(w, "n,hops,remote_frac,d_us")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%d,%.6f,%d\n", r.N, r.Hops, r.RemoteFrac, r.D.Microseconds())
	}
}

// phases helper keeps mab import used when only CSV writers reference it.
var _ = mab.Phases
