package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/pastry"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure7Options parameterizes the availability simulation (Section 6.3):
// files from the file-system trace are distributed at level 3, failures and
// joins are driven by the machine-availability trace, and the replica count
// varies 0..4 with 100 nodeId-assignment runs averaged.
type Figure7Options struct {
	Nodes    int
	Level    int
	Replicas []int
	Runs     int
	Trace    trace.FSConfig
	Avail    trace.AvailConfig
	Seed     uint64
	// RepairLagHours models replica re-creation time: a recruited holder
	// only becomes a usable copy after the data transfer completes
	// (gigabytes over 100 Mb/s take hours). During that window the group
	// is one copy short, which is where the paper's residual Kosha-3
	// unavailability (0.16 % at the spike) comes from.
	RepairLagHours int
}

// DefaultFigure7Options mirrors the paper's setup at a 500-machine scale
// (the original corporate trace is larger; availability depends on the
// marginal failure fractions, which the generator matches).
func DefaultFigure7Options() Figure7Options {
	return Figure7Options{
		Nodes:          500,
		Level:          3,
		Replicas:       []int{0, 1, 2, 3, 4},
		Runs:           20,
		Trace:          trace.PurdueFSConfig(),
		Avail:          trace.CorporateAvailConfig(500),
		Seed:           7,
		RepairLagHours: 2,
	}
}

// Figure7Series is the availability curve for one replica count.
type Figure7Series struct {
	Replicas      int
	HourlyPct     []float64 // percentage of files available, per hour
	AveragePct    float64
	WorstPct      float64
	WorstHour     int
	SpikeHourPct  float64 // availability at the mass-failure hour
	SpikeUnavail  float64 // 100 - SpikeHourPct
	AvgUnavailPct float64
}

// Figure7Result carries one series per replica count.
type Figure7Result struct {
	Series    []Figure7Series
	SpikeHour int
	MaxDown   int
}

// RunFigure7 executes the availability simulation. Files sharing a primary
// node share holder dynamics, so the simulation tracks one holder set per
// root node rather than per file.
func RunFigure7(opts Figure7Options) (*Figure7Result, error) {
	tr := trace.GenFS(opts.Trace, opts.Seed)

	// Aggregate trace files per controlling key.
	type group struct {
		files int64
	}
	keyFiles := make(map[string]int64)
	for _, f := range tr.Files {
		dir := trace.DirOf(f.Path)
		parts := strings.Split(strings.TrimPrefix(dir, "/"), "/")
		d := core.ControllingDepth(len(parts), opts.Level)
		name := ""
		if d > 0 {
			name = parts[d-1]
		}
		// Salt-free placement: capacity is not modeled here, as in the
		// paper's availability experiment.
		keyFiles[name] += 1
	}
	totalFiles := float64(len(tr.Files))

	av := trace.GenAvail(opts.Avail, opts.Seed)
	spikeHour, maxDown := av.MaxSimultaneousFailures()

	res := &Figure7Result{SpikeHour: spikeHour, MaxDown: maxDown}
	for _, k := range opts.Replicas {
		hourly := make([]*stats.Accum, av.Hours)
		for h := range hourly {
			hourly[h] = &stats.Accum{}
		}
		for run := 0; run < opts.Runs; run++ {
			ring := pastry.RandomRing(opts.Nodes, opts.Seed*9_000_011+uint64(run))

			// Files grouped by their primary (root) node index.
			filesAtRoot := make([]int64, opts.Nodes)
			for name, nf := range keyFiles {
				filesAtRoot[ring.Root(core.Key(name))] += nf
			}

			// Holder sets per root index: the primary plus K leaf-set
			// neighbors (Section 4.2). Repair recruits the next live ring
			// neighbors ("new replicas are created when old ones become
			// unavailable"), but a recruit only counts as a copy once the
			// transfer window (RepairLagHours) has elapsed.
			type recruit struct {
				node  int
				ready int
			}
			holders := make([][]int, opts.Nodes)
			pending := make([][]recruit, opts.Nodes)
			for root := 0; root < opts.Nodes; root++ {
				holders[root] = append([]int{root}, ring.Replicas(root, k)...)
			}

			for h := 0; h < av.Hours; h++ {
				up := av.Up[h]
				var unavailable int64
				for root := 0; root < opts.Nodes; root++ {
					if filesAtRoot[root] == 0 {
						continue
					}
					// Promote recruits whose transfer completed (their
					// source must still have been alive through the
					// window; approximated by requiring the recruit
					// itself to be up at completion).
					keep := pending[root][:0]
					for _, rc := range pending[root] {
						switch {
						case rc.ready <= h && up[rc.node]:
							holders[root] = append(holders[root], rc.node)
						case rc.ready > h:
							keep = append(keep, rc)
						}
					}
					pending[root] = keep

					alive := holders[root][:0:0]
					for _, n := range holders[root] {
						if up[n] {
							alive = append(alive, n)
						}
					}
					if len(alive) == 0 {
						// Every settled copy is on a down machine.
						unavailable += filesAtRoot[root]
						continue
					}
					if k > 0 && len(alive)+len(pending[root]) < k+1 {
						// Recruit replacements for the missing copies.
						have := make(map[int]bool, len(alive))
						for _, n := range alive {
							have[n] = true
						}
						for _, rc := range pending[root] {
							have[rc.node] = true
						}
						want := k + 1 - len(alive) - len(pending[root])
						for step := 1; want > 0 && step < opts.Nodes; step++ {
							for _, cand := range []int{(root + step) % opts.Nodes, (root - step + opts.Nodes) % opts.Nodes} {
								if want > 0 && up[cand] && !have[cand] {
									have[cand] = true
									pending[root] = append(pending[root], recruit{node: cand, ready: h + opts.RepairLagHours})
									want--
								}
							}
						}
					}
					holders[root] = alive
				}
				hourly[h].Add((totalFiles - float64(unavailable)) / totalFiles * 100)
			}
		}
		s := Figure7Series{Replicas: k}
		var avg stats.Accum
		worst := 100.0
		worstHour := 0
		for h := 0; h < av.Hours; h++ {
			v := hourly[h].Mean()
			s.HourlyPct = append(s.HourlyPct, v)
			avg.Add(v)
			if v < worst {
				worst, worstHour = v, h
			}
		}
		s.AveragePct = avg.Mean()
		s.WorstPct = worst
		s.WorstHour = worstHour
		s.SpikeHourPct = s.HourlyPct[spikeHour]
		s.SpikeUnavail = 100 - s.SpikeHourPct
		s.AvgUnavailPct = 100 - s.AveragePct
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fprint renders a summary plus a decimated hourly series per replica count.
func (r *Figure7Result) Fprint(w io.Writer, opts Figure7Options) {
	fmt.Fprintf(w, "Figure 7: file availability over %d hours, %d nodes, level %d, %d runs\n",
		opts.Avail.Hours, opts.Nodes, opts.Level, opts.Runs)
	fmt.Fprintf(w, "largest simultaneous failure: %d machines at hour %d\n", r.MaxDown, r.SpikeHour)
	fmt.Fprintf(w, "%-10s %12s %12s %10s %14s\n", "config", "avg avail%", "worst%", "worst hr", "spike unavail%")
	for _, s := range r.Series {
		fmt.Fprintf(w, "Kosha-%-4d %12.4f %12.4f %10d %14.4f\n",
			s.Replicas, s.AveragePct, s.WorstPct, s.WorstHour, s.SpikeUnavail)
	}
	fmt.Fprintln(w, "\nhourly availability (every 24h):")
	fmt.Fprintf(w, "%-6s", "hour")
	for _, s := range r.Series {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("Kosha-%d", s.Replicas))
	}
	fmt.Fprintln(w)
	for h := 0; h < len(r.Series[0].HourlyPct); h += 24 {
		fmt.Fprintf(w, "%-6d", h)
		for _, s := range r.Series {
			fmt.Fprintf(w, " %9.3f", s.HourlyPct[h])
		}
		fmt.Fprintln(w)
	}
}
