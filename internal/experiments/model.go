package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/simnet"
)

// ModelOptions parameterizes the Section 6.1.2 analytic overhead model:
//
//	D = I + (H · hc) · (N-1)/N
//
// where I is the interposition constant, H = ceil(log_{2^b}(N)) the overlay
// hop count, hc the per-hop latency, and (N-1)/N the fraction of files
// served from remote nodes.
type ModelOptions struct {
	I           time.Duration
	HopCost     time.Duration
	Base        int // 2^b, Pastry digit base (16)
	NodeCounts  []int
	PerHopModel simnet.LinkModel
}

// DefaultModelOptions uses the reproduction's calibrated constants and the
// paper's 10^4-node target scale.
func DefaultModelOptions() ModelOptions {
	return ModelOptions{
		I:          210 * time.Microsecond,
		HopCost:    700 * time.Microsecond, // one overlay RPC round trip
		Base:       16,
		NodeCounts: []int{1, 2, 4, 8, 16, 64, 256, 1024, 4096, 10000},
	}
}

// ModelRow is the predicted per-operation overhead at one overlay size.
type ModelRow struct {
	N          int
	Hops       int
	RemoteFrac float64
	D          time.Duration
}

// RunModel evaluates the analytic model.
func RunModel(opts ModelOptions) []ModelRow {
	var rows []ModelRow
	for _, n := range opts.NodeCounts {
		h := 0
		if n > 1 {
			h = int(math.Ceil(math.Log(float64(n)) / math.Log(float64(opts.Base))))
			if h < 1 {
				h = 1
			}
		}
		rf := float64(n-1) / float64(n)
		d := opts.I + time.Duration(float64(h)*float64(opts.HopCost)*rf)
		rows = append(rows, ModelRow{N: n, Hops: h, RemoteFrac: rf, D: d})
	}
	return rows
}

// FprintModel renders the model table; the paper's conclusion — "the
// overhead D does not exceed 4ms plus a constant factor" for 10^4 nodes —
// is directly visible in the final row.
func FprintModel(w io.Writer, rows []ModelRow, opts ModelOptions) {
	fmt.Fprintf(w, "Section 6.1.2 overhead model: D = I + H*hc*(N-1)/N  (I=%v, hc=%v, base %d)\n",
		opts.I, opts.HopCost, opts.Base)
	fmt.Fprintf(w, "%-8s %6s %12s %14s\n", "N", "H", "(N-1)/N", "D")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %6d %12.4f %14v\n", r.N, r.Hops, r.RemoteFrac, r.D)
	}
}
