package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simnet"
)

// CacheAblationOptions parameterizes the client-cache ablation: a
// readdir+stat-all-entries scan (the `ls -l` pattern dominating the MAB
// stat/readdir phases) over a pre-built tree, run with the mount's
// attribute/name caches enabled and disabled.
type CacheAblationOptions struct {
	Nodes       int
	Dirs        int // directories scanned
	FilesPerDir int // entries per directory
	Sweeps      int // full scans of the tree
	Seed        uint64
}

// DefaultCacheAblationOptions uses the Table 1/2 cluster shape with a tree
// big enough that per-entry round trips dominate.
func DefaultCacheAblationOptions() CacheAblationOptions {
	return CacheAblationOptions{
		Nodes:       8,
		Dirs:        8,
		FilesPerDir: 24,
		Sweeps:      3,
		Seed:        9,
	}
}

// CacheArm is one side of the ablation.
type CacheArm struct {
	RPCs    uint64  // NFS round trips issued by the scanning node
	Bytes   uint64  // request+response payload bytes of those RPCs
	Ops     int     // client operations (1 per readdir, 1 per stat)
	RPCsOp  float64 // RPCs / Ops
	Seconds float64 // simulated time of the scan
}

// CacheAblationResult compares the two arms.
type CacheAblationResult struct {
	On, Off         CacheArm
	RPCReductionPct float64 // fewer RPCs with caching, percent of Off
	TimeSavedPct    float64 // simulated-time saving, percent of Off
}

// RunCacheAblation builds the same tree under both configurations and
// measures only the scan: for every directory, one Readdir followed by a
// Lookup+Getattr of each entry, repeated Sweeps times. Directory handles are
// resolved before counters reset so both arms start from identical state.
func RunCacheAblation(opts CacheAblationOptions) (*CacheAblationResult, error) {
	run := func(noCache bool) (CacheArm, error) {
		cfg := koshaCfg()
		cfg.NoMetadataCache = noCache
		c, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
		if err != nil {
			return CacheArm{}, err
		}
		m := c.Mount(0)
		dirs := make([]core.VH, opts.Dirs)
		names := make([][]string, opts.Dirs)
		for d := 0; d < opts.Dirs; d++ {
			for f := 0; f < opts.FilesPerDir; f++ {
				name := fmt.Sprintf("/scan%02d/f%03d", d, f)
				if _, err := m.WriteFile(name, []byte(name)); err != nil {
					return CacheArm{}, fmt.Errorf("populate %s: %w", name, err)
				}
			}
			vh, _, _, err := m.LookupPath(fmt.Sprintf("/scan%02d", d))
			if err != nil {
				return CacheArm{}, err
			}
			dirs[d] = vh
		}

		nd := c.Nodes[0]
		nd.ResetNFSStats()
		var arm CacheArm
		var total simnet.Cost
		for s := 0; s < opts.Sweeps; s++ {
			for d, dvh := range dirs {
				ents, cost, err := m.Readdir(dvh)
				if err != nil {
					return CacheArm{}, err
				}
				total += cost
				arm.Ops++
				if s == 0 {
					for _, e := range ents {
						names[d] = append(names[d], e.Name)
					}
				}
				for _, name := range names[d] {
					vh, _, lcost, err := m.Lookup(dvh, name)
					if err != nil {
						return CacheArm{}, fmt.Errorf("lookup %s: %w", name, err)
					}
					_, gcost, err := m.Getattr(vh)
					if err != nil {
						return CacheArm{}, fmt.Errorf("getattr %s: %w", name, err)
					}
					total += lcost + gcost
					arm.Ops++
				}
			}
		}
		st := nd.NFSStats()
		arm.RPCs = st.RPCs
		arm.Bytes = st.Bytes
		arm.Seconds = total.Seconds()
		if arm.Ops > 0 {
			arm.RPCsOp = float64(arm.RPCs) / float64(arm.Ops)
		}
		return arm, nil
	}

	on, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("cache ablation (on): %w", err)
	}
	off, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("cache ablation (off): %w", err)
	}
	res := &CacheAblationResult{On: on, Off: off}
	if off.RPCs > 0 {
		res.RPCReductionPct = (1 - float64(on.RPCs)/float64(off.RPCs)) * 100
	}
	if off.Seconds > 0 {
		res.TimeSavedPct = (1 - on.Seconds/off.Seconds) * 100
	}
	return res, nil
}

// Fprint renders the comparison.
func (r *CacheAblationResult) Fprint(w io.Writer, opts CacheAblationOptions) {
	fmt.Fprintf(w, "Cache ablation: readdir + stat-all-entries, %d dirs x %d files x %d sweeps\n",
		opts.Dirs, opts.FilesPerDir, opts.Sweeps)
	fmt.Fprintf(w, "%-10s %10s %10s %10s %12s\n", "Caching", "NFS RPCs", "rpcs/op", "sim-sec", "bytes")
	for _, row := range []struct {
		name string
		arm  CacheArm
	}{{"off", r.Off}, {"on", r.On}} {
		fmt.Fprintf(w, "%-10s %10d %10.2f %10.3f %12d\n",
			row.name, row.arm.RPCs, row.arm.RPCsOp, row.arm.Seconds, row.arm.Bytes)
	}
	fmt.Fprintf(w, "RPC reduction: %.1f%%   simulated-time saving: %.1f%%\n",
		r.RPCReductionPct, r.TimeSavedPct)
}

// FprintCSV renders the comparison as CSV.
func (r *CacheAblationResult) FprintCSV(w io.Writer, opts CacheAblationOptions) {
	fmt.Fprintln(w, "caching,rpcs,rpcs_per_op,sim_seconds,bytes")
	fmt.Fprintf(w, "off,%d,%.4f,%.4f,%d\n", r.Off.RPCs, r.Off.RPCsOp, r.Off.Seconds, r.Off.Bytes)
	fmt.Fprintf(w, "on,%d,%.4f,%.4f,%d\n", r.On.RPCs, r.On.RPCsOp, r.On.Seconds, r.On.Bytes)
}
