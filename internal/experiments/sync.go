package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simnet"
)

// SyncOptions parameterizes the anti-entropy experiment: a replicated
// N-file subtree goes one file stale on its replica (the mirror is lost to
// a partition), and the two replica-refresh strategies are charged for the
// bytes they move to converge again.
type SyncOptions struct {
	Nodes    int
	Files    int // files in the replicated subtree
	FileSize int // bytes per file
	Seed     uint64
}

// DefaultSyncOptions uses the acceptance shape: one stale file in a
// 100-file tree.
func DefaultSyncOptions() SyncOptions {
	return SyncOptions{
		Nodes:    4,
		Files:    100,
		FileSize: 4 << 10,
		Seed:     17,
	}
}

// SyncResult compares the legacy full-tree re-push against the Merkle
// delta sync for the same one-file staleness.
type SyncResult struct {
	Nodes        int     `json:"nodes"`
	Files        int     `json:"files"`
	FileSize     int     `json:"file_size"`
	FullBytes    uint64  `json:"full_bytes"`
	DeltaBytes   uint64  `json:"delta_bytes"`
	DeltaPct     float64 `json:"delta_pct"`     // delta bytes as % of full bytes
	FilesSent    uint64  `json:"files_sent"`    // shipped by the delta sync
	FilesSkipped uint64  `json:"files_skipped"` // proven current by digest
}

// runSyncArm builds a cluster, replicates a Files-file subtree, makes the
// replica exactly one file stale by partitioning the primary from it during
// a touch, heals the network, and returns the kosha-service bytes the
// primary's next SyncReplicas moves.
func runSyncArm(opts SyncOptions, fullPush bool) (uint64, uint64, uint64, error) {
	cfg := koshaCfg()
	// Membership-driven resync would heal the staleness behind the
	// experiment's back; every sync here is driven explicitly.
	cfg.NoAutoSync = true
	cfg.FullTreePush = fullPush
	c, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
	if err != nil {
		return 0, 0, 0, err
	}

	m := c.Mount(0)
	data := make([]byte, opts.FileSize)
	for i := range data {
		data[i] = byte(i)
	}
	for f := 0; f < opts.Files; f++ {
		if _, err := m.WriteFile(fmt.Sprintf("/sync00/f%03d", f), data); err != nil {
			return 0, 0, 0, fmt.Errorf("populate f%03d: %w", f, err)
		}
	}
	c.Stabilize()

	pl, _, err := c.Nodes[0].ResolvePath("/sync00")
	if err != nil {
		return 0, 0, 0, fmt.Errorf("resolve /sync00: %w", err)
	}
	var primary *core.Node
	for _, nd := range c.Nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	if primary == nil {
		return 0, 0, 0, fmt.Errorf("primary %s not in cluster", pl.Node)
	}
	cands := primary.Overlay().ReplicaCandidates(cfg.Replicas)
	if len(cands) == 0 {
		return 0, 0, 0, fmt.Errorf("primary %s has no replica candidates", pl.Node)
	}
	replica := cands[0].Addr

	// Touch one file (same size, different bytes) while the replica is
	// unreachable: the primary applies the write and bumps its version, the
	// mirror is dropped, and the replica is now stale by exactly that file.
	c.Net.SetPartition(func(a, b simnet.Addr) bool {
		return (a == pl.Node && b == replica) || (a == replica && b == pl.Node)
	})
	touched := append([]byte(nil), data...)
	touched[0] ^= 0xff
	pm := primary.NewMount()
	if _, err := pm.WriteFile(fmt.Sprintf("/sync00/f%03d", opts.Files/2), touched); err != nil {
		c.Net.SetPartition(nil)
		return 0, 0, 0, fmt.Errorf("touch: %w", err)
	}
	c.Net.SetPartition(nil)
	// Overlay repair only — a full Stabilize would run everyone's replica
	// sync and converge the tree before the measured refresh.
	for round := 0; round < 3; round++ {
		for _, nd := range c.Nodes {
			nd.Overlay().Stabilize()
		}
	}

	before := primary.Obs().Snapshot().Counters
	c.Net.ResetStats()
	primary.SyncReplicas()
	bytes := c.Net.ServiceStats(core.KoshaService).Bytes
	after := primary.Obs().Snapshot().Counters
	sent := after["repl.sync.files.sent"] - before["repl.sync.files.sent"]
	skipped := after["repl.sync.files.skipped"] - before["repl.sync.files.skipped"]
	return bytes, sent, skipped, nil
}

// RunSync measures both refresh strategies against the same staleness.
func RunSync(opts SyncOptions) (*SyncResult, error) {
	full, _, _, err := runSyncArm(opts, true)
	if err != nil {
		return nil, fmt.Errorf("full-push arm: %w", err)
	}
	delta, sent, skipped, err := runSyncArm(opts, false)
	if err != nil {
		return nil, fmt.Errorf("delta arm: %w", err)
	}
	res := &SyncResult{
		Nodes:        opts.Nodes,
		Files:        opts.Files,
		FileSize:     opts.FileSize,
		FullBytes:    full,
		DeltaBytes:   delta,
		FilesSent:    sent,
		FilesSkipped: skipped,
	}
	if full > 0 {
		res.DeltaPct = float64(delta) / float64(full) * 100
	}
	return res, nil
}

// FprintJSON emits the result as an indented JSON document; make ci's
// smoke run greps it for the byte fields.
func (r *SyncResult) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fprint renders the result as a text table.
func (r *SyncResult) Fprint(w io.Writer, opts SyncOptions) {
	fmt.Fprintf(w, "Replica refresh after a 1-file touch, %d nodes (%d files x %d B)\n",
		r.Nodes, r.Files, r.FileSize)
	fmt.Fprintf(w, "%-22s %12s\n", "strategy", "bytes moved")
	fmt.Fprintf(w, "%-22s %12d\n", "full re-push", r.FullBytes)
	fmt.Fprintf(w, "%-22s %12d\n", "merkle delta", r.DeltaBytes)
	fmt.Fprintf(w, "delta sync moved %.1f%% of the full push; shipped %d file(s), digests skipped %d\n",
		r.DeltaPct, r.FilesSent, r.FilesSkipped)
}

// FprintCSV renders the comparison as CSV.
func (r *SyncResult) FprintCSV(w io.Writer, opts SyncOptions) {
	fmt.Fprintln(w, "strategy,bytes,files_sent,files_skipped")
	fmt.Fprintf(w, "full,%d,,\n", r.FullBytes)
	fmt.Fprintf(w, "delta,%d,%d,%d\n", r.DeltaBytes, r.FilesSent, r.FilesSkipped)
}
