package experiments

import (
	"strings"
	"testing"
)

// TestDedupAcceptance is the chunk-store acceptance bar: the duplicate-heavy
// corpus must dedup at least 2x in the block index, and a 16-byte edit in a
// big replicated file must resync (and promote-repair) for at most 10% of
// the bytes the whole-file strategies move.
func TestDedupAcceptance(t *testing.T) {
	opts := DefaultDedupOptions()
	res, err := RunDedup(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogicalBytes == 0 || res.StoredBytes == 0 {
		t.Fatalf("block index saw nothing: logical=%d stored=%d", res.LogicalBytes, res.StoredBytes)
	}
	if res.DedupRatio < 2 {
		t.Fatalf("dedup ratio %.2fx, want >= 2x (logical=%d stored=%d)",
			res.DedupRatio, res.LogicalBytes, res.StoredBytes)
	}
	if res.EditFullBytes == 0 || res.EditDeltaBytes == 0 {
		t.Fatalf("edit arm moved no bytes: full=%d delta=%d", res.EditFullBytes, res.EditDeltaBytes)
	}
	if res.EditDeltaBytes*10 >= res.EditFullBytes {
		t.Fatalf("chunk delta moved %d bytes, >= 10%% of the %d-byte whole-file refresh (%.1f%%)",
			res.EditDeltaBytes, res.EditFullBytes, res.EditDeltaPct)
	}
	if res.PromoteFullBytes == 0 || res.PromoteDeltaBytes == 0 {
		t.Fatalf("promote arm fetched no bytes: full=%d delta=%d", res.PromoteFullBytes, res.PromoteDeltaBytes)
	}
	if res.PromoteDeltaBytes*10 >= res.PromoteFullBytes {
		t.Fatalf("block-level promote repair fetched %d bytes, >= 10%% of the %d-byte whole-file fetch (%.1f%%)",
			res.PromoteDeltaBytes, res.PromoteFullBytes, res.PromoteDeltaPct)
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	for _, row := range []string{"dedup ratio", "chunk delta", "block-level repair"} {
		if !strings.Contains(sb.String(), row) {
			t.Fatalf("printout missing %q row", row)
		}
	}
	var jb strings.Builder
	if err := res.FprintJSON(&jb); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"dedup_ratio", "edit_delta_bytes", "promote_delta_bytes"} {
		if !strings.Contains(jb.String(), field) {
			t.Fatalf("JSON missing %q", field)
		}
	}
	var cb strings.Builder
	res.FprintCSV(&cb, opts)
	if !strings.Contains(cb.String(), "promote_fetch_bytes") {
		t.Fatal("CSV missing promote row")
	}
}
