package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/chaos"
	"repro/internal/cluster"
)

// ChurnOptions parameterizes the availability-under-failure sweep, echoing
// the paper's Figure 8: the percentage of successful file accesses as nodes
// fail, for different replication factors K. Reads are issued immediately
// after the simultaneous failures — before any repair round — so the sweep
// measures what replication plus transparent failover (Section 4.4) buys on
// its own.
type ChurnOptions struct {
	Nodes    int
	Replicas []int // K values swept
	Failed   []int // simultaneous node failures swept
	Files    int
	Runs     int
	Seed     int64
}

// DefaultChurnOptions mirrors the chaos harness's default topology: 8 nodes
// with the client mounted on node 0.
func DefaultChurnOptions() ChurnOptions {
	return ChurnOptions{
		Nodes:    8,
		Replicas: []int{1, 2, 3},
		Failed:   []int{0, 1, 2, 3},
		Files:    48,
		Runs:     3,
		Seed:     17,
	}
}

// ChurnRow is one (K, failed-nodes) cell, aggregated over runs.
type ChurnRow struct {
	Replicas     int     `json:"replicas"`
	Failed       int     `json:"failed"`
	Reads        int     `json:"reads"`
	Missed       int     `json:"missed"`
	Availability float64 `json:"availability_pct"`
}

// ChurnResult carries the sweep.
type ChurnResult struct {
	Rows []ChurnRow `json:"rows"`
}

// RunChurn executes the sweep. Each cell builds a fresh cluster, populates
// it through the mount, stabilizes, crashes the requested number of storage
// nodes at once, and replays every acknowledged file through the chaos
// harness's oracle: a read that fails or returns stale-but-acknowledged
// contents is a miss; contents never acknowledged abort the experiment.
func RunChurn(opts ChurnOptions) (*ChurnResult, error) {
	res := &ChurnResult{}
	for _, k := range opts.Replicas {
		for _, failed := range opts.Failed {
			if failed >= opts.Nodes {
				continue
			}
			var reads, missed int
			for run := 0; run < opts.Runs; run++ {
				seed := opts.Seed + int64(run)*65537 + int64(k)*257 + int64(failed)
				cfg := koshaCfg()
				cfg.Replicas = k
				cfg.Seed = uint64(seed)
				// Wall-clock TTL caches would make results timing-dependent.
				cfg.AttrCacheTTL = -1
				cfg.NameCacheTTL = -1
				c, err := cluster.New(cluster.Options{
					Nodes:  opts.Nodes,
					Seed:   uint64(seed),
					Config: cfg,
				})
				if err != nil {
					return nil, fmt.Errorf("churn k=%d f=%d: %w", k, failed, err)
				}
				m := c.Mount(0)
				r := rand.New(rand.NewSource(seed))
				model := chaos.NewOracle()
				for i := 0; i < opts.Files; i++ {
					p := fmt.Sprintf("/d%d/f%d", i%4, i)
					data := make([]byte, 64+r.Intn(1024))
					r.Read(data)
					if _, err := m.WriteFile(p, data); err != nil {
						return nil, fmt.Errorf("churn k=%d f=%d populate %s: %w", k, failed, p, err)
					}
					model.WriteFile(p, data)
				}
				c.Stabilize()
				// Crash storage nodes only — node 0 hosts the client's koshad.
				victims := r.Perm(opts.Nodes - 1)[:failed]
				for _, v := range victims {
					c.Fail(v + 1)
				}
				miss, err := model.CheckFilesLenient(m)
				if err != nil {
					return nil, fmt.Errorf("churn k=%d f=%d: %w", k, failed, err)
				}
				reads += opts.Files
				missed += miss
			}
			res.Rows = append(res.Rows, ChurnRow{
				Replicas:     k,
				Failed:       failed,
				Reads:        reads,
				Missed:       missed,
				Availability: 100 * float64(reads-missed) / float64(reads),
			})
		}
	}
	return res, nil
}

// Fprint renders the sweep as an availability matrix.
func (r *ChurnResult) Fprint(w io.Writer, opts ChurnOptions) {
	fmt.Fprintf(w, "Churn sweep: read availability vs simultaneous failures (Fig 8 echo, %d nodes, %d files, %d runs)\n",
		opts.Nodes, opts.Files, opts.Runs)
	fmt.Fprintf(w, "%-4s %-8s %8s %8s %14s\n", "K", "failed", "reads", "missed", "availability")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-4d %-8d %8d %8d %13.2f%%\n",
			row.Replicas, row.Failed, row.Reads, row.Missed, row.Availability)
	}
}

// FprintCSV renders the sweep as replicas,failed,reads,missed,availability rows.
func (r *ChurnResult) FprintCSV(w io.Writer, opts ChurnOptions) {
	fmt.Fprintln(w, "replicas,failed,reads,missed,availability_pct")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%d,%d,%d,%.2f\n",
			row.Replicas, row.Failed, row.Reads, row.Missed, row.Availability)
	}
}
