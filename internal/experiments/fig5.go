package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/pastry"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure5Options parameterizes the load-distribution simulation (Section
// 6.2): "we simulated a Kosha cluster of 16 nodes and fixed the number of
// replicas to 3 ... The distribution level was varied from 1 to 10 ... The
// simulation was repeated 50 times varying the nodeId assignments".
type Figure5Options struct {
	Nodes    int
	Replicas int
	Levels   []int
	Seeds    int
	Trace    trace.FSConfig
	Seed     uint64
}

// DefaultFigure5Options mirrors the paper's setup.
func DefaultFigure5Options() Figure5Options {
	return Figure5Options{
		Nodes:    16,
		Replicas: 3,
		Levels:   []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Seeds:    50,
		Trace:    trace.PurdueFSConfig(),
		Seed:     5,
	}
}

// Figure5Row is the per-level result: mean and standard deviation of the
// per-node percentage of file count and of bytes, across nodes and seeds.
type Figure5Row struct {
	Level        int
	MeanFilesPct float64
	StdFilesPct  float64
	MeanBytesPct float64
	StdBytesPct  float64
}

// Figure5Result carries the directory-level rows plus the per-file-hashing
// bound (the dotted lines in the paper's figure: "the upper bound on the
// best load balancing ... using DHTs").
type Figure5Result struct {
	Rows    []Figure5Row
	PerFile Figure5Row // Level is -1
}

// dirGroup aggregates a controlling placement name's files and bytes.
type dirGroup struct {
	files int64
	bytes int64
}

// controllingName returns the placement name controlling a file path at
// distribution level L: the name of its depth-min(d, L) ancestor directory
// (Sections 3.1-3.2; no redirection here — "Each node contributed 10 GB of
// disk space to avoid file redirection").
func controllingName(filePath string, level int) string {
	dir := trace.DirOf(filePath)
	parts := strings.Split(strings.TrimPrefix(dir, "/"), "/")
	d := core.ControllingDepth(len(parts), level)
	if d == 0 {
		return ""
	}
	return parts[d-1]
}

// RunFigure5 executes the load-distribution simulation.
func RunFigure5(opts Figure5Options) (*Figure5Result, error) {
	tr := trace.GenFS(opts.Trace, opts.Seed)

	// Pre-aggregate the trace by controlling name per level, and by full
	// path for the per-file bound. Name collisions colocate by design.
	perLevel := make(map[int]map[id.ID]*dirGroup, len(opts.Levels))
	for _, l := range opts.Levels {
		groups := make(map[id.ID]*dirGroup)
		for _, f := range tr.Files {
			key := core.Key(controllingName(f.Path, l))
			g := groups[key]
			if g == nil {
				g = &dirGroup{}
				groups[key] = g
			}
			g.files++
			g.bytes += f.Size
		}
		perLevel[l] = groups
	}

	res := &Figure5Result{}
	totFiles := float64(len(tr.Files))
	totBytes := float64(tr.TotalBytes())

	place := func(groups map[id.ID]*dirGroup, seed uint64) ([]float64, []float64) {
		ring := pastry.RandomRing(opts.Nodes, seed)
		files := make([]int64, opts.Nodes)
		bytes := make([]int64, opts.Nodes)
		var allF, allB int64
		for key, g := range groups {
			for _, h := range ring.Holders(key, opts.Replicas) {
				files[h] += g.files
				bytes[h] += g.bytes
				allF += g.files
				allB += g.bytes
			}
		}
		fp := make([]float64, opts.Nodes)
		bp := make([]float64, opts.Nodes)
		for i := range files {
			fp[i] = float64(files[i]) / float64(allF) * 100
			bp[i] = float64(bytes[i]) / float64(allB) * 100
		}
		return fp, bp
	}

	for _, l := range opts.Levels {
		var fAcc, bAcc stats.Accum
		for s := 0; s < opts.Seeds; s++ {
			fp, bp := place(perLevel[l], opts.Seed*1_000_003+uint64(s))
			for i := range fp {
				fAcc.Add(fp[i])
				bAcc.Add(bp[i])
			}
		}
		res.Rows = append(res.Rows, Figure5Row{
			Level:        l,
			MeanFilesPct: fAcc.Mean(),
			StdFilesPct:  fAcc.StdDev(),
			MeanBytesPct: bAcc.Mean(),
			StdBytesPct:  bAcc.StdDev(),
		})
	}

	// Per-file hashing bound: each file keyed by its full path.
	fileGroups := make(map[id.ID]*dirGroup, len(tr.Files))
	for _, f := range tr.Files {
		key := id.HashKey(f.Path)
		g := fileGroups[key]
		if g == nil {
			g = &dirGroup{}
			fileGroups[key] = g
		}
		g.files++
		g.bytes += f.Size
	}
	var fAcc, bAcc stats.Accum
	for s := 0; s < opts.Seeds; s++ {
		fp, bp := place(fileGroups, opts.Seed*1_000_003+uint64(s))
		for i := range fp {
			fAcc.Add(fp[i])
			bAcc.Add(bp[i])
		}
	}
	res.PerFile = Figure5Row{
		Level:        -1,
		MeanFilesPct: fAcc.Mean(),
		StdFilesPct:  fAcc.StdDev(),
		MeanBytesPct: bAcc.Mean(),
		StdBytesPct:  bAcc.StdDev(),
	}
	_ = totFiles
	_ = totBytes
	return res, nil
}

// Fprint renders the two series with the per-file bound.
func (r *Figure5Result) Fprint(w io.Writer, opts Figure5Options) {
	fmt.Fprintf(w, "Figure 5: per-node load distribution, %d nodes, %d replicas, %d seeds\n",
		opts.Nodes, opts.Replicas, opts.Seeds)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n",
		"dist-level", "files mean%", "files std%", "bytes mean%", "bytes std%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12d %12.2f %12.2f %12.2f %12.2f\n",
			row.Level, row.MeanFilesPct, row.StdFilesPct, row.MeanBytesPct, row.StdBytesPct)
	}
	fmt.Fprintf(w, "%-12s %12.2f %12.2f %12.2f %12.2f   (finest-grained bound)\n",
		"per-file", r.PerFile.MeanFilesPct, r.PerFile.StdFilesPct,
		r.PerFile.MeanBytesPct, r.PerFile.StdBytesPct)
}
