package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/pastry"
	"repro/internal/trace"
)

// Figure6Options parameterizes the redirection/utilization simulation
// (Section 6.2): "a cluster of 16 nodes, 8 of which contributed 3 GB each,
// 4 nodes contributed 4 GB each, and 4 nodes contributed 5 GB each ... The
// distribution level was fixed at 4, and the number of the replicas was
// fixed at 3 ... repeated with file redirection attempts varying from 1 to
// 15 ... run 50 times varying the nodeId assignment".
type Figure6Options struct {
	Capacities []int64
	Level      int
	Replicas   int
	Attempts   []int // redirection attempt budgets; 0 = no redirection
	Seeds      int
	Trace      trace.FSConfig
	UtilLimit  float64 // utilization beyond which new placements redirect
	Seed       uint64
	Buckets    int // utilization sample points on the x axis
}

// DefaultFigure6Options mirrors the paper's setup.
func DefaultFigure6Options() Figure6Options {
	caps := make([]int64, 0, 16)
	for i := 0; i < 8; i++ {
		caps = append(caps, 3<<30)
	}
	for i := 0; i < 4; i++ {
		caps = append(caps, 4<<30)
	}
	for i := 0; i < 4; i++ {
		caps = append(caps, 5<<30)
	}
	return Figure6Options{
		Capacities: caps,
		Level:      4,
		Replicas:   3,
		Attempts:   []int{0, 1, 2, 4, 8, 15},
		Seeds:      50,
		Trace:      trace.PurdueFSConfig(),
		UtilLimit:  0.9,
		Seed:       6,
		Buckets:    20,
	}
}

// Figure6Curve is one redirection budget's cumulative-failure-ratio curve,
// sampled at utilization buckets.
type Figure6Curve struct {
	Attempts int
	Util     []float64 // bucket upper edges, 0..1
	Failure  []float64 // cumulative failure ratio when that utilization was reached
}

// Figure6Result carries one curve per attempt budget (averaged over seeds).
type Figure6Result struct {
	Curves []Figure6Curve
}

// fig6Dir tracks one virtual directory's current placement.
type fig6Dir struct {
	name string // controlling directory name
	salt int    // current redirection attempt level
	node int    // ring index currently hosting the directory
}

// RunFigure6 executes the redirection simulation.
func RunFigure6(opts Figure6Options) (*Figure6Result, error) {
	tr := trace.GenFS(opts.Trace, opts.Seed)
	n := len(opts.Capacities)

	// Precompute each file's controlling directory path and name.
	type fileRec struct {
		dirPath string
		name    string
		size    int64
	}
	recs := make([]fileRec, len(tr.Files))
	for i, f := range tr.Files {
		dir := trace.DirOf(f.Path)
		parts := strings.Split(strings.TrimPrefix(dir, "/"), "/")
		d := core.ControllingDepth(len(parts), opts.Level)
		name := ""
		if d > 0 {
			name = parts[d-1]
		}
		recs[i] = fileRec{
			dirPath: "/" + strings.Join(parts[:d], "/"),
			name:    name,
			size:    f.Size,
		}
	}

	var totalCap int64
	for _, c := range opts.Capacities {
		totalCap += c
	}

	res := &Figure6Result{}
	for _, attempts := range opts.Attempts {
		sumFail := make([]float64, opts.Buckets)
		cnt := make([]int, opts.Buckets)
		for s := 0; s < opts.Seeds; s++ {
			ring := pastry.RandomRing(n, opts.Seed*7_000_003+uint64(s))
			used := make([]int64, n)
			var stored int64
			dirs := make(map[string]*fig6Dir)
			inserts, failures := 0, 0
			curve := make([]float64, opts.Buckets)
			seen := make([]bool, opts.Buckets)

			utilOK := func(node int) bool {
				cap := opts.Capacities[node]
				return float64(used[node])/float64(cap) < opts.UtilLimit
			}
			fits := func(node int, size int64) bool {
				return used[node]+size <= opts.Capacities[node]
			}

			for _, rec := range recs {
				d := dirs[rec.dirPath]
				if d == nil {
					// Place the directory: hash the name, redirect while
					// the target exceeds the utilization limit.
					d = &fig6Dir{name: rec.name}
					d.node = ring.Root(core.Key(core.Salted(rec.name, 0)))
					for a := 1; a <= attempts && !utilOK(d.node); a++ {
						d.salt = a
						d.node = ring.Root(core.Key(core.Salted(rec.name, a)))
					}
					dirs[rec.dirPath] = d
				}
				inserts++
				// The file goes to the directory's node; if it no longer
				// fits, redirection retries salted placements (iterative,
				// after PAST) before declaring an insertion failure.
				target := d.node
				if !fits(target, rec.size) {
					ok := false
					for a := d.salt + 1; a <= d.salt+attempts; a++ {
						cand := ring.Root(core.Key(core.Salted(rec.name, a)))
						if fits(cand, rec.size) && utilOK(cand) {
							d.salt, d.node, target = a, cand, cand
							ok = true
							break
						}
					}
					if !ok {
						failures++
						recordBucket(curve, seen, stored, totalCap, inserts, failures, opts.Buckets)
						continue
					}
				}
				used[target] += rec.size
				stored += rec.size
				// Replicas land on the ring-adjacent neighbors with space;
				// a full replica target drops that copy (repair would move
				// it later) rather than failing the insert.
				for _, rep := range ring.Replicas(target, opts.Replicas) {
					if fits(rep, rec.size) {
						used[rep] += rec.size
						stored += rec.size
					}
				}
				recordBucket(curve, seen, stored, totalCap, inserts, failures, opts.Buckets)
			}
			// Propagate the last seen value into later buckets so curves
			// that stop early still report their final ratio.
			last := 0.0
			for b := 0; b < opts.Buckets; b++ {
				if seen[b] {
					last = curve[b]
				} else {
					curve[b] = last
				}
				sumFail[b] += curve[b]
				cnt[b]++
			}
		}
		c := Figure6Curve{Attempts: attempts}
		for b := 0; b < opts.Buckets; b++ {
			c.Util = append(c.Util, float64(b+1)/float64(opts.Buckets))
			c.Failure = append(c.Failure, sumFail[b]/float64(cnt[b]))
		}
		res.Curves = append(res.Curves, c)
	}
	sort.Slice(res.Curves, func(i, j int) bool { return res.Curves[i].Attempts < res.Curves[j].Attempts })
	return res, nil
}

// recordBucket stores the cumulative failure ratio at the utilization
// bucket the simulation currently occupies.
func recordBucket(curve []float64, seen []bool, stored, totalCap int64, inserts, failures, buckets int) {
	util := float64(stored) / float64(totalCap)
	b := int(util * float64(buckets))
	if b >= buckets {
		b = buckets - 1
	}
	curve[b] = float64(failures) / float64(inserts)
	seen[b] = true
}

// Fprint renders the curves: one row per utilization bucket, one column per
// redirection budget.
func (r *Figure6Result) Fprint(w io.Writer, opts Figure6Options) {
	fmt.Fprintf(w, "Figure 6: cumulative failure ratio vs utilization (level %d, %d replicas, %d seeds)\n",
		opts.Level, opts.Replicas, opts.Seeds)
	fmt.Fprintf(w, "%-12s", "utilization")
	for _, c := range r.Curves {
		label := fmt.Sprintf("redir %d", c.Attempts)
		if c.Attempts == 0 {
			label = "no redir"
		}
		fmt.Fprintf(w, " %10s", label)
	}
	fmt.Fprintln(w)
	for b := range r.Curves[0].Util {
		fmt.Fprintf(w, "%-12.2f", r.Curves[0].Util[b])
		for _, c := range r.Curves {
			fmt.Fprintf(w, " %10.4f", c.Failure[b])
		}
		fmt.Fprintln(w)
	}
}
