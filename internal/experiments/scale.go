package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/mab"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// ScaleOptions parameterizes the overlay-size sweep, an extension beyond
// the paper's Table 1: the paper measures 1..8 nodes and *argues* that the
// overhead saturates ("For larger number of nodes, the additional overhead
// increases slowly", §6.1.2's (N-1)/N analysis plus log-base-16 hops);
// this experiment measures it.
type ScaleOptions struct {
	NodeCounts []int
	Runs       int
	Workload   mab.Config
	Seed       uint64
}

// DefaultScaleOptions extends Table 1 to 64 nodes.
func DefaultScaleOptions() ScaleOptions {
	return ScaleOptions{
		NodeCounts: []int{1, 2, 4, 8, 16, 32, 64},
		Runs:       5,
		Workload:   mab.Paper51MB(),
		Seed:       9,
	}
}

// ScaleRow is one overlay size's result.
type ScaleRow struct {
	Nodes    int
	Seconds  float64
	Overhead float64 // percent vs the NFS baseline
}

// ScaleResult carries the sweep.
type ScaleResult struct {
	NFSTotal float64
	Rows     []ScaleRow
}

// RunScale executes the sweep.
func RunScale(opts ScaleOptions) (*ScaleResult, error) {
	w := mab.Generate(opts.Workload, opts.Seed)
	base, err := mab.Run(mab.NewBaseline(simnet.LAN100, simnet.Disk7200), w)
	if err != nil {
		return nil, err
	}
	res := &ScaleResult{NFSTotal: base.Total().Seconds()}
	for _, n := range opts.NodeCounts {
		var acc stats.Accum
		for run := 0; run < opts.Runs; run++ {
			c, err := cluster.New(cluster.Options{
				Nodes:  n,
				Seed:   opts.Seed + uint64(run)*65537,
				Config: koshaCfg(),
			})
			if err != nil {
				return nil, fmt.Errorf("scale n=%d: %w", n, err)
			}
			r, err := mab.Run(mab.NewKoshaFS(c.Mount(0)), mab.Generate(opts.Workload, opts.Seed))
			if err != nil {
				return nil, fmt.Errorf("scale n=%d run=%d: %w", n, run, err)
			}
			acc.Add(r.Total().Seconds())
		}
		res.Rows = append(res.Rows, ScaleRow{
			Nodes:    n,
			Seconds:  acc.Mean(),
			Overhead: (acc.Mean()/res.NFSTotal - 1) * 100,
		})
	}
	return res, nil
}

// Fprint renders the sweep.
func (r *ScaleResult) Fprint(w io.Writer, opts ScaleOptions) {
	fmt.Fprintf(w, "Scale sweep: MAB total vs overlay size (NFS baseline %.2fs, %d runs)\n",
		r.NFSTotal, opts.Runs)
	fmt.Fprintf(w, "%-8s %12s %10s\n", "nodes", "seconds", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %12.2f %9.1f%%\n", row.Nodes, row.Seconds, row.Overhead)
	}
}

// FprintCSV renders the sweep as nodes,seconds,overhead_pct rows.
func (r *ScaleResult) FprintCSV(w io.Writer, opts ScaleOptions) {
	fmt.Fprintln(w, "nodes,seconds,overhead_pct")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%.4f,%.2f\n", row.Nodes, row.Seconds, row.Overhead)
	}
}
