package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/scale"
	"repro/internal/trace"
)

// ScaleOptions parameterizes the scale-out sweep: each point runs the
// internal/scale soak — sustained Purdue-trace traffic under diurnal
// availability churn with the overlay invariant oracle enforced — and
// records how routing, latency, replication fan-out, and join convergence
// behave as the overlay grows from LAN scale to the thousand-node
// population Pastry was designed for. The paper measures 1..8 nodes
// (Section 6) and argues O(log16 N) scaling; this experiment measures it.
type ScaleOptions struct {
	NodeCounts []int
	// Epochs/Ops are per sweep point (see scale.Options).
	Epochs int
	Ops    int
	Seed   uint64
	FS     trace.FSConfig
}

// DefaultScaleOptions sweeps 100 to 1000 nodes.
func DefaultScaleOptions() ScaleOptions {
	return ScaleOptions{
		NodeCounts: []int{100, 250, 500, 1000},
		Epochs:     12,
		Ops:        600,
		Seed:       9,
		FS:         trace.PurdueFSConfig(),
	}
}

// ScaleRow is one overlay size's soak summary.
type ScaleRow struct {
	Nodes int `json:"nodes"`
	// MeanRouteHops averages over the workload's actual routes;
	// ProbeMeanHops/ProbeMaxHops over the invariant oracle's uniform
	// key samples at final quiesce. Log16N is the model's prediction.
	MeanRouteHops float64 `json:"mean_route_hops"`
	ProbeMeanHops float64 `json:"probe_mean_hops"`
	ProbeMaxHops  int     `json:"probe_max_hops"`
	Log16N        float64 `json:"log16_n"`
	MeanOpMS      float64 `json:"mean_op_ms"`
	ReplicaFanout float64 `json:"replica_fanout"`
	MeanJoinMS    float64 `json:"mean_join_ms"`
	Crashes       int     `json:"crashes"`
	Revives       int     `json:"revives"`
}

// ScaleResult carries the sweep.
type ScaleResult struct {
	Rows []ScaleRow `json:"rows"`
}

// RunScale executes the sweep. Every point must pass the soak's oracle and
// invariant checks; a violation fails the experiment.
func RunScale(opts ScaleOptions) (*ScaleResult, error) {
	res := &ScaleResult{}
	for _, n := range opts.NodeCounts {
		rep, err := scale.Run(scale.Options{
			Nodes:  n,
			Seed:   opts.Seed + uint64(n)*65537,
			Epochs: opts.Epochs,
			Ops:    opts.Ops,
			FS:     opts.FS,
		})
		if err != nil {
			return nil, fmt.Errorf("scale n=%d: %w", n, err)
		}
		row := ScaleRow{
			Nodes:         n,
			MeanRouteHops: rep.MeanRouteHops,
			ProbeMeanHops: rep.ProbeMeanHops,
			ProbeMaxHops:  rep.ProbeMaxHops,
			Log16N:        math.Log(float64(n)) / math.Log(16),
			ReplicaFanout: rep.ReplicaFanout,
			Crashes:       rep.Crashes,
			Revives:       rep.Revives,
		}
		if rep.Ops > 0 {
			row.MeanOpMS = rep.OpCost.Duration().Seconds() * 1e3 / float64(rep.Ops)
		}
		if rep.Joins > 0 {
			row.MeanJoinMS = float64(rep.MeanJoinCost.Duration()) / float64(time.Millisecond)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fprint renders the sweep.
func (r *ScaleResult) Fprint(w io.Writer, opts ScaleOptions) {
	fmt.Fprintf(w, "Scale-out sweep: soak metrics vs overlay size (%d epochs, %d ops per point)\n",
		opts.Epochs, opts.Ops)
	fmt.Fprintf(w, "%-7s %9s %10s %9s %8s %9s %8s %9s %8s %8s\n",
		"nodes", "hops", "probehops", "maxhops", "log16N", "op_ms", "fanout", "join_ms", "crashes", "revives")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-7d %9.2f %10.2f %9d %8.2f %9.3f %8.2f %9.3f %8d %8d\n",
			row.Nodes, row.MeanRouteHops, row.ProbeMeanHops, row.ProbeMaxHops, row.Log16N,
			row.MeanOpMS, row.ReplicaFanout, row.MeanJoinMS, row.Crashes, row.Revives)
	}
}

// FprintCSV renders the sweep as CSV rows.
func (r *ScaleResult) FprintCSV(w io.Writer, opts ScaleOptions) {
	fmt.Fprintln(w, "nodes,mean_route_hops,probe_mean_hops,probe_max_hops,log16_n,mean_op_ms,replica_fanout,mean_join_ms,crashes,revives")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d,%.4f,%.4f,%d,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
			row.Nodes, row.MeanRouteHops, row.ProbeMeanHops, row.ProbeMaxHops, row.Log16N,
			row.MeanOpMS, row.ReplicaFanout, row.MeanJoinMS, row.Crashes, row.Revives)
	}
}

// FprintJSON emits the sweep as an indented JSON document.
func (r *ScaleResult) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
