package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/simnet"
)

// DedupOptions parameterizes the content-addressed chunk-store experiment:
// several users publish duplicate-heavy trees (many files drawn from a small
// payload pool), one big file takes a one-chunk edit, and a primary crash
// forces a promote repair. The three arms measure what the chunk store buys
// in each case: index dedup, sync bytes, and promote-repair fetch bytes.
type DedupOptions struct {
	Nodes            int
	Users            int // duplicate-heavy trees, one per user
	FilesPerUser     int // files per tree
	DistinctPayloads int // payload pool the files cycle through
	FileSize         int // bytes per duplicate-heavy file
	EditFileSize     int // bytes of the big file the edit/promote arms touch
	Seed             uint64
}

// DefaultDedupOptions uses the acceptance shape: a >=2x-duplicated corpus
// and a 16-byte edit in a 4 MiB file.
func DefaultDedupOptions() DedupOptions {
	return DedupOptions{
		Nodes:            4,
		Users:            3,
		FilesPerUser:     12,
		DistinctPayloads: 3,
		FileSize:         128 << 10,
		EditFileSize:     4 << 20,
		Seed:             29,
	}
}

// DedupResult carries all three measurements.
type DedupResult struct {
	Nodes            int   `json:"nodes"`
	Users            int   `json:"users"`
	FilesPerUser     int   `json:"files_per_user"`
	DistinctPayloads int   `json:"distinct_payloads"`
	FileSize         int   `json:"file_size"`
	LogicalBytes     int64 `json:"logical_bytes"` // bytes the indexed files hold
	StoredBytes      int64 `json:"stored_bytes"`  // bytes of distinct blocks behind them
	// DedupRatio is LogicalBytes/StoredBytes over every node's block index.
	DedupRatio float64 `json:"dedup_ratio"`

	EditFileSize   int     `json:"edit_file_size"`
	EditFullBytes  uint64  `json:"edit_full_bytes"`  // whole-file refresh after a 16-byte edit
	EditDeltaBytes uint64  `json:"edit_delta_bytes"` // chunk-negotiated refresh of the same edit
	EditDeltaPct   float64 `json:"edit_delta_pct"`   // delta as % of whole-file

	PromoteFullBytes  uint64  `json:"promote_full_bytes"`  // fetch bytes of a whole-file promote repair
	PromoteDeltaBytes uint64  `json:"promote_delta_bytes"` // fetch bytes of the block-level repair
	PromoteDeltaPct   float64 `json:"promote_delta_pct"`
}

// dedupPayload deterministically fills n bytes from a seeded LCG; distinct
// seeds give chunk-wise unrelated payloads, equal seeds byte-identical ones.
func dedupPayload(n int, seed uint64) []byte {
	b := make([]byte, n)
	s := seed*0x9e3779b97f4a7c15 + 1
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = byte(s >> 33)
	}
	return b
}

// spliceEdit returns data with a 16-byte marker written at off — the
// "one chunk changed" mutation the edit and promote arms use.
func spliceEdit(data []byte, off int) []byte {
	out := append([]byte(nil), data...)
	copy(out[off:], "EDITED-SIXTEEN-B")
	return out
}

// primaryOf locates the cluster node that owns vpath.
func primaryOf(c *cluster.Cluster, vpath string) (*core.Node, int, error) {
	pl, _, err := c.Nodes[0].ResolvePath(vpath)
	if err != nil {
		return nil, 0, fmt.Errorf("resolve %s: %w", vpath, err)
	}
	for i, nd := range c.Nodes {
		if nd.Addr() == pl.Node {
			return nd, i, nil
		}
	}
	return nil, 0, fmt.Errorf("primary %s not in cluster", pl.Node)
}

// runDedupRatioArm publishes the duplicate-heavy corpus and reads the
// cluster-wide block-index accounting. Each tree's first file seeds the
// hierarchy normally; the rest are written while the network is fully
// partitioned, so the replicas catch up through the measured anti-entropy
// push (the path that chunks, negotiates, and indexes) instead of the
// per-op mirror fan-out.
func runDedupRatioArm(opts DedupOptions) (logical, stored int64, err error) {
	cfg := koshaCfg()
	cfg.NoAutoSync = true
	c, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
	if err != nil {
		return 0, 0, err
	}

	m := c.Mount(0)
	payload := func(u, f int) []byte {
		return dedupPayload(opts.FileSize, uint64((u*opts.FilesPerUser+f)%opts.DistinctPayloads)+101)
	}
	for u := 0; u < opts.Users; u++ {
		if _, err := m.WriteFile(fmt.Sprintf("/dedup%02d/f%03d", u, 0), payload(u, 0)); err != nil {
			return 0, 0, fmt.Errorf("seed tree %d: %w", u, err)
		}
	}
	c.Stabilize()

	primaries := make([]*core.Node, opts.Users)
	for u := 0; u < opts.Users; u++ {
		nd, _, err := primaryOf(c, fmt.Sprintf("/dedup%02d", u))
		if err != nil {
			return 0, 0, err
		}
		primaries[u] = nd
	}

	// Write the corpus on each tree's own primary with every link cut: the
	// applies are local, the mirrors drop, and the replicas are now stale
	// by the whole corpus.
	c.Net.SetPartition(func(a, b simnet.Addr) bool { return true })
	for u := 0; u < opts.Users; u++ {
		pm := primaries[u].NewMount()
		for f := 1; f < opts.FilesPerUser; f++ {
			if _, err := pm.WriteFile(fmt.Sprintf("/dedup%02d/f%03d", u, f), payload(u, f)); err != nil {
				c.Net.SetPartition(nil)
				return 0, 0, fmt.Errorf("populate u%d f%03d: %w", u, f, err)
			}
		}
	}
	c.Net.SetPartition(nil)
	c.Stabilize()

	for _, nd := range c.Nodes {
		st := nd.Repl().CASStats()
		logical += st.LogicalBytes
		stored += st.UniqueBytes
	}
	return logical, stored, nil
}

// runDedupEditArm replicates one big file, makes the replica stale by a
// 16-byte edit applied behind a partition, and returns the kosha-service
// bytes the primary's next SyncReplicas moves to reconverge.
func runDedupEditArm(opts DedupOptions, wholeFile bool) (uint64, error) {
	cfg := koshaCfg()
	cfg.NoAutoSync = true
	cfg.WholeFileSync = wholeFile
	c, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
	if err != nil {
		return 0, err
	}

	data := dedupPayload(opts.EditFileSize, 7)
	if _, err := c.Mount(0).WriteFile("/dedit00/blob.bin", data); err != nil {
		return 0, fmt.Errorf("populate blob: %w", err)
	}
	c.Stabilize()

	primary, _, err := primaryOf(c, "/dedit00")
	if err != nil {
		return 0, err
	}
	cands := primary.Overlay().ReplicaCandidates(cfg.Replicas)
	if len(cands) == 0 {
		return 0, fmt.Errorf("primary %s has no replica candidates", primary.Addr())
	}
	replica := cands[0].Addr

	c.Net.SetPartition(func(a, b simnet.Addr) bool {
		return (a == primary.Addr() && b == replica) || (a == replica && b == primary.Addr())
	})
	if _, err := primary.NewMount().WriteFile("/dedit00/blob.bin", spliceEdit(data, opts.EditFileSize/2)); err != nil {
		c.Net.SetPartition(nil)
		return 0, fmt.Errorf("edit: %w", err)
	}
	c.Net.SetPartition(nil)
	// Overlay repair only — a full Stabilize would converge the tree before
	// the measured refresh.
	for round := 0; round < 3; round++ {
		for _, nd := range c.Nodes {
			nd.Overlay().Stabilize()
		}
	}

	c.Net.ResetStats()
	primary.SyncReplicas()
	return c.Net.ServiceStats(core.KoshaService).Bytes, nil
}

// runDedupPromoteArm replicates one big file at K=2, makes the would-be
// successor's copy stale by the 16-byte edit, crashes the primary, and
// returns how many bytes the successor's pull repair fetches while
// promoting (the repl.fetch.bytes counter, which charges only the pull
// path — block fetches, ranged reads, and whole-file streams).
func runDedupPromoteArm(opts DedupOptions, wholeFile bool) (uint64, error) {
	cfg := koshaCfg()
	cfg.NoAutoSync = true
	cfg.WholeFileSync = wholeFile
	cfg.Replicas = 2
	nodes := opts.Nodes
	if nodes < 5 {
		nodes = 5
	}
	c, err := cluster.New(cluster.Options{Nodes: nodes, Seed: opts.Seed, Config: cfg})
	if err != nil {
		return 0, err
	}

	data := dedupPayload(opts.EditFileSize, 13)
	if _, err := c.Mount(0).WriteFile("/djob00/blob.bin", data); err != nil {
		return 0, fmt.Errorf("populate blob: %w", err)
	}
	c.Stabilize()

	primary, pi, err := primaryOf(c, "/djob00")
	if err != nil {
		return 0, err
	}
	cands := primary.Overlay().ReplicaCandidates(cfg.Replicas)
	if len(cands) < 2 {
		return 0, fmt.Errorf("primary %s has %d replica candidates, want 2", primary.Addr(), len(cands))
	}
	// The candidate closest to the tree's key inherits the root when the
	// primary dies; stale that one so the promote has a repair to do.
	ids := make([]id.ID, len(cands))
	for i, cd := range cands {
		ids[i] = cd.ID
	}
	best, _ := id.Closest(core.Key("djob00"), ids)
	succ := cands[0].Addr
	for _, cd := range cands {
		if cd.ID == best {
			succ = cd.Addr
		}
	}

	c.Net.SetPartition(func(a, b simnet.Addr) bool {
		return (a == primary.Addr() && b == succ) || (a == succ && b == primary.Addr())
	})
	if _, err := primary.NewMount().WriteFile("/djob00/blob.bin", spliceEdit(data, opts.EditFileSize/2)); err != nil {
		c.Net.SetPartition(nil)
		return 0, fmt.Errorf("edit: %w", err)
	}
	c.Net.SetPartition(nil)
	for round := 0; round < 3; round++ {
		for _, nd := range c.Nodes {
			nd.Overlay().Stabilize()
		}
	}

	before := uint64(0)
	for _, nd := range c.Nodes {
		before += nd.Obs().Snapshot().Counters["repl.fetch.bytes"]
	}
	c.Fail(pi)
	c.Stabilize()
	after := uint64(0)
	for _, nd := range c.Nodes {
		after += nd.Obs().Snapshot().Counters["repl.fetch.bytes"]
	}
	return after - before, nil
}

// RunDedup executes all three arms.
func RunDedup(opts DedupOptions) (*DedupResult, error) {
	logical, stored, err := runDedupRatioArm(opts)
	if err != nil {
		return nil, fmt.Errorf("dedup ratio arm: %w", err)
	}
	editFull, err := runDedupEditArm(opts, true)
	if err != nil {
		return nil, fmt.Errorf("edit whole-file arm: %w", err)
	}
	editDelta, err := runDedupEditArm(opts, false)
	if err != nil {
		return nil, fmt.Errorf("edit delta arm: %w", err)
	}
	promFull, err := runDedupPromoteArm(opts, true)
	if err != nil {
		return nil, fmt.Errorf("promote whole-file arm: %w", err)
	}
	promDelta, err := runDedupPromoteArm(opts, false)
	if err != nil {
		return nil, fmt.Errorf("promote delta arm: %w", err)
	}

	res := &DedupResult{
		Nodes:             opts.Nodes,
		Users:             opts.Users,
		FilesPerUser:      opts.FilesPerUser,
		DistinctPayloads:  opts.DistinctPayloads,
		FileSize:          opts.FileSize,
		LogicalBytes:      logical,
		StoredBytes:       stored,
		EditFileSize:      opts.EditFileSize,
		EditFullBytes:     editFull,
		EditDeltaBytes:    editDelta,
		PromoteFullBytes:  promFull,
		PromoteDeltaBytes: promDelta,
	}
	if stored > 0 {
		res.DedupRatio = float64(logical) / float64(stored)
	}
	if editFull > 0 {
		res.EditDeltaPct = float64(editDelta) / float64(editFull) * 100
	}
	if promFull > 0 {
		res.PromoteDeltaPct = float64(promDelta) / float64(promFull) * 100
	}
	return res, nil
}

// FprintJSON emits the result as an indented JSON document; make ci's
// smoke run greps it for the ratio and byte fields.
func (r *DedupResult) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fprint renders the result as a text report.
func (r *DedupResult) Fprint(w io.Writer, opts DedupOptions) {
	fmt.Fprintf(w, "Content-addressed chunk store, %d nodes\n", r.Nodes)
	fmt.Fprintf(w, "corpus: %d users x %d files x %d B (%d distinct payloads)\n",
		r.Users, r.FilesPerUser, r.FileSize, r.DistinctPayloads)
	fmt.Fprintf(w, "%-26s %12d\n", "logical bytes indexed", r.LogicalBytes)
	fmt.Fprintf(w, "%-26s %12d\n", "distinct block bytes", r.StoredBytes)
	fmt.Fprintf(w, "%-26s %12.2fx\n", "dedup ratio", r.DedupRatio)
	fmt.Fprintf(w, "16-byte edit in a %d B file, sync bytes to reconverge:\n", r.EditFileSize)
	fmt.Fprintf(w, "%-26s %12d\n", "whole-file refresh", r.EditFullBytes)
	fmt.Fprintf(w, "%-26s %12d  (%.1f%% of whole-file)\n", "chunk delta", r.EditDeltaBytes, r.EditDeltaPct)
	fmt.Fprintf(w, "promote repair after primary crash, fetch bytes:\n")
	fmt.Fprintf(w, "%-26s %12d\n", "whole-file fetch", r.PromoteFullBytes)
	fmt.Fprintf(w, "%-26s %12d  (%.1f%% of whole-file)\n", "block-level repair", r.PromoteDeltaBytes, r.PromoteDeltaPct)
}

// FprintCSV renders the three arms as CSV.
func (r *DedupResult) FprintCSV(w io.Writer, opts DedupOptions) {
	fmt.Fprintln(w, "metric,full,delta")
	fmt.Fprintf(w, "corpus_bytes,%d,%d\n", r.LogicalBytes, r.StoredBytes)
	fmt.Fprintf(w, "edit_sync_bytes,%d,%d\n", r.EditFullBytes, r.EditDeltaBytes)
	fmt.Fprintf(w, "promote_fetch_bytes,%d,%d\n", r.PromoteFullBytes, r.PromoteDeltaBytes)
}
