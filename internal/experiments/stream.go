package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nfs"
)

// StreamOptions parameterizes the large-file streaming experiment: one
// client scans a large file sequentially (and pokes it randomly), then
// writes a stream of small sequential WRITEs, once through the stop-and-wait
// baseline and once through the streaming data path (pipelined readahead
// windows, bounded write-back).
type StreamOptions struct {
	Nodes          int
	FileBytes      int // size of the scanned file
	ReadSize       int // bytes per client READ call (the kernel's rsize)
	Window         int // readahead window, in StreamChunk-sized chunks
	StreamChunk    int // chunk size of READSTREAM windows
	RandReads      int // random 64KiB reads after the sequential scan
	WriteCount     int // small sequential writes in the write phase
	WriteSize      int // bytes per write
	WriteBackBytes int // write-back high-water mark for the streamed arm
	Seed           uint64
}

// DefaultStreamOptions uses the acceptance shape: a 32 MiB scan with an
// 8-chunk window, and 128 4-KiB writes against a 64-KiB write-back buffer.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{
		Nodes:          5,
		FileBytes:      32 << 20,
		ReadSize:       1 << 20,
		Window:         8,
		StreamChunk:    1 << 20,
		RandReads:      16,
		WriteCount:     128,
		WriteSize:      4 << 10,
		WriteBackBytes: 64 << 10,
		Seed:           23,
	}
}

// StreamResult compares the two data paths over the same workload.
type StreamResult struct {
	Nodes     int `json:"nodes"`
	FileBytes int `json:"file_bytes"`
	Window    int `json:"window"`

	SeqRPCsBase    uint64  `json:"seq_rpcs_base"`   // READ RPCs, stop-and-wait scan
	SeqRPCsStream  uint64  `json:"seq_rpcs_stream"` // READ+READSTREAM RPCs, windowed scan
	ReadRPCRatio   float64 `json:"read_rpc_ratio"`  // base / stream
	SeqMBpsBase    float64 `json:"seq_mbps_base"`   // modeled sequential throughput
	SeqMBpsStream  float64 `json:"seq_mbps_stream"`
	RandRPCsBase   uint64  `json:"rand_rpcs_base"` // random reads stay one RPC each
	RandRPCsStream uint64  `json:"rand_rpcs_stream"`

	WriteRPCsBase   uint64  `json:"write_rpcs_base"` // kosha apply+mirror messages
	WriteRPCsStream uint64  `json:"write_rpcs_stream"`
	WriteRPCRatio   float64 `json:"write_rpc_ratio"` // base / stream
	WriteMBpsBase   float64 `json:"write_mbps_base"`
	WriteMBpsStream float64 `json:"write_mbps_stream"`

	ReadaheadHits uint64 `json:"readahead_hits"`
	WBCoalesced   uint64 `json:"wb_coalesced"`
	WBFlushes     uint64 `json:"wb_flushes"`
}

// dataRPCs sums the data-bearing read procedures issued by every node: the
// client's forwarded READs plus any READSTREAM window segments.
func dataRPCs(c *cluster.Cluster) uint64 {
	var total uint64
	for _, nd := range c.Nodes {
		total += nd.NFSProcCount(nfs.ProcRead) + nd.NFSProcCount(nfs.ProcReadStream)
	}
	return total
}

// runStreamArm runs the whole workload through one configuration and
// reports (seqRPCs, seqCost, randRPCs, writeMsgs, writeCost).
func runStreamArm(opts StreamOptions, streamed bool) (res struct {
	SeqRPCs   uint64
	SeqCost   float64 // seconds
	RandRPCs  uint64
	WriteMsgs uint64
	WriteCost float64 // seconds
	RAHits    uint64
	WBCoal    uint64
	WBFlush   uint64
}, err error) {
	cfg := koshaCfg()
	cfg.NoAutoSync = true
	// Both arms rotate reads across replica holders so the comparison
	// isolates streaming: the baseline spreads single READs, the streamed
	// arm fans whole window segments out bitswap-style.
	cfg.ReadFromReplicas = true
	cfg.StreamChunk = opts.StreamChunk
	if streamed {
		cfg.ReadaheadChunks = opts.Window
		cfg.WriteBackBytes = opts.WriteBackBytes
	}
	c, err2 := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
	if err2 != nil {
		return res, err2
	}

	seed := c.Mount(0)
	payload := make([]byte, opts.FileBytes)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if _, err2 := seed.WriteFile("/stream00/big.bin", payload); err2 != nil {
		return res, fmt.Errorf("populate: %w", err2)
	}
	c.Stabilize()

	// Scan from a node that does not hold the primary copy, so the baseline
	// pays the network like the paper's remote client does.
	pl, _, err2 := c.Nodes[0].ResolvePath("/stream00")
	if err2 != nil {
		return res, fmt.Errorf("resolve: %w", err2)
	}
	client := c.Nodes[0]
	for _, nd := range c.Nodes {
		if nd.Addr() != pl.Node {
			client = nd
			break
		}
	}
	m := client.NewMount()

	// --- sequential scan ---
	fvh, _, _, err2 := m.LookupPath("/stream00/big.bin")
	if err2 != nil {
		return res, err2
	}
	before := dataRPCs(c)
	var scanned int
	var seqCost float64
	for off := int64(0); ; {
		data, eof, cost, err3 := m.Read(fvh, off, opts.ReadSize)
		if err3 != nil {
			return res, fmt.Errorf("seq read at %d: %w", off, err3)
		}
		scanned += len(data)
		seqCost += float64(cost) / 1e9
		off += int64(len(data))
		if eof || len(data) == 0 {
			break
		}
	}
	if scanned != opts.FileBytes {
		return res, fmt.Errorf("scan returned %d of %d bytes", scanned, opts.FileBytes)
	}
	res.SeqRPCs = dataRPCs(c) - before
	res.SeqCost = seqCost

	// --- random pokes (readahead must not help or hurt) ---
	before = dataRPCs(c)
	rng := opts.Seed*2654435761 + 1
	for i := 0; i < opts.RandReads; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		off := int64(rng % uint64(opts.FileBytes-(64<<10)))
		if _, _, _, err3 := m.Read(fvh, off, 64<<10); err3 != nil {
			return res, fmt.Errorf("rand read: %w", err3)
		}
	}
	res.RandRPCs = dataRPCs(c) - before
	m.Forget(fvh)

	// --- small sequential writes ---
	dvh, _, _, err2 := m.LookupPath("/stream00")
	if err2 != nil {
		return res, err2
	}
	wvh, _, _, err2 := m.Create(dvh, "out.bin", 0o644, false)
	if err2 != nil {
		return res, err2
	}
	chunk := make([]byte, opts.WriteSize)
	msgsBefore := c.Net.ServiceStats(core.KoshaService).Messages
	var wrCost float64
	for i := 0; i < opts.WriteCount; i++ {
		_, cost, err3 := m.Write(wvh, int64(i*opts.WriteSize), chunk)
		if err3 != nil {
			return res, fmt.Errorf("write %d: %w", i, err3)
		}
		wrCost += float64(cost) / 1e9
	}
	cost, err2 := m.Close(wvh)
	if err2 != nil {
		return res, fmt.Errorf("close: %w", err2)
	}
	wrCost += float64(cost) / 1e9
	res.WriteMsgs = c.Net.ServiceStats(core.KoshaService).Messages - msgsBefore
	res.WriteCost = wrCost

	snap := client.Obs().Snapshot().Counters
	res.RAHits = snap["io.readahead.hits"]
	res.WBCoal = snap["io.writeback.coalesced"]
	res.WBFlush = snap["io.writeback.flushes"]
	return res, nil
}

// RunStream measures both data paths over the same workload.
func RunStream(opts StreamOptions) (*StreamResult, error) {
	base, err := runStreamArm(opts, false)
	if err != nil {
		return nil, fmt.Errorf("baseline arm: %w", err)
	}
	str, err := runStreamArm(opts, true)
	if err != nil {
		return nil, fmt.Errorf("streamed arm: %w", err)
	}
	mbps := func(bytes int, secs float64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(bytes) / (1 << 20) / secs
	}
	res := &StreamResult{
		Nodes:           opts.Nodes,
		FileBytes:       opts.FileBytes,
		Window:          opts.Window,
		SeqRPCsBase:     base.SeqRPCs,
		SeqRPCsStream:   str.SeqRPCs,
		SeqMBpsBase:     mbps(opts.FileBytes, base.SeqCost),
		SeqMBpsStream:   mbps(opts.FileBytes, str.SeqCost),
		RandRPCsBase:    base.RandRPCs,
		RandRPCsStream:  str.RandRPCs,
		WriteRPCsBase:   base.WriteMsgs,
		WriteRPCsStream: str.WriteMsgs,
		WriteMBpsBase:   mbps(opts.WriteCount*opts.WriteSize, base.WriteCost),
		WriteMBpsStream: mbps(opts.WriteCount*opts.WriteSize, str.WriteCost),
		ReadaheadHits:   str.RAHits,
		WBCoalesced:     str.WBCoal,
		WBFlushes:       str.WBFlush,
	}
	if str.SeqRPCs > 0 {
		res.ReadRPCRatio = float64(base.SeqRPCs) / float64(str.SeqRPCs)
	}
	if str.WriteMsgs > 0 {
		res.WriteRPCRatio = float64(base.WriteMsgs) / float64(str.WriteMsgs)
	}
	return res, nil
}

// FprintJSON emits the result as an indented JSON document; make ci's smoke
// run greps it for the ratio fields.
func (r *StreamResult) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fprint renders the comparison as a text table.
func (r *StreamResult) Fprint(w io.Writer, opts StreamOptions) {
	fmt.Fprintf(w, "Streaming I/O over a %d MiB file, %d nodes (window %d x %d KiB, write-back %d KiB)\n",
		r.FileBytes>>20, r.Nodes, r.Window, opts.StreamChunk>>10, opts.WriteBackBytes>>10)
	fmt.Fprintf(w, "%-28s %14s %14s\n", "metric", "stop-and-wait", "streamed")
	fmt.Fprintf(w, "%-28s %14d %14d\n", "sequential-read data RPCs", r.SeqRPCsBase, r.SeqRPCsStream)
	fmt.Fprintf(w, "%-28s %14.1f %14.1f\n", "sequential MB/s (modeled)", r.SeqMBpsBase, r.SeqMBpsStream)
	fmt.Fprintf(w, "%-28s %14d %14d\n", "random-read data RPCs", r.RandRPCsBase, r.RandRPCsStream)
	fmt.Fprintf(w, "%-28s %14d %14d\n", "write RPC messages", r.WriteRPCsBase, r.WriteRPCsStream)
	fmt.Fprintf(w, "%-28s %14.1f %14.1f\n", "write MB/s (modeled)", r.WriteMBpsBase, r.WriteMBpsStream)
	fmt.Fprintf(w, "readahead cut data RPCs %.1fx; write-back cut write RPCs %.1fx (%d writes -> %d flushes)\n",
		r.ReadRPCRatio, r.WriteRPCRatio, r.WBCoalesced, r.WBFlushes)
}

// FprintCSV renders the comparison as CSV.
func (r *StreamResult) FprintCSV(w io.Writer, opts StreamOptions) {
	fmt.Fprintln(w, "arm,seq_rpcs,seq_mbps,rand_rpcs,write_rpcs,write_mbps")
	fmt.Fprintf(w, "base,%d,%.2f,%d,%d,%.2f\n", r.SeqRPCsBase, r.SeqMBpsBase, r.RandRPCsBase, r.WriteRPCsBase, r.WriteMBpsBase)
	fmt.Fprintf(w, "stream,%d,%.2f,%d,%d,%.2f\n", r.SeqRPCsStream, r.SeqMBpsStream, r.RandRPCsStream, r.WriteRPCsStream, r.WriteMBpsStream)
}
