package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
)

// RebalanceOptions parameterizes the capacity-driven rebalancer experiment:
// a cluster whose placement hashes concentrate storage on one node, pushed
// past the high-water mark by sizing that node's hierarchies large, then
// handed to the background maintenance engine to shed load until per-node
// utilization flattens toward the fleet mean.
type RebalanceOptions struct {
	Nodes     int
	Trees     int // level-1 hierarchies, one file each
	BigFile   int // bytes per file in hierarchies the hot node owns
	SmallFile int // bytes per file everywhere else
	Seed      uint64
	// TargetHot sizes the uniform capacity so the most-loaded node sits at
	// this utilization before the rebalancer runs.
	TargetHot float64
	// MaxRounds bounds the maintenance rounds (one tick of every node plus
	// a stabilize pass per round); the run stops early once a round makes
	// no further moves and nobody sits above the high-water mark.
	MaxRounds int
}

// DefaultRebalanceOptions is the acceptance shape: a >2x utilization skew
// flattened to within 1.3x of the fleet mean.
func DefaultRebalanceOptions() RebalanceOptions {
	return RebalanceOptions{
		Nodes:     8,
		Trees:     40,
		BigFile:   96 << 10,
		SmallFile: 12 << 10,
		Seed:      41,
		TargetHot: 0.9,
		MaxRounds: 8,
	}
}

// RebalanceResult reports utilization before and after the rebalancer runs,
// plus what the flattening cost in migrated bytes.
type RebalanceResult struct {
	Nodes     int    `json:"nodes"`
	Trees     int    `json:"trees"`
	Seed      uint64 `json:"seed"`
	Capacity  int64  `json:"capacity_bytes"`   // per-node contributed capacity
	UsedTotal int64  `json:"used_total_bytes"` // cluster-wide stored bytes before

	HighWater float64 `json:"high_water"` // absolute utilization trip point
	LowWater  float64 `json:"low_water"`  // shedding target

	UtilMaxBefore  float64 `json:"util_max_before"`
	UtilMeanBefore float64 `json:"util_mean_before"`
	SkewBefore     float64 `json:"skew_before"` // max/mean before

	Rounds     int     `json:"rounds"`
	Moves      uint64  `json:"moves"`
	MovedBytes uint64  `json:"moved_bytes"`
	MovedFrac  float64 `json:"moved_fraction"` // moved bytes / stored bytes

	UtilMaxAfter  float64 `json:"util_max_after"`
	UtilMeanAfter float64 `json:"util_mean_after"`
	SkewAfter     float64 `json:"skew_after"` // max/mean after
}

// utilStats returns the max and mean of per-node utilization.
func utilStats(c *cluster.Cluster) (max, mean float64) {
	for _, nd := range c.Nodes {
		u := nd.Store().Utilization()
		if u > max {
			max = u
		}
		mean += u
	}
	mean /= float64(len(c.Nodes))
	return max, mean
}

// rebalCorpus writes one file per tree through the mount; sizeOf picks each
// tree's file size (the probe pass uses a uniform tiny size, the measured
// pass the engineered skew).
func rebalCorpus(c *cluster.Cluster, opts RebalanceOptions, sizeOf func(tree int) int) error {
	m := c.Mount(0)
	for tr := 0; tr < opts.Trees; tr++ {
		data := dedupPayload(sizeOf(tr), opts.Seed+uint64(tr)*7919)
		if _, err := m.WriteFile(fmt.Sprintf("/reb%02d/data.bin", tr), data); err != nil {
			return fmt.Errorf("write tree %d: %w", tr, err)
		}
	}
	c.Stabilize()
	return nil
}

// RunRebalance executes the experiment in three passes over one seed:
//
//  1. Probe: tiny uniform writes discover which node owns which tree
//     (placement depends only on names and the seed, never on sizes).
//  2. Sizing: the trees of the most-burdened owner are written big, the
//     rest small, and the resulting per-node stored bytes fix a uniform
//     capacity that puts the hottest node at TargetHot utilization — and
//     fix the water marks relative to the fleet-mean utilization, so
//     "balanced" means within a band of the mean rather than an arbitrary
//     absolute level.
//  3. Measured: the same cluster rebuilt with that capacity and the
//     rebalancer on; maintenance rounds run until the moves stop.
func RunRebalance(opts RebalanceOptions) (*RebalanceResult, error) {
	cfg := koshaCfg()
	cfg.UtilizationLimit = 0.99 // keep foreground redirection out of placement

	// Pass 1: placement probe.
	probe, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
	if err != nil {
		return nil, fmt.Errorf("rebalance probe: %w", err)
	}
	if err := rebalCorpus(probe, opts, func(int) int { return 1 << 10 }); err != nil {
		return nil, fmt.Errorf("rebalance probe: %w", err)
	}
	owner := make([]int, opts.Trees)
	owned := make([]int, opts.Nodes)
	for tr := 0; tr < opts.Trees; tr++ {
		_, i, err := primaryOf(probe, fmt.Sprintf("/reb%02d", tr))
		if err != nil {
			return nil, fmt.Errorf("rebalance probe: %w", err)
		}
		owner[tr] = i
		owned[i]++
	}
	hot := 0
	for i, n := range owned {
		if n > owned[hot] {
			hot = i
		}
	}
	if owned[hot] < 2 {
		return nil, fmt.Errorf("rebalance: hot node owns only %d trees; pick another seed", owned[hot])
	}
	sizeOf := func(tr int) int {
		if owner[tr] == hot {
			return opts.BigFile
		}
		return opts.SmallFile
	}

	// Pass 2: sizing — replay the skewed corpus on unlimited capacity and
	// read off per-node stored bytes.
	sizing, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: cfg})
	if err != nil {
		return nil, fmt.Errorf("rebalance sizing: %w", err)
	}
	if err := rebalCorpus(sizing, opts, sizeOf); err != nil {
		return nil, fmt.Errorf("rebalance sizing: %w", err)
	}
	var usedMax, usedTotal int64
	for _, nd := range sizing.Nodes {
		u := nd.Store().Used()
		usedTotal += u
		if u > usedMax {
			usedMax = u
		}
	}
	capacity := int64(float64(usedMax) / opts.TargetHot)
	meanUtil := float64(usedTotal) / float64(opts.Nodes) / float64(capacity)
	highWater := 1.25 * meanUtil
	lowWater := 1.05 * meanUtil

	// Pass 3: measured run with the rebalancer on.
	mcfg := cfg
	mcfg.MaintRebalance = true
	mcfg.MaintHighWater = highWater
	mcfg.MaintLowWater = lowWater
	caps := make([]int64, opts.Nodes)
	for i := range caps {
		caps[i] = capacity
	}
	c, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: mcfg, Capacities: caps})
	if err != nil {
		return nil, fmt.Errorf("rebalance run: %w", err)
	}
	if err := rebalCorpus(c, opts, sizeOf); err != nil {
		return nil, fmt.Errorf("rebalance run: %w", err)
	}

	res := &RebalanceResult{
		Nodes:     opts.Nodes,
		Trees:     opts.Trees,
		Seed:      opts.Seed,
		Capacity:  capacity,
		UsedTotal: usedTotal,
		HighWater: highWater,
		LowWater:  lowWater,
	}
	res.UtilMaxBefore, res.UtilMeanBefore = utilStats(c)
	if res.UtilMeanBefore > 0 {
		res.SkewBefore = res.UtilMaxBefore / res.UtilMeanBefore
	}

	moves := func() uint64 {
		var total uint64
		for _, nd := range c.Nodes {
			total += nd.Obs().Counter("maint.rebalance.moves").Load()
		}
		return total
	}
	prev := uint64(0)
	for r := 0; r < opts.MaxRounds; r++ {
		for _, nd := range c.Nodes {
			nd.Maint().Tick()
		}
		c.Stabilize()
		res.Rounds++
		cur := moves()
		maxU, _ := utilStats(c)
		if cur == prev && maxU < highWater {
			break
		}
		prev = cur
	}

	res.Moves = moves()
	for _, nd := range c.Nodes {
		res.MovedBytes += nd.Obs().Counter("maint.rebalance.bytes").Load()
	}
	if usedTotal > 0 {
		res.MovedFrac = float64(res.MovedBytes) / float64(usedTotal)
	}
	res.UtilMaxAfter, res.UtilMeanAfter = utilStats(c)
	if res.UtilMeanAfter > 0 {
		res.SkewAfter = res.UtilMaxAfter / res.UtilMeanAfter
	}
	return res, nil
}

// FprintJSON emits the result as an indented JSON document; make ci's smoke
// run greps it for the skew and moved-bytes fields.
func (r *RebalanceResult) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fprint renders the result as a text report.
func (r *RebalanceResult) Fprint(w io.Writer, opts RebalanceOptions) {
	fmt.Fprintf(w, "Capacity-driven rebalancer, %d nodes, %d trees (seed %d)\n", r.Nodes, r.Trees, r.Seed)
	fmt.Fprintf(w, "per-node capacity %d B, %d B stored, water marks %.2f/%.2f\n",
		r.Capacity, r.UsedTotal, r.HighWater, r.LowWater)
	fmt.Fprintf(w, "%-22s %8s %8s %8s\n", "", "max", "mean", "max/mean")
	fmt.Fprintf(w, "%-22s %8.3f %8.3f %8.2fx\n", "utilization before", r.UtilMaxBefore, r.UtilMeanBefore, r.SkewBefore)
	fmt.Fprintf(w, "%-22s %8.3f %8.3f %8.2fx\n", "utilization after", r.UtilMaxAfter, r.UtilMeanAfter, r.SkewAfter)
	fmt.Fprintf(w, "%d moves over %d rounds migrated %d bytes (%.1f%% of stored)\n",
		r.Moves, r.Rounds, r.MovedBytes, r.MovedFrac*100)
}

// FprintCSV renders the before/after rows as CSV.
func (r *RebalanceResult) FprintCSV(w io.Writer, opts RebalanceOptions) {
	fmt.Fprintln(w, "phase,util_max,util_mean,skew")
	fmt.Fprintf(w, "before,%.4f,%.4f,%.4f\n", r.UtilMaxBefore, r.UtilMeanBefore, r.SkewBefore)
	fmt.Fprintf(w, "after,%.4f,%.4f,%.4f\n", r.UtilMaxAfter, r.UtilMeanAfter, r.SkewAfter)
	fmt.Fprintf(w, "moves,%d,%d,%.4f\n", r.Moves, r.MovedBytes, r.MovedFrac)
}
