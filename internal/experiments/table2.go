package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/mab"
	"repro/internal/stats"
)

// Table2Options parameterizes the distribution-level experiment.
type Table2Options struct {
	Nodes    int   // fixed at 4 in the paper
	Levels   []int // distribution levels swept; the paper uses 1..4
	Runs     int
	Workload mab.Config
	Seed     uint64
}

// DefaultTable2Options mirrors Section 6.1.3: 4 nodes, levels 1-4.
func DefaultTable2Options() Table2Options {
	return Table2Options{
		Nodes:    4,
		Levels:   []int{1, 2, 3, 4},
		Runs:     5,
		Workload: mab.Paper51MB(),
		Seed:     2,
	}
}

// Table2Result carries per-level, per-phase times and the overhead of each
// level relative to level 1.
type Table2Result struct {
	Phases   []mab.Phase
	Seconds  map[int]map[mab.Phase]float64 // level -> phase -> seconds
	Totals   map[int]float64
	Overhead map[int]float64 // percent vs level 1 (level 1 -> 0)
}

// RunTable2 executes the Table 2 experiment.
func RunTable2(opts Table2Options) (*Table2Result, error) {
	res := &Table2Result{
		Phases:   mab.Phases,
		Seconds:  make(map[int]map[mab.Phase]float64),
		Totals:   make(map[int]float64),
		Overhead: make(map[int]float64),
	}
	for _, level := range opts.Levels {
		perPhase := make(map[mab.Phase]*stats.Accum)
		for _, p := range mab.Phases {
			perPhase[p] = &stats.Accum{}
		}
		total := &stats.Accum{}
		for run := 0; run < opts.Runs; run++ {
			cfg := koshaCfg()
			cfg.DistributionLevel = level
			c, err := cluster.New(cluster.Options{
				Nodes:  opts.Nodes,
				Seed:   opts.Seed + uint64(run)*104729,
				Config: cfg,
			})
			if err != nil {
				return nil, fmt.Errorf("table2 level=%d run=%d: %w", level, run, err)
			}
			r, err := mab.Run(mab.NewKoshaFS(c.Mount(0)), mab.Generate(opts.Workload, opts.Seed))
			if err != nil {
				return nil, fmt.Errorf("table2 level=%d run=%d: %w", level, run, err)
			}
			for _, p := range mab.Phases {
				perPhase[p].Add(r.Seconds(p))
			}
			total.Add(r.Total().Seconds())
		}
		cells := make(map[mab.Phase]float64)
		for _, p := range mab.Phases {
			cells[p] = perPhase[p].Mean()
		}
		res.Seconds[level] = cells
		res.Totals[level] = total.Mean()
	}
	base := res.Totals[opts.Levels[0]]
	for _, level := range opts.Levels {
		res.Overhead[level] = (res.Totals[level]/base - 1) * 100
	}
	return res, nil
}

// Fprint renders the table in the paper's row layout.
func (r *Table2Result) Fprint(w io.Writer, opts Table2Options) {
	fmt.Fprintf(w, "Table 2: MAB on Kosha as the distribution level increases (%d nodes, simulated seconds)\n", opts.Nodes)
	fmt.Fprintf(w, "%-10s", "Benchmark")
	for _, l := range opts.Levels {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("Dist-lvl %d", l))
	}
	fmt.Fprintln(w)
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-10s", p)
		for _, l := range opts.Levels {
			fmt.Fprintf(w, " %10.2f", r.Seconds[l][p])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "Total")
	for _, l := range opts.Levels {
		fmt.Fprintf(w, " %10.2f", r.Totals[l])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "overhead")
	for _, l := range opts.Levels {
		fmt.Fprintf(w, " %9.1f%%", r.Overhead[l])
	}
	fmt.Fprintln(w)
}
