package experiments

import "testing"

// quickStreamOptions is the scaled-down shape koshabench -quick uses; the
// acceptance thresholds are pinned against it.
func quickStreamOptions() StreamOptions {
	opts := DefaultStreamOptions()
	opts.FileBytes = 8 << 20
	opts.RandReads = 8
	opts.WriteCount = 64
	return opts
}

// TestStreamAcceptance pins the PR's acceptance criteria: the windowed scan
// issues at least 3x fewer data RPCs (and models higher throughput) than
// stop-and-wait, and write-back coalesces the small sequential writes into
// at most 1/4 of the baseline's WRITE messages.
func TestStreamAcceptance(t *testing.T) {
	res, err := RunStream(quickStreamOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadRPCRatio < 3 {
		t.Errorf("sequential read RPC ratio = %.2f (%d -> %d), want >= 3",
			res.ReadRPCRatio, res.SeqRPCsBase, res.SeqRPCsStream)
	}
	if res.SeqMBpsStream <= res.SeqMBpsBase {
		t.Errorf("modeled sequential throughput did not improve: %.1f -> %.1f MB/s",
			res.SeqMBpsBase, res.SeqMBpsStream)
	}
	if res.WriteRPCRatio < 4 {
		t.Errorf("write RPC ratio = %.2f (%d -> %d), want >= 4",
			res.WriteRPCRatio, res.WriteRPCsBase, res.WriteRPCsStream)
	}
	if res.ReadaheadHits == 0 {
		t.Error("streamed arm recorded no readahead hits")
	}
	if res.WBFlushes == 0 || res.WBCoalesced < res.WBFlushes {
		t.Errorf("write-back counters off: coalesced=%d flushes=%d", res.WBCoalesced, res.WBFlushes)
	}
	// Random pokes must not regress: the window is cancelled on seek, each
	// poke stays a single data RPC.
	if res.RandRPCsStream > res.RandRPCsBase {
		t.Errorf("random reads regressed: %d -> %d RPCs", res.RandRPCsBase, res.RandRPCsStream)
	}
}
