package experiments

import (
	"strings"
	"testing"

	"repro/internal/mab"
	"repro/internal/trace"
)

func quickTable1Options() Table1Options {
	return Table1Options{
		NodeCounts: []int{1, 4},
		Runs:       2,
		Workload:   mab.Tiny(),
		Seed:       11,
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	opts := quickTable1Options()
	res, err := RunTable1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NFSTotal <= 0 {
		t.Fatal("baseline total not positive")
	}
	// Kosha is never faster than NFS, and more nodes never reduce the
	// total (the (N-1)/N term grows).
	t1 := res.KoshaTotal[1]
	t4 := res.KoshaTotal[4]
	if t1.Overhead < 0 {
		t.Fatalf("Kosha-1 faster than NFS: %+v", t1)
	}
	if t4.Seconds < t1.Seconds {
		t.Fatalf("Kosha-4 (%.2fs) faster than Kosha-1 (%.2fs)", t4.Seconds, t1.Seconds)
	}
	// Printing works and mentions every phase.
	var sb strings.Builder
	res.Fprint(&sb, opts)
	for _, p := range mab.Phases {
		if !strings.Contains(sb.String(), p.String()) {
			t.Fatalf("printout missing phase %v", p)
		}
	}
}

func TestTable1PaperScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale workload")
	}
	opts := DefaultTable1Options()
	opts.Runs = 8
	res, err := RunTable1(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The reproduced quantities (Section 6.1.1): a small fixed overhead
	// (paper: 4.1%) plus a slowly growing term with node count (paper:
	// +1.5% from 1 to 8, total < 6%-ish). Accept a generous band.
	fixed := res.KoshaTotal[1].Overhead
	total8 := res.KoshaTotal[8].Overhead
	if fixed < 1 || fixed > 9 {
		t.Errorf("fixed overhead %.1f%% outside [1,9]", fixed)
	}
	if total8 < fixed {
		t.Errorf("8-node overhead %.1f%% below fixed %.1f%%", total8, fixed)
	}
	if total8 > 12 {
		t.Errorf("8-node overhead %.1f%% implausibly high", total8)
	}
	if marginal := total8 - fixed; marginal > 5 {
		t.Errorf("marginal overhead %.1f%% too large", marginal)
	}
}

func TestTable2LevelsMonotoneCost(t *testing.T) {
	opts := Table2Options{
		Nodes:    4,
		Levels:   []int{1, 3},
		Runs:     2,
		Workload: mab.Tiny(),
		Seed:     12,
	}
	res, err := RunTable2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead[1] != 0 {
		t.Fatalf("level-1 overhead = %v, want 0", res.Overhead[1])
	}
	if res.Overhead[3] < 0 {
		t.Fatalf("level-3 cheaper than level-1: %v", res.Overhead[3])
	}
	// mkdir is the phase hit hardest by deeper distribution (Section
	// 6.1.3 explains the two hashes + link creation).
	mk1, mk3 := res.Seconds[1][mab.PhaseMkdir], res.Seconds[3][mab.PhaseMkdir]
	if mk3 <= mk1 {
		t.Fatalf("mkdir not penalized at level 3: %.3f vs %.3f", mk3, mk1)
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	if !strings.Contains(sb.String(), "overhead") {
		t.Fatal("printout missing overhead row")
	}
}

func TestFigure5ConvergesTowardPerFileBound(t *testing.T) {
	opts := Figure5Options{
		Nodes:    16,
		Replicas: 3,
		Levels:   []int{1, 4, 8},
		Seeds:    10,
		Trace:    trace.SmallFSConfig(),
		Seed:     13,
	}
	res, err := RunFigure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Means are pinned at 100/16 by construction.
	for _, row := range res.Rows {
		if row.MeanFilesPct < 6.2 || row.MeanFilesPct > 6.3 {
			t.Fatalf("level %d mean files %% = %v", row.Level, row.MeanFilesPct)
		}
	}
	// Balance improves (stddev shrinks) from level 1 to level 8, and the
	// per-file bound is at least as good as any directory-level row.
	l1, l8 := res.Rows[0], res.Rows[2]
	if l8.StdFilesPct >= l1.StdFilesPct {
		t.Fatalf("file-count stddev did not shrink: L1 %.2f vs L8 %.2f", l1.StdFilesPct, l8.StdFilesPct)
	}
	for _, row := range res.Rows {
		if res.PerFile.StdFilesPct > row.StdFilesPct+0.3 {
			t.Fatalf("per-file bound %.2f worse than level %d (%.2f)",
				res.PerFile.StdFilesPct, row.Level, row.StdFilesPct)
		}
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	if !strings.Contains(sb.String(), "per-file") {
		t.Fatal("printout missing bound row")
	}
}

func TestFigure6MoreAttemptsFewerFailures(t *testing.T) {
	opts := DefaultFigure6Options()
	opts.Trace = trace.SmallFSConfig()
	for i := range opts.Capacities {
		opts.Capacities[i] /= 256 // scale with the smaller trace
	}
	opts.Attempts = []int{0, 4}
	opts.Seeds = 6
	res, err := RunFigure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	noRedir, redir4 := res.Curves[0], res.Curves[1]
	last := len(noRedir.Failure) - 1
	if noRedir.Failure[last] <= 0 {
		t.Fatal("no-redirection run never failed despite overcommit")
	}
	if redir4.Failure[last] >= noRedir.Failure[last] {
		t.Fatalf("4 redirects (%.4f) not better than none (%.4f)",
			redir4.Failure[last], noRedir.Failure[last])
	}
	// With redirection, failures stay near zero through 60%% utilization.
	for b, u := range redir4.Util {
		if u <= 0.6 && redir4.Failure[b] > 0.01 {
			t.Fatalf("failure ratio %.4f at %.0f%%%% utilization with 4 redirects",
				redir4.Failure[b], u*100)
		}
	}
	// The final bucket carries the worst cumulative ratio region; it
	// must stay within the paper's "does not exceed 12%" observation for
	// the 4-redirect configuration.
	if redir4.Failure[last] > 0.12 {
		t.Fatalf("4-redirect terminal failure ratio %.4f > 0.12", redir4.Failure[last])
	}
}

func TestFigure7ReplicationRaisesAvailability(t *testing.T) {
	opts := Figure7Options{
		Nodes:    100,
		Level:    3,
		Replicas: []int{0, 1, 3},
		Runs:     4,
		Trace:    trace.SmallFSConfig(),
		Avail:    trace.CorporateAvailConfig(100),
		Seed:     14,
	}
	res, err := RunFigure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1, k3 := res.Series[0], res.Series[1], res.Series[2]
	if k0.AveragePct >= k1.AveragePct || k1.AveragePct > k3.AveragePct {
		t.Fatalf("availability not monotone in replicas: %v %v %v",
			k0.AveragePct, k1.AveragePct, k3.AveragePct)
	}
	// Kosha-0 dips hard at the spike; Kosha-3 effectively does not.
	if k0.SpikeUnavail < 5 {
		t.Fatalf("Kosha-0 spike unavailability only %.2f%%", k0.SpikeUnavail)
	}
	if k3.SpikeUnavail > 1 {
		t.Fatalf("Kosha-3 spike unavailability %.2f%%", k3.SpikeUnavail)
	}
	// Near-100%% availability with three replicas (the paper's 99.99%).
	if k3.AveragePct < 99.9 {
		t.Fatalf("Kosha-3 average availability %.4f%%", k3.AveragePct)
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	if !strings.Contains(sb.String(), "Kosha-3") {
		t.Fatal("printout missing series")
	}
}

func TestModelMatchesPaperDiscussion(t *testing.T) {
	opts := DefaultModelOptions()
	rows := RunModel(opts)
	last := rows[len(rows)-1]
	if last.N != 10000 {
		t.Fatalf("last row N = %d", last.N)
	}
	// "For a typical network of 10,000 nodes, the maximum value of H is 4"
	if last.Hops != 4 {
		t.Fatalf("H(10000) = %d, want 4", last.Hops)
	}
	// "the overhead D does not exceed 4ms plus a constant factor"
	if last.D.Milliseconds() > 4 {
		t.Fatalf("D(10000) = %v, want <= 4ms + constant", last.D)
	}
	// D is nondecreasing in N.
	for i := 1; i < len(rows); i++ {
		if rows[i].D < rows[i-1].D {
			t.Fatalf("D not monotone at N=%d", rows[i].N)
		}
	}
	var sb strings.Builder
	FprintModel(&sb, rows, opts)
	if !strings.Contains(sb.String(), "10000") {
		t.Fatal("printout missing 10^4 row")
	}
}

func TestScaleSweepLogarithmicHops(t *testing.T) {
	sopts := ScaleOptions{
		NodeCounts: []int{16, 48},
		Epochs:     4,
		Ops:        80,
		Seed:       19,
		FS:         trace.SmallFSConfig(),
	}
	res, err := RunScale(sopts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ProbeMeanHops <= 0 || row.MeanOpMS <= 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
	}
	// The 3x population growth must cost well under 2x the hops — the
	// log16 scaling the 100->1000 threshold test in internal/scale pins
	// at full size.
	if r0, r1 := res.Rows[0], res.Rows[1]; r1.ProbeMeanHops > 2*r0.ProbeMeanHops {
		t.Fatalf("hop growth super-logarithmic: %.2f -> %.2f", r0.ProbeMeanHops, r1.ProbeMeanHops)
	}
	var sb strings.Builder
	res.Fprint(&sb, sopts)
	if !strings.Contains(sb.String(), "48") {
		t.Fatal("printout missing 48-node row")
	}
	sb.Reset()
	if err := res.FprintJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "probe_mean_hops") {
		t.Fatal("json missing probe_mean_hops")
	}
	sb.Reset()
	res.FprintCSV(&sb, sopts)
	if !strings.Contains(sb.String(), "nodes,mean_route_hops") {
		t.Fatal("csv header missing")
	}
}

func TestCacheAblationCutsRPCs(t *testing.T) {
	opts := CacheAblationOptions{
		Nodes:       4,
		Dirs:        3,
		FilesPerDir: 10,
		Sweeps:      2,
		Seed:        9,
	}
	res, err := RunCacheAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Off.RPCs == 0 || res.Off.Ops != res.On.Ops {
		t.Fatalf("arms not comparable: %+v vs %+v", res.Off, res.On)
	}
	// Acceptance bar: caching removes at least 40% of the NFS round
	// trips on the readdir+stat-all-entries scan.
	if res.RPCReductionPct < 40 {
		t.Fatalf("RPC reduction %.1f%% < 40%%: on=%d off=%d",
			res.RPCReductionPct, res.On.RPCs, res.Off.RPCs)
	}
	if res.On.Seconds > res.Off.Seconds {
		t.Fatalf("caching slower: %.3fs vs %.3fs", res.On.Seconds, res.Off.Seconds)
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	if !strings.Contains(sb.String(), "RPC reduction") {
		t.Fatal("printout missing reduction line")
	}
}

func TestChurnAvailabilityMeetsFig8Bar(t *testing.T) {
	opts := ChurnOptions{
		Nodes:    8,
		Replicas: []int{2},
		Failed:   []int{0, 1},
		Files:    24,
		Runs:     2,
		Seed:     17,
	}
	res, err := RunChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Acceptance bar (paper Fig 8): with K=2 and one failed node,
		// at least 99% of file accesses succeed via failover.
		if row.Failed <= 1 && row.Availability < 99 {
			t.Fatalf("K=%d failed=%d availability %.2f%% < 99%%",
				row.Replicas, row.Failed, row.Availability)
		}
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	if !strings.Contains(sb.String(), "availability") {
		t.Fatal("printout missing availability column")
	}
}
