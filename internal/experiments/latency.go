package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
)

// LatencyOptions parameterizes the per-operation latency experiment: a mixed
// metadata/data workload on the paper's 8-node cluster shape, reported as
// latency percentiles straight from the obs histograms every node maintains,
// rather than as aggregate runtimes.
type LatencyOptions struct {
	Nodes       int
	Dirs        int // distributed directories created
	FilesPerDir int // files written and read back per directory
	FileSize    int // bytes per file
	Seed        uint64
	Sample      bool // retain a cluster-wide time-series sample per phase
}

// DefaultLatencyOptions uses the Table 1/2 cluster shape.
func DefaultLatencyOptions() LatencyOptions {
	return LatencyOptions{
		Nodes:       8,
		Dirs:        6,
		FilesPerDir: 12,
		FileSize:    16 << 10,
		Seed:        11,
	}
}

// OpLatency is one operation's simulated-time latency distribution, in
// milliseconds.
type OpLatency struct {
	Op     string  `json:"op"`
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// LatencyResult aggregates every node's metric registry after the workload.
type LatencyResult struct {
	Nodes         int         `json:"nodes"`
	Ops           []OpLatency `json:"ops"`
	MeanRouteHops float64     `json:"mean_route_hops"`
	Routes        uint64      `json:"routes"`
	Replications  uint64      `json:"replications"`
	Failovers     uint64      `json:"failovers"`
	Resyncs       uint64      `json:"resyncs"`
	// Replica-maintenance and streaming-I/O effectiveness counters, summed
	// over the cluster.
	SyncBytes        uint64 `json:"repl_sync_bytes"`
	SyncFilesSent    uint64 `json:"repl_sync_files_sent"`
	SyncFilesSkipped uint64 `json:"repl_sync_files_skipped"`
	SyncDigestHits   uint64 `json:"repl_sync_digest_hits"`
	SyncDigestMisses uint64 `json:"repl_sync_digest_misses"`
	ReadaheadHits    uint64 `json:"io_readahead_hits"`
	ReadaheadWasted  uint64 `json:"io_readahead_wasted"`
	WBCoalesced      uint64 `json:"io_writeback_coalesced"`
	WBFlushes        uint64 `json:"io_writeback_flushes"`
	// Samples is the per-phase cluster-wide time series (populate, one per
	// read-back directory, final sync), present when Options.Sample is set.
	Samples []obs.Sample `json:"samples,omitempty"`
}

// RunLatency builds a cluster, runs a create/write/lookup/read/readdir mix
// with the client rotating across nodes (every node both serves and issues
// operations, as in the paper's testbed), and snapshots the merged histograms.
func RunLatency(opts LatencyOptions) (*LatencyResult, error) {
	c, err := cluster.New(cluster.Options{Nodes: opts.Nodes, Seed: opts.Seed, Config: koshaCfg()})
	if err != nil {
		return nil, err
	}
	ms := make([]*core.Mount, opts.Nodes)
	for i := range ms {
		ms[i] = c.Mount(i)
	}
	var sampler *obs.Sampler
	tick := func() {}
	if opts.Sample {
		sampler = obs.NewSamplerFunc(func() obs.Snapshot {
			var agg obs.Snapshot
			for _, nd := range c.Nodes {
				agg.Merge(nd.Obs().Snapshot())
			}
			return agg
		}, 0)
		tick = func() { sampler.TickNow(time.Now()) }
		tick() // baseline
	}
	for d := 0; d < opts.Dirs; d++ {
		m := ms[d%opts.Nodes]
		data := make([]byte, opts.FileSize)
		for f := 0; f < opts.FilesPerDir; f++ {
			p := fmt.Sprintf("/lat%02d/f%03d", d, f)
			if _, err := m.WriteFile(p, data); err != nil {
				return nil, fmt.Errorf("populate %s: %w", p, err)
			}
		}
	}
	tick()
	// Read everything back through a different node than the writer so the
	// resolver routes instead of answering from the writer's warm caches.
	for d := 0; d < opts.Dirs; d++ {
		m := ms[(d+1)%opts.Nodes]
		dir := fmt.Sprintf("/lat%02d", d)
		vh, _, _, err := m.LookupPath(dir)
		if err != nil {
			return nil, fmt.Errorf("lookup %s: %w", dir, err)
		}
		ents, _, err := m.Readdir(vh)
		if err != nil {
			return nil, fmt.Errorf("readdir %s: %w", dir, err)
		}
		for _, e := range ents {
			if _, _, err := m.ReadFile(dir + "/" + e.Name); err != nil {
				return nil, fmt.Errorf("read %s/%s: %w", dir, e.Name, err)
			}
		}
		tick()
	}
	for _, nd := range c.Nodes {
		nd.SyncReplicas()
	}
	tick()

	res := &LatencyResult{Nodes: opts.Nodes}
	var agg obs.Snapshot
	var ev obs.EventsSnapshot
	for _, nd := range c.Nodes {
		agg.Merge(nd.Obs().Snapshot())
		ev.Merge(nd.Events().Snapshot(0))
	}
	for _, name := range agg.HistNames() {
		op := strings.TrimPrefix(name, "op.")
		if op == name {
			continue
		}
		h := agg.Hists[name]
		if h.Count == 0 {
			continue
		}
		res.Ops = append(res.Ops, OpLatency{
			Op:     op,
			Count:  h.Count,
			MeanMS: toMS(h.Mean()),
			P50MS:  toMS(h.Quantile(50)),
			P95MS:  toMS(h.Quantile(95)),
			P99MS:  toMS(h.Quantile(99)),
			MaxMS:  toMS(time.Duration(h.MaxNS)),
		})
	}
	res.MeanRouteHops = agg.MeanRatio("route.hops", "route.count")
	res.Routes = agg.Counters["route.count"]
	res.Replications = agg.Counters["replicate.count"]
	res.Failovers = ev.Counts[obs.EvFailover]
	res.Resyncs = ev.Counts[obs.EvResync]
	res.SyncBytes = agg.Counters["repl.sync.bytes"]
	res.SyncFilesSent = agg.Counters["repl.sync.files.sent"]
	res.SyncFilesSkipped = agg.Counters["repl.sync.files.skipped"]
	res.SyncDigestHits = agg.Counters["repl.sync.digest.hits"]
	res.SyncDigestMisses = agg.Counters["repl.sync.digest.misses"]
	res.ReadaheadHits = agg.Counters["io.readahead.hits"]
	res.ReadaheadWasted = agg.Counters["io.readahead.wasted"]
	res.WBCoalesced = agg.Counters["io.writeback.coalesced"]
	res.WBFlushes = agg.Counters["io.writeback.flushes"]
	if sampler != nil {
		res.Samples = sampler.Recent(0)
	}
	return res, nil
}

func toMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FprintJSON emits the result as an indented JSON document; make ci's smoke
// run greps it for the percentile fields.
func (r *LatencyResult) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fprint renders the result as a text table.
func (r *LatencyResult) Fprint(w io.Writer, opts LatencyOptions) {
	fmt.Fprintf(w, "Per-operation latency, %d nodes (%d dirs x %d files, %d B each)\n",
		r.Nodes, opts.Dirs, opts.FilesPerDir, opts.FileSize)
	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s %10s %10s\n",
		"op", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, o := range r.Ops {
		fmt.Fprintf(w, "%-14s %8d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			o.Op, o.Count, o.MeanMS, o.P50MS, o.P95MS, o.P99MS, o.MaxMS)
	}
	fmt.Fprintf(w, "mean route hops %.2f over %d routes; %d replications, %d failovers, %d resyncs\n",
		r.MeanRouteHops, r.Routes, r.Replications, r.Failovers, r.Resyncs)
	if hm := r.SyncDigestHits + r.SyncDigestMisses; hm > 0 {
		fmt.Fprintf(w, "replica sync: %d bytes, %d files sent, %d skipped, digest hit %.1f%% (%d/%d)\n",
			r.SyncBytes, r.SyncFilesSent, r.SyncFilesSkipped,
			float64(r.SyncDigestHits)/float64(hm)*100, r.SyncDigestHits, hm)
	}
	if r.ReadaheadHits+r.ReadaheadWasted+r.WBFlushes > 0 {
		fmt.Fprintf(w, "streaming io: readahead %d hits / %d wasted; write-back %d coalesced over %d flushes\n",
			r.ReadaheadHits, r.ReadaheadWasted, r.WBCoalesced, r.WBFlushes)
	}
	if len(r.Samples) > 0 {
		fmt.Fprintf(w, "retained %d time-series samples (emit with -sample -format csv)\n", len(r.Samples))
	}
}

// FprintCSV renders the per-op rows as CSV, followed by comment lines for
// the cluster-summed maintenance counters (and the time-series samples in
// long form when retained, so one capture feeds a plotting pipeline).
func (r *LatencyResult) FprintCSV(w io.Writer, opts LatencyOptions) {
	fmt.Fprintln(w, "op,count,mean_ms,p50_ms,p95_ms,p99_ms,max_ms")
	for _, o := range r.Ops {
		fmt.Fprintf(w, "%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			o.Op, o.Count, o.MeanMS, o.P50MS, o.P95MS, o.P99MS, o.MaxMS)
	}
	fmt.Fprintf(w, "# repl.sync.bytes=%d repl.sync.files.sent=%d repl.sync.files.skipped=%d repl.sync.digest.hits=%d repl.sync.digest.misses=%d\n",
		r.SyncBytes, r.SyncFilesSent, r.SyncFilesSkipped, r.SyncDigestHits, r.SyncDigestMisses)
	fmt.Fprintf(w, "# io.readahead.hits=%d io.readahead.wasted=%d io.writeback.coalesced=%d io.writeback.flushes=%d\n",
		r.ReadaheadHits, r.ReadaheadWasted, r.WBCoalesced, r.WBFlushes)
	if len(r.Samples) > 0 {
		obs.WriteSamplesCSV(w, r.Samples)
	}
}
