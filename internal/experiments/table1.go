// Package experiments regenerates every table and figure in the paper's
// evaluation (Section 6): Table 1 (MAB scalability vs NFS), Table 2 (MAB vs
// distribution level), Figure 5 (load distribution), Figure 6 (redirection
// vs utilization), Figure 7 (availability under the machine trace), and the
// Section 6.1.2 analytic overhead model. Each experiment returns structured
// rows and can print itself in the paper's layout.
//
// Absolute times come from the simulated cost model (internal/simnet), so
// they will not match the paper's wall-clock seconds; the comparisons the
// paper draws — overhead percentages, trends across nodes/levels, who wins
// where — are the reproduced quantities.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mab"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Table1Options parameterizes the scalability experiment.
type Table1Options struct {
	NodeCounts []int // overlay sizes; the paper uses 1, 2, 4, 8
	Runs       int   // nodeId-assignment seeds averaged ("50 runs")
	Workload   mab.Config
	Seed       uint64
}

// DefaultTable1Options mirrors Section 6.1.1: distribution level 1,
// replication factor 1, 35 GB contributed per node (no redirection), MAB
// with the 51 MB distribution.
func DefaultTable1Options() Table1Options {
	return Table1Options{
		NodeCounts: []int{1, 2, 4, 8},
		Runs:       5,
		Workload:   mab.Paper51MB(),
		Seed:       1,
	}
}

// Table1Cell is one (phase, configuration) measurement.
type Table1Cell struct {
	Seconds  float64
	Overhead float64 // percent vs the NFS baseline; NaN for the baseline
}

// Table1Result carries the full table.
type Table1Result struct {
	Phases     []mab.Phase
	NFS        map[mab.Phase]float64 // baseline seconds per phase
	NFSTotal   float64
	Kosha      map[int]map[mab.Phase]Table1Cell // node count -> phase -> cell
	KoshaTotal map[int]Table1Cell
}

// koshaCfg is the Table 1/2 node configuration: replication factor 1,
// 35 GB contributed per node. Trace retention is off — experiments read
// the metric histograms, and per-op trace building would tax every arm of
// every benchmark for records nothing dumps.
func koshaCfg() core.Config {
	return core.Config{
		DistributionLevel: 1,
		Replicas:          1,
		Capacity:          35 << 30,
		TraceBufSize:      -1,
		// Ring-walk reuse is wall-clock-TTL-driven; off so measured costs are
		// a pure function of the workload.
		RingCacheTTL: -1,
	}
}

// RunTable1 executes the Table 1 experiment.
func RunTable1(opts Table1Options) (*Table1Result, error) {
	res := &Table1Result{
		Phases:     mab.Phases,
		NFS:        make(map[mab.Phase]float64),
		Kosha:      make(map[int]map[mab.Phase]Table1Cell),
		KoshaTotal: make(map[int]Table1Cell),
	}

	// Baseline: two machines, client and NFS server.
	w := mab.Generate(opts.Workload, opts.Seed)
	base, err := mab.Run(mab.NewBaseline(simnet.LAN100, simnet.Disk7200), w)
	if err != nil {
		return nil, fmt.Errorf("table1 baseline: %w", err)
	}
	for _, p := range mab.Phases {
		res.NFS[p] = base.Seconds(p)
	}
	res.NFSTotal = base.Total().Seconds()

	for _, n := range opts.NodeCounts {
		perPhase := make(map[mab.Phase]*stats.Accum)
		for _, p := range mab.Phases {
			perPhase[p] = &stats.Accum{}
		}
		total := &stats.Accum{}
		for run := 0; run < opts.Runs; run++ {
			c, err := cluster.New(cluster.Options{
				Nodes:  n,
				Seed:   opts.Seed + uint64(run)*7919,
				Config: koshaCfg(),
			})
			if err != nil {
				return nil, fmt.Errorf("table1 n=%d run=%d: %w", n, run, err)
			}
			r, err := mab.Run(mab.NewKoshaFS(c.Mount(0)), mab.Generate(opts.Workload, opts.Seed))
			if err != nil {
				return nil, fmt.Errorf("table1 n=%d run=%d: %w", n, run, err)
			}
			for _, p := range mab.Phases {
				perPhase[p].Add(r.Seconds(p))
			}
			total.Add(r.Total().Seconds())
		}
		cells := make(map[mab.Phase]Table1Cell)
		for _, p := range mab.Phases {
			sec := perPhase[p].Mean()
			cells[p] = Table1Cell{
				Seconds:  sec,
				Overhead: (sec/res.NFS[p] - 1) * 100,
			}
		}
		res.Kosha[n] = cells
		res.KoshaTotal[n] = Table1Cell{
			Seconds:  total.Mean(),
			Overhead: (total.Mean()/res.NFSTotal - 1) * 100,
		}
	}
	return res, nil
}

// Fprint renders the table in the paper's row layout.
func (r *Table1Result) Fprint(w io.Writer, opts Table1Options) {
	fmt.Fprintf(w, "Table 1: MAB on Kosha with increasing number of nodes (simulated seconds)\n")
	fmt.Fprintf(w, "%-10s %10s", "Benchmark", "NFS")
	for _, n := range opts.NodeCounts {
		fmt.Fprintf(w, " %9s-%d%6s", "Kosha", n, "ovhd")
	}
	fmt.Fprintln(w)
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-10s %10.2f", p, r.NFS[p])
		for _, n := range opts.NodeCounts {
			c := r.Kosha[n][p]
			fmt.Fprintf(w, " %11.2f %5.1f%%", c.Seconds, c.Overhead)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s %10.2f", "Total", r.NFSTotal)
	for _, n := range opts.NodeCounts {
		c := r.KoshaTotal[n]
		fmt.Fprintf(w, " %11.2f %5.1f%%", c.Seconds, c.Overhead)
	}
	fmt.Fprintln(w)
}
