package experiments

import (
	"strings"
	"testing"
)

// TestRebalanceAcceptance is the rebalancer's acceptance bar: the engineered
// fixture must start with its hottest node above twice the fleet-mean
// utilization, and a bounded number of maintenance rounds must flatten that
// to within 1.3x of the mean while migrating at most half the stored bytes.
func TestRebalanceAcceptance(t *testing.T) {
	opts := DefaultRebalanceOptions()
	res, err := RunRebalance(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkewBefore <= 2 {
		t.Fatalf("fixture skew %.2fx, want > 2x (max %.3f mean %.3f)",
			res.SkewBefore, res.UtilMaxBefore, res.UtilMeanBefore)
	}
	if res.Moves == 0 || res.MovedBytes == 0 {
		t.Fatalf("rebalancer made no moves: %+v", res)
	}
	if res.SkewAfter > 1.3 {
		t.Fatalf("post-rebalance skew %.2fx, want <= 1.3x (max %.3f mean %.3f, %d moves)",
			res.SkewAfter, res.UtilMaxAfter, res.UtilMeanAfter, res.Moves)
	}
	if res.MovedFrac > 0.5 {
		t.Fatalf("moved %.1f%% of stored bytes, want <= 50%% (%d of %d)",
			res.MovedFrac*100, res.MovedBytes, res.UsedTotal)
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	for _, row := range []string{"utilization before", "utilization after", "moves over"} {
		if !strings.Contains(sb.String(), row) {
			t.Fatalf("printout missing %q row", row)
		}
	}
	var jb strings.Builder
	if err := res.FprintJSON(&jb); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"skew_before", "skew_after", "moved_bytes", "moved_fraction"} {
		if !strings.Contains(jb.String(), field) {
			t.Fatalf("JSON missing %q", field)
		}
	}
	var cb strings.Builder
	res.FprintCSV(&cb, opts)
	if !strings.Contains(cb.String(), "after,") {
		t.Fatal("CSV missing after row")
	}
}
