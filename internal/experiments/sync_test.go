package experiments

import (
	"strings"
	"testing"
)

// TestSyncDeltaUnderTenPercent is the anti-entropy acceptance bar: touching
// one file in a 100-file replicated subtree must refresh the replica for
// less than 10% of the bytes a full-tree re-push moves.
func TestSyncDeltaUnderTenPercent(t *testing.T) {
	opts := DefaultSyncOptions()
	res, err := RunSync(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullBytes == 0 || res.DeltaBytes == 0 {
		t.Fatalf("arm moved no bytes: full=%d delta=%d", res.FullBytes, res.DeltaBytes)
	}
	if res.DeltaBytes*10 >= res.FullBytes {
		t.Fatalf("delta sync moved %d bytes, >= 10%% of the %d-byte full push (%.1f%%)",
			res.DeltaBytes, res.FullBytes, res.DeltaPct)
	}
	if res.FilesSent != 1 {
		t.Fatalf("delta sync shipped %d files, want exactly the touched one", res.FilesSent)
	}
	if res.FilesSkipped < uint64(opts.Files-1) {
		t.Fatalf("delta sync skipped %d files, want >= %d", res.FilesSkipped, opts.Files-1)
	}
	var sb strings.Builder
	res.Fprint(&sb, opts)
	if !strings.Contains(sb.String(), "merkle delta") {
		t.Fatal("printout missing delta row")
	}
	var jb strings.Builder
	if err := res.FprintJSON(&jb); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"full_bytes", "delta_bytes", "delta_pct"} {
		if !strings.Contains(jb.String(), field) {
			t.Fatalf("JSON missing %q", field)
		}
	}
}
