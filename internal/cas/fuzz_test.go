package cas

import (
	"bytes"
	"testing"
)

// FuzzChunker pins the chunker's contract on arbitrary input: splitting is
// deterministic, every chunk hash-verifies against its slice of the input,
// concatenating the chunks reproduces the input exactly, chunk sizes stay
// within [MinChunk, MaxChunk] (short final chunk excepted), and the
// fixed-grid fallback round-trips too. Seed corpus lives in
// testdata/fuzz/FuzzChunker.
func FuzzChunker(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello kosha"))
	f.Add(bytes.Repeat([]byte{0}, MinChunk+1))
	f.Add(bytes.Repeat([]byte("abcdefgh"), 5000))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := Split(data)
		var off int64
		for i, c := range m {
			end := off + int64(c.Len)
			if c.Len == 0 || end > int64(len(data)) {
				t.Fatalf("chunk %d bad extent off=%d len=%d total=%d", i, off, c.Len, len(data))
			}
			if c.Len > MaxChunk {
				t.Fatalf("chunk %d len %d > MaxChunk", i, c.Len)
			}
			if i < len(m)-1 && c.Len < MinChunk {
				t.Fatalf("non-final chunk %d len %d < MinChunk", i, c.Len)
			}
			if SumChunk(data[off:end]) != c.Hash {
				t.Fatalf("chunk %d hash mismatch", i)
			}
			off = end
		}
		if off != int64(len(data)) {
			t.Fatalf("manifest covers %d of %d bytes", off, len(data))
		}
		if !Split(data).Equal(m) {
			t.Fatal("Split not deterministic")
		}
		fm := SplitFixed(data, 32<<10)
		if fm.TotalLen() != int64(len(data)) {
			t.Fatalf("SplitFixed covers %d of %d bytes", fm.TotalLen(), len(data))
		}
	})
}
