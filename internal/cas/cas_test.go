package cas

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/localfs"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func randBytes(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func reassemble(t *testing.T, data []byte, m Manifest) {
	t.Helper()
	var off int64
	for i, c := range m {
		end := off + int64(c.Len)
		if end > int64(len(data)) {
			t.Fatalf("chunk %d overruns data: off=%d len=%d total=%d", i, off, c.Len, len(data))
		}
		if SumChunk(data[off:end]) != c.Hash {
			t.Fatalf("chunk %d hash mismatch", i)
		}
		off = end
	}
	if off != int64(len(data)) {
		t.Fatalf("manifest covers %d of %d bytes", off, len(data))
	}
}

func TestSplitRoundTripAndBounds(t *testing.T) {
	for _, n := range []int{0, 1, MinChunk - 1, MinChunk, MinChunk + 1, 300 << 10, 2 << 20} {
		data := randBytes(int64(n)+7, n)
		m := Split(data)
		reassemble(t, data, m)
		if int64(len(data)) != m.TotalLen() {
			t.Fatalf("n=%d TotalLen=%d", n, m.TotalLen())
		}
		for i, c := range m {
			if c.Len > MaxChunk {
				t.Fatalf("n=%d chunk %d len %d > MaxChunk", n, i, c.Len)
			}
			if i < len(m)-1 && c.Len < MinChunk {
				t.Fatalf("n=%d non-final chunk %d len %d < MinChunk", n, i, c.Len)
			}
		}
		if !Split(data).Equal(m) {
			t.Fatalf("n=%d Split not deterministic", n)
		}
	}
}

// A small edit in the middle of a large file must leave all but O(1) chunks
// identical — the property block-level delta sync is built on.
func TestSplitLocalEditRealigns(t *testing.T) {
	data := randBytes(42, 2<<20)
	m1 := Split(data)
	edited := append([]byte(nil), data...)
	for i := 0; i < 16; i++ {
		edited[1<<20+i] ^= 0xff
	}
	m2 := Split(edited)
	have := make(map[Hash]bool, len(m1))
	for _, c := range m1 {
		have[c.Hash] = true
	}
	missing := 0
	for _, c := range m2 {
		if !have[c.Hash] {
			missing++
		}
	}
	if missing == 0 || missing > 3 {
		t.Fatalf("edit changed %d of %d chunks; want 1..3", missing, len(m2))
	}
}

func TestSplitPathologicalContentForcesCuts(t *testing.T) {
	// Constant bytes never hit a boundary; the MaxChunk fallback must cap
	// every chunk.
	data := make([]byte, 1<<20)
	m := Split(data)
	reassemble(t, data, m)
	for i, c := range m {
		if c.Len != MaxChunk && i != len(m)-1 {
			t.Fatalf("chunk %d len %d; want forced MaxChunk cuts", i, c.Len)
		}
	}
}

func TestSplitFixed(t *testing.T) {
	data := randBytes(3, 150<<10)
	m := SplitFixed(data, 64<<10)
	reassemble(t, data, m)
	if len(m) != 3 {
		t.Fatalf("len=%d want 3", len(m))
	}
}

func TestManifestCodecRoundTrip(t *testing.T) {
	m := Split(randBytes(9, 400<<10))
	e := wire.NewEncoder(64)
	PutManifest(e, m)
	PutHashes(e, m.Hashes())
	PutBools(e, []bool{true, false, true})
	d := wire.NewDecoder(e.Bytes())
	if got := GetManifest(d); !got.Equal(m) {
		t.Fatal("manifest round trip mismatch")
	}
	hs := GetHashes(d)
	if len(hs) != len(m) || hs[0] != m[0].Hash {
		t.Fatal("hashes round trip mismatch")
	}
	bs := GetBools(d)
	if len(bs) != 3 || !bs[0] || bs[1] || !bs[2] {
		t.Fatal("bools round trip mismatch")
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRefcountAndGC(t *testing.T) {
	fs := localfs.New(0, simnet.DiskModel{})
	reg := obs.NewRegistry()
	s := NewStore(fs, reg)

	blob := randBytes(11, 300<<10)
	if err := fs.WriteFile("/a", blob); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b", blob); err != nil {
		t.Fatal(err)
	}
	m := Split(blob)
	s.AddFile("/a", m)
	s.AddFile("/b", m)

	st := s.Stats()
	if st.Files != 2 || st.Blocks != len(m) {
		t.Fatalf("stats=%+v want 2 files, %d blocks", st, len(m))
	}
	if st.LogicalBytes != 2*int64(len(blob)) || st.UniqueBytes != int64(len(blob)) {
		t.Fatalf("logical=%d unique=%d", st.LogicalBytes, st.UniqueBytes)
	}
	snap := reg.Snapshot().Counters
	if snap["repl.cas.blocks.stored"] != uint64(len(m)) || snap["repl.cas.blocks.deduped"] != uint64(len(m)) {
		t.Fatalf("counters=%v", snap)
	}

	// Dropping one reference keeps the blocks; dropping the last GCs them.
	s.Forget("/a")
	if st := s.Stats(); st.Blocks != len(m) || st.UniqueBytes != int64(len(blob)) {
		t.Fatalf("after forget /a: %+v", st)
	}
	s.ForgetTree("/")
	st = s.Stats()
	if st.Blocks != 0 || st.Files != 0 || st.UniqueBytes != 0 || st.LogicalBytes != 0 {
		t.Fatalf("after forget all: %+v", st)
	}
	if got := reg.Snapshot().Counters["repl.cas.bytes.gc"]; got != uint64(len(blob)) {
		t.Fatalf("gc bytes=%d want %d", got, len(blob))
	}
}

func TestStoreGetVerifiesAndPrunesStale(t *testing.T) {
	fs := localfs.New(0, simnet.DiskModel{})
	s := NewStore(fs, nil)
	blob := randBytes(13, 64<<10)
	if err := fs.WriteFile("/f", blob); err != nil {
		t.Fatal(err)
	}
	m := Split(blob)
	s.AddFile("/f", m)

	got, ok := s.Get(m[0].Hash)
	if !ok || !bytes.Equal(got, blob[:m[0].Len]) {
		t.Fatal("Get did not return indexed bytes")
	}

	// Mutate the file out from under the index: Get must fail verification
	// rather than return wrong bytes.
	if err := fs.WriteFile("/f", randBytes(14, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(m[0].Hash); ok {
		t.Fatal("Get returned stale bytes after mutation")
	}
	if !s.Has(m[0].Hash) {
		t.Fatal("stale location pruning must not drop the reference")
	}
}

func TestStoreHasAll(t *testing.T) {
	fs := localfs.New(0, simnet.DiskModel{})
	s := NewStore(fs, nil)
	blob := randBytes(15, 32<<10)
	m := Split(blob)
	s.AddFile("/x", m)
	var absent Hash
	absent[0] = 0xAB
	got := s.HasAll([]Hash{m[0].Hash, absent})
	if !got[0] || got[1] {
		t.Fatalf("HasAll=%v", got)
	}
}
