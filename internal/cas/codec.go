package cas

import "repro/internal/wire"

// PutManifest appends a manifest as a counted array of (hash, len) pairs.
func PutManifest(e *wire.Encoder, m Manifest) {
	e.PutUint32(uint32(len(m)))
	for _, c := range m {
		e.PutDigest(c.Hash)
		e.PutUint32(c.Len)
	}
}

// GetManifest decodes a manifest written by PutManifest.
func GetManifest(d *wire.Decoder) Manifest {
	n := d.ArrayLen()
	if n == 0 || d.Err() != nil {
		return nil
	}
	m := make(Manifest, 0, n)
	for i := 0; i < n; i++ {
		h := d.Digest()
		l := d.Uint32()
		if d.Err() != nil {
			return nil
		}
		m = append(m, Chunk{Hash: h, Len: l})
	}
	return m
}

// PutHashes appends a counted array of chunk hashes (WANT lists).
func PutHashes(e *wire.Encoder, hs []Hash) {
	e.PutUint32(uint32(len(hs)))
	for _, h := range hs {
		e.PutDigest(h)
	}
}

// GetHashes decodes a hash list written by PutHashes.
func GetHashes(d *wire.Decoder) []Hash {
	n := d.ArrayLen()
	if n == 0 || d.Err() != nil {
		return nil
	}
	hs := make([]Hash, 0, n)
	for i := 0; i < n; i++ {
		hs = append(hs, d.Digest())
	}
	if d.Err() != nil {
		return nil
	}
	return hs
}

// PutBools appends a counted bitmap (HAVE replies).
func PutBools(e *wire.Encoder, bs []bool) {
	e.PutUint32(uint32(len(bs)))
	for _, b := range bs {
		e.PutBool(b)
	}
}

// GetBools decodes a bitmap written by PutBools.
func GetBools(d *wire.Decoder) []bool {
	n := d.ArrayLen()
	if n == 0 || d.Err() != nil {
		return nil
	}
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = d.Bool()
	}
	if d.Err() != nil {
		return nil
	}
	return bs
}
