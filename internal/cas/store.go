package cas

import (
	"bytes"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/localfs"
	"repro/internal/obs"
)

// blockLoc is one place on the local store where a chunk's bytes live: a
// byte range of an indexed file.
type blockLoc struct {
	path string
	off  int64
}

type block struct {
	length uint32
	refs   int
	locs   []blockLoc
}

// StoreStats summarizes the index for the dedup experiment: LogicalBytes is
// the sum over all references (what the node would store without dedup),
// UniqueBytes the sum over distinct blocks.
type StoreStats struct {
	Blocks       int
	Files        int
	UniqueBytes  int64
	LogicalBytes int64
}

// Store is a reference-counted content-addressed block index layered over a
// node's localfs store. It records, per chunk hash, which byte ranges of
// which indexed files hold those bytes, so the sync protocol can answer
// HAVE queries and serve CHUNK_FETCH without shipping bytes the peer
// already has. The index deliberately does not own storage: primary and
// replica trees stay plain full-byte mirrors the NFS path (and the chaos
// convergence oracle) can read directly, and "dedup" is network dedup plus
// the stored-vs-logical accounting the experiment reports. Dropping the
// last reference to a block garbage-collects its index entry.
//
// Lock order: methods take only the index mutex and never call into the
// filesystem while holding it — the localfs mutation hook calls back into
// this index under the store lock, so Get copies its locations out before
// reading.
type Store struct {
	fs localfs.FileSystem

	mu      sync.Mutex
	blocks  map[Hash]*block
	files   map[string]fileEntry
	unique  int64
	logical int64

	stored  *obs.Counter // distinct blocks first indexed
	deduped *obs.Counter // references that hit an already-indexed block
	gcBytes *obs.Counter // bytes of blocks dropped at zero references
}

// fileEntry is one indexed byte range of a file: a manifest whose chunks
// start at base. Whole-file entries (AddFile) have base 0; warm-on-receive
// spans (AddAt) may start anywhere.
type fileEntry struct {
	base int64
	man  Manifest
}

// NewStore builds an empty index over fs. reg may be nil (oracle use).
func NewStore(fs localfs.FileSystem, reg *obs.Registry) *Store {
	s := &Store{
		fs:     fs,
		blocks: make(map[Hash]*block),
		files:  make(map[string]fileEntry),
	}
	if reg != nil {
		s.stored = reg.Counter("repl.cas.blocks.stored")
		s.deduped = reg.Counter("repl.cas.blocks.deduped")
		s.gcBytes = reg.Counter("repl.cas.bytes.gc")
	}
	return s
}

func count(c *obs.Counter, n uint64) {
	if c != nil && n > 0 {
		c.Add(n)
	}
}

// AddFile (re)indexes path as manifest m, replacing any previous entry for
// the path. Safe to call from the merkle cache's compute path.
func (s *Store) AddFile(path string, m Manifest) {
	s.AddAt(path, 0, m)
}

// AddAt indexes a byte range of path — chunks of m laid out sequentially
// from offset base — replacing any previous entry for the path. The repl
// receiver uses it to warm the index when it applies an inline chunk span,
// so the first push after a heal gets HAVE hits without waiting for a
// digest recompute. A file written in several spans keeps only the most
// recent span indexed; the next whole-file digest restores full coverage.
func (s *Store) AddAt(path string, base int64, m Manifest) {
	path = cleanPath(path)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.files[path]; ok && old.base == base && old.man.Equal(m) {
		return
	}
	s.dropLocked(path)
	off := base
	for _, c := range m {
		b := s.blocks[c.Hash]
		if b == nil {
			b = &block{length: c.Len}
			s.blocks[c.Hash] = b
			s.unique += int64(c.Len)
			count(s.stored, 1)
		} else {
			count(s.deduped, 1)
		}
		b.refs++
		b.locs = append(b.locs, blockLoc{path: path, off: off})
		s.logical += int64(c.Len)
		off += int64(c.Len)
	}
	s.files[path] = fileEntry{base: base, man: m}
}

// Forget drops the index entry for one file, releasing its block references
// (zero-reference blocks are garbage-collected).
func (s *Store) Forget(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(cleanPath(path))
}

// ForgetTree drops p and every indexed file under it. This is the
// invalidation hook: merkle invalidations (driven by the store's mutation
// notifier) forward here, so writes and removes release references
// immediately.
func (s *Store) ForgetTree(p string) {
	p = cleanPath(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == "/" {
		s.resetLocked()
		return
	}
	prefix := p + "/"
	for f := range s.files {
		if f == p || strings.HasPrefix(f, prefix) {
			s.dropLocked(f)
		}
	}
}

// Reset clears the index without GC accounting (node revival).
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks = make(map[Hash]*block)
	s.files = make(map[string]fileEntry)
	s.unique, s.logical = 0, 0
}

func (s *Store) resetLocked() {
	var dropped int64
	for _, b := range s.blocks {
		dropped += int64(b.length)
	}
	count(s.gcBytes, uint64(dropped))
	s.blocks = make(map[Hash]*block)
	s.files = make(map[string]fileEntry)
	s.unique, s.logical = 0, 0
}

func (s *Store) dropLocked(path string) {
	fe, ok := s.files[path]
	if !ok {
		return
	}
	delete(s.files, path)
	off := fe.base
	for _, c := range fe.man {
		b := s.blocks[c.Hash]
		if b != nil {
			b.refs--
			for i, l := range b.locs {
				if l.path == path && l.off == off {
					b.locs = append(b.locs[:i], b.locs[i+1:]...)
					break
				}
			}
			s.logical -= int64(c.Len)
			if b.refs <= 0 {
				delete(s.blocks, c.Hash)
				s.unique -= int64(c.Len)
				count(s.gcBytes, uint64(c.Len))
			}
		}
		off += int64(c.Len)
	}
}

// Has reports whether the index holds a verified-or-not location for h.
func (s *Store) Has(h Hash) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocks[h] != nil
}

// HasAll answers a HAVE query for a list of hashes in one lock acquisition.
func (s *Store) HasAll(hs []Hash) []bool {
	out := make([]bool, len(hs))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, h := range hs {
		out[i] = s.blocks[h] != nil
	}
	return out
}

// ManifestFor returns the indexed whole-file manifest for path, if any.
// Span entries (AddAt with nonzero base) describe only part of the file, so
// they don't answer.
func (s *Store) ManifestFor(path string) (Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fe, ok := s.files[cleanPath(path)]
	if !ok || fe.base != 0 {
		return nil, false
	}
	return fe.man, true
}

// Get returns the bytes of block h if some indexed file still holds them.
// Every candidate location is re-read and hash-verified — files mutate
// underneath the index between invalidation and re-digest, so a location is
// a hint, not a promise. Stale locations are pruned as a side effect. The
// index mutex is released before any filesystem read (see the lock-order
// note on Store).
func (s *Store) Get(h Hash) ([]byte, bool) {
	s.mu.Lock()
	b := s.blocks[h]
	if b == nil {
		s.mu.Unlock()
		return nil, false
	}
	length := b.length
	locs := append([]blockLoc(nil), b.locs...)
	s.mu.Unlock()

	var stale []blockLoc
	for _, l := range locs {
		attr, err := s.fs.LookupPath(l.path)
		if err != nil || attr.Type != localfs.TypeRegular || attr.Size < l.off+int64(length) {
			stale = append(stale, l)
			continue
		}
		data, _, _, err := s.fs.Read(attr.Ino, l.off, int(length))
		if err != nil || len(data) != int(length) || SumChunk(data) != h {
			stale = append(stale, l)
			continue
		}
		if len(stale) > 0 {
			s.pruneStale(h, stale)
		}
		return data, true
	}
	if len(stale) > 0 {
		s.pruneStale(h, stale)
	}
	return nil, false
}

// pruneStale removes locations that failed verification. References are NOT
// released — the refcount tracks manifest references, and those manifests
// are still indexed; only the address was stale.
func (s *Store) pruneStale(h Hash, stale []blockLoc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.blocks[h]
	if b == nil {
		return
	}
	for _, sl := range stale {
		for i, l := range b.locs {
			if l == sl {
				b.locs = append(b.locs[:i], b.locs[i+1:]...)
				break
			}
		}
	}
}

// VerifySample re-reads and hash-verifies up to n indexed blocks, resuming
// after cursor in ascending hash order and wrapping past the end. Each
// check goes through Get, so stale locations are pruned as a side effect; a
// block left with no verifiable location counts as bad (the caller decides
// whether to repair or forget it). The walk order is a pure function of the
// index contents, keeping scrub rounds seed-deterministic. Returns the
// cursor for the next round and the per-round counts.
func (s *Store) VerifySample(cursor Hash, n int) (next Hash, checked, bad int) {
	if n <= 0 {
		return cursor, 0, 0
	}
	s.mu.Lock()
	hs := make([]Hash, 0, len(s.blocks))
	for h := range s.blocks {
		hs = append(hs, h)
	}
	s.mu.Unlock()
	if len(hs) == 0 {
		return Hash{}, 0, 0
	}
	sort.Slice(hs, func(i, j int) bool { return bytes.Compare(hs[i][:], hs[j][:]) < 0 })
	start := sort.Search(len(hs), func(i int) bool { return bytes.Compare(hs[i][:], cursor[:]) > 0 })
	if n > len(hs) {
		n = len(hs)
	}
	for i := 0; i < n; i++ {
		h := hs[(start+i)%len(hs)]
		next = h
		checked++
		if _, ok := s.Get(h); !ok {
			bad++
		}
	}
	return next, checked, bad
}

// Stats snapshots the index accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Blocks:       len(s.blocks),
		Files:        len(s.files),
		UniqueBytes:  s.unique,
		LogicalBytes: s.logical,
	}
}

func cleanPath(p string) string { return path.Clean("/" + p) }
