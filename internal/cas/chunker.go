// Package cas provides content-addressed chunking for the replication data
// path: a content-defined chunker (buzhash rolling window, ~64 KiB target)
// that decomposes a file into an ordered manifest of SHA-256-addressed
// chunks, and a reference-counted block index (store.go) that records where
// identical bytes already live on a node's local store. Manifests are the
// leaf level of the Merkle digest exchange (internal/merkle), and the block
// index is what lets replica sync and promote-time repair ship only the
// chunks the other side lacks.
package cas

import (
	"crypto/sha256"
	"math/bits"
)

// Hash identifies a chunk by the SHA-256 of its bytes.
type Hash [32]byte

// Chunk is one manifest entry: a content hash plus the chunk length.
type Chunk struct {
	Hash Hash
	Len  uint32
}

// Manifest is the ordered chunk decomposition of one file. Concatenating
// the chunks in order reproduces the file exactly.
type Manifest []Chunk

// TotalLen is the byte length of the file the manifest describes.
func (m Manifest) TotalLen() int64 {
	var n int64
	for _, c := range m {
		n += int64(c.Len)
	}
	return n
}

// Hashes returns the manifest's chunk hashes in file order.
func (m Manifest) Hashes() []Hash {
	hs := make([]Hash, len(m))
	for i, c := range m {
		hs[i] = c.Hash
	}
	return hs
}

// Equal reports whether two manifests describe identical content.
func (m Manifest) Equal(o Manifest) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

const (
	// MinChunk is the smallest content-defined chunk the splitter emits
	// (except for a short final chunk). It also bounds how far an edit can
	// shift the preceding boundary.
	MinChunk = 8 << 10
	// MaxChunk forces a cut when pathological content never hits a
	// boundary — the fixed-size fallback. It caps the bytes a single-chunk
	// diff can ship.
	MaxChunk = 256 << 10
	// boundaryMask gives an expected run of 64 KiB beyond MinChunk before a
	// boundary fires (p = 2^-16 per byte), so chunks average ~72 KiB.
	boundaryMask = 1<<16 - 1
	// chunkWindow is the buzhash window. With a 64-byte window over 64-bit
	// table words the slide is rol1(h) ^ t[out] ^ t[in].
	chunkWindow = 64
)

// buzTable is the fixed byte-substitution table for the rolling hash,
// generated from a pinned splitmix64 stream. It must never change: chunk
// boundaries — and through them every manifest and file digest in a
// cluster — are derived from it.
var buzTable = buildBuzTable()

func buildBuzTable() (t [256]uint64) {
	s := uint64(0x9e3779b97f4a7c15)
	for i := range t {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		t[i] = z ^ z>>31
	}
	return t
}

// SumChunk is the content address of a chunk's bytes.
func SumChunk(b []byte) Hash { return sha256.Sum256(b) }

// Split cuts data into content-defined chunks. Boundaries depend only on a
// 64-byte window of surrounding bytes, so a local edit re-chunks the region
// it touches and boundaries re-align on the first shared window downstream —
// the property block-level delta sync relies on. Split(data) of equal data
// is identical everywhere (the table is pinned), and chunk sizes are bounded
// to [MinChunk, MaxChunk] with a forced cut at MaxChunk.
func Split(data []byte) Manifest {
	var m Manifest
	for len(data) > 0 {
		n := cutPoint(data)
		m = append(m, Chunk{Hash: SumChunk(data[:n]), Len: uint32(n)})
		data = data[n:]
	}
	return m
}

// cutPoint returns the length of the next chunk at the head of data.
func cutPoint(data []byte) int {
	if len(data) <= MinChunk {
		return len(data)
	}
	limit := MaxChunk
	if len(data) < limit {
		limit = len(data)
	}
	var h uint64
	for _, b := range data[MinChunk-chunkWindow : MinChunk] {
		h = bits.RotateLeft64(h, 1) ^ buzTable[b]
	}
	for i := MinChunk; i < limit; i++ {
		if h&boundaryMask == 0 {
			return i
		}
		// Slide the window one byte right: out = data[i-window], in = data[i].
		// rol(t[out], window) == t[out] because window == 64.
		h = bits.RotateLeft64(h, 1) ^ buzTable[data[i-chunkWindow]] ^ buzTable[data[i]]
	}
	return limit
}

// SplitFixed is the degenerate fixed-grid chunker: stable offsets regardless
// of content. It is the baseline for comparing content-defined splitting and
// a fallback for callers that need predictable chunk positions.
func SplitFixed(data []byte, size int) Manifest {
	if size <= 0 {
		size = 64 << 10
	}
	var m Manifest
	for off := 0; off < len(data); off += size {
		end := off + size
		if end > len(data) {
			end = len(data)
		}
		m = append(m, Chunk{Hash: SumChunk(data[off:end]), Len: uint32(end - off)})
	}
	return m
}
