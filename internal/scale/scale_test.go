package scale

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/pastry"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestSoakSmoke is the tier-1 variant: a small cluster, a shortened epoch
// window, and the full invariant cadence. It keeps the harness honest on
// every `go test ./...` without the cost of the gated 500-node run.
func TestSoakSmoke(t *testing.T) {
	rep, err := Run(Options{
		Nodes:  60,
		Seed:   1001,
		Epochs: 12,
		Ops:    240,
		FS:     trace.SmallFSConfig(),
		Maint:  true,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("soak smoke (seed 1001): %v", err)
	}
	if rep.Ops != 240 || rep.Writes == 0 || rep.Reads == 0 {
		t.Fatalf("degenerate op mix: %+v", rep)
	}
	if rep.Crashes == 0 || rep.Revives == 0 {
		t.Fatalf("trace drove no churn: %+v", rep)
	}
	if rep.ProbeMeanHops <= 0 {
		t.Fatalf("no route probes in final invariant check: %+v", rep)
	}
	if rep.ScrubRounds == 0 {
		t.Fatalf("maintenance enabled but no scrub rounds ran: %+v", rep)
	}
}

// TestSoakDeterministic replays the smoke configuration on one seed twice:
// identical schedules must yield identical reports, field for field.
func TestSoakDeterministic(t *testing.T) {
	opts := Options{
		Nodes:  40,
		Seed:   2002,
		Epochs: 8,
		Ops:    160,
		FS:     trace.SmallFSConfig(),
		Maint:  true,
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatalf("first run (seed 2002): %v", err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatalf("second run (seed 2002): %v", err)
	}
	if *a != *b {
		t.Fatalf("same seed, different reports:\n  a: %+v\n  b: %+v", a, b)
	}
}

// TestSoakLarge is the gated 500-node soak: the sustained Purdue-trace
// replay under diurnal churn the issue asks for. Opt in with
// KOSHA_SCALE_SOAK=1 (e.g. via `make soak`); KOSHA_SCALE_SEED pins the
// seed, otherwise it derives from the clock and is logged so any failure
// replays from one number.
func TestSoakLarge(t *testing.T) {
	if os.Getenv("KOSHA_SCALE_SOAK") == "" {
		t.Skip("set KOSHA_SCALE_SOAK=1 to enable the 500-node soak")
	}
	seed := uint64(time.Now().UnixNano())
	if v := os.Getenv("KOSHA_SCALE_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad KOSHA_SCALE_SEED %q: %v", v, err)
		}
		seed = n
	}
	t.Logf("scale soak seed %d (replay: KOSHA_SCALE_SOAK=1 KOSHA_SCALE_SEED=%d)", seed, seed)
	rep, err := Run(Options{
		Nodes:  500,
		Seed:   seed,
		Epochs: 36,
		Ops:    10000,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatalf("500-node soak (seed %d): %v", seed, err)
	}
	if rep.Ops < 10000 {
		t.Fatalf("replayed only %d ops, want >= 10000", rep.Ops)
	}
	t.Logf("soak report: %+v", rep)
}

// TestHopGrowthLogarithmic pins the scaling law on pastry-only overlays:
// Pastry promises O(log16 N) route hops, so a 10x population growth may at
// most double the mean hop count. This is the acceptance threshold behind
// the koshabench scale experiment's hops-vs-N curve.
func TestHopGrowthLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node overlay build; skipped in -short")
	}
	mean := func(n int) float64 {
		net := simnet.New(simnet.LAN100)
		state := uint64(9000 + n)
		nodes := make([]*pastry.Node, n)
		for i := range nodes {
			nodes[i] = pastry.NewNode(id.Rand128(&state), simnet.Addr(fmt.Sprintf("node%04d", i)), net, 0)
			nodes[i].Attach()
			var boot simnet.Addr
			if i > 0 {
				boot = nodes[0].Info().Addr
			}
			if _, err := nodes[i].Bootstrap(boot); err != nil {
				t.Fatalf("bootstrap node %d of %d: %v", i, n, err)
			}
		}
		for round := 0; round < 2; round++ {
			for _, nd := range nodes {
				nd.Stabilize()
			}
		}
		rep, err := pastry.CheckInvariants(nodes, pastry.InvariantOptions{
			Level:        pastry.InvariantConverged,
			Seed:         uint64(n),
			SampleRoutes: 256,
			ReplicaK:     2,
		})
		if err != nil {
			t.Fatalf("converged invariants at n=%d: %v", n, err)
		}
		t.Logf("n=%4d: mean hops %.2f, max %d over %d sampled routes", n, rep.MeanHops, rep.MaxHops, rep.Routes)
		return rep.MeanHops
	}
	h100 := mean(100)
	h1000 := mean(1000)
	if h1000 > 2*h100 {
		t.Fatalf("hop growth super-logarithmic: hops(1000)=%.2f > 2 x hops(100)=%.2f", h1000, h100)
	}
}
