// Package scale is the thousand-node soak harness: it stands up a large
// simnet cluster, replays the synthesized Purdue workload (internal/trace)
// as sustained traffic while the availability trace drives diurnal churn,
// and holds the overlay to the invariant oracle in internal/pastry — the
// scaled-up descendant of the paper's eight-machine evaluation (Section 6)
// run at the population its Pastry substrate was designed for.
//
// The harness judges every operation against the chaos package's oracle
// model (no acknowledged write lost, reads return acknowledged contents)
// and checks the overlay at two tiers: structural invariants every epoch
// while churn is in flight, full convergence invariants (leaf-set
// completeness and symmetry against ground truth, bounded route hops,
// replica placement) at a configurable cadence and after final quiesce.
// Everything derives from one seed: same seed, same schedule, same report.
package scale

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Options configures a soak run.
type Options struct {
	// Nodes is the cluster size (default 100).
	Nodes int
	// Replicas is Kosha's K (default 2).
	Replicas int
	// Seed drives everything: ID assignment, the availability trace, the
	// workload stream, payload bytes, and invariant route sampling.
	Seed uint64
	// Ops is the total workload operation count across the run (default
	// 50 per epoch).
	Ops int
	// Epochs is how many availability-trace hours to replay (default 36).
	Epochs int
	// StartHour is the first trace hour (default 600, so the default
	// window covers the hour-615 failure spike).
	StartHour int
	// CheckEvery runs the converged-tier invariant check every that many
	// epochs (default 6; structural checks run every epoch regardless).
	CheckEvery int
	// MinLive floors the live population; the churn scheduler skips
	// crashes that would sink below it (default Nodes/2).
	MinLive int
	// Mounts is how many client mounts drive traffic, attached to nodes
	// 0..Mounts-1, which are protected from churn (default 1).
	Mounts int
	// SampleRoutes is the per-check route sample size for the invariant
	// oracle (default 32).
	SampleRoutes int
	// Maint enables the background maintenance engine (anti-entropy scrub)
	// on every node and ticks each live node once per epoch, in index
	// order, after the epoch's traffic — the same deterministic schedule
	// the chaos runner uses.
	Maint bool
	// FS overrides the synthesized file-system snapshot (default the
	// Purdue engineering trace, Table 1).
	FS trace.FSConfig
	// Workload overrides the operation mix (default read-mostly with a
	// 4 KiB payload cap).
	Workload trace.WorkloadConfig
	// Logf, when set, receives progress lines (wire to t.Logf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 100
	}
	if o.Replicas == 0 {
		o.Replicas = 2
	}
	if o.Epochs == 0 {
		o.Epochs = 36
	}
	if o.StartHour == 0 {
		o.StartHour = 600
	}
	if o.Ops == 0 {
		o.Ops = 50 * o.Epochs
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 6
	}
	if o.MinLive == 0 {
		o.MinLive = o.Nodes / 2
	}
	if o.Mounts == 0 {
		o.Mounts = 1
	}
	if o.SampleRoutes == 0 {
		o.SampleRoutes = 32
	}
	if o.FS == (trace.FSConfig{}) {
		o.FS = trace.PurdueFSConfig()
	}
	if o.Workload == (trace.WorkloadConfig{}) {
		o.Workload = trace.DefaultWorkloadConfig()
	}
	return o
}

// Report summarizes a soak run.
type Report struct {
	Nodes  int
	Epochs int
	Seed   uint64

	Ops      int
	Writes   int
	Reads    int
	Stats    int
	Readdirs int
	Retries  int // ops that needed one stabilize-and-retry

	Crashes     int
	Revives     int
	MinLiveSeen int

	// MeanRouteHops/ReplicaFanout come from the nodes' own counters over
	// the workload traffic; ProbeMeanHops/ProbeMaxHops from the invariant
	// oracle's route sampling at final quiesce.
	MeanRouteHops float64
	ReplicaFanout float64
	ProbeMeanHops float64
	ProbeMaxHops  int

	// Join cost statistics over every overlay join (bring-up + revives):
	// the raw convergence-time-vs-N signal.
	Joins        int
	MeanJoinCost simnet.Cost

	// OpCost is the summed simulated critical-path cost of workload ops.
	OpCost simnet.Cost

	// Maintenance totals over the run (zero unless Options.Maint): scrub
	// rounds ticked, divergences caught, and repairs applied.
	ScrubRounds    uint64
	ScrubDiverged  uint64
	ScrubRepaired  uint64
	ScrubBadBlocks uint64
}

func (r *Report) logf(o Options, format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Run executes the soak and returns its report; any oracle or invariant
// violation aborts with an error naming the epoch.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{Nodes: opts.Nodes, Epochs: opts.Epochs, Seed: opts.Seed, MinLiveSeen: opts.Nodes}

	c, err := cluster.New(cluster.Options{
		Nodes: opts.Nodes,
		Seed:  opts.Seed,
		Config: core.Config{
			Replicas: opts.Replicas,
			// TTL caches and trace buffers off: wall-clock-dependent reuse
			// would break seed determinism, and per-node ring buffers
			// dominate memory at N=1000.
			AttrCacheTTL: -1,
			NameCacheTTL: -1,
			RingCacheTTL: -1,
			TraceBufSize: -1,
			MaintScrub:   opts.Maint,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("scale: bring-up: %w", err)
	}
	rep.logf(opts, "scale: %d nodes up, replaying %d ops over %d epochs (seed %d)",
		opts.Nodes, opts.Ops, opts.Epochs, opts.Seed)

	avail := trace.GenAvail(trace.CorporateAvailConfig(opts.Nodes), opts.Seed+1)
	fs := trace.GenFS(opts.FS, opts.Seed+2)
	work := trace.NewWorkload(fs, opts.Workload, opts.Seed+3)
	model := chaos.NewOracle()
	mounts := make([]*core.Mount, opts.Mounts)
	for i := range mounts {
		mounts[i] = c.Mount(i)
	}
	payloadState := opts.Seed + 4

	opsLeft := opts.Ops
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		hour := (opts.StartHour + epoch) % avail.Hours

		// Churn first — revive machines the trace brings back, then crash
		// the ones it takes down (guarded), then let the overlay settle —
		// so the epoch's traffic always runs against a stabilized view.
		var backUp []int
		for i, nd := range c.Nodes {
			if c.Net.IsDown(nd.Addr()) && avail.Up[hour][i] {
				backUp = append(backUp, i)
			}
		}
		if err := c.ReviveNodes(backUp); err != nil {
			return rep, fmt.Errorf("scale: epoch %d (hour %d): revive: %w", epoch, hour, err)
		}
		rep.Revives += len(backUp)
		crashed := crashByTrace(c, avail, hour, opts)
		rep.Crashes += crashed
		if crashed > 0 {
			c.Stabilize()
		}
		if live := len(c.Alive()); live < rep.MinLiveSeen {
			rep.MinLiveSeen = live
		}

		if epoch%opts.CheckEvery == opts.CheckEvery-1 {
			if _, err := checkOverlay(c, opts, pastry.InvariantConverged, uint64(epoch)); err != nil {
				return rep, fmt.Errorf("scale: epoch %d (hour %d): converged invariants: %w", epoch, hour, err)
			}
		}

		n := opsLeft / (opts.Epochs - epoch)
		opsLeft -= n
		for i := 0; i < n; i++ {
			if err := runOp(c, mounts, work, model, &payloadState, rep); err != nil {
				return rep, fmt.Errorf("scale: epoch %d (hour %d) op %d: %w", epoch, hour, i, err)
			}
		}

		if opts.Maint {
			for _, nd := range c.Nodes {
				if !c.Net.IsDown(nd.Addr()) {
					nd.Maint().Tick()
				}
			}
		}

		if _, err := checkOverlay(c, opts, pastry.InvariantLive, uint64(epoch)); err != nil {
			return rep, fmt.Errorf("scale: epoch %d (hour %d): live invariants: %w", epoch, hour, err)
		}
		if epoch%opts.CheckEvery == 0 {
			rep.logf(opts, "scale: epoch %d/%d hour %d: %d live, +%d/-%d churn, %d ops done",
				epoch, opts.Epochs, hour, len(c.Alive()), len(backUp), crashed, rep.Ops)
		}
	}

	// Final quiesce: flush write-back state, revive everything, stabilize,
	// then hold the full converged bar — oracle contents through the mount,
	// K replicas per subtree, and the overlay invariants with route probes.
	for _, m := range mounts {
		if _, err := m.FlushAll(); err != nil {
			return rep, fmt.Errorf("scale: final flush: %w", err)
		}
	}
	var down []int
	for i, nd := range c.Nodes {
		if c.Net.IsDown(nd.Addr()) {
			down = append(down, i)
		}
	}
	if err := c.ReviveNodes(down); err != nil {
		return rep, fmt.Errorf("scale: final revive: %w", err)
	}
	rep.Revives += len(down)
	c.Stabilize()
	if err := model.Check(mounts[0]); err != nil {
		return rep, fmt.Errorf("scale: final oracle check: %w", err)
	}
	if err := chaos.ReplicaConvergence(c, model, opts.Replicas); err != nil {
		return rep, fmt.Errorf("scale: final replica convergence: %w", err)
	}
	inv, err := checkOverlay(c, opts, pastry.InvariantConverged, uint64(opts.Epochs))
	if err != nil {
		return rep, fmt.Errorf("scale: final converged invariants: %w", err)
	}
	rep.ProbeMeanHops = inv.MeanHops
	rep.ProbeMaxHops = inv.MaxHops

	var agg obs.Snapshot
	for _, nd := range c.Nodes {
		agg.Merge(nd.Obs().Snapshot())
	}
	rep.MeanRouteHops = agg.MeanRatio("route.hops", "route.count")
	rep.ReplicaFanout = agg.MeanRatio("replicate.fanout", "replicate.count")
	rep.ScrubRounds = agg.Counters["maint.scrub.rounds"]
	rep.ScrubDiverged = agg.Counters["maint.scrub.divergences"]
	rep.ScrubRepaired = agg.Counters["maint.scrub.repaired"]
	rep.ScrubBadBlocks = agg.Counters["maint.scrub.badblocks"]
	rep.Joins = len(c.JoinCosts)
	if rep.Joins > 0 {
		rep.MeanJoinCost = simnet.Seq(c.JoinCosts...) / simnet.Cost(rep.Joins)
	}
	rep.logf(opts, "scale: done: %d ops (%d retried), churn -%d/+%d, workload hops %.2f, probe hops %.2f (max %d)",
		rep.Ops, rep.Retries, rep.Crashes, rep.Revives, rep.MeanRouteHops, rep.ProbeMeanHops, rep.ProbeMaxHops)
	return rep, nil
}

// checkOverlay runs the pastry invariant oracle over the currently-live
// membership.
func checkOverlay(c *cluster.Cluster, opts Options, level pastry.InvariantLevel, salt uint64) (*pastry.InvariantReport, error) {
	var live []*pastry.Node
	for _, nd := range c.Nodes {
		if !c.Net.IsDown(nd.Addr()) {
			live = append(live, nd.Overlay())
		}
	}
	io := pastry.InvariantOptions{
		Level:        level,
		Seed:         opts.Seed ^ (salt * 0x9e3779b97f4a7c15),
		SampleRoutes: opts.SampleRoutes,
	}
	if level == pastry.InvariantConverged {
		io.ReplicaK = opts.Replicas
	}
	return pastry.CheckInvariants(live, io)
}

// runOp executes one workload operation through a mount, judges it against
// the oracle model, and records it. A first failure gets one
// stabilize-and-retry — an op can race the immediately preceding crash
// batch's fail-over — and a second failure is a soak failure.
func runOp(c *cluster.Cluster, mounts []*core.Mount, work *trace.Workload, model *chaos.Oracle, payloadState *uint64, rep *Report) error {
	op := work.Next()
	m := mounts[rep.Ops%len(mounts)]
	rep.Ops++
	err := applyOp(m, op, model, payloadState, rep)
	if err != nil {
		rep.Retries++
		c.Stabilize()
		err = applyOp(m, op, model, payloadState, rep)
	}
	if err != nil {
		return fmt.Errorf("%s %s: %w", op.Kind, op.Path, err)
	}
	return nil
}

func applyOp(m *core.Mount, op trace.WorkloadOp, model *chaos.Oracle, payloadState *uint64, rep *Report) error {
	switch op.Kind {
	case trace.OpWrite:
		data := payload(payloadState, op.Path, int(op.Size))
		cost, err := m.WriteFile(op.Path, data)
		rep.OpCost += cost
		if err != nil {
			return err
		}
		model.WriteFile(op.Path, data)
		rep.Writes++
	case trace.OpRead:
		got, cost, err := m.ReadFile(op.Path)
		rep.OpCost += cost
		if err != nil {
			return err
		}
		want, ok := model.FileContent(op.Path)
		if !ok {
			return fmt.Errorf("read of path the model never acknowledged")
		}
		if string(got) != string(want) {
			return fmt.Errorf("content mismatch: got %d bytes, want %d", len(got), len(want))
		}
		rep.Reads++
	case trace.OpStat:
		_, attr, cost, err := m.LookupPath(op.Path)
		rep.OpCost += cost
		if err != nil {
			return err
		}
		if attr.Type != localfs.TypeRegular {
			return fmt.Errorf("stat resolved to %v, want regular file", attr.Type)
		}
		rep.Stats++
	case trace.OpReaddir:
		vh, _, cost, err := m.LookupPath(op.Path)
		rep.OpCost += cost
		if err != nil {
			return err
		}
		ents, cost, err := m.Readdir(vh)
		rep.OpCost += cost
		if err != nil {
			return err
		}
		have := map[string]bool{}
		for _, e := range ents {
			have[e.Name] = true
		}
		for _, name := range model.List(op.Path) {
			if !have[name] {
				return fmt.Errorf("readdir missing acknowledged entry %q", name)
			}
		}
		rep.Readdirs++
	}
	return nil
}

// payload produces deterministic file contents: a path-stamped header so
// misdirected reads are self-evident, padded with seeded bytes.
func payload(state *uint64, path string, size int) []byte {
	out := make([]byte, 0, size)
	out = append(out, path...)
	out = append(out, ':')
	for len(out) < size {
		*state ^= *state << 13
		*state ^= *state >> 7
		*state ^= *state << 17
		v := *state
		for i := 0; i < 8 && len(out) < size; i++ {
			out = append(out, byte(v>>(8*i)))
		}
	}
	return out[:size]
}

// crashByTrace fails the live nodes the availability trace marks down at
// hour, under three guards: protected mount homes never crash, the live
// population stays above MinLive, and accepted victims sit at least
// Replicas+1 positions apart on the live ring — so every primary plus its
// K leaf-set replica candidates keeps at least one survivor and no
// acknowledged write can lose all copies in a single epoch.
func crashByTrace(c *cluster.Cluster, avail *trace.AvailTrace, hour int, opts Options) int {
	alive := c.Alive()
	ringPos := map[int]int{} // node index -> position on the live ring
	ring := make([]int, len(alive))
	copy(ring, alive)
	sortByOverlayID(c, ring)
	for pos, idx := range ring {
		ringPos[idx] = pos
	}

	live := len(alive)
	var victims []int
	for _, idx := range alive {
		if idx < opts.Mounts || avail.Up[hour][idx] {
			continue
		}
		if live-1 < opts.MinLive {
			break
		}
		ok := true
		for _, v := range victims {
			d := ringPos[idx] - ringPos[v]
			if d < 0 {
				d = -d
			}
			if n := len(ring); d > n/2 {
				d = n - d
			}
			if d <= opts.Replicas {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		victims = append(victims, idx)
		live--
	}
	for _, idx := range victims {
		c.Fail(idx)
	}
	return len(victims)
}

func sortByOverlayID(c *cluster.Cluster, idxs []int) {
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && c.Nodes[idxs[j]].Overlay().Info().ID.Less(c.Nodes[idxs[j-1]].Overlay().Info().ID); j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
}
