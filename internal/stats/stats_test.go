package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if s := StdDev(xs); !approx(s, 2, 1e-12) {
		t.Fatalf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Sum(xs) != 9 {
		t.Fatalf("sum = %v", Sum(xs))
	}
	min, max, ok := MinMax(xs)
	if !ok || min != -1 || max != 7 {
		t.Fatalf("minmax = %v %v %v", min, max, ok)
	}
	if _, _, ok := MinMax(nil); ok {
		t.Fatal("empty minmax should report !ok")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10}, {-5, 1}, {150, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("input mutated")
	}
}

func TestAccumMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var a Accum
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*3 + 10
		a.Add(x)
		xs = append(xs, x)
	}
	if a.N() != 1000 {
		t.Fatalf("n = %d", a.N())
	}
	if !approx(a.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("accum mean %v vs %v", a.Mean(), Mean(xs))
	}
	if !approx(a.StdDev(), StdDev(xs), 1e-6) {
		t.Fatalf("accum stddev %v vs %v", a.StdDev(), StdDev(xs))
	}
}

func TestPropMeanBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		min, max, _ := MinMax(xs)
		return m >= min-1e-9 && m <= max+1e-9 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
