// Package stats provides the small set of descriptive statistics the
// experiment harnesses report: means and standard deviations across nodes
// and seeds (Figure 5's error bars), and aggregate helpers.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the extrema of xs; ok is false for empty input.
func MinMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// sorted copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Accum accumulates running statistics across repeated experiment runs
// without retaining samples.
type Accum struct {
	n    int
	sum  float64
	sumS float64
}

// Add records one sample.
func (a *Accum) Add(x float64) {
	a.n++
	a.sum += x
	a.sumS += x * x
}

// N returns the number of samples.
func (a *Accum) N() int { return a.n }

// Mean returns the running mean.
func (a *Accum) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// StdDev returns the running population standard deviation.
func (a *Accum) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sumS/float64(a.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
