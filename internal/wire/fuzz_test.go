package wire

import (
	"bytes"
	"testing"
)

// FuzzDecoderNoPanic feeds arbitrary bytes through every decoder entry
// point: malformed input must produce errors, never panics or huge
// allocations.
func FuzzDecoderNoPanic(f *testing.F) {
	e := NewEncoder(64)
	e.PutUint32(7)
	e.PutString("seed")
	e.PutOpaque([]byte{1, 2, 3})
	e.PutStrings([]string{"a", "b"})
	f.Add(append([]byte(nil), e.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		sink := int(d.Uint32())
		sink += len(d.String())
		sink += len(d.Opaque())
		sink += len(d.Strings())
		if d.Bool() {
			sink++
		}
		sink += int(d.Int64())
		_ = d.Float64()
		var fixed [8]byte
		d.FixedOpaque(fixed[:])
		sink += d.ArrayLen()
		_ = d.Done()
		_ = sink
	})
}

// FuzzRoundTrip checks that whatever the encoder produces, the decoder
// reads back verbatim.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(1), "hello", []byte{9, 9})
	f.Add(uint32(0), "", []byte{})
	f.Fuzz(func(t *testing.T, a uint32, s string, p []byte) {
		e := NewEncoder(64)
		e.PutUint32(a)
		e.PutString(s)
		e.PutOpaque(p)
		d := NewDecoder(e.Bytes())
		if d.Uint32() != a {
			t.Fatal("u32 mismatch")
		}
		if d.String() != s {
			t.Fatal("string mismatch")
		}
		if got := d.Opaque(); !bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0) {
			t.Fatal("opaque mismatch")
		}
		if err := d.Done(); err != nil {
			t.Fatal(err)
		}
	})
}
