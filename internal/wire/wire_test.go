package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.PutUint32(0xdeadbeef)
	e.PutInt32(-7)
	e.PutUint64(0x0123456789abcdef)
	e.PutInt64(-1 << 62)
	e.PutBool(true)
	e.PutBool(false)
	e.PutFloat64(3.5)
	e.PutFloat64(math.Inf(-1))

	d := NewDecoder(e.Bytes())
	if v := d.Uint32(); v != 0xdeadbeef {
		t.Errorf("u32 = %x", v)
	}
	if v := d.Int32(); v != -7 {
		t.Errorf("i32 = %d", v)
	}
	if v := d.Uint64(); v != 0x0123456789abcdef {
		t.Errorf("u64 = %x", v)
	}
	if v := d.Int64(); v != -1<<62 {
		t.Errorf("i64 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool mismatch")
	}
	if v := d.Float64(); v != 3.5 {
		t.Errorf("f64 = %v", v)
	}
	if v := d.Float64(); !math.IsInf(v, -1) {
		t.Errorf("f64 inf = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder(32)
		p := bytes.Repeat([]byte{0xab}, n)
		e.PutOpaque(p)
		if e.Len()%4 != 0 {
			t.Fatalf("opaque of %d bytes not 4-aligned: %d", n, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got := d.Opaque()
		if !bytes.Equal(got, p) {
			t.Fatalf("opaque %d round trip: %v", n, got)
		}
		if err := d.Done(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFixedOpaque(t *testing.T) {
	e := NewEncoder(16)
	e.PutFixedOpaque([]byte{1, 2, 3, 4, 5})
	e.PutUint32(9)
	d := NewDecoder(e.Bytes())
	var dst [5]byte
	d.FixedOpaque(dst[:])
	if dst != [5]byte{1, 2, 3, 4, 5} {
		t.Fatalf("fixed = %v", dst)
	}
	if d.Uint32() != 9 {
		t.Fatal("value after padded fixed opaque misaligned")
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.PutString("")
	e.PutString("abc")
	e.PutString("héllo, wörld")
	d := NewDecoder(e.Bytes())
	if d.String() != "" || d.String() != "abc" || d.String() != "héllo, wörld" {
		t.Fatal("string round trip failed")
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestStringsArray(t *testing.T) {
	ss := []string{"a", "", "directory name", "x/y/z"}
	e := NewEncoder(64)
	e.PutStrings(ss)
	d := NewDecoder(e.Bytes())
	got := d.Strings()
	if len(got) != len(ss) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ss {
		if got[i] != ss[i] {
			t.Errorf("strings[%d] = %q", i, got[i])
		}
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if d.Uint32() != 0 {
		t.Error("short read should yield zero")
	}
	if d.Err() != ErrShort {
		t.Errorf("err = %v", d.Err())
	}
	// Further reads stay zero and do not panic.
	if d.Uint64() != 0 || d.String() != "" {
		t.Error("reads after error should yield zeros")
	}
	if d.Done() == nil {
		t.Error("Done should report the error")
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(MaxOpaque + 1)
	d := NewDecoder(e.Bytes())
	if d.Opaque() != nil || d.Err() != ErrTooLong {
		t.Errorf("oversized opaque accepted: %v", d.Err())
	}

	e.Reset()
	e.PutUint32(MaxItems + 1)
	d = NewDecoder(e.Bytes())
	if d.Strings() != nil || d.Err() != ErrTooLong {
		t.Errorf("oversized array accepted: %v", d.Err())
	}

	e.Reset()
	e.PutUint32(MaxItems + 1)
	d = NewDecoder(e.Bytes())
	if d.ArrayLen() != 0 || d.Err() != ErrTooLong {
		t.Errorf("oversized ArrayLen accepted: %v", d.Err())
	}
}

func TestTrailingGarbage(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(1)
	e.PutUint32(2)
	d := NewDecoder(e.Bytes())
	d.Uint32()
	if err := d.Done(); err == nil {
		t.Error("Done should reject trailing bytes")
	}
}

func TestDecoderDoesNotCopyInput(t *testing.T) {
	// Opaque must copy out, so mutating the source after decode is safe.
	e := NewEncoder(16)
	e.PutOpaque([]byte{1, 2, 3, 4})
	buf := append([]byte(nil), e.Bytes()...)
	d := NewDecoder(buf)
	got := d.Opaque()
	buf[4] = 0xff
	if got[0] != 1 {
		t.Fatal("Opaque must return a copy")
	}
}

func TestPropScalarsRoundTrip(t *testing.T) {
	f := func(a uint32, b int32, c uint64, e64 int64, bl bool, fl float64) bool {
		e := NewEncoder(64)
		e.PutUint32(a)
		e.PutInt32(b)
		e.PutUint64(c)
		e.PutInt64(e64)
		e.PutBool(bl)
		e.PutFloat64(fl)
		d := NewDecoder(e.Bytes())
		ok := d.Uint32() == a && d.Int32() == b && d.Uint64() == c &&
			d.Int64() == e64 && d.Bool() == bl
		g := d.Float64()
		if math.IsNaN(fl) {
			ok = ok && math.IsNaN(g)
		} else {
			ok = ok && g == fl
		}
		return ok && d.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropOpaqueStringsRoundTrip(t *testing.T) {
	f := func(p []byte, s string, ss []string) bool {
		e := NewEncoder(64)
		e.PutOpaque(p)
		e.PutString(s)
		e.PutStrings(ss)
		d := NewDecoder(e.Bytes())
		gp := d.Opaque()
		gs := d.String()
		gss := d.Strings()
		if !bytes.Equal(gp, p) && !(len(gp) == 0 && len(p) == 0) {
			return false
		}
		if gs != s {
			return false
		}
		if len(gss) != len(ss) {
			return false
		}
		for i := range ss {
			if gss[i] != ss[i] {
				return false
			}
		}
		return d.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEncodedLengthAligned(t *testing.T) {
	f := func(p []byte, s string) bool {
		e := NewEncoder(32)
		e.PutOpaque(p)
		e.PutString(s)
		return e.Len()%4 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeMixed(b *testing.B) {
	payload := bytes.Repeat([]byte{7}, 1024)
	e := NewEncoder(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutUint32(42)
		e.PutString("lookup")
		e.PutOpaque(payload)
	}
}

func BenchmarkDecodeMixed(b *testing.B) {
	payload := bytes.Repeat([]byte{7}, 1024)
	e := NewEncoder(2048)
	e.PutUint32(42)
	e.PutString("lookup")
	e.PutOpaque(payload)
	buf := e.Bytes()
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		d.Uint32()
		sink += len(d.String())
		sink += len(d.Opaque())
	}
	_ = sink
}
