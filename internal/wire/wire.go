// Package wire implements an XDR-style binary codec (RFC 4506 subset) used
// for NFS RPC bodies and Pastry overlay messages. NFS is defined over XDR,
// so reproducing the encoding keeps the substrate faithful: all quantities
// are big-endian, opaque data is padded to 4-byte boundaries, and strings
// are length-prefixed opaques.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// MaxOpaque bounds a single opaque/string item to keep a corrupted length
// prefix from causing a huge allocation.
const MaxOpaque = 1 << 26 // 64 MiB

// MaxItems bounds decoded array lengths for the same reason.
const MaxItems = 1 << 20

// ErrShort is returned when a decode runs past the end of the buffer.
var ErrShort = errors.New("wire: buffer too short")

// ErrTooLong is returned when a length prefix exceeds the codec limits.
var ErrTooLong = errors.New("wire: item exceeds size limit")

func pad4(n int) int { return (4 - n%4) % 4 }

// Encoder appends XDR-encoded values to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity hint.
func NewEncoder(capHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capHint)}
}

// Bytes returns the encoded buffer. The encoder retains ownership; callers
// must copy if they keep the slice past the next Put call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 appends a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutInt32 appends a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 appends a 64-bit unsigned integer.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutInt64 appends a 64-bit signed integer.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool appends a boolean as a 32-bit 0/1.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFloat64 appends an IEEE-754 double.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutOpaque appends variable-length opaque data: u32 length, bytes, padding.
func (e *Encoder) PutOpaque(p []byte) {
	e.PutUint32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	for i := 0; i < pad4(len(p)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutFixedOpaque appends fixed-length opaque data (no length prefix).
func (e *Encoder) PutFixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	for i := 0; i < pad4(len(p)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// DigestSize is the fixed length of a content digest on the wire (SHA-256,
// see internal/merkle).
const DigestSize = 32

// PutDigest appends a fixed 32-byte content digest.
func (e *Encoder) PutDigest(d [DigestSize]byte) {
	e.PutFixedOpaque(d[:])
}

// PutString appends a string as a variable-length opaque.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := 0; i < pad4(len(s)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutStrings appends a counted array of strings.
func (e *Encoder) PutStrings(ss []string) {
	e.PutUint32(uint32(len(ss)))
	for _, s := range ss {
		e.PutString(s)
	}
}

// Decoder consumes XDR-encoded values from a byte slice.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for decoding. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, if any. Once an error occurs all
// further reads return zero values, so call sites may decode a full struct
// and check Err once.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done returns an error if bytes remain or a decode error occurred; call it
// at the end of a message to reject trailing garbage.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) || n < 0 {
		d.fail(ErrShort)
		return nil
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	return p
}

// Uint32 reads a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// Int32 reads a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 reads a 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// Int64 reads a 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool reads a 32-bit boolean. Any nonzero value is true, per XDR practice.
func (d *Decoder) Bool() bool { return d.Uint32() != 0 }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Opaque reads variable-length opaque data. The returned slice is a copy.
func (d *Decoder) Opaque() []byte {
	n := d.Uint32()
	if n > MaxOpaque {
		d.fail(ErrTooLong)
		return nil
	}
	p := d.take(int(n))
	if p == nil {
		return nil
	}
	d.take(pad4(int(n)))
	out := make([]byte, n)
	copy(out, p)
	return out
}

// FixedOpaque reads n bytes of fixed-length opaque data into dst.
func (d *Decoder) FixedOpaque(dst []byte) {
	p := d.take(len(dst))
	if p == nil {
		return
	}
	copy(dst, p)
	d.take(pad4(len(dst)))
}

// Digest reads a fixed 32-byte content digest.
func (d *Decoder) Digest() (out [DigestSize]byte) {
	d.FixedOpaque(out[:])
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	if n > MaxOpaque {
		d.fail(ErrTooLong)
		return ""
	}
	p := d.take(int(n))
	if p == nil {
		return ""
	}
	d.take(pad4(int(n)))
	return string(p)
}

// Strings reads a counted array of strings.
func (d *Decoder) Strings() []string {
	n := d.Uint32()
	if n > MaxItems {
		d.fail(ErrTooLong)
		return nil
	}
	out := make([]string, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		out = append(out, d.String())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// ArrayLen reads a counted-array length prefix and validates it.
func (d *Decoder) ArrayLen() int {
	n := d.Uint32()
	if n > MaxItems {
		d.fail(ErrTooLong)
		return 0
	}
	return int(n)
}
