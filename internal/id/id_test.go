package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashKeyDeterministic(t *testing.T) {
	a, b := HashKey("beta"), HashKey("beta")
	if a != b {
		t.Fatalf("HashKey not deterministic: %v vs %v", a, b)
	}
	if HashKey("beta") == HashKey("gamma") {
		t.Fatalf("distinct names hashed to the same key")
	}
}

func TestHashKeyKnownVector(t *testing.T) {
	// SHA-1("abc") = a9993e364706816aba3e25717850c26c9cd0d89d; key keeps 128 bits.
	want := MustHex("a9993e364706816aba3e25717850c26c")
	if got := HashKey("abc"); got != want {
		t.Fatalf("HashKey(abc) = %v, want %v", got, want)
	}
}

func TestFromHexRoundTrip(t *testing.T) {
	cases := []string{
		"00000000000000000000000000000000",
		"ffffffffffffffffffffffffffffffff",
		"0123456789abcdef0123456789abcdef",
	}
	for _, c := range cases {
		v, err := FromHex(c)
		if err != nil {
			t.Fatalf("FromHex(%q): %v", c, err)
		}
		if v.String() != c {
			t.Errorf("round trip %q -> %q", c, v.String())
		}
	}
}

func TestFromHexShortPadsLeft(t *testing.T) {
	v, err := FromHex("ff")
	if err != nil {
		t.Fatal(err)
	}
	if v != FromUint64(0xff) {
		t.Fatalf("FromHex(ff) = %v", v)
	}
}

func TestFromHexErrors(t *testing.T) {
	if _, err := FromHex("zz"); err == nil {
		t.Error("FromHex(zz) should fail")
	}
	if _, err := FromHex("000000000000000000000000000000000"); err == nil {
		t.Error("FromHex of 33 digits should fail")
	}
}

func TestAddSubIdentities(t *testing.T) {
	a := MustHex("0123456789abcdef0123456789abcdef")
	b := MustHex("fedcba9876543210fedcba9876543210")
	if got := a.Add(Zero); got != a {
		t.Errorf("a+0 = %v", got)
	}
	if got := a.Sub(a); got != Zero {
		t.Errorf("a-a = %v", got)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("(a+b)-b = %v, want %v", got, a)
	}
	// Wraparound: max + 1 == 0.
	if got := MaxID.Add(FromUint64(1)); got != Zero {
		t.Errorf("max+1 = %v, want 0", got)
	}
	// 0 - 1 == max.
	if got := Zero.Sub(FromUint64(1)); got != MaxID {
		t.Errorf("0-1 = %v, want max", got)
	}
}

func TestCmpOrdering(t *testing.T) {
	small := FromUint64(5)
	big := FromUint64(7)
	if small.Cmp(big) != -1 || big.Cmp(small) != 1 || small.Cmp(small) != 0 {
		t.Fatalf("Cmp misordered")
	}
	if !small.Less(big) || big.Less(small) {
		t.Fatalf("Less misordered")
	}
}

func TestDistanceSymmetricAndMinimal(t *testing.T) {
	a := FromUint64(10)
	b := MaxID // distance should wrap: |a - b| circularly = 11
	d := a.Distance(b)
	if d != FromUint64(11) {
		t.Fatalf("wrap distance = %v, want 11", d)
	}
	if a.Distance(b) != b.Distance(a) {
		t.Fatalf("distance not symmetric")
	}
}

func TestBetween(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if !Between(FromUint64(15), a, b) {
		t.Error("15 should be in (10,20]")
	}
	if !Between(b, a, b) {
		t.Error("20 should be in (10,20]")
	}
	if Between(a, a, b) {
		t.Error("10 should not be in (10,20]")
	}
	if Between(FromUint64(25), a, b) {
		t.Error("25 should not be in (10,20]")
	}
	// Wrapping arc (20, 10].
	if !Between(FromUint64(5), b, a) {
		t.Error("5 should be in wrapping (20,10]")
	}
	if !Between(MaxID, b, a) {
		t.Error("max should be in wrapping (20,10]")
	}
	if Between(FromUint64(15), b, a) {
		t.Error("15 should not be in wrapping (20,10]")
	}
	// Degenerate full arc.
	if !Between(FromUint64(99), a, a) || Between(a, a, a) {
		t.Error("full-arc convention violated")
	}
}

func TestDigitExtraction(t *testing.T) {
	v := MustHex("0123456789abcdef0123456789abcdef")
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf}
	for i := 0; i < 16; i++ {
		if got := v.Digit(i); got != want[i] {
			t.Errorf("digit %d = %x, want %x", i, got, want[i])
		}
		if got := v.Digit(i + 16); got != want[i] {
			t.Errorf("digit %d = %x, want %x", i+16, got, want[i])
		}
	}
}

func TestDigitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zero.Digit(Digits)
}

func TestWithDigit(t *testing.T) {
	v := Zero
	for i := 0; i < Digits; i++ {
		v = v.WithDigit(i, 0xf)
	}
	if v != MaxID {
		t.Fatalf("setting all digits to f gave %v", v)
	}
	u := MaxID.WithDigit(0, 0)
	if u.Digit(0) != 0 || u.Digit(1) != 0xf {
		t.Fatalf("WithDigit(0,0) gave %v", u)
	}
}

func TestSharedPrefixLen(t *testing.T) {
	a := MustHex("abcd0000000000000000000000000000")
	b := MustHex("abce0000000000000000000000000000")
	if got := SharedPrefixLen(a, b); got != 3 {
		t.Fatalf("SharedPrefixLen = %d, want 3", got)
	}
	if got := SharedPrefixLen(a, a); got != Digits {
		t.Fatalf("self prefix = %d, want %d", got, Digits)
	}
	c := MustHex("1bcd0000000000000000000000000000")
	if got := SharedPrefixLen(a, c); got != 0 {
		t.Fatalf("prefix = %d, want 0", got)
	}
}

func TestClosest(t *testing.T) {
	key := FromUint64(100)
	cands := []ID{FromUint64(90), FromUint64(105), FromUint64(200)}
	best, ok := Closest(key, cands)
	if !ok || best != FromUint64(105) {
		t.Fatalf("Closest = %v ok=%v, want 105", best, ok)
	}
	// Tie: 95 and 105 are both 5 away; smaller id wins.
	best, _ = Closest(key, []ID{FromUint64(105), FromUint64(95)})
	if best != FromUint64(95) {
		t.Fatalf("tie break = %v, want 95", best)
	}
	if _, ok := Closest(key, nil); ok {
		t.Fatal("Closest of empty set should report !ok")
	}
}

func TestRand128Deterministic(t *testing.T) {
	s1, s2 := uint64(42), uint64(42)
	for i := 0; i < 10; i++ {
		if Rand128(&s1) != Rand128(&s2) {
			t.Fatal("Rand128 not reproducible per seed")
		}
	}
	s3 := uint64(43)
	if a, b := Rand128(&s1), Rand128(&s3); a == b {
		t.Fatal("different seeds produced equal streams")
	}
}

func TestShortAndString(t *testing.T) {
	v := MustHex("0123456789abcdef0123456789abcdef")
	if v.Short() != "01234567" {
		t.Fatalf("Short = %q", v.Short())
	}
	if len(v.String()) != 32 {
		t.Fatalf("String len = %d", len(v.String()))
	}
}

// --- property-based tests ---

func randID(r *rand.Rand) ID {
	var v ID
	r.Read(v[:])
	return v
}

func TestPropAddSubInverse(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		return x.Add(y).Sub(y) == x && x.Sub(y).Add(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDistanceBounds(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		d := x.Distance(y)
		// Symmetric, zero iff equal, and never exceeds half the ring.
		if d != y.Distance(x) {
			return false
		}
		if (d == Zero) != (x == y) {
			return false
		}
		return !Half.Less(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDigitsRoundTrip(t *testing.T) {
	f := func(a [16]byte) bool {
		x := ID(a)
		v := Zero
		for i := 0; i < Digits; i++ {
			v = v.WithDigit(i, x.Digit(i))
		}
		return v == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSharedPrefixConsistent(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		n := SharedPrefixLen(x, y)
		for i := 0; i < n; i++ {
			if x.Digit(i) != y.Digit(i) {
				return false
			}
		}
		if n < Digits && x.Digit(n) == y.Digit(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropBetweenPartition(t *testing.T) {
	// For distinct a != b, every x != a, x != b lies in exactly one of
	// (a, b] and (b, a].
	f := func(xa, aa, ba [16]byte) bool {
		x, a, b := ID(xa), ID(aa), ID(ba)
		if a == b || x == a || x == b {
			return true
		}
		in1, in2 := Between(x, a, b), Between(x, b, a)
		return in1 != in2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropClosestIsMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		key := randID(r)
		n := 1 + r.Intn(20)
		cands := make([]ID, n)
		for i := range cands {
			cands[i] = randID(r)
		}
		best, ok := Closest(key, cands)
		if !ok {
			t.Fatal("no winner for non-empty candidates")
		}
		bd := key.Distance(best)
		for _, c := range cands {
			if key.Distance(c).Less(bd) {
				t.Fatalf("candidate %v closer to %v than winner %v", c, key, best)
			}
		}
	}
}

func BenchmarkHashKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashKey("some/directory/name")
	}
}

func BenchmarkDistance(b *testing.B) {
	x := HashKey("a")
	y := HashKey("b")
	for i := 0; i < b.N; i++ {
		x.Distance(y)
	}
}
