// Package id implements the 128-bit circular node/key identifier space used
// by the Pastry overlay (Rowstron & Druschel, Middleware 2001) and by Kosha's
// directory-name hashing (SC 2004, Section 3.1).
//
// Identifiers are unsigned 128-bit integers living on a ring of size 2^128.
// Keys are derived from directory names with SHA-1 (the paper's choice,
// FIPS 180-1), truncated to 128 bits. Routing interprets an identifier as a
// string of digits in base 2^b; Kosha uses b = 4, i.e. hexadecimal digits.
package id

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// Bytes is the identifier width in bytes (128 bits).
const Bytes = 16

// Digits is the number of base-2^b digits in an identifier for b = 4.
const Digits = 32

// BitsPerDigit is Pastry's b parameter. The paper quotes typical bases of 16
// or 32; we fix b = 4 (base 16), FreePastry's default.
const BitsPerDigit = 4

// ID is an unsigned 128-bit identifier on the circular space, stored
// big-endian: b[0] holds the most significant byte.
type ID [Bytes]byte

// Zero is the additive identity of the ring.
var Zero ID

// MaxID is the largest identifier, 2^128 - 1.
var MaxID = ID{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// HashKey derives the 128-bit key for a name, per Section 3.1: "A 128-bit
// unique key is created via a SHA-1 hash of the directory name." SHA-1 yields
// 160 bits; the leading 128 are kept.
func HashKey(name string) ID {
	sum := sha1.Sum([]byte(name))
	var out ID
	copy(out[:], sum[:Bytes])
	return out
}

// FromUint64 builds an identifier whose low 64 bits are v. Useful in tests.
func FromUint64(v uint64) ID {
	var out ID
	binary.BigEndian.PutUint64(out[8:], v)
	return out
}

// FromHex parses a hexadecimal identifier of up to 32 digits. Shorter
// strings are treated as the low-order digits (left-padded with zeros).
func FromHex(s string) (ID, error) {
	if len(s) > 2*Bytes {
		return Zero, fmt.Errorf("id: hex string %q longer than %d digits", s, 2*Bytes)
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("id: bad hex %q: %w", s, err)
	}
	var out ID
	copy(out[Bytes-len(raw):], raw)
	return out, nil
}

// MustHex is FromHex for constant inputs; it panics on malformed input.
func MustHex(s string) ID {
	v, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the identifier as 32 lowercase hex digits.
func (a ID) String() string { return hex.EncodeToString(a[:]) }

// Short renders the leading 8 hex digits, for logs.
func (a ID) Short() string { return hex.EncodeToString(a[:4]) }

// IsZero reports whether a is the zero identifier.
func (a ID) IsZero() bool { return a == Zero }

// Cmp compares a and b as unsigned integers: -1, 0, or +1.
func (a ID) Cmp(b ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b as unsigned integers.
func (a ID) Less(b ID) bool { return a.Cmp(b) < 0 }

// Add returns a + b mod 2^128.
func (a ID) Add(b ID) ID {
	var out ID
	var carry uint64
	for i := Bytes - 1; i >= 0; i-- {
		s := uint64(a[i]) + uint64(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns a - b mod 2^128.
func (a ID) Sub(b ID) ID {
	var out ID
	var borrow uint64
	for i := Bytes - 1; i >= 0; i-- {
		d := uint64(a[i]) - uint64(b[i]) - borrow
		out[i] = byte(d)
		if d>>63 != 0 { // wrapped below zero
			borrow = 1
		} else {
			borrow = 0
		}
	}
	return out
}

// Half is 2^127, the midpoint of the ring.
var Half = ID{0x80}

// Distance returns the minimal circular distance between a and b, i.e.
// min(a-b, b-a) mod 2^128. The result is at most 2^127.
func (a ID) Distance(b ID) ID {
	d1 := a.Sub(b)
	d2 := b.Sub(a)
	if d1.Less(d2) {
		return d1
	}
	return d2
}

// CWDist returns the clockwise (increasing, wrapping) distance from a to b.
func (a ID) CWDist(b ID) ID { return b.Sub(a) }

// Between reports whether x lies on the clockwise arc (a, b], walking from a
// toward increasing identifiers with wraparound. By convention the empty arc
// (a == b) contains every x except a itself, matching successor-ring usage.
func Between(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	return a.CWDist(x).Cmp(a.CWDist(b)) <= 0 && x != a
}

// Digit returns the i-th base-2^BitsPerDigit digit of a, counting from the
// most significant digit (i = 0).
func (a ID) Digit(i int) int {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("id: digit index %d out of range", i))
	}
	by := a[i/2]
	if i%2 == 0 {
		return int(by >> 4)
	}
	return int(by & 0x0f)
}

// SharedPrefixLen returns the number of leading base-2^b digits a and b
// share. It is the row index used by Pastry's prefix routing.
func SharedPrefixLen(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		if a[i] == b[i] {
			continue
		}
		// Bytes hold two digits; check whether the high nibble matches.
		if a[i]>>4 == b[i]>>4 {
			return 2*i + 1
		}
		return 2 * i
	}
	return Digits
}

// WithDigit returns a copy of a whose i-th digit is set to d, used when
// probing routing-table slots during joins.
func (a ID) WithDigit(i, d int) ID {
	if d < 0 || d >= 1<<BitsPerDigit {
		panic(fmt.Sprintf("id: digit value %d out of range", d))
	}
	out := a
	by := i / 2
	if i%2 == 0 {
		out[by] = byte(d)<<4 | out[by]&0x0f
	} else {
		out[by] = out[by]&0xf0 | byte(d)
	}
	return out
}

// Closest returns the identifier among candidates numerically closest to key
// on the ring, breaking exact ties toward the numerically smaller id (so the
// choice is total). ok is false when candidates is empty.
func Closest(key ID, candidates []ID) (best ID, ok bool) {
	for _, c := range candidates {
		if !ok {
			best, ok = c, true
			continue
		}
		dc, db := key.Distance(c), key.Distance(b4(best))
		switch dc.Cmp(db) {
		case -1:
			best = c
		case 0:
			if c.Less(best) {
				best = c
			}
		}
	}
	return best, ok
}

func b4(x ID) ID { return x }

// Rand128 derives a pseudo-random identifier from a 64-bit stream state,
// suitable for simulations that must be reproducible per seed. It applies a
// splitmix64-style mix twice to fill the 128 bits.
func Rand128(state *uint64) ID {
	var out ID
	binary.BigEndian.PutUint64(out[:8], splitmix64(state))
	binary.BigEndian.PutUint64(out[8:], splitmix64(state))
	return out
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// LeadingZeros returns the number of leading zero bits in a, handy for
// sanity checks on hash uniformity in tests.
func (a ID) LeadingZeros() int {
	n := 0
	for i := 0; i < Bytes; i++ {
		if a[i] == 0 {
			n += 8
			continue
		}
		return n + bits.LeadingZeros8(a[i])
	}
	return n
}
