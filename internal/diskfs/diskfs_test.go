package diskfs

import (
	"testing"

	"repro/internal/fstest"
	"repro/internal/localfs"
	"repro/internal/simnet"
)

func factory(t *testing.T, capacity int64) localfs.FileSystem {
	t.Helper()
	f, err := Open(t.TempDir(), capacity, simnet.Disk7200)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConformance(t *testing.T) {
	fstest.Run(t, factory)
}

// TestReopenPreservesState is what the on-disk backend exists for: a
// koshad restart finds its contributed data (and accounting) intact.
func TestReopenPreservesState(t *testing.T) {
	dir := t.TempDir()
	f1, err := Open(dir, 1<<20, simnet.Disk7200)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.WriteFile("/alice/notes.txt", []byte("persist me")); err != nil {
		t.Fatal(err)
	}
	if err := f1.WriteFile("/alice/deep/tree/f", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f1.Symlink(localfs.RootIno, "lnk", "alice#deadbeef"); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(dir, 1<<20, simnet.Disk7200)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f2.ReadFile("/alice/notes.txt")
	if err != nil || string(data) != "persist me" {
		t.Fatalf("reopen read: %q err=%v", data, err)
	}
	if f2.NumFiles() != 2 {
		t.Fatalf("reopen files = %d", f2.NumFiles())
	}
	want := int64(len("persist me") + 5 + len("alice#deadbeef"))
	if f2.Used() != want {
		t.Fatalf("reopen used = %d, want %d", f2.Used(), want)
	}
	a, err := f2.LookupPath("/lnk")
	if err != nil || a.Type != localfs.TypeSymlink {
		t.Fatalf("reopen symlink: %+v err=%v", a, err)
	}
	target, _, err := f2.Readlink(a.Ino)
	if err != nil || target != "alice#deadbeef" {
		t.Fatalf("reopen readlink = %q err=%v", target, err)
	}
}

// TestKoshaNodeOnDisk runs a Kosha store operation mix against the on-disk
// backend through the NFS server, as koshad -datadir would.
func TestDiskBackedNFSServer(t *testing.T) {
	f := factory(t, 0)
	// Exercise handle-based flows that koshad uses.
	root := localfs.RootIno
	d, _, err := f.Mkdir(root, "store", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := f.Create(d.Ino, "obj", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Write(a.Ino, 0, make([]byte, 100_000)); err != nil {
		t.Fatal(err)
	}
	data, eof, _, err := f.Read(a.Ino, 99_000, 2000)
	if err != nil || !eof || len(data) != 1000 {
		t.Fatalf("tail read: %d bytes eof=%v err=%v", len(data), eof, err)
	}
}
