// Package diskfs is the persistent store backend: the same FileSystem
// surface as internal/localfs, backed by a real directory tree. cmd/koshad
// uses it (via -datadir) so a node's contributed partition survives daemon
// restarts, exactly as a /kosha_store partition would (Section 5).
//
// Inode numbers are assigned per path lazily and kept in a bidirectional
// table; a rename rebinds the subtree's paths to their inodes, so handles
// held by NFS clients stay valid across renames as they do on a real
// server. Capacity accounting mirrors localfs: used bytes are scanned at
// open and maintained incrementally, and writes beyond the contributed
// capacity fail with the same ErrNoSpace that drives Kosha's redirection.
package diskfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"repro/internal/localfs"
	"repro/internal/simnet"
)

// FS is a contributed partition rooted at a host directory.
type FS struct {
	mu       sync.Mutex
	rootDir  string
	capacity int64
	used     int64
	files    int64
	disk     simnet.DiskModel

	nextIno uint64
	inoOf   map[string]uint64 // relpath ("/" based) -> ino
	pathOf  map[uint64]string // ino -> relpath

	owners map[string][2]uint32 // uid/gid overrides (chown needs privileges)

	notify []func(path string) // mutation hooks; run with f.mu held
}

var _ localfs.FileSystem = (*FS)(nil)

// Open initializes (creating if needed) a store rooted at dir. Existing
// contents are scanned for capacity accounting.
func Open(dir string, capacity int64, disk simnet.DiskModel) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskfs: %w", err)
	}
	f := &FS{
		rootDir:  dir,
		capacity: capacity,
		disk:     disk,
		nextIno:  2,
		inoOf:    map[string]uint64{"/": localfs.RootIno},
		pathOf:   map[uint64]string{localfs.RootIno: "/"},
		owners:   map[string][2]uint32{},
	}
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel := f.rel(p)
		if rel == "/" {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		if d.Type()&fs.ModeSymlink != 0 {
			if t, rerr := os.Readlink(p); rerr == nil {
				f.used += int64(len(t))
			}
		} else if d.Type().IsRegular() {
			f.used += info.Size()
			f.files++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("diskfs: scan: %w", err)
	}
	return f, nil
}

// Dir returns the host directory backing the store.
func (f *FS) Dir() string { return f.rootDir }

// rel converts a host path to the store-relative "/x/y" form.
func (f *FS) rel(host string) string {
	r, err := filepath.Rel(f.rootDir, host)
	if err != nil || r == "." {
		return "/"
	}
	return "/" + filepath.ToSlash(r)
}

// host converts a store-relative path to the host path.
func (f *FS) host(rel string) string {
	return filepath.Join(f.rootDir, filepath.FromSlash(strings.TrimPrefix(path.Clean("/"+rel), "/")))
}

// inoFor returns (assigning if new) the inode number of a relative path.
// Caller holds f.mu.
func (f *FS) inoFor(rel string) uint64 {
	if ino, ok := f.inoOf[rel]; ok {
		return ino
	}
	ino := f.nextIno
	f.nextIno++
	f.inoOf[rel] = ino
	f.pathOf[ino] = rel
	return ino
}

// pathFor resolves an inode to its relative path. Caller holds f.mu.
func (f *FS) pathFor(ino uint64) (string, error) {
	p, ok := f.pathOf[ino]
	if !ok {
		return "", fmt.Errorf("%w: ino %d", localfs.ErrStale, ino)
	}
	return p, nil
}

// dropPath forgets a path's inode binding (and, for directories, its
// subtree's). Caller holds f.mu.
func (f *FS) dropPath(rel string) {
	if ino, ok := f.inoOf[rel]; ok {
		delete(f.inoOf, rel)
		delete(f.pathOf, ino)
	}
	prefix := rel + "/"
	for p, ino := range f.inoOf {
		if strings.HasPrefix(p, prefix) {
			delete(f.inoOf, p)
			delete(f.pathOf, ino)
		}
	}
}

// rebindSubtree moves inode bindings from one path prefix to another,
// preserving handles across renames. Caller holds f.mu.
func (f *FS) rebindSubtree(from, to string) {
	moves := map[string]string{}
	if _, ok := f.inoOf[from]; ok {
		moves[from] = to
	}
	prefix := from + "/"
	for p := range f.inoOf {
		if strings.HasPrefix(p, prefix) {
			moves[p] = to + strings.TrimPrefix(p, from)
		}
	}
	for oldP, newP := range moves {
		ino := f.inoOf[oldP]
		delete(f.inoOf, oldP)
		// An overwritten destination loses its binding.
		if prev, ok := f.inoOf[newP]; ok {
			delete(f.pathOf, prev)
		}
		f.inoOf[newP] = ino
		f.pathOf[ino] = newP
	}
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return localfs.ErrNoEnt
	case errors.Is(err, syscall.ENOTEMPTY):
		return localfs.ErrNotEmpty
	case errors.Is(err, fs.ErrExist):
		return localfs.ErrExist
	case errors.Is(err, syscall.ENOTDIR):
		return localfs.ErrNotDir
	case errors.Is(err, syscall.EISDIR):
		return localfs.ErrIsDir
	case errors.Is(err, syscall.EINVAL):
		return localfs.ErrInval
	default:
		return err
	}
}

// attrAt builds an Attr for a path from lstat. Caller holds f.mu.
func (f *FS) attrAt(rel string) (localfs.Attr, error) {
	info, err := os.Lstat(f.host(rel))
	if err != nil {
		return localfs.Attr{}, mapErr(err)
	}
	a := localfs.Attr{
		Ino:   f.inoFor(rel),
		Mode:  uint32(info.Mode().Perm()),
		Nlink: 1,
		Size:  info.Size(),
		Atime: info.ModTime(),
		Mtime: info.ModTime(),
		Ctime: info.ModTime(),
	}
	switch {
	case info.IsDir():
		a.Type = localfs.TypeDir
		a.Nlink = 2
		a.Size = 0
	case info.Mode()&fs.ModeSymlink != 0:
		a.Type = localfs.TypeSymlink
		if t, err := os.Readlink(f.host(rel)); err == nil {
			a.Size = int64(len(t))
		}
	default:
		a.Type = localfs.TypeRegular
	}
	if o, ok := f.owners[rel]; ok {
		a.UID, a.GID = o[0], o[1]
	}
	return a, nil
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsRune(name, '/') {
		return fmt.Errorf("%w: bad name %q", localfs.ErrInval, name)
	}
	if len(name) > localfs.MaxNameLen {
		return fmt.Errorf("%w: name too long", localfs.ErrInval)
	}
	return nil
}

// OnMutation registers fn to be called with the store-relative path of every
// mutated entry. fn runs while the store's lock is held: it must be fast and
// must not call back into the store. Implements localfs.MutationNotifier.
func (f *FS) OnMutation(fn func(path string)) {
	f.mu.Lock()
	f.notify = append(f.notify, fn)
	f.mu.Unlock()
}

// noteMutation invokes the registered hooks. Caller holds f.mu.
func (f *FS) noteMutation(rel string) {
	for _, fn := range f.notify {
		fn(rel)
	}
}

// charge reserves n additional bytes against capacity. Caller holds f.mu.
func (f *FS) charge(n int64) error {
	if f.capacity > 0 && n > 0 && f.used+n > f.capacity {
		return localfs.ErrNoSpace
	}
	f.used += n
	return nil
}

// --- handle-based operations ---

// Getattr returns the attributes for ino.
func (f *FS) Getattr(ino uint64) (localfs.Attr, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	rel, err := f.pathFor(ino)
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	a, err := f.attrAt(rel)
	if errors.Is(err, localfs.ErrNoEnt) {
		err = localfs.ErrStale
	}
	return a, cost, err
}

// Setattr updates mode/size/times; uid/gid are recorded (chown requires
// privileges a test process lacks).
func (f *FS) Setattr(ino uint64, sa localfs.SetAttr) (localfs.Attr, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	rel, err := f.pathFor(ino)
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	host := f.host(rel)
	cur, err := f.attrAt(rel)
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	if sa.Size != nil {
		if cur.Type == localfs.TypeDir {
			return localfs.Attr{}, cost, localfs.ErrIsDir
		}
		if cur.Type != localfs.TypeRegular {
			return localfs.Attr{}, cost, localfs.ErrInval
		}
		if *sa.Size < 0 || *sa.Size > localfs.MaxFileSize {
			return localfs.Attr{}, cost, localfs.ErrTooBig
		}
		delta := *sa.Size - cur.Size
		if err := f.charge(delta); err != nil {
			return localfs.Attr{}, cost, err
		}
		if err := os.Truncate(host, *sa.Size); err != nil {
			f.used -= delta
			return localfs.Attr{}, cost, mapErr(err)
		}
		cost = simnet.Seq(cost, f.disk.OpCost(int(abs64(delta))))
	}
	if sa.Mode != nil {
		if err := os.Chmod(host, fs.FileMode(*sa.Mode&0o777)); err != nil {
			return localfs.Attr{}, cost, mapErr(err)
		}
	}
	if sa.Mtime != nil || sa.Atime != nil {
		at, mt := cur.Atime, cur.Mtime
		if sa.Atime != nil {
			at = *sa.Atime
		}
		if sa.Mtime != nil {
			mt = *sa.Mtime
		}
		os.Chtimes(host, at, mt)
	}
	if sa.UID != nil || sa.GID != nil {
		o := f.owners[rel]
		if sa.UID != nil {
			o[0] = *sa.UID
		}
		if sa.GID != nil {
			o[1] = *sa.GID
		}
		f.owners[rel] = o
	}
	f.noteMutation(rel)
	a, err := f.attrAt(rel)
	return a, cost, err
}

// Lookup finds name within directory dirIno.
func (f *FS) Lookup(dirIno uint64, name string) (localfs.Attr, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.pathFor(dirIno)
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	if a, aerr := f.attrAt(dir); aerr != nil {
		return localfs.Attr{}, cost, aerr
	} else if a.Type != localfs.TypeDir {
		return localfs.Attr{}, cost, localfs.ErrNotDir
	}
	a, err := f.attrAt(path.Join(dir, name))
	return a, cost, err
}

// Create makes a regular file (UNCHECKED truncate semantics when not
// exclusive, matching localfs).
func (f *FS) Create(dirIno uint64, name string, mode uint32, exclusive bool) (localfs.Attr, simnet.Cost, error) {
	if err := checkName(name); err != nil {
		return localfs.Attr{}, 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.pathFor(dirIno)
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	rel := path.Join(dir, name)
	host := f.host(rel)
	if cur, err := f.attrAt(rel); err == nil {
		if exclusive {
			return localfs.Attr{}, cost, localfs.ErrExist
		}
		if cur.Type != localfs.TypeRegular {
			return localfs.Attr{}, cost, localfs.ErrIsDir
		}
		if err := os.Truncate(host, 0); err != nil {
			return localfs.Attr{}, cost, mapErr(err)
		}
		f.used -= cur.Size
		f.noteMutation(rel)
		a, err := f.attrAt(rel)
		return a, cost, err
	}
	fh, err := os.OpenFile(host, os.O_CREATE|os.O_EXCL|os.O_WRONLY, fs.FileMode(mode&0o777))
	if err != nil {
		return localfs.Attr{}, cost, mapErr(err)
	}
	fh.Close()
	f.files++
	f.noteMutation(rel)
	a, err := f.attrAt(rel)
	return a, cost, err
}

// Mkdir makes a directory.
func (f *FS) Mkdir(dirIno uint64, name string, mode uint32) (localfs.Attr, simnet.Cost, error) {
	if err := checkName(name); err != nil {
		return localfs.Attr{}, 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.pathFor(dirIno)
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	rel := path.Join(dir, name)
	if _, err := f.attrAt(rel); err == nil {
		return localfs.Attr{}, cost, localfs.ErrExist
	}
	if err := os.Mkdir(f.host(rel), fs.FileMode(mode&0o777)); err != nil {
		return localfs.Attr{}, cost, mapErr(err)
	}
	f.noteMutation(rel)
	a, err := f.attrAt(rel)
	return a, cost, err
}

// Symlink makes a symbolic link.
func (f *FS) Symlink(dirIno uint64, name, target string) (localfs.Attr, simnet.Cost, error) {
	if err := checkName(name); err != nil {
		return localfs.Attr{}, 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.pathFor(dirIno)
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	rel := path.Join(dir, name)
	if _, err := f.attrAt(rel); err == nil {
		return localfs.Attr{}, cost, localfs.ErrExist
	}
	if err := f.charge(int64(len(target))); err != nil {
		return localfs.Attr{}, cost, err
	}
	if err := os.Symlink(target, f.host(rel)); err != nil {
		f.used -= int64(len(target))
		return localfs.Attr{}, cost, mapErr(err)
	}
	f.noteMutation(rel)
	a, err := f.attrAt(rel)
	return a, cost, err
}

// Readlink returns a symlink's target.
func (f *FS) Readlink(ino uint64) (string, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	rel, err := f.pathFor(ino)
	if err != nil {
		return "", cost, err
	}
	t, err := os.Readlink(f.host(rel))
	if err != nil {
		return "", cost, localfs.ErrInval
	}
	return t, cost, nil
}

// Read returns up to count bytes at offset.
func (f *FS) Read(ino uint64, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	rel, err := f.pathFor(ino)
	if err != nil {
		return nil, false, cost, err
	}
	a, err := f.attrAt(rel)
	if err != nil {
		return nil, false, cost, err
	}
	if a.Type == localfs.TypeDir {
		return nil, false, cost, localfs.ErrIsDir
	}
	if a.Type != localfs.TypeRegular || offset < 0 || count < 0 {
		return nil, false, cost, localfs.ErrInval
	}
	fh, err := os.Open(f.host(rel))
	if err != nil {
		return nil, false, cost, mapErr(err)
	}
	defer fh.Close()
	if offset >= a.Size {
		return nil, true, cost, nil
	}
	end := offset + int64(count)
	if end > a.Size {
		end = a.Size
	}
	buf := make([]byte, end-offset)
	if _, err := fh.ReadAt(buf, offset); err != nil {
		return nil, false, cost, mapErr(err)
	}
	return buf, end == a.Size, f.disk.OpCost(len(buf)), nil
}

// Write stores data at offset, extending the file as needed.
func (f *FS) Write(ino uint64, offset int64, data []byte) (int, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(len(data))
	rel, err := f.pathFor(ino)
	if err != nil {
		return 0, f.disk.OpCost(0), err
	}
	a, err := f.attrAt(rel)
	if err != nil {
		return 0, f.disk.OpCost(0), err
	}
	if a.Type == localfs.TypeDir {
		return 0, f.disk.OpCost(0), localfs.ErrIsDir
	}
	if a.Type != localfs.TypeRegular || offset < 0 {
		return 0, f.disk.OpCost(0), localfs.ErrInval
	}
	end := offset + int64(len(data))
	if end > localfs.MaxFileSize {
		return 0, f.disk.OpCost(0), localfs.ErrTooBig
	}
	if grow := end - a.Size; grow > 0 {
		if err := f.charge(grow); err != nil {
			return 0, f.disk.OpCost(0), err
		}
	}
	fh, err := os.OpenFile(f.host(rel), os.O_WRONLY, 0)
	if err != nil {
		return 0, f.disk.OpCost(0), mapErr(err)
	}
	defer fh.Close()
	if _, err := fh.WriteAt(data, offset); err != nil {
		return 0, f.disk.OpCost(0), mapErr(err)
	}
	f.noteMutation(rel)
	return len(data), cost, nil
}

// Remove unlinks a regular file or symlink.
func (f *FS) Remove(dirIno uint64, name string) (simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.pathFor(dirIno)
	if err != nil {
		return cost, err
	}
	rel := path.Join(dir, name)
	a, err := f.attrAt(rel)
	if err != nil {
		return cost, err
	}
	if a.Type == localfs.TypeDir {
		return cost, localfs.ErrIsDir
	}
	if err := os.Remove(f.host(rel)); err != nil {
		return cost, mapErr(err)
	}
	f.used -= a.Size
	if a.Type == localfs.TypeRegular {
		f.files--
	}
	f.dropPath(rel)
	delete(f.owners, rel)
	f.noteMutation(rel)
	return cost, nil
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(dirIno uint64, name string) (simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.pathFor(dirIno)
	if err != nil {
		return cost, err
	}
	rel := path.Join(dir, name)
	a, err := f.attrAt(rel)
	if err != nil {
		return cost, err
	}
	if a.Type != localfs.TypeDir {
		return cost, localfs.ErrNotDir
	}
	if ents, err := os.ReadDir(f.host(rel)); err == nil && len(ents) > 0 {
		return cost, localfs.ErrNotEmpty
	}
	if err := os.Remove(f.host(rel)); err != nil {
		return cost, mapErr(err)
	}
	f.dropPath(rel)
	f.noteMutation(rel)
	return cost, nil
}

// Rename moves srcName in srcDir to dstName in dstDir.
func (f *FS) Rename(srcDir uint64, srcName string, dstDir uint64, dstName string) (simnet.Cost, error) {
	if err := checkName(dstName); err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	sd, err := f.pathFor(srcDir)
	if err != nil {
		return cost, err
	}
	dd, err := f.pathFor(dstDir)
	if err != nil {
		return cost, err
	}
	from := path.Join(sd, srcName)
	to := path.Join(dd, dstName)
	fa, err := f.attrAt(from)
	if err != nil {
		return cost, err
	}
	if ta, err := f.attrAt(to); err == nil {
		switch {
		case ta.Type == localfs.TypeDir && fa.Type != localfs.TypeDir:
			return cost, localfs.ErrIsDir
		case ta.Type != localfs.TypeDir && fa.Type == localfs.TypeDir:
			return cost, localfs.ErrNotDir
		case ta.Type == localfs.TypeDir && fa.Type == localfs.TypeDir:
			if ents, rerr := os.ReadDir(f.host(to)); rerr == nil && len(ents) > 0 {
				return cost, localfs.ErrNotEmpty
			}
		}
		// Account for the overwritten destination.
		if ta.Type != localfs.TypeDir {
			f.used -= ta.Size
			if ta.Type == localfs.TypeRegular {
				f.files--
			}
		}
	}
	if fa.Type == localfs.TypeDir && (to == from || strings.HasPrefix(to, from+"/")) {
		return cost, localfs.ErrInval
	}
	if err := os.Rename(f.host(from), f.host(to)); err != nil {
		return cost, mapErr(err)
	}
	f.rebindSubtree(from, to)
	if o, ok := f.owners[from]; ok {
		delete(f.owners, from)
		f.owners[to] = o
	}
	f.noteMutation(from)
	f.noteMutation(to)
	return cost, nil
}

// Readdir lists a directory in lexicographic order.
func (f *FS) Readdir(ino uint64) ([]localfs.DirEntry, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rel, err := f.pathFor(ino)
	if err != nil {
		return nil, f.disk.OpCost(0), err
	}
	if a, aerr := f.attrAt(rel); aerr != nil {
		return nil, f.disk.OpCost(0), aerr
	} else if a.Type != localfs.TypeDir {
		return nil, f.disk.OpCost(0), localfs.ErrNotDir
	}
	ents, err := os.ReadDir(f.host(rel))
	if err != nil {
		return nil, f.disk.OpCost(0), mapErr(err)
	}
	out := make([]localfs.DirEntry, 0, len(ents))
	for _, e := range ents {
		child := path.Join(rel, e.Name())
		typ := localfs.TypeRegular
		switch {
		case e.IsDir():
			typ = localfs.TypeDir
		case e.Type()&fs.ModeSymlink != 0:
			typ = localfs.TypeSymlink
		}
		out = append(out, localfs.DirEntry{Name: e.Name(), Ino: f.inoFor(child), Type: typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, f.disk.OpCost(len(out) * 32), nil
}

// Statfs reports capacity accounting.
func (f *FS) Statfs() (localfs.FSStat, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return localfs.FSStat{TotalBytes: f.capacity, UsedBytes: f.used, Files: f.files},
		f.disk.OpCost(0), nil
}

// --- path-based operations ---

// LookupPath resolves an absolute store path without following symlinks.
func (f *FS) LookupPath(p string) (localfs.Attr, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attrAt(path.Clean("/" + p))
}

// MkdirAll creates a directory path with mode 0755.
func (f *FS) MkdirAll(p string) (localfs.Attr, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rel := path.Clean("/" + p)
	// Fail with NotDir when a prefix is a non-directory, as localfs does.
	parts := strings.Split(strings.TrimPrefix(rel, "/"), "/")
	cur := "/"
	for _, part := range parts {
		if part == "" {
			continue
		}
		cur = path.Join(cur, part)
		if a, err := f.attrAt(cur); err == nil && a.Type != localfs.TypeDir {
			return localfs.Attr{}, localfs.ErrNotDir
		}
	}
	_, statErr := f.attrAt(rel)
	if err := os.MkdirAll(f.host(rel), 0o755); err != nil {
		return localfs.Attr{}, mapErr(err)
	}
	if statErr != nil {
		// Only an actual creation is a mutation; lenient replica apply calls
		// MkdirAll on every op's parent and must not thrash digest caches.
		f.noteMutation(rel)
	}
	return f.attrAt(rel)
}

// RemoveAll removes a subtree; missing paths are not an error.
func (f *FS) RemoveAll(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rel := path.Clean("/" + p)
	// Account for what disappears.
	f.scanSubtree(rel, -1)
	if rel == "/" {
		ents, err := os.ReadDir(f.rootDir)
		if err != nil {
			return mapErr(err)
		}
		for _, e := range ents {
			if err := os.RemoveAll(filepath.Join(f.rootDir, e.Name())); err != nil {
				return mapErr(err)
			}
			f.dropPath("/" + e.Name())
		}
		if len(ents) > 0 {
			f.noteMutation("/")
		}
		return nil
	}
	_, statErr := f.attrAt(rel)
	if err := os.RemoveAll(f.host(rel)); err != nil {
		return mapErr(err)
	}
	f.dropPath(rel)
	if statErr == nil {
		f.noteMutation(rel)
	}
	return nil
}

// scanSubtree adjusts used/files counters by sign for everything under rel.
// Caller holds f.mu.
func (f *FS) scanSubtree(rel string, sign int64) {
	filepath.WalkDir(f.host(rel), func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.Type()&fs.ModeSymlink != 0 {
			if t, rerr := os.Readlink(p); rerr == nil {
				f.used += sign * int64(len(t))
			}
		} else if d.Type().IsRegular() {
			if info, ierr := d.Info(); ierr == nil {
				f.used += sign * info.Size()
				f.files += sign
			}
		}
		return nil
	})
}

// Walk visits a subtree depth-first in lexicographic order.
func (f *FS) Walk(p string, fn localfs.WalkFunc) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rel := path.Clean("/" + p)
	if _, err := f.attrAt(rel); err != nil {
		return err
	}
	return filepath.WalkDir(f.host(rel), func(hp string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		r := f.rel(hp)
		a, aerr := f.attrAt(r)
		if aerr != nil {
			return aerr
		}
		target := ""
		if a.Type == localfs.TypeSymlink {
			target, _ = os.Readlink(hp)
		}
		return fn(r, a, target)
	})
}

// ReadFile reads a whole file by path.
func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.Lock()
	rel := path.Clean("/" + p)
	a, err := f.attrAt(rel)
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if a.Type != localfs.TypeRegular {
		return nil, localfs.ErrInval
	}
	data, err := os.ReadFile(f.host(rel))
	return data, mapErr(err)
}

// WriteFile creates (or truncates) a file by path, creating ancestors.
func (f *FS) WriteFile(p string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rel := path.Clean("/" + p)
	if rel == "/" {
		return localfs.ErrInval
	}
	var prev int64
	existed := false
	if a, err := f.attrAt(rel); err == nil {
		if a.Type != localfs.TypeRegular {
			return localfs.ErrIsDir
		}
		prev = a.Size
		existed = true
	}
	if err := f.charge(int64(len(data)) - prev); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(f.host(rel)), 0o755); err != nil {
		f.used -= int64(len(data)) - prev
		return mapErr(err)
	}
	if err := os.WriteFile(f.host(rel), data, 0o644); err != nil {
		f.used -= int64(len(data)) - prev
		return mapErr(err)
	}
	if !existed {
		f.files++
	}
	f.noteMutation(rel)
	return nil
}

// --- capacity accounting ---

// Capacity returns the contributed bytes (0 = unlimited).
func (f *FS) Capacity() int64 { return f.capacity }

// Used returns the bytes charged against capacity.
func (f *FS) Used() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

// Utilization returns used/capacity (0 when unlimited).
func (f *FS) Utilization() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.capacity == 0 {
		return 0
	}
	return float64(f.used) / float64(f.capacity)
}

// NumFiles returns the number of regular files.
func (f *FS) NumFiles() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.files
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
