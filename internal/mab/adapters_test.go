package mab

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/simnet"
)

func TestNFSAdapterHandleCaching(t *testing.T) {
	fs := NewBaseline(simnet.LAN100, simnet.Disk7200)
	if _, err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 1000)
	if _, err := fs.WriteFile("/a/b/f", payload); err != nil {
		t.Fatal(err)
	}
	// A second stat of a cached path costs exactly one GETATTR; a fresh
	// deep path costs more (per-component lookups).
	c1, err := fs.Stat("/a/b/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkdirAll("/a/b/c/d/e"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFile("/a/b/c/d/e/f2", payload); err != nil {
		t.Fatal(err)
	}
	// Evict nothing; stat the brand-new deep file again: cached → 1 RPC.
	c2, err := fs.Stat("/a/b/c/d/e/f2")
	if err != nil {
		t.Fatal(err)
	}
	if c2 > c1*2 {
		t.Fatalf("cached stat of deep path (%v) should cost like a shallow one (%v)", c2, c1)
	}
	// Reads return exactly what was written, chunk boundaries included.
	big := make([]byte, ChunkSize*2+123)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := fs.WriteFile("/big", big); err != nil {
		t.Fatal(err)
	}
	got, _, err := fs.ReadFile("/big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("chunked round trip: %d bytes err=%v", len(got), err)
	}
}

func TestKoshaAdapterMatchesMountState(t *testing.T) {
	c, err := cluster.New(cluster.Options{Nodes: 4, Seed: 61, Config: core.Config{Replicas: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewKoshaFS(c.Mount(0))
	if _, err := fs.MkdirAll("/w/x/y"); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, ChunkSize+77)
	for i := range big {
		big[i] = byte(i * 3)
	}
	if _, err := fs.WriteFile("/w/x/y/data", big); err != nil {
		t.Fatal(err)
	}
	got, _, err := fs.ReadFile("/w/x/y/data")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("adapter round trip: %d bytes err=%v", len(got), err)
	}
	// The same file is visible through an independent mount.
	out, _, err := c.Mount(2).ReadFile("/w/x/y/data")
	if err != nil || !bytes.Equal(out, big) {
		t.Fatalf("independent mount: %d bytes err=%v", len(out), err)
	}
	// Stat through the adapter sees the right size.
	if _, err := fs.Stat("/w/x/y/data"); err != nil {
		t.Fatal(err)
	}
}

func TestAdapterMissingFileErrors(t *testing.T) {
	fs := NewBaseline(simnet.LAN100, simnet.Disk7200)
	if _, _, err := fs.ReadFile("/nope"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("read missing err = %v", err)
	}
	if _, err := fs.Stat("/nope"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("stat missing err = %v", err)
	}
}

func TestRunIsDeterministicPerSeedAndFS(t *testing.T) {
	w := Generate(Tiny(), 5)
	r1, err := Run(NewBaseline(simnet.LAN100, simnet.Disk7200), w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(NewBaseline(simnet.LAN100, simnet.Disk7200), Generate(Tiny(), 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Phases {
		if r1.Phase[p] != r2.Phase[p] {
			t.Fatalf("phase %v differs across identical runs: %v vs %v", p, r1.Phase[p], r2.Phase[p])
		}
	}
}
