package mab

import (
	"path"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/simnet"
)

// KoshaFS drives the benchmark through a Kosha mount. Directory and file
// handles are cached across operations, as the kernel NFS client above
// koshad would cache them.
type KoshaFS struct {
	M *core.Mount

	mu  sync.Mutex
	vhs map[string]core.VH
}

// NewKoshaFS wraps a mount.
func NewKoshaFS(m *core.Mount) *KoshaFS {
	return &KoshaFS{M: m, vhs: map[string]core.VH{"/": m.Root()}}
}

func (k *KoshaFS) cached(p string) (core.VH, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	vh, ok := k.vhs[p]
	return vh, ok
}

func (k *KoshaFS) remember(p string, vh core.VH) {
	k.mu.Lock()
	k.vhs[p] = vh
	k.mu.Unlock()
}

func (k *KoshaFS) handle(p string) (core.VH, simnet.Cost, error) {
	if vh, ok := k.cached(p); ok {
		return vh, 0, nil
	}
	vh, _, cost, err := k.M.LookupPath(p)
	if err != nil {
		return 0, cost, err
	}
	k.remember(p, vh)
	return vh, cost, nil
}

// MkdirAll implements FS, walking with cached handles like a kernel NFS
// client's dentry cache (one LOOKUP or MKDIR per missing component).
func (k *KoshaFS) MkdirAll(p string) (simnet.Cost, error) {
	p = path.Clean("/" + p)
	var total simnet.Cost
	cur := k.M.Root()
	walked := "/"
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if part == "" {
			continue
		}
		next := path.Join(walked, part)
		if vh, ok := k.cached(next); ok {
			cur, walked = vh, next
			continue
		}
		vh, _, c, err := k.M.Lookup(cur, part)
		total = simnet.Seq(total, c)
		if err != nil {
			if !nfs.IsStatus(err, nfs.ErrNoEnt) {
				return total, err
			}
			vh, _, c, err = k.M.Mkdir(cur, part, 0o755)
			total = simnet.Seq(total, c)
			if err != nil {
				return total, err
			}
		}
		k.remember(next, vh)
		cur, walked = vh, next
	}
	return total, nil
}

// WriteFile implements FS with ChunkSize writes.
func (k *KoshaFS) WriteFile(p string, data []byte) (simnet.Cost, error) {
	dir := path.Dir(path.Clean("/" + p))
	dirVH, total, err := k.handle(dir)
	if err != nil {
		return total, err
	}
	fvh, _, c, err := k.M.Create(dirVH, path.Base(p), 0o644, false)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	k.remember(path.Clean("/"+p), fvh)
	for off := 0; off < len(data); off += ChunkSize {
		end := min(off+ChunkSize, len(data))
		_, c, err := k.M.Write(fvh, int64(off), data[off:end])
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFile implements FS with ChunkSize reads.
func (k *KoshaFS) ReadFile(p string) ([]byte, simnet.Cost, error) {
	fvh, total, err := k.handle(path.Clean("/" + p))
	if err != nil {
		return nil, total, err
	}
	var out []byte
	for off := int64(0); ; {
		data, eof, c, err := k.M.Read(fvh, off, ChunkSize)
		total = simnet.Seq(total, c)
		if err != nil {
			return nil, total, err
		}
		out = append(out, data...)
		off += int64(len(data))
		if eof {
			return out, total, nil
		}
	}
}

// Stat implements FS.
func (k *KoshaFS) Stat(p string) (simnet.Cost, error) {
	fvh, total, err := k.handle(path.Clean("/" + p))
	if err != nil {
		return total, err
	}
	_, c, err := k.M.Getattr(fvh)
	return simnet.Seq(total, c), err
}

// NFSFS drives the benchmark through a plain NFS client against a single
// server: the paper's baseline ("The NFS configuration consists of two
// nodes with one running as a client, and the other running as a server").
type NFSFS struct {
	C      nfs.Client
	Server simnet.Addr
	Root   nfs.Handle

	mu  sync.Mutex
	fhs map[string]nfs.Handle
}

// NewNFSFS wraps a client and the server's root handle.
func NewNFSFS(c nfs.Client, server simnet.Addr, root nfs.Handle) *NFSFS {
	return &NFSFS{C: c, Server: server, Root: root, fhs: map[string]nfs.Handle{"/": root}}
}

func (n *NFSFS) cached(p string) (nfs.Handle, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.fhs[p]
	return h, ok
}

func (n *NFSFS) remember(p string, h nfs.Handle) {
	n.mu.Lock()
	n.fhs[p] = h
	n.mu.Unlock()
}

// handle resolves a path with per-component LOOKUPs, caching like the
// kernel's dentry cache.
func (n *NFSFS) handle(p string) (nfs.Handle, simnet.Cost, error) {
	p = path.Clean("/" + p)
	if h, ok := n.cached(p); ok {
		return h, 0, nil
	}
	var total simnet.Cost
	cur := n.Root
	walked := "/"
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if part == "" {
			continue
		}
		next := path.Join(walked, part)
		if h, ok := n.cached(next); ok {
			cur, walked = h, next
			continue
		}
		h, _, c, err := n.C.Lookup(n.Server, cur, part)
		total = simnet.Seq(total, c)
		if err != nil {
			return nfs.Handle{}, total, err
		}
		n.remember(next, h)
		cur, walked = h, next
	}
	return cur, total, nil
}

// MkdirAll implements FS.
func (n *NFSFS) MkdirAll(p string) (simnet.Cost, error) {
	p = path.Clean("/" + p)
	var total simnet.Cost
	cur := n.Root
	walked := "/"
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if part == "" {
			continue
		}
		next := path.Join(walked, part)
		if h, ok := n.cached(next); ok {
			cur, walked = h, next
			continue
		}
		h, _, c, err := n.C.Lookup(n.Server, cur, part)
		total = simnet.Seq(total, c)
		if err != nil {
			if !nfs.IsStatus(err, nfs.ErrNoEnt) {
				return total, err
			}
			h, _, c, err = n.C.Mkdir(n.Server, cur, part, 0o755)
			total = simnet.Seq(total, c)
			if err != nil {
				return total, err
			}
		}
		n.remember(next, h)
		cur, walked = h, next
	}
	return total, nil
}

// WriteFile implements FS with ChunkSize writes.
func (n *NFSFS) WriteFile(p string, data []byte) (simnet.Cost, error) {
	p = path.Clean("/" + p)
	dirH, total, err := n.handle(path.Dir(p))
	if err != nil {
		return total, err
	}
	fh, _, c, err := n.C.Create(n.Server, dirH, path.Base(p), 0o644, false)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, err
	}
	n.remember(p, fh)
	for off := 0; off < len(data); off += ChunkSize {
		end := min(off+ChunkSize, len(data))
		_, c, err := n.C.Write(n.Server, fh, int64(off), data[off:end])
		total = simnet.Seq(total, c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFile implements FS with ChunkSize reads.
func (n *NFSFS) ReadFile(p string) ([]byte, simnet.Cost, error) {
	fh, total, err := n.handle(p)
	if err != nil {
		return nil, total, err
	}
	var out []byte
	for off := int64(0); ; {
		data, eof, c, err := n.C.Read(n.Server, fh, off, ChunkSize)
		total = simnet.Seq(total, c)
		if err != nil {
			return nil, total, err
		}
		out = append(out, data...)
		off += int64(len(data))
		if eof {
			return out, total, nil
		}
	}
}

// Stat implements FS.
func (n *NFSFS) Stat(p string) (simnet.Cost, error) {
	fh, total, err := n.handle(p)
	if err != nil {
		return total, err
	}
	_, c, err := n.C.Getattr(n.Server, fh)
	return simnet.Seq(total, c), err
}

// NewBaseline builds the paper's two-node NFS baseline on a fresh simulated
// network: a client node and a server node exporting an unlimited store.
func NewBaseline(link simnet.LinkModel, disk simnet.DiskModel) *NFSFS {
	net := simnet.New(link)
	fs := localfs.New(0, disk)
	srv := nfs.NewServer(fs, 1)
	srv.Attach(net, "server")
	net.AddNode("client")
	c := nfs.NewClient(net, "client")
	return NewNFSFS(c, "server", srv.Root())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
