// Package mab implements the Modified Andrew Benchmark used in Section 6.1:
// "The benchmark was modified to run on FreeBSD with a larger workload ...
// The file distribution used is 51MB in size, with a maximum subdirectory
// level of 5." The five phases (mkdir, copy, stat, grep, compile) issue the
// same operation mix as the original MAB — directory creation, file copy,
// recursive stat, full-content scan, and a compile pass that reads sources
// and writes objects — against any file-system client, and report simulated
// seconds per phase.
package mab

import (
	"fmt"
	"math/rand"

	"repro/internal/simnet"
)

// Phase identifies one MAB phase.
type Phase int

const (
	PhaseMkdir Phase = iota
	PhaseCopy
	PhaseStat
	PhaseGrep
	PhaseCompile
	numPhases
)

// Phases lists all phases in execution order.
var Phases = []Phase{PhaseMkdir, PhaseCopy, PhaseStat, PhaseGrep, PhaseCompile}

func (p Phase) String() string {
	switch p {
	case PhaseMkdir:
		return "mkdir"
	case PhaseCopy:
		return "copy"
	case PhaseStat:
		return "stat"
	case PhaseGrep:
		return "grep"
	case PhaseCompile:
		return "compile"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// ChunkSize is the rsize/wsize used for data transfer, matching a typical
// NFSv3 mount's 32 KB transfer size. Both the Kosha and plain-NFS clients
// move data in these units so per-RPC overheads are charged equally.
const ChunkSize = 32 << 10

// FS is the client surface the benchmark drives. Implementations exist for
// a Kosha mount and for a plain NFS client (the baseline).
type FS interface {
	// MkdirAll creates a directory and missing ancestors.
	MkdirAll(path string) (simnet.Cost, error)
	// WriteFile creates (truncates) a file and writes the data in
	// ChunkSize units.
	WriteFile(path string, data []byte) (simnet.Cost, error)
	// ReadFile reads a whole file in ChunkSize units.
	ReadFile(path string) ([]byte, simnet.Cost, error)
	// Stat fetches attributes.
	Stat(path string) (simnet.Cost, error)
}

// WFile is one source file in the benchmark tree.
type WFile struct {
	Path string
	Size int
}

// Workload is the benchmark's file distribution.
type Workload struct {
	Root  string // all paths live under this virtual directory
	Dirs  []string
	Files []WFile
}

// TotalBytes sums the file sizes.
func (w *Workload) TotalBytes() int {
	t := 0
	for _, f := range w.Files {
		t += f.Size
	}
	return t
}

// Config parameterizes workload generation.
type Config struct {
	Root       string
	TotalBytes int
	MaxDepth   int // maximum subdirectory level
	Dirs       int
	Files      int
}

// Paper51MB reproduces the stated distribution: 51 MB, maximum
// subdirectory level 5.
func Paper51MB() Config {
	return Config{Root: "/mab", TotalBytes: 51 << 20, MaxDepth: 5, Dirs: 320, Files: 1200}
}

// Tiny is a scaled-down workload for unit tests.
func Tiny() Config {
	return Config{Root: "/mab", TotalBytes: 256 << 10, MaxDepth: 3, Dirs: 6, Files: 24}
}

// Generate builds a deterministic workload: a directory tree of bounded
// depth with files spread across it, sizes jittered around the mean and
// scaled to hit TotalBytes exactly.
func Generate(cfg Config, seed uint64) *Workload {
	r := rand.New(rand.NewSource(int64(seed)))
	w := &Workload{Root: cfg.Root}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}

	dirs := []string{cfg.Root}
	depth := map[string]int{cfg.Root: 1}
	for len(dirs) < cfg.Dirs+1 {
		parent := dirs[r.Intn(len(dirs))]
		if depth[parent] >= cfg.MaxDepth {
			continue
		}
		child := fmt.Sprintf("%s/dir%02d", parent, len(dirs))
		dirs = append(dirs, child)
		depth[child] = depth[parent] + 1
	}
	w.Dirs = dirs

	// Files are copied into their own subdirectories, created during the
	// copy phase as cp -r would (the original benchmark copies a source
	// tree); this is why the copy phase, like mkdir, is sensitive to the
	// distribution level (Table 2's discussion).
	mean := cfg.TotalBytes / max(cfg.Files, 1)
	total := 0
	const filesPerCopyDir = 4
	var copyDir string
	for i := 0; i < cfg.Files; i++ {
		if i%filesPerCopyDir == 0 {
			parent := dirs[r.Intn(len(dirs))]
			if depth[parent] >= cfg.MaxDepth {
				parent = dirs[0]
			}
			copyDir = fmt.Sprintf("%s/mod%03d", parent, i/filesPerCopyDir)
		}
		size := int(float64(mean) * (0.25 + 1.5*r.Float64()))
		if size < 64 {
			size = 64
		}
		w.Files = append(w.Files, WFile{
			Path: fmt.Sprintf("%s/src%03d.c", copyDir, i),
			Size: size,
		})
		total += size
	}
	// Scale to the exact target.
	if total > 0 && cfg.TotalBytes > 0 {
		scale := float64(cfg.TotalBytes) / float64(total)
		sum := 0
		for i := range w.Files {
			w.Files[i].Size = max(int(float64(w.Files[i].Size)*scale), 1)
			sum += w.Files[i].Size
		}
		w.Files[len(w.Files)-1].Size += cfg.TotalBytes - sum
	}
	return w
}

// CPUModel charges processor time for the benchmark's computation: the
// Andrew benchmark's total is dominated by the compile phase's CPU work,
// which is identical under Kosha and NFS and is exactly why the paper's
// file-system overheads appear as single-digit percentages of the total.
type CPUModel struct {
	// CompileBytesPerSec is gcc's throughput over source bytes.
	CompileBytesPerSec float64
	// GrepBytesPerSec is the scan rate of the grep phase.
	GrepBytesPerSec float64
	// StatPerEntry is per-entry processing in the stat phase.
	StatPerEntry simnet.Cost
}

// P4CPU models the testbed's 2.0 GHz Pentium 4 (Section 6.1).
var P4CPU = CPUModel{
	CompileBytesPerSec: 2.5e6,
	GrepBytesPerSec:    150e6,
	StatPerEntry:       simnet.Cost(20_000), // 20µs
}

func (c CPUModel) compileCost(n int) simnet.Cost {
	if c.CompileBytesPerSec <= 0 {
		return 0
	}
	return simnet.Cost(float64(n) / c.CompileBytesPerSec * 1e9)
}

func (c CPUModel) grepCost(n int) simnet.Cost {
	if c.GrepBytesPerSec <= 0 {
		return 0
	}
	return simnet.Cost(float64(n) / c.GrepBytesPerSec * 1e9)
}

// Result carries per-phase simulated times.
type Result struct {
	Phase map[Phase]simnet.Cost
}

// Total sums all phases.
func (r Result) Total() simnet.Cost {
	var t simnet.Cost
	for _, c := range r.Phase {
		t += c
	}
	return t
}

// Seconds returns a phase's simulated seconds.
func (r Result) Seconds(p Phase) float64 { return r.Phase[p].Seconds() }

// Run executes the five MAB phases against fs with the P4 CPU model.
func Run(fs FS, w *Workload) (Result, error) {
	return RunCPU(fs, w, P4CPU)
}

// RunCPU executes the five MAB phases against fs and reports per-phase
// simulated time (file-system costs plus cpu's processing costs).
func RunCPU(fs FS, w *Workload, cpu CPUModel) (Result, error) {
	res := Result{Phase: make(map[Phase]simnet.Cost, numPhases)}

	// Phase 1: mkdir — create the directory hierarchy.
	var cost simnet.Cost
	for _, d := range w.Dirs {
		c, err := fs.MkdirAll(d)
		cost = simnet.Seq(cost, c)
		if err != nil {
			return res, fmt.Errorf("mab mkdir %s: %w", d, err)
		}
	}
	res.Phase[PhaseMkdir] = cost

	// Phase 2: copy — populate the tree with source files, creating each
	// module's directory on first touch as a recursive copy does.
	cost = 0
	madeDir := make(map[string]bool, len(w.Files)/2)
	for _, f := range w.Files {
		if dir := dirOf(f.Path); !madeDir[dir] {
			madeDir[dir] = true
			c, err := fs.MkdirAll(dir)
			cost = simnet.Seq(cost, c)
			if err != nil {
				return res, fmt.Errorf("mab copy mkdir %s: %w", dir, err)
			}
		}
		c, err := fs.WriteFile(f.Path, payload(f.Size))
		cost = simnet.Seq(cost, c)
		if err != nil {
			return res, fmt.Errorf("mab copy %s: %w", f.Path, err)
		}
	}
	res.Phase[PhaseCopy] = cost

	// Phase 3: stat — recursive status of every entry.
	cost = 0
	for _, d := range w.Dirs {
		c, err := fs.Stat(d)
		cost = simnet.Seq(cost, c)
		if err != nil {
			return res, fmt.Errorf("mab stat %s: %w", d, err)
		}
	}
	for _, f := range w.Files {
		c, err := fs.Stat(f.Path)
		cost = simnet.Seq(cost, c)
		if err != nil {
			return res, fmt.Errorf("mab stat %s: %w", f.Path, err)
		}
	}
	cost = simnet.Seq(cost, simnet.Cost(int64(cpu.StatPerEntry)*int64(len(w.Dirs)+len(w.Files))))
	res.Phase[PhaseStat] = cost

	// Phase 4: grep — scan every byte of every file.
	cost = 0
	for _, f := range w.Files {
		data, c, err := fs.ReadFile(f.Path)
		cost = simnet.Seq(cost, c)
		if err != nil {
			return res, fmt.Errorf("mab grep %s: %w", f.Path, err)
		}
		if len(data) != f.Size {
			return res, fmt.Errorf("mab grep %s: short read %d/%d", f.Path, len(data), f.Size)
		}
		cost = simnet.Seq(cost, cpu.grepCost(len(data)))
	}
	res.Phase[PhaseGrep] = cost

	// Phase 5: compile — read each source, emit an object of about half
	// its size, then link everything into one binary.
	cost = 0
	linked := 0
	for _, f := range w.Files {
		_, c, err := fs.ReadFile(f.Path)
		cost = simnet.Seq(cost, c)
		if err != nil {
			return res, fmt.Errorf("mab compile read %s: %w", f.Path, err)
		}
		cost = simnet.Seq(cost, cpu.compileCost(f.Size))
		obj := f.Path[:len(f.Path)-2] + ".o"
		c, err = fs.WriteFile(obj, payload(f.Size/2))
		cost = simnet.Seq(cost, c)
		if err != nil {
			return res, fmt.Errorf("mab compile write %s: %w", obj, err)
		}
		linked += f.Size / 2
	}
	c, err := fs.WriteFile(w.Root+"/a.out", payload(linked/8))
	cost = simnet.Seq(cost, c)
	if err != nil {
		return res, fmt.Errorf("mab link: %w", err)
	}
	res.Phase[PhaseCompile] = cost

	return res, nil
}

// payload builds file contents of the given size. Content is
// deterministic but non-trivial so read verification is meaningful.
func payload(size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 131)
	}
	return data
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "/"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
