package simnet

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// testSink records every server span the transport hands it and hands out
// sequential span ids.
type testSink struct {
	mu   sync.Mutex
	next uint64
	recs []obs.SpanRecord
}

func (s *testSink) NextSpanID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	return s.next
}

func (s *testSink) RecordServerSpan(ctx obs.TraceContext, span uint64, service string, from Addr, req []byte, cost Cost, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := obs.SpanRecord{Hi: ctx.Hi, Lo: ctx.Lo, Parent: ctx.Span, Span: span, Name: service, From: string(from), DurNS: int64(cost)}
	if err != nil {
		rec.Err = err.Error()
	}
	s.recs = append(s.recs, rec)
}

func (s *testSink) spans() []obs.SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.SpanRecord(nil), s.recs...)
}

func TestCallCtxPropagatesAndRecordsServerSpan(t *testing.T) {
	n := New(LAN100)
	n.AddNode("a")
	n.AddNode("b")
	sink := &testSink{}
	n.SetSpanSink("b", sink)

	var handlerCtx obs.TraceContext
	n.RegisterCtx("b", "svc", func(ctx obs.TraceContext, from Addr, req []byte) ([]byte, Cost, error) {
		handlerCtx = ctx
		return []byte("ok"), Cost(5), nil
	})

	parent := obs.TraceContext{Hi: 11, Lo: 22, Span: 33}
	if _, _, err := n.CallCtx(parent, "a", "b", "svc", []byte("req")); err != nil {
		t.Fatal(err)
	}
	recs := sink.spans()
	if len(recs) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(recs))
	}
	r := recs[0]
	if r.Hi != 11 || r.Lo != 22 || r.Parent != 33 {
		t.Fatalf("span not parented under caller context: %+v", r)
	}
	if r.Span == 0 || r.From != "a" || r.DurNS != 5 {
		t.Fatalf("span fields: %+v", r)
	}
	// The handler saw the same trace re-parented under the server span, so its
	// nested RPCs descend from this exchange.
	if handlerCtx.Hi != 11 || handlerCtx.Lo != 22 || handlerCtx.Span != r.Span {
		t.Fatalf("handler ctx = %+v, want child of span %d", handlerCtx, r.Span)
	}
}

func TestCallCtxZeroContextSkipsSink(t *testing.T) {
	n := New(LAN100)
	n.AddNode("a")
	n.AddNode("b")
	sink := &testSink{}
	n.SetSpanSink("b", sink)
	n.RegisterCtx("b", "svc", func(ctx obs.TraceContext, from Addr, req []byte) ([]byte, Cost, error) {
		if ctx.Valid() {
			t.Errorf("handler received a fabricated context: %+v", ctx)
		}
		return nil, 0, nil
	})
	// Plain Call and zero-context CallCtx both stay untraced.
	if _, _, err := n.Call("a", "b", "svc", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.CallCtx(obs.TraceContext{}, "a", "b", "svc", nil); err != nil {
		t.Fatal(err)
	}
	if got := sink.spans(); len(got) != 0 {
		t.Fatalf("untraced calls recorded %d spans", len(got))
	}
}

func TestDupFaultRecordsSingleServerSpan(t *testing.T) {
	n := New(LAN100)
	n.AddNode("a")
	n.AddNode("b")
	sink := &testSink{}
	n.SetSpanSink("b", sink)
	calls := 0
	n.RegisterCtx("b", "svc", func(ctx obs.TraceContext, from Addr, req []byte) ([]byte, Cost, error) {
		calls++
		return nil, 0, nil
	})
	n.SetFaults(func(from, to Addr, service string) LinkFault { return LinkFault{Dup: true} })

	if _, _, err := n.CallCtx(obs.TraceContext{Hi: 1, Lo: 2, Span: 3}, "a", "b", "svc", nil); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("handler ran %d times, want 2 (original + retransmit)", calls)
	}
	// The duplicate is the same logical exchange: exactly one server span, so
	// DRC-deduplicated replays cannot double-count in the assembled tree.
	if got := sink.spans(); len(got) != 1 {
		t.Fatalf("dup fault recorded %d spans, want 1", len(got))
	}
}
