package simnet

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func echoHandler(procCost Cost) Handler {
	return func(from Addr, req []byte) ([]byte, Cost, error) {
		return req, procCost, nil
	}
}

func TestCallRoundTrip(t *testing.T) {
	n := New(LAN100)
	n.Register("b", "echo", echoHandler(0))
	n.AddNode("a")
	resp, cost, err := n.Call("a", "b", "echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello" {
		t.Fatalf("resp = %q", resp)
	}
	if cost < Cost(2*LAN100.Propagation) {
		t.Fatalf("cost %v below two propagation delays", cost)
	}
}

func TestLocalCallSkipsLink(t *testing.T) {
	n := New(LAN100)
	proc := Cost(3 * time.Millisecond)
	n.Register("a", "echo", echoHandler(proc))
	_, cost, err := n.Call("a", "a", "echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if cost != proc {
		t.Fatalf("local call cost = %v, want %v", cost, proc)
	}
}

func TestRemoteCostExceedsLocal(t *testing.T) {
	n := New(LAN100)
	n.Register("a", "echo", echoHandler(0))
	n.Register("b", "echo", echoHandler(0))
	_, local, _ := n.Call("a", "a", "echo", []byte("x"))
	_, remote, _ := n.Call("a", "b", "echo", []byte("x"))
	if remote <= local {
		t.Fatalf("remote %v should exceed local %v", remote, local)
	}
}

func TestLargeMessagePaysBandwidth(t *testing.T) {
	n := New(LAN100)
	n.Register("b", "echo", echoHandler(0))
	n.AddNode("a")
	small := make([]byte, 10)
	big := make([]byte, 1<<20)
	_, cs, _ := n.Call("a", "b", "echo", small)
	_, cb, _ := n.Call("a", "b", "echo", big)
	// 1 MiB at 12.5 MB/s each way is ~168 ms; must dominate.
	if cb < 10*cs {
		t.Fatalf("big-message cost %v not >> small-message cost %v", cb, cs)
	}
}

func TestDownNodeUnreachable(t *testing.T) {
	n := New(LAN100)
	n.Register("b", "echo", echoHandler(0))
	n.AddNode("a")
	n.SetDown("b", true)
	_, cost, err := n.Call("a", "b", "echo", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if cost != n.Timeout {
		t.Fatalf("cost = %v, want timeout %v", cost, n.Timeout)
	}
	if !n.IsDown("b") {
		t.Fatal("IsDown(b) should be true")
	}
	n.SetDown("b", false)
	if _, _, err := n.Call("a", "b", "echo", nil); err != nil {
		t.Fatalf("after revive: %v", err)
	}
}

func TestUnknownNodeAndService(t *testing.T) {
	n := New(LAN100)
	n.AddNode("a")
	if _, _, err := n.Call("a", "ghost", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown node err = %v", err)
	}
	n.AddNode("b")
	if _, _, err := n.Call("a", "b", "echo", nil); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("unknown service err = %v", err)
	}
}

func TestPartition(t *testing.T) {
	n := New(LAN100)
	n.Register("a", "echo", echoHandler(0))
	n.Register("b", "echo", echoHandler(0))
	n.SetPartition(func(x, y Addr) bool { return x == "a" && y == "b" })
	if _, _, err := n.Call("a", "b", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned call err = %v", err)
	}
	// Reverse direction unaffected.
	if _, _, err := n.Call("b", "a", "echo", nil); err != nil {
		t.Fatalf("reverse call: %v", err)
	}
	// Self-call unaffected even if predicate is badly written.
	n.SetPartition(func(x, y Addr) bool { return true })
	if _, _, err := n.Call("a", "a", "echo", nil); err != nil {
		t.Fatalf("self call under partition: %v", err)
	}
	n.SetPartition(nil)
	if _, _, err := n.Call("a", "b", "echo", nil); err != nil {
		t.Fatalf("after clearing partition: %v", err)
	}
}

// TestPartitionAsymmetric pins the directional contract of SetPartition:
// blocking A->B must leave B->A fully usable, including replies flowing back
// to B (the response of a B-initiated exchange is not a separate A->B send).
func TestPartitionAsymmetric(t *testing.T) {
	n := New(LAN100)
	n.Register("a", "echo", echoHandler(0))
	n.Register("b", "echo", echoHandler(0))
	n.SetPartition(func(x, y Addr) bool { return x == "a" && y == "b" })

	for i := 0; i < 3; i++ {
		if _, _, err := n.Call("a", "b", "echo", []byte("x")); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("a->b attempt %d: err = %v, want ErrUnreachable", i, err)
		}
		resp, _, err := n.Call("b", "a", "echo", []byte("y"))
		if err != nil {
			t.Fatalf("b->a attempt %d: %v", i, err)
		}
		if string(resp) != "y" {
			t.Fatalf("b->a resp = %q", resp)
		}
	}
	// Third parties are unaffected in both directions.
	n.Register("c", "echo", echoHandler(0))
	if _, _, err := n.Call("a", "c", "echo", nil); err != nil {
		t.Fatalf("a->c: %v", err)
	}
	if _, _, err := n.Call("c", "b", "echo", nil); err != nil {
		t.Fatalf("c->b: %v", err)
	}
}

func TestFaultDrop(t *testing.T) {
	n := New(LAN100)
	var delivered int
	n.Register("b", "echo", func(from Addr, req []byte) ([]byte, Cost, error) {
		delivered++
		return req, 0, nil
	})
	n.AddNode("a")
	n.SetFaults(func(from, to Addr, service string) LinkFault {
		return LinkFault{Drop: from == "a" && to == "b"}
	})
	_, cost, err := n.Call("a", "b", "echo", []byte("x"))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dropped call err = %v, want ErrUnreachable", err)
	}
	if cost != n.Timeout {
		t.Fatalf("dropped call cost = %v, want timeout %v", cost, n.Timeout)
	}
	if delivered != 0 {
		t.Fatalf("handler ran %d times on a dropped exchange", delivered)
	}
	if d, _, _ := n.FaultStats(); d != 1 {
		t.Fatalf("dropped counter = %d, want 1", d)
	}
	// Reverse direction and clearing both restore delivery.
	if _, _, err := n.Call("b", "b", "echo", nil); err != nil {
		t.Fatalf("local call under faults: %v", err)
	}
	n.SetFaults(nil)
	if _, _, err := n.Call("a", "b", "echo", nil); err != nil {
		t.Fatalf("after clearing faults: %v", err)
	}
}

func TestFaultDup(t *testing.T) {
	n := New(LAN100)
	var delivered int
	n.Register("b", "count", func(from Addr, req []byte) ([]byte, Cost, error) {
		delivered++
		return []byte{byte(delivered)}, 0, nil
	})
	n.AddNode("a")
	n.SetFaults(func(from, to Addr, service string) LinkFault {
		return LinkFault{Dup: true}
	})
	resp, _, err := n.Call("a", "b", "count", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("handler delivered %d times, want 2 (original + dup)", delivered)
	}
	if len(resp) != 1 || resp[0] != 1 {
		t.Fatalf("caller saw resp %v, want the first reply [1]", resp)
	}
	if _, d, _ := n.FaultStats(); d != 1 {
		t.Fatalf("duped counter = %d, want 1", d)
	}
}

func TestFaultDelay(t *testing.T) {
	n := New(LAN100)
	n.Register("b", "echo", echoHandler(0))
	n.AddNode("a")
	_, base, err := n.Call("a", "b", "echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	spike := Cost(250 * time.Millisecond)
	n.SetFaults(func(from, to Addr, service string) LinkFault {
		return LinkFault{Delay: spike}
	})
	_, slow, err := n.Call("a", "b", "echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if slow != base+spike {
		t.Fatalf("delayed cost = %v, want %v + %v", slow, base, spike)
	}
	if _, _, d := n.FaultStats(); d != 1 {
		t.Fatalf("delayed counter = %d, want 1", d)
	}
}

// Local calls bypass fault injection entirely, like partitions: the loopback
// hop between a client and its own koshad never crosses the network.
func TestFaultSkipsLocalCalls(t *testing.T) {
	n := New(LAN100)
	var delivered int
	n.Register("a", "echo", func(from Addr, req []byte) ([]byte, Cost, error) {
		delivered++
		return req, 0, nil
	})
	n.SetFaults(func(from, to Addr, service string) LinkFault {
		return LinkFault{Drop: true, Dup: true}
	})
	if _, _, err := n.Call("a", "a", "echo", nil); err != nil {
		t.Fatalf("local call under blanket faults: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("local delivery count = %d, want exactly 1", delivered)
	}
}

func TestHandlerError(t *testing.T) {
	n := New(LAN100)
	boom := errors.New("boom")
	n.Register("b", "fail", func(from Addr, req []byte) ([]byte, Cost, error) {
		return nil, Cost(time.Millisecond), boom
	})
	n.AddNode("a")
	_, cost, err := n.Call("a", "b", "fail", []byte("req"))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if cost < Cost(time.Millisecond) {
		t.Fatalf("error path must still carry cost, got %v", cost)
	}
}

func TestNestedCallsAreReentrant(t *testing.T) {
	// b's handler calls c; must not deadlock and must compose costs.
	n := New(LAN100)
	n.Register("c", "leaf", echoHandler(Cost(time.Millisecond)))
	n.Register("b", "mid", func(from Addr, req []byte) ([]byte, Cost, error) {
		resp, cost, err := n.Call("b", "c", "leaf", req)
		return resp, cost, err
	})
	n.AddNode("a")
	resp, cost, err := n.Call("a", "b", "mid", []byte("deep"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "deep" {
		t.Fatalf("resp = %q", resp)
	}
	// Two round trips plus processing: at least 4 propagation delays + 1 ms.
	min := Cost(4*LAN100.Propagation) + Cost(time.Millisecond)
	if cost < min {
		t.Fatalf("nested cost %v below %v", cost, min)
	}
}

func TestStatsCounters(t *testing.T) {
	n := New(LAN100)
	n.Register("b", "echo", echoHandler(0))
	n.AddNode("a")
	n.Call("a", "b", "echo", make([]byte, 100))
	n.SetDown("b", true)
	n.Call("a", "b", "echo", make([]byte, 50))
	s := n.Stats()
	if s.Messages != 2 {
		t.Errorf("messages = %d", s.Messages)
	}
	if s.Failures != 1 {
		t.Errorf("failures = %d", s.Failures)
	}
	if s.Bytes != 250 { // 100 req + 100 resp + 50 failed req
		t.Errorf("bytes = %d", s.Bytes)
	}
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 || s.Bytes != 0 || s.Failures != 0 {
		t.Errorf("reset failed: %+v", s)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := New(LAN100)
	n.Register("srv", "echo", echoHandler(0))
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr := Addr(rune('a' + i%8))
			n.AddNode(addr)
			for j := 0; j < 50; j++ {
				if _, _, err := n.Call(addr, "srv", "echo", []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s := n.Stats(); s.Messages != 32*50 {
		t.Errorf("messages = %d", s.Messages)
	}
}

func TestSeqParCombinators(t *testing.T) {
	a, b, c := Cost(1), Cost(5), Cost(3)
	if Seq(a, b, c) != 9 {
		t.Errorf("Seq = %v", Seq(a, b, c))
	}
	if Par(a, b, c) != 5 {
		t.Errorf("Par = %v", Par(a, b, c))
	}
	if Seq() != 0 || Par() != 0 {
		t.Error("empty combinators should be zero")
	}
}

func TestPropSeqParLaws(t *testing.T) {
	f := func(xs []int16) bool {
		costs := make([]Cost, len(xs))
		var sum Cost
		var max Cost
		for i, x := range xs {
			c := Cost(int64(x) &^ (1 << 15)) // non-negative
			if x < 0 {
				c = Cost(-int64(x))
			}
			costs[i] = c
			sum += c
			if c > max {
				max = c
			}
		}
		return Seq(costs...) == sum && Par(costs...) == max && Par(costs...) <= Seq(costs...)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkModelMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return LAN100.MessageCost(x) <= LAN100.MessageCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiskModelCost(t *testing.T) {
	c0 := Disk7200.OpCost(0)
	if c0 != Cost(Disk7200.PerOp) {
		t.Errorf("zero-byte op = %v", c0)
	}
	c1 := Disk7200.OpCost(35_000_000)
	want := Cost(Disk7200.PerOp) + Cost(time.Second)
	if c1 != want {
		t.Errorf("35 MB op = %v, want %v", c1, want)
	}
}

func BenchmarkCallRemote(b *testing.B) {
	n := New(LAN100)
	n.Register("b", "echo", echoHandler(0))
	n.AddNode("a")
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Call("a", "b", "echo", payload)
	}
}

// Regression test for ResetStats: per-service counters must be zeroed in
// place, never deleted, so a Send racing with a reset can never lose the
// service entry. Run under -race; the final sends must always be visible.
func TestResetStatsConcurrentServiceEntry(t *testing.T) {
	n := New(LAN100)
	n.Register("b", "echo", echoHandler(0))
	n.AddNode("a")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				n.Call("a", "b", "echo", []byte("x"))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				n.ResetStats()
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// After the race settles, the service entry must still be live: new
	// traffic lands in both the totals and the per-service counters.
	n.ResetStats()
	const k = 5
	for i := 0; i < k; i++ {
		if _, _, err := n.Call("a", "b", "echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Stats().Messages; got != k {
		t.Fatalf("total messages after reset = %d, want %d", got, k)
	}
	if got := n.ServiceStats("echo").Messages; got != k {
		t.Fatalf("service messages after reset = %d, want %d (entry lost?)", got, k)
	}
}
