// Package simnet provides the message-passing substrate for the Kosha
// reproduction: an in-process network with a deterministic latency/bandwidth
// cost model, plus failure injection (node crashes, partitions).
//
// The paper evaluated Kosha on eight FreeBSD machines behind a 100 Mb/s
// switch. This package substitutes that testbed with multi-node emulation on
// one box: every node registers a service handler, calls are synchronous
// request/response exchanges, and each exchange returns the simulated time
// it would have taken on the modeled link (see Cost). Correctness is
// exercised by real execution; timing is modeled, so measured overheads are
// reproducible on any host.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Addr identifies a node on the network.
type Addr string

// ErrUnreachable is returned when the destination is down or partitioned
// away from the sender. The associated Cost reflects the RPC timeout the
// caller would have burned discovering this.
var ErrUnreachable = errors.New("simnet: destination unreachable")

// ErrNoSuchService is returned when the destination is alive but has no
// handler for the requested service.
var ErrNoSuchService = errors.New("simnet: no such service")

// Handler processes one request and returns the response payload together
// with the simulated cost of local processing (disk ops, nested calls).
type Handler func(from Addr, req []byte) (resp []byte, cost Cost, err error)

// HandlerCtx is a context-aware handler: it additionally receives the trace
// context of the exchange, already re-parented under the server span the
// transport allocated for this request, so any nested calls the handler
// issues nest correctly in the causal tree.
type HandlerCtx func(ctx obs.TraceContext, from Addr, req []byte) (resp []byte, cost Cost, err error)

// Caller is the client side of the transport, implemented by *Network and by
// the TCP transport in internal/tcpnet.
type Caller interface {
	// Call sends req from one node to another node's named service and
	// waits for the response. cost covers the round trip plus the remote
	// handler's own reported cost, and is meaningful even on error.
	Call(from, to Addr, service string, req []byte) (resp []byte, cost Cost, err error)
}

// CtxCaller extends Caller with trace-context propagation. Both transports
// and the core retrier implement it; Call is CallCtx with the zero context.
type CtxCaller interface {
	Caller
	// CallCtx is Call carrying a trace context on the envelope. A valid
	// context makes the receiving transport record a server span (if the
	// destination installed a SpanSink) and hand the handler a re-parented
	// child context; the zero context makes CallCtx behave exactly as Call.
	CallCtx(ctx obs.TraceContext, from, to Addr, service string, req []byte) (resp []byte, cost Cost, err error)
}

// Transport is the full substrate surface a node needs: issuing calls and
// serving its own services. *Network implements it for in-process
// emulation; internal/tcpnet implements it for multi-process deployment.
type Transport interface {
	Caller
	// Register installs a service handler reachable at addr.
	Register(addr Addr, service string, h Handler)
}

// CtxTransport is implemented by transports that also accept context-aware
// registrations and per-node span sinks.
type CtxTransport interface {
	Transport
	CtxCaller
	// RegisterCtx installs a context-aware service handler at addr.
	RegisterCtx(addr Addr, service string, h HandlerCtx)
	// SetSpanSink installs the span recorder for a node: the transport
	// consults it on every traced exchange delivered to addr.
	SetSpanSink(addr Addr, s SpanSink)
}

// SpanSink is how a node plugs its tracer into the transport. The transport
// drives it around every traced exchange: NextSpanID before the handler runs
// (the id parents the handler's nested calls), RecordServerSpan once after
// it returns. One exchange records exactly one span even if fault injection
// delivers the request twice — the duplicate-request path must not inflate
// the causal tree.
type SpanSink interface {
	NextSpanID() uint64
	RecordServerSpan(ctx obs.TraceContext, span uint64, service string, from Addr, req []byte, cost Cost, err error)
}

// Downer is implemented by transports that support failure injection.
type Downer interface {
	SetDown(addr Addr, down bool)
}

// LinkFault describes the fault injected into one message exchange. The zero
// value means "deliver normally".
type LinkFault struct {
	// Drop loses the exchange: the caller burns the RPC timeout and gets
	// ErrUnreachable, the handler never runs.
	Drop bool
	// Dup delivers the request to the handler twice (back to back); the
	// caller sees only the first response. This models a retransmitted
	// datagram reaching a server that already executed the request, and is
	// what the NFS server's duplicate-request cache defends against.
	Dup bool
	// Delay is added to the exchange's wire cost (a latency spike).
	Delay Cost
}

// FaultInjector decides, per exchange, what fault (if any) to inject on the
// from->to link for the given service. It is consulted on every non-local
// Call and must be safe for concurrent use; implementations that want
// determinism should derive decisions from their own seeded state.
type FaultInjector func(from, to Addr, service string) LinkFault

// Stats aggregates traffic counters for experiments.
type Stats struct {
	Messages uint64 // round trips attempted
	Bytes    uint64 // request + response payload bytes
	Failures uint64 // calls that returned an error
}

type node struct {
	mu       sync.RWMutex
	services map[string]HandlerCtx
	sink     SpanSink
	down     atomic.Bool
}

// Network is an in-process transport shared by all simulated nodes.
type Network struct {
	Link LinkModel
	// Timeout is the simulated cost charged for discovering that a peer is
	// unreachable (client RPC timeout).
	Timeout Cost

	mu        sync.RWMutex
	nodes     map[Addr]*node
	partition func(a, b Addr) bool // true when a cannot reach b
	faults    FaultInjector        // nil means no fault injection

	// All traffic counters live in one obs.Registry; the fields below are
	// cached pointers so the Call hot path pays only atomic adds.
	reg      *obs.Registry
	messages *obs.Counter
	bytes    *obs.Counter
	failures *obs.Counter
	dropped  *obs.Counter // exchanges lost by fault injection
	duped    *obs.Counter // requests delivered twice by fault injection
	delayed  *obs.Counter // exchanges given an injected latency spike
	perSvc   sync.Map     // service name -> *svcCounter
}

// svcCounter caches the registry counters for one service name.
type svcCounter struct {
	messages *obs.Counter
	bytes    *obs.Counter
	failures *obs.Counter
}

// New creates a network with the given link model and a 1 s RPC timeout.
func New(link LinkModel) *Network {
	reg := obs.NewRegistry()
	return &Network{
		Link:     link,
		Timeout:  Cost(time.Second),
		nodes:    make(map[Addr]*node),
		reg:      reg,
		messages: reg.Counter("net.messages"),
		bytes:    reg.Counter("net.bytes"),
		failures: reg.Counter("net.failures"),
		dropped:  reg.Counter("net.fault.dropped"),
		duped:    reg.Counter("net.fault.duped"),
		delayed:  reg.Counter("net.fault.delayed"),
	}
}

// Registry exposes the network's metrics registry so experiments and the
// stats surface can snapshot traffic counters alongside everything else.
func (n *Network) Registry() *obs.Registry { return n.reg }

// AddNode registers addr on the network. It is a no-op if already present.
func (n *Network) AddNode(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; !ok {
		n.nodes[addr] = &node{services: make(map[string]HandlerCtx)}
	}
}

// RemoveNode unregisters addr entirely (distinct from SetDown: a removed
// node loses its handlers, modeling a machine wiped from the cluster).
func (n *Network) RemoveNode(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// Register installs a service handler on addr, adding the node if needed.
func (n *Network) Register(addr Addr, service string, h Handler) {
	n.RegisterCtx(addr, service, func(_ obs.TraceContext, from Addr, req []byte) ([]byte, Cost, error) {
		return h(from, req)
	})
}

// RegisterCtx installs a context-aware service handler on addr.
func (n *Network) RegisterCtx(addr Addr, service string, h HandlerCtx) {
	n.AddNode(addr)
	n.mu.RLock()
	nd := n.nodes[addr]
	n.mu.RUnlock()
	nd.mu.Lock()
	nd.services[service] = h
	nd.mu.Unlock()
}

// SetSpanSink installs addr's span recorder (nil clears it). Traced
// exchanges delivered to addr record one server span through it.
func (n *Network) SetSpanSink(addr Addr, s SpanSink) {
	n.AddNode(addr)
	n.mu.RLock()
	nd := n.nodes[addr]
	n.mu.RUnlock()
	nd.mu.Lock()
	nd.sink = s
	nd.mu.Unlock()
}

// SetDown marks addr as crashed (true) or revived (false). Calls to a down
// node fail with ErrUnreachable after the timeout cost. Handlers and state
// are preserved, modeling a machine that is off but intact.
func (n *Network) SetDown(addr Addr, down bool) {
	n.mu.RLock()
	nd := n.nodes[addr]
	n.mu.RUnlock()
	if nd != nil {
		nd.down.Store(down)
	}
}

// IsDown reports whether addr is currently marked crashed.
func (n *Network) IsDown(addr Addr) bool {
	n.mu.RLock()
	nd := n.nodes[addr]
	n.mu.RUnlock()
	return nd == nil || nd.down.Load()
}

// SetPartition installs a reachability predicate; nil clears it. The
// predicate returns true when a cannot reach b. The predicate is directional:
// blocking a->b leaves b->a open, so asymmetric partitions are expressible.
func (n *Network) SetPartition(blocked func(a, b Addr) bool) {
	n.mu.Lock()
	n.partition = blocked
	n.mu.Unlock()
}

// SetFaults installs a per-exchange fault injector; nil clears it. The
// injector runs after the down/partition checks and never applies to local
// (from == to) calls, mirroring SetPartition: loopback traffic between a
// client and its own koshad does not cross the network.
func (n *Network) SetFaults(f FaultInjector) {
	n.mu.Lock()
	n.faults = f
	n.mu.Unlock()
}

// FaultStats reports how many exchanges fault injection has dropped,
// duplicated, and delayed since the last counter reset.
func (n *Network) FaultStats() (dropped, duped, delayed uint64) {
	return n.dropped.Load(), n.duped.Load(), n.delayed.Load()
}

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages: n.messages.Load(),
		Bytes:    n.bytes.Load(),
		Failures: n.failures.Load(),
	}
}

// ServiceStats returns a snapshot of traffic counters for one service name
// (e.g. nfs.Service), letting experiments attribute round trips to the
// protocol that issued them.
func (n *Network) ServiceStats(service string) Stats {
	v, ok := n.perSvc.Load(service)
	if !ok {
		return Stats{}
	}
	c := v.(*svcCounter)
	return Stats{
		Messages: c.messages.Load(),
		Bytes:    c.bytes.Load(),
		Failures: c.failures.Load(),
	}
}

// ResetStats zeroes the traffic counters, including per-service ones. The
// counters are zeroed in place — service entries are never deleted — so a
// concurrent Call holding a counter pointer keeps incrementing a live metric
// and no service entry is ever lost across a reset.
func (n *Network) ResetStats() {
	n.reg.Reset()
}

func (n *Network) svc(service string) *svcCounter {
	if v, ok := n.perSvc.Load(service); ok {
		return v.(*svcCounter)
	}
	c := &svcCounter{
		messages: n.reg.Counter("svc." + service + ".messages"),
		bytes:    n.reg.Counter("svc." + service + ".bytes"),
		failures: n.reg.Counter("svc." + service + ".failures"),
	}
	v, _ := n.perSvc.LoadOrStore(service, c)
	return v.(*svcCounter)
}

// Call implements Caller. Local calls (from == to) skip the link cost but
// still pay the handler's processing cost, mirroring a loopback RPC.
func (n *Network) Call(from, to Addr, service string, req []byte) ([]byte, Cost, error) {
	return n.CallCtx(obs.TraceContext{}, from, to, service, req)
}

// CallCtx implements CtxCaller: Call with a trace context on the envelope.
func (n *Network) CallCtx(ctx obs.TraceContext, from, to Addr, service string, req []byte) ([]byte, Cost, error) {
	n.messages.Add(1)
	n.bytes.Add(uint64(len(req)))
	sc := n.svc(service)
	sc.messages.Add(1)
	sc.bytes.Add(uint64(len(req)))

	n.mu.RLock()
	dst := n.nodes[to]
	blocked := n.partition
	inject := n.faults
	n.mu.RUnlock()

	if dst == nil || dst.down.Load() || (blocked != nil && from != to && blocked(from, to)) {
		n.failures.Add(1)
		return nil, n.Timeout, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}

	var fault LinkFault
	if inject != nil && from != to {
		fault = inject(from, to, service)
	}
	if fault.Drop {
		n.failures.Add(1)
		n.dropped.Add(1)
		return nil, n.Timeout, fmt.Errorf("%w: %s -> %s (dropped)", ErrUnreachable, from, to)
	}

	dst.mu.RLock()
	h := dst.services[service]
	sink := dst.sink
	dst.mu.RUnlock()
	if h == nil {
		n.failures.Add(1)
		return nil, n.Timeout, fmt.Errorf("%w: %q on %s", ErrNoSuchService, service, to)
	}

	// A traced exchange gets a server span: allocate its id up front so the
	// handler's nested calls parent under it, record it once afterwards.
	hctx := ctx
	var span uint64
	if ctx.Valid() && sink != nil {
		span = sink.NextSpanID()
		hctx = ctx.Child(span)
	}

	var wireCost Cost
	if from != to {
		wireCost = n.Link.MessageCost(len(req))
	}
	if fault.Delay > 0 {
		n.delayed.Add(1)
		wireCost = Seq(wireCost, fault.Delay)
	}
	resp, procCost, err := h(hctx, from, req)
	if span != 0 {
		sink.RecordServerSpan(ctx, span, service, from, req, procCost, err)
	}
	if fault.Dup {
		// Deliver the retransmitted copy after the original; the caller only
		// ever sees the first response. Servers must therefore treat
		// non-idempotent requests at-most-once (see nfs.Server's duplicate
		// request cache). The duplicate is the same exchange, so it records
		// no second server span.
		n.duped.Add(1)
		h(hctx, from, req)
	}
	if err != nil {
		n.failures.Add(1)
		return nil, Seq(wireCost, procCost), err
	}
	n.bytes.Add(uint64(len(resp)))
	if from != to {
		wireCost = Seq(wireCost, n.Link.MessageCost(len(resp)))
	}
	return resp, Seq(wireCost, procCost), nil
}

// Nodes returns the addresses currently registered, in unspecified order.
func (n *Network) Nodes() []Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Addr, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	return out
}
