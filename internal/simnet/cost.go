package simnet

import "time"

// Cost is simulated elapsed time along the critical path of an operation.
//
// Kosha's evaluation (Section 6.1.2) models total overhead as
//
//	D = I + H·hc·(N-1)/N
//
// where I is interposition cost, H the hop count, and hc per-hop latency.
// Rather than running on a physical 100 Mb/s testbed, every message and disk
// access in this reproduction carries an explicit Cost; sequential steps add
// and parallel fan-outs take the maximum, so benchmark harnesses can report
// deterministic simulated seconds whose *ratios* match the paper's tables.
type Cost time.Duration

// Duration converts the cost to a time.Duration.
func (c Cost) Duration() time.Duration { return time.Duration(c) }

// Seconds reports the cost in seconds.
func (c Cost) Seconds() float64 { return time.Duration(c).Seconds() }

// Seq returns the cost of performing steps sequentially (the sum).
func Seq(costs ...Cost) Cost {
	var t Cost
	for _, c := range costs {
		t += c
	}
	return t
}

// Par returns the cost of performing steps in parallel (the maximum). Kosha
// uses it for fan-out replication, where the primary waits for all replicas.
func Par(costs ...Cost) Cost {
	var m Cost
	for _, c := range costs {
		if c > m {
			m = c
		}
	}
	return m
}

// LinkModel describes a network link: fixed per-message propagation delay
// plus serialization time proportional to message size.
type LinkModel struct {
	// Propagation is the one-way fixed latency per message (switch + stack).
	Propagation time.Duration
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
}

// MessageCost returns the one-way cost of sending size bytes.
func (m LinkModel) MessageCost(size int) Cost {
	c := Cost(m.Propagation)
	if m.BytesPerSec > 0 {
		c += Cost(float64(size) / m.BytesPerSec * float64(time.Second))
	}
	return c
}

// DiskModel describes local storage: fixed per-operation overhead plus
// transfer time proportional to bytes moved.
type DiskModel struct {
	// PerOp is the fixed cost of a metadata or data operation (seek + FS).
	PerOp time.Duration
	// BytesPerSec is sustained disk bandwidth.
	BytesPerSec float64
}

// OpCost returns the cost of one disk operation moving size bytes.
func (m DiskModel) OpCost(size int) Cost {
	c := Cost(m.PerOp)
	if m.BytesPerSec > 0 {
		c += Cost(float64(size) / m.BytesPerSec * float64(time.Second))
	}
	return c
}

// LAN100 models the paper's testbed interconnect: a 100 Mb/s switched
// Ethernet with sub-millisecond latency ("hc is under 1 ms ... typical
// within an organization", Section 6.1.2).
var LAN100 = LinkModel{
	Propagation: 35 * time.Microsecond,
	BytesPerSec: 100e6 / 8, // 100 Mb/s
}

// Disk7200 models the testbed's 7200 RPM IDE disk (40 GB Barracuda) with
// FreeBSD's buffer cache absorbing most of the seek cost for the MAB's
// small-file workload.
var Disk7200 = DiskModel{
	PerOp:       400 * time.Microsecond,
	BytesPerSec: 35e6,
}
