// Package fstest is a conformance battery for localfs.FileSystem
// implementations: the in-memory store and the on-disk store must behave
// identically through the interface, since koshad treats them
// interchangeably.
package fstest

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/localfs"
)

// Factory builds a fresh, empty file system with the given capacity.
type Factory func(t *testing.T, capacity int64) localfs.FileSystem

// Run executes the conformance battery against the factory.
func Run(t *testing.T, factory Factory) {
	t.Run("CreateWriteRead", func(t *testing.T) { testCreateWriteRead(t, factory) })
	t.Run("LookupAndErrors", func(t *testing.T) { testLookupAndErrors(t, factory) })
	t.Run("Quota", func(t *testing.T) { testQuota(t, factory) })
	t.Run("Truncate", func(t *testing.T) { testTruncate(t, factory) })
	t.Run("RemoveRmdir", func(t *testing.T) { testRemoveRmdir(t, factory) })
	t.Run("Rename", func(t *testing.T) { testRename(t, factory) })
	t.Run("HandleStableAcrossRename", func(t *testing.T) { testHandleStable(t, factory) })
	t.Run("ReaddirSorted", func(t *testing.T) { testReaddirSorted(t, factory) })
	t.Run("Symlink", func(t *testing.T) { testSymlink(t, factory) })
	t.Run("PathHelpers", func(t *testing.T) { testPathHelpers(t, factory) })
	t.Run("Walk", func(t *testing.T) { testWalk(t, factory) })
	t.Run("RemoveAllAccounting", func(t *testing.T) { testRemoveAllAccounting(t, factory) })
	t.Run("Statfs", func(t *testing.T) { testStatfs(t, factory) })
	t.Run("BadNames", func(t *testing.T) { testBadNames(t, factory) })
	t.Run("MerkleDigestStability", func(t *testing.T) { testMerkleDigest(t, factory) })
	t.Run("ChunkManifestStability", func(t *testing.T) { testChunkManifestStability(t, factory) })
}

func testCreateWriteRead(t *testing.T, factory Factory) {
	f := factory(t, 0)
	d, _, err := f.Mkdir(localfs.RootIno, "home", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := f.Create(d.Ino, "x.txt", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	if n, _, err := f.Write(a.Ino, 0, []byte("hello world")); err != nil || n != 11 {
		t.Fatalf("write n=%d err=%v", n, err)
	}
	data, eof, _, err := f.Read(a.Ino, 0, 100)
	if err != nil || !eof || string(data) != "hello world" {
		t.Fatalf("read %q eof=%v err=%v", data, eof, err)
	}
	data, eof, _, _ = f.Read(a.Ino, 6, 5)
	if string(data) != "world" || !eof {
		t.Fatalf("partial %q", data)
	}
	data, eof, _, err = f.Read(a.Ino, 50, 5)
	if err != nil || !eof || len(data) != 0 {
		t.Fatalf("past-eof read: %q err=%v", data, err)
	}
	got, _, err := f.Getattr(a.Ino)
	if err != nil || got.Size != 11 || got.Type != localfs.TypeRegular {
		t.Fatalf("getattr %+v err=%v", got, err)
	}
	if f.NumFiles() != 1 {
		t.Fatalf("files = %d", f.NumFiles())
	}
	// Sparse extension.
	if _, _, err := f.Write(a.Ino, 20, []byte("zz")); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := f.Getattr(a.Ino); got.Size != 22 {
		t.Fatalf("size after sparse write = %d", got.Size)
	}
}

func testLookupAndErrors(t *testing.T, factory Factory) {
	f := factory(t, 0)
	if err := f.WriteFile("/a/b.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	a, _, err := f.Lookup(localfs.RootIno, "a")
	if err != nil || a.Type != localfs.TypeDir {
		t.Fatalf("lookup a: %+v err=%v", a, err)
	}
	b, _, err := f.Lookup(a.Ino, "b.txt")
	if err != nil || b.Type != localfs.TypeRegular {
		t.Fatalf("lookup b: %+v err=%v", b, err)
	}
	if _, _, err := f.Lookup(a.Ino, "missing"); !errors.Is(err, localfs.ErrNoEnt) {
		t.Fatalf("missing err = %v", err)
	}
	if _, _, err := f.Lookup(b.Ino, "child"); !errors.Is(err, localfs.ErrNotDir) {
		t.Fatalf("lookup in file err = %v", err)
	}
	if _, _, err := f.Getattr(999999); !errors.Is(err, localfs.ErrStale) {
		t.Fatalf("stale err = %v", err)
	}
	if _, _, err := f.Create(b.Ino, "x", 0o644, false); err == nil {
		t.Fatal("create in file should fail")
	}
	// Exclusive create collision.
	if _, _, err := f.Create(a.Ino, "b.txt", 0o644, true); !errors.Is(err, localfs.ErrExist) {
		t.Fatalf("exclusive err = %v", err)
	}
}

func testQuota(t *testing.T, factory Factory) {
	f := factory(t, 100)
	a, _, err := f.Create(localfs.RootIno, "f", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Write(a.Ino, 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Write(a.Ino, 100, []byte{1}); !errors.Is(err, localfs.ErrNoSpace) {
		t.Fatalf("over-quota err = %v", err)
	}
	if f.Used() != 100 {
		t.Fatalf("used = %d", f.Used())
	}
	if u := f.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v", u)
	}
	if _, err := f.Remove(localfs.RootIno, "f"); err != nil {
		t.Fatal(err)
	}
	if f.Used() != 0 || f.NumFiles() != 0 {
		t.Fatalf("after remove used=%d files=%d", f.Used(), f.NumFiles())
	}
}

func testTruncate(t *testing.T, factory Factory) {
	f := factory(t, 0)
	a, _, _ := f.Create(localfs.RootIno, "t", 0o644, false)
	f.Write(a.Ino, 0, []byte("0123456789"))
	sz := int64(4)
	got, _, err := f.Setattr(a.Ino, localfs.SetAttr{Size: &sz})
	if err != nil || got.Size != 4 {
		t.Fatalf("truncate: %+v err=%v", got, err)
	}
	if f.Used() != 4 {
		t.Fatalf("used = %d", f.Used())
	}
	sz = 8
	f.Setattr(a.Ino, localfs.SetAttr{Size: &sz})
	data, _, _, _ := f.Read(a.Ino, 0, 100)
	if !bytes.Equal(data, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("data = %v", data)
	}
	sz = -1
	if _, _, err := f.Setattr(a.Ino, localfs.SetAttr{Size: &sz}); !errors.Is(err, localfs.ErrTooBig) {
		t.Fatalf("negative size err = %v", err)
	}
	d, _, _ := f.Mkdir(localfs.RootIno, "d", 0o755)
	sz = 0
	if _, _, err := f.Setattr(d.Ino, localfs.SetAttr{Size: &sz}); !errors.Is(err, localfs.ErrIsDir) {
		t.Fatalf("dir truncate err = %v", err)
	}
	mode := uint32(0o600)
	if got, _, err := f.Setattr(a.Ino, localfs.SetAttr{Mode: &mode}); err != nil || got.Mode != 0o600 {
		t.Fatalf("chmod: %+v err=%v", got, err)
	}
}

func testRemoveRmdir(t *testing.T, factory Factory) {
	f := factory(t, 0)
	d, _, _ := f.Mkdir(localfs.RootIno, "d", 0o755)
	f.Create(d.Ino, "f", 0o644, false)
	if _, err := f.Rmdir(localfs.RootIno, "d"); !errors.Is(err, localfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	if _, err := f.Remove(localfs.RootIno, "d"); !errors.Is(err, localfs.ErrIsDir) {
		t.Fatalf("remove dir err = %v", err)
	}
	if _, err := f.Rmdir(d.Ino, "f"); !errors.Is(err, localfs.ErrNotDir) {
		t.Fatalf("rmdir file err = %v", err)
	}
	if _, err := f.Remove(d.Ino, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Rmdir(localfs.RootIno, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Remove(localfs.RootIno, "ghost"); !errors.Is(err, localfs.ErrNoEnt) {
		t.Fatalf("remove missing err = %v", err)
	}
}

func testRename(t *testing.T, factory Factory) {
	f := factory(t, 0)
	d1, _, _ := f.Mkdir(localfs.RootIno, "d1", 0o755)
	d2, _, _ := f.Mkdir(localfs.RootIno, "d2", 0o755)
	a, _, _ := f.Create(d1.Ino, "f", 0o644, false)
	f.Write(a.Ino, 0, []byte("payload"))

	if _, err := f.Rename(d1.Ino, "f", d2.Ino, "g"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Lookup(d1.Ino, "f"); !errors.Is(err, localfs.ErrNoEnt) {
		t.Fatal("source still present")
	}
	g, _, err := f.Lookup(d2.Ino, "g")
	if err != nil || g.Size != 7 {
		t.Fatalf("dest: %+v err=%v", g, err)
	}
	// Overwrite existing file; accounting follows.
	h, _, _ := f.Create(d2.Ino, "h", 0o644, false)
	f.Write(h.Ino, 0, []byte("xx"))
	used := f.Used()
	if _, err := f.Rename(d2.Ino, "g", d2.Ino, "h"); err != nil {
		t.Fatal(err)
	}
	if got := f.Used(); got != used-2 {
		t.Fatalf("used after overwrite: %d, want %d", got, used-2)
	}
	if f.NumFiles() != 1 {
		t.Fatalf("files = %d", f.NumFiles())
	}
	// Dir over non-empty dir refused.
	s1, _, _ := f.Mkdir(localfs.RootIno, "s1", 0o755)
	s2, _, _ := f.Mkdir(localfs.RootIno, "s2", 0o755)
	f.Create(s2.Ino, "inner", 0o644, false)
	if _, err := f.Rename(localfs.RootIno, "s1", localfs.RootIno, "s2"); !errors.Is(err, localfs.ErrNotEmpty) {
		t.Fatalf("rename over non-empty err = %v", err)
	}
	// Into own subtree refused.
	sub, _, _ := f.Mkdir(s1.Ino, "sub", 0o755)
	if _, err := f.Rename(localfs.RootIno, "s1", sub.Ino, "evil"); !errors.Is(err, localfs.ErrInval) {
		t.Fatalf("own-subtree err = %v", err)
	}
	if _, err := f.Rename(localfs.RootIno, "missing", localfs.RootIno, "x"); !errors.Is(err, localfs.ErrNoEnt) {
		t.Fatalf("missing source err = %v", err)
	}
}

func testHandleStable(t *testing.T, factory Factory) {
	f := factory(t, 0)
	d1, _, _ := f.Mkdir(localfs.RootIno, "d1", 0o755)
	d2, _, _ := f.Mkdir(localfs.RootIno, "d2", 0o755)
	a, _, _ := f.Create(d1.Ino, "f", 0o644, false)
	f.Write(a.Ino, 0, []byte("stay"))
	if _, err := f.Rename(d1.Ino, "f", d2.Ino, "moved"); err != nil {
		t.Fatal(err)
	}
	// The old handle still reads the moved file, as on a real NFS server.
	data, _, _, err := f.Read(a.Ino, 0, 10)
	if err != nil || string(data) != "stay" {
		t.Fatalf("read via old handle: %q err=%v", data, err)
	}
	// Directory rename keeps descendants' handles valid too.
	if _, err := f.Rename(localfs.RootIno, "d2", localfs.RootIno, "d3"); err != nil {
		t.Fatal(err)
	}
	if data, _, _, err := f.Read(a.Ino, 0, 10); err != nil || string(data) != "stay" {
		t.Fatalf("read after dir rename: %q err=%v", data, err)
	}
}

func testReaddirSorted(t *testing.T, factory Factory) {
	f := factory(t, 0)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		f.Create(localfs.RootIno, n, 0o644, false)
	}
	f.Mkdir(localfs.RootIno, "bdir", 0o755)
	f.Symlink(localfs.RootIno, "slink", "target")
	ents, _, err := f.Readdir(localfs.RootIno)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	types := map[string]localfs.FileType{}
	for _, e := range ents {
		names = append(names, e.Name)
		types[e.Name] = e.Type
	}
	if strings.Join(names, ",") != "alpha,bdir,mid,slink,zeta" {
		t.Fatalf("names = %v", names)
	}
	if types["bdir"] != localfs.TypeDir || types["slink"] != localfs.TypeSymlink || types["mid"] != localfs.TypeRegular {
		t.Fatalf("types = %v", types)
	}
	// Readdir of a file fails.
	a, _, _ := f.Lookup(localfs.RootIno, "mid")
	if _, _, err := f.Readdir(a.Ino); !errors.Is(err, localfs.ErrNotDir) {
		t.Fatalf("readdir file err = %v", err)
	}
}

func testSymlink(t *testing.T, factory Factory) {
	f := factory(t, 0)
	a, _, err := f.Symlink(localfs.RootIno, "lnk", "dir#12345678")
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != localfs.TypeSymlink {
		t.Fatalf("attr = %+v", a)
	}
	target, _, err := f.Readlink(a.Ino)
	if err != nil || target != "dir#12345678" {
		t.Fatalf("readlink = %q err=%v", target, err)
	}
	b, _, _ := f.Create(localfs.RootIno, "f", 0o644, false)
	if _, _, err := f.Readlink(b.Ino); !errors.Is(err, localfs.ErrInval) {
		t.Fatalf("readlink file err = %v", err)
	}
	if _, _, err := f.Symlink(localfs.RootIno, "lnk", "again"); !errors.Is(err, localfs.ErrExist) {
		t.Fatalf("dup symlink err = %v", err)
	}
	// Symlink size counts against quota.
	g := factory(t, 5)
	if _, _, err := g.Symlink(localfs.RootIno, "l", "123456"); !errors.Is(err, localfs.ErrNoSpace) {
		t.Fatalf("symlink quota err = %v", err)
	}
}

func testPathHelpers(t *testing.T, factory Factory) {
	f := factory(t, 0)
	if _, err := f.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.MkdirAll("/a/b/c"); err != nil {
		t.Fatal("MkdirAll not idempotent:", err)
	}
	a, err := f.LookupPath("/a/b/c")
	if err != nil || a.Type != localfs.TypeDir {
		t.Fatalf("LookupPath: %+v err=%v", a, err)
	}
	if err := f.WriteFile("/a/b/c/f.txt", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadFile("/a/b/c/f.txt")
	if err != nil || string(data) != "xyz" {
		t.Fatalf("ReadFile %q err=%v", data, err)
	}
	// Overwrite shrinks accounting correctly.
	if err := f.WriteFile("/a/b/c/f.txt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if f.Used() != 1 {
		t.Fatalf("used = %d", f.Used())
	}
	if _, err := f.MkdirAll("/a/b/c/f.txt/sub"); !errors.Is(err, localfs.ErrNotDir) {
		t.Fatalf("MkdirAll through file err = %v", err)
	}
	if _, err := f.LookupPath("/a/zz"); !errors.Is(err, localfs.ErrNoEnt) {
		t.Fatalf("missing LookupPath err = %v", err)
	}
	r, err := f.LookupPath("/")
	if err != nil || r.Type != localfs.TypeDir {
		t.Fatalf("root: %+v err=%v", r, err)
	}
}

func testWalk(t *testing.T, factory Factory) {
	f := factory(t, 0)
	f.WriteFile("/a/z", []byte("z"))
	f.WriteFile("/a/b/x", []byte("x"))
	f.Symlink(localfs.RootIno, "top", "t")
	var visited []string
	err := f.Walk("/", func(p string, a localfs.Attr, target string) error {
		visited = append(visited, p+":"+a.Type.String())
		if a.Type == localfs.TypeSymlink && target != "t" {
			t.Errorf("symlink target = %q", target)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "/:dir /a:dir /a/b:dir /a/b/x:file /a/z:file /top:symlink"
	if strings.Join(visited, " ") != want {
		t.Fatalf("walk = %v", visited)
	}
	visited = nil
	f.Walk("/a/b", func(p string, _ localfs.Attr, _ string) error {
		visited = append(visited, p)
		return nil
	})
	if strings.Join(visited, " ") != "/a/b /a/b/x" {
		t.Fatalf("subtree walk = %v", visited)
	}
	sentinel := errors.New("stop")
	if err := f.Walk("/", func(string, localfs.Attr, string) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("walk err = %v", err)
	}
	if err := f.Walk("/missing", func(string, localfs.Attr, string) error { return nil }); !errors.Is(err, localfs.ErrNoEnt) {
		t.Fatalf("walk missing err = %v", err)
	}
}

func testRemoveAllAccounting(t *testing.T, factory Factory) {
	f := factory(t, 0)
	f.WriteFile("/a/b/f1", []byte("11111"))
	f.WriteFile("/a/b/c/f2", []byte("22222"))
	f.WriteFile("/a/keep", []byte("k"))
	if err := f.RemoveAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LookupPath("/a/b"); !errors.Is(err, localfs.ErrNoEnt) {
		t.Fatal("subtree still present")
	}
	if _, err := f.LookupPath("/a/keep"); err != nil {
		t.Fatal("sibling lost")
	}
	if f.Used() != 1 || f.NumFiles() != 1 {
		t.Fatalf("used=%d files=%d", f.Used(), f.NumFiles())
	}
	if err := f.RemoveAll("/no/such"); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveAll("/"); err != nil {
		t.Fatal(err)
	}
	if f.Used() != 0 || f.NumFiles() != 0 {
		t.Fatalf("after purge used=%d files=%d", f.Used(), f.NumFiles())
	}
	ents, _, _ := f.Readdir(localfs.RootIno)
	if len(ents) != 0 {
		t.Fatalf("root not empty: %v", ents)
	}
}

func testStatfs(t *testing.T, factory Factory) {
	f := factory(t, 1000)
	f.WriteFile("/f", make([]byte, 123))
	st, _, err := f.Statfs()
	if err != nil || st.TotalBytes != 1000 || st.UsedBytes != 123 || st.Files != 1 {
		t.Fatalf("statfs = %+v err=%v", st, err)
	}
}

func testBadNames(t *testing.T, factory Factory) {
	f := factory(t, 0)
	for _, bad := range []string{"", ".", "..", "a/b", strings.Repeat("x", 300)} {
		if _, _, err := f.Mkdir(localfs.RootIno, bad, 0o755); !errors.Is(err, localfs.ErrInval) {
			t.Errorf("Mkdir(%q) err = %v", bad, err)
		}
		if _, _, err := f.Create(localfs.RootIno, bad, 0o644, false); err == nil {
			t.Errorf("Create(%q) accepted", bad)
		}
	}
}
