package fstest

import (
	"testing"

	"repro/internal/localfs"
	"repro/internal/merkle"
)

// testMerkleDigest verifies the digest contract every backend must honor:
// digests are content-structural — equal trees digest equal regardless of
// backend or position in the store — and a cached digest tracks mutations.
func testMerkleDigest(t *testing.T, factory Factory) {
	build := func(f localfs.FileSystem, root string) {
		if err := f.WriteFile(root+"/a.txt", []byte("alpha")); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteFile(root+"/sub/b.txt", []byte("beta")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.MkdirAll(root + "/empty"); err != nil {
			t.Fatal(err)
		}
		dir, err := f.LookupPath(root)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.Symlink(dir.Ino, "link", "sub/b.txt"); err != nil {
			t.Fatal(err)
		}
	}

	f := factory(t, 0)
	build(f, "/data")
	build(f, "/.rep/data")

	d1, err := merkle.DigestPath(f, "/data")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := merkle.DigestPath(f, "/.rep/data")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("identical trees at different positions digest differently")
	}
	if d1.IsZero() {
		t.Fatal("digest of a non-empty tree is zero")
	}

	// A cache over the same store must agree with the uncached oracle, both
	// before and after a mutation (hook-driven invalidation where the
	// backend supports it, recomputation otherwise).
	cache := merkle.NewCache(f)
	if got, err := cache.DigestOf("/data"); err != nil || got != d1 {
		t.Fatalf("cached digest diverges from oracle: %v err=%v", got, err)
	}
	if err := f.WriteFile("/data/sub/b.txt", []byte("BETA!")); err != nil {
		t.Fatal(err)
	}
	want, err := merkle.DigestPath(f, "/data")
	if err != nil {
		t.Fatal(err)
	}
	if want == d1 {
		t.Fatal("mutating a nested file did not change the root digest")
	}
	if got, err := cache.DigestOf("/data"); err != nil || got != want {
		t.Fatalf("cache did not track the mutation: got %v want %v err=%v", got, want, err)
	}
	// The untouched copy keeps its digest.
	if got, err := merkle.DigestPath(f, "/.rep/data"); err != nil || got != d1 {
		t.Fatalf("unrelated subtree's digest moved: err=%v", err)
	}
}
