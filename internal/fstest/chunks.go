package fstest

import (
	"fmt"
	"testing"

	"repro/internal/cas"
	"repro/internal/merkle"
)

// chunkGoldenDigest pins the chunk decomposition of the 1 MiB reference
// payload: boundaries, chunk hashes, and their order. Manifests are
// protocol state — peers compare them across versions — so the chunker
// must produce this exact manifest forever, on every backend. Recompute
// only with a deliberate, wire-breaking chunker change.
const chunkGoldenDigest = "37fe86b179356c30a4140a3708de355815eb8f5e848a85351c80ea70ee9c399a"

// chunkPayload is the deterministic reference payload (same LCG family the
// benchmarks use, fixed seed).
func chunkPayload(n int) []byte {
	b := make([]byte, n)
	s := uint64(0x6b6f736861) // "kosha"
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = byte(s >> 33)
	}
	return b
}

// testChunkManifestStability verifies the chunk-store contract every
// backend must honor: the content-defined chunker is a pure function of
// the bytes (identical manifest wherever the file lives), the manifest
// digest matches the pinned golden value, and a block index layered over
// the backend serves every chunk back hash-verified.
func testChunkManifestStability(t *testing.T, factory Factory) {
	f := factory(t, 0)
	data := chunkPayload(1 << 20)
	if err := f.WriteFile("/data/blob.bin", data); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/.rep/data/blob.bin", data); err != nil {
		t.Fatal(err)
	}

	man := cas.Split(data)
	if len(man) < 4 {
		t.Fatalf("1 MiB split into %d chunks, want several", len(man))
	}
	if man.TotalLen() != int64(len(data)) {
		t.Fatalf("manifest covers %d bytes, file has %d", man.TotalLen(), len(data))
	}
	if got := fmt.Sprintf("%x", merkle.ManifestDigest(man)); got != chunkGoldenDigest {
		t.Fatalf("chunker drifted: manifest digest %s, pinned %s", got, chunkGoldenDigest)
	}

	// The cache computes the same manifest through the backend's read path,
	// for both copies.
	store := cas.NewStore(f, nil)
	mk := merkle.NewCacheWithStore(f, store)
	for _, p := range []string{"/data/blob.bin", "/.rep/data/blob.bin"} {
		got, err := mk.ManifestOf(p)
		if err != nil {
			t.Fatalf("ManifestOf(%s): %v", p, err)
		}
		if !got.Equal(man) {
			t.Fatalf("backend manifest of %s diverges from cas.Split", p)
		}
	}

	// Every chunk resolves from the index, hash-verified, and reassembles
	// the file byte for byte.
	var rebuilt []byte
	for i, ch := range man {
		b, ok := store.Get(ch.Hash)
		if !ok {
			t.Fatalf("chunk %d missing from index", i)
		}
		if len(b) != int(ch.Len) || cas.SumChunk(b) != ch.Hash {
			t.Fatalf("chunk %d came back corrupt", i)
		}
		rebuilt = append(rebuilt, b...)
	}
	if string(rebuilt) != string(data) {
		t.Fatal("reassembled file diverges from original")
	}
}
