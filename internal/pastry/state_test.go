package pastry

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/id"
	"repro/internal/simnet"
)

func info(v uint64) NodeInfo {
	return NodeInfo{ID: id.FromUint64(v), Addr: "n"}
}

func newTestState(self uint64, leaf int) *state {
	return newState(info(self), leaf)
}

func TestLeafHalvesSortedAndBounded(t *testing.T) {
	s := newTestState(1000, 4) // 2 per side
	for _, v := range []uint64{1010, 1001, 1020, 1005, 990, 999, 800} {
		s.add(info(v))
	}
	// Successors: two closest clockwise = 1001, 1005.
	if len(s.succs) != 2 || s.succs[0].ID != id.FromUint64(1001) || s.succs[1].ID != id.FromUint64(1005) {
		t.Fatalf("succs = %v", s.succs)
	}
	// Predecessors: two closest counter-clockwise = 999, 990.
	if len(s.preds) != 2 || s.preds[0].ID != id.FromUint64(999) || s.preds[1].ID != id.FromUint64(990) {
		t.Fatalf("preds = %v", s.preds)
	}
}

func TestAddSelfAndZeroIgnored(t *testing.T) {
	s := newTestState(7, 8)
	if s.add(info(7)) {
		t.Fatal("adding self should not change the leaf set")
	}
	if s.add(NodeInfo{}) {
		t.Fatal("adding the zero value should not change the leaf set")
	}
	if len(s.leafMembers()) != 0 {
		t.Fatal("leaf set should be empty")
	}
}

func TestAddDuplicateNoChange(t *testing.T) {
	s := newTestState(1, 8)
	if !s.add(info(5)) {
		t.Fatal("first add should change the leaf set")
	}
	if s.add(info(5)) {
		t.Fatal("duplicate add should not change the leaf set")
	}
}

func TestRemoveClearsBothStructures(t *testing.T) {
	s := newTestState(1, 8)
	s.add(info(5))
	if !s.remove(id.FromUint64(5)) {
		t.Fatal("remove should report a leaf change")
	}
	if len(s.leafMembers()) != 0 {
		t.Fatal("leaf member left behind")
	}
	if len(s.allKnown()) != 0 {
		t.Fatal("routing table entry left behind")
	}
	if s.remove(id.FromUint64(5)) {
		t.Fatal("second remove should be a no-op")
	}
}

func TestRoutingTableSlot(t *testing.T) {
	self := id.MustHex("a0000000000000000000000000000000")
	s := newState(NodeInfo{ID: self, Addr: "self"}, 8)
	// Shares 1 digit ("a"), next digit "b": row 1, col 0xb.
	peer := NodeInfo{ID: id.MustHex("ab000000000000000000000000000000"), Addr: "p"}
	s.add(peer)
	if got := s.table[1][0xb]; got.ID != peer.ID {
		t.Fatalf("table[1][b] = %v", got)
	}
	// First-writer-wins: another node for the same slot doesn't evict.
	peer2 := NodeInfo{ID: id.MustHex("ab100000000000000000000000000000"), Addr: "p2"}
	s.add(peer2)
	if got := s.table[1][0xb]; got.ID != peer.ID {
		t.Fatalf("slot evicted: %v", got)
	}
}

func TestLeafCoversSmallOverlay(t *testing.T) {
	s := newTestState(100, 8)
	s.add(info(200))
	s.add(info(300))
	// Halves not full: the leaf set wraps the whole ring.
	if !s.leafCovers(id.FromUint64(999999)) {
		t.Fatal("small overlay must cover every key")
	}
}

func TestNextHopSelfWhenAlone(t *testing.T) {
	s := newTestState(42, 8)
	next, isRoot := s.nextHop(id.HashKey("k"), nil)
	if !isRoot || !next.IsZero() {
		t.Fatalf("lone node not root: %v %v", next, isRoot)
	}
}

func TestNextHopExcludesDead(t *testing.T) {
	s := newTestState(100, 8)
	s.add(info(110)) // would be the root for key 111
	s.add(info(90))
	key := id.FromUint64(111)
	next, isRoot := s.nextHop(key, nil)
	if isRoot || next.ID != id.FromUint64(110) {
		t.Fatalf("expected 110, got %v isRoot=%v", next, isRoot)
	}
	// With 110 excluded, self (100) is closer to 111 than 90.
	next, isRoot = s.nextHop(key, []id.ID{id.FromUint64(110)})
	if !isRoot {
		t.Fatalf("expected self root after exclusion, got %v", next)
	}
}

func TestReplicaCandidatesOrderingAndDedup(t *testing.T) {
	s := newTestState(1000, 8)
	for _, v := range []uint64{1001, 1002, 998, 997} {
		s.add(info(v))
	}
	got := s.replicaCandidates(3)
	if len(got) != 3 {
		t.Fatalf("candidates = %v", got)
	}
	// Alternation: succ1 (1001), pred1 (999? -> 998), succ2 (1002).
	want := []uint64{1001, 998, 1002}
	for i, w := range want {
		if got[i].ID != id.FromUint64(w) {
			t.Fatalf("candidate %d = %v, want %d", i, got[i].ID, w)
		}
	}
	// Asking for more than available returns all without duplicates.
	got = s.replicaCandidates(10)
	seen := map[id.ID]bool{}
	for _, g := range got {
		if seen[g.ID] {
			t.Fatalf("duplicate candidate %v", g.ID)
		}
		seen[g.ID] = true
	}
	if len(got) != 4 {
		t.Fatalf("got %d candidates, want all 4", len(got))
	}
}

func TestLeafMembersDeduplicated(t *testing.T) {
	// In a tiny overlay the same nodes appear in both halves; leafMembers
	// must not double-report them.
	s := newTestState(100, 16)
	s.add(info(200))
	s.add(info(300))
	members := s.leafMembers()
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
}

// Property: the leaf set of every node always holds the true nearest
// neighbors on each side after any insertion order.
func TestPropLeafSetNearest(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 50; iter++ {
		self := r.Uint64()
		s := newState(NodeInfo{ID: id.FromUint64(self), Addr: "s"}, 8)
		var others []uint64
		for i := 0; i < 30; i++ {
			v := r.Uint64()
			if v == self {
				continue
			}
			others = append(others, v)
			s.add(NodeInfo{ID: id.FromUint64(v), Addr: "x"})
		}
		// True 4 clockwise-closest.
		sort.Slice(others, func(i, j int) bool {
			di := id.FromUint64(self).CWDist(id.FromUint64(others[i]))
			dj := id.FromUint64(self).CWDist(id.FromUint64(others[j]))
			return di.Less(dj)
		})
		for i := 0; i < 4 && i < len(others); i++ {
			found := false
			for _, m := range s.succs {
				if m.ID == id.FromUint64(others[i]) {
					found = true
				}
			}
			if !found {
				t.Fatalf("iter %d: succ %d (%d) missing from %v", iter, i, others[i], s.succs)
			}
		}
	}
}

// Property: nextHop never returns an excluded node and, when not root, the
// returned hop is strictly closer to the key than self.
func TestPropNextHopProgress(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		selfID := id.FromUint64(r.Uint64())
		s := newState(NodeInfo{ID: selfID, Addr: "s"}, 8)
		var members []id.ID
		for i := 0; i < 20; i++ {
			v := id.FromUint64(r.Uint64())
			members = append(members, v)
			s.add(NodeInfo{ID: v, Addr: simnet.Addr(fmt.Sprintf("m%d", i))})
		}
		var key id.ID
		r.Read(key[:])
		var excl []id.ID
		for _, m := range members[:5] {
			excl = append(excl, m)
		}
		next, isRoot := s.nextHop(key, excl)
		if isRoot {
			continue
		}
		for _, x := range excl {
			if next.ID == x {
				t.Fatalf("iter %d: excluded node returned", iter)
			}
		}
		if !key.Distance(next.ID).Less(key.Distance(selfID)) {
			// Leaf-covered decisions may return a node at equal distance
			// only if it IS closer; require strict progress.
			t.Fatalf("iter %d: hop not closer to key", iter)
		}
	}
}
