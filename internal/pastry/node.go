package pastry

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/id"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// ErrRouteFailed is returned when routing cannot converge (all candidate
// hops dead and no better node known).
var ErrRouteFailed = errors.New("pastry: route failed")

// LeafSetChange describes a leaf-set membership delta delivered to the
// application ("The p2p component ... informs Kosha on a node N when nodes
// in N's leaf set are affected", Section 4.3).
type LeafSetChange struct {
	Joined []NodeInfo
	Left   []NodeInfo
}

// RouteResult reports the outcome of a key lookup.
type RouteResult struct {
	Node NodeInfo    // the root: live node numerically closest to the key
	Hops int         // overlay RPCs taken
	Cost simnet.Cost // simulated latency of those RPCs
	// Path lists the nodes that answered a next-hop query, in routing
	// order, ending with the root. Iterative routing makes this available
	// client-side for free; the observability layer turns it into
	// hop-by-hop trace records with prefix-match depths.
	Path []NodeInfo
}

// Node is one Pastry overlay participant.
type Node struct {
	net simnet.Transport

	mu    sync.RWMutex
	st    *state
	alive bool

	onChange func(LeafSetChange)
}

// NewNode creates a node with the given identifier and network address. The
// caller must Attach it and then Bootstrap it into an overlay.
func NewNode(nodeID id.ID, addr simnet.Addr, net simnet.Transport, leafSize int) *Node {
	return &Node{
		net: net,
		st:  newState(NodeInfo{ID: nodeID, Addr: addr}, leafSize),
	}
}

// Info returns this node's identity.
func (n *Node) Info() NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.self
}

// OnLeafSetChange registers the callback invoked when leaf-set membership
// changes. The callback runs without the node lock held; it may call back
// into the node and the network.
func (n *Node) OnLeafSetChange(fn func(LeafSetChange)) {
	n.mu.Lock()
	n.onChange = fn
	n.mu.Unlock()
}

// Attach registers the node's overlay RPC handler.
func (n *Node) Attach() {
	n.net.Register(n.Info().Addr, Service, n.handle)
}

// Leaf returns the current leaf set (excluding self).
func (n *Node) Leaf() []NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.leafMembers()
}

// Known returns every node in the routing state (excluding self).
func (n *Node) Known() []NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.allKnown()
}

// ReplicaCandidates returns up to k ring-adjacent leaf-set nodes,
// alternating successor/predecessor (Section 4.2).
func (n *Node) ReplicaCandidates(k int) []NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.replicaCandidates(k)
}

// LeafStats reports leaf-set occupancy for the overlay-health gauges: the
// current deduplicated member count and the ideal (configured) size l.
func (n *Node) LeafStats() (size, ideal int) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.st.leafMembers()), n.st.leafSize
}

// TableStats reports routing-table occupancy: filled entries and how many
// rows hold at least one entry. Fill relative to rows×cols is the
// "routing-table fill" health gauge; absolute numbers are exported so the
// consumer picks its own denominator.
func (n *Node) TableStats() (entries, rows int) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for r := range n.st.table {
		rowHas := false
		for c := range n.st.table[r] {
			if !n.st.table[r][c].IsZero() {
				entries++
				rowHas = true
			}
		}
		if rowHas {
			rows++
		}
	}
	return entries, rows
}

// IsRootFor reports whether this node believes it is numerically closest to
// key among the nodes it knows.
func (n *Node) IsRootFor(key id.ID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, isRoot := n.st.nextHop(key, nil)
	return isRoot
}

// addPeer merges a peer and fires the change callback when the leaf set
// shifts. It reports whether the leaf set changed.
func (n *Node) addPeer(p NodeInfo) bool {
	n.mu.Lock()
	changed := n.st.add(p)
	cb := n.onChange
	n.mu.Unlock()
	if changed && cb != nil {
		cb(LeafSetChange{Joined: []NodeInfo{p}})
	}
	return changed
}

func (n *Node) addPeers(ps []NodeInfo) {
	for _, p := range ps {
		n.addPeer(p)
	}
}

// removePeer purges a dead peer and fires the change callback when the leaf
// set shifts.
func (n *Node) removePeer(dead NodeInfo) {
	n.mu.Lock()
	changed := n.st.remove(dead.ID)
	cb := n.onChange
	n.mu.Unlock()
	if changed && cb != nil {
		cb(LeafSetChange{Left: []NodeInfo{dead}})
	}
}

// Bootstrap joins the overlay via a seed node's address; an empty seed
// starts a new overlay. Joining routes toward the new node's own id,
// merging routing state from every hop, then announces the newcomer to all
// nodes it learned about (Section 2.2's self-organizing join).
func (n *Node) Bootstrap(seed simnet.Addr) (simnet.Cost, error) {
	n.mu.Lock()
	n.alive = true
	self := n.st.self
	n.mu.Unlock()

	if seed == "" || seed == self.Addr {
		return 0, nil
	}

	var total simnet.Cost

	// Learn the seed's identity and state.
	state, cost, err := n.rpcGetState(seed)
	total = simnet.Seq(total, cost)
	if err != nil {
		return total, fmt.Errorf("pastry: bootstrap via %s: %w", seed, err)
	}
	n.addPeers(state)

	// Route toward our own id to find our ring neighborhood; merge state
	// from each hop on the way.
	res, err := n.routeCollect(obs.TraceContext{}, self.ID, true)
	total = simnet.Seq(total, res.Cost)
	if err != nil {
		return total, fmt.Errorf("pastry: join route: %w", err)
	}

	// Adopt the root's leaf set: those nodes bracket our position.
	if res.Node.ID != self.ID {
		leafs, cost, err := n.rpcGetLeafSet(res.Node.Addr)
		total = simnet.Seq(total, cost)
		if err == nil {
			n.addPeers(leafs)
			n.addPeer(res.Node)
		}
	}

	// Announce ourselves to everyone we know so their leaf sets include us
	// and their Kosha layers can migrate content (Section 4.3.1).
	for _, p := range n.Known() {
		cost, err := n.rpcNotify(p.Addr, self)
		total = simnet.Seq(total, cost)
		if err != nil {
			n.removePeer(p)
		}
	}
	return total, nil
}

// EnsureRootFor actively verifies whether this node is the root for key:
// if a better candidate exists it is pinged, and dead candidates are purged
// until either a live better node is found (false) or none remains (true).
// Kosha's primary-ownership checks use this so that a node bordering a
// fresh failure takes over its keys immediately (Section 4.4).
func (n *Node) EnsureRootFor(key id.ID) (bool, simnet.Cost) {
	var total simnet.Cost
	for i := 0; i < 16; i++ {
		n.mu.RLock()
		next, isRoot := n.st.nextHop(key, nil)
		n.mu.RUnlock()
		if isRoot {
			return true, total
		}
		c, err := n.rpcPing(next.Addr)
		total = simnet.Seq(total, c)
		if err == nil {
			return false, total
		}
		n.removePeer(next)
	}
	return false, total
}

// MarkDead purges a node (identified by address) from the routing state,
// used by the application layer when an RPC to that node failed outside the
// overlay (e.g. an NFS forward timed out, Section 4.4).
func (n *Node) MarkDead(addr simnet.Addr) {
	for _, p := range n.Known() {
		if p.Addr == addr {
			n.removePeer(p)
			return
		}
	}
}

// Route finds the live node numerically closest to key.
func (n *Node) Route(key id.ID) (RouteResult, error) {
	return n.routeCollect(obs.TraceContext{}, key, false)
}

// RouteCtx is Route under a distributed-tracing context: every next-hop RPC
// carries the caller's trace id, so each hop's server records a span fragment
// and the assembled cross-node trace shows the full routing path.
func (n *Node) RouteCtx(tc obs.TraceContext, key id.ID) (RouteResult, error) {
	return n.routeCollect(tc, key, false)
}

// routeCollect performs iterative routing. When collect is true, the full
// state of every hop is merged into our own (used during join).
func (n *Node) routeCollect(tc obs.TraceContext, key id.ID, collect bool) (RouteResult, error) {
	self := n.Info()
	var res RouteResult
	var excluded []id.ID

	const maxHops = 64
restart:
	for attempts := 0; ; attempts++ {
		if attempts > maxHops {
			return res, fmt.Errorf("%w: no live candidates for %s", ErrRouteFailed, key.Short())
		}
		n.mu.RLock()
		next, isRoot := n.st.nextHop(key, excluded)
		n.mu.RUnlock()
		if isRoot {
			res.Node = self
			res.Path = append(res.Path, self)
			return res, nil
		}

		cur := next
		for hop := 0; hop < maxHops; hop++ {
			if collect {
				if st, cost, err := n.rpcGetState(cur.Addr); err == nil {
					res.Cost = simnet.Seq(res.Cost, cost)
					n.addPeers(st)
				}
			}
			nh, isRoot, cost, err := n.rpcNextHop(tc, cur.Addr, key, excluded)
			res.Cost = simnet.Seq(res.Cost, cost)
			res.Hops++
			if err != nil {
				// cur is dead: exclude it, purge it, restart from self.
				excluded = append(excluded, cur.ID)
				n.removePeer(cur)
				continue restart
			}
			n.addPeer(cur)
			res.Path = append(res.Path, cur)
			if isRoot {
				res.Node = cur
				return res, nil
			}
			cur = nh
		}
		return res, fmt.Errorf("%w: exceeded %d hops for %s", ErrRouteFailed, maxHops, key.Short())
	}
}

// Stabilize probes leaf-set members, purges dead ones, and repairs the leaf
// set from surviving members' leaf sets ("maintaining its integrity
// invariants as nodes fail and recover", Section 2.2). It converges in a
// bounded number of passes and returns the simulated cost.
func (n *Node) Stabilize() simnet.Cost {
	var total simnet.Cost
	dead := make(map[id.ID]bool)
	self := n.Info()
	for pass := 0; pass < 6; pass++ {
		changed := false
		for _, p := range n.Leaf() {
			if dead[p.ID] {
				n.removePeer(p)
				changed = true
				continue
			}
			// Notify doubles as the liveness probe and re-announces us, so
			// a node that joined through a stale neighborhood is
			// eventually pulled into its true neighbors' leaf sets.
			cost, err := n.rpcNotify(p.Addr, self)
			total = simnet.Seq(total, cost)
			if err != nil {
				dead[p.ID] = true
				n.removePeer(p)
				changed = true
			}
		}
		// Pull survivors' leaf sets to fill holes, skipping nodes we just
		// observed dead (their entries may still name the dead).
		for _, p := range n.Leaf() {
			leafs, cost, err := n.rpcGetLeafSet(p.Addr)
			total = simnet.Seq(total, cost)
			if err != nil {
				dead[p.ID] = true
				n.removePeer(p)
				changed = true
				continue
			}
			for _, q := range leafs {
				if dead[q.ID] || q.ID == self.ID {
					continue
				}
				if n.addPeer(q) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return total
}

// Leave announces departure to all known nodes and marks the node dead.
func (n *Node) Leave() simnet.Cost {
	self := n.Info()
	var total simnet.Cost
	for _, p := range n.Known() {
		cost, _ := n.rpcRemoveNode(p.Addr, self.ID)
		total = simnet.Seq(total, cost)
	}
	n.mu.Lock()
	n.alive = false
	n.mu.Unlock()
	return total
}

// --- RPC client stubs ---

func (n *Node) call(to simnet.Addr, proc uint32, build func(*wire.Encoder)) (*wire.Decoder, simnet.Cost, error) {
	return n.callCtx(obs.TraceContext{}, to, proc, build)
}

// callCtx is call with trace-context propagation: a valid context rides the
// RPC envelope when the transport supports it, so the peer's transport layer
// records a server span for the hop.
func (n *Node) callCtx(tc obs.TraceContext, to simnet.Addr, proc uint32, build func(*wire.Encoder)) (*wire.Decoder, simnet.Cost, error) {
	e := wire.NewEncoder(128)
	e.PutUint32(proc)
	if build != nil {
		build(e)
	}
	var resp []byte
	var cost simnet.Cost
	var err error
	if cc, ok := n.net.(simnet.CtxCaller); ok && tc.Valid() {
		resp, cost, err = cc.CallCtx(tc, n.Info().Addr, to, Service, e.Bytes())
	} else {
		resp, cost, err = n.net.Call(n.Info().Addr, to, Service, e.Bytes())
	}
	if err != nil {
		return nil, cost, err
	}
	return wire.NewDecoder(resp), cost, nil
}

func (n *Node) rpcPing(to simnet.Addr) (simnet.Cost, error) {
	_, cost, err := n.call(to, pPing, nil)
	return cost, err
}

func (n *Node) rpcNextHop(tc obs.TraceContext, to simnet.Addr, key id.ID, excluded []id.ID) (NodeInfo, bool, simnet.Cost, error) {
	d, cost, err := n.callCtx(tc, to, pNextHop, func(e *wire.Encoder) {
		e.PutFixedOpaque(key[:])
		putIDs(e, excluded)
	})
	if err != nil {
		return NodeInfo{}, false, cost, err
	}
	isRoot := d.Bool()
	next := getNodeInfo(d)
	if d.Err() != nil {
		return NodeInfo{}, false, cost, d.Err()
	}
	return next, isRoot, cost, nil
}

func (n *Node) rpcGetState(to simnet.Addr) ([]NodeInfo, simnet.Cost, error) {
	d, cost, err := n.call(to, pGetState, nil)
	if err != nil {
		return nil, cost, err
	}
	return getNodeInfos(d), cost, d.Err()
}

func (n *Node) rpcGetLeafSet(to simnet.Addr) ([]NodeInfo, simnet.Cost, error) {
	d, cost, err := n.call(to, pGetLeafSet, nil)
	if err != nil {
		return nil, cost, err
	}
	return getNodeInfos(d), cost, d.Err()
}

func (n *Node) rpcNotify(to simnet.Addr, who NodeInfo) (simnet.Cost, error) {
	_, cost, err := n.call(to, pNotify, func(e *wire.Encoder) { putNodeInfo(e, who) })
	return cost, err
}

func (n *Node) rpcRemoveNode(to simnet.Addr, dead id.ID) (simnet.Cost, error) {
	_, cost, err := n.call(to, pRemoveNode, func(e *wire.Encoder) { e.PutFixedOpaque(dead[:]) })
	return cost, err
}

// --- RPC server handler ---

func (n *Node) handle(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	d := wire.NewDecoder(req)
	proc := d.Uint32()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	e := wire.NewEncoder(128)
	switch proc {
	case pPing:
		e.PutUint32(0)

	case pNextHop:
		var key id.ID
		d.FixedOpaque(key[:])
		excluded := getIDs(d)
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		n.mu.RLock()
		next, isRoot := n.st.nextHop(key, excluded)
		n.mu.RUnlock()
		e.PutBool(isRoot)
		putNodeInfo(e, next)

	case pGetState:
		n.mu.RLock()
		all := append(n.st.allKnown(), n.st.self)
		n.mu.RUnlock()
		putNodeInfos(e, all)

	case pGetLeafSet:
		n.mu.RLock()
		leafs := append(n.st.leafMembers(), n.st.self)
		n.mu.RUnlock()
		putNodeInfos(e, leafs)

	case pNotify:
		who := getNodeInfo(d)
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		n.addPeer(who)
		e.PutUint32(0)

	case pRemoveNode:
		var dead id.ID
		d.FixedOpaque(dead[:])
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		n.mu.RLock()
		var info NodeInfo
		for _, p := range n.st.allKnown() {
			if p.ID == dead {
				info = p
				break
			}
		}
		n.mu.RUnlock()
		if !info.IsZero() {
			n.removePeer(info)
		}
		e.PutUint32(0)

	default:
		return nil, 0, fmt.Errorf("pastry: unknown proc %d", proc)
	}
	// Overlay control messages are tiny; processing cost is dominated by
	// the link model, so report zero local cost.
	return append([]byte(nil), e.Bytes()...), 0, nil
}
