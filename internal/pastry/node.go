package pastry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/id"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// ErrRouteFailed is returned when routing cannot converge (all candidate
// hops dead and no better node known).
var ErrRouteFailed = errors.New("pastry: route failed")

// LeafSetChange describes a leaf-set membership delta delivered to the
// application ("The p2p component ... informs Kosha on a node N when nodes
// in N's leaf set are affected", Section 4.3).
type LeafSetChange struct {
	Joined []NodeInfo
	Left   []NodeInfo
}

// RouteResult reports the outcome of a key lookup.
type RouteResult struct {
	Node NodeInfo    // the root: live node numerically closest to the key
	Hops int         // overlay RPCs taken
	Cost simnet.Cost // simulated latency of those RPCs
	// Path lists the nodes that answered a next-hop query, in routing
	// order, ending with the root. Iterative routing makes this available
	// client-side for free; the observability layer turns it into
	// hop-by-hop trace records with prefix-match depths.
	Path []NodeInfo
}

// Node is one Pastry overlay participant.
type Node struct {
	net simnet.Transport

	mu    sync.RWMutex
	st    *state
	alive bool

	onChange func(LeafSetChange)

	// Capacity gossip: loadFn reports this node's own occupancy; loads
	// caches the most recent Load heard from each peer via pNotify
	// piggybacks (request and reply), keyed by address.
	loadFn func() Load
	loads  map[simnet.Addr]Load
}

// NewNode creates a node with the given identifier and network address. The
// caller must Attach it and then Bootstrap it into an overlay.
func NewNode(nodeID id.ID, addr simnet.Addr, net simnet.Transport, leafSize int) *Node {
	return &Node{
		net: net,
		st:  newState(NodeInfo{ID: nodeID, Addr: addr}, leafSize),
	}
}

// Info returns this node's identity.
func (n *Node) Info() NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.self
}

// SetLoadProvider registers the callback that reports this node's storage
// occupancy; it is piggybacked on every leaf-set heartbeat this node sends
// or answers. A nil provider advertises a zero (unlimited) load.
func (n *Node) SetLoadProvider(fn func() Load) {
	n.mu.Lock()
	n.loadFn = fn
	n.mu.Unlock()
}

// PeerLoads returns a copy of the freshest Load heard from each peer.
// Entries persist until overwritten; consumers filter by live membership.
func (n *Node) PeerLoads() map[simnet.Addr]Load {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[simnet.Addr]Load, len(n.loads))
	for a, l := range n.loads {
		out[a] = l
	}
	return out
}

func (n *Node) localLoad() Load {
	n.mu.RLock()
	fn := n.loadFn
	n.mu.RUnlock()
	if fn == nil {
		return Load{}
	}
	return fn()
}

func (n *Node) recordLoad(addr simnet.Addr, l Load) {
	n.mu.Lock()
	if n.loads == nil {
		n.loads = make(map[simnet.Addr]Load)
	}
	n.loads[addr] = l
	n.mu.Unlock()
}

// OnLeafSetChange registers the callback invoked when leaf-set membership
// changes. The callback runs without the node lock held; it may call back
// into the node and the network.
func (n *Node) OnLeafSetChange(fn func(LeafSetChange)) {
	n.mu.Lock()
	n.onChange = fn
	n.mu.Unlock()
}

// Attach registers the node's overlay RPC handler.
func (n *Node) Attach() {
	n.net.Register(n.Info().Addr, Service, n.handle)
}

// Leaf returns the current leaf set (excluding self).
func (n *Node) Leaf() []NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.leafMembers()
}

// Known returns every node in the routing state (excluding self).
func (n *Node) Known() []NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.allKnown()
}

// EnumerateRing walks the live ring clockwise from this node — one leaf-set
// query per l/2 positions — and returns every member discovered, self
// included, sorted by ID. Operations that need the *whole* membership (the
// virtual-root listing is a union over all store roots, Section 3) cannot
// rely on Known(): a node's own routing state only names O(log N) peers, so
// at large N the union would silently drop directories hosted on strangers.
// Dead leaf-set entries not yet repaired are skipped; the walk advances
// through the farthest responsive successor each step.
func (n *Node) EnumerateRing() ([]NodeInfo, simnet.Cost) {
	self := n.Info()
	members := map[id.ID]NodeInfo{self.ID: self}
	var total simnet.Cost

	// curDist is CWDist(self, cur): strictly increasing as the walk
	// advances, which both orders candidates and detects the wrap. The walk
	// only ever steps to candidates in the current node's successor half, a
	// contiguous run of ring positions, so jumping to the farthest one skips
	// nobody. That is also why the initial frontier must be self's succs
	// only: self's preds sit *behind* self — the largest clockwise distances
	// — and stepping to one would leap over the whole middle of the ring.
	var curDist id.ID
	succs, _ := n.LeafHalves()
	frontier := aheadOf(self, curDist, succs, members)
	for len(frontier) > 0 {
		var peers []NodeInfo
		stepped := false
		for _, p := range frontier {
			leafs, cost, err := n.rpcGetLeafSet(p.Addr)
			total = simnet.Seq(total, cost)
			if err != nil {
				continue // stale leaf entry; try the next-farthest
			}
			curDist = self.ID.CWDist(p.ID)
			peers = leafs
			stepped = true
			break
		}
		if !stepped {
			break
		}
		frontier = aheadOf(self, curDist, peers, members)
	}

	out := make([]NodeInfo, 0, len(members))
	for _, m := range members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out, total
}

// aheadOf records every peer strictly clockwise-ahead of the walk position
// into members and returns them ordered farthest-first (ties by ID) as the
// next frontier.
func aheadOf(self NodeInfo, curDist id.ID, peers []NodeInfo, members map[id.ID]NodeInfo) []NodeInfo {
	var ahead []NodeInfo
	for _, p := range peers {
		if p.ID == self.ID {
			continue
		}
		d := self.ID.CWDist(p.ID)
		if !curDist.Less(d) {
			continue // at or behind the walk position, or wrapped past self
		}
		members[p.ID] = p
		ahead = append(ahead, p)
	}
	sort.Slice(ahead, func(i, j int) bool {
		di, dj := self.ID.CWDist(ahead[i].ID), self.ID.CWDist(ahead[j].ID)
		if di != dj {
			return dj.Less(di)
		}
		return ahead[i].ID.Less(ahead[j].ID)
	})
	return ahead
}

// LeafHalves returns copies of the leaf-set halves: successors sorted by
// increasing clockwise distance from self, predecessors by increasing
// counter-clockwise distance. The invariant oracle compares these against
// the ground-truth ring neighborhoods.
func (n *Node) LeafHalves() (succs, preds []NodeInfo) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]NodeInfo(nil), n.st.succs...), append([]NodeInfo(nil), n.st.preds...)
}

// LeafSize returns the configured leaf-set size l.
func (n *Node) LeafSize() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.leafSize
}

// Alive reports whether the node has bootstrapped and not left.
func (n *Node) Alive() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.alive
}

// TableEntries returns every non-empty routing-table entry with its row and
// column, for structural invariant checks and table-maintenance sweeps.
func (n *Node) TableEntries() []TableEntry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []TableEntry
	for r := range n.st.table {
		for c := range n.st.table[r] {
			if e := n.st.table[r][c]; !e.IsZero() {
				out = append(out, TableEntry{Row: r, Col: c, Node: e})
			}
		}
	}
	return out
}

// NextHopLocal computes the routing decision for key from this node's
// current state without any network traffic — the primitive the invariant
// oracle uses to walk routes hop by hop and prove loop freedom and hop
// bounds against the live membership ground truth.
func (n *Node) NextHopLocal(key id.ID, excluded []id.ID) (next NodeInfo, isRoot bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.nextHop(key, excluded)
}

// ReplicaCandidates returns up to k ring-adjacent leaf-set nodes,
// alternating successor/predecessor (Section 4.2).
func (n *Node) ReplicaCandidates(k int) []NodeInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.replicaCandidates(k)
}

// LeafStats reports leaf-set occupancy for the overlay-health gauges: the
// current deduplicated member count and the ideal (configured) size l.
func (n *Node) LeafStats() (size, ideal int) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.st.leafMembers()), n.st.leafSize
}

// TableStats reports routing-table occupancy: filled entries and how many
// rows hold at least one entry. Fill relative to rows×cols is the
// "routing-table fill" health gauge; absolute numbers are exported so the
// consumer picks its own denominator.
func (n *Node) TableStats() (entries, rows int) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for r := range n.st.table {
		rowHas := false
		for c := range n.st.table[r] {
			if !n.st.table[r][c].IsZero() {
				entries++
				rowHas = true
			}
		}
		if rowHas {
			rows++
		}
	}
	return entries, rows
}

// IsRootFor reports whether this node believes it is numerically closest to
// key among the nodes it knows.
func (n *Node) IsRootFor(key id.ID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, isRoot := n.st.nextHop(key, nil)
	return isRoot
}

// addPeer merges a peer and fires the change callback when the leaf set
// shifts. It reports whether the leaf set changed.
func (n *Node) addPeer(p NodeInfo) bool {
	n.mu.Lock()
	changed := n.st.add(p)
	cb := n.onChange
	n.mu.Unlock()
	if changed && cb != nil {
		cb(LeafSetChange{Joined: []NodeInfo{p}})
	}
	return changed
}

func (n *Node) addPeers(ps []NodeInfo) {
	for _, p := range ps {
		n.addPeer(p)
	}
}

// removePeer purges a dead peer and fires the change callback when the leaf
// set shifts.
func (n *Node) removePeer(dead NodeInfo) {
	n.mu.Lock()
	changed := n.st.remove(dead.ID)
	cb := n.onChange
	n.mu.Unlock()
	if changed && cb != nil {
		cb(LeafSetChange{Left: []NodeInfo{dead}})
	}
}

// Bootstrap joins the overlay via a seed node's address; an empty seed
// starts a new overlay. Joining routes toward the new node's own id,
// merging routing state from every hop, then announces the newcomer to all
// nodes it learned about (Section 2.2's self-organizing join).
func (n *Node) Bootstrap(seed simnet.Addr) (simnet.Cost, error) {
	n.mu.Lock()
	n.alive = true
	self := n.st.self
	n.mu.Unlock()

	if seed == "" || seed == self.Addr {
		return 0, nil
	}

	var total simnet.Cost

	// Learn the seed's identity and state.
	state, cost, err := n.rpcGetState(seed)
	total = simnet.Seq(total, cost)
	if err != nil {
		return total, fmt.Errorf("pastry: bootstrap via %s: %w", seed, err)
	}
	n.addPeers(state)

	// Route toward our own id to find our ring neighborhood; merge state
	// from each hop on the way.
	res, err := n.routeCollect(obs.TraceContext{}, self.ID, true)
	total = simnet.Seq(total, res.Cost)
	if err != nil {
		return total, fmt.Errorf("pastry: join route: %w", err)
	}

	// Adopt the root's leaf set: those nodes bracket our position.
	if res.Node.ID != self.ID {
		leafs, cost, err := n.rpcGetLeafSet(res.Node.Addr)
		total = simnet.Seq(total, cost)
		if err == nil {
			n.addPeers(leafs)
			n.addPeer(res.Node)
		}
	}

	// Announce ourselves to everyone we know so their leaf sets include us
	// and their Kosha layers can migrate content (Section 4.3.1).
	for _, p := range n.Known() {
		cost, err := n.rpcNotify(p.Addr, self)
		total = simnet.Seq(total, cost)
		if err != nil {
			n.removePeer(p)
		}
	}
	return total, nil
}

// EnsureRootFor actively verifies whether this node is the root for key:
// if a better candidate exists it is pinged, and dead candidates are purged
// until either a live better node is found (false) or none remains (true).
// Kosha's primary-ownership checks use this so that a node bordering a
// fresh failure takes over its keys immediately (Section 4.4).
func (n *Node) EnsureRootFor(key id.ID) (bool, simnet.Cost) {
	var total simnet.Cost
	for i := 0; i < 16; i++ {
		n.mu.RLock()
		next, isRoot := n.st.nextHop(key, nil)
		n.mu.RUnlock()
		if isRoot {
			return true, total
		}
		c, err := n.rpcPing(next.Addr)
		total = simnet.Seq(total, c)
		if err == nil {
			return false, total
		}
		n.removePeer(next)
	}
	return false, total
}

// MarkDead purges a node (identified by address) from the routing state,
// used by the application layer when an RPC to that node failed outside the
// overlay (e.g. an NFS forward timed out, Section 4.4).
func (n *Node) MarkDead(addr simnet.Addr) {
	for _, p := range n.Known() {
		if p.Addr == addr {
			n.removePeer(p)
			return
		}
	}
}

// Route finds the live node numerically closest to key.
func (n *Node) Route(key id.ID) (RouteResult, error) {
	return n.routeCollect(obs.TraceContext{}, key, false)
}

// RouteCtx is Route under a distributed-tracing context: every next-hop RPC
// carries the caller's trace id, so each hop's server records a span fragment
// and the assembled cross-node trace shows the full routing path.
func (n *Node) RouteCtx(tc obs.TraceContext, key id.ID) (RouteResult, error) {
	return n.routeCollect(tc, key, false)
}

// routeCollect performs iterative routing. When collect is true, the full
// state of every hop is merged into our own (used during join).
func (n *Node) routeCollect(tc obs.TraceContext, key id.ID, collect bool) (RouteResult, error) {
	self := n.Info()
	var res RouteResult
	var excluded []id.ID

	const maxHops = 64
restart:
	for attempts := 0; ; attempts++ {
		if attempts > maxHops {
			return res, fmt.Errorf("%w: no live candidates for %s", ErrRouteFailed, key.Short())
		}
		n.mu.RLock()
		next, isRoot := n.st.nextHop(key, excluded)
		n.mu.RUnlock()
		if isRoot {
			res.Node = self
			res.Path = append(res.Path, self)
			return res, nil
		}

		cur := next
		for hop := 0; hop < maxHops; hop++ {
			if collect {
				if st, cost, err := n.rpcGetState(cur.Addr); err == nil {
					res.Cost = simnet.Seq(res.Cost, cost)
					n.addPeers(st)
				}
			}
			nh, isRoot, cost, err := n.rpcNextHop(tc, cur.Addr, key, excluded)
			res.Cost = simnet.Seq(res.Cost, cost)
			res.Hops++
			if err != nil {
				// cur is dead: exclude it, purge it, restart from self.
				excluded = append(excluded, cur.ID)
				n.removePeer(cur)
				continue restart
			}
			n.addPeer(cur)
			res.Path = append(res.Path, cur)
			if isRoot {
				res.Node = cur
				return res, nil
			}
			cur = nh
		}
		return res, fmt.Errorf("%w: exceeded %d hops for %s", ErrRouteFailed, maxHops, key.Short())
	}
}

// Stabilize probes leaf-set members, purges dead ones, and repairs the leaf
// set from surviving members' leaf sets ("maintaining its integrity
// invariants as nodes fail and recover", Section 2.2). It converges in a
// bounded number of passes and returns the simulated cost.
func (n *Node) Stabilize() simnet.Cost {
	var total simnet.Cost
	dead := make(map[id.ID]bool)
	self := n.Info()
	for pass := 0; pass < 6; pass++ {
		changed := false
		for _, p := range n.Leaf() {
			if dead[p.ID] {
				n.removePeer(p)
				changed = true
				continue
			}
			// Notify doubles as the liveness probe and re-announces us, so
			// a node that joined through a stale neighborhood is
			// eventually pulled into its true neighbors' leaf sets.
			cost, err := n.rpcNotify(p.Addr, self)
			total = simnet.Seq(total, cost)
			if err != nil {
				dead[p.ID] = true
				n.removePeer(p)
				changed = true
			}
		}
		// Pull survivors' leaf sets to fill holes, skipping nodes we just
		// observed dead (their entries may still name the dead).
		for _, p := range n.Leaf() {
			leafs, cost, err := n.rpcGetLeafSet(p.Addr)
			total = simnet.Seq(total, cost)
			if err != nil {
				dead[p.ID] = true
				n.removePeer(p)
				changed = true
				continue
			}
			for _, q := range leafs {
				if dead[q.ID] || q.ID == self.ID {
					continue
				}
				if n.addPeer(q) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return total
}

// RepairTable is the background routing-table maintenance pass that
// Stabilize's leaf-set repair does not cover. Leaf repair keeps the ring
// correct, but routing-table entries are only ever replaced when a route
// through them fails — under sustained churn a table silently rots into
// dead entries and routing degrades to leaf-set crawling (the IPFS
// measurement study's "stale routing entries" failure mode). This pass
// (1) probes every table entry and purges the dead, and (2) refills each
// row from a live same-row peer: a peer in our row r shares our first r
// digits, so every entry of its row r is a valid candidate for ours.
func (n *Node) RepairTable() simnet.Cost {
	var total simnet.Cost
	self := n.Info()
	dead := map[id.ID]bool{}
	probed := map[id.ID]bool{}
	for _, te := range n.TableEntries() {
		if probed[te.Node.ID] {
			continue
		}
		probed[te.Node.ID] = true
		cost, err := n.rpcPing(te.Node.Addr)
		total = simnet.Seq(total, cost)
		if err != nil {
			dead[te.Node.ID] = true
			n.removePeer(te.Node)
		}
	}
	// Refill pass: one row fetch per occupied row, from the first surviving
	// entry of that row (the snapshot follows the purge, so the peers asked
	// were just probed alive). Peers that have not run their own repair yet
	// may still advertise dead nodes, so a candidate this node has not
	// vetted is pinged before adoption — the pass never re-plants a dead
	// entry it just removed, which is what lets concurrent repairs converge.
	n.mu.RLock()
	rows := make([]NodeInfo, id.Digits)
	for r := 0; r < id.Digits; r++ {
		if es := n.st.row(r); len(es) > 0 {
			rows[r] = es[0]
		}
	}
	n.mu.RUnlock()
	known := map[id.ID]bool{}
	for _, p := range n.Known() {
		known[p.ID] = true
	}
	for r, peer := range rows {
		if peer.IsZero() || dead[peer.ID] {
			continue
		}
		entries, cost, err := n.rpcGetRow(peer.Addr, r)
		total = simnet.Seq(total, cost)
		if err != nil {
			dead[peer.ID] = true
			n.removePeer(peer)
			continue
		}
		for _, cand := range entries {
			if cand.ID == self.ID || dead[cand.ID] {
				continue
			}
			if !known[cand.ID] {
				cost, err := n.rpcPing(cand.Addr)
				total = simnet.Seq(total, cost)
				if err != nil {
					dead[cand.ID] = true
					continue
				}
				known[cand.ID] = true
			}
			n.addPeer(cand)
		}
	}
	return total
}

// Leave announces departure to all known nodes and marks the node dead.
func (n *Node) Leave() simnet.Cost {
	self := n.Info()
	var total simnet.Cost
	for _, p := range n.Known() {
		cost, _ := n.rpcRemoveNode(p.Addr, self.ID)
		total = simnet.Seq(total, cost)
	}
	n.mu.Lock()
	n.alive = false
	n.mu.Unlock()
	return total
}

// --- RPC client stubs ---

func (n *Node) call(to simnet.Addr, proc uint32, build func(*wire.Encoder)) (*wire.Decoder, simnet.Cost, error) {
	return n.callCtx(obs.TraceContext{}, to, proc, build)
}

// callCtx is call with trace-context propagation: a valid context rides the
// RPC envelope when the transport supports it, so the peer's transport layer
// records a server span for the hop.
func (n *Node) callCtx(tc obs.TraceContext, to simnet.Addr, proc uint32, build func(*wire.Encoder)) (*wire.Decoder, simnet.Cost, error) {
	e := wire.NewEncoder(128)
	e.PutUint32(proc)
	if build != nil {
		build(e)
	}
	var resp []byte
	var cost simnet.Cost
	var err error
	if cc, ok := n.net.(simnet.CtxCaller); ok && tc.Valid() {
		resp, cost, err = cc.CallCtx(tc, n.Info().Addr, to, Service, e.Bytes())
	} else {
		resp, cost, err = n.net.Call(n.Info().Addr, to, Service, e.Bytes())
	}
	if err != nil {
		return nil, cost, err
	}
	return wire.NewDecoder(resp), cost, nil
}

func (n *Node) rpcPing(to simnet.Addr) (simnet.Cost, error) {
	_, cost, err := n.call(to, pPing, nil)
	return cost, err
}

func (n *Node) rpcNextHop(tc obs.TraceContext, to simnet.Addr, key id.ID, excluded []id.ID) (NodeInfo, bool, simnet.Cost, error) {
	d, cost, err := n.callCtx(tc, to, pNextHop, func(e *wire.Encoder) {
		e.PutFixedOpaque(key[:])
		putIDs(e, excluded)
	})
	if err != nil {
		return NodeInfo{}, false, cost, err
	}
	isRoot := d.Bool()
	next := getNodeInfo(d)
	if d.Err() != nil {
		return NodeInfo{}, false, cost, d.Err()
	}
	return next, isRoot, cost, nil
}

func (n *Node) rpcGetState(to simnet.Addr) ([]NodeInfo, simnet.Cost, error) {
	d, cost, err := n.call(to, pGetState, nil)
	if err != nil {
		return nil, cost, err
	}
	return getNodeInfos(d), cost, d.Err()
}

func (n *Node) rpcGetLeafSet(to simnet.Addr) ([]NodeInfo, simnet.Cost, error) {
	d, cost, err := n.call(to, pGetLeafSet, nil)
	if err != nil {
		return nil, cost, err
	}
	return getNodeInfos(d), cost, d.Err()
}

func (n *Node) rpcNotify(to simnet.Addr, who NodeInfo) (simnet.Cost, error) {
	d, cost, err := n.call(to, pNotify, func(e *wire.Encoder) {
		putNodeInfo(e, who)
		putLoad(e, n.localLoad())
	})
	if err != nil {
		return cost, err
	}
	d.Uint32()
	ld := getLoad(d)
	if d.Err() == nil {
		n.recordLoad(to, ld)
	}
	return cost, nil
}

func (n *Node) rpcGetRow(to simnet.Addr, row int) ([]NodeInfo, simnet.Cost, error) {
	d, cost, err := n.call(to, pGetRow, func(e *wire.Encoder) { e.PutUint32(uint32(row)) })
	if err != nil {
		return nil, cost, err
	}
	return getNodeInfos(d), cost, d.Err()
}

func (n *Node) rpcRemoveNode(to simnet.Addr, dead id.ID) (simnet.Cost, error) {
	_, cost, err := n.call(to, pRemoveNode, func(e *wire.Encoder) { e.PutFixedOpaque(dead[:]) })
	return cost, err
}

// --- RPC server handler ---

func (n *Node) handle(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	d := wire.NewDecoder(req)
	proc := d.Uint32()
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	e := wire.NewEncoder(128)
	switch proc {
	case pPing:
		e.PutUint32(0)

	case pNextHop:
		var key id.ID
		d.FixedOpaque(key[:])
		excluded := getIDs(d)
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		n.mu.RLock()
		next, isRoot := n.st.nextHop(key, excluded)
		n.mu.RUnlock()
		e.PutBool(isRoot)
		putNodeInfo(e, next)

	case pGetState:
		n.mu.RLock()
		all := append(n.st.allKnown(), n.st.self)
		n.mu.RUnlock()
		putNodeInfos(e, all)

	case pGetLeafSet:
		n.mu.RLock()
		leafs := append(n.st.leafMembers(), n.st.self)
		n.mu.RUnlock()
		putNodeInfos(e, leafs)

	case pGetRow:
		row := int(d.Uint32())
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		if row < 0 || row >= id.Digits {
			return nil, 0, fmt.Errorf("pastry: get-row: row %d out of range", row)
		}
		n.mu.RLock()
		// The responder itself shares the requester's row-r prefix (the
		// requester picked it from its own row r), so include it: a row with
		// a single mutual entry still self-heals.
		entries := append(n.st.row(row), n.st.self)
		n.mu.RUnlock()
		putNodeInfos(e, entries)

	case pNotify:
		who := getNodeInfo(d)
		ld := getLoad(d)
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		n.addPeer(who)
		n.recordLoad(who.Addr, ld)
		e.PutUint32(0)
		putLoad(e, n.localLoad())

	case pRemoveNode:
		var dead id.ID
		d.FixedOpaque(dead[:])
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		n.mu.RLock()
		var info NodeInfo
		for _, p := range n.st.allKnown() {
			if p.ID == dead {
				info = p
				break
			}
		}
		n.mu.RUnlock()
		if !info.IsZero() {
			n.removePeer(info)
		}
		e.PutUint32(0)

	default:
		return nil, 0, fmt.Errorf("pastry: unknown proc %d", proc)
	}
	// Overlay control messages are tiny; processing cost is dominated by
	// the link model, so report zero local cost.
	return append([]byte(nil), e.Bytes()...), 0, nil
}
