package pastry

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/id"
	"repro/internal/simnet"
)

// buildOverlay creates n live nodes with seeded random ids, joining each
// through the first, and stabilizes them.
func buildOverlay(t testing.TB, n int, seed uint64, leafSize int) (*simnet.Network, []*Node) {
	t.Helper()
	net := simnet.New(simnet.LAN100)
	state := seed
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		addr := simnet.Addr(fmt.Sprintf("node%d", i))
		nodes[i] = NewNode(id.Rand128(&state), addr, net, leafSize)
		nodes[i].Attach()
		var boot simnet.Addr
		if i > 0 {
			boot = nodes[0].Info().Addr
		}
		if _, err := nodes[i].Bootstrap(boot); err != nil {
			t.Fatalf("bootstrap node %d: %v", i, err)
		}
	}
	for round := 0; round < 3; round++ {
		for _, nd := range nodes {
			nd.Stabilize()
		}
	}
	return net, nodes
}

// globalRoot computes ground truth: the live node closest to key.
func globalRoot(nodes []*Node, alive map[int]bool, key id.ID) *Node {
	var best *Node
	for i, nd := range nodes {
		if alive != nil && !alive[i] {
			continue
		}
		if best == nil {
			best = nd
			continue
		}
		dn, db := key.Distance(nd.Info().ID), key.Distance(best.Info().ID)
		if dn.Less(db) || (dn == db && nd.Info().ID.Less(best.Info().ID)) {
			best = nd
		}
	}
	return best
}

func TestSingleNodeOverlay(t *testing.T) {
	_, nodes := buildOverlay(t, 1, 1, 0)
	res, err := nodes[0].Route(id.HashKey("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node.ID != nodes[0].Info().ID || res.Hops != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestTwoNodeOverlay(t *testing.T) {
	_, nodes := buildOverlay(t, 2, 2, 0)
	for i, nd := range nodes {
		if len(nd.Leaf()) != 1 {
			t.Fatalf("node %d leaf = %v", i, nd.Leaf())
		}
	}
	for trial := 0; trial < 20; trial++ {
		key := id.HashKey(fmt.Sprintf("k%d", trial))
		want := globalRoot(nodes, nil, key).Info().ID
		for _, nd := range nodes {
			res, err := nd.Route(key)
			if err != nil {
				t.Fatal(err)
			}
			if res.Node.ID != want {
				t.Fatalf("route from %s: got %s want %s", nd.Info().ID.Short(), res.Node.ID.Short(), want.Short())
			}
		}
	}
}

func TestRoutingCorrectnessSmallOverlays(t *testing.T) {
	for _, n := range []int{3, 5, 8, 16} {
		_, nodes := buildOverlay(t, n, uint64(n)*7, 0)
		for trial := 0; trial < 30; trial++ {
			key := id.HashKey(fmt.Sprintf("dir-%d-%d", n, trial))
			want := globalRoot(nodes, nil, key).Info().ID
			src := nodes[trial%n]
			res, err := src.Route(key)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if res.Node.ID != want {
				t.Fatalf("n=%d trial=%d: got %s want %s", n, trial, res.Node.ID.Short(), want.Short())
			}
		}
	}
}

func TestRouteHopsSmallOverlay(t *testing.T) {
	// In an overlay of 8 << leafSize nodes "the DHT lookup is always one
	// hop" (Section 6.1.1): self either is the root (0 RPC) or knows it
	// from its full leaf set (1 RPC to confirm).
	_, nodes := buildOverlay(t, 8, 99, 16)
	for trial := 0; trial < 50; trial++ {
		key := id.HashKey(fmt.Sprintf("k%d", trial))
		res, err := nodes[trial%8].Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > 1 {
			t.Fatalf("trial %d: %d hops in an 8-node overlay", trial, res.Hops)
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	// 64 nodes with a small leaf set: hops bounded by a few prefix steps.
	_, nodes := buildOverlay(t, 64, 1234, 8)
	maxHops := 0
	for trial := 0; trial < 100; trial++ {
		key := id.HashKey(fmt.Sprintf("k%d", trial))
		src := nodes[trial%len(nodes)]
		res, err := src.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		want := globalRoot(nodes, nil, key).Info().ID
		if res.Node.ID != want {
			t.Fatalf("trial %d: wrong root", trial)
		}
		if res.Hops > maxHops {
			maxHops = res.Hops
		}
	}
	// log_16(64) = 1.5; allow slack for sparse tables but reject linear.
	if maxHops > 6 {
		t.Fatalf("max hops = %d, want O(log n)", maxHops)
	}
}

func TestLeafSetSizeBounded(t *testing.T) {
	_, nodes := buildOverlay(t, 40, 5, 8)
	for i, nd := range nodes {
		if got := len(nd.Leaf()); got > 8 {
			t.Fatalf("node %d leaf size = %d > 8", i, got)
		}
	}
}

func TestLeafSetIsNumericallyClosest(t *testing.T) {
	_, nodes := buildOverlay(t, 24, 77, 8)
	// For each node, its leaf set must contain its true 4 successors and 4
	// predecessors on the ring.
	ids := make([]id.ID, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.Info().ID
	}
	ring := NewRing(ids)
	pos := make(map[id.ID]int)
	for i, v := range ring.IDs() {
		pos[v] = i
	}
	for _, nd := range nodes {
		p := pos[nd.Info().ID]
		want := make(map[id.ID]bool)
		n := ring.Len()
		for s := 1; s <= 4; s++ {
			want[ring.IDs()[(p+s)%n]] = true
			want[ring.IDs()[(p-s+n)%n]] = true
		}
		got := make(map[id.ID]bool)
		for _, l := range nd.Leaf() {
			got[l.ID] = true
		}
		for w := range want {
			if !got[w] {
				t.Fatalf("node %s leaf set missing ring neighbor %s", nd.Info().ID.Short(), w.Short())
			}
		}
	}
}

func TestFailureRerouting(t *testing.T) {
	net, nodes := buildOverlay(t, 8, 31, 16)
	key := id.HashKey("victimdir")
	root := globalRoot(nodes, nil, key)

	// Kill the root; routes must now land on the next-closest live node.
	net.SetDown(root.Info().Addr, true)
	alive := make(map[int]bool)
	var src *Node
	for i, nd := range nodes {
		up := nd != root
		alive[i] = up
		if up && src == nil {
			src = nd
		}
	}
	want := globalRoot(nodes, alive, key).Info().ID
	res, err := src.Route(key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node.ID != want {
		t.Fatalf("after failure got %s want %s", res.Node.ID.Short(), want.Short())
	}
}

func TestStabilizeAfterFailuresFiresCallbacks(t *testing.T) {
	net, nodes := buildOverlay(t, 10, 47, 8)
	var left []NodeInfo
	nodes[0].OnLeafSetChange(func(c LeafSetChange) {
		left = append(left, c.Left...)
	})
	// Kill two of node0's leaf members.
	leafs := nodes[0].Leaf()
	if len(leafs) < 2 {
		t.Fatalf("leaf too small: %d", len(leafs))
	}
	dead := map[id.ID]bool{leafs[0].ID: true, leafs[1].ID: true}
	net.SetDown(leafs[0].Addr, true)
	net.SetDown(leafs[1].Addr, true)

	nodes[0].Stabilize()

	if len(left) < 2 {
		t.Fatalf("expected >=2 departure callbacks, got %v", left)
	}
	for _, l := range nodes[0].Leaf() {
		if dead[l.ID] {
			t.Fatalf("dead node %s still in leaf set", l.ID.Short())
		}
	}
}

func TestJoinFiresCallbacksOnNeighbors(t *testing.T) {
	net, nodes := buildOverlay(t, 6, 21, 8)
	joinedSeen := 0
	for _, nd := range nodes {
		nd.OnLeafSetChange(func(c LeafSetChange) {
			joinedSeen += len(c.Joined)
		})
	}
	state := uint64(5555)
	newNode := NewNode(id.Rand128(&state), "late", net, 8)
	newNode.Attach()
	if _, err := newNode.Bootstrap(nodes[0].Info().Addr); err != nil {
		t.Fatal(err)
	}
	if joinedSeen == 0 {
		t.Fatal("no join callbacks fired on existing nodes")
	}
	// The newcomer must be routable.
	res, err := nodes[3].Route(newNode.Info().ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node.ID != newNode.Info().ID {
		t.Fatalf("route to newcomer id landed on %s", res.Node.ID.Short())
	}
}

func TestLeaveAnnounces(t *testing.T) {
	_, nodes := buildOverlay(t, 6, 63, 8)
	victim := nodes[2]
	vid := victim.Info().ID
	victim.Leave()
	for i, nd := range nodes {
		if nd == victim {
			continue
		}
		for _, l := range nd.Leaf() {
			if l.ID == vid {
				t.Fatalf("node %d still lists departed node in leaf set", i)
			}
		}
	}
}

func TestReplicaCandidatesAlternate(t *testing.T) {
	_, nodes := buildOverlay(t, 12, 17, 8)
	ids := make([]id.ID, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.Info().ID
	}
	ring := NewRing(ids)
	for _, nd := range nodes {
		got := nd.ReplicaCandidates(3)
		if len(got) != 3 {
			t.Fatalf("candidates = %d", len(got))
		}
		// Must match the static ring's adjacency.
		pos := -1
		for i, v := range ring.IDs() {
			if v == nd.Info().ID {
				pos = i
			}
		}
		wantIdx := ring.Replicas(pos, 3)
		want := make(map[id.ID]bool)
		for _, wi := range wantIdx {
			want[ring.IDs()[wi]] = true
		}
		for _, g := range got {
			if !want[g.ID] {
				t.Fatalf("node %s replica %s not ring-adjacent", nd.Info().ID.Short(), g.ID.Short())
			}
		}
	}
}

func TestRouteCostPositiveForRemote(t *testing.T) {
	_, nodes := buildOverlay(t, 8, 3, 16)
	for trial := 0; trial < 20; trial++ {
		key := id.HashKey(fmt.Sprintf("c%d", trial))
		res, err := nodes[0].Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops > 0 && res.Cost <= 0 {
			t.Fatalf("remote route with zero cost: %+v", res)
		}
		if res.Hops == 0 && res.Cost != 0 {
			t.Fatalf("self route with nonzero cost: %+v", res)
		}
	}
}

// Property: for random overlay sizes and keys, iterative routing from any
// source agrees with the omniscient ring root.
func TestPropRoutingMatchesRing(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 6; iter++ {
		n := 2 + r.Intn(20)
		_, nodes := buildOverlay(t, n, uint64(iter+1)*101, 8)
		ids := make([]id.ID, n)
		for i, nd := range nodes {
			ids[i] = nd.Info().ID
		}
		ring := NewRing(ids)
		for trial := 0; trial < 15; trial++ {
			var key id.ID
			r.Read(key[:])
			want := ring.IDs()[ring.Root(key)]
			src := nodes[r.Intn(n)]
			res, err := src.Route(key)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if res.Node.ID != want {
				t.Fatalf("n=%d key=%s: got %s want %s",
					n, key.Short(), res.Node.ID.Short(), want.Short())
			}
		}
	}
}

func TestRingRootMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 50; iter++ {
		n := 1 + r.Intn(30)
		ring := RandomRing(n, uint64(iter))
		var key id.ID
		r.Read(key[:])
		root := ring.Root(key)
		bd := key.Distance(ring.IDs()[root])
		for i, v := range ring.IDs() {
			d := key.Distance(v)
			if d.Less(bd) {
				t.Fatalf("iter %d: node %d closer than root", iter, i)
			}
		}
	}
}

func TestRingReplicas(t *testing.T) {
	ring := RandomRing(10, 42)
	root := 4
	reps := ring.Replicas(root, 4)
	if len(reps) != 4 {
		t.Fatalf("reps = %v", reps)
	}
	want := map[int]bool{5: true, 3: true, 6: true, 2: true}
	for _, r := range reps {
		if !want[r] {
			t.Fatalf("unexpected replica index %d", r)
		}
	}
	// k capped at n-1 and no duplicates.
	reps = ring.Replicas(root, 99)
	if len(reps) != 9 {
		t.Fatalf("capped reps = %d", len(reps))
	}
	seen := map[int]bool{root: true}
	for _, r := range reps {
		if seen[r] {
			t.Fatalf("duplicate replica %d", r)
		}
		seen[r] = true
	}
}

func TestHoldersIncludesRoot(t *testing.T) {
	ring := RandomRing(8, 7)
	key := id.HashKey("h")
	hs := ring.Holders(key, 3)
	if len(hs) != 4 {
		t.Fatalf("holders = %v", hs)
	}
	if hs[0] != ring.Root(key) {
		t.Fatal("first holder must be the root")
	}
}

func TestRingDedupAndEmpty(t *testing.T) {
	a := id.HashKey("x")
	ring := NewRing([]id.ID{a, a, a})
	if ring.Len() != 1 {
		t.Fatalf("len = %d", ring.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Root on empty ring should panic")
		}
	}()
	NewRing(nil).Root(a)
}

func BenchmarkRoute8Nodes(b *testing.B) {
	_, nodes := buildOverlay(b, 8, 1, 16)
	keys := make([]id.ID, 64)
	for i := range keys {
		keys[i] = id.HashKey(fmt.Sprintf("bench%d", i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[i%8].Route(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingRoot(b *testing.B) {
	ring := RandomRing(10000, 3)
	key := id.HashKey("target")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.Root(key)
	}
}

// TestChurnStorm subjects a 48-node overlay to a burst of failures and
// verifies that routing from every survivor still reaches the globally
// closest live node after stabilization.
func TestChurnStorm(t *testing.T) {
	net, nodes := buildOverlay(t, 48, 4242, 8)
	r := rand.New(rand.NewSource(777))
	alive := make(map[int]bool, len(nodes))
	for i := range nodes {
		alive[i] = true
	}
	// Kill 12 random nodes.
	killed := 0
	for killed < 12 {
		i := r.Intn(len(nodes))
		if alive[i] {
			alive[i] = false
			net.SetDown(nodes[i].Info().Addr, true)
			killed++
		}
	}
	for round := 0; round < 3; round++ {
		for i, nd := range nodes {
			if alive[i] {
				nd.Stabilize()
			}
		}
	}
	for trial := 0; trial < 60; trial++ {
		key := id.HashKey(fmt.Sprintf("storm%d", trial))
		src := -1
		for src == -1 {
			i := r.Intn(len(nodes))
			if alive[i] {
				src = i
			}
		}
		res, err := nodes[src].Route(key)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := globalRoot(nodes, alive, key).Info().ID
		if res.Node.ID != want {
			t.Fatalf("trial %d: routed to %s, want %s", trial, res.Node.ID.Short(), want.Short())
		}
	}
	// Dead nodes are purged from survivors' leaf sets.
	for i, nd := range nodes {
		if !alive[i] {
			continue
		}
		for _, l := range nd.Leaf() {
			for j, other := range nodes {
				if other.Info().ID == l.ID && !alive[j] {
					t.Fatalf("node %d keeps dead node %d in leaf set", i, j)
				}
			}
		}
	}
}
