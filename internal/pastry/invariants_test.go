package pastry

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/id"
	"repro/internal/simnet"
)

// liveNodes filters nodes by an optional alive set (nil = all).
func liveNodes(nodes []*Node, alive map[int]bool) []*Node {
	var out []*Node
	for i, nd := range nodes {
		if alive == nil || alive[i] {
			out = append(out, nd)
		}
	}
	return out
}

func TestInvariantsHoldAfterSerialJoin(t *testing.T) {
	for _, n := range []int{2, 5, 16, 48} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, nodes := buildOverlay(t, n, uint64(100+n), 0)
			rep, err := CheckInvariants(nodes, InvariantOptions{
				Level:    InvariantConverged,
				Seed:     uint64(n),
				ReplicaK: 2,
			})
			if err != nil {
				t.Fatalf("converged invariants (n=%d): %v", n, err)
			}
			if rep.Routes == 0 {
				t.Fatalf("no routes sampled")
			}
		})
	}
}

// TestJoinStorm is the join-storm regression: N nodes joining concurrently
// through one bootstrap node must still converge to complete, symmetric
// leaf sets once stabilization runs — concurrent joiners discover each
// other through their announcements and the stabilizer's leaf-set pulls,
// not through any serialized admission.
func TestJoinStorm(t *testing.T) {
	const n = 48
	net := simnet.New(simnet.LAN100)
	state := uint64(4242)
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(id.Rand128(&state), simnet.Addr(fmt.Sprintf("node%d", i)), net, 0)
		nodes[i].Attach()
	}
	if _, err := nodes[0].Bootstrap(""); err != nil {
		t.Fatalf("seed bootstrap: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = nodes[i].Bootstrap(nodes[0].Info().Addr)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("storm bootstrap node %d: %v", i, err)
		}
	}
	// Structural invariants must hold immediately, before any stabilization.
	if _, err := CheckInvariants(nodes, InvariantOptions{Level: InvariantLive, Seed: 1}); err != nil {
		t.Fatalf("live invariants right after storm: %v", err)
	}
	for round := 0; round < 4; round++ {
		for _, nd := range nodes {
			nd.Stabilize()
		}
	}
	rep, err := CheckInvariants(nodes, InvariantOptions{
		Level:    InvariantConverged,
		Seed:     2,
		ReplicaK: 2,
	})
	if err != nil {
		t.Fatalf("converged invariants after storm + stabilize: %v", err)
	}
	t.Logf("storm converged: %d nodes, mean hops %.2f, max %d", rep.Nodes, rep.MeanHops, rep.MaxHops)
}

// TestRepairTablePurgesDeadEntries drives churn that leaf-set stabilization
// alone does not clean up: nodes far from a survivor's ring neighborhood
// die, leaving stale routing-table entries that only a table-maintenance
// pass removes.
func TestRepairTablePurgesDeadEntries(t *testing.T) {
	const n = 40
	net, nodes := buildOverlay(t, n, 77, 0)

	// Kill every third node (never the bootstrap).
	alive := map[int]bool{}
	for i := range nodes {
		alive[i] = true
	}
	for i := 3; i < n; i += 3 {
		net.SetDown(nodes[i].Info().Addr, true)
		alive[i] = false
	}
	survivors := liveNodes(nodes, alive)

	for round := 0; round < 3; round++ {
		for _, nd := range survivors {
			nd.Stabilize()
			nd.RepairTable()
		}
	}

	deadAddr := map[simnet.Addr]bool{}
	for i, nd := range nodes {
		if !alive[i] {
			deadAddr[nd.Info().Addr] = true
		}
	}
	for _, nd := range survivors {
		for _, te := range nd.TableEntries() {
			if deadAddr[te.Node.Addr] {
				t.Fatalf("%s table[%d][%d] still names dead node %s after repair",
					nd.Info().Addr, te.Row, te.Col, te.Node.Addr)
			}
		}
	}
	if _, err := CheckInvariants(survivors, InvariantOptions{
		Level:    InvariantConverged,
		Seed:     3,
		ReplicaK: 2,
	}); err != nil {
		t.Fatalf("converged invariants after churn + repair: %v", err)
	}
}
