package pastry

import (
	"fmt"
	"sort"

	"repro/internal/id"
)

// This file is the overlay invariant oracle: Chord-ASM-style checkable
// state-machine invariants over a whole overlay, judged against the live
// membership ground truth that individual nodes never see. The scale soak
// and the chaos harness run it at configurable intervals and after quiesce.
//
// Invariants come in two tiers:
//
//   - InvariantLive (structural, churn-tolerant): holds at every instant,
//     even mid-churn. Routing-table entries sit in the slot their prefix
//     dictates, leaf halves are sorted by ring distance with no duplicates
//     and never contain self, and sampled routes terminate without loops
//     within the protocol's hop budget when dead hops are excluded.
//
//   - InvariantConverged (exact, post-stabilization): additionally requires
//     every node's view to agree with the ground truth. Leaf halves equal
//     the true l/2 nearest live nodes in each ring direction (completeness),
//     which makes membership pairwise symmetric; no routing-table entry
//     names a dead node; replica candidates are exactly the K ring-nearest
//     live nodes (replica placement = leaf-set prefix); and sampled routes
//     reach the true numerically-closest live node in at most
//     ceil(log_16 N) + slack hops.

// InvariantLevel selects which invariant tier to check.
type InvariantLevel int

const (
	// InvariantLive checks only the structural invariants that hold under
	// churn, between stabilization rounds.
	InvariantLive InvariantLevel = iota
	// InvariantConverged checks exact agreement with the live membership
	// ground truth; call it only on a stabilized overlay.
	InvariantConverged
)

// InvariantOptions parameterizes a check.
type InvariantOptions struct {
	Level InvariantLevel
	// SampleRoutes is how many (source, key) route walks to verify
	// (default 32; 0 keeps the default, negative disables route checks).
	SampleRoutes int
	// Seed drives the deterministic sampling of sources and keys.
	Seed uint64
	// HopSlack is the allowance over ceil(log_16 N) for the converged-tier
	// hop bound (default 4): joins route via their own announcements before
	// tables fully populate, so a small constant rides on the asymptote.
	HopSlack int
	// ReplicaK, when positive, checks that each node's replica candidates
	// are exactly the K ring-nearest live nodes.
	ReplicaK int
}

// InvariantReport summarizes a passing check; the route-walk statistics
// double as the scale experiment's hop metrics.
type InvariantReport struct {
	Nodes    int // live nodes checked
	Routes   int // route walks performed
	MeanHops float64
	MaxHops  int
}

// CheckInvariants verifies the selected invariant tier over the live nodes,
// using the set itself as the membership ground truth. The first violation
// is returned as an error naming the node and the invariant; nil means the
// tier holds everywhere.
func CheckInvariants(live []*Node, opts InvariantOptions) (*InvariantReport, error) {
	if opts.SampleRoutes == 0 {
		opts.SampleRoutes = 32
	}
	if opts.HopSlack == 0 {
		opts.HopSlack = 4
	}
	rep := &InvariantReport{Nodes: len(live)}
	if len(live) == 0 {
		return rep, nil
	}

	// Ground truth: the live membership sorted by identifier (the ring).
	ring := make([]NodeInfo, len(live))
	byID := make(map[id.ID]*Node, len(live))
	byAddr := make(map[string]*Node, len(live))
	for i, n := range live {
		info := n.Info()
		ring[i] = info
		if _, dup := byID[info.ID]; dup {
			return rep, fmt.Errorf("invariant: duplicate node id %s", info.ID.Short())
		}
		byID[info.ID] = n
		byAddr[string(info.Addr)] = n
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].ID.Less(ring[j].ID) })

	for _, n := range live {
		if err := checkStructural(n); err != nil {
			return rep, err
		}
		if opts.Level == InvariantConverged {
			if err := checkConverged(n, ring, byID, opts); err != nil {
				return rep, err
			}
		}
	}

	if opts.SampleRoutes > 0 {
		if err := checkRoutes(live, ring, byAddr, opts, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// checkStructural verifies the churn-tolerant invariants of one node's
// state: table entries in prefix-correct slots, leaf halves sorted by ring
// distance, duplicate- and self-free.
func checkStructural(n *Node) error {
	self := n.Info()
	for _, te := range n.TableEntries() {
		e := te.Node
		if e.ID == self.ID {
			return fmt.Errorf("invariant: %s table[%d][%d] names self", self.Addr, te.Row, te.Col)
		}
		if got := id.SharedPrefixLen(self.ID, e.ID); got != te.Row {
			return fmt.Errorf("invariant: %s table[%d][%d] entry %s shares %d prefix digits, want %d",
				self.Addr, te.Row, te.Col, e.ID.Short(), got, te.Row)
		}
		if got := e.ID.Digit(te.Row); got != te.Col {
			return fmt.Errorf("invariant: %s table[%d][%d] entry %s has digit %x at row, want %x",
				self.Addr, te.Row, te.Col, e.ID.Short(), got, te.Col)
		}
	}
	succs, preds := n.LeafHalves()
	for hi, half := range [2][]NodeInfo{succs, preds} {
		name := "succs"
		dist := func(x id.ID) id.ID { return self.ID.CWDist(x) }
		if hi == 1 {
			name = "preds"
			dist = func(x id.ID) id.ID { return x.CWDist(self.ID) }
		}
		seen := map[id.ID]bool{}
		for i, e := range half {
			if e.ID == self.ID {
				return fmt.Errorf("invariant: %s %s[%d] names self", self.Addr, name, i)
			}
			if seen[e.ID] {
				return fmt.Errorf("invariant: %s %s holds %s twice", self.Addr, name, e.ID.Short())
			}
			seen[e.ID] = true
			if i > 0 && !dist(half[i-1].ID).Less(dist(e.ID)) {
				return fmt.Errorf("invariant: %s %s out of ring-distance order at %d", self.Addr, name, i)
			}
		}
	}
	return nil
}

// trueLeafHalves computes, from the sorted ground-truth ring, the l/2
// clockwise-nearest and l/2 counter-clockwise-nearest live nodes of self —
// what a converged node's leaf halves must contain exactly.
func trueLeafHalves(self NodeInfo, ring []NodeInfo, halfSize int) (succs, preds []NodeInfo) {
	// Position of self in the sorted ring.
	pos := sort.Search(len(ring), func(i int) bool { return !ring[i].ID.Less(self.ID) })
	n := len(ring)
	want := halfSize
	if want > n-1 {
		want = n - 1
	}
	for k := 1; k <= want; k++ {
		succs = append(succs, ring[(pos+k)%n])
		preds = append(preds, ring[((pos-k)%n+n)%n])
	}
	return succs, preds
}

// checkConverged verifies one node's exact agreement with the ground truth:
// leaf completeness (and with it symmetry), liveness of every table entry,
// and replica placement.
func checkConverged(n *Node, ring []NodeInfo, byID map[id.ID]*Node, opts InvariantOptions) error {
	self := n.Info()
	wantSuccs, wantPreds := trueLeafHalves(self, ring, n.LeafSize()/2)
	succs, preds := n.LeafHalves()
	for _, cmp := range []struct {
		name      string
		got, want []NodeInfo
	}{{"succs", succs, wantSuccs}, {"preds", preds, wantPreds}} {
		if len(cmp.got) != len(cmp.want) {
			return fmt.Errorf("invariant: %s %s holds %d nodes, ground truth has %d",
				self.Addr, cmp.name, len(cmp.got), len(cmp.want))
		}
		for i := range cmp.got {
			if cmp.got[i].ID != cmp.want[i].ID {
				return fmt.Errorf("invariant: %s %s[%d] = %s (%s), ground truth %s (%s)",
					self.Addr, cmp.name, i, cmp.got[i].ID.Short(), cmp.got[i].Addr,
					cmp.want[i].ID.Short(), cmp.want[i].Addr)
			}
		}
	}
	// Completeness against the ground truth implies pairwise symmetry (b's
	// rank among a's successors equals a's rank among b's predecessors), but
	// assert it directly too — it is cheap and catches oracle bugs.
	for _, m := range n.Leaf() {
		peer := byID[m.ID]
		if peer == nil {
			return fmt.Errorf("invariant: %s leaf set names dead node %s (%s)", self.Addr, m.ID.Short(), m.Addr)
		}
		found := false
		for _, back := range peer.Leaf() {
			if back.ID == self.ID {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("invariant: leaf asymmetry: %s holds %s but not vice versa", self.Addr, m.Addr)
		}
	}
	for _, te := range n.TableEntries() {
		if byID[te.Node.ID] == nil {
			return fmt.Errorf("invariant: %s table[%d][%d] names dead node %s (%s)",
				self.Addr, te.Row, te.Col, te.Node.ID.Short(), te.Node.Addr)
		}
	}
	if k := opts.ReplicaK; k > 0 {
		want := alternate(wantSuccs, wantPreds, k)
		got := n.ReplicaCandidates(k)
		if len(got) != len(want) {
			return fmt.Errorf("invariant: %s has %d replica candidates, ground truth %d",
				self.Addr, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				return fmt.Errorf("invariant: %s replica candidate %d = %s, ground truth %s",
					self.Addr, i, got[i].Addr, want[i].Addr)
			}
		}
	}
	return nil
}

// alternate mirrors replicaCandidates' successor/predecessor alternation
// over the ground-truth ring neighborhoods.
func alternate(succs, preds []NodeInfo, k int) []NodeInfo {
	out := make([]NodeInfo, 0, k)
	seen := map[id.ID]bool{}
	si, pi := 0, 0
	for len(out) < k {
		advanced := false
		if si < len(succs) {
			if n := succs[si]; !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
			si++
			advanced = true
		}
		if len(out) < k && pi < len(preds) {
			if n := preds[pi]; !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
			pi++
			advanced = true
		}
		if !advanced {
			break
		}
	}
	return out
}

// log16Ceil returns ceil(log_16 n), the expected Pastry route length.
func log16Ceil(n int) int {
	h := 0
	for v := 1; v < n; v *= 16 {
		h++
	}
	return h
}

// checkRoutes walks sampled routes hop by hop using each node's local
// routing decision, proving loop freedom and the hop bound, and — at the
// converged tier — that every route terminates at the true numerically
// closest live node.
func checkRoutes(live []*Node, ring []NodeInfo, byAddr map[string]*Node, opts InvariantOptions, rep *InvariantReport) error {
	state := opts.Seed ^ 0x9e3779b97f4a7c15
	maxHops := 64 // the protocol's own routing budget, for the live tier
	if opts.Level == InvariantConverged {
		maxHops = log16Ceil(len(live)) + opts.HopSlack
	}
	ids := make([]id.ID, len(ring))
	for i, m := range ring {
		ids[i] = m.ID
	}
	var totalHops int
	for s := 0; s < opts.SampleRoutes; s++ {
		src := live[int(splitmix(&state)%uint64(len(live)))]
		key := id.Rand128(&state)
		cur := src
		visited := map[id.ID]bool{cur.Info().ID: true}
		var excluded []id.ID
		hops := 0
		for {
			next, isRoot := cur.NextHopLocal(key, excluded)
			if isRoot {
				break
			}
			nn := byAddr[string(next.Addr)]
			if nn == nil || !nn.Alive() {
				if opts.Level == InvariantConverged {
					return fmt.Errorf("invariant: route for key %s hops from %s to dead node %s",
						key.Short(), cur.Info().Addr, next.Addr)
				}
				// Live tier mid-churn: a dead hop is what iterative routing
				// excludes and retries; mirror that without counting a hop.
				excluded = append(excluded, next.ID)
				continue
			}
			if visited[next.ID] {
				return fmt.Errorf("invariant: routing loop for key %s: revisited %s after %d hops",
					key.Short(), next.Addr, hops)
			}
			visited[next.ID] = true
			hops++
			if hops > maxHops {
				return fmt.Errorf("invariant: route for key %s from %s exceeded %d hops (n=%d)",
					key.Short(), src.Info().Addr, maxHops, len(live))
			}
			cur = nn
		}
		if opts.Level == InvariantConverged {
			want, _ := id.Closest(key, ids)
			got := cur.Info().ID
			if got != want {
				return fmt.Errorf("invariant: route for key %s ended at %s (%s), true root is %s",
					key.Short(), cur.Info().Addr, got.Short(), want.Short())
			}
		}
		rep.Routes++
		totalHops += hops
		if hops > rep.MaxHops {
			rep.MaxHops = hops
		}
	}
	if rep.Routes > 0 {
		rep.MeanHops = float64(totalHops) / float64(rep.Routes)
	}
	return nil
}

func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
