// Package pastry implements the structured p2p overlay Kosha builds on
// (Section 2.2): 128-bit circular nodeIds, prefix-based routing with a
// routing table of rows sharing increasingly long prefixes, and a leaf set
// of l numerically closest nodes (l/2 larger, l/2 smaller) that "ensures
// reliable message delivery and is used to store replicas of application
// objects".
//
// Routing is iterative: the querying node asks each hop for its next hop
// until a node claims root ownership of the key (numerically closest
// nodeId). Each hop is one overlay RPC whose simulated latency feeds the
// paper's H·hc overhead term (Section 6.1.2). Node state is bounded —
// O(log N) routing rows plus the l-entry leaf set — so hop counts scale as
// log_2^b(N) exactly as in the paper; nodes never keep a global membership
// list.
package pastry

import (
	"repro/internal/id"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Service is the simnet service name Pastry nodes register under.
const Service = "pastry"

// proc numbers for the overlay protocol.
const (
	pPing       = 0
	pNextHop    = 1
	pGetState   = 2
	pGetLeafSet = 3
	pNotify     = 4
	pRemoveNode = 5
	pGetRow     = 6
)

// ProcName names an overlay procedure number for trace span labels.
func ProcName(p uint32) string {
	switch p {
	case pPing:
		return "ping"
	case pNextHop:
		return "next-hop"
	case pGetState:
		return "get-state"
	case pGetLeafSet:
		return "get-leaf-set"
	case pNotify:
		return "notify"
	case pRemoveNode:
		return "remove-node"
	case pGetRow:
		return "get-row"
	}
	return "?"
}

// TableEntry is one occupied routing-table slot.
type TableEntry struct {
	Row, Col int
	Node     NodeInfo
}

// NodeInfo identifies an overlay member.
type NodeInfo struct {
	ID   id.ID
	Addr simnet.Addr
}

// IsZero reports whether the info is unset.
func (n NodeInfo) IsZero() bool { return n.Addr == "" && n.ID.IsZero() }

// Load is a node's storage occupancy, piggybacked on leaf-set heartbeats
// (pNotify) so capacity views spread with the traffic that already exists.
// Capacity <= 0 means unlimited.
type Load struct {
	Used     int64
	Capacity int64
}

// Utilization returns Used/Capacity, or 0 for unlimited stores.
func (l Load) Utilization() float64 {
	if l.Capacity <= 0 {
		return 0
	}
	return float64(l.Used) / float64(l.Capacity)
}

func putLoad(e *wire.Encoder, l Load) {
	e.PutInt64(l.Used)
	e.PutInt64(l.Capacity)
}

func getLoad(d *wire.Decoder) Load {
	return Load{Used: d.Int64(), Capacity: d.Int64()}
}

func putNodeInfo(e *wire.Encoder, n NodeInfo) {
	e.PutFixedOpaque(n.ID[:])
	e.PutString(string(n.Addr))
}

func getNodeInfo(d *wire.Decoder) NodeInfo {
	var n NodeInfo
	d.FixedOpaque(n.ID[:])
	n.Addr = simnet.Addr(d.String())
	return n
}

func putNodeInfos(e *wire.Encoder, ns []NodeInfo) {
	e.PutUint32(uint32(len(ns)))
	for _, n := range ns {
		putNodeInfo(e, n)
	}
}

func getNodeInfos(d *wire.Decoder) []NodeInfo {
	n := d.ArrayLen()
	out := make([]NodeInfo, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, getNodeInfo(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

func putIDs(e *wire.Encoder, ids []id.ID) {
	e.PutUint32(uint32(len(ids)))
	for _, v := range ids {
		e.PutFixedOpaque(v[:])
	}
}

func getIDs(d *wire.Decoder) []id.ID {
	n := d.ArrayLen()
	out := make([]id.ID, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		var v id.ID
		d.FixedOpaque(v[:])
		out = append(out, v)
	}
	return out
}
