package pastry

import (
	"sort"

	"repro/internal/id"
)

// DefaultLeafSize is l, the leaf-set size (l/2 numerically larger and l/2
// smaller nodeIds than the present node, Section 2.2). 16 is FreePastry's
// default.
const DefaultLeafSize = 16

// state holds a node's bounded overlay state: the prefix routing table and
// the leaf set. It is not itself synchronized; Node guards it.
type state struct {
	self     NodeInfo
	leafSize int

	// table[row][col] is a node sharing `row` leading digits with self and
	// whose next digit is col. Zero value means empty.
	table [id.Digits][1 << id.BitsPerDigit]NodeInfo

	// succs/preds are the leaf set halves: successors sorted by increasing
	// clockwise distance from self, predecessors by increasing
	// counter-clockwise distance. In overlays with at most l nodes the two
	// halves cover the same nodes (full wrap), as in real Pastry.
	succs []NodeInfo
	preds []NodeInfo
}

func newState(self NodeInfo, leafSize int) *state {
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	// Keep halves even.
	if leafSize%2 == 1 {
		leafSize++
	}
	return &state{self: self, leafSize: leafSize}
}

// add merges a node into the routing table and leaf set. It reports whether
// the leaf set changed (the trigger for Kosha's replica maintenance).
func (s *state) add(n NodeInfo) bool {
	if n.ID == s.self.ID || n.IsZero() {
		return false
	}
	row := id.SharedPrefixLen(s.self.ID, n.ID)
	if row < id.Digits {
		col := n.ID.Digit(row)
		if s.table[row][col].IsZero() {
			s.table[row][col] = n
		}
	}
	changed := insertLeaf(&s.succs, s.self.ID, n, s.leafSize/2, false)
	if insertLeaf(&s.preds, s.self.ID, n, s.leafSize/2, true) {
		changed = true
	}
	return changed
}

// insertLeaf inserts n into one sorted leaf-set half, bounded to max
// entries. pred selects counter-clockwise ordering. Reports insertion.
func insertLeaf(half *[]NodeInfo, self id.ID, n NodeInfo, max int, pred bool) bool {
	dist := func(x id.ID) id.ID {
		if pred {
			return x.CWDist(self)
		}
		return self.CWDist(x)
	}
	h := *half
	for _, e := range h {
		if e.ID == n.ID {
			return false
		}
	}
	pos := sort.Search(len(h), func(i int) bool {
		return dist(n.ID).Less(dist(h[i].ID))
	})
	if pos >= max {
		return false
	}
	h = append(h, NodeInfo{})
	copy(h[pos+1:], h[pos:])
	h[pos] = n
	if len(h) > max {
		h = h[:max]
	}
	*half = h
	return true
}

// remove purges a node from all state. Reports whether the leaf set changed.
func (s *state) remove(dead id.ID) bool {
	if row := id.SharedPrefixLen(s.self.ID, dead); row < id.Digits {
		col := dead.Digit(row)
		if s.table[row][col].ID == dead {
			s.table[row][col] = NodeInfo{}
		}
	}
	changed := removeLeaf(&s.succs, dead)
	if removeLeaf(&s.preds, dead) {
		changed = true
	}
	return changed
}

func removeLeaf(half *[]NodeInfo, dead id.ID) bool {
	h := *half
	for i, e := range h {
		if e.ID == dead {
			*half = append(h[:i], h[i+1:]...)
			return true
		}
	}
	return false
}

// row returns the non-empty entries of routing-table row r.
func (s *state) row(r int) []NodeInfo {
	var out []NodeInfo
	for c := range s.table[r] {
		if e := s.table[r][c]; !e.IsZero() {
			out = append(out, e)
		}
	}
	return out
}

// leafMembers returns the deduplicated leaf set (not including self).
func (s *state) leafMembers() []NodeInfo {
	seen := make(map[id.ID]bool, len(s.succs)+len(s.preds))
	out := make([]NodeInfo, 0, len(s.succs)+len(s.preds))
	for _, halves := range [2][]NodeInfo{s.succs, s.preds} {
		for _, n := range halves {
			if !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// allKnown returns every node in the table and leaf set (not self).
func (s *state) allKnown() []NodeInfo {
	seen := make(map[id.ID]bool)
	var out []NodeInfo
	for _, n := range s.leafMembers() {
		if !seen[n.ID] {
			seen[n.ID] = true
			out = append(out, n)
		}
	}
	for r := range s.table {
		for c := range s.table[r] {
			n := s.table[r][c]
			if !n.IsZero() && !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// leafCovers reports whether the leaf-set arc contains key, meaning the
// root can be decided among leaf members. When a half is not full the node
// knows so few peers that the leaf set wraps the whole ring.
func (s *state) leafCovers(key id.ID) bool {
	if len(s.succs) < s.leafSize/2 || len(s.preds) < s.leafSize/2 {
		return true
	}
	lo := s.preds[len(s.preds)-1].ID // farthest counter-clockwise
	hi := s.succs[len(s.succs)-1].ID // farthest clockwise
	return id.Between(key, lo, hi) || key == lo
}

// closestLeaf returns the member of leafset∪self numerically closest to
// key, excluding ids in excl.
func (s *state) closestLeaf(key id.ID, excl map[id.ID]bool) NodeInfo {
	best := s.self
	if excl[s.self.ID] {
		best = NodeInfo{}
	}
	consider := func(n NodeInfo) {
		if excl[n.ID] {
			return
		}
		if best.IsZero() {
			best = n
			return
		}
		dn, db := key.Distance(n.ID), key.Distance(best.ID)
		if dn.Less(db) || (dn == db && n.ID.Less(best.ID)) {
			best = n
		}
	}
	for _, n := range s.leafMembers() {
		consider(n)
	}
	return best
}

// nextHop computes the routing decision for key, excluding dead nodes:
// isRoot means this node believes it is numerically closest; otherwise next
// is a strictly better hop (longer shared prefix, or closer at equal
// prefix), per the Pastry routing procedure.
func (s *state) nextHop(key id.ID, excluded []id.ID) (next NodeInfo, isRoot bool) {
	excl := make(map[id.ID]bool, len(excluded))
	for _, x := range excluded {
		excl[x] = true
	}

	// Leaf-set case: key within the leaf arc.
	if s.leafCovers(key) {
		best := s.closestLeaf(key, excl)
		if best.IsZero() || best.ID == s.self.ID {
			return NodeInfo{}, true
		}
		return best, false
	}

	// Prefix routing.
	row := id.SharedPrefixLen(s.self.ID, key)
	if row < id.Digits {
		col := key.Digit(row)
		if e := s.table[row][col]; !e.IsZero() && !excl[e.ID] {
			return e, false
		}
	}

	// Rare case: scan all known nodes for one at least as good by prefix
	// and strictly closer numerically.
	selfDist := key.Distance(s.self.ID)
	var best NodeInfo
	var bestDist id.ID
	for _, n := range s.allKnown() {
		if excl[n.ID] {
			continue
		}
		if id.SharedPrefixLen(n.ID, key) < row {
			continue
		}
		d := key.Distance(n.ID)
		if !d.Less(selfDist) {
			continue
		}
		if best.IsZero() || d.Less(bestDist) {
			best, bestDist = n, d
		}
	}
	if best.IsZero() {
		return NodeInfo{}, true
	}
	return best, false
}

// replicaCandidates returns up to k leaf-set nodes ring-adjacent to self,
// alternating successor/predecessor, the paper's "neighboring K nodes in
// the node-identifier space" that hold file replicas (Section 4.2).
func (s *state) replicaCandidates(k int) []NodeInfo {
	out := make([]NodeInfo, 0, k)
	seen := map[id.ID]bool{s.self.ID: true}
	si, pi := 0, 0
	for len(out) < k {
		advanced := false
		if si < len(s.succs) {
			if n := s.succs[si]; !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
			si++
			advanced = true
		}
		if len(out) < k && pi < len(s.preds) {
			if n := s.preds[pi]; !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
			pi++
			advanced = true
		}
		if !advanced {
			break
		}
	}
	return out
}
