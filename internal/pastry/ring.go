package pastry

import (
	"sort"

	"repro/internal/id"
)

// Ring is a static, omniscient view of an overlay: the sorted identifier
// circle. The paper's load-distribution and availability experiments
// (Sections 6.2-6.3) were simulations over nodeId assignments rather than
// runs of the prototype; Ring provides the same placement math — root =
// numerically closest node, replicas = ring-adjacent neighbors — without
// spinning up live nodes, so sweeps over 50-100 seeds stay cheap.
type Ring struct {
	ids []id.ID // sorted ascending
}

// NewRing builds a ring from node identifiers (duplicates are dropped).
func NewRing(ids []id.ID) *Ring {
	seen := make(map[id.ID]bool, len(ids))
	sorted := make([]id.ID, 0, len(ids))
	for _, v := range ids {
		if !seen[v] {
			seen[v] = true
			sorted = append(sorted, v)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	return &Ring{ids: sorted}
}

// RandomRing builds a ring of n uniformly random identifiers derived from
// seed, mirroring Pastry's "unique, uniform, randomly-assigned" nodeIds.
func RandomRing(n int, seed uint64) *Ring {
	state := seed
	ids := make([]id.ID, 0, n)
	for len(ids) < n {
		ids = append(ids, id.Rand128(&state))
	}
	return NewRing(ids)
}

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.ids) }

// IDs returns the sorted identifiers (not a copy; treat as read-only).
func (r *Ring) IDs() []id.ID { return r.ids }

// Root returns the index of the node numerically closest to key, the
// primary replica's host. It panics on an empty ring.
func (r *Ring) Root(key id.ID) int {
	if len(r.ids) == 0 {
		panic("pastry: Root on empty ring")
	}
	// First id >= key, then compare against its predecessor (with wrap).
	i := sort.Search(len(r.ids), func(i int) bool { return !r.ids[i].Less(key) })
	hi := i % len(r.ids)
	lo := (i - 1 + len(r.ids)) % len(r.ids)
	dHi, dLo := key.Distance(r.ids[hi]), key.Distance(r.ids[lo])
	switch dHi.Cmp(dLo) {
	case -1:
		return hi
	case 1:
		return lo
	default:
		if r.ids[hi].Less(r.ids[lo]) {
			return hi
		}
		return lo
	}
}

// Replicas returns the indices of up to k nodes holding additional
// replicas for a key rooted at index root: ring-adjacent neighbors,
// alternating successor/predecessor (Section 4.2).
func (r *Ring) Replicas(root, k int) []int {
	n := len(r.ids)
	if k > n-1 {
		k = n - 1
	}
	out := make([]int, 0, k)
	for step := 1; len(out) < k; step++ {
		succ := (root + step) % n
		if len(out) < k {
			out = append(out, succ)
		}
		pred := (root - step + n) % n
		if len(out) < k && pred != succ {
			out = append(out, pred)
		}
	}
	return out
}

// Holders returns root plus replica indices for key: every node that
// stores a copy.
func (r *Ring) Holders(key id.ID, k int) []int {
	root := r.Root(key)
	return append([]int{root}, r.Replicas(root, k)...)
}
