package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/nfs"
)

// oracle is an in-memory reference model of the virtual file system:
// Kosha's observable behaviour must match a plain tree under every random
// operation sequence, regardless of placement, replication, distribution
// level, or injected churn.
type oracle struct {
	files map[string][]byte   // virtual path -> contents
	dirs  map[string]struct{} // virtual dir paths (besides "/")
}

func newOracle() *oracle {
	return &oracle{files: map[string][]byte{}, dirs: map[string]struct{}{}}
}

func (o *oracle) mkdirAll(p string) {
	parts := core.SplitVirtual(p)
	for i := 1; i <= len(parts); i++ {
		o.dirs[core.JoinVirtual(parts[:i])] = struct{}{}
	}
}

func (o *oracle) writeFile(p string, data []byte) {
	o.mkdirAll(path.Dir(p))
	o.files[p] = append([]byte(nil), data...)
}

func (o *oracle) removeAll(p string) {
	delete(o.files, p)
	delete(o.dirs, p)
	prefix := p + "/"
	for f := range o.files {
		if strings.HasPrefix(f, prefix) {
			delete(o.files, f)
		}
	}
	for d := range o.dirs {
		if strings.HasPrefix(d, prefix) {
			delete(o.dirs, d)
		}
	}
}

// list returns the sorted child names of a directory per the model.
func (o *oracle) list(dir string) []string {
	seen := map[string]struct{}{}
	prefix := dir + "/"
	if dir == "/" {
		prefix = "/"
	}
	collect := func(p string) {
		if !strings.HasPrefix(p, prefix) || p == dir {
			return
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		if rest != "" {
			seen[rest] = struct{}{}
		}
	}
	for f := range o.files {
		collect(f)
	}
	for d := range o.dirs {
		collect(d)
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// rename moves a path (file or subtree) to a sibling name.
func (o *oracle) rename(from, to string) {
	if data, ok := o.files[from]; ok {
		delete(o.files, from)
		o.files[to] = data
	}
	if _, ok := o.dirs[from]; ok {
		delete(o.dirs, from)
		o.dirs[to] = struct{}{}
	}
	prefix := from + "/"
	moveKeys := func(m map[string][]byte) {
		for p, v := range m {
			if strings.HasPrefix(p, prefix) {
				delete(m, p)
				m[to+strings.TrimPrefix(p, from)] = v
			}
		}
	}
	moveKeys(o.files)
	for d := range o.dirs {
		if strings.HasPrefix(d, prefix) {
			delete(o.dirs, d)
			o.dirs[to+strings.TrimPrefix(d, from)] = struct{}{}
		}
	}
}

func (o *oracle) exists(p string) bool {
	if _, ok := o.files[p]; ok {
		return true
	}
	_, ok := o.dirs[p]
	return ok
}

// checkAgainst verifies every model file and listing through a mount.
func (o *oracle) checkAgainst(t *testing.T, m *core.Mount, tag string) {
	t.Helper()
	for p, want := range o.files {
		got, _, err := m.ReadFile(p)
		if err != nil {
			t.Fatalf("[%s] read %s: %v", tag, p, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("[%s] content mismatch at %s: %d vs %d bytes", tag, p, len(got), len(want))
		}
	}
	// Spot-check listings including the root.
	dirs := []string{"/"}
	for d := range o.dirs {
		dirs = append(dirs, d)
	}
	for _, d := range dirs {
		vh, attr, _, err := m.LookupPath(d)
		if err != nil {
			t.Fatalf("[%s] lookup dir %s: %v", tag, d, err)
		}
		if attr.Type != localfs.TypeDir {
			t.Fatalf("[%s] %s is %v, want dir", tag, d, attr.Type)
		}
		ents, _, err := m.Readdir(vh)
		if err != nil {
			t.Fatalf("[%s] readdir %s: %v", tag, d, err)
		}
		var names []string
		for _, e := range ents {
			names = append(names, e.Name)
		}
		sort.Strings(names)
		want := o.list(d)
		if strings.Join(names, ",") != strings.Join(want, ",") {
			t.Fatalf("[%s] listing of %s: got %v want %v", tag, d, names, want)
		}
	}
	// Deleted paths must be gone.
	for _, probe := range []string{"/ghost", "/u0/ghost"} {
		if o.exists(probe) {
			continue
		}
		if _, _, _, err := m.LookupPath(probe); !nfs.IsStatus(err, nfs.ErrNoEnt) {
			t.Fatalf("[%s] deleted path %s resolvable: %v", tag, probe, err)
		}
	}
}

// runOracle drives a random operation sequence against a cluster and the
// model simultaneously, verifying convergence at checkpoints.
func runOracle(t *testing.T, cfg core.Config, steps int, seed int64, churn bool) {
	t.Helper()
	c, err := New(Options{Nodes: 6, Seed: uint64(seed), Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	o := newOracle()
	mounts := []*core.Mount{c.Mount(0), c.Mount(2), c.Mount(4)}

	randPath := func() string {
		depth := 1 + r.Intn(4)
		parts := make([]string, depth)
		for i := range parts {
			parts[i] = fmt.Sprintf("d%d", r.Intn(3))
		}
		return core.JoinVirtual(parts)
	}

	var ops []string
	logOp := func(format string, args ...interface{}) {
		ops = append(ops, fmt.Sprintf(format, args...))
	}
	t.Cleanup(func() {
		if t.Failed() {
			for _, op := range ops {
				t.Log(op)
			}
		}
	})
	downNode := -1
	for step := 0; step < steps; step++ {
		m := mounts[r.Intn(len(mounts))]
		switch r.Intn(11) {
		case 0, 1, 2, 3: // write (create or overwrite)
			p := randPath() + fmt.Sprintf("/f%d", r.Intn(5))
			data := make([]byte, r.Intn(2000))
			r.Read(data)
			if _, err := m.WriteFile(p, data); err != nil {
				t.Fatalf("step %d write %s: %v", step, p, err)
			}
			o.writeFile(p, data)
			logOp("%d write %s", step, p)
		case 4, 5: // mkdir
			p := randPath()
			if _, _, err := m.MkdirAll(p); err != nil {
				t.Fatalf("step %d mkdir %s: %v", step, p, err)
			}
			o.mkdirAll(p)
			logOp("%d mkdir %s", step, p)
		case 6: // remove subtree
			p := randPath()
			if o.exists(p) {
				if _, err := m.RemoveAllPath(p); err != nil {
					t.Fatalf("step %d rm %s: %v", step, p, err)
				}
				o.removeAll(p)
				logOp("%d rm %s", step, p)
			}
		case 7: // read-back of a random known file
			if len(o.files) > 0 {
				var p string
				for f := range o.files {
					p = f
					break
				}
				got, _, err := m.ReadFile(p)
				if err != nil || !bytes.Equal(got, o.files[p]) {
					t.Fatalf("step %d readback %s: %v", step, p, err)
				}
			}
		case 8: // churn: crash or revive a non-client node
			if !churn {
				continue
			}
			if downNode < 0 {
				downNode = 1 + 2*r.Intn(2) // node 1 or 3 (not a mount host... 2 is)
				if downNode == 1 || downNode == 3 {
					c.Fail(downNode)
					c.Stabilize()
				}
			} else {
				if err := c.Revive(downNode); err != nil {
					t.Fatalf("step %d revive: %v", step, err)
				}
				downNode = -1
			}
		case 9: // no-op / stabilize
			c.Stabilize()
		case 10: // rename within the same parent
			p := randPath()
			if !o.exists(p) {
				continue
			}
			parts := core.SplitVirtual(p)
			parent := core.JoinVirtual(parts[:len(parts)-1])
			newName := fmt.Sprintf("rn%d", step)
			parentVH, _, _, err := m.LookupPath(parent)
			if err != nil {
				t.Fatalf("step %d rename lookup %s: %v", step, parent, err)
			}
			if _, err := m.Rename(parentVH, parts[len(parts)-1], parentVH, newName); err != nil {
				t.Fatalf("step %d rename %s: %v", step, p, err)
			}
			o.rename(p, path.Join(parent, newName))
			logOp("%d rename %s -> %s", step, p, path.Join(parent, newName))
		}
		if step%25 == 24 {
			o.checkAgainst(t, mounts[r.Intn(len(mounts))], fmt.Sprintf("step %d", step))
		}
	}
	// Revive any node still down, then final full check from every mount.
	if downNode >= 0 {
		if err := c.Revive(downNode); err != nil {
			t.Fatal(err)
		}
	}
	c.Stabilize()
	for i, m := range mounts {
		o.checkAgainst(t, m, fmt.Sprintf("final mount %d", i))
	}
}

func TestOracleLevel1(t *testing.T) {
	runOracle(t, core.Config{Replicas: 2}, 120, 101, false)
}

func TestOracleLevel3(t *testing.T) {
	runOracle(t, core.Config{Replicas: 2, DistributionLevel: 3}, 120, 202, false)
}

func TestOracleWithChurn(t *testing.T) {
	runOracle(t, core.Config{Replicas: 2}, 150, 303, true)
}

func TestOracleWithChurnDeepDistribution(t *testing.T) {
	runOracle(t, core.Config{Replicas: 3, DistributionLevel: 2}, 150, 404, true)
}

func TestOracleNoReplicasNoChurn(t *testing.T) {
	runOracle(t, core.Config{Replicas: -1, DistributionLevel: 2}, 100, 505, false)
}

// TestOracleSeedSweep runs shorter sequences across many seeds to shake out
// ordering-dependent bugs the fixed-seed cases miss.
func TestOracleSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for seed := int64(1000); seed < 1012; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := core.Config{Replicas: 2}
			if seed%3 == 1 {
				cfg.DistributionLevel = 2
			}
			if seed%3 == 2 {
				cfg = core.Config{Replicas: 3, DistributionLevel: 3}
			}
			runOracle(t, cfg, 80, seed, seed%2 == 0)
		})
	}
}
