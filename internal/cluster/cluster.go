// Package cluster assembles multi-node Kosha deployments in one process:
// the substitute for the paper's eight-machine FreeBSD testbed (Section
// 6.1). It wires N core.Nodes onto a shared simulated network, joins them
// into one Pastry overlay, and offers failure injection and membership
// churn for the integration tests and benchmark harnesses.
package cluster

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/simnet"
)

// Options configures a cluster build.
type Options struct {
	// Nodes is the initial node count.
	Nodes int
	// Seed drives nodeId assignment; experiments vary it across runs ("50
	// runs ... varying the nodeId assignments", Section 6.2).
	Seed uint64
	// Config is applied to every node.
	Config core.Config
	// Capacities optionally overrides Config.Capacity per node, for the
	// heterogeneous-capacity experiment (Figure 6: 8x3 GB, 4x4 GB, 4x5 GB).
	Capacities []int64
	// Link overrides the network model (default LAN100).
	Link simnet.LinkModel
}

// Cluster is a running set of Kosha nodes on one simulated network.
type Cluster struct {
	Net   *simnet.Network
	Nodes []*core.Node

	// JoinCosts records the simulated cost of every overlay join (initial
	// build, AddNode, and revives), in order — the raw data behind the
	// join-convergence-time-vs-N curve of the scale experiment.
	JoinCosts []simnet.Cost

	seedState uint64
	cfg       core.Config
	nextAddr  int
}

// New builds, joins, and stabilizes a cluster.
func New(opts Options) (*Cluster, error) {
	link := opts.Link
	if link == (simnet.LinkModel{}) {
		link = simnet.LAN100
	}
	c := &Cluster{
		Net:       simnet.New(link),
		seedState: opts.Seed,
		cfg:       opts.Config,
	}
	for i := 0; i < opts.Nodes; i++ {
		cfg := opts.Config
		if i < len(opts.Capacities) {
			cfg.Capacity = opts.Capacities[i]
		}
		if _, err := c.addNode(cfg); err != nil {
			return nil, err
		}
	}
	c.Stabilize()
	return c, nil
}

func (c *Cluster) addNode(cfg core.Config) (*core.Node, error) {
	addr := simnet.Addr(fmt.Sprintf("node%02d", c.nextAddr))
	c.nextAddr++
	nodeID := id.Rand128(&c.seedState)
	// Per-node seed for the node's own randomized choices (retry jitter),
	// derived from the cluster seed sequence so one Options.Seed reproduces
	// the whole run.
	cfg.Seed = binary.BigEndian.Uint64(nodeID[:8])
	nd := core.NewNode(addr, nodeID, c.Net, cfg)
	var boot simnet.Addr
	if len(c.Nodes) > 0 {
		boot = c.Nodes[0].Addr()
	}
	cost, err := nd.Join(boot)
	if err != nil {
		return nil, fmt.Errorf("cluster: join %s: %w", addr, err)
	}
	c.JoinCosts = append(c.JoinCosts, cost)
	c.Nodes = append(c.Nodes, nd)
	return nd, nil
}

// AddNode joins one more node (default config) and stabilizes.
func (c *Cluster) AddNode() (*core.Node, error) {
	nd, err := c.addNode(c.cfg)
	if err != nil {
		return nil, err
	}
	c.Stabilize()
	return nd, nil
}

// AddNodes joins k nodes (default config) and stabilizes once at the end —
// the batch form large clusters need: stabilization is cluster-wide, so
// running it per join (as AddNode does) turns an N-node bring-up into an
// O(N^2) affair.
func (c *Cluster) AddNodes(k int) ([]*core.Node, error) {
	added := make([]*core.Node, 0, k)
	for i := 0; i < k; i++ {
		nd, err := c.addNode(c.cfg)
		if err != nil {
			return added, err
		}
		added = append(added, nd)
	}
	c.Stabilize()
	return added, nil
}

// Stabilize runs overlay repair — leaf-set probing plus background
// routing-table maintenance — and replica synchronization until the
// membership views settle, returning the total simulated cost.
func (c *Cluster) Stabilize() simnet.Cost {
	var total simnet.Cost
	for round := 0; round < 3; round++ {
		for _, nd := range c.Nodes {
			if !c.Net.IsDown(nd.Addr()) {
				total = simnet.Seq(total, nd.Overlay().Stabilize())
				total = simnet.Seq(total, nd.Overlay().RepairTable())
			}
		}
	}
	// Two synchronization rounds: after heavy churn a node promoted from a
	// stale copy first learns the newer version (or deletion) from a peer
	// in round one and redistributes it in round two.
	for round := 0; round < 2; round++ {
		for _, nd := range c.Nodes {
			if !c.Net.IsDown(nd.Addr()) {
				total = simnet.Seq(total, nd.SyncReplicas())
			}
		}
	}
	return total
}

// Mount returns a client mount attached through node i's koshad.
func (c *Cluster) Mount(i int) *core.Mount { return c.Nodes[i].NewMount() }

// Fail crashes node i.
func (c *Cluster) Fail(i int) { c.Nodes[i].Fail() }

// Revive restarts node i with a fresh overlay identifier (its store is
// purged, Section 4.3.2) and stabilizes.
func (c *Cluster) Revive(i int) error {
	if err := c.reviveOne(i); err != nil {
		return err
	}
	c.Stabilize()
	return nil
}

// ReviveNodes restarts a batch of crashed nodes and stabilizes once at the
// end. Under trace-driven churn a single epoch revives many machines;
// stabilizing the whole cluster once per machine (as Revive does) is the
// O(N) scan that made large-cluster churn intractable.
func (c *Cluster) ReviveNodes(idxs []int) error {
	for _, i := range idxs {
		if err := c.reviveOne(i); err != nil {
			return err
		}
	}
	if len(idxs) > 0 {
		c.Stabilize()
	}
	return nil
}

// reviveOne rejoins one crashed node without stabilizing. The rejoin
// bootstraps through the first node that is actually alive — under churn
// the next node in index order may itself be down, and bootstrapping
// through a dead seed would fail the whole revival.
func (c *Cluster) reviveOne(i int) error {
	var seed simnet.Addr
	for off := 1; off < len(c.Nodes); off++ {
		cand := c.Nodes[(i+off)%len(c.Nodes)]
		if !c.Net.IsDown(cand.Addr()) {
			seed = cand.Addr()
			break
		}
	}
	if seed == "" {
		return fmt.Errorf("cluster: revive %d: no live seed node", i)
	}
	cost, err := c.Nodes[i].Revive(id.Rand128(&c.seedState), seed)
	if err != nil {
		return err
	}
	c.JoinCosts = append(c.JoinCosts, cost)
	return nil
}

// Alive returns the indices of nodes currently up.
func (c *Cluster) Alive() []int {
	var out []int
	for i, nd := range c.Nodes {
		if !c.Net.IsDown(nd.Addr()) {
			out = append(out, i)
		}
	}
	return out
}

// NodeStat summarizes one node's store occupancy.
type NodeStat struct {
	Addr  simnet.Addr
	Files int64
	Bytes int64
}

// StoreStats snapshots per-node occupancy (file counts and bytes), the raw
// data behind the load-distribution analysis (Figure 5).
func (c *Cluster) StoreStats() []NodeStat {
	out := make([]NodeStat, len(c.Nodes))
	for i, nd := range c.Nodes {
		out[i] = NodeStat{
			Addr:  nd.Addr(),
			Files: nd.Store().NumFiles(),
			Bytes: nd.Store().Used(),
		}
	}
	return out
}
