package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentMounts drives several mounts from different client nodes in
// parallel: each worker owns a distinct user directory, so operations are
// independent; all data must land intact and be visible from every mount.
func TestConcurrentMounts(t *testing.T) {
	c, err := New(Options{Nodes: 6, Seed: 901, Config: core.Config{Replicas: 1}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	const filesPerWorker = 15
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := c.Mount(w % len(c.Nodes))
			for i := 0; i < filesPerWorker; i++ {
				p := fmt.Sprintf("/user%d/docs/f%02d", w, i)
				payload := bytes.Repeat([]byte{byte(w), byte(i)}, 100+i)
				if _, err := m.WriteFile(p, payload); err != nil {
					errs <- fmt.Errorf("worker %d write %s: %w", w, p, err)
					return
				}
				got, _, err := m.ReadFile(p)
				if err != nil || !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("worker %d readback %s: %w", w, p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every file visible through one reader mount.
	m := c.Mount(0)
	for w := 0; w < workers; w++ {
		for i := 0; i < filesPerWorker; i++ {
			p := fmt.Sprintf("/user%d/docs/f%02d", w, i)
			if _, _, err := m.ReadFile(p); err != nil {
				t.Fatalf("final read %s: %v", p, err)
			}
		}
	}
	stats := c.StoreStats()
	var files int64
	for _, s := range stats {
		files += s.Files
	}
	// workers*filesPerWorker primaries + same number of replicas (K=1).
	want := int64(workers * filesPerWorker * 2)
	if files != want {
		t.Fatalf("total stored file copies = %d, want %d", files, want)
	}
}

// TestConcurrentSharedDirectory has several clients writing distinct files
// into ONE directory concurrently; the primary serializes them.
func TestConcurrentSharedDirectory(t *testing.T) {
	c, err := New(Options{Nodes: 5, Seed: 902, Config: core.Config{Replicas: 2}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := c.Mount(w % len(c.Nodes))
			for i := 0; i < 10; i++ {
				p := fmt.Sprintf("/shared/w%d-f%d", w, i)
				if _, err := m.WriteFile(p, []byte(p)); err != nil {
					errs <- fmt.Errorf("w%d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := c.Mount(1)
	vh, _, _, err := m.LookupPath("/shared")
	if err != nil {
		t.Fatal(err)
	}
	ents, _, err := m.Readdir(vh)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != workers*10 {
		t.Fatalf("listing has %d entries, want %d", len(ents), workers*10)
	}
	for _, e := range ents {
		data, _, err := m.ReadFile("/shared/" + e.Name)
		if err != nil || string(data) != "/shared/"+e.Name {
			t.Fatalf("content of %s: %q err=%v", e.Name, data, err)
		}
	}
}

// TestConcurrentReadersDuringFailure checks that parallel readers all fail
// over cleanly when the primary dies mid-stream.
func TestConcurrentReadersDuringFailure(t *testing.T) {
	c, err := New(Options{Nodes: 6, Seed: 903, Config: core.Config{Replicas: 2}})
	if err != nil {
		t.Fatal(err)
	}
	m0 := c.Mount(0)
	if _, err := m0.WriteFile("/hot/data", bytes.Repeat([]byte{7}, 4096)); err != nil {
		t.Fatal(err)
	}
	pl, _, err := c.Nodes[0].ResolvePath("/hot")
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i, nd := range c.Nodes {
		if nd.Addr() == pl.Node {
			victim = i
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx := w % len(c.Nodes)
			if idx == victim {
				idx = (idx + 1) % len(c.Nodes)
			}
			m := c.Mount(idx)
			<-start
			for i := 0; i < 10; i++ {
				data, _, err := m.ReadFile("/hot/data")
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d: %w", w, i, err)
					return
				}
				if len(data) != 4096 {
					errs <- fmt.Errorf("reader %d: short read %d", w, len(data))
					return
				}
			}
		}(w)
	}
	close(start)
	c.Fail(victim)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
