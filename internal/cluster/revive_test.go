package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

// reviveCfg keeps replica maintenance harness-driven so each assertion runs
// against a known synchronization state.
func reviveCfg() core.Config {
	return core.Config{Replicas: 2, NoAutoSync: true}
}

// TestReviveSkipsDeadSeed: reviving node i must not bootstrap through the
// next node in index order when that node is itself down — the rejoin has to
// find a live seed. (Regression: Revive used to hardcode (i+1) % len.)
func TestReviveSkipsDeadSeed(t *testing.T) {
	c, err := New(Options{Nodes: 6, Seed: 5, Config: reviveCfg()})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mount(0)
	if _, err := m.WriteFile("/u/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c.Fail(1)
	c.Fail(2)
	c.Stabilize()
	if err := c.Revive(1); err != nil {
		t.Fatalf("revive with dead index-neighbor seed: %v", err)
	}
	if got := len(c.Alive()); got != 5 {
		t.Fatalf("alive = %d, want 5", got)
	}
	data, _, err := m.ReadFile("/u/f")
	if err != nil || !bytes.Equal(data, []byte("payload")) {
		t.Fatalf("read after revive: %q err=%v", data, err)
	}
}

// TestFailedNodeNotRoutedTo: once the overlay has stabilized around a crash,
// no live node's resolution may land on the failed node — and a node that
// merely reconnects (handlers back up, same identifier, no re-announce) must
// stay invisible until it rejoins, so its stale store cannot be consulted.
func TestFailedNodeNotRoutedTo(t *testing.T) {
	c, err := New(Options{Nodes: 6, Seed: 17, Config: reviveCfg()})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mount(0)
	var dirs []string
	for i := 0; i < 8; i++ {
		d := fmt.Sprintf("/d%d", i)
		dirs = append(dirs, d)
		if _, err := m.WriteFile(d+"/f", []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	c.Stabilize()

	const victim = 3
	dead := c.Nodes[victim].Addr()
	c.Fail(victim)
	c.Stabilize()

	checkNoRoutesTo := func(tag string) {
		t.Helper()
		for _, i := range []int{0, 1, 2} {
			for _, d := range dirs {
				pl, _, err := c.Nodes[i].ResolvePath(d)
				if err != nil {
					t.Fatalf("[%s] resolve %s from node %d: %v", tag, d, i, err)
				}
				if pl.Node == dead {
					t.Fatalf("[%s] %s resolved to failed node %s", tag, d, dead)
				}
			}
		}
	}
	checkNoRoutesTo("after crash")

	// Reconnect without re-announcing: the machine is back on the network
	// but has not rejoined the overlay. Peers purged it; nothing may route
	// to it, so its (potentially stale) storage is never served.
	c.Net.SetDown(dead, false)
	checkNoRoutesTo("after silent reconnect")
	for _, d := range dirs {
		data, _, err := m.ReadFile(d + "/f")
		if err != nil || !bytes.Equal(data, []byte(d)) {
			t.Fatalf("read %s after silent reconnect: %q err=%v", d, data, err)
		}
	}

	// A proper rejoin (fresh identifier, purged store, announce) makes the
	// node eligible again without perturbing observable contents.
	c.Net.SetDown(dead, true)
	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		data, _, err := m.ReadFile(d + "/f")
		if err != nil || !bytes.Equal(data, []byte(d)) {
			t.Fatalf("read %s after revive: %q err=%v", d, data, err)
		}
	}
}

// TestStaleStoreRevalidatedAfterReconnect: a node that crashes, misses
// writes, and reconnects with its old identifier and old storage intact must
// not win back ownership with stale data — replica synchronization has to
// reconcile versions so every client reads the acknowledged state.
func TestStaleStoreRevalidatedAfterReconnect(t *testing.T) {
	c, err := New(Options{Nodes: 6, Seed: 23, Config: reviveCfg()})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mount(0)
	if _, err := m.WriteFile("/u/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c.Stabilize()

	pl, _, err := c.Nodes[0].ResolvePath("/u")
	if err != nil {
		t.Fatal(err)
	}
	primary := -1
	for i, nd := range c.Nodes {
		if nd.Addr() == pl.Node {
			primary = i
		}
	}
	if primary < 0 {
		t.Fatalf("primary %s not in cluster", pl.Node)
	}
	// Drive writes from a node other than the primary so the client side
	// survives the crash.
	client := (primary + 1) % len(c.Nodes)
	mc := c.Mount(client)

	c.Fail(primary)
	c.Stabilize()
	if _, err := mc.WriteFile("/u/f", []byte("v2-after-crash")); err != nil {
		t.Fatalf("write during primary outage: %v", err)
	}

	// Silent reconnect: same identifier, stale store. Before the node
	// re-announces, other clients must keep reading the new version.
	c.Net.SetDown(pl.Node, false)
	data, _, err := mc.ReadFile("/u/f")
	if err != nil || !bytes.Equal(data, []byte("v2-after-crash")) {
		t.Fatalf("read after silent reconnect: %q err=%v", data, err)
	}

	// Once the cluster stabilizes (the node re-announces and replica
	// synchronization runs), version arbitration must converge every copy
	// onto the acknowledged write — even if ownership returns to the
	// reconnected node, its stale v1 loses to the replicas' v2.
	c.Stabilize()
	for _, i := range []int{0, client, primary} {
		got, _, err := c.Mount(i).ReadFile("/u/f")
		if err != nil || !bytes.Equal(got, []byte("v2-after-crash")) {
			t.Fatalf("node %d read after restabilize: %q err=%v", i, got, err)
		}
	}
}
