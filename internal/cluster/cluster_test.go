package cluster

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/nfs"
)

func TestBuildAndBasicIO(t *testing.T) {
	c, err := New(Options{Nodes: 8, Seed: 1, Config: core.Config{Replicas: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 8 || len(c.Alive()) != 8 {
		t.Fatalf("nodes=%d alive=%d", len(c.Nodes), len(c.Alive()))
	}
	m := c.Mount(0)
	if _, err := m.WriteFile("/home/readme", []byte("cluster up")); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Mount(7).ReadFile("/home/readme")
	if err != nil || string(data) != "cluster up" {
		t.Fatalf("read %q err=%v", data, err)
	}
}

func TestPerNodeCapacities(t *testing.T) {
	caps := []int64{3 << 30, 3 << 30, 4 << 30, 5 << 30}
	c, err := New(Options{Nodes: 4, Seed: 2, Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range c.Nodes {
		if nd.Store().Capacity() != caps[i] {
			t.Fatalf("node %d capacity = %d", i, nd.Store().Capacity())
		}
	}
}

func TestChurnJoinFailRevive(t *testing.T) {
	c, err := New(Options{Nodes: 5, Seed: 3, Config: core.Config{Replicas: 2}})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mount(1)
	for i := 0; i < 6; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/d%d/f", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Join two more nodes.
	for i := 0; i < 2; i++ {
		if _, err := c.AddNode(); err != nil {
			t.Fatal(err)
		}
	}
	// Fail one non-client node, data stays available.
	c.Fail(3)
	c.Stabilize()
	for i := 0; i < 6; i++ {
		if _, _, err := m.ReadFile(fmt.Sprintf("/d%d/f", i)); err != nil {
			t.Fatalf("read d%d after failure: %v", i, err)
		}
	}
	// Revive with a fresh identity; everything still readable.
	if err := c.Revive(3); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[3].Store().NumFiles() != 0 && len(c.Nodes[3].TrackedRoots()) == 0 {
		t.Fatal("revived node kept files without tracking")
	}
	for i := 0; i < 6; i++ {
		if _, _, err := m.ReadFile(fmt.Sprintf("/d%d/f", i)); err != nil {
			t.Fatalf("read d%d after revive: %v", i, err)
		}
	}
}

func TestStoreStatsReflectPlacement(t *testing.T) {
	c, err := New(Options{Nodes: 4, Seed: 4, Config: core.Config{Replicas: -1}})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mount(0)
	payload := make([]byte, 1000)
	for i := 0; i < 12; i++ {
		if _, err := m.WriteFile(fmt.Sprintf("/u%d/f", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.StoreStats()
	var files, bytes int64
	for _, s := range stats {
		files += s.Files
		bytes += s.Bytes
	}
	if files != 12 {
		t.Fatalf("total files = %d", files)
	}
	if bytes != 12*1000 {
		t.Fatalf("total bytes = %d", bytes)
	}
}

func TestConcurrentClientsSequentialOps(t *testing.T) {
	c, err := New(Options{Nodes: 4, Seed: 5, Config: core.Config{Replicas: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Two mounts interleave writes to distinct files in one directory;
	// both see all files afterwards.
	m1, m2 := c.Mount(0), c.Mount(2)
	for i := 0; i < 5; i++ {
		if _, err := m1.WriteFile(fmt.Sprintf("/mix/a%d", i), []byte("1")); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.WriteFile(fmt.Sprintf("/mix/b%d", i), []byte("2")); err != nil {
			t.Fatal(err)
		}
	}
	vh, _, _, err := m1.LookupPath("/mix")
	if err != nil {
		t.Fatal(err)
	}
	ents, _, err := m1.Readdir(vh)
	if err != nil || len(ents) != 10 {
		t.Fatalf("listing %d entries err=%v", len(ents), err)
	}
	if _, _, _, err := m2.LookupPath("/mix/a3"); err != nil {
		t.Fatalf("m2 sees m1's file: %v", err)
	}
}

func TestMissingFileError(t *testing.T) {
	c, err := New(Options{Nodes: 3, Seed: 6, Config: core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Mount(0).ReadFile("/nope/missing"); !nfs.IsStatus(err, nfs.ErrNoEnt) {
		t.Fatalf("err = %v", err)
	}
}
