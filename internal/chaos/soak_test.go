package chaos

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestRandomizedSoak runs many randomized schedules on fresh seeds, logging
// every seed so a failure is reproducible with a one-line scripted run. The
// soak is opt-in: set KOSHA_CHAOS_SOAK to the number of runs (e.g.
// `KOSHA_CHAOS_SOAK=100 go test -race ./internal/chaos/ -run Soak`).
// KOSHA_CHAOS_SEED pins the base seed; otherwise it derives from the clock
// and is printed, so a red soak is replayable even without the log.
func TestRandomizedSoak(t *testing.T) {
	runs := 0
	if v := os.Getenv("KOSHA_CHAOS_SOAK"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad KOSHA_CHAOS_SOAK %q: %v", v, err)
		}
		runs = n
	}
	if runs <= 0 {
		t.Skip("set KOSHA_CHAOS_SOAK=<runs> to enable the randomized soak")
	}
	base := time.Now().UnixNano()
	if v := os.Getenv("KOSHA_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad KOSHA_CHAOS_SEED %q: %v", v, err)
		}
		base = n
	}
	t.Logf("soak base seed %d (%d runs); replay one with Options{Seed: seed, RandomSteps: 40}", base, runs)
	seeds := rand.New(rand.NewSource(base))
	for i := 0; i < runs; i++ {
		seed := seeds.Int63()
		rep, err := Run(Options{Seed: seed, RandomSteps: 40})
		if err != nil {
			t.Fatalf("run %d seed %d: %v", i, seed, err)
		}
		if i%10 == 0 {
			t.Logf("run %d seed %d: ops=%d failed=%d applied=%d availability=%.4f",
				i, seed, rep.Ops, rep.FailedOps, rep.Applied, rep.Availability())
		}
	}
}
