package chaos

import (
	"reflect"
	"testing"
	"time"
)

// run executes a schedule under -race-friendly sizes and fails the test with
// the seed-bearing error on any invariant violation.
func run(t *testing.T, o Options) *Report {
	t.Helper()
	o.Logf = t.Logf
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestScenarioCrashDuringWrite: nodes die while the workload keeps writing;
// failover plus read-repair must keep every acknowledged byte readable, and
// replica counts must be back at K after the dust settles.
func TestScenarioCrashDuringWrite(t *testing.T) {
	run(t, Options{
		Seed: 1101,
		Steps: []Step{
			{Kind: OpCrash, A: 3},
			{Kind: OpStabilize},
			{Kind: OpCrash, A: 5},
			{Kind: OpStabilize},
			{Kind: OpRevive, A: 3},
			{Kind: OpRevive, A: 5},
			{Kind: OpStabilize},
		},
	})
}

// TestScenarioWriteBackCrash: the crash-during-write schedule with client
// write-back buffering enabled. WriteFile flushes its buffered spans before
// acknowledging, so every oracle-recorded write is durable data, and the
// acked-history invariants (no acknowledged byte lost, reads return only
// acknowledged contents) must hold exactly as in write-through mode.
func TestScenarioWriteBackCrash(t *testing.T) {
	run(t, Options{
		Seed:           1102,
		WriteBackBytes: 64 << 10,
		Steps: []Step{
			{Kind: OpCrash, A: 3},
			{Kind: OpStabilize},
			{Kind: OpCrash, A: 5},
			{Kind: OpStabilize},
			{Kind: OpRevive, A: 3},
			{Kind: OpRevive, A: 5},
			{Kind: OpStabilize},
		},
	})
}

// TestScenarioPartitionHeal: asymmetric partitions between storage nodes
// while clients stay connected; after healing, everything re-converges.
func TestScenarioPartitionHeal(t *testing.T) {
	run(t, Options{
		Seed: 2202,
		Steps: []Step{
			{Kind: OpPartition, A: 2, B: 4},
			{Kind: OpPartition, A: 4, B: 2},
			{Kind: OpStabilize},
			{Kind: OpPartition, A: 5, B: 2},
			{Kind: OpStabilize},
			{Kind: OpHeal},
			{Kind: OpStabilize},
		},
	})
}

// TestScenarioReplicaLoss: with K=2 (three copies of every subtree), lose
// two holders back to back — the single remaining copy must carry every
// read, and repair must rebuild the full replica set.
func TestScenarioReplicaLoss(t *testing.T) {
	run(t, Options{
		Seed: 3303,
		Steps: []Step{
			{Kind: OpCrash, A: 1},
			{Kind: OpCrash, A: 2},
			{Kind: OpCrash, A: 6},
			{Kind: OpStabilize},
			{Kind: OpRevive, A: 1},
			{Kind: OpRevive, A: 2},
			{Kind: OpRevive, A: 6},
			{Kind: OpStabilize},
		},
	})
}

// TestScenarioFlappingNode: one node repeatedly crashes and rejoins; each
// rejoin gets a fresh identifier and a purged store (Section 4.3.2), so the
// flapping must never resurrect stale state.
func TestScenarioFlappingNode(t *testing.T) {
	steps := make([]Step, 0, 8)
	for i := 0; i < 4; i++ {
		steps = append(steps,
			Step{Kind: OpCrash, A: 4},
			Step{Kind: OpRevive, A: 4},
		)
	}
	run(t, Options{Seed: 4404, Steps: steps})
}

// TestScenarioLossyLink: sustained message loss, duplication, and latency
// spikes; retries and the duplicate-request cache must mask duplication and
// bounded loss, and no surviving read may ever return wrong contents.
func TestScenarioLossyLink(t *testing.T) {
	run(t, Options{
		Seed: 5505,
		Steps: []Step{
			{Kind: OpLossy, A: 2, P: 0.20},
			{Kind: OpDup, P: 0.30},
			{Kind: OpStabilize},
			{Kind: OpLossy, A: 5, P: 0.15},
			{Kind: OpDelay, A: 3, D: 50 * time.Millisecond},
			{Kind: OpStabilize},
			{Kind: OpClearFaults},
			{Kind: OpStabilize},
		},
	})
}

// TestScenarioMixed: churn, partitions, and link faults together, plus a
// join — the full fault menu in one schedule.
func TestScenarioMixed(t *testing.T) {
	run(t, Options{
		Seed: 6606,
		Steps: []Step{
			{Kind: OpCrash, A: 3},
			{Kind: OpPartition, A: 1, B: 5},
			{Kind: OpDup, P: 0.25},
			{Kind: OpStabilize},
			{Kind: OpLossy, A: 6, P: 0.20},
			{Kind: OpRevive, A: 3},
			{Kind: OpClearFaults},
			{Kind: OpHeal},
			{Kind: OpJoin},
			{Kind: OpStabilize},
		},
	})
}

// TestRandomizedSchedule: a short randomized run on a fixed seed, the same
// generator the soak and the fuzzer lean on.
func TestRandomizedSchedule(t *testing.T) {
	rep := run(t, Options{Seed: 7707, RandomSteps: 20})
	if rep.Applied == 0 {
		t.Fatal("randomized schedule applied no steps")
	}
}

// TestDeterministicReplay: the whole harness — workload, schedule,
// injector coin flips, retry jitter — replays bit-identically from a seed,
// which is what makes every logged failure reproducible.
func TestDeterministicReplay(t *testing.T) {
	opts := Options{Seed: 8808, RandomSteps: 15}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
	if len(a.Trace) == 0 {
		t.Fatal("empty trace")
	}
}

// TestScheduleRoundTrip: Encode/Decode round-trips scripted schedules and
// maps arbitrary bytes onto valid steps.
func TestScheduleRoundTrip(t *testing.T) {
	steps := []Step{
		{Kind: OpCrash, A: 3},
		{Kind: OpPartition, A: 1, B: 5},
		{Kind: OpLossy, A: 2, P: 4.0 / 16},
		{Kind: OpDup, P: 2.0 / 16},
		{Kind: OpDelay, A: 6, D: 75 * time.Millisecond},
		{Kind: OpStabilize},
	}
	got := Decode(Encode(steps), 8)
	if !reflect.DeepEqual(steps, got) {
		t.Fatalf("round trip:\n want %v\n got  %v", steps, got)
	}
	// Arbitrary bytes decode to in-range steps.
	junk := []byte{0xff, 0xfe, 0xfd, 0xfc, 0x01, 0x80, 0x7f, 0xff, 0x00}
	for _, s := range Decode(junk, 5) {
		if s.Kind >= opKinds || s.A < 0 || s.A >= 5 || s.B < 0 || s.B >= 5 {
			t.Fatalf("decoded out-of-range step %+v", s)
		}
		if s.P < 0 || s.P > 0.25 || s.D < 0 || s.D > 200*time.Millisecond {
			t.Fatalf("decoded out-of-range params %+v", s)
		}
	}
}

// TestGuardsHoldInvariants: the scheduler refuses steps that would make the
// harness meaningless — crashing the client's node, dropping below the live
// floor, reviving a live node.
func TestGuardsHoldInvariants(t *testing.T) {
	rep := run(t, Options{
		Seed:    9909,
		MinLive: 7, // 8-node cluster: at most one node may be down
		Steps: []Step{
			{Kind: OpCrash, A: 0}, // protected (mount host)
			{Kind: OpCrash, A: 2},
			{Kind: OpCrash, A: 3},           // would drop below MinLive
			{Kind: OpRevive, A: 5},          // not down
			{Kind: OpPartition, A: 0, B: 4}, // touches protected node
			{Kind: OpRevive, A: 2},
		},
	})
	if rep.Applied != 2 || rep.Skipped != 4 {
		t.Fatalf("applied=%d skipped=%d, want 2/4\ntrace: %v", rep.Applied, rep.Skipped, rep.Trace)
	}
}
