// Package chaos is the deterministic fault-injection harness for the Kosha
// reproduction: a seeded scheduler drives a cluster.Cluster through scripted
// or randomized schedules of crashes, revives, joins, asymmetric partitions,
// message loss/duplication, and latency spikes, while an in-memory oracle
// model checks the paper's availability invariants (Section 5, Figures 8-9):
// with at least one live replica, every read returns the acknowledged
// contents, no acknowledged write is lost, and per-subtree replica counts
// re-converge to K after stabilization.
//
// Everything is reproducible from one logged seed: the workload mix, the
// randomized schedule, and the retry backoff jitter inside the nodes all
// derive from it.
package chaos

import (
	"bytes"
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/nfs"
)

// Oracle is the in-memory reference model of the virtual file system. It is
// the exported, error-returning descendant of the model in
// internal/cluster's oracle tests, so fuzzers and experiments can use it
// outside a *testing.T.
type Oracle struct {
	files map[string][]byte // virtual path -> contents
	// history records every value ever acknowledged at a path. While the
	// network is degraded a read may be served by a node holding an older —
	// but previously acknowledged — state; the lenient checks accept those
	// and still catch fabricated or torn contents.
	history map[string]map[string]struct{}
	dirs    map[string]struct{} // virtual dir paths (besides "/")
}

// NewOracle returns an empty model.
func NewOracle() *Oracle {
	return &Oracle{
		files:   map[string][]byte{},
		history: map[string]map[string]struct{}{},
		dirs:    map[string]struct{}{},
	}
}

func (o *Oracle) remember(p string, data []byte) {
	h := o.history[p]
	if h == nil {
		h = map[string]struct{}{}
		o.history[p] = h
	}
	h[string(data)] = struct{}{}
}

// acceptedStale reports whether data was at some point the acknowledged
// contents of p.
func (o *Oracle) acceptedStale(p string, data []byte) bool {
	_, ok := o.history[p][string(data)]
	return ok
}

// MkdirAll records a directory chain.
func (o *Oracle) MkdirAll(p string) {
	parts := core.SplitVirtual(p)
	for i := 1; i <= len(parts); i++ {
		o.dirs[core.JoinVirtual(parts[:i])] = struct{}{}
	}
}

// WriteFile records a file write (creating parents).
func (o *Oracle) WriteFile(p string, data []byte) {
	o.MkdirAll(path.Dir(p))
	o.files[p] = append([]byte(nil), data...)
	o.remember(p, data)
}

// RemoveAll records a subtree removal.
func (o *Oracle) RemoveAll(p string) {
	delete(o.files, p)
	delete(o.dirs, p)
	prefix := p + "/"
	for f := range o.files {
		if strings.HasPrefix(f, prefix) {
			delete(o.files, f)
		}
	}
	for d := range o.dirs {
		if strings.HasPrefix(d, prefix) {
			delete(o.dirs, d)
		}
	}
}

// Rename moves a path (file or subtree) to a new path.
func (o *Oracle) Rename(from, to string) {
	if data, ok := o.files[from]; ok {
		delete(o.files, from)
		o.files[to] = data
		o.remember(to, data)
	}
	if _, ok := o.dirs[from]; ok {
		delete(o.dirs, from)
		o.dirs[to] = struct{}{}
	}
	prefix := from + "/"
	for p, v := range o.files {
		if strings.HasPrefix(p, prefix) {
			delete(o.files, p)
			np := to + strings.TrimPrefix(p, from)
			o.files[np] = v
			o.remember(np, v)
		}
	}
	for d := range o.dirs {
		if strings.HasPrefix(d, prefix) {
			delete(o.dirs, d)
			o.dirs[to+strings.TrimPrefix(d, from)] = struct{}{}
		}
	}
}

// Exists reports whether the model knows the path.
func (o *Oracle) Exists(p string) bool {
	if _, ok := o.files[p]; ok {
		return true
	}
	_, ok := o.dirs[p]
	return ok
}

// FileContent returns the acknowledged contents of p, if the model knows
// the file. The scale soak uses it to judge individual reads inline instead
// of sweeping every file per step.
func (o *Oracle) FileContent(p string) ([]byte, bool) {
	data, ok := o.files[p]
	return data, ok
}

// Files returns the model's file paths in sorted order — the deterministic
// iteration the seeded runner needs.
func (o *Oracle) Files() []string {
	out := make([]string, 0, len(o.files))
	for p := range o.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Dirs returns the model's directory paths in sorted order.
func (o *Oracle) Dirs() []string {
	out := make([]string, 0, len(o.dirs))
	for d := range o.dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// List returns the sorted child names of a directory per the model.
func (o *Oracle) List(dir string) []string {
	seen := map[string]struct{}{}
	prefix := dir + "/"
	if dir == "/" {
		prefix = "/"
	}
	collect := func(p string) {
		if !strings.HasPrefix(p, prefix) || p == dir {
			return
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		if rest != "" {
			seen[rest] = struct{}{}
		}
	}
	for f := range o.files {
		collect(f)
	}
	for d := range o.dirs {
		collect(d)
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CheckFiles verifies every model file reads back with the acknowledged
// contents through m — the per-step invariant ("no write is lost once
// acknowledged; all reads return oracle contents").
func (o *Oracle) CheckFiles(m *core.Mount) error {
	for _, p := range o.Files() {
		got, _, err := m.ReadFile(p)
		if err != nil {
			return fmt.Errorf("read %s: %w", p, err)
		}
		if !bytes.Equal(got, o.files[p]) {
			return fmt.Errorf("content mismatch at %s: got %d bytes, want %d", p, len(got), len(o.files[p]))
		}
	}
	return nil
}

// CheckFilesLenient is CheckFiles for use while message loss or partitions
// degrade the network: a read that fails outright counts as an availability
// miss (the retry budget is finite by design), and a read served by a node
// with an older view may return any *previously acknowledged* contents —
// but contents that were never acknowledged at that path are always a
// safety violation.
func (o *Oracle) CheckFilesLenient(m *core.Mount) (missed int, err error) {
	for _, p := range o.Files() {
		got, _, rerr := m.ReadFile(p)
		if rerr != nil {
			missed++
			continue
		}
		if bytes.Equal(got, o.files[p]) {
			continue
		}
		if o.acceptedStale(p, got) {
			missed++
			continue
		}
		return missed, fmt.Errorf("fabricated contents at %s: got %d bytes, never acknowledged", p, len(got))
	}
	return missed, nil
}

// Check verifies files, directory listings, and the absence of removed
// paths — the full convergence invariant used at checkpoints.
func (o *Oracle) Check(m *core.Mount) error {
	if err := o.CheckFiles(m); err != nil {
		return err
	}
	for _, d := range append([]string{"/"}, o.Dirs()...) {
		vh, attr, _, err := m.LookupPath(d)
		if err != nil {
			return fmt.Errorf("lookup dir %s: %w", d, err)
		}
		if attr.Type != localfs.TypeDir {
			return fmt.Errorf("%s resolved to non-directory", d)
		}
		ents, _, err := m.Readdir(vh)
		if err != nil {
			return fmt.Errorf("readdir %s: %w", d, err)
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name)
		}
		sort.Strings(names)
		if got, want := strings.Join(names, ","), strings.Join(o.List(d), ","); got != want {
			return fmt.Errorf("listing of %s: got [%s], want [%s]", d, got, want)
		}
	}
	for _, probe := range []string{"/chaos-ghost", "/d0/chaos-ghost"} {
		if o.Exists(probe) {
			continue
		}
		if _, _, _, err := m.LookupPath(probe); !nfs.IsStatus(err, nfs.ErrNoEnt) {
			return fmt.Errorf("deleted path %s still resolvable (err=%v)", probe, err)
		}
	}
	return nil
}
