package chaos

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/simnet"
)

// TestScenarioHolderCrashMidPromoteFetch exercises the swarm-repair
// fallback chain: a primary dies while its successor's replica is stale by
// one edit in a big file, so the promote runs a block-level pull repair —
// and the first holder to serve a batch crashes mid-fetch. The repair must
// ride out the dead holder (retry, local chunk reuse, and finally a re-run
// of the adopt against the surviving fresh copy) without losing a single
// acknowledged byte, and the replica set must re-converge after revival.
func TestScenarioHolderCrashMidPromoteFetch(t *testing.T) {
	const (
		seed     = 7707
		replicas = 3
		blobSize = 4 << 20
	)
	c, err := cluster.New(cluster.Options{
		Nodes: 8,
		Seed:  seed,
		Config: core.Config{
			Replicas:     replicas,
			AttrCacheTTL: -1,
			NameCacheTTL: -1,
			RingCacheTTL: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	byAddr := map[simnet.Addr]int{}
	for i, nd := range c.Nodes {
		byAddr[nd.Addr()] = i
	}

	m := c.Mount(0)
	model := NewOracle()
	blob := make([]byte, blobSize)
	s := uint64(seed)
	for i := range blob {
		s = s*6364136223846793005 + 1442695040888963407
		blob[i] = byte(s >> 33)
	}
	write := func(p string, data []byte) {
		t.Helper()
		if _, err := m.WriteFile(p, data); err != nil {
			t.Fatalf("write %s: %v", p, err)
		}
		model.WriteFile(p, data)
	}
	for i := 0; i < 4; i++ {
		write(fmt.Sprintf("/fjob/file%02d", i), []byte(fmt.Sprintf("small-%02d", i)))
	}
	write("/fjob/blob.bin", blob)
	c.Stabilize()
	if err := ReplicaConvergence(c, model, replicas); err != nil {
		t.Fatalf("replicas not converged before fault: %v", err)
	}

	place, _, err := c.Nodes[0].ResolvePath("/fjob")
	if err != nil {
		t.Fatal(err)
	}
	primary := place.Node
	pi, ok := byAddr[primary]
	if !ok {
		t.Fatalf("primary %s not in cluster", primary)
	}
	cands := c.Nodes[pi].Overlay().ReplicaCandidates(replicas)
	if len(cands) < 2 {
		t.Fatalf("primary has %d replica candidates, want >= 2", len(cands))
	}
	// The candidate closest to the tree's key inherits the root when the
	// primary dies; leave that one stale so the promote must pull-repair,
	// while the other candidates keep the fresh copy it repairs from.
	ids := make([]id.ID, len(cands))
	for i, cd := range cands {
		ids[i] = cd.ID
	}
	best, _ := id.Closest(core.Key(place.Name), ids)
	succ := cands[0].Addr
	for _, cd := range cands {
		if cd.ID == best {
			succ = cd.Addr
		}
	}

	// One edit in the big file lands while the successor is unreachable:
	// acknowledged by the primary, mirrored to the other candidates, and
	// dropped on the way to the successor. The edit goes through a client
	// outside the partitioned pair, so the write itself routes normally.
	editor := -1
	for i, nd := range c.Nodes {
		if i != pi && nd.Addr() != succ {
			editor = i
			break
		}
	}
	em := c.Mount(editor)
	c.Net.SetPartition(func(a, b simnet.Addr) bool {
		return (a == primary && b == succ) || (a == succ && b == primary)
	})
	edited := append([]byte(nil), blob...)
	copy(edited[blobSize/2:], "EDITED-SIXTEEN-B")
	if _, err := em.WriteFile("/fjob/blob.bin", edited); err != nil {
		t.Fatalf("edit: %v", err)
	}
	model.WriteFile("/fjob/blob.bin", edited)
	// The successor must now be demonstrably stale — otherwise the promote
	// below has nothing to repair and the test passes vacuously.
	blobPhys := joinPhys(place.PhysDir(), "blob.bin")
	if got, err := c.Nodes[byAddr[succ]].Store().ReadFile(core.RepPath(blobPhys)); err != nil {
		t.Fatalf("successor lost its replica copy: %v", err)
	} else if bytes.Equal(got, edited) {
		t.Fatal("successor unexpectedly received the edit through the partition")
	}

	// Arm the fault: the first holder to answer a CHUNK_FETCH dies on the
	// spot, mid-fetch, batches still owed.
	var mu sync.Mutex
	crashed := -1
	for _, nd := range c.Nodes {
		nd.Repl().SetFetchHook(func(holder simnet.Addr, blocks int) {
			mu.Lock()
			defer mu.Unlock()
			if crashed >= 0 {
				return
			}
			if hi, ok := byAddr[holder]; ok {
				crashed = hi
				c.Fail(hi)
			}
		})
	}

	c.Fail(pi)
	c.Net.SetPartition(nil)
	c.Stabilize()

	if crashed < 0 {
		t.Fatal("no block fetch ran: the promote did not exercise the pull-repair path")
	}
	if crashed == pi || c.Nodes[crashed].Addr() == succ {
		t.Fatalf("fetch hook crashed %s, expected a serving holder", c.Nodes[crashed].Addr())
	}

	// The acknowledged edit must be readable from the survivors even before
	// the dead nodes return.
	alive := -1
	for i := range c.Nodes {
		if i != pi && i != crashed {
			alive = i
			break
		}
	}
	got, _, err := c.Mount(alive).ReadFile("/fjob/blob.bin")
	if err != nil {
		t.Fatalf("read blob after promote: %v", err)
	}
	if !bytes.Equal(got, edited) {
		t.Fatalf("promote lost the acknowledged edit: got %d bytes", len(got))
	}

	// Revive the dead, settle, and hold the full steady-state invariants.
	if err := c.Revive(pi); err != nil {
		t.Fatalf("revive primary: %v", err)
	}
	if err := c.Revive(crashed); err != nil {
		t.Fatalf("revive holder: %v", err)
	}
	c.Stabilize()
	mchk := c.Mount(0)
	if err := model.Check(mchk); err != nil {
		t.Fatalf("post-heal oracle check: %v", err)
	}
	if err := ReplicaConvergence(c, model, replicas); err != nil {
		t.Fatalf("post-heal replica convergence: %v", err)
	}
}
