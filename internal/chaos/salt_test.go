package chaos

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simnet"
)

// TestSaltedRedirectStaleMidSync closes the ROADMAP-flagged gap: a
// `#salt`-redirected directory whose replicas go stale mid-sync. The plain
// placement target is filled past the utilization limit so mkdir redirects
// the subtree to a salted name on another node; then a one-way partition
// cuts the salted primary off from its replica set while SyncReplicas runs
// and the workload keeps overwriting — the replicas are left holding stale
// Merkle state. After the heal, one stabilization pass must re-converge
// every replica digest to the acknowledged contents.
func TestSaltedRedirectStaleMidSync(t *testing.T) {
	const (
		seed     = 5511
		capacity = 1 << 20
		replicas = 2
	)
	c, err := cluster.New(cluster.Options{
		Nodes: 8,
		Seed:  seed,
		Config: core.Config{
			Replicas:     replicas,
			AttrCacheTTL: -1,
			NameCacheTTL: -1,
			Capacity:     capacity,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fill the plain placement target of "proj" past the utilization limit
	// (0.85 default) so the mkdir below must redirect.
	res, err := c.Nodes[0].Overlay().Route(core.Key(core.Salted("proj", 0)))
	if err != nil {
		t.Fatal(err)
	}
	fullAddr := res.Node.Addr
	var fullNode *core.Node
	for _, nd := range c.Nodes {
		if nd.Addr() == fullAddr {
			fullNode = nd
		}
	}
	blob := make([]byte, 64<<10)
	for i := 0; fullNode.Store().Utilization() < 0.9; i++ {
		if err := fullNode.Store().WriteFile(fmt.Sprintf("/fill/blob%02d", i), blob); err != nil {
			t.Fatalf("fill %s: %v", fullAddr, err)
		}
	}

	m := c.Mount(0)
	model := NewOracle()
	if _, _, err := m.MkdirAll("/proj"); err != nil {
		t.Fatalf("mkdir /proj: %v", err)
	}
	model.MkdirAll("/proj")
	place, _, err := c.Nodes[0].ResolvePath("/proj")
	if err != nil {
		t.Fatal(err)
	}
	if !core.IsSalted(place.Name) {
		t.Fatalf("placement %q not salted: the full node did not force a redirect", place.Name)
	}
	if place.Node == fullAddr {
		t.Fatalf("salted subtree still landed on the full node %s", fullAddr)
	}

	// Seed the subtree with v1 contents and let replication settle.
	writeAll := func(version byte) {
		for i := 0; i < 6; i++ {
			p := fmt.Sprintf("/proj/file%02d", i)
			data := append([]byte(fmt.Sprintf("v%d:%s:", version, p)), make([]byte, 2048)...)
			if _, err := m.WriteFile(p, data); err != nil {
				t.Fatalf("write %s: %v", p, err)
			}
			model.WriteFile(p, data)
		}
	}
	writeAll(1)
	c.Stabilize()
	if err := ReplicaConvergence(c, model, replicas); err != nil {
		t.Fatalf("replicas not converged before fault: %v", err)
	}

	// One-way partition: the salted primary can be reached (the client's
	// writes keep landing and keep being acknowledged) but cannot reach
	// anyone, so its replication fan-out and its SyncReplicas pushes die.
	primary := place.Node
	c.Net.SetPartition(func(a, b simnet.Addr) bool { return a == primary })
	for _, nd := range c.Nodes {
		if nd.Addr() == primary {
			nd.SyncReplicas() // mid-sync: every push fails, replicas stay at v1
		}
	}
	writeAll(2)

	// The replica set must now be demonstrably stale — otherwise this test
	// would pass vacuously without exercising the resync path.
	if err := ReplicaConvergence(c, model, replicas); err == nil {
		t.Fatal("replicas unexpectedly converged while the primary was partitioned")
	}

	// Heal and stabilize: digests must re-converge to the acknowledged v2.
	c.Net.SetPartition(nil)
	c.Stabilize()
	if err := model.Check(m); err != nil {
		t.Fatalf("post-heal oracle check: %v", err)
	}
	if err := ReplicaConvergence(c, model, replicas); err != nil {
		t.Fatalf("post-heal replica convergence: %v", err)
	}
}
