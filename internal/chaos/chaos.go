package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// Scheduler applies Steps to a live cluster, owning the composed fault state
// (one-way partitions, per-node loss/latency, network-wide duplication) it
// installs into the cluster's simnet via SetPartition and SetFaults.
//
// Probabilistic decisions inside the injector draw from a seeded splitmix64
// stream guarded by the same mutex as the fault tables, so a single-threaded
// harness run is exactly reproducible from its seed.
type Scheduler struct {
	C *cluster.Cluster

	mu     sync.Mutex
	oneway map[[2]simnet.Addr]bool
	lossy  map[simnet.Addr]float64
	delay  map[simnet.Addr]simnet.Cost
	dupP   float64
	state  uint64 // splitmix64 state for injector coin flips

	// Protected marks node indices that must never be crashed, partitioned,
	// or degraded — the client-hosting nodes whose koshad the oracle reads
	// through (a dead client machine is not a Kosha failure mode).
	Protected map[int]bool
	// MinLive bounds how many nodes guarded Apply calls may leave alive.
	MinLive int
}

// NewScheduler wires a scheduler to a cluster and installs its (initially
// empty) partition predicate and fault injector.
func NewScheduler(c *cluster.Cluster, seed uint64, protected ...int) *Scheduler {
	s := &Scheduler{
		C:         c,
		oneway:    map[[2]simnet.Addr]bool{},
		lossy:     map[simnet.Addr]float64{},
		delay:     map[simnet.Addr]simnet.Cost{},
		state:     seed ^ 0x6a09e667f3bcc909,
		Protected: map[int]bool{},
		MinLive:   3,
	}
	for _, i := range protected {
		s.Protected[i] = true
	}
	c.Net.SetPartition(s.blocked)
	c.Net.SetFaults(s.inject)
	return s
}

// Close clears the scheduler's hooks from the network.
func (s *Scheduler) Close() {
	s.C.Net.SetPartition(nil)
	s.C.Net.SetFaults(nil)
}

func (s *Scheduler) splitmix64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance flips a deterministic coin with probability p (mutex held).
func (s *Scheduler) chance(p float64) bool {
	return float64(s.splitmix64()>>11)/(1<<53) < p
}

// blocked is the partition predicate installed into the network.
func (s *Scheduler) blocked(a, b simnet.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oneway[[2]simnet.Addr{a, b}]
}

// inject is the fault injector installed into the network.
func (s *Scheduler) inject(from, to simnet.Addr, service string) simnet.LinkFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	var f simnet.LinkFault
	p := s.lossy[from]
	if q := s.lossy[to]; q > p {
		p = q
	}
	if p > 0 && s.chance(p) {
		f.Drop = true
	}
	if s.dupP > 0 && s.chance(s.dupP) {
		f.Dup = true
	}
	if d := s.delay[from] + s.delay[to]; d > 0 {
		f.Delay = d
	}
	return f
}

// Down reports whether node i is currently crashed.
func (s *Scheduler) Down(i int) bool {
	return s.C.Net.IsDown(s.C.Nodes[i].Addr())
}

// liveCount counts nodes currently up.
func (s *Scheduler) liveCount() int {
	n := 0
	for i := range s.C.Nodes {
		if !s.Down(i) {
			n++
		}
	}
	return n
}

// Apply executes one step against the cluster. Steps that would violate the
// guards — crashing a protected or already-down node, dropping below
// MinLive, reviving a live node, degrading a protected node's links — are
// skipped and reported as such, which keeps randomized and fuzzed schedules
// safe without making them unrepresentable.
func (s *Scheduler) Apply(st Step) (applied bool, desc string, err error) {
	desc = st.String()
	n := len(s.C.Nodes)
	if n == 0 {
		return false, desc, fmt.Errorf("chaos: empty cluster")
	}
	idx := func(i int) int { return ((i % n) + n) % n }
	switch st.Kind {
	case OpCrash:
		a := idx(st.A)
		if s.Protected[a] || s.Down(a) || s.liveCount() <= s.MinLive {
			return false, desc + " (skipped)", nil
		}
		// Crashing while loss or partitions impede replication could destroy
		// the last copy of a subtree whose repair never went through — that
		// violates the invariant's "at least one live replica" precondition,
		// not Kosha. Crashes only fire on a repair-capable network.
		if s.LossActive() || s.PartitionActive() {
			return false, desc + " (skipped: repair impeded)", nil
		}
		s.C.Fail(a)
	case OpRevive:
		a := idx(st.A)
		if !s.Down(a) {
			return false, desc + " (skipped)", nil
		}
		if err := s.C.Revive(a); err != nil {
			if s.LossActive() || s.PartitionActive() {
				// The rejoin handshake itself fell to injected faults; put
				// the node back down (its store is purged either way) and
				// let a later step retry.
				s.C.Net.SetDown(s.C.Nodes[a].Addr(), true)
				return false, desc + " (skipped: rejoin failed under faults)", nil
			}
			return false, desc, fmt.Errorf("chaos: %s: %w", desc, err)
		}
	case OpJoin:
		// Joining through a degraded or partitioned network can legitimately
		// fail; schedules only grow the cluster on a clean network, and never
		// without bound (fuzzed schedules may be join-heavy).
		if s.LossActive() || s.PartitionActive() || n >= 16 {
			return false, desc + " (skipped)", nil
		}
		if _, err := s.C.AddNode(); err != nil {
			return false, desc, fmt.Errorf("chaos: join: %w", err)
		}
	case OpPartition:
		a, b := idx(st.A), idx(st.B)
		if a == b || s.Protected[a] || s.Protected[b] {
			return false, desc + " (skipped)", nil
		}
		s.mu.Lock()
		s.oneway[[2]simnet.Addr{s.C.Nodes[a].Addr(), s.C.Nodes[b].Addr()}] = true
		s.mu.Unlock()
	case OpHeal:
		s.mu.Lock()
		s.oneway = map[[2]simnet.Addr]bool{}
		s.mu.Unlock()
	case OpLossy:
		a := idx(st.A)
		if s.Protected[a] {
			return false, desc + " (skipped)", nil
		}
		s.mu.Lock()
		if st.P <= 0 {
			delete(s.lossy, s.C.Nodes[a].Addr())
		} else {
			s.lossy[s.C.Nodes[a].Addr()] = st.P
		}
		s.mu.Unlock()
	case OpDup:
		s.mu.Lock()
		s.dupP = st.P
		s.mu.Unlock()
	case OpDelay:
		a := idx(st.A)
		s.mu.Lock()
		if st.D <= 0 {
			delete(s.delay, s.C.Nodes[a].Addr())
		} else {
			s.delay[s.C.Nodes[a].Addr()] = simnet.Cost(st.D)
		}
		s.mu.Unlock()
	case OpClearFaults:
		s.mu.Lock()
		s.lossy = map[simnet.Addr]float64{}
		s.delay = map[simnet.Addr]simnet.Cost{}
		s.dupP = 0
		s.mu.Unlock()
	case OpStabilize:
		s.C.Stabilize()
	default:
		return false, desc, fmt.Errorf("chaos: unknown op %d", st.Kind)
	}
	return true, desc, nil
}

// LossActive reports whether any message-drop injection is in force — the
// one fault class that can surface as an operation failure even through the
// retry budget, which is what separates strict from lenient oracle checks.
func (s *Scheduler) LossActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lossy) > 0
}

// PartitionActive reports whether any one-way partition is installed.
func (s *Scheduler) PartitionActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.oneway) > 0
}

// SuspendLoss lifts message-drop injection and returns a closure restoring
// it. The runner uses this to re-issue an operation whose first attempt
// failed under loss, so the model and the cluster agree on whether the
// operation was acknowledged.
func (s *Scheduler) SuspendLoss() (restore func()) {
	s.mu.Lock()
	saved := s.lossy
	s.lossy = map[simnet.Addr]float64{}
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.lossy = saved
		s.mu.Unlock()
	}
}

// Quiesce removes all injected faults and partitions, revives every downed
// node, and stabilizes — the precondition for the replica re-convergence
// invariant.
func (s *Scheduler) Quiesce() error {
	s.mu.Lock()
	s.oneway = map[[2]simnet.Addr]bool{}
	s.lossy = map[simnet.Addr]float64{}
	s.delay = map[simnet.Addr]simnet.Cost{}
	s.dupP = 0
	s.mu.Unlock()
	for i := range s.C.Nodes {
		if s.Down(i) {
			if err := s.C.Revive(i); err != nil {
				return fmt.Errorf("chaos: quiesce revive %d: %w", i, err)
			}
		}
	}
	s.C.Stabilize()
	s.C.Stabilize()
	return nil
}

// RandomStep draws one guarded random step from r. The mix leans on churn
// (crash/revive/stabilize) with a sprinkling of link faults, mirroring the
// paper's availability experiment where nodes die and rejoin while the file
// system stays in use.
func (s *Scheduler) RandomStep(r *rand.Rand) Step {
	n := len(s.C.Nodes)
	pick := func() int { return r.Intn(n) }
	switch r.Intn(10) {
	case 0, 1:
		return Step{Kind: OpCrash, A: pick()}
	case 2, 3:
		// Prefer reviving a known-down node when one exists.
		for i := range s.C.Nodes {
			if s.Down(i) {
				return Step{Kind: OpRevive, A: i}
			}
		}
		return Step{Kind: OpStabilize}
	case 4:
		return Step{Kind: OpPartition, A: pick(), B: pick()}
	case 5:
		return Step{Kind: OpHeal}
	case 6:
		return Step{Kind: OpLossy, A: pick(), P: 0.05 + 0.2*r.Float64()}
	case 7:
		return Step{Kind: OpDup, P: 0.1 + 0.3*r.Float64()}
	case 8:
		return Step{Kind: OpDelay, A: pick(), D: time.Duration(1+r.Intn(8)) * 25 * time.Millisecond}
	default:
		return Step{Kind: OpClearFaults}
	}
}
