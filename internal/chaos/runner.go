package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"path"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/simnet"
)

// dbgHook, when set by a test, receives the cluster just before Run returns
// an invariant-violation error, for post-mortem state dumps.
var dbgHook func(*cluster.Cluster)

// Options configures one harness run. Everything observable — node
// identifiers, workload mix, randomized schedule, injector coin flips, retry
// jitter inside the nodes — derives from Seed, so a failing run reproduces
// from the one number the error message carries.
type Options struct {
	Nodes             int   // cluster size (default 8)
	Replicas          int   // K (default 2); pass -1 for none
	DistributionLevel int   // Kosha distribution level (default 1)
	Seed              int64 // master seed; logged on failure

	// Mounts lists the node indices hosting client mounts. These nodes are
	// protected from crash/partition/degradation: a dead client machine is
	// an NFS client failure, not a Kosha failure mode. Default {0}.
	Mounts []int

	// Steps is the scripted schedule. Nil means RandomSteps randomized steps
	// drawn from the seeded generator.
	Steps       []Step
	RandomSteps int // default 40 (used only when Steps == nil)

	OpsPerStep     int // workload operations between chaos steps (default 4)
	MinLive        int // floor on live nodes (default Replicas+2)
	FullCheckEvery int // full listing check cadence in steps (default 8)

	// WriteBackBytes enables client write-back buffering (core.Config's
	// knob). Mount.WriteFile flushes before acknowledging, so the oracle's
	// acked-history invariants are judged on durable data, not buffers.
	WriteBackBytes int

	// Maint enables the background maintenance subsystem on every node: the
	// anti-entropy scrub always, plus the capacity rebalancer when
	// MaintRebalance is also set. The runner ticks every live node once per
	// chaos step in index order, so maintenance traffic interleaves with the
	// workload as one seed-determined sequence.
	Maint          bool
	MaintRebalance bool

	// Logf, when set, receives the trace live (e.g. t.Logf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.Replicas == 0 {
		o.Replicas = 2
	}
	if len(o.Mounts) == 0 {
		o.Mounts = []int{0}
	}
	if o.RandomSteps == 0 {
		o.RandomSteps = 40
	}
	if o.OpsPerStep == 0 {
		o.OpsPerStep = 4
	}
	if o.MinLive == 0 {
		o.MinLive = o.Replicas + 2
		if o.MinLive < 3 {
			o.MinLive = 3
		}
	}
	if o.FullCheckEvery == 0 {
		o.FullCheckEvery = 8
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Report summarizes a run for availability accounting and failure triage.
type Report struct {
	Seed       int64
	Ops        int // workload operations issued
	FailedOps  int // first attempts that failed (availability misses)
	CheckReads int // oracle read-backs performed during checks
	CheckMiss  int // oracle read-backs lost to injected faults (lenient mode)
	Applied    int // chaos steps applied
	Skipped    int // chaos steps skipped by guards
	Trace      []string

	// Maintenance totals across all nodes (populated when Options.Maint is
	// set): scrub rounds run, divergences detected and repaired, rebalance
	// moves completed and bytes migrated. Part of the report so determinism
	// tests replay maintenance activity along with the workload.
	ScrubRounds    uint64
	ScrubDiverged  uint64
	ScrubRepaired  uint64
	RebalanceMoves uint64
	RebalanceBytes uint64
}

// Availability is the fraction of workload operations whose first attempt
// succeeded.
func (r *Report) Availability() float64 {
	if r.Ops == 0 {
		return 1
	}
	return 1 - float64(r.FailedOps)/float64(r.Ops)
}

// Run builds a cluster, drives the seeded workload interleaved with the
// fault schedule, checks the oracle invariants after every step, then
// quiesces and verifies full convergence (contents, listings, ghosts, and
// per-subtree replica counts back at K). Any returned error embeds the seed.
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	rep := &Report{Seed: o.Seed}
	fail := func(format string, args ...any) (*Report, error) {
		return rep, fmt.Errorf("chaos seed %d: %s", o.Seed, fmt.Sprintf(format, args...))
	}

	// Client metadata caches are wall-clock-TTL-driven; under the harness
	// they are disabled so a run's RPC sequence — and with it every injector
	// coin flip — is a pure function of the seed, and so every read is a
	// strict-consistency observation the oracle can judge.
	cfg := core.Config{
		Replicas:          o.Replicas,
		DistributionLevel: o.DistributionLevel,
		AttrCacheTTL:      -1,
		NameCacheTTL:      -1,
		RingCacheTTL:      -1,
		WriteBackBytes:    o.WriteBackBytes,
		MaintScrub:        o.Maint,
		MaintRebalance:    o.Maint && o.MaintRebalance,
	}
	c, err := cluster.New(cluster.Options{Nodes: o.Nodes, Seed: uint64(o.Seed), Config: cfg})
	if err != nil {
		return fail("build cluster: %v", err)
	}
	if dbgHook != nil {
		prev := fail
		fail = func(format string, args ...any) (*Report, error) {
			dbgHook(c)
			return prev(format, args...)
		}
	}
	s := NewScheduler(c, uint64(o.Seed), o.Mounts...)
	defer s.Close()
	s.MinLive = o.MinLive

	r := rand.New(rand.NewSource(o.Seed))
	model := NewOracle()
	mounts := make([]*core.Mount, len(o.Mounts))
	for i, n := range o.Mounts {
		if n < 0 || n >= len(c.Nodes) {
			return fail("mount index %d out of range", n)
		}
		mounts[i] = c.Mount(n)
	}

	trace := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		rep.Trace = append(rep.Trace, line)
		o.Logf("%s", line)
	}

	randPath := func() string {
		depth := 1 + r.Intn(3)
		parts := make([]string, depth)
		for i := range parts {
			parts[i] = fmt.Sprintf("d%d", r.Intn(3))
		}
		return core.JoinVirtual(parts)
	}

	// acked runs one mutating operation. A first attempt that fails under
	// injected loss is an availability miss, not a verdict: the runner lifts
	// the drop faults and re-issues the (idempotent) operation, so by the
	// time the model records it the operation really is acknowledged.
	acked := func(desc string, op func() error) error {
		rep.Ops++
		err := op()
		if err == nil {
			return nil
		}
		rep.FailedOps++
		restore := s.SuspendLoss()
		defer restore()
		if err2 := op(); err2 != nil {
			return fmt.Errorf("%s: %v (first attempt: %v)", desc, err2, err)
		}
		trace("%s: acked on retry after loss (%v)", desc, err)
		return nil
	}

	// readback reads one known file and judges it against the model,
	// tolerating misses and previously-acknowledged staleness only while the
	// network is degraded.
	readback := func() error {
		files := model.Files()
		if len(files) == 0 {
			return nil
		}
		p := files[r.Intn(len(files))]
		rep.Ops++
		got, _, err := mounts[r.Intn(len(mounts))].ReadFile(p)
		degraded := s.LossActive() || s.PartitionActive()
		if err != nil {
			if degraded {
				rep.FailedOps++
				return nil
			}
			return fmt.Errorf("readback %s: %v", p, err)
		}
		if bytes.Equal(got, model.files[p]) {
			return nil
		}
		if degraded && model.acceptedStale(p, got) {
			rep.FailedOps++
			return nil
		}
		return fmt.Errorf("readback %s: wrong contents (%d bytes, want %d)", p, len(got), len(model.files[p]))
	}

	// workload performs one random file-system operation against a random
	// mount, keeping the model in lockstep. While message loss or partitions
	// can move subtree ownership on false suspicion, the workload is
	// read-only: Kosha's last-writer-wins version arbitration assumes
	// fail-stop nodes (the paper's model), so writes acknowledged by a
	// minority view could be legitimately discarded on heal — an invariant
	// the harness must not pretend holds. Reads keep flowing and are judged
	// leniently; crash, duplication, and delay faults see the full mix.
	workload := func(step int) error {
		if s.LossActive() || s.PartitionActive() {
			return readback()
		}
		m := mounts[r.Intn(len(mounts))]
		switch r.Intn(8) {
		case 0, 1, 2: // write (create or overwrite)
			p := randPath() + fmt.Sprintf("/f%d", r.Intn(5))
			data := make([]byte, r.Intn(1500))
			r.Read(data)
			if err := acked(fmt.Sprintf("write %s", p), func() error {
				_, err := m.WriteFile(p, data)
				return err
			}); err != nil {
				return err
			}
			model.WriteFile(p, data)
		case 3: // mkdir
			p := randPath()
			if err := acked(fmt.Sprintf("mkdir %s", p), func() error {
				_, _, err := m.MkdirAll(p)
				return err
			}); err != nil {
				return err
			}
			model.MkdirAll(p)
		case 4: // remove subtree
			p := randPath()
			if !model.Exists(p) {
				return nil
			}
			if err := acked(fmt.Sprintf("rm %s", p), func() error {
				_, err := m.RemoveAllPath(p)
				if nfs.IsStatus(err, nfs.ErrNoEnt) {
					// The earlier (lost-looking) attempt had removed it.
					return nil
				}
				return err
			}); err != nil {
				return err
			}
			model.RemoveAll(p)
		case 5, 6: // read-back of a known file
			return readback()
		case 7: // rename within the same parent
			p := randPath()
			if !model.Exists(p) {
				return nil
			}
			parts := core.SplitVirtual(p)
			parent := core.JoinVirtual(parts[:len(parts)-1])
			newName := fmt.Sprintf("rn%d", step)
			rep.Ops++
			parentVH, _, _, err := m.LookupPath(parent)
			if err != nil {
				return fmt.Errorf("rename lookup %s: %v", parent, err)
			}
			if _, err := m.Rename(parentVH, parts[len(parts)-1], parentVH, newName); err != nil {
				return fmt.Errorf("rename %s: %v", p, err)
			}
			model.Rename(p, path.Join(parent, newName))
		}
		return nil
	}

	// Prepopulate so the very first chaos step has acknowledged state to
	// threaten.
	for i := 0; i < 3; i++ {
		p := fmt.Sprintf("/d%d/seed", i)
		if _, err := mounts[0].WriteFile(p, []byte(fmt.Sprintf("seed-%d", i))); err != nil {
			return fail("prepopulate %s: %v", p, err)
		}
		model.WriteFile(p, []byte(fmt.Sprintf("seed-%d", i)))
	}
	c.Stabilize()

	steps := o.Steps
	if steps == nil {
		steps = make([]Step, o.RandomSteps)
		for i := range steps {
			steps[i] = s.RandomStep(r)
		}
	}

	for i, st := range steps {
		for k := 0; k < o.OpsPerStep; k++ {
			if err := workload(i*o.OpsPerStep + k); err != nil {
				return fail("step %d workload: %v", i, err)
			}
		}
		applied, desc, err := s.Apply(st)
		if err != nil {
			return fail("step %d apply: %v", i, err)
		}
		if applied {
			rep.Applied++
		} else {
			rep.Skipped++
		}
		trace("step %d: %s", i, desc)
		// A crash is always followed by stabilization so replica repair
		// restores K copies before the schedule may take another node: the
		// oracle invariant assumes at least one live replica per subtree.
		// Likewise after healing a degraded network — writes acknowledged
		// during the outage may sit on their primary alone until replica
		// synchronization pushes them out.
		if applied && (st.Kind == OpCrash || st.Kind == OpHeal || st.Kind == OpClearFaults) {
			c.Stabilize()
		}
		// One maintenance round per step, every live node in index order:
		// scrub exchanges and rebalance moves run between workload bursts
		// exactly where a real deployment's low-rate timers would, and the
		// fixed order keeps the run a pure function of the seed.
		if o.Maint {
			for j := range c.Nodes {
				if !s.Down(j) {
					c.Nodes[j].Maint().Tick()
				}
			}
		}

		m := mounts[i%len(mounts)]
		rep.CheckReads += len(model.Files())
		if s.LossActive() || s.PartitionActive() {
			missed, err := model.CheckFilesLenient(m)
			if err != nil {
				return fail("step %d check (lenient): %v", i, err)
			}
			rep.CheckMiss += missed
		} else if (i+1)%o.FullCheckEvery == 0 {
			if err := model.Check(m); err != nil {
				return fail("step %d full check: %v", i, err)
			}
		} else {
			if err := model.CheckFiles(m); err != nil {
				return fail("step %d check: %v", i, err)
			}
		}
	}

	// Dirty write-back buffers must land before the oracle's final
	// read-backs. A no-op under the default write-through configuration.
	for i, m := range mounts {
		if _, err := m.FlushAll(); err != nil {
			return fail("flush mount %d: %v", i, err)
		}
	}
	if err := s.Quiesce(); err != nil {
		return fail("quiesce: %v", err)
	}
	for i, m := range mounts {
		if err := model.Check(m); err != nil {
			return fail("final check mount %d: %v", i, err)
		}
	}
	if err := ReplicaConvergence(c, model, o.Replicas); err != nil {
		return fail("replica convergence: %v", err)
	}
	if o.Maint {
		for _, nd := range c.Nodes {
			reg := nd.Obs()
			rep.ScrubRounds += reg.Counter("maint.scrub.rounds").Load()
			rep.ScrubDiverged += reg.Counter("maint.scrub.divergences").Load()
			rep.ScrubRepaired += reg.Counter("maint.scrub.repaired").Load()
			rep.RebalanceMoves += reg.Counter("maint.rebalance.moves").Load()
			rep.RebalanceBytes += reg.Counter("maint.rebalance.bytes").Load()
		}
	}
	return rep, nil
}

// ReplicaConvergence verifies the paper's steady-state replication invariant
// (Section 4.2): after quiescence, every model file is held by its current
// primary in the primary namespace and by each of the primary's K leaf-set
// replica candidates in the replica area. Call only on a healed, stabilized
// cluster.
func ReplicaConvergence(c *cluster.Cluster, model *Oracle, k int) error {
	if k <= 0 || len(c.Nodes) == 0 {
		return nil
	}
	byAddr := map[simnet.Addr]*core.Node{}
	for _, nd := range c.Nodes {
		byAddr[nd.Addr()] = nd
	}
	resolver := c.Nodes[0]
	type rootKey struct {
		primary simnet.Addr
		root    string
	}
	checkedRoots := map[rootKey]bool{}
	for _, f := range model.Files() {
		want := model.files[f]
		pl, _, err := resolver.ResolvePath(path.Dir(f))
		if err != nil {
			return fmt.Errorf("resolve %s: %w", f, err)
		}
		if pl.VRoot {
			continue
		}
		primary := byAddr[pl.Node]
		if primary == nil {
			return fmt.Errorf("resolve %s: unknown primary %s", f, pl.Node)
		}
		phys := joinPhys(pl.PhysDir(), path.Base(f))
		got, err := primary.Store().ReadFile(phys)
		if err != nil {
			return fmt.Errorf("primary %s lost %s (%s): %v", pl.Node, f, phys, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("primary %s holds stale %s (%d bytes, want %d)", pl.Node, f, len(got), len(want))
		}
		cands := primary.Overlay().ReplicaCandidates(k)
		if want, have := k, len(cands); have < want && have < len(c.Nodes)-1 {
			return fmt.Errorf("primary %s has %d replica candidates, want %d", pl.Node, have, want)
		}
		for _, rc := range cands {
			repNode := byAddr[rc.Addr]
			if repNode == nil {
				return fmt.Errorf("candidate %s for %s not in cluster", rc.Addr, f)
			}
			got, err := repNode.Store().ReadFile(core.RepPath(phys))
			if err != nil {
				return fmt.Errorf("replica %s missing %s (%s): %v", rc.Addr, f, core.RepPath(phys), err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("replica %s holds stale %s (%d bytes, want %d)", rc.Addr, f, len(got), len(want))
			}
		}

		// Beyond per-file bytes: every replica's copy of the whole hierarchy
		// must be byte-identical to the primary's, which the Merkle root
		// digests certify in one comparison per (primary, root) pair.
		root := pl.SubtreeRoot()
		if root == "/" || root == "" || checkedRoots[rootKey{pl.Node, root}] {
			continue
		}
		checkedRoots[rootKey{pl.Node, root}] = true
		ptd := primary.Repl().DigestLocal(root)
		if !ptd.Exists {
			return fmt.Errorf("primary %s has no subtree at %s", pl.Node, root)
		}
		if ptd.Flag {
			return fmt.Errorf("primary %s left the migration sentinel at %s", pl.Node, root)
		}
		for _, rc := range cands {
			rtd := byAddr[rc.Addr].Repl().DigestLocal(core.RepPath(root))
			if !rtd.Exists {
				return fmt.Errorf("replica %s holds no copy of %s", rc.Addr, root)
			}
			if rtd.Flag {
				return fmt.Errorf("replica %s stuck mid-migration at %s", rc.Addr, root)
			}
			if rtd.Root != ptd.Root {
				return fmt.Errorf("replica %s digest diverges from primary %s at %s", rc.Addr, pl.Node, root)
			}
		}
	}
	return nil
}

func joinPhys(dir, name string) string {
	if dir == "/" || dir == "" {
		return "/" + name
	}
	return dir + "/" + name
}
