package chaos

import (
	"bytes"
	"fmt"
	"os"
	"path"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/localfs"
	"repro/internal/repl"
	"repro/internal/simnet"
)

// lcgFill fills b with a deterministic pseudo-random byte stream.
func lcgFill(b []byte, seed uint64) {
	s := seed
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = byte(s >> 33)
	}
}

// sumCounter totals one named counter across the cluster.
func sumCounter(c *cluster.Cluster, name string) uint64 {
	var total uint64
	for _, nd := range c.Nodes {
		total += nd.Obs().Counter(name).Load()
	}
	return total
}

// tickAll runs one maintenance round on every live node in index order —
// the same deterministic schedule the runner and the scale soak use.
func tickAll(c *cluster.Cluster) {
	for _, nd := range c.Nodes {
		if !c.Net.IsDown(nd.Addr()) {
			nd.Maint().Tick()
		}
	}
}

// TestScenarioScrubRepairsSilentCorruption: silent bit-rot on both the
// primary and a replica copy of a file fires no mutation notification, so
// every memoized digest keeps describing the intended bytes and no
// foreground mechanism — including full replica-sync rounds — ever notices.
// The scrub's file verification must detect the mismatch against the cached
// manifests and rebuild both copies within a bounded number of rounds; with
// the scrub never ticked, the corruption provably persists.
func TestScenarioScrubRepairsSilentCorruption(t *testing.T) {
	const (
		seed     = 4242
		replicas = 2
		blobSize = 256 << 10
	)
	c, err := cluster.New(cluster.Options{
		Nodes: 6,
		Seed:  seed,
		Config: core.Config{
			Replicas:     replicas,
			AttrCacheTTL: -1,
			NameCacheTTL: -1,
			RingCacheTTL: -1,
			MaintScrub:   true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	byAddr := map[simnet.Addr]int{}
	for i, nd := range c.Nodes {
		byAddr[nd.Addr()] = i
	}

	m := c.Mount(0)
	model := NewOracle()
	write := func(p string, data []byte) {
		t.Helper()
		if _, err := m.WriteFile(p, data); err != nil {
			t.Fatalf("write %s: %v", p, err)
		}
		model.WriteFile(p, data)
	}
	blob := make([]byte, blobSize)
	lcgFill(blob, seed)
	for i := 0; i < 3; i++ {
		write(fmt.Sprintf("/scrub/f%02d", i), []byte(fmt.Sprintf("payload-%02d", i)))
	}
	write("/scrub/blob.bin", blob)
	write("/other/seed", []byte("bystander"))
	c.Stabilize()
	// One more edit so the delta push renegotiates manifests, then two warm
	// scrub rounds so every holder has verified (and so baselined) its copy
	// before the fault lands.
	edited := append([]byte(nil), blob...)
	copy(edited[blobSize/3:], "EDITED-SIXTEEN-B")
	write("/scrub/blob.bin", edited)
	c.Stabilize()
	tickAll(c)
	tickAll(c)
	if err := ReplicaConvergence(c, model, replicas); err != nil {
		t.Fatalf("replicas not converged before fault: %v", err)
	}

	place, _, err := c.Nodes[0].ResolvePath("/scrub")
	if err != nil {
		t.Fatal(err)
	}
	pi := byAddr[place.Node]
	cands := c.Nodes[pi].Overlay().ReplicaCandidates(replicas)
	if len(cands) < 1 {
		t.Fatal("primary has no replica candidates")
	}
	ci := byAddr[cands[0].Addr]
	blobPhys := joinPhys(place.PhysDir(), "blob.bin")

	// Flip one byte of the primary copy and, in a different chunk, one byte
	// of a replica copy. No mutation notification fires.
	if err := c.Nodes[pi].Store().(localfs.Corrupter).CorruptFile(blobPhys, 1024); err != nil {
		t.Fatalf("corrupt primary: %v", err)
	}
	if err := c.Nodes[ci].Store().(localfs.Corrupter).CorruptFile(core.RepPath(blobPhys), -2048); err != nil {
		t.Fatalf("corrupt replica: %v", err)
	}

	intact := func(i int, phys string) bool {
		got, err := c.Nodes[i].Store().ReadFile(phys)
		return err == nil && bytes.Equal(got, edited)
	}

	// Scrub disabled (never ticked): full foreground replica-sync rounds run
	// and the divergence survives them — the memoized digests still agree.
	c.Stabilize()
	c.Stabilize()
	if intact(pi, blobPhys) || intact(ci, core.RepPath(blobPhys)) {
		t.Fatal("corruption healed without the scrub: the fault injection is not silent")
	}

	// Scrub enabled: bounded rounds to repair both copies.
	const maxRounds = 12
	repairedIn := -1
	for round := 1; round <= maxRounds; round++ {
		tickAll(c)
		if intact(pi, blobPhys) && intact(ci, core.RepPath(blobPhys)) {
			repairedIn = round
			break
		}
	}
	if repairedIn < 0 {
		t.Fatalf("scrub did not repair the corruption within %d rounds", maxRounds)
	}
	t.Logf("scrub repaired both copies in %d rounds", repairedIn)
	if div := sumCounter(c, "maint.scrub.divergences"); div < 2 {
		t.Fatalf("maint.scrub.divergences = %d, want >= 2", div)
	}
	if rep := sumCounter(c, "maint.scrub.repaired"); rep < 2 {
		t.Fatalf("maint.scrub.repaired = %d, want >= 2", rep)
	}

	if err := model.Check(m); err != nil {
		t.Fatalf("post-repair oracle check: %v", err)
	}
	if err := ReplicaConvergence(c, model, replicas); err != nil {
		t.Fatalf("post-repair replica convergence: %v", err)
	}
}

// rebalCluster builds the skewed-capacity fixture for the rebalancer tests:
// one node's contributed partition is small enough that the /big hierarchy
// pushes it over the high-water mark, every other node has room to spare.
// moverCap <= 0 builds the placement-probe cluster with uniform unlimited
// capacity (placement depends only on the seed, not on capacities).
// seedDirs names the small bystander hierarchies; the fault run picks names
// the overloaded node does not own, so /big is its only migration victim.
func rebalCluster(t *testing.T, seed uint64, mover int, moverCap int64, seedDirs []string) (*cluster.Cluster, *Oracle, []byte) {
	t.Helper()
	const nodes = 8
	var caps []int64
	if moverCap > 0 {
		caps = make([]int64, nodes)
		for i := range caps {
			caps[i] = 1 << 30
		}
		caps[mover] = moverCap
	}
	c, err := cluster.New(cluster.Options{
		Nodes:      nodes,
		Seed:       seed,
		Capacities: caps,
		Config: core.Config{
			Replicas:     2,
			AttrCacheTTL: -1,
			NameCacheTTL: -1,
			RingCacheTTL: -1,
			// Foreground mkdir redirection stays out of the way so placement
			// is identical with and without the capacity skew.
			UtilizationLimit: 0.99,
			MaintScrub:       true,
			MaintRebalance:   true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Mount(0)
	model := NewOracle()
	write := func(p string, data []byte) {
		t.Helper()
		if _, err := m.WriteFile(p, data); err != nil {
			t.Fatalf("write %s: %v", p, err)
		}
		model.WriteFile(p, data)
	}
	blob := make([]byte, 3<<20+512<<10) // 3.5 MiB: 87% of a 4 MiB partition
	lcgFill(blob, seed)
	write("/big/blob.bin", blob)
	write("/big/readme", []byte("large hierarchy"))
	for i, d := range seedDirs {
		write(fmt.Sprintf("/%s/seed", d), []byte(fmt.Sprintf("seed-%d", i)))
	}
	c.Stabilize()
	return c, model, blob
}

// armedFlagRoot returns the storage root at nd carrying an armed
// MIGRATION_NOT_COMPLETE sentinel in the primary namespace ("" if none).
func armedFlagRoot(nd *core.Node) string {
	found := ""
	nd.Store().Walk("/", func(p string, a localfs.Attr, _ string) error {
		if a.Type == localfs.TypeRegular && path.Base(p) == repl.MigrationFlag &&
			!strings.HasPrefix(p, repl.RepArea) {
			found = path.Dir(p)
		}
		return nil
	})
	return found
}

// TestScenarioRebalanceTargetCrashMidMove: the rebalancer picks a migration
// target, arms the MIGRATION_NOT_COMPLETE flag there, and the target dies
// mid-push. The move must abort with the flag still armed on the partial
// copy, the level-1 link still naming the source, and every acknowledged
// byte readable at the source. After the target revives (purging the
// orphan), the next maintenance round re-runs the migration — re-arming the
// flag on a fresh root — and the cluster converges with utilization shed.
func TestScenarioRebalanceTargetCrashMidMove(t *testing.T) {
	const (
		seed     = 5151
		moverCap = 4 << 20
	)

	// Probe run: placement (and so the overloaded owner of /big) is a pure
	// function of the seed, independent of the capacity skew.
	probe, _, _ := rebalCluster(t, seed, -1, 0, []string{"d0", "d1"})
	place, _, err := probe.Nodes[0].ResolvePath("/big")
	if err != nil {
		t.Fatal(err)
	}
	mover := -1
	for i, nd := range probe.Nodes {
		if nd.Addr() == place.Node {
			mover = i
		}
	}
	if mover < 0 {
		t.Fatalf("owner of /big (%s) not found", place.Node)
	}
	// Bystander names the overloaded node does not own, so /big is its only
	// eligible victim and the runs below see exactly one move.
	var seedDirs []string
	for i := 0; len(seedDirs) < 2 && i < 32; i++ {
		name := fmt.Sprintf("d%d", i)
		res, err := probe.Nodes[0].Overlay().Route(core.Key(name))
		if err != nil {
			t.Fatal(err)
		}
		if res.Node.Addr != place.Node {
			seedDirs = append(seedDirs, name)
		}
	}
	if len(seedDirs) < 2 {
		t.Fatal("could not find bystander names off the overloaded node")
	}

	// Discovery run: same seed with the skew in place; one clean maintenance
	// pass must migrate /big off the overloaded node. Records the
	// deterministic destination for the fault run.
	disc, discModel, _ := rebalCluster(t, seed, mover, moverCap, seedDirs)
	moverAddr := disc.Nodes[mover].Addr()
	if u := disc.Nodes[mover].Store().Utilization(); u < 0.8 {
		t.Fatalf("mover utilization %.2f, want >= 0.80 (fixture too small)", u)
	}
	tickAll(disc)
	if moves := disc.Nodes[mover].Obs().Counter("maint.rebalance.moves").Load(); moves != 1 {
		t.Fatalf("discovery run made %d moves, want 1", moves)
	}
	disc.Stabilize()
	// The oracle reads through a mount: the first read through the stale
	// resolver entry hits the relocated root's special link, revalidates, and
	// lands on the new holder — the client-transparency half of the move.
	if err := discModel.Check(disc.Mount(0)); err != nil {
		t.Fatalf("discovery run oracle check: %v", err)
	}
	pl, _, err := disc.Nodes[0].ResolvePath("/big")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Node == moverAddr {
		t.Fatal("discovery run did not relocate /big")
	}
	destAddr := pl.Node

	// Fault run: identical cluster, but once the migration flag lands on the
	// destination every further kosha exchange from the mover to it is
	// dropped — the target's koshad dies mid-move with the push half done.
	c, model, blob := rebalCluster(t, seed, mover, moverCap, seedDirs)
	dest := -1
	for i, nd := range c.Nodes {
		if nd.Addr() == destAddr {
			dest = i
		}
	}
	if dest < 0 {
		t.Fatalf("destination %s not in cluster", destAddr)
	}
	c.Net.SetFaults(func(from, to simnet.Addr, service string) simnet.LinkFault {
		if from == moverAddr && to == destAddr && service == core.KoshaService &&
			armedFlagRoot(c.Nodes[dest]) != "" {
			return simnet.LinkFault{Drop: true}
		}
		return simnet.LinkFault{}
	})
	tickAll(c)

	// The move must have aborted: flag armed on the partial copy, no
	// ownership flip, the byte count untouched.
	partial := armedFlagRoot(c.Nodes[dest])
	if partial == "" {
		t.Fatal("no armed migration flag at the target: the fault never fired")
	}
	if moves := c.Nodes[mover].Obs().Counter("maint.rebalance.moves").Load(); moves != 0 {
		t.Fatalf("aborted migration was counted as %d completed moves", moves)
	}
	if pl, _, err := c.Nodes[0].ResolvePath("/big"); err != nil {
		t.Fatalf("resolve /big after abort: %v", err)
	} else if pl.Node != moverAddr {
		t.Fatalf("/big moved to %s despite the aborted push", pl.Node)
	}

	// Now the target dies outright. Acknowledged data stays readable at the
	// source through any live client.
	c.Fail(dest)
	c.Stabilize()
	reader := 0
	for reader == dest || reader == mover {
		reader++
	}
	got, _, err := c.Mount(reader).ReadFile("/big/blob.bin")
	if err != nil {
		t.Fatalf("read /big/blob.bin with target down: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("acknowledged blob corrupted after aborted migration (%d bytes)", len(got))
	}

	// Revive (purging the orphaned partial copy), heal, and let maintenance
	// retry: the flag re-arms on a fresh root and the move completes.
	c.Net.SetFaults(nil)
	if err := c.Revive(dest); err != nil {
		t.Fatalf("revive target: %v", err)
	}
	c.Stabilize()
	moved := false
	for round := 0; round < 4 && !moved; round++ {
		tickAll(c)
		moved = c.Nodes[mover].Obs().Counter("maint.rebalance.moves").Load() >= 1
	}
	if !moved {
		t.Fatal("rebalancer never retried the migration after the target revived")
	}
	c.Stabilize()
	// Oracle reads first: they revalidate node 0's stale resolver entries
	// through the relocated root's link, so the resolve below sees the move.
	if err := model.Check(c.Mount(0)); err != nil {
		t.Fatalf("post-retry oracle check: %v", err)
	}
	pl2, _, err := c.Nodes[0].ResolvePath("/big")
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Node == moverAddr {
		t.Fatal("retried migration did not relocate /big")
	}
	if u := c.Nodes[mover].Store().Utilization(); u >= 0.8 {
		t.Fatalf("mover still at %.2f utilization after the move", u)
	}
	if err := ReplicaConvergence(c, model, 2); err != nil {
		t.Fatalf("post-retry replica convergence: %v", err)
	}
}

// TestMaintScrubSoak is the gated long-run scrub soak: a sustained loop of
// seeded silent-corruption injections against primary and replica copies,
// each batch repaired by a bounded number of maintenance rounds, with the
// oracle and replica-convergence bars held throughout. Opt in with
// KOSHA_MAINT_SOAK=1 (e.g. via `make soak`); KOSHA_MAINT_SEED pins the
// seed, otherwise it derives from the clock and is logged so any failure
// replays from one number.
func TestMaintScrubSoak(t *testing.T) {
	if os.Getenv("KOSHA_MAINT_SOAK") == "" {
		t.Skip("set KOSHA_MAINT_SOAK=1 to enable the scrub soak")
	}
	seed := uint64(time.Now().UnixNano())
	if v := os.Getenv("KOSHA_MAINT_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad KOSHA_MAINT_SEED %q: %v", v, err)
		}
		seed = n
	}
	t.Logf("scrub soak seed %d (replay: KOSHA_MAINT_SOAK=1 KOSHA_MAINT_SEED=%d)", seed, seed)

	const (
		replicas  = 2
		trees     = 6
		filesPer  = 3
		batches   = 10
		perBatch  = 3  // corruptions injected per batch
		maxRepair = 15 // scrub rounds allowed to clear one batch
		maxVerify = 64 // files verified per node per round, so a round covers the corpus
	)
	rng := seed
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	c, err := cluster.New(cluster.Options{
		Nodes: 10,
		Seed:  seed,
		Config: core.Config{
			Replicas:         replicas,
			AttrCacheTTL:     -1,
			NameCacheTTL:     -1,
			RingCacheTTL:     -1,
			MaintScrub:       true,
			MaintVerifyFiles: maxVerify,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	byAddr := map[simnet.Addr]int{}
	for i, nd := range c.Nodes {
		byAddr[nd.Addr()] = i
	}

	m := c.Mount(0)
	model := NewOracle()
	var files []string
	for tr := 0; tr < trees; tr++ {
		for f := 0; f < filesPer; f++ {
			p := fmt.Sprintf("/soak%02d/f%02d", tr, f)
			data := make([]byte, 2<<10+(tr*filesPer+f)*11<<10)
			lcgFill(data, seed+uint64(tr*filesPer+f))
			if _, err := m.WriteFile(p, data); err != nil {
				t.Fatalf("write %s: %v", p, err)
			}
			model.WriteFile(p, data)
			files = append(files, p)
		}
	}
	c.Stabilize()
	tickAll(c)
	tickAll(c)
	if err := ReplicaConvergence(c, model, replicas); err != nil {
		t.Fatalf("baseline convergence: %v", err)
	}

	for batch := 0; batch < batches; batch++ {
		for i := 0; i < perBatch; i++ {
			f := files[next()%uint64(len(files))]
			place, _, err := c.Nodes[0].ResolvePath(path.Dir(f))
			if err != nil {
				t.Fatalf("batch %d: resolve %s: %v", batch, f, err)
			}
			phys := joinPhys(place.PhysDir(), path.Base(f))
			victim, vphys := byAddr[place.Node], phys
			if cands := c.Nodes[victim].Overlay().ReplicaCandidates(replicas); len(cands) > 0 && next()%2 == 0 {
				victim, vphys = byAddr[cands[next()%uint64(len(cands))].Addr], core.RepPath(phys)
			}
			if err := c.Nodes[victim].Store().(localfs.Corrupter).CorruptFile(vphys, int64(next()%uint64(32<<10))); err != nil {
				t.Fatalf("batch %d: corrupt %s on node %d: %v", batch, vphys, victim, err)
			}
		}
		repaired := false
		for round := 0; round < maxRepair && !repaired; round++ {
			tickAll(c)
			repaired = ReplicaConvergence(c, model, replicas) == nil
		}
		if !repaired {
			t.Fatalf("batch %d: scrub did not reconverge within %d rounds (seed %d)", batch, maxRepair, seed)
		}
	}

	if err := model.Check(m); err != nil {
		t.Fatalf("final oracle check: %v", err)
	}
	t.Logf("scrub soak: %d rounds, %d divergences, %d repaired, %d bad blocks",
		sumCounter(c, "maint.scrub.rounds"), sumCounter(c, "maint.scrub.divergences"),
		sumCounter(c, "maint.scrub.repaired"), sumCounter(c, "maint.scrub.badblocks"))
	if rep := sumCounter(c, "maint.scrub.repaired"); rep == 0 {
		t.Fatalf("soak injected %d corruptions but repaired none", batches*perBatch)
	}
}

// TestMaintDeterministicReplay: with both maintenance loops enabled and
// ticked every chaos step, the whole run — workload, schedule, maintenance
// RPCs, and the maintenance counters folded into the report — replays
// identically from the seed.
func TestMaintDeterministicReplay(t *testing.T) {
	opts := Options{
		Seed:           2026,
		RandomSteps:    24,
		Maint:          true,
		MaintRebalance: true,
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged with maintenance on:\n  run1: %+v\n  run2: %+v", a, b)
	}
	if a.ScrubRounds == 0 {
		t.Fatal("maintenance never ran: no scrub rounds recorded")
	}
}
