package chaos

import (
	"fmt"
	"time"
)

// OpKind enumerates the fault operations a schedule can contain.
type OpKind uint8

const (
	// OpCrash crashes node A (SetDown; state preserved, handlers dark).
	OpCrash OpKind = iota
	// OpRevive restarts node A with a fresh identifier and purged store
	// (the paper's rejoin protocol, Section 4.3.2), then stabilizes.
	OpRevive
	// OpJoin adds a brand-new node to the cluster.
	OpJoin
	// OpPartition installs a one-way block: A can no longer reach B.
	OpPartition
	// OpHeal clears every partition.
	OpHeal
	// OpLossy sets drop probability P on every link touching node A.
	OpLossy
	// OpDup sets network-wide request duplication probability P.
	OpDup
	// OpDelay adds latency D to every link touching node A.
	OpDelay
	// OpClearFaults clears lossy/dup/delay injection (partitions stay).
	OpClearFaults
	// OpStabilize runs overlay repair and replica synchronization.
	OpStabilize

	opKinds // count sentinel
)

func (k OpKind) String() string {
	switch k {
	case OpCrash:
		return "crash"
	case OpRevive:
		return "revive"
	case OpJoin:
		return "join"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	case OpLossy:
		return "lossy"
	case OpDup:
		return "dup"
	case OpDelay:
		return "delay"
	case OpClearFaults:
		return "clear-faults"
	case OpStabilize:
		return "stabilize"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Step is one fault operation in a schedule.
type Step struct {
	Kind OpKind
	A, B int           // node indices (crash/revive/lossy/delay use A; partition uses A->B)
	P    float64       // probability for OpLossy / OpDup
	D    time.Duration // latency for OpDelay
}

func (s Step) String() string {
	switch s.Kind {
	case OpPartition:
		return fmt.Sprintf("partition %d->%d", s.A, s.B)
	case OpLossy:
		return fmt.Sprintf("lossy node %d p=%.2f", s.A, s.P)
	case OpDup:
		return fmt.Sprintf("dup p=%.2f", s.P)
	case OpDelay:
		return fmt.Sprintf("delay node %d +%v", s.A, s.D)
	case OpCrash, OpRevive:
		return fmt.Sprintf("%s node %d", s.Kind, s.A)
	default:
		return s.Kind.String()
	}
}

// Encode packs a schedule into the 4-bytes-per-step format the fuzzer
// mutates: kind, A, B, and a quantized parameter byte (probability in 1/16
// steps for lossy/dup, delay in 25ms steps for delay).
func Encode(steps []Step) []byte {
	out := make([]byte, 0, 4*len(steps))
	for _, s := range steps {
		var q byte
		switch s.Kind {
		case OpLossy, OpDup:
			q = byte(s.P * 16)
		case OpDelay:
			q = byte(s.D / (25 * time.Millisecond))
		}
		out = append(out, byte(s.Kind), byte(s.A), byte(s.B), q)
	}
	return out
}

// Decode is Encode's inverse over arbitrary bytes: every 4-byte group maps
// onto some valid step (kind and indices taken modulo their ranges), so any
// fuzzer input is a runnable schedule. Trailing bytes are ignored.
func Decode(data []byte, nodes int) []Step {
	if nodes < 1 {
		nodes = 1
	}
	var steps []Step
	for i := 0; i+4 <= len(data); i += 4 {
		s := Step{
			Kind: OpKind(data[i] % uint8(opKinds)),
			A:    int(data[i+1]) % nodes,
			B:    int(data[i+2]) % nodes,
		}
		switch s.Kind {
		case OpLossy, OpDup:
			// Cap injected loss/duplication at 4/16 so randomized schedules
			// stay within the regime the retry budget is sized for.
			s.P = float64(data[i+3]%5) / 16
		case OpDelay:
			s.D = time.Duration(data[i+3]%9) * 25 * time.Millisecond
		}
		steps = append(steps, s)
	}
	return steps
}
