// Package localfs implements the per-node local file system that backs each
// Kosha node's contributed partition (/kosha_store, Section 5: "A local disk
// partition is created and used for space contribution. The size of the
// partition provides control over the amount of disk space contributed").
//
// It is an in-memory POSIX-ish tree with inodes, directories, regular files,
// and symbolic links (Kosha's special links are symlinks, Section 3.3),
// plus capacity accounting so that insertions fail with ErrNoSpace exactly
// as a full partition would — the mechanism Kosha's redirection reacts to.
// Every mutating or data-moving operation returns a simulated disk Cost.
package localfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simnet"
)

// File types, mirroring NFSv3 ftype3 values we support.
type FileType uint32

const (
	TypeRegular FileType = 1 // NF3REG
	TypeDir     FileType = 2 // NF3DIR
	TypeSymlink FileType = 5 // NF3LNK
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("ftype(%d)", uint32(t))
	}
}

// Errors map one-to-one onto NFSv3 status codes in internal/nfs.
var (
	ErrNoEnt    = errors.New("localfs: no such file or directory")
	ErrExist    = errors.New("localfs: file exists")
	ErrNotDir   = errors.New("localfs: not a directory")
	ErrIsDir    = errors.New("localfs: is a directory")
	ErrNotEmpty = errors.New("localfs: directory not empty")
	ErrNoSpace  = errors.New("localfs: no space left on contributed partition")
	ErrStale    = errors.New("localfs: stale file handle")
	ErrInval    = errors.New("localfs: invalid argument")
	ErrTooBig   = errors.New("localfs: file too large")
)

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// MaxFileSize bounds one file (NFSv3 uses 64-bit sizes; we cap for safety).
const MaxFileSize = int64(1) << 40

// Attr is the subset of NFSv3 fattr3 the system uses.
type Attr struct {
	Ino   uint64
	Type  FileType
	Mode  uint32
	Nlink uint32
	UID   uint32
	GID   uint32
	Size  int64
	Atime time.Time
	Mtime time.Time
	Ctime time.Time
}

// SetAttr carries the mutable attributes for Setattr; nil fields are left
// unchanged.
type SetAttr struct {
	Mode  *uint32
	UID   *uint32
	GID   *uint32
	Size  *int64
	Mtime *time.Time
	Atime *time.Time
}

// DirEntry is one name in a directory listing.
type DirEntry struct {
	Name string
	Ino  uint64
	Type FileType
}

type inode struct {
	ino      uint64
	typ      FileType
	mode     uint32
	uid, gid uint32
	atime    time.Time
	mtime    time.Time
	ctime    time.Time

	data     []byte            // TypeRegular
	children map[string]*inode // TypeDir
	target   string            // TypeSymlink

	parent *inode
	name   string
}

func (in *inode) size() int64 {
	switch in.typ {
	case TypeRegular:
		return int64(len(in.data))
	case TypeSymlink:
		return int64(len(in.target))
	default:
		return 0
	}
}

func (in *inode) nlink() uint32 {
	if in.typ != TypeDir {
		return 1
	}
	n := uint32(2)
	for _, c := range in.children {
		if c.typ == TypeDir {
			n++
		}
	}
	return n
}

// FS is one node's contributed partition.
type FS struct {
	mu       sync.RWMutex
	root     *inode
	inodes   map[uint64]*inode
	nextIno  uint64
	capacity int64 // bytes; 0 means unlimited
	used     int64
	files    int64 // count of regular files
	disk     simnet.DiskModel
	now      func() time.Time
	// InodeOverhead is charged against capacity per inode, modeling
	// metadata blocks. Zero by default to match the paper's accounting,
	// which counts file bytes against contributed gigabytes.
	inodeOverhead int64

	// notify holds mutation subscribers (OnMutation). Hooks run with f.mu
	// held, so they must not call back into the file system.
	notify []func(path string)
}

// MutationNotifier is implemented by stores that report successful
// mutations by path. Digest caches (internal/merkle) subscribe so their
// memoized hashes are invalidated exactly when content changes.
type MutationNotifier interface {
	// OnMutation registers fn to be called with the affected store path
	// after every successful mutating operation. fn runs under the store's
	// internal lock: it must be fast and must not call back into the store.
	OnMutation(fn func(path string))
}

// Option configures an FS.
type Option func(*FS)

// WithClock overrides the time source (deterministic tests).
func WithClock(now func() time.Time) Option { return func(f *FS) { f.now = now } }

// WithInodeOverhead charges n bytes of capacity per inode.
func WithInodeOverhead(n int64) Option { return func(f *FS) { f.inodeOverhead = n } }

// New creates a file system with the given capacity in bytes (0 = unlimited)
// and disk cost model.
func New(capacity int64, disk simnet.DiskModel, opts ...Option) *FS {
	fs := &FS{
		inodes:   make(map[uint64]*inode),
		capacity: capacity,
		disk:     disk,
		now:      time.Now,
	}
	for _, o := range opts {
		o(fs)
	}
	t := fs.now()
	fs.root = &inode{
		ino:      1,
		typ:      TypeDir,
		mode:     0o755,
		children: make(map[string]*inode),
		atime:    t, mtime: t, ctime: t,
	}
	fs.nextIno = 2
	fs.inodes[1] = fs.root
	fs.used = fs.inodeOverhead
	return fs
}

// RootIno is the inode number of the root directory.
const RootIno uint64 = 1

// Capacity returns the contributed bytes (0 = unlimited).
func (f *FS) Capacity() int64 { return f.capacity }

// Used returns the bytes currently charged against capacity.
func (f *FS) Used() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.used
}

// Utilization returns used/capacity in [0,1]; 0 when capacity is unlimited.
func (f *FS) Utilization() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.capacity == 0 {
		return 0
	}
	return float64(f.used) / float64(f.capacity)
}

// NumFiles returns the number of regular files.
func (f *FS) NumFiles() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.files
}

func (f *FS) get(ino uint64) (*inode, error) {
	in, ok := f.inodes[ino]
	if !ok {
		return nil, fmt.Errorf("%w: ino %d", ErrStale, ino)
	}
	return in, nil
}

func (f *FS) getDir(ino uint64) (*inode, error) {
	in, err := f.get(ino)
	if err != nil {
		return nil, err
	}
	if in.typ != TypeDir {
		return nil, ErrNotDir
	}
	return in, nil
}

func (f *FS) attrOf(in *inode) Attr {
	return Attr{
		Ino:   in.ino,
		Type:  in.typ,
		Mode:  in.mode,
		Nlink: in.nlink(),
		UID:   in.uid,
		GID:   in.gid,
		Size:  in.size(),
		Atime: in.atime,
		Mtime: in.mtime,
		Ctime: in.ctime,
	}
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("%w: bad name %q", ErrInval, name)
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("%w: name too long", ErrInval)
	}
	if strings.ContainsRune(name, '/') {
		return fmt.Errorf("%w: name %q contains '/'", ErrInval, name)
	}
	return nil
}

// OnMutation registers a mutation subscriber; see MutationNotifier.
func (f *FS) OnMutation(fn func(path string)) {
	f.mu.Lock()
	f.notify = append(f.notify, fn)
	f.mu.Unlock()
}

// noteMutation reports a successful mutation at p. Caller holds f.mu.
func (f *FS) noteMutation(p string) {
	for _, fn := range f.notify {
		fn(p)
	}
}

// pathOf reconstructs an inode's absolute path from its parent/name
// backpointers, for mutation notifications on handle-based ops. Caller
// holds f.mu. Returns "" for unlinked inodes.
func (f *FS) pathOf(in *inode) string {
	if in == f.root {
		return "/"
	}
	var parts []string
	for cur := in; cur != f.root; cur = cur.parent {
		if cur == nil {
			return ""
		}
		parts = append(parts, cur.name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// charge reserves n additional bytes against capacity (n may be negative).
func (f *FS) charge(n int64) error {
	if f.capacity > 0 && n > 0 && f.used+n > f.capacity {
		return ErrNoSpace
	}
	f.used += n
	return nil
}

// Getattr returns the attributes for ino.
func (f *FS) Getattr(ino uint64) (Attr, simnet.Cost, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	in, err := f.get(ino)
	if err != nil {
		return Attr{}, f.disk.OpCost(0), err
	}
	return f.attrOf(in), f.disk.OpCost(0), nil
}

// Setattr updates mutable attributes; Size changes truncate or extend.
func (f *FS) Setattr(ino uint64, sa SetAttr) (Attr, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	in, err := f.get(ino)
	if err != nil {
		return Attr{}, cost, err
	}
	if sa.Size != nil {
		if in.typ == TypeDir {
			return Attr{}, cost, ErrIsDir
		}
		if in.typ != TypeRegular {
			return Attr{}, cost, ErrInval
		}
		ns := *sa.Size
		if ns < 0 || ns > MaxFileSize {
			return Attr{}, cost, ErrTooBig
		}
		delta := ns - int64(len(in.data))
		if err := f.charge(delta); err != nil {
			return Attr{}, cost, err
		}
		if ns <= int64(len(in.data)) {
			in.data = in.data[:ns]
		} else {
			in.data = append(in.data, make([]byte, ns-int64(len(in.data)))...)
		}
		in.mtime = f.now()
		cost = simnet.Seq(cost, f.disk.OpCost(int(abs64(delta))))
	}
	if sa.Mode != nil {
		in.mode = *sa.Mode
	}
	if sa.UID != nil {
		in.uid = *sa.UID
	}
	if sa.GID != nil {
		in.gid = *sa.GID
	}
	if sa.Mtime != nil {
		in.mtime = *sa.Mtime
	}
	if sa.Atime != nil {
		in.atime = *sa.Atime
	}
	in.ctime = f.now()
	f.noteMutation(f.pathOf(in))
	return f.attrOf(in), cost, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Lookup finds name within directory dirIno.
func (f *FS) Lookup(dirIno uint64, name string) (Attr, simnet.Cost, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	cost := f.disk.OpCost(0)
	dir, err := f.getDir(dirIno)
	if err != nil {
		return Attr{}, cost, err
	}
	child, ok := dir.children[name]
	if !ok {
		return Attr{}, cost, fmt.Errorf("%w: %q in ino %d", ErrNoEnt, name, dirIno)
	}
	return f.attrOf(child), cost, nil
}

// Create makes a regular file. exclusive controls EEXIST semantics: when
// false and the name exists as a regular file, it is truncated (NFSv3
// UNCHECKED create).
func (f *FS) Create(dirIno uint64, name string, mode uint32, exclusive bool) (Attr, simnet.Cost, error) {
	if err := checkName(name); err != nil {
		return Attr{}, 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.getDir(dirIno)
	if err != nil {
		return Attr{}, cost, err
	}
	if existing, ok := dir.children[name]; ok {
		if exclusive {
			return Attr{}, cost, fmt.Errorf("%w: %q", ErrExist, name)
		}
		if existing.typ != TypeRegular {
			return Attr{}, cost, ErrIsDir
		}
		f.used -= int64(len(existing.data))
		existing.data = nil
		existing.mtime = f.now()
		f.noteMutation(f.pathOf(existing))
		return f.attrOf(existing), cost, nil
	}
	if err := f.charge(f.inodeOverhead); err != nil {
		return Attr{}, cost, err
	}
	t := f.now()
	in := &inode{
		ino: f.nextIno, typ: TypeRegular, mode: mode,
		atime: t, mtime: t, ctime: t,
		parent: dir, name: name,
	}
	f.nextIno++
	f.inodes[in.ino] = in
	dir.children[name] = in
	dir.mtime = t
	f.files++
	f.noteMutation(f.pathOf(in))
	return f.attrOf(in), cost, nil
}

// Mkdir makes a directory.
func (f *FS) Mkdir(dirIno uint64, name string, mode uint32) (Attr, simnet.Cost, error) {
	if err := checkName(name); err != nil {
		return Attr{}, 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.getDir(dirIno)
	if err != nil {
		return Attr{}, cost, err
	}
	if _, ok := dir.children[name]; ok {
		return Attr{}, cost, fmt.Errorf("%w: %q", ErrExist, name)
	}
	if err := f.charge(f.inodeOverhead); err != nil {
		return Attr{}, cost, err
	}
	t := f.now()
	in := &inode{
		ino: f.nextIno, typ: TypeDir, mode: mode,
		children: make(map[string]*inode),
		atime:    t, mtime: t, ctime: t,
		parent: dir, name: name,
	}
	f.nextIno++
	f.inodes[in.ino] = in
	dir.children[name] = in
	dir.mtime = t
	f.noteMutation(f.pathOf(in))
	return f.attrOf(in), cost, nil
}

// Symlink makes a symbolic link with the given target.
func (f *FS) Symlink(dirIno uint64, name, target string) (Attr, simnet.Cost, error) {
	if err := checkName(name); err != nil {
		return Attr{}, 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.getDir(dirIno)
	if err != nil {
		return Attr{}, cost, err
	}
	if _, ok := dir.children[name]; ok {
		return Attr{}, cost, fmt.Errorf("%w: %q", ErrExist, name)
	}
	if err := f.charge(f.inodeOverhead + int64(len(target))); err != nil {
		return Attr{}, cost, err
	}
	t := f.now()
	in := &inode{
		ino: f.nextIno, typ: TypeSymlink, mode: 0o777,
		target: target,
		atime:  t, mtime: t, ctime: t,
		parent: dir, name: name,
	}
	f.nextIno++
	f.inodes[in.ino] = in
	dir.children[name] = in
	dir.mtime = t
	f.noteMutation(f.pathOf(in))
	return f.attrOf(in), cost, nil
}

// Readlink returns a symlink's target.
func (f *FS) Readlink(ino uint64) (string, simnet.Cost, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	cost := f.disk.OpCost(0)
	in, err := f.get(ino)
	if err != nil {
		return "", cost, err
	}
	if in.typ != TypeSymlink {
		return "", cost, ErrInval
	}
	return in.target, cost, nil
}

// Read returns up to count bytes at offset. eof is true when the read
// reaches the end of the file.
func (f *FS) Read(ino uint64, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	in, err := f.get(ino)
	if err != nil {
		return nil, false, f.disk.OpCost(0), err
	}
	if in.typ == TypeDir {
		return nil, false, f.disk.OpCost(0), ErrIsDir
	}
	if in.typ != TypeRegular {
		return nil, false, f.disk.OpCost(0), ErrInval
	}
	if offset < 0 || count < 0 {
		return nil, false, f.disk.OpCost(0), ErrInval
	}
	size := int64(len(in.data))
	if offset >= size {
		return nil, true, f.disk.OpCost(0), nil
	}
	end := offset + int64(count)
	if end > size {
		end = size
	}
	out := make([]byte, end-offset)
	copy(out, in.data[offset:end])
	return out, end == size, f.disk.OpCost(len(out)), nil
}

// Write stores data at offset, extending the file as needed.
func (f *FS) Write(ino uint64, offset int64, data []byte) (int, simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(len(data))
	in, err := f.get(ino)
	if err != nil {
		return 0, f.disk.OpCost(0), err
	}
	if in.typ == TypeDir {
		return 0, f.disk.OpCost(0), ErrIsDir
	}
	if in.typ != TypeRegular {
		return 0, f.disk.OpCost(0), ErrInval
	}
	if offset < 0 {
		return 0, f.disk.OpCost(0), ErrInval
	}
	end := offset + int64(len(data))
	if end > MaxFileSize {
		return 0, f.disk.OpCost(0), ErrTooBig
	}
	if grow := end - int64(len(in.data)); grow > 0 {
		if err := f.charge(grow); err != nil {
			return 0, f.disk.OpCost(0), err
		}
		in.data = append(in.data, make([]byte, grow)...)
	}
	copy(in.data[offset:end], data)
	in.mtime = f.now()
	f.noteMutation(f.pathOf(in))
	return len(data), cost, nil
}

// Remove unlinks a regular file or symlink.
func (f *FS) Remove(dirIno uint64, name string) (simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.getDir(dirIno)
	if err != nil {
		return cost, err
	}
	in, ok := dir.children[name]
	if !ok {
		return cost, fmt.Errorf("%w: %q", ErrNoEnt, name)
	}
	if in.typ == TypeDir {
		return cost, ErrIsDir
	}
	f.unlink(dir, in)
	return cost, nil
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(dirIno uint64, name string) (simnet.Cost, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	dir, err := f.getDir(dirIno)
	if err != nil {
		return cost, err
	}
	in, ok := dir.children[name]
	if !ok {
		return cost, fmt.Errorf("%w: %q", ErrNoEnt, name)
	}
	if in.typ != TypeDir {
		return cost, ErrNotDir
	}
	if len(in.children) > 0 {
		return cost, ErrNotEmpty
	}
	f.unlink(dir, in)
	return cost, nil
}

// unlink detaches in from dir and releases its storage. Caller holds f.mu
// and has verified membership.
func (f *FS) unlink(dir, in *inode) {
	p := f.pathOf(in)
	delete(dir.children, in.name)
	delete(f.inodes, in.ino)
	f.used -= in.size() + f.inodeOverhead
	if in.typ == TypeRegular {
		f.files--
	}
	in.parent = nil
	dir.mtime = f.now()
	if p != "" {
		f.noteMutation(p)
	}
}

// Rename moves srcName in srcDir to dstName in dstDir, overwriting a
// compatible destination per POSIX rules.
func (f *FS) Rename(srcDir uint64, srcName string, dstDir uint64, dstName string) (simnet.Cost, error) {
	if err := checkName(dstName); err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cost := f.disk.OpCost(0)
	sd, err := f.getDir(srcDir)
	if err != nil {
		return cost, err
	}
	dd, err := f.getDir(dstDir)
	if err != nil {
		return cost, err
	}
	in, ok := sd.children[srcName]
	if !ok {
		return cost, fmt.Errorf("%w: %q", ErrNoEnt, srcName)
	}
	// Moving a directory into its own subtree would orphan it.
	if in.typ == TypeDir {
		for p := dd; p != nil; p = p.parent {
			if p == in {
				return cost, fmt.Errorf("%w: rename into own subtree", ErrInval)
			}
		}
	}
	if existing, ok := dd.children[dstName]; ok && existing != in {
		switch {
		case existing.typ == TypeDir && in.typ != TypeDir:
			return cost, ErrIsDir
		case existing.typ != TypeDir && in.typ == TypeDir:
			return cost, ErrNotDir
		case existing.typ == TypeDir && len(existing.children) > 0:
			return cost, ErrNotEmpty
		}
		f.unlink(dd, existing)
	}
	oldPath := f.pathOf(in)
	delete(sd.children, in.name)
	in.name = dstName
	in.parent = dd
	dd.children[dstName] = in
	t := f.now()
	sd.mtime, dd.mtime, in.ctime = t, t, t
	if oldPath != "" {
		f.noteMutation(oldPath)
	}
	f.noteMutation(f.pathOf(in))
	return cost, nil
}

// Readdir lists a directory in lexicographic order.
func (f *FS) Readdir(ino uint64) ([]DirEntry, simnet.Cost, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	dir, err := f.getDir(ino)
	if err != nil {
		return nil, f.disk.OpCost(0), err
	}
	out := make([]DirEntry, 0, len(dir.children))
	for name, c := range dir.children {
		out = append(out, DirEntry{Name: name, Ino: c.ino, Type: c.typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, f.disk.OpCost(len(out) * 32), nil
}

// FSStat reports capacity accounting, the input to Kosha's redirection
// decision (Section 3.3).
type FSStat struct {
	TotalBytes int64 // 0 when unlimited
	UsedBytes  int64
	Files      int64
}

// Statfs returns capacity accounting.
func (f *FS) Statfs() (FSStat, simnet.Cost, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return FSStat{TotalBytes: f.capacity, UsedBytes: f.used, Files: f.files}, f.disk.OpCost(0), nil
}

// --- path helpers (used by Kosha's store management, tests, and tools) ---

// splitPath normalizes p and returns its components; "/" yields nil.
func splitPath(p string) ([]string, error) {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return nil, nil
	}
	parts := strings.Split(clean[1:], "/")
	for _, part := range parts {
		if err := checkName(part); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// LookupPath walks an absolute slash-separated path from the root without
// following symlinks in intermediate components (Kosha resolves its special
// links itself, at the overlay layer, not in the local FS).
func (f *FS) LookupPath(p string) (Attr, error) {
	parts, err := splitPath(p)
	if err != nil {
		return Attr{}, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	cur := f.root
	for _, part := range parts {
		if cur.typ != TypeDir {
			return Attr{}, ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return Attr{}, fmt.Errorf("%w: %q", ErrNoEnt, p)
		}
		cur = next
	}
	return f.attrOf(cur), nil
}

// MkdirAll creates the directory path p (mode 0755) and any missing
// ancestors, returning the attributes of the final directory.
func (f *FS) MkdirAll(p string) (Attr, error) {
	parts, err := splitPath(p)
	if err != nil {
		return Attr{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.root
	created := false
	for _, part := range parts {
		if cur.typ != TypeDir {
			return Attr{}, ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			if err := f.charge(f.inodeOverhead); err != nil {
				return Attr{}, err
			}
			t := f.now()
			next = &inode{
				ino: f.nextIno, typ: TypeDir, mode: 0o755,
				children: make(map[string]*inode),
				atime:    t, mtime: t, ctime: t,
				parent: cur, name: part,
			}
			f.nextIno++
			f.inodes[next.ino] = next
			cur.children[part] = next
			cur.mtime = t
			created = true
		} else if next.typ != TypeDir {
			return Attr{}, fmt.Errorf("%w: %q", ErrNotDir, part)
		}
		cur = next
	}
	if created {
		f.noteMutation(f.pathOf(cur))
	}
	return f.attrOf(cur), nil
}

// RemoveAll removes the subtree rooted at path p; missing paths are not an
// error, matching os.RemoveAll.
func (f *FS) RemoveAll(p string) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		// Clearing the root: drop all children (used when a revived node
		// purges its store, Section 4.3.2).
		f.mu.Lock()
		defer f.mu.Unlock()
		for _, c := range f.root.children {
			f.release(c)
		}
		f.root.children = make(map[string]*inode)
		f.noteMutation("/")
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur.children[part]
		if !ok || next.typ != TypeDir {
			return nil
		}
		cur = next
	}
	name := parts[len(parts)-1]
	in, ok := cur.children[name]
	if !ok {
		return nil
	}
	f.release(in)
	delete(cur.children, name)
	cur.mtime = f.now()
	f.noteMutation(path.Clean("/" + p))
	return nil
}

// release recursively frees an inode subtree. Caller holds f.mu.
func (f *FS) release(in *inode) {
	if in.typ == TypeDir {
		for _, c := range in.children {
			f.release(c)
		}
	}
	delete(f.inodes, in.ino)
	f.used -= in.size() + f.inodeOverhead
	if in.typ == TypeRegular {
		f.files--
	}
}

// WalkFunc visits one inode during Walk. Path is absolute.
type WalkFunc func(p string, attr Attr, symlinkTarget string) error

// Walk visits the subtree rooted at p in depth-first lexicographic order,
// used by replication and migration to enumerate a hierarchy.
func (f *FS) Walk(p string, fn WalkFunc) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	cur := f.root
	for _, part := range parts {
		if cur.typ != TypeDir {
			return ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoEnt, p)
		}
		cur = next
	}
	return f.walk(path.Clean("/"+p), cur, fn)
}

func (f *FS) walk(p string, in *inode, fn WalkFunc) error {
	if err := fn(p, f.attrOf(in), in.target); err != nil {
		return err
	}
	if in.typ != TypeDir {
		return nil
	}
	names := make([]string, 0, len(in.children))
	for name := range in.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		child := in.children[name]
		if err := f.walk(path.Join(p, name), child, fn); err != nil {
			return err
		}
	}
	return nil
}

// ReadFile is a convenience that reads a whole file by path.
func (f *FS) ReadFile(p string) ([]byte, error) {
	attr, err := f.LookupPath(p)
	if err != nil {
		return nil, err
	}
	data, _, _, err := f.Read(attr.Ino, 0, int(attr.Size))
	return data, err
}

// WriteFile is a convenience that creates (or truncates) a file by path and
// writes data, creating missing ancestor directories.
func (f *FS) WriteFile(p string, data []byte) error {
	dir, base := path.Split(path.Clean("/" + p))
	if base == "" {
		return ErrInval
	}
	dattr, err := f.MkdirAll(dir)
	if err != nil {
		return err
	}
	fattr, _, err := f.Create(dattr.Ino, base, 0o644, false)
	if err != nil {
		return err
	}
	_, _, err = f.Write(fattr.Ino, 0, data)
	return err
}

// CorruptFile flips one byte of the regular file at p — at offset off
// modulo the file length — WITHOUT firing mutation notifications. It models
// silent media bit-rot: digest caches and replication hooks subscribe to
// mutations, so the flip leaves every memoized digest stale and only a
// fresh re-hash of the bytes (the anti-entropy scrub) can detect it.
func (f *FS) CorruptFile(p string, off int64) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.root
	for _, part := range parts {
		if cur.typ != TypeDir {
			return ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoEnt, p)
		}
		cur = next
	}
	if cur.typ != TypeRegular {
		return fmt.Errorf("%w: corrupt %q: not a regular file", ErrInval, p)
	}
	if len(cur.data) == 0 {
		return fmt.Errorf("%w: corrupt %q: empty file", ErrInval, p)
	}
	i := off % int64(len(cur.data))
	if i < 0 {
		i += int64(len(cur.data))
	}
	cur.data[i] ^= 0xFF
	return nil
}

// Corrupter is implemented by stores that support silent bit-rot fault
// injection (see FS.CorruptFile). Chaos scenarios type-assert for it.
type Corrupter interface {
	CorruptFile(p string, off int64) error
}

var _ Corrupter = (*FS)(nil)

// FileSystem is the store interface Kosha builds on: both the in-memory FS
// in this package and the persistent on-disk store in internal/diskfs
// implement it, so a node's contributed partition can live in RAM (tests,
// emulation, benchmarks) or on a real directory (cmd/koshad -datadir).
type FileSystem interface {
	// Handle-based operations (the NFS server's surface).
	Getattr(ino uint64) (Attr, simnet.Cost, error)
	Setattr(ino uint64, sa SetAttr) (Attr, simnet.Cost, error)
	Lookup(dirIno uint64, name string) (Attr, simnet.Cost, error)
	Create(dirIno uint64, name string, mode uint32, exclusive bool) (Attr, simnet.Cost, error)
	Mkdir(dirIno uint64, name string, mode uint32) (Attr, simnet.Cost, error)
	Symlink(dirIno uint64, name, target string) (Attr, simnet.Cost, error)
	Readlink(ino uint64) (string, simnet.Cost, error)
	Read(ino uint64, offset int64, count int) ([]byte, bool, simnet.Cost, error)
	Write(ino uint64, offset int64, data []byte) (int, simnet.Cost, error)
	Remove(dirIno uint64, name string) (simnet.Cost, error)
	Rmdir(dirIno uint64, name string) (simnet.Cost, error)
	Rename(srcDir uint64, srcName string, dstDir uint64, dstName string) (simnet.Cost, error)
	Readdir(ino uint64) ([]DirEntry, simnet.Cost, error)
	Statfs() (FSStat, simnet.Cost, error)

	// Path-based conveniences (koshad's store management).
	LookupPath(p string) (Attr, error)
	MkdirAll(p string) (Attr, error)
	RemoveAll(p string) error
	Walk(p string, fn WalkFunc) error
	ReadFile(p string) ([]byte, error)
	WriteFile(p string, data []byte) error

	// Capacity accounting (redirection decisions, experiments).
	Capacity() int64
	Used() int64
	Utilization() float64
	NumFiles() int64
}

// FS implements FileSystem.
var _ FileSystem = (*FS)(nil)
