package localfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

func newFS(capacity int64) *FS {
	return New(capacity, simnet.Disk7200)
}

func mustMkdir(t *testing.T, f *FS, dir uint64, name string) Attr {
	t.Helper()
	a, _, err := f.Mkdir(dir, name, 0o755)
	if err != nil {
		t.Fatalf("Mkdir(%q): %v", name, err)
	}
	return a
}

func mustCreate(t *testing.T, f *FS, dir uint64, name string) Attr {
	t.Helper()
	a, _, err := f.Create(dir, name, 0o644, false)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	return a
}

func TestCreateLookupReadWrite(t *testing.T) {
	f := newFS(0)
	d := mustMkdir(t, f, RootIno, "home")
	a := mustCreate(t, f, d.Ino, "hello.txt")

	n, _, err := f.Write(a.Ino, 0, []byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("Write: n=%d err=%v", n, err)
	}
	got, _, err := f.Lookup(d.Ino, "hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 11 || got.Type != TypeRegular {
		t.Fatalf("attr = %+v", got)
	}
	data, eof, _, err := f.Read(a.Ino, 0, 100)
	if err != nil || !eof || string(data) != "hello world" {
		t.Fatalf("Read: %q eof=%v err=%v", data, eof, err)
	}
	// Partial read.
	data, eof, _, _ = f.Read(a.Ino, 6, 5)
	if string(data) != "world" || !eof {
		t.Fatalf("partial read %q eof=%v", data, eof)
	}
	data, eof, _, _ = f.Read(a.Ino, 0, 5)
	if string(data) != "hello" || eof {
		t.Fatalf("prefix read %q eof=%v", data, eof)
	}
	// Read past EOF.
	data, eof, _, err = f.Read(a.Ino, 100, 5)
	if err != nil || !eof || len(data) != 0 {
		t.Fatalf("past-eof read %q eof=%v err=%v", data, eof, err)
	}
}

func TestWriteAtOffsetExtends(t *testing.T) {
	f := newFS(0)
	a := mustCreate(t, f, RootIno, "sparse")
	if _, _, err := f.Write(a.Ino, 5, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	data, _, _, _ := f.Read(a.Ino, 0, 10)
	want := []byte{0, 0, 0, 0, 0, 'x', 'y'}
	if !bytes.Equal(data, want) {
		t.Fatalf("data = %v", data)
	}
	if f.Used() != 7 {
		t.Fatalf("used = %d", f.Used())
	}
	// Overwrite does not change usage.
	f.Write(a.Ino, 0, []byte("ab"))
	if f.Used() != 7 {
		t.Fatalf("used after overwrite = %d", f.Used())
	}
}

func TestQuotaEnforced(t *testing.T) {
	f := newFS(100)
	a := mustCreate(t, f, RootIno, "big")
	if _, _, err := f.Write(a.Ino, 0, make([]byte, 100)); err != nil {
		t.Fatalf("write at capacity: %v", err)
	}
	if _, _, err := f.Write(a.Ino, 100, []byte{1}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-capacity write err = %v", err)
	}
	// Freeing space allows new writes.
	if _, err := f.Remove(RootIno, "big"); err != nil {
		t.Fatal(err)
	}
	if f.Used() != 0 {
		t.Fatalf("used after remove = %d", f.Used())
	}
	b := mustCreate(t, f, RootIno, "b")
	if _, _, err := f.Write(b.Ino, 0, make([]byte, 60)); err != nil {
		t.Fatalf("write after free: %v", err)
	}
	if got := f.Utilization(); got != 0.6 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestTruncateViaSetattr(t *testing.T) {
	f := newFS(0)
	a := mustCreate(t, f, RootIno, "t")
	f.Write(a.Ino, 0, []byte("0123456789"))
	sz := int64(4)
	attr, _, err := f.Setattr(a.Ino, SetAttr{Size: &sz})
	if err != nil || attr.Size != 4 {
		t.Fatalf("truncate: %+v err=%v", attr, err)
	}
	if f.Used() != 4 {
		t.Fatalf("used = %d", f.Used())
	}
	// Extend with zeros.
	sz = 8
	f.Setattr(a.Ino, SetAttr{Size: &sz})
	data, _, _, _ := f.Read(a.Ino, 0, 100)
	if !bytes.Equal(data, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("data = %v", data)
	}
	// Negative size rejected.
	sz = -1
	if _, _, err := f.Setattr(a.Ino, SetAttr{Size: &sz}); !errors.Is(err, ErrTooBig) {
		t.Fatalf("negative size err = %v", err)
	}
	// Truncating a directory rejected.
	d := mustMkdir(t, f, RootIno, "d")
	sz = 0
	if _, _, err := f.Setattr(d.Ino, SetAttr{Size: &sz}); !errors.Is(err, ErrIsDir) {
		t.Fatalf("dir truncate err = %v", err)
	}
}

func TestSetattrModeOwner(t *testing.T) {
	f := newFS(0)
	a := mustCreate(t, f, RootIno, "x")
	mode, uid, gid := uint32(0o600), uint32(1001), uint32(100)
	attr, _, err := f.Setattr(a.Ino, SetAttr{Mode: &mode, UID: &uid, GID: &gid})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Mode != 0o600 || attr.UID != 1001 || attr.GID != 100 {
		t.Fatalf("attr = %+v", attr)
	}
}

func TestMkdirErrors(t *testing.T) {
	f := newFS(0)
	mustMkdir(t, f, RootIno, "d")
	if _, _, err := f.Mkdir(RootIno, "d", 0o755); !errors.Is(err, ErrExist) {
		t.Fatalf("dup mkdir err = %v", err)
	}
	if _, _, err := f.Mkdir(999, "x", 0o755); !errors.Is(err, ErrStale) {
		t.Fatalf("stale parent err = %v", err)
	}
	a := mustCreate(t, f, RootIno, "f")
	if _, _, err := f.Mkdir(a.Ino, "x", 0o755); !errors.Is(err, ErrNotDir) {
		t.Fatalf("mkdir in file err = %v", err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", strings.Repeat("x", 300)} {
		if _, _, err := f.Mkdir(RootIno, bad, 0o755); !errors.Is(err, ErrInval) {
			t.Errorf("Mkdir(%q) err = %v", bad, err)
		}
	}
}

func TestCreateExclusive(t *testing.T) {
	f := newFS(0)
	mustCreate(t, f, RootIno, "f")
	if _, _, err := f.Create(RootIno, "f", 0o644, true); !errors.Is(err, ErrExist) {
		t.Fatalf("exclusive create err = %v", err)
	}
	// Unchecked create truncates.
	a := mustCreate(t, f, RootIno, "g")
	f.Write(a.Ino, 0, []byte("data"))
	got, _, err := f.Create(RootIno, "g", 0o644, false)
	if err != nil || got.Size != 0 {
		t.Fatalf("unchecked create: %+v err=%v", got, err)
	}
	if f.Used() != 0 {
		t.Fatalf("used after truncate = %d", f.Used())
	}
	// Unchecked create over a directory fails.
	mustMkdir(t, f, RootIno, "d")
	if _, _, err := f.Create(RootIno, "d", 0o644, false); !errors.Is(err, ErrIsDir) {
		t.Fatalf("create over dir err = %v", err)
	}
}

func TestRemoveAndRmdir(t *testing.T) {
	f := newFS(0)
	d := mustMkdir(t, f, RootIno, "d")
	mustCreate(t, f, d.Ino, "f")
	if _, err := f.Rmdir(RootIno, "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	if _, err := f.Remove(RootIno, "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("remove dir err = %v", err)
	}
	if _, err := f.Rmdir(d.Ino, "f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("rmdir file err = %v", err)
	}
	if _, err := f.Remove(d.Ino, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Rmdir(RootIno, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Remove(RootIno, "ghost"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("remove missing err = %v", err)
	}
	// Stale handles after removal.
	if _, _, err := f.Getattr(d.Ino); !errors.Is(err, ErrStale) {
		t.Fatalf("getattr removed dir err = %v", err)
	}
}

func TestRename(t *testing.T) {
	f := newFS(0)
	d1 := mustMkdir(t, f, RootIno, "d1")
	d2 := mustMkdir(t, f, RootIno, "d2")
	a := mustCreate(t, f, d1.Ino, "f")
	f.Write(a.Ino, 0, []byte("payload"))

	if _, err := f.Rename(d1.Ino, "f", d2.Ino, "g"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Lookup(d1.Ino, "f"); !errors.Is(err, ErrNoEnt) {
		t.Fatal("source still present after rename")
	}
	got, _, err := f.Lookup(d2.Ino, "g")
	if err != nil || got.Ino != a.Ino || got.Size != 7 {
		t.Fatalf("dest lookup: %+v err=%v", got, err)
	}

	// Overwrite an existing file.
	mustCreate(t, f, d2.Ino, "h")
	if _, err := f.Rename(d2.Ino, "g", d2.Ino, "h"); err != nil {
		t.Fatal(err)
	}
	// Rename dir over non-empty dir fails.
	s1 := mustMkdir(t, f, RootIno, "s1")
	s2 := mustMkdir(t, f, RootIno, "s2")
	mustCreate(t, f, s2.Ino, "inner")
	if _, err := f.Rename(RootIno, "s1", RootIno, "s2"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rename over non-empty dir err = %v", err)
	}
	// Rename dir into its own subtree fails.
	sub := mustMkdir(t, f, s1.Ino, "sub")
	if _, err := f.Rename(RootIno, "s1", sub.Ino, "evil"); !errors.Is(err, ErrInval) {
		t.Fatalf("rename into own subtree err = %v", err)
	}
	// Rename missing source.
	if _, err := f.Rename(RootIno, "nope", RootIno, "x"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("rename missing err = %v", err)
	}
	_ = s2
}

func TestReaddirSorted(t *testing.T) {
	f := newFS(0)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		mustCreate(t, f, RootIno, n)
	}
	mustMkdir(t, f, RootIno, "bdir")
	f.Symlink(RootIno, "slink", "target")
	ents, _, err := f.Readdir(RootIno)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	want := []string{"alpha", "bdir", "mid", "slink", "zeta"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("names = %v", names)
	}
	for _, e := range ents {
		switch e.Name {
		case "bdir":
			if e.Type != TypeDir {
				t.Errorf("bdir type = %v", e.Type)
			}
		case "slink":
			if e.Type != TypeSymlink {
				t.Errorf("slink type = %v", e.Type)
			}
		default:
			if e.Type != TypeRegular {
				t.Errorf("%s type = %v", e.Name, e.Type)
			}
		}
	}
}

func TestSymlinkReadlink(t *testing.T) {
	f := newFS(0)
	a, _, err := f.Symlink(RootIno, "lnk", "dir#salt42")
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != TypeSymlink || a.Size != int64(len("dir#salt42")) {
		t.Fatalf("attr = %+v", a)
	}
	target, _, err := f.Readlink(a.Ino)
	if err != nil || target != "dir#salt42" {
		t.Fatalf("readlink = %q err=%v", target, err)
	}
	// Readlink on a file fails.
	b := mustCreate(t, f, RootIno, "f")
	if _, _, err := f.Readlink(b.Ino); !errors.Is(err, ErrInval) {
		t.Fatalf("readlink on file err = %v", err)
	}
	// Symlink target counts against quota.
	g := New(5, simnet.Disk7200)
	if _, _, err := g.Symlink(RootIno, "l", "123456"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("symlink over quota err = %v", err)
	}
}

func TestPathHelpers(t *testing.T) {
	f := newFS(0)
	if _, err := f.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	attr, err := f.LookupPath("/a/b/c")
	if err != nil || attr.Type != TypeDir {
		t.Fatalf("LookupPath: %+v err=%v", attr, err)
	}
	// MkdirAll is idempotent.
	if _, err := f.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/a/b/c/file.txt", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadFile("/a/b/c/file.txt")
	if err != nil || string(data) != "xyz" {
		t.Fatalf("ReadFile = %q err=%v", data, err)
	}
	// MkdirAll through a file fails.
	if _, err := f.MkdirAll("/a/b/c/file.txt/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("MkdirAll through file err = %v", err)
	}
	if _, err := f.LookupPath("/a/zz"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("LookupPath missing err = %v", err)
	}
	// Root lookup.
	r, err := f.LookupPath("/")
	if err != nil || r.Ino != RootIno {
		t.Fatalf("root lookup: %+v err=%v", r, err)
	}
}

func TestRemoveAllSubtree(t *testing.T) {
	f := newFS(0)
	f.WriteFile("/a/b/f1", []byte("11111"))
	f.WriteFile("/a/b/c/f2", []byte("22222"))
	f.WriteFile("/a/keep", []byte("k"))
	if err := f.RemoveAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LookupPath("/a/b"); !errors.Is(err, ErrNoEnt) {
		t.Fatal("subtree still present")
	}
	if _, err := f.LookupPath("/a/keep"); err != nil {
		t.Fatal("sibling lost")
	}
	if f.Used() != 1 || f.NumFiles() != 1 {
		t.Fatalf("used=%d files=%d", f.Used(), f.NumFiles())
	}
	// Missing target is fine.
	if err := f.RemoveAll("/no/such"); err != nil {
		t.Fatal(err)
	}
	// Purge the whole store.
	if err := f.RemoveAll("/"); err != nil {
		t.Fatal(err)
	}
	if f.Used() != 0 || f.NumFiles() != 0 {
		t.Fatalf("after purge used=%d files=%d", f.Used(), f.NumFiles())
	}
	ents, _, _ := f.Readdir(RootIno)
	if len(ents) != 0 {
		t.Fatalf("root not empty: %v", ents)
	}
}

func TestWalkOrderAndContent(t *testing.T) {
	f := newFS(0)
	f.WriteFile("/a/z", []byte("z"))
	f.WriteFile("/a/b/x", []byte("x"))
	f.Symlink(RootIno, "top", "t")
	var visited []string
	err := f.Walk("/", func(p string, attr Attr, target string) error {
		visited = append(visited, fmt.Sprintf("%s:%s", p, attr.Type))
		if attr.Type == TypeSymlink && target != "t" {
			t.Errorf("symlink target = %q", target)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/:dir", "/a:dir", "/a/b:dir", "/a/b/x:file", "/a/z:file", "/top:symlink"}
	if strings.Join(visited, " ") != strings.Join(want, " ") {
		t.Fatalf("walk order = %v", visited)
	}
	// Walk of a subtree.
	visited = nil
	f.Walk("/a/b", func(p string, attr Attr, _ string) error {
		visited = append(visited, p)
		return nil
	})
	if strings.Join(visited, " ") != "/a/b /a/b/x" {
		t.Fatalf("subtree walk = %v", visited)
	}
	// Propagates callback errors.
	sentinel := errors.New("stop")
	if err := f.Walk("/", func(string, Attr, string) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("walk error = %v", err)
	}
}

func TestStatfs(t *testing.T) {
	f := newFS(1000)
	f.WriteFile("/f", make([]byte, 123))
	st, _, err := f.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes != 1000 || st.UsedBytes != 123 || st.Files != 1 {
		t.Fatalf("statfs = %+v", st)
	}
}

func TestInodeOverheadCharged(t *testing.T) {
	f := New(1200, simnet.Disk7200, WithInodeOverhead(512))
	// Root costs 512 already.
	if f.Used() != 512 {
		t.Fatalf("initial used = %d", f.Used())
	}
	mustMkdir(t, f, RootIno, "d")
	if f.Used() != 1024 {
		t.Fatalf("used after mkdir = %d", f.Used())
	}
	// Third inode exceeds 1200.
	if _, _, err := f.Mkdir(RootIno, "e", 0o755); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
}

func TestClockInjection(t *testing.T) {
	fake := time.Date(2004, 11, 6, 0, 0, 0, 0, time.UTC)
	f := New(0, simnet.Disk7200, WithClock(func() time.Time { return fake }))
	a := mustCreate(t, f, RootIno, "f")
	if !a.Mtime.Equal(fake) || !a.Ctime.Equal(fake) {
		t.Fatalf("times = %+v", a)
	}
}

func TestReadWriteInvalidArgs(t *testing.T) {
	f := newFS(0)
	a := mustCreate(t, f, RootIno, "f")
	if _, _, _, err := f.Read(a.Ino, -1, 10); !errors.Is(err, ErrInval) {
		t.Fatalf("negative offset read err = %v", err)
	}
	if _, _, err := f.Write(a.Ino, -1, []byte("x")); !errors.Is(err, ErrInval) {
		t.Fatalf("negative offset write err = %v", err)
	}
	d := mustMkdir(t, f, RootIno, "d")
	if _, _, _, err := f.Read(d.Ino, 0, 1); !errors.Is(err, ErrIsDir) {
		t.Fatalf("read dir err = %v", err)
	}
	if _, _, err := f.Write(d.Ino, 0, []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("write dir err = %v", err)
	}
	l, _, _ := f.Symlink(RootIno, "l", "t")
	if _, _, _, err := f.Read(l.Ino, 0, 1); !errors.Is(err, ErrInval) {
		t.Fatalf("read symlink err = %v", err)
	}
}

// Property: used bytes always equals the sum of all file and symlink sizes.
func TestPropUsageAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := newFS(0)
	type fileRef struct {
		dir  uint64
		name string
		ino  uint64
	}
	var files []fileRef
	dirs := []uint64{RootIno}

	verify := func() {
		var want int64
		f.Walk("/", func(p string, a Attr, _ string) error {
			if a.Type != TypeDir {
				want += a.Size
			}
			return nil
		})
		if got := f.Used(); got != want {
			t.Fatalf("used = %d, walk sum = %d", got, want)
		}
	}

	for step := 0; step < 500; step++ {
		switch r.Intn(5) {
		case 0: // mkdir
			d := dirs[r.Intn(len(dirs))]
			a, _, err := f.Mkdir(d, fmt.Sprintf("d%d", step), 0o755)
			if err == nil {
				dirs = append(dirs, a.Ino)
			}
		case 1: // create
			d := dirs[r.Intn(len(dirs))]
			name := fmt.Sprintf("f%d", step)
			a, _, err := f.Create(d, name, 0o644, false)
			if err == nil {
				files = append(files, fileRef{d, name, a.Ino})
			}
		case 2: // write
			if len(files) > 0 {
				fr := files[r.Intn(len(files))]
				f.Write(fr.ino, int64(r.Intn(2000)), make([]byte, r.Intn(4000)))
			}
		case 3: // truncate
			if len(files) > 0 {
				fr := files[r.Intn(len(files))]
				sz := int64(r.Intn(1000))
				f.Setattr(fr.ino, SetAttr{Size: &sz})
			}
		case 4: // remove
			if len(files) > 1 {
				i := r.Intn(len(files))
				fr := files[i]
				if _, err := f.Remove(fr.dir, fr.name); err == nil {
					files = append(files[:i], files[i+1:]...)
				}
			}
		}
		if step%50 == 0 {
			verify()
		}
	}
	verify()
}

func BenchmarkWrite4K(b *testing.B) {
	f := newFS(0)
	a, _, _ := f.Create(RootIno, "bench", 0o644, false)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Write(a.Ino, int64(i%256)*4096, buf)
	}
}

func BenchmarkLookup(b *testing.B) {
	f := newFS(0)
	for i := 0; i < 100; i++ {
		f.Create(RootIno, fmt.Sprintf("f%02d", i), 0o644, false)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Lookup(RootIno, "f50")
	}
}
