package localfs_test

import (
	"testing"

	"repro/internal/fstest"
	"repro/internal/localfs"
	"repro/internal/simnet"
)

// The in-memory store must pass the same battery as the on-disk one.
func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T, capacity int64) localfs.FileSystem {
		return localfs.New(capacity, simnet.Disk7200)
	})
}
