package nfs

import (
	"sync"
	"sync/atomic"

	"repro/internal/localfs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// drcSize bounds the duplicate-request cache: replies to the most recent
// mutating requests are retained, evicted FIFO. Retransmissions arrive back
// to back in the simulated network, so a small window suffices.
const drcSize = 1024

// drcKey identifies one request: the calling node plus the transaction id
// its client stamped on the wire. xids are unique per client, so (from, xid)
// is unique per request cluster-wide.
type drcKey struct {
	from simnet.Addr
	xid  uint64
}

// Server exports one localfs over the network. In the Kosha deployment
// model every participating node "is assumed to run an NFS server, so that
// its contributed disk space can be accessed via NFS" (Section 4).
//
// Mutating procedures execute at-most-once: a duplicate-request cache keyed
// by (caller, xid) replays the recorded reply for a retransmitted request
// instead of re-executing it, so a duplicated CREATE cannot turn into
// ErrExist and a duplicated REMOVE cannot turn into ErrNoEnt.
type Server struct {
	fs  localfs.FileSystem
	gen atomic.Uint64

	drcMu   sync.Mutex
	drc     map[drcKey][]byte
	drcFIFO []drcKey
	drcNext int // ring index of the next slot to overwrite
	replays atomic.Uint64
}

// NewServer wraps fs; gen seeds the handle generation (server incarnation).
func NewServer(fs localfs.FileSystem, gen uint64) *Server {
	s := &Server{fs: fs}
	s.gen.Store(gen)
	return s
}

// FS returns the backing file system (tests and node-local maintenance).
func (s *Server) FS() localfs.FileSystem { return s.fs }

// Root returns the handle of the exported root directory.
func (s *Server) Root() Handle {
	return Handle{Gen: s.gen.Load(), Ino: localfs.RootIno}
}

// Bump invalidates all outstanding handles by advancing the incarnation,
// used when a revived node purges its store (Section 4.3.2).
func (s *Server) Bump() { s.gen.Add(1) }

// Attach registers the server's RPC handler on the network at addr.
func (s *Server) Attach(n simnet.Transport, addr simnet.Addr) {
	n.Register(addr, Service, s.Handle)
}

// Handle is the simnet.Handler entry point: decode proc and xid, consult the
// duplicate-request cache for mutating procedures, dispatch, encode.
func (s *Server) Handle(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
	d := wire.NewDecoder(req)
	proc := Proc(d.Uint32())
	xid := d.Uint64()
	if d.Err() != nil {
		return s.fail(proc, ErrInval), 0, nil
	}
	if mutating(proc) {
		if resp, ok := s.drcGet(from, xid); ok {
			// Retransmission of a request already executed: replay the
			// recorded reply without touching the file system.
			s.replays.Add(1)
			return resp, 0, nil
		}
	}
	resp, cost := s.dispatch(proc, d)
	if mutating(proc) {
		s.drcPut(from, xid, resp)
	}
	return resp, cost, nil
}

// mutating reports whether a procedure changes file system state and must
// therefore execute at-most-once. Reads, lookups, and getattrs are naturally
// idempotent and bypass the cache.
func mutating(p Proc) bool {
	switch p {
	case ProcSetattr, ProcWrite, ProcWriteBatch, ProcCreate, ProcMkdir,
		ProcSymlink, ProcRemove, ProcRmdir, ProcRename:
		return true
	}
	return false
}

// Replays reports how many retransmitted requests the duplicate-request
// cache has answered without re-execution.
func (s *Server) Replays() uint64 { return s.replays.Load() }

func (s *Server) drcGet(from simnet.Addr, xid uint64) ([]byte, bool) {
	k := drcKey{from: from, xid: xid}
	s.drcMu.Lock()
	resp, ok := s.drc[k]
	s.drcMu.Unlock()
	return resp, ok
}

func (s *Server) drcPut(from simnet.Addr, xid uint64, resp []byte) {
	k := drcKey{from: from, xid: xid}
	s.drcMu.Lock()
	defer s.drcMu.Unlock()
	if s.drc == nil {
		s.drc = make(map[drcKey][]byte, drcSize)
		s.drcFIFO = make([]drcKey, drcSize)
	}
	if _, dup := s.drc[k]; dup {
		return
	}
	if len(s.drc) >= drcSize {
		delete(s.drc, s.drcFIFO[s.drcNext])
	}
	s.drc[k] = resp
	s.drcFIFO[s.drcNext] = k
	s.drcNext = (s.drcNext + 1) % drcSize
}

// fail encodes an error-only reply.
func (s *Server) fail(proc Proc, st Status) []byte {
	e := wire.NewEncoder(8)
	e.PutUint32(uint32(st))
	_ = proc
	return append([]byte(nil), e.Bytes()...)
}

// check resolves a handle to an inode number, validating the incarnation.
func (s *Server) check(h Handle) (uint64, Status) {
	if h.Gen != s.gen.Load() {
		return 0, ErrStale
	}
	return h.Ino, OK
}

func (s *Server) dispatch(proc Proc, d *wire.Decoder) ([]byte, simnet.Cost) {
	e := wire.NewEncoder(128)
	switch proc {
	case ProcNull:
		e.PutUint32(uint32(OK))
		return e.Bytes(), 0

	case ProcMountRoot:
		e.PutUint32(uint32(OK))
		putHandle(e, s.Root())
		return e.Bytes(), 0

	case ProcGetattr:
		h := getHandle(d)
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		attr, cost, err := s.fs.Getattr(ino)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		putAttr(e, attr)
		return e.Bytes(), cost

	case ProcSetattr:
		h := getHandle(d)
		sa := getSetAttr(d)
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		attr, cost, err := s.fs.Setattr(ino, sa)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		putAttr(e, attr)
		return e.Bytes(), cost

	case ProcLookup:
		h := getHandle(d)
		name := d.String()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		attr, cost, err := s.fs.Lookup(ino, name)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		putHandle(e, Handle{Gen: h.Gen, Ino: attr.Ino})
		putAttr(e, attr)
		return e.Bytes(), cost

	case ProcAccess:
		h := getHandle(d)
		want := d.Uint32()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		attr, cost, err := s.fs.Getattr(ino)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		putAttr(e, attr)
		e.PutUint32(want & accessFor(attr))
		return e.Bytes(), cost

	case ProcFSInfo:
		h := getHandle(d)
		if _, st := s.check(h); st != OK {
			return s.fail(proc, st), 0
		}
		e.PutUint32(uint32(OK))
		e.PutUint32(64 << 10) // rtmax
		e.PutUint32(64 << 10) // wtmax
		e.PutUint32(32 << 10) // rtpref
		e.PutUint32(32 << 10) // wtpref
		e.PutInt64(localfs.MaxFileSize)
		return e.Bytes(), 0

	case ProcReadlink:
		h := getHandle(d)
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		target, cost, err := s.fs.Readlink(ino)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		e.PutString(target)
		return e.Bytes(), cost

	case ProcRead:
		h := getHandle(d)
		offset := d.Int64()
		count := d.Uint32()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		data, eof, cost, err := s.fs.Read(ino, offset, int(count))
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		e.PutBool(eof)
		e.PutOpaque(data)
		return e.Bytes(), cost

	case ProcReadStream:
		h := getHandle(d)
		offset := d.Int64()
		chunk := int(d.Uint32())
		chunks := int(d.Uint32())
		if d.Err() != nil || chunk <= 0 || chunks <= 0 {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		// The window's chunk reads run back to back against the store; their
		// disk costs accumulate, but the propagation round trip is paid once
		// for the whole window — that is the entire point of the procedure.
		var data []byte
		var eof bool
		var cost simnet.Cost
		off := offset
		for i := 0; i < chunks; i++ {
			piece, pe, c, err := s.fs.Read(ino, off, chunk)
			cost = simnet.Seq(cost, c)
			if err != nil {
				return s.fail(proc, toStatus(err)), cost
			}
			data = append(data, piece...)
			off += int64(len(piece))
			if pe || len(piece) < chunk {
				eof = pe
				break
			}
		}
		e.PutUint32(uint32(OK))
		e.PutBool(eof)
		e.PutOpaque(data)
		return e.Bytes(), cost

	case ProcWriteBatch:
		h := getHandle(d)
		spans := GetWriteSpans(d)
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		var total int
		var cost simnet.Cost
		for _, sp := range spans {
			n, c, err := s.fs.Write(ino, sp.Offset, sp.Data)
			cost = simnet.Seq(cost, c)
			if err != nil {
				return s.fail(proc, toStatus(err)), cost
			}
			total += n
		}
		e.PutUint32(uint32(OK))
		e.PutUint32(uint32(total))
		return e.Bytes(), cost

	case ProcWrite:
		h := getHandle(d)
		offset := d.Int64()
		data := d.Opaque()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		n, cost, err := s.fs.Write(ino, offset, data)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		e.PutUint32(uint32(n))
		return e.Bytes(), cost

	case ProcCreate:
		h := getHandle(d)
		name := d.String()
		mode := d.Uint32()
		exclusive := d.Bool()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		attr, cost, err := s.fs.Create(ino, name, mode, exclusive)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		putHandle(e, Handle{Gen: h.Gen, Ino: attr.Ino})
		putAttr(e, attr)
		return e.Bytes(), cost

	case ProcMkdir:
		h := getHandle(d)
		name := d.String()
		mode := d.Uint32()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		attr, cost, err := s.fs.Mkdir(ino, name, mode)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		putHandle(e, Handle{Gen: h.Gen, Ino: attr.Ino})
		putAttr(e, attr)
		return e.Bytes(), cost

	case ProcSymlink:
		h := getHandle(d)
		name := d.String()
		target := d.String()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		attr, cost, err := s.fs.Symlink(ino, name, target)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		putHandle(e, Handle{Gen: h.Gen, Ino: attr.Ino})
		putAttr(e, attr)
		return e.Bytes(), cost

	case ProcRemove, ProcRmdir:
		h := getHandle(d)
		name := d.String()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		var cost simnet.Cost
		var err error
		if proc == ProcRemove {
			cost, err = s.fs.Remove(ino, name)
		} else {
			cost, err = s.fs.Rmdir(ino, name)
		}
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		return e.Bytes(), cost

	case ProcRename:
		fromH := getHandle(d)
		fromName := d.String()
		toH := getHandle(d)
		toName := d.String()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		fromIno, st := s.check(fromH)
		if st != OK {
			return s.fail(proc, st), 0
		}
		toIno, st := s.check(toH)
		if st != OK {
			return s.fail(proc, st), 0
		}
		cost, err := s.fs.Rename(fromIno, fromName, toIno, toName)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		return e.Bytes(), cost

	case ProcReaddir:
		h := getHandle(d)
		cookie := d.Uint64()
		count := d.Uint32()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		ents, cost, err := s.fs.Readdir(ino)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		start := int(cookie)
		if start > len(ents) {
			start = len(ents)
		}
		end := start + int(count)
		if count == 0 || end > len(ents) {
			end = len(ents)
		}
		page := ents[start:end]
		e.PutUint32(uint32(OK))
		e.PutBool(end == len(ents)) // eof
		e.PutUint64(uint64(end))    // next cookie
		e.PutUint32(uint32(len(page)))
		for _, ent := range page {
			e.PutString(ent.Name)
			e.PutUint64(ent.Ino)
			e.PutUint32(uint32(ent.Type))
		}
		return e.Bytes(), cost

	case ProcReaddirPlus:
		h := getHandle(d)
		cookie := d.Uint64()
		count := d.Uint32()
		if d.Err() != nil {
			return s.fail(proc, ErrInval), 0
		}
		ino, st := s.check(h)
		if st != OK {
			return s.fail(proc, st), 0
		}
		ents, cost, err := s.fs.Readdir(ino)
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		start := int(cookie)
		if start > len(ents) {
			start = len(ents)
		}
		end := start + int(count)
		if count == 0 || end > len(ents) {
			end = len(ents)
		}
		page := ents[start:end]
		e.PutUint32(uint32(OK))
		e.PutBool(end == len(ents)) // eof
		e.PutUint64(uint64(end))    // next cookie
		e.PutUint32(uint32(len(page)))
		// Per-entry attributes and link targets come from the inodes the
		// directory scan just brought into the server's cache, so only the
		// directory read is charged — the very asymmetry that makes
		// READDIRPLUS cheaper than a READDIR followed by N GETATTRs.
		for _, ent := range page {
			attr, _, aerr := s.fs.Getattr(ent.Ino)
			if aerr != nil {
				// The entry vanished between readdir and getattr; report
				// what the listing said and leave the attributes zero, as
				// READDIRPLUS's optional name_attributes allow.
				attr = localfs.Attr{Ino: ent.Ino, Type: ent.Type}
			}
			var target string
			if ent.Type == localfs.TypeSymlink {
				if t, _, lerr := s.fs.Readlink(ent.Ino); lerr == nil {
					target = t
				}
			}
			e.PutString(ent.Name)
			e.PutUint64(ent.Ino)
			e.PutUint32(uint32(ent.Type))
			putHandle(e, Handle{Gen: h.Gen, Ino: ent.Ino})
			putAttr(e, attr)
			e.PutString(target)
		}
		return e.Bytes(), cost

	case ProcFSStat:
		h := getHandle(d)
		if _, st := s.check(h); st != OK {
			return s.fail(proc, st), 0
		}
		st, cost, err := s.fs.Statfs()
		if err != nil {
			return s.fail(proc, toStatus(err)), cost
		}
		e.PutUint32(uint32(OK))
		e.PutInt64(st.TotalBytes)
		e.PutInt64(st.UsedBytes)
		e.PutInt64(st.Files)
		return e.Bytes(), cost

	default:
		return s.fail(proc, ErrInval), 0
	}
}

// accessFor derives the ACCESS grant mask from an entry's mode bits,
// evaluated for the owner class (Kosha's deployment model trusts the
// administrator-controlled nodes, Section 4.1.6, so owner-class checks are
// the meaningful ones).
func accessFor(a localfs.Attr) uint32 {
	var m uint32
	if a.Mode&0o400 != 0 {
		m |= AccessRead
	}
	if a.Mode&0o200 != 0 {
		m |= AccessModify | AccessExtend | AccessDelete
	}
	if a.Mode&0o100 != 0 {
		m |= AccessExecute
		if a.Type == localfs.TypeDir {
			m |= AccessLookup
		}
	}
	if a.Type == localfs.TypeDir && a.Mode&0o100 != 0 {
		m |= AccessLookup
	}
	return m
}
