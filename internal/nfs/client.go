package nfs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/localfs"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// ClientStats counts the RPC traffic one client has issued, so harnesses can
// report rpcs/op alongside simulated seconds and quantify round-trip savings
// (e.g. the attribute-cache and READDIRPLUS ablations).
type ClientStats struct {
	RPCs  uint64 // calls issued (including failed ones)
	Bytes uint64 // request + reply payload bytes
}

// Sub returns the traffic accumulated since an earlier snapshot.
func (s ClientStats) Sub(prev ClientStats) ClientStats {
	return ClientStats{RPCs: s.RPCs - prev.RPCs, Bytes: s.Bytes - prev.Bytes}
}

// maxProc bounds the per-procedure counter table (ProcMountRoot = 100 is the
// highest procedure number in use).
const maxProc = 128

// procHistNames pre-interns every "rpc.<PROC>" histogram label so the RPC
// hot path never builds a label string — not even on a procedure's first
// use. Built once at init; unknown procedure numbers get their PROC(n) form.
var procHistNames [maxProc]string

func init() {
	for i := range procHistNames {
		procHistNames[i] = "rpc." + Proc(i).String()
	}
}

// clientState is the shared mutable core behind Client values: the
// transport, counters, and the xid sequence. One state is shared by every
// context-stamped copy of a client, so xids stay unique per node and the
// counters aggregate regardless of which copy issued the call.
type clientState struct {
	net    simnet.Caller
	ctxNet simnet.CtxCaller // non-nil when net supports trace propagation
	from   simnet.Addr

	reg    *obs.Registry
	rpcs   *obs.Counter
	bytes  *obs.Counter
	xid    atomic.Uint64 // transaction id, unique per (client, request)
	byProc [maxProc]atomic.Pointer[obs.Histogram]
}

// Client issues NFS RPCs from one node to another over the transport.
// koshad uses it both to serve lookups "as if it is an NFS client of R"
// (Section 4.1.3) and to forward interposed RPCs to remote stores.
//
// Client is a small copyable value over shared state: WithCtx stamps a
// trace context onto a copy without allocating, so an op's RPCs carry its
// TraceContext while the same underlying counters and xid sequence serve
// every copy.
//
// All traffic counters live in an obs.Registry ("nfs.rpcs", "nfs.bytes",
// per-procedure "rpc.<PROC>" counts and latency histograms) so snapshots and
// resets come from one place. koshad and the simulated nodes pass in their
// node-wide registry; NewClient creates a private one.
type Client struct {
	s  *clientState
	tc obs.TraceContext
}

// NewClient returns a client that originates calls from addr, with a private
// metrics registry.
func NewClient(net simnet.Caller, from simnet.Addr) Client {
	return NewClientWithRegistry(net, from, obs.NewRegistry())
}

// NewClientWithRegistry returns a client whose traffic counters live in reg,
// letting a node fold its NFS client metrics into a node-wide registry.
func NewClientWithRegistry(net simnet.Caller, from simnet.Addr, reg *obs.Registry) Client {
	s := &clientState{
		net:   net,
		from:  from,
		reg:   reg,
		rpcs:  reg.Counter("nfs.rpcs"),
		bytes: reg.Counter("nfs.bytes"),
	}
	if cn, ok := net.(simnet.CtxCaller); ok {
		s.ctxNet = cn
	}
	return Client{s: s}
}

// WithCtx returns a copy of the client whose RPCs carry the given trace
// context. Zero-allocation: the copy shares all state with the original.
func (c Client) WithCtx(tc obs.TraceContext) Client {
	c.tc = tc
	return c
}

// From returns the address this client originates calls from.
func (c Client) From() simnet.Addr { return c.s.from }

// Registry exposes the registry backing this client's counters.
func (c Client) Registry() *obs.Registry { return c.s.reg }

// proc returns the cached "rpc.<PROC>" latency histogram for one procedure
// so the call hot path pays one pointer load instead of a registry lookup.
// Per-proc counts are the histogram counts — no separate counter.
func (c Client) proc(p Proc) *obs.Histogram {
	if p >= maxProc {
		p = maxProc - 1
	}
	if m := c.s.byProc[p].Load(); m != nil {
		return m
	}
	m := c.s.reg.Histogram(procHistNames[p])
	c.s.byProc[p].CompareAndSwap(nil, m)
	return c.s.byProc[p].Load()
}

// Stats returns a snapshot of the traffic counters.
func (c Client) Stats() ClientStats {
	return ClientStats{RPCs: c.s.rpcs.Load(), Bytes: c.s.bytes.Load()}
}

// ProcCount reports how many RPCs of one procedure have been issued.
func (c Client) ProcCount(p Proc) uint64 {
	if p >= maxProc {
		return 0
	}
	return c.proc(p).Count()
}

// ResetStats zeroes every metric in the client's registry (when the registry
// is shared with a node, this resets the node's whole metric surface — the
// unified semantics that replaced the three per-type Reset paths).
func (c Client) ResetStats() {
	c.s.reg.Reset()
}

// call performs one RPC, records traffic counters and the per-procedure
// latency histogram (simulated cost), and strips the status word. Every
// request carries a transaction id (xid) unique to this client so the
// server's duplicate-request cache can recognize retransmissions and keep
// non-idempotent procedures at-most-once. The client's trace context (if
// stamped via WithCtx) rides the envelope.
func (c Client) call(to simnet.Addr, proc Proc, build func(*wire.Encoder)) (*wire.Decoder, simnet.Cost, error) {
	e := wire.NewEncoder(256)
	e.PutUint32(uint32(proc))
	e.PutUint64(c.s.xid.Add(1))
	if build != nil {
		build(e)
	}
	lat := c.proc(proc)
	c.s.rpcs.Add(1)
	c.s.bytes.Add(uint64(len(e.Bytes())))
	var resp []byte
	var cost simnet.Cost
	var err error
	if c.tc.Valid() && c.s.ctxNet != nil {
		resp, cost, err = c.s.ctxNet.CallCtx(c.tc, c.s.from, to, Service, e.Bytes())
	} else {
		resp, cost, err = c.s.net.Call(c.s.from, to, Service, e.Bytes())
	}
	lat.Observe(time.Duration(cost))
	c.s.bytes.Add(uint64(len(resp)))
	if err != nil {
		return nil, cost, fmt.Errorf("nfs %s to %s: %w", proc, to, err)
	}
	d := wire.NewDecoder(resp)
	st := Status(d.Uint32())
	if d.Err() != nil {
		return nil, cost, fmt.Errorf("nfs %s to %s: bad reply: %w", proc, to, d.Err())
	}
	if st != OK {
		return nil, cost, &Error{Proc: proc, Status: st}
	}
	return d, cost, nil
}

// Null pings the server.
func (c Client) Null(to simnet.Addr) (simnet.Cost, error) {
	_, cost, err := c.call(to, ProcNull, nil)
	return cost, err
}

// MountRoot fetches the export's root handle (the MOUNT protocol's MNT).
func (c Client) MountRoot(to simnet.Addr) (Handle, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcMountRoot, nil)
	if err != nil {
		return Handle{}, cost, err
	}
	return getHandle(d), cost, nil
}

// Getattr fetches attributes for h.
func (c Client) Getattr(to simnet.Addr, h Handle) (localfs.Attr, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcGetattr, func(e *wire.Encoder) { putHandle(e, h) })
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	return getAttr(d), cost, nil
}

// Setattr updates attributes on h.
func (c Client) Setattr(to simnet.Addr, h Handle, sa localfs.SetAttr) (localfs.Attr, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcSetattr, func(e *wire.Encoder) {
		putHandle(e, h)
		putSetAttr(e, sa)
	})
	if err != nil {
		return localfs.Attr{}, cost, err
	}
	return getAttr(d), cost, nil
}

// Lookup resolves name within directory dir.
func (c Client) Lookup(to simnet.Addr, dir Handle, name string) (Handle, localfs.Attr, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcLookup, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutString(name)
	})
	if err != nil {
		return Handle{}, localfs.Attr{}, cost, err
	}
	h := getHandle(d)
	return h, getAttr(d), cost, nil
}

// LookupPath resolves a slash-separated path relative to root with one
// LOOKUP RPC per component, as an NFSv3 client must (the protocol has no
// full-path lookup, Section 4.1.3). Intermediate symlinks are not followed.
func (c Client) LookupPath(to simnet.Addr, root Handle, p string) (Handle, localfs.Attr, simnet.Cost, error) {
	h, attr, _, cost, err := c.LookupPathIdx(to, root, p)
	return h, attr, cost, err
}

// LookupPathIdx is LookupPath reporting how many components resolved before
// a failure (== the component count on success). Callers holding cached
// location state use it to tell a genuinely missing leaf from a dangling
// intermediate directory.
func (c Client) LookupPathIdx(to simnet.Addr, root Handle, p string) (Handle, localfs.Attr, int, simnet.Cost, error) {
	cur := root
	var attr localfs.Attr
	var total simnet.Cost
	attr, cost, err := c.Getattr(to, root)
	total = simnet.Seq(total, cost)
	if err != nil {
		return Handle{}, localfs.Attr{}, 0, total, err
	}
	resolved := 0
	for _, part := range splitPath(p) {
		var h Handle
		h, attr, cost, err = c.Lookup(to, cur, part)
		total = simnet.Seq(total, cost)
		if err != nil {
			return Handle{}, localfs.Attr{}, resolved, total, err
		}
		resolved++
		cur = h
	}
	return cur, attr, resolved, total, nil
}

func splitPath(p string) []string {
	var out []string
	for _, part := range strings.Split(p, "/") {
		if part != "" && part != "." {
			out = append(out, part)
		}
	}
	return out
}

// Access checks the caller's permissions on h, returning the granted
// subset of the requested mask.
func (c Client) Access(to simnet.Addr, h Handle, want uint32) (uint32, localfs.Attr, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcAccess, func(e *wire.Encoder) {
		putHandle(e, h)
		e.PutUint32(want)
	})
	if err != nil {
		return 0, localfs.Attr{}, cost, err
	}
	attr := getAttr(d)
	return d.Uint32(), attr, cost, nil
}

// FSInfo fetches the server's static limits.
func (c Client) FSInfo(to simnet.Addr, root Handle) (FSInfo, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcFSInfo, func(e *wire.Encoder) { putHandle(e, root) })
	if err != nil {
		return FSInfo{}, cost, err
	}
	return FSInfo{
		RTMax:   d.Uint32(),
		WTMax:   d.Uint32(),
		RTPref:  d.Uint32(),
		WTPref:  d.Uint32(),
		MaxFile: d.Int64(),
	}, cost, nil
}

// Readlink returns the target of symlink h.
func (c Client) Readlink(to simnet.Addr, h Handle) (string, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcReadlink, func(e *wire.Encoder) { putHandle(e, h) })
	if err != nil {
		return "", cost, err
	}
	return d.String(), cost, nil
}

// Read returns up to count bytes of h at offset.
func (c Client) Read(to simnet.Addr, h Handle, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcRead, func(e *wire.Encoder) {
		putHandle(e, h)
		e.PutInt64(offset)
		e.PutUint32(uint32(count))
	})
	if err != nil {
		return nil, false, cost, err
	}
	eof := d.Bool()
	return d.Opaque(), eof, cost, nil
}

// ReadStream reads up to chunks consecutive chunk-byte pieces of h starting
// at offset in one round trip — the pipelined window transfer behind the
// client's readahead. The reply concatenates the pieces; eof reports whether
// the file ended within the window.
func (c Client) ReadStream(to simnet.Addr, h Handle, offset int64, chunk, chunks int) ([]byte, bool, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcReadStream, func(e *wire.Encoder) {
		putHandle(e, h)
		e.PutInt64(offset)
		e.PutUint32(uint32(chunk))
		e.PutUint32(uint32(chunks))
	})
	if err != nil {
		return nil, false, cost, err
	}
	eof := d.Bool()
	return d.Opaque(), eof, cost, nil
}

// WriteBatch stores a vector of coalesced spans into h in one round trip —
// the flush transfer behind the client's write-back buffer. Spans apply in
// order; the result is the total byte count written.
func (c Client) WriteBatch(to simnet.Addr, h Handle, spans []WriteSpan) (int, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcWriteBatch, func(e *wire.Encoder) {
		putHandle(e, h)
		PutWriteSpans(e, spans)
	})
	if err != nil {
		return 0, cost, err
	}
	return int(d.Uint32()), cost, nil
}

// Write stores data into h at offset.
func (c Client) Write(to simnet.Addr, h Handle, offset int64, data []byte) (int, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcWrite, func(e *wire.Encoder) {
		putHandle(e, h)
		e.PutInt64(offset)
		e.PutOpaque(data)
	})
	if err != nil {
		return 0, cost, err
	}
	return int(d.Uint32()), cost, nil
}

// Create makes a regular file in dir.
func (c Client) Create(to simnet.Addr, dir Handle, name string, mode uint32, exclusive bool) (Handle, localfs.Attr, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcCreate, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutString(name)
		e.PutUint32(mode)
		e.PutBool(exclusive)
	})
	if err != nil {
		return Handle{}, localfs.Attr{}, cost, err
	}
	h := getHandle(d)
	return h, getAttr(d), cost, nil
}

// Mkdir makes a directory in dir.
func (c Client) Mkdir(to simnet.Addr, dir Handle, name string, mode uint32) (Handle, localfs.Attr, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcMkdir, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutString(name)
		e.PutUint32(mode)
	})
	if err != nil {
		return Handle{}, localfs.Attr{}, cost, err
	}
	h := getHandle(d)
	return h, getAttr(d), cost, nil
}

// Symlink makes a symbolic link in dir.
func (c Client) Symlink(to simnet.Addr, dir Handle, name, target string) (Handle, localfs.Attr, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcSymlink, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutString(name)
		e.PutString(target)
	})
	if err != nil {
		return Handle{}, localfs.Attr{}, cost, err
	}
	h := getHandle(d)
	return h, getAttr(d), cost, nil
}

// Remove unlinks a file or symlink.
func (c Client) Remove(to simnet.Addr, dir Handle, name string) (simnet.Cost, error) {
	_, cost, err := c.call(to, ProcRemove, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutString(name)
	})
	return cost, err
}

// Rmdir removes an empty directory.
func (c Client) Rmdir(to simnet.Addr, dir Handle, name string) (simnet.Cost, error) {
	_, cost, err := c.call(to, ProcRmdir, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutString(name)
	})
	return cost, err
}

// Rename moves fromName in fromDir to toName in toDir on the same server.
func (c Client) Rename(to simnet.Addr, fromDir Handle, fromName string, toDir Handle, toName string) (simnet.Cost, error) {
	_, cost, err := c.call(to, ProcRename, func(e *wire.Encoder) {
		putHandle(e, fromDir)
		e.PutString(fromName)
		putHandle(e, toDir)
		e.PutString(toName)
	})
	return cost, err
}

// Readdir reads one page of directory entries starting at cookie; count 0
// means "all remaining".
func (c Client) Readdir(to simnet.Addr, dir Handle, cookie uint64, count int) ([]DirEntry, bool, uint64, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcReaddir, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutUint64(cookie)
		e.PutUint32(uint32(count))
	})
	if err != nil {
		return nil, false, 0, cost, err
	}
	eof := d.Bool()
	next := d.Uint64()
	n := d.ArrayLen()
	ents := make([]DirEntry, 0, n)
	for i := 0; i < n; i++ {
		ents = append(ents, DirEntry{
			Name: d.String(),
			Ino:  d.Uint64(),
			Type: localfs.FileType(d.Uint32()),
		})
	}
	if d.Err() != nil {
		return nil, false, 0, cost, fmt.Errorf("nfs READDIR: bad reply: %w", d.Err())
	}
	return ents, eof, next, cost, nil
}

// ReaddirAll drains a directory, issuing pages of pageSize entries.
func (c Client) ReaddirAll(to simnet.Addr, dir Handle, pageSize int) ([]DirEntry, simnet.Cost, error) {
	var all []DirEntry
	var total simnet.Cost
	var cookie uint64
	for {
		ents, eof, next, cost, err := c.Readdir(to, dir, cookie, pageSize)
		total = simnet.Seq(total, cost)
		if err != nil {
			return nil, total, err
		}
		all = append(all, ents...)
		if eof {
			return all, total, nil
		}
		cookie = next
	}
}

// ReaddirPlus reads one page of directory entries with handles and
// attributes, starting at cookie; count 0 means "all remaining".
func (c Client) ReaddirPlus(to simnet.Addr, dir Handle, cookie uint64, count int) ([]DirEntryPlus, bool, uint64, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcReaddirPlus, func(e *wire.Encoder) {
		putHandle(e, dir)
		e.PutUint64(cookie)
		e.PutUint32(uint32(count))
	})
	if err != nil {
		return nil, false, 0, cost, err
	}
	eof := d.Bool()
	next := d.Uint64()
	n := d.ArrayLen()
	ents := make([]DirEntryPlus, 0, n)
	for i := 0; i < n; i++ {
		var ent DirEntryPlus
		ent.Name = d.String()
		ent.Ino = d.Uint64()
		ent.Type = localfs.FileType(d.Uint32())
		ent.FH = getHandle(d)
		ent.Attr = getAttr(d)
		ent.SymTarget = d.String()
		ents = append(ents, ent)
	}
	if d.Err() != nil {
		return nil, false, 0, cost, fmt.Errorf("nfs READDIRPLUS: bad reply: %w", d.Err())
	}
	return ents, eof, next, cost, nil
}

// ReaddirPlusAll drains a directory with READDIRPLUS pages of pageSize
// entries, returning every entry with its handle and attributes.
func (c Client) ReaddirPlusAll(to simnet.Addr, dir Handle, pageSize int) ([]DirEntryPlus, simnet.Cost, error) {
	var all []DirEntryPlus
	var total simnet.Cost
	var cookie uint64
	for {
		ents, eof, next, cost, err := c.ReaddirPlus(to, dir, cookie, pageSize)
		total = simnet.Seq(total, cost)
		if err != nil {
			return nil, total, err
		}
		all = append(all, ents...)
		if eof {
			return all, total, nil
		}
		cookie = next
	}
}

// FSStat fetches capacity accounting from the server exporting root.
func (c Client) FSStat(to simnet.Addr, root Handle) (FSStat, simnet.Cost, error) {
	d, cost, err := c.call(to, ProcFSStat, func(e *wire.Encoder) { putHandle(e, root) })
	if err != nil {
		return FSStat{}, cost, err
	}
	return FSStat{TotalBytes: d.Int64(), UsedBytes: d.Int64(), Files: d.Int64()}, cost, nil
}
