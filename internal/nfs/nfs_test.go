package nfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/localfs"
	"repro/internal/simnet"
)

// rig wires one NFS server ("srv") and a client node ("cli") together.
func rig(t *testing.T, capacity int64) (*simnet.Network, *Server, Client) {
	t.Helper()
	net := simnet.New(simnet.LAN100)
	fs := localfs.New(capacity, simnet.Disk7200)
	srv := NewServer(fs, 1)
	srv.Attach(net, "srv")
	net.AddNode("cli")
	return net, srv, NewClient(net, "cli")
}

func TestNullPing(t *testing.T) {
	_, _, c := rig(t, 0)
	cost, err := c.Null("srv")
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("cost = %v", cost)
	}
}

func TestCreateWriteReadOverRPC(t *testing.T) {
	_, srv, c := rig(t, 0)
	root := srv.Root()

	dirH, dirA, _, err := c.Mkdir("srv", root, "docs", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if dirA.Type != localfs.TypeDir {
		t.Fatalf("mkdir attr = %+v", dirA)
	}
	fh, _, _, err := c.Create("srv", dirH, "report.txt", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("kosha "), 100)
	n, _, err := c.Write("srv", fh, 0, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write n=%d err=%v", n, err)
	}
	data, eof, _, err := c.Read("srv", fh, 0, len(payload)+10)
	if err != nil || !eof || !bytes.Equal(data, payload) {
		t.Fatalf("read len=%d eof=%v err=%v", len(data), eof, err)
	}
	// Attributes round trip.
	attr, _, err := c.Getattr("srv", fh)
	if err != nil || attr.Size != int64(len(payload)) {
		t.Fatalf("getattr %+v err=%v", attr, err)
	}
}

// TestAtMostOnceUnderDuplication drives mutating RPCs through a link that
// duplicates every exchange: the server must execute each request exactly
// once (replaying the recorded reply for the retransmission), so duplicated
// CREATE/REMOVE/MKDIR cannot corrupt state or flip their answers.
func TestAtMostOnceUnderDuplication(t *testing.T) {
	net, srv, c := rig(t, 0)
	net.SetFaults(func(from, to simnet.Addr, service string) simnet.LinkFault {
		return simnet.LinkFault{Dup: true}
	})
	root := srv.Root()

	dirH, _, _, err := c.Mkdir("srv", root, "d", 0o755)
	if err != nil {
		t.Fatalf("mkdir under duplication: %v", err)
	}
	fh, _, _, err := c.Create("srv", dirH, "f", 0o644, true) // exclusive create
	if err != nil {
		t.Fatalf("exclusive create under duplication: %v", err)
	}
	if _, _, err := c.Write("srv", fh, 0, []byte("payload")); err != nil {
		t.Fatalf("write under duplication: %v", err)
	}
	if _, err := c.Remove("srv", dirH, "f"); err != nil {
		t.Fatalf("remove under duplication: %v", err)
	}
	// Every mutating RPC above was retransmitted once; each retransmission
	// must have been answered from the duplicate-request cache.
	if got, want := srv.Replays(), uint64(4); got != want {
		t.Fatalf("drc replays = %d, want %d", got, want)
	}
	// State reflects exactly-one execution of each op.
	if _, _, _, err := c.Lookup("srv", dirH, "f"); !IsStatus(err, ErrNoEnt) {
		t.Fatalf("f should be gone, lookup err = %v", err)
	}
	// Idempotent reads bypass the cache entirely.
	before := srv.Replays()
	if _, _, err := c.Getattr("srv", dirH); err != nil {
		t.Fatal(err)
	}
	if srv.Replays() != before {
		t.Fatal("read-only RPC hit the duplicate-request cache")
	}
}

// TestDRCDistinguishesClients checks the cache key includes the caller: two
// clients issuing the same xid must not collide.
func TestDRCDistinguishesClients(t *testing.T) {
	net, srv, c1 := rig(t, 0)
	net.AddNode("cli2")
	c2 := NewClient(net, "cli2")
	root := srv.Root()

	// Both clients start at xid 1; their first mutating RPCs share an xid.
	if _, _, _, err := c1.Mkdir("srv", root, "from-c1", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c2.Mkdir("srv", root, "from-c2", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c1.Lookup("srv", root, "from-c2"); err != nil {
		t.Fatalf("c2's mkdir was swallowed by c1's cache entry: %v", err)
	}
	if srv.Replays() != 0 {
		t.Fatalf("replays = %d, want 0 (distinct clients, distinct entries)", srv.Replays())
	}
}

func TestLookupAndLookupPath(t *testing.T) {
	_, srv, c := rig(t, 0)
	srv.FS().WriteFile("/a/b/c.txt", []byte("deep"))

	root := srv.Root()
	h, attr, _, err := c.Lookup("srv", root, "a")
	if err != nil || attr.Type != localfs.TypeDir {
		t.Fatalf("lookup a: %+v err=%v", attr, err)
	}
	_, _, _, err = c.Lookup("srv", h, "missing")
	if !IsStatus(err, ErrNoEnt) {
		t.Fatalf("lookup missing err = %v", err)
	}
	fh, fattr, cost, err := c.LookupPath("srv", root, "/a/b/c.txt")
	if err != nil || fattr.Size != 4 {
		t.Fatalf("lookupPath: %+v err=%v", fattr, err)
	}
	// Path lookup must cost more than a single RPC (one per component).
	_, single, _ := c.Getattr("srv", root)
	if cost < 3*single {
		t.Fatalf("LookupPath cost %v suspiciously low vs single %v", cost, single)
	}
	data, _, _, err := c.Read("srv", fh, 0, 10)
	if err != nil || string(data) != "deep" {
		t.Fatalf("read after path lookup: %q err=%v", data, err)
	}
}

func TestSetattrTruncate(t *testing.T) {
	_, srv, c := rig(t, 0)
	srv.FS().WriteFile("/f", []byte("0123456789"))
	root := srv.Root()
	fh, _, _, _ := c.Lookup("srv", root, "f")
	sz := int64(3)
	attr, _, err := c.Setattr("srv", fh, localfs.SetAttr{Size: &sz})
	if err != nil || attr.Size != 3 {
		t.Fatalf("setattr: %+v err=%v", attr, err)
	}
	mode := uint32(0o600)
	attr, _, err = c.Setattr("srv", fh, localfs.SetAttr{Mode: &mode})
	if err != nil || attr.Mode != 0o600 || attr.Size != 3 {
		t.Fatalf("setattr mode: %+v err=%v", attr, err)
	}
}

func TestSymlinkReadlinkOverRPC(t *testing.T) {
	_, srv, c := rig(t, 0)
	root := srv.Root()
	lh, lattr, _, err := c.Symlink("srv", root, "sdirm", "sdirm#1a2b")
	if err != nil || lattr.Type != localfs.TypeSymlink {
		t.Fatalf("symlink: %+v err=%v", lattr, err)
	}
	target, _, err := c.Readlink("srv", lh)
	if err != nil || target != "sdirm#1a2b" {
		t.Fatalf("readlink = %q err=%v", target, err)
	}
}

func TestRemoveRmdirRename(t *testing.T) {
	_, srv, c := rig(t, 0)
	fs := srv.FS()
	fs.WriteFile("/d/f1", []byte("x"))
	fs.MkdirAll("/d/sub")
	root := srv.Root()
	dh, _, _, _ := c.Lookup("srv", root, "d")

	if _, err := c.Rmdir("srv", root, "d"); !IsStatus(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	if _, err := c.Rename("srv", dh, "f1", dh, "f2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Remove("srv", dh, "f2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rmdir("srv", dh, "sub"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rmdir("srv", root, "d"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Lookup("srv", root, "d"); !IsStatus(err, ErrNoEnt) {
		t.Fatalf("post-delete lookup err = %v", err)
	}
}

func TestReaddirPaging(t *testing.T) {
	_, srv, c := rig(t, 0)
	for i := 0; i < 25; i++ {
		srv.FS().WriteFile(fmt.Sprintf("/f%02d", i), []byte("x"))
	}
	root := srv.Root()

	// Page through with size 10: 10 + 10 + 5.
	var names []string
	var cookie uint64
	pages := 0
	for {
		ents, eof, next, _, err := c.Readdir("srv", root, cookie, 10)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, e := range ents {
			names = append(names, e.Name)
		}
		if eof {
			break
		}
		cookie = next
	}
	if pages != 3 || len(names) != 25 {
		t.Fatalf("pages=%d names=%d", pages, len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	// ReaddirAll agrees.
	all, _, err := c.ReaddirAll("srv", root, 7)
	if err != nil || len(all) != 25 {
		t.Fatalf("ReaddirAll n=%d err=%v", len(all), err)
	}
}

func TestReaddirPlusCarriesAttrsHandlesAndTargets(t *testing.T) {
	_, srv, c := rig(t, 0)
	fs := srv.FS()
	fs.WriteFile("/d/file", []byte("payload"))
	fs.MkdirAll("/d/sub")
	root := srv.Root()
	dh, _, _, err := c.Lookup("srv", root, "d")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Symlink("srv", dh, "ln", "target-path"); err != nil {
		t.Fatal(err)
	}

	ents, _, err := c.ReaddirPlusAll("srv", dh, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Fatalf("entries = %d, want 3", len(ents))
	}
	byName := map[string]DirEntryPlus{}
	for _, e := range ents {
		byName[e.Name] = e
	}
	// Each entry's attributes and handle must match a separate GETATTR.
	for name, e := range byName {
		want, _, err := c.Getattr("srv", e.FH)
		if err != nil {
			t.Fatalf("getattr via READDIRPLUS handle of %s: %v", name, err)
		}
		if e.Attr != want {
			t.Fatalf("%s attrs: %+v vs GETATTR %+v", name, e.Attr, want)
		}
	}
	if f := byName["file"]; f.Attr.Size != 7 || f.Type != localfs.TypeRegular {
		t.Fatalf("file entry %+v", f)
	}
	if s := byName["sub"]; s.Attr.Type != localfs.TypeDir {
		t.Fatalf("sub entry %+v", s)
	}
	if l := byName["ln"]; l.SymTarget != "target-path" {
		t.Fatalf("symlink target = %q", l.SymTarget)
	}
	if byName["file"].SymTarget != "" {
		t.Fatalf("non-symlink carries target %q", byName["file"].SymTarget)
	}
}

func TestReaddirPlusPaging(t *testing.T) {
	_, srv, c := rig(t, 0)
	for i := 0; i < 25; i++ {
		srv.FS().WriteFile(fmt.Sprintf("/f%02d", i), []byte("x"))
	}
	root := srv.Root()
	var names []string
	var cookie uint64
	pages := 0
	for {
		ents, eof, next, _, err := c.ReaddirPlus("srv", root, cookie, 10)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, e := range ents {
			names = append(names, e.Name)
		}
		if eof {
			break
		}
		cookie = next
	}
	if pages != 3 || len(names) != 25 {
		t.Fatalf("pages=%d names=%d", pages, len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	all, _, err := c.ReaddirPlusAll("srv", root, 7)
	if err != nil || len(all) != 25 {
		t.Fatalf("ReaddirPlusAll n=%d err=%v", len(all), err)
	}
	// One READDIRPLUS page must cost less than READDIR + per-entry GETATTRs.
	_, _, _, plusCost, err := c.ReaddirPlus("srv", root, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	ents, _, _, readdirCost, err := c.Readdir("srv", root, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	sum := readdirCost
	for range ents {
		_, c1, _ := c.Getattr("srv", root)
		sum += c1
	}
	if plusCost >= sum {
		t.Fatalf("READDIRPLUS cost %v not below READDIR+N GETATTR %v", plusCost, sum)
	}
}

func TestClientStatsCountRPCsAndBytes(t *testing.T) {
	_, srv, c := rig(t, 0)
	root := srv.Root()
	if s := c.Stats(); s.RPCs != 0 || s.Bytes != 0 {
		t.Fatalf("fresh stats = %+v", s)
	}
	if _, _, err := c.Getattr("srv", root); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Lookup("srv", root, "nope"); !IsStatus(err, ErrNoEnt) {
		t.Fatal("expected NOENT")
	}
	s := c.Stats()
	if s.RPCs != 2 {
		t.Fatalf("rpcs = %d, want 2", s.RPCs)
	}
	if s.Bytes == 0 {
		t.Fatalf("bytes = 0")
	}
	if got := c.ProcCount(ProcGetattr); got != 1 {
		t.Fatalf("GETATTR count = %d", got)
	}
	if got := c.ProcCount(ProcLookup); got != 1 {
		t.Fatalf("LOOKUP count = %d", got)
	}
	before := s
	if _, _, err := c.Getattr("srv", root); err != nil {
		t.Fatal(err)
	}
	if d := c.Stats().Sub(before); d.RPCs != 1 {
		t.Fatalf("delta = %+v", d)
	}
	c.ResetStats()
	if s := c.Stats(); s.RPCs != 0 || s.Bytes != 0 || c.ProcCount(ProcGetattr) != 0 {
		t.Fatalf("post-reset stats = %+v", s)
	}
}

func TestNetworkServiceStats(t *testing.T) {
	net, srv, c := rig(t, 0)
	if _, _, err := c.Getattr("srv", srv.Root()); err != nil {
		t.Fatal(err)
	}
	st := net.ServiceStats(Service)
	if st.Messages != 1 || st.Bytes == 0 {
		t.Fatalf("nfs service stats = %+v", st)
	}
	if other := net.ServiceStats("no-such-service"); other.Messages != 0 {
		t.Fatalf("unknown service stats = %+v", other)
	}
	net.ResetStats()
	if st := net.ServiceStats(Service); st.Messages != 0 {
		t.Fatalf("post-reset service stats = %+v", st)
	}
}

func TestFSStatAndQuota(t *testing.T) {
	_, srv, c := rig(t, 1000)
	root := srv.Root()
	fh, _, _, err := c.Create("srv", root, "f", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Write("srv", fh, 0, make([]byte, 600)); err != nil {
		t.Fatal(err)
	}
	st, _, err := c.FSStat("srv", root)
	if err != nil || st.TotalBytes != 1000 || st.UsedBytes != 600 || st.Files != 1 {
		t.Fatalf("fsstat = %+v err=%v", st, err)
	}
	if _, _, err := c.Write("srv", fh, 600, make([]byte, 600)); !IsStatus(err, ErrNoSpc) {
		t.Fatalf("quota write err = %v", err)
	}
}

func TestStaleHandleAfterBump(t *testing.T) {
	_, srv, c := rig(t, 0)
	root := srv.Root()
	fh, _, _, err := c.Create("srv", root, "f", 0o644, false)
	if err != nil {
		t.Fatal(err)
	}
	srv.Bump() // server re-incarnated: all handles stale
	if _, _, err := c.Getattr("srv", fh); !IsStatus(err, ErrStale) {
		t.Fatalf("stale getattr err = %v", err)
	}
	if _, _, err := c.Getattr("srv", root); !IsStatus(err, ErrStale) {
		t.Fatalf("stale root err = %v", err)
	}
	// Fresh root works again.
	if _, _, err := c.Getattr("srv", srv.Root()); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveCreateStatus(t *testing.T) {
	_, srv, c := rig(t, 0)
	root := srv.Root()
	if _, _, _, err := c.Create("srv", root, "f", 0o644, true); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Create("srv", root, "f", 0o644, true); !IsStatus(err, ErrExist) {
		t.Fatalf("exclusive dup err = %v", err)
	}
}

func TestTransportFailureDistinctFromStatus(t *testing.T) {
	net, srv, c := rig(t, 0)
	root := srv.Root()
	net.SetDown("srv", true)
	_, _, err := c.Getattr("srv", root)
	if err == nil {
		t.Fatal("expected error")
	}
	if _, ok := StatusOf(err); ok {
		t.Fatalf("transport failure misreported as NFS status: %v", err)
	}
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestMalformedRequestRejected(t *testing.T) {
	net, _, _ := rig(t, 0)
	// Hand-craft garbage requests straight at the service.
	resp, _, err := net.Call("cli", "srv", Service, []byte{})
	if err != nil {
		t.Fatal(err)
	}
	if Status(uint32(resp[0])<<24|uint32(resp[1])<<16|uint32(resp[2])<<8|uint32(resp[3])) != ErrInval {
		t.Fatalf("empty request resp = %v", resp)
	}
	// Truncated LOOKUP (proc only, no handle).
	resp, _, err = net.Call("cli", "srv", Service, []byte{0, 0, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp[3] == 0 {
		t.Fatalf("truncated lookup accepted: %v", resp)
	}
}

func TestRPCCostExceedsLocalDiskCost(t *testing.T) {
	_, srv, c := rig(t, 0)
	root := srv.Root()
	fh, _, _, _ := c.Create("srv", root, "f", 0o644, false)
	payload := make([]byte, 64<<10)
	_, rpcCost, err := c.Write("srv", fh, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	diskOnly := simnet.Disk7200.OpCost(len(payload))
	if rpcCost <= diskOnly {
		t.Fatalf("rpc cost %v should exceed disk-only %v", rpcCost, diskOnly)
	}
}

func TestErrorTypeHelpers(t *testing.T) {
	err := &Error{Proc: ProcLookup, Status: ErrNoEnt}
	if !IsStatus(err, ErrNoEnt) || IsStatus(err, ErrExist) {
		t.Fatal("IsStatus misbehaves")
	}
	st, ok := StatusOf(fmt.Errorf("wrapped: %w", err))
	if !ok || st != ErrNoEnt {
		t.Fatalf("StatusOf = %v %v", st, ok)
	}
	if got := err.Error(); got != "nfs: LOOKUP failed: NFS3ERR_NOENT" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestProcAndStatusStrings(t *testing.T) {
	if ProcWrite.String() != "WRITE" || Proc(99).String() != "PROC(99)" {
		t.Fatal("Proc.String broken")
	}
	if ErrNoSpc.String() != "NFS3ERR_NOSPC" || Status(999).String() != "NFS3ERR(999)" {
		t.Fatal("Status.String broken")
	}
}

func BenchmarkRPCWrite4K(b *testing.B) {
	net := simnet.New(simnet.LAN100)
	fs := localfs.New(0, simnet.Disk7200)
	srv := NewServer(fs, 1)
	srv.Attach(net, "srv")
	net.AddNode("cli")
	c := NewClient(net, "cli")
	fh, _, _, _ := c.Create("srv", srv.Root(), "bench", 0o644, false)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write("srv", fh, int64(i%128)*4096, buf)
	}
}

func BenchmarkRPCLookup(b *testing.B) {
	net := simnet.New(simnet.LAN100)
	fs := localfs.New(0, simnet.Disk7200)
	fs.WriteFile("/dir/file", []byte("x"))
	srv := NewServer(fs, 1)
	srv.Attach(net, "srv")
	net.AddNode("cli")
	c := NewClient(net, "cli")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.LookupPath("srv", srv.Root(), "/dir/file")
	}
}

func TestAccessMask(t *testing.T) {
	_, srv, c := rig(t, 0)
	fs := srv.FS()
	fs.WriteFile("/rw.txt", []byte("x"))
	fs.MkdirAll("/dir")
	root := srv.Root()

	fh, _, _, _ := c.Lookup("srv", root, "rw.txt")
	got, attr, _, err := c.Access("srv", fh, AccessRead|AccessModify|AccessExecute)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != localfs.TypeRegular {
		t.Fatalf("attr = %+v", attr)
	}
	// 0644 file: read+modify granted, execute not.
	if got&AccessRead == 0 || got&AccessModify == 0 || got&AccessExecute != 0 {
		t.Fatalf("grant = %x", got)
	}
	// Read-only file refuses modify.
	mode := uint32(0o444)
	c.Setattr("srv", fh, localfs.SetAttr{Mode: &mode})
	got, _, _, err = c.Access("srv", fh, AccessRead|AccessModify)
	if err != nil || got != AccessRead {
		t.Fatalf("read-only grant = %x err=%v", got, err)
	}
	// Directory gets lookup.
	dh, _, _, _ := c.Lookup("srv", root, "dir")
	got, _, _, err = c.Access("srv", dh, AccessLookup|AccessRead)
	if err != nil || got&AccessLookup == 0 {
		t.Fatalf("dir grant = %x err=%v", got, err)
	}
}

func TestFSInfoLimits(t *testing.T) {
	_, srv, c := rig(t, 0)
	fi, _, err := c.FSInfo("srv", srv.Root())
	if err != nil {
		t.Fatal(err)
	}
	if fi.RTMax < fi.RTPref || fi.WTMax < fi.WTPref {
		t.Fatalf("incoherent limits: %+v", fi)
	}
	if fi.MaxFile != localfs.MaxFileSize {
		t.Fatalf("maxfile = %d", fi.MaxFile)
	}
	// Stale root rejected.
	srv.Bump()
	if _, _, err := c.FSInfo("srv", Handle{Gen: 1, Ino: 1}); !IsStatus(err, ErrStale) {
		t.Fatalf("stale fsinfo err = %v", err)
	}
}

// TestProtocolOracle drives a random operation sequence through the RPC
// stack and mirrors it directly onto a second localfs: the protocol layer
// must be a transparent pipe.
func TestProtocolOracle(t *testing.T) {
	net := simnet.New(simnet.LAN100)
	remote := localfs.New(0, simnet.Disk7200)
	srv := NewServer(remote, 1)
	srv.Attach(net, "srv")
	net.AddNode("cli")
	c := NewClient(net, "cli")
	direct := localfs.New(0, simnet.Disk7200)

	r := newRand(77)
	type ref struct {
		viaRPC Handle
		direct uint64
		isDir  bool
	}
	refs := []ref{{viaRPC: srv.Root(), direct: localfs.RootIno, isDir: true}}

	for step := 0; step < 400; step++ {
		p := refs[r.Intn(len(refs))]
		name := fmt.Sprintf("e%d", r.Intn(40))
		switch r.Intn(6) {
		case 0: // mkdir
			if !p.isDir {
				continue
			}
			h1, _, _, err1 := c.Mkdir("srv", p.viaRPC, name, 0o755)
			a2, _, err2 := direct.Mkdir(p.direct, name, 0o755)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d mkdir divergence: %v vs %v", step, err1, err2)
			}
			if err1 == nil {
				refs = append(refs, ref{viaRPC: h1, direct: a2.Ino, isDir: true})
			}
		case 1: // create
			if !p.isDir {
				continue
			}
			h1, _, _, err1 := c.Create("srv", p.viaRPC, name, 0o644, false)
			a2, _, err2 := direct.Create(p.direct, name, 0o644, false)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d create divergence: %v vs %v", step, err1, err2)
			}
			if err1 == nil {
				refs = append(refs, ref{viaRPC: h1, direct: a2.Ino})
			}
		case 2: // write
			if p.isDir {
				continue
			}
			data := make([]byte, r.Intn(500))
			r.Read(data)
			off := int64(r.Intn(200))
			_, _, err1 := c.Write("srv", p.viaRPC, off, data)
			_, _, err2 := direct.Write(p.direct, off, data)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d write divergence: %v vs %v", step, err1, err2)
			}
		case 3: // read + compare
			if p.isDir {
				continue
			}
			d1, eof1, _, err1 := c.Read("srv", p.viaRPC, 0, 1000)
			d2, eof2, _, err2 := direct.Read(p.direct, 0, 1000)
			if (err1 == nil) != (err2 == nil) || eof1 != eof2 || !bytes.Equal(d1, d2) {
				t.Fatalf("step %d read divergence: %v/%v %v/%v", step, err1, err2, eof1, eof2)
			}
		case 4: // getattr compare
			a1, _, err1 := c.Getattr("srv", p.viaRPC)
			a2, _, err2 := direct.Getattr(p.direct)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d getattr divergence: %v vs %v", step, err1, err2)
			}
			if err1 == nil && (a1.Size != a2.Size || a1.Type != a2.Type) {
				t.Fatalf("step %d attr divergence: %+v vs %+v", step, a1, a2)
			}
		case 5: // readdir compare
			if !p.isDir {
				continue
			}
			e1, _, err1 := c.ReaddirAll("srv", p.viaRPC, 7)
			e2, _, err2 := direct.Readdir(p.direct)
			if (err1 == nil) != (err2 == nil) || len(e1) != len(e2) {
				t.Fatalf("step %d readdir divergence: %d vs %d (%v/%v)", step, len(e1), len(e2), err1, err2)
			}
			for i := range e1 {
				if e1[i].Name != e2[i].Name || e1[i].Type != e2[i].Type {
					t.Fatalf("step %d entry %d: %+v vs %+v", step, i, e1[i], e2[i])
				}
			}
		}
	}
}

func newRand(seed int64) *mrand { return &mrand{state: uint64(seed)} }

// mrand is a tiny deterministic generator so this test does not perturb
// other tests' use of math/rand.
type mrand struct{ state uint64 }

func (m *mrand) next() uint64 {
	m.state += 0x9e3779b97f4a7c15
	z := m.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (m *mrand) Intn(n int) int { return int(m.next() % uint64(n)) }

func (m *mrand) Read(p []byte) {
	for i := range p {
		p[i] = byte(m.next())
	}
}
