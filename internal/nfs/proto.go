// Package nfs implements the NFSv3-like remote file protocol that Kosha
// interposes on (Sections 2, 4.1). It provides opaque file handles, the
// procedure vocabulary Kosha forwards (LOOKUP, READ, WRITE, CREATE, MKDIR,
// SYMLINK, READLINK, REMOVE, RMDIR, RENAME, GETATTR, SETATTR, READDIR,
// FSSTAT), an XDR wire encoding, a Server backed by localfs, and a Client.
//
// Faithfulness notes: handles are opaque to clients ("they only have meaning
// to the NFS server", Section 4.1.2) — this opacity is exactly what lets
// koshad substitute virtual handles. Like NFSv3, LOOKUP takes a parent
// handle plus one name, so resolving a full path is a sequence of LOOKUPs
// (Section 4.1.3); Client.LookupPath models that. Write stability levels and
// COMMIT are collapsed into synchronous writes, which does not affect any
// measured quantity because the disk cost model charges writes identically.
package nfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/localfs"
	"repro/internal/wire"
)

// Service is the simnet service name NFS servers register under.
const Service = "nfs"

// Proc identifies an NFS procedure.
type Proc uint32

// Procedure numbers follow the NFSv3 program (RFC 1813) where one exists.
const (
	ProcNull     Proc = 0
	ProcGetattr  Proc = 1
	ProcSetattr  Proc = 2
	ProcLookup   Proc = 3
	ProcReadlink Proc = 5
	ProcRead     Proc = 6
	ProcWrite    Proc = 7
	ProcCreate   Proc = 8
	ProcMkdir    Proc = 9
	ProcSymlink  Proc = 10
	ProcRemove   Proc = 12
	ProcRmdir    Proc = 13
	ProcRename   Proc = 14
	ProcAccess   Proc = 4
	ProcReaddir  Proc = 16
	// ProcReaddirPlus returns directory entries together with each entry's
	// handle and attributes (RFC 1813 §3.3.17), letting a client list a
	// directory and stat every entry in one round trip instead of N+1.
	ProcReaddirPlus Proc = 17
	ProcFSStat      Proc = 18
	ProcFSInfo      Proc = 19
	// ProcReadStream and ProcWriteBatch are Kosha's streaming extensions:
	// one round trip moves a whole readahead window (several chunk-sized
	// READs pipelined server-side) or a write-back buffer (a vector of
	// coalesced spans). They take numbers above the RFC 1813 program so a
	// plain NFSv3 peer could still answer the standard procedures.
	ProcReadStream Proc = 40
	ProcWriteBatch Proc = 41
	// ProcMountRoot stands in for the separate MOUNT protocol's MNT call,
	// which hands an NFS client the root file handle of an export.
	ProcMountRoot Proc = 100
)

func (p Proc) String() string {
	switch p {
	case ProcNull:
		return "NULL"
	case ProcGetattr:
		return "GETATTR"
	case ProcSetattr:
		return "SETATTR"
	case ProcLookup:
		return "LOOKUP"
	case ProcReadlink:
		return "READLINK"
	case ProcRead:
		return "READ"
	case ProcWrite:
		return "WRITE"
	case ProcCreate:
		return "CREATE"
	case ProcMkdir:
		return "MKDIR"
	case ProcSymlink:
		return "SYMLINK"
	case ProcRemove:
		return "REMOVE"
	case ProcRmdir:
		return "RMDIR"
	case ProcRename:
		return "RENAME"
	case ProcReaddir:
		return "READDIR"
	case ProcReaddirPlus:
		return "READDIRPLUS"
	case ProcAccess:
		return "ACCESS"
	case ProcFSStat:
		return "FSSTAT"
	case ProcFSInfo:
		return "FSINFO"
	case ProcReadStream:
		return "READSTREAM"
	case ProcWriteBatch:
		return "WRITEBATCH"
	case ProcMountRoot:
		return "MNT"
	default:
		return fmt.Sprintf("PROC(%d)", uint32(p))
	}
}

// Status is an NFSv3 status code (nfsstat3).
type Status uint32

const (
	OK          Status = 0
	ErrPerm     Status = 1
	ErrNoEnt    Status = 2
	ErrIO       Status = 5
	ErrAcces    Status = 13
	ErrExist    Status = 17
	ErrNotDir   Status = 20
	ErrIsDir    Status = 21
	ErrInval    Status = 22
	ErrFBig     Status = 27
	ErrNoSpc    Status = 28
	ErrNotEmpty Status = 66
	ErrStale    Status = 70
)

func (s Status) String() string {
	switch s {
	case OK:
		return "NFS3_OK"
	case ErrPerm:
		return "NFS3ERR_PERM"
	case ErrNoEnt:
		return "NFS3ERR_NOENT"
	case ErrIO:
		return "NFS3ERR_IO"
	case ErrAcces:
		return "NFS3ERR_ACCES"
	case ErrExist:
		return "NFS3ERR_EXIST"
	case ErrNotDir:
		return "NFS3ERR_NOTDIR"
	case ErrIsDir:
		return "NFS3ERR_ISDIR"
	case ErrInval:
		return "NFS3ERR_INVAL"
	case ErrFBig:
		return "NFS3ERR_FBIG"
	case ErrNoSpc:
		return "NFS3ERR_NOSPC"
	case ErrNotEmpty:
		return "NFS3ERR_NOTEMPTY"
	case ErrStale:
		return "NFS3ERR_STALE"
	default:
		return fmt.Sprintf("NFS3ERR(%d)", uint32(s))
	}
}

// Error is a protocol-level failure carrying the NFS status.
type Error struct {
	Proc   Proc
	Status Status
}

func (e *Error) Error() string {
	return fmt.Sprintf("nfs: %s failed: %s", e.Proc, e.Status)
}

// IsStatus reports whether err is an NFS error with the given status. The
// nil and unwrapped cases are answered without errors.As — resolver success
// paths probe statuses on every level, and the As target escapes (one heap
// allocation per call) even when err is nil.
func IsStatus(err error, s Status) bool {
	if err == nil {
		return false
	}
	if ne, ok := err.(*Error); ok {
		return ne.Status == s
	}
	return isStatusSlow(err, s)
}

func isStatusSlow(err error, s Status) bool {
	var ne *Error
	return errors.As(err, &ne) && ne.Status == s
}

// StatusOf extracts the NFS status from err, or OK/false if err is not an
// NFS protocol error (e.g. a transport failure).
func StatusOf(err error) (Status, bool) {
	if err == nil {
		return OK, false
	}
	if ne, ok := err.(*Error); ok {
		return ne.Status, true
	}
	var ne *Error
	if errors.As(err, &ne) {
		return ne.Status, true
	}
	return OK, false
}

// toStatus maps localfs errors onto the wire status codes.
func toStatus(err error) Status {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, localfs.ErrNoEnt):
		return ErrNoEnt
	case errors.Is(err, localfs.ErrExist):
		return ErrExist
	case errors.Is(err, localfs.ErrNotDir):
		return ErrNotDir
	case errors.Is(err, localfs.ErrIsDir):
		return ErrIsDir
	case errors.Is(err, localfs.ErrNotEmpty):
		return ErrNotEmpty
	case errors.Is(err, localfs.ErrNoSpace):
		return ErrNoSpc
	case errors.Is(err, localfs.ErrStale):
		return ErrStale
	case errors.Is(err, localfs.ErrTooBig):
		return ErrFBig
	case errors.Is(err, localfs.ErrInval):
		return ErrInval
	default:
		return ErrIO
	}
}

// Handle is an opaque NFS file handle. Gen identifies the server
// incarnation (a restarted/purged server invalidates old handles, yielding
// NFS3ERR_STALE exactly as a re-initialized exported FS would); Ino is the
// inode number within that incarnation.
type Handle struct {
	Gen uint64
	Ino uint64
}

// IsZero reports whether h is the zero handle.
func (h Handle) IsZero() bool { return h == Handle{} }

func (h Handle) String() string { return fmt.Sprintf("fh(%x:%d)", h.Gen, h.Ino) }

func putHandle(e *wire.Encoder, h Handle) {
	var raw [16]byte
	binary.BigEndian.PutUint64(raw[:8], h.Gen)
	binary.BigEndian.PutUint64(raw[8:], h.Ino)
	e.PutFixedOpaque(raw[:])
}

func getHandle(d *wire.Decoder) Handle {
	var raw [16]byte
	d.FixedOpaque(raw[:])
	return Handle{
		Gen: binary.BigEndian.Uint64(raw[:8]),
		Ino: binary.BigEndian.Uint64(raw[8:]),
	}
}

func putAttr(e *wire.Encoder, a localfs.Attr) {
	e.PutUint64(a.Ino)
	e.PutUint32(uint32(a.Type))
	e.PutUint32(a.Mode)
	e.PutUint32(a.Nlink)
	e.PutUint32(a.UID)
	e.PutUint32(a.GID)
	e.PutInt64(a.Size)
	e.PutInt64(a.Atime.UnixNano())
	e.PutInt64(a.Mtime.UnixNano())
	e.PutInt64(a.Ctime.UnixNano())
}

func getAttr(d *wire.Decoder) localfs.Attr {
	var a localfs.Attr
	a.Ino = d.Uint64()
	a.Type = localfs.FileType(d.Uint32())
	a.Mode = d.Uint32()
	a.Nlink = d.Uint32()
	a.UID = d.Uint32()
	a.GID = d.Uint32()
	a.Size = d.Int64()
	a.Atime = time.Unix(0, d.Int64())
	a.Mtime = time.Unix(0, d.Int64())
	a.Ctime = time.Unix(0, d.Int64())
	return a
}

// SetAttr field-presence bits.
const (
	saMode = 1 << iota
	saUID
	saGID
	saSize
	saMtime
	saAtime
)

func putSetAttr(e *wire.Encoder, sa localfs.SetAttr) {
	var mask uint32
	if sa.Mode != nil {
		mask |= saMode
	}
	if sa.UID != nil {
		mask |= saUID
	}
	if sa.GID != nil {
		mask |= saGID
	}
	if sa.Size != nil {
		mask |= saSize
	}
	if sa.Mtime != nil {
		mask |= saMtime
	}
	if sa.Atime != nil {
		mask |= saAtime
	}
	e.PutUint32(mask)
	if sa.Mode != nil {
		e.PutUint32(*sa.Mode)
	}
	if sa.UID != nil {
		e.PutUint32(*sa.UID)
	}
	if sa.GID != nil {
		e.PutUint32(*sa.GID)
	}
	if sa.Size != nil {
		e.PutInt64(*sa.Size)
	}
	if sa.Mtime != nil {
		e.PutInt64(sa.Mtime.UnixNano())
	}
	if sa.Atime != nil {
		e.PutInt64(sa.Atime.UnixNano())
	}
}

func getSetAttr(d *wire.Decoder) localfs.SetAttr {
	var sa localfs.SetAttr
	mask := d.Uint32()
	if mask&saMode != 0 {
		v := d.Uint32()
		sa.Mode = &v
	}
	if mask&saUID != 0 {
		v := d.Uint32()
		sa.UID = &v
	}
	if mask&saGID != 0 {
		v := d.Uint32()
		sa.GID = &v
	}
	if mask&saSize != 0 {
		v := d.Int64()
		sa.Size = &v
	}
	if mask&saMtime != 0 {
		v := time.Unix(0, d.Int64())
		sa.Mtime = &v
	}
	if mask&saAtime != 0 {
		v := time.Unix(0, d.Int64())
		sa.Atime = &v
	}
	return sa
}

// ACCESS request bits (RFC 1813 §3.3.4).
const (
	AccessRead    = 0x01
	AccessLookup  = 0x02
	AccessModify  = 0x04
	AccessExtend  = 0x08
	AccessDelete  = 0x10
	AccessExecute = 0x20
)

// FSInfo carries the server's static transfer limits (RFC 1813 §3.3.19).
type FSInfo struct {
	RTMax   uint32 // maximum READ size
	WTMax   uint32 // maximum WRITE size
	RTPref  uint32
	WTPref  uint32
	MaxFile int64
}

// DirEntry is one readdir result row.
type DirEntry struct {
	Name string
	Ino  uint64
	Type localfs.FileType
}

// DirEntryPlus is one READDIRPLUS result row: the entry plus its handle and
// full attributes. SymTarget carries a symlink's target so an interposing
// client (koshad classifying Kosha's special placement links) needs no
// follow-up READLINK per entry.
type DirEntryPlus struct {
	DirEntry
	FH        Handle
	Attr      localfs.Attr
	SymTarget string
}

// WriteSpan is one contiguous byte range of a vectored write: the unit
// WRITEBATCH carries on the wire and the write-back buffer coalesces
// adjacent WRITEs into.
type WriteSpan struct {
	Offset int64
	Data   []byte
}

// PutWriteSpans encodes a span vector; exposed for the kosha replication
// service, which ships the same vector inside its mirrored mutations.
func PutWriteSpans(e *wire.Encoder, spans []WriteSpan) {
	e.PutUint32(uint32(len(spans)))
	for _, s := range spans {
		e.PutInt64(s.Offset)
		e.PutOpaque(s.Data)
	}
}

// GetWriteSpans decodes a span vector written by PutWriteSpans.
func GetWriteSpans(d *wire.Decoder) []WriteSpan {
	n := d.ArrayLen()
	if n <= 0 {
		return nil
	}
	spans := make([]WriteSpan, 0, n)
	for i := 0; i < n; i++ {
		spans = append(spans, WriteSpan{Offset: d.Int64(), Data: d.Opaque()})
	}
	return spans
}

// FSStat mirrors localfs.FSStat on the wire.
type FSStat struct {
	TotalBytes int64
	UsedBytes  int64
	Files      int64
}

// ToStatus maps a localfs error onto its wire status; nil maps to OK and
// unknown errors to NFS3ERR_IO. Exposed for Kosha's loopback path, which
// executes store operations directly and must report NFS-equivalent
// statuses to clients.
func ToStatus(err error) Status { return toStatus(err) }
