package nfs

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// TestHotPathLabelsDoNotAllocate pins the pre-interned per-proc histogram
// labels: after the first touch, neither the rpc.<PROC> histogram lookup nor
// stamping a trace context onto the client may allocate — these run on every
// forwarded NFS RPC.
func TestHotPathLabelsDoNotAllocate(t *testing.T) {
	net := simnet.New(simnet.LAN100)
	c := NewClient(net, "cli")
	for p := Proc(0); p < procCount(); p++ {
		c.proc(p) // warm the per-proc cache
	}
	tc := obs.TraceContext{Hi: 1, Lo: 2, Span: 3}

	if n := testing.AllocsPerRun(1000, func() {
		for p := Proc(0); p < procCount(); p++ {
			c.proc(p)
		}
	}); n != 0 {
		t.Errorf("warm proc() lookup allocates %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		cc := c.WithCtx(tc)
		cc.proc(ProcLookup)
	}); n != 0 {
		t.Errorf("WithCtx stamp allocates %.1f times per run, want 0", n)
	}
}

// procCount returns the number of real procedures (label table is sized
// maxProc; probing a handful is enough to catch regressions).
func procCount() Proc { return Proc(16) }

// BenchmarkProcHistLookup measures the per-RPC label path in isolation; run
// with -benchmem to watch the 0 B/op invariant.
func BenchmarkProcHistLookup(b *testing.B) {
	net := simnet.New(simnet.LAN100)
	c := NewClient(net, "cli")
	c.proc(ProcWrite)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.proc(ProcWrite)
	}
}
