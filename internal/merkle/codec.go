package merkle

import (
	"repro/internal/localfs"
	"repro/internal/wire"
)

// Wire codec for digests and entry lists, used by the kosha digest-exchange
// procedures (kTreeDigest/kDirDigests). Follows the XDR conventions of
// internal/wire: counted arrays, length-prefixed strings, fixed opaques.

// PutDigest appends a digest as fixed-length opaque data.
func PutDigest(e *wire.Encoder, d Digest) {
	e.PutDigest(d)
}

// GetDigest reads a digest.
func GetDigest(d *wire.Decoder) Digest {
	return d.Digest()
}

// PutEntries appends a counted array of directory entries.
func PutEntries(e *wire.Encoder, ents []Entry) {
	e.PutUint32(uint32(len(ents)))
	for _, ent := range ents {
		e.PutString(ent.Name)
		e.PutUint32(uint32(ent.Type))
		e.PutDigest(ent.Digest)
	}
}

// GetEntries reads a counted array of directory entries.
func GetEntries(d *wire.Decoder) []Entry {
	n := d.ArrayLen()
	out := make([]Entry, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		var ent Entry
		ent.Name = d.String()
		ent.Type = localfs.FileType(d.Uint32())
		ent.Digest = d.Digest()
		if d.Err() != nil {
			return nil
		}
		out = append(out, ent)
	}
	return out
}
