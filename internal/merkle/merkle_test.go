package merkle

import (
	"testing"

	"repro/internal/localfs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func newStore(t *testing.T) localfs.FileSystem {
	t.Helper()
	return localfs.New(0, simnet.DiskModel{})
}

func mustDigest(t *testing.T, c *Cache, p string) Digest {
	t.Helper()
	d, err := c.DigestOf(p)
	if err != nil {
		t.Fatalf("DigestOf(%s): %v", p, err)
	}
	return d
}

func TestDigestDomainSeparation(t *testing.T) {
	// A file whose bytes equal a symlink's target must not collide with it,
	// nor either with an empty directory.
	if FileDigest([]byte("x")) == SymlinkDigest("x") {
		t.Fatal("file and symlink digests collide")
	}
	if FileDigest(nil) == DirDigest(nil) {
		t.Fatal("empty file and empty dir digests collide")
	}
}

func TestInvalidationOnMutation(t *testing.T) {
	fs := newStore(t)
	if err := fs.WriteFile("/tree/a/x.txt", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/tree/b/y.txt", []byte("two")); err != nil {
		t.Fatal(err)
	}
	c := NewCache(fs)
	before := mustDigest(t, c, "/tree")
	beforeB := mustDigest(t, c, "/tree/b")

	// Mutation through the store (not through the cache) must invalidate the
	// memoized path and its ancestors via the notification hook.
	if err := fs.WriteFile("/tree/a/x.txt", []byte("ONE")); err != nil {
		t.Fatal(err)
	}
	after := mustDigest(t, c, "/tree")
	if after == before {
		t.Fatal("root digest unchanged after nested mutation")
	}
	if got := mustDigest(t, c, "/tree/b"); got != beforeB {
		t.Fatal("sibling subtree digest moved without a mutation")
	}

	// Removal invalidates too.
	if err := fs.RemoveAll("/tree/a"); err != nil {
		t.Fatal(err)
	}
	if got := mustDigest(t, c, "/tree"); got == after {
		t.Fatal("root digest unchanged after subtree removal")
	}

	// Rename invalidates both old and new locations.
	if err := fs.WriteFile("/tree/c.txt", []byte("c")); err != nil {
		t.Fatal(err)
	}
	pre := mustDigest(t, c, "/tree")
	root, err := fs.LookupPath("/tree")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Rename(root.Ino, "c.txt", root.Ino, "d.txt"); err != nil {
		t.Fatal(err)
	}
	if got := mustDigest(t, c, "/tree"); got == pre {
		t.Fatal("root digest unchanged after rename")
	}
}

func TestCacheAgreesWithOracle(t *testing.T) {
	fs := newStore(t)
	if err := fs.WriteFile("/p/q/r.txt", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	dir, err := fs.LookupPath("/p")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Symlink(dir.Ino, "ln", "q/r.txt"); err != nil {
		t.Fatal(err)
	}
	c := NewCache(fs)
	for _, p := range []string{"/p", "/p/q", "/p/q/r.txt", "/p/ln"} {
		want, err := DigestPath(fs, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := mustDigest(t, c, p); got != want {
			t.Fatalf("cache(%s) != oracle", p)
		}
		// Second read comes from the memo and must agree too.
		if got := mustDigest(t, c, p); got != want {
			t.Fatalf("memoized cache(%s) != oracle", p)
		}
	}
}

func TestEntriesListsChildrenSorted(t *testing.T) {
	fs := newStore(t)
	for _, name := range []string{"b.txt", "a.txt", "c.txt"} {
		if err := fs.WriteFile("/d/"+name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache(fs)
	ents, ok, err := c.Entries("/d")
	if err != nil || !ok {
		t.Fatalf("Entries: ok=%v err=%v", ok, err)
	}
	if len(ents) != 3 || ents[0].Name != "a.txt" || ents[1].Name != "b.txt" || ents[2].Name != "c.txt" {
		t.Fatalf("entries out of order: %+v", ents)
	}
	for _, ent := range ents {
		if want := FileDigest([]byte(ent.Name)); ent.Digest != want {
			t.Fatalf("child %s digest mismatch", ent.Name)
		}
	}
	if _, ok, err := c.Entries("/missing"); ok || err != nil {
		t.Fatalf("Entries on missing dir: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Entries("/d/a.txt"); ok || err != nil {
		t.Fatalf("Entries on a file: ok=%v err=%v", ok, err)
	}
}

func TestEntriesCodecRoundTrip(t *testing.T) {
	in := []Entry{
		{Name: "a", Type: localfs.TypeRegular, Digest: FileDigest([]byte("a"))},
		{Name: "dir", Type: localfs.TypeDir, Digest: DirDigest(nil)},
		{Name: "ln", Type: localfs.TypeSymlink, Digest: SymlinkDigest("a")},
	}
	e := wire.NewEncoder(128)
	PutEntries(e, in)
	d := wire.NewDecoder(e.Bytes())
	out := GetEntries(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}
