package merkle

import (
	"testing"

	"repro/internal/wire"
)

// FuzzEntriesCodec feeds arbitrary bytes to the entry-list decoder: it must
// never panic, and anything it accepts must re-encode to a value that
// decodes back equal (decode is a partial inverse of encode).
func FuzzEntriesCodec(f *testing.F) {
	seed := wire.NewEncoder(64)
	PutEntries(seed, []Entry{
		{Name: "a.txt", Type: 1, Digest: FileDigest([]byte("a"))},
		{Name: "d", Type: 2, Digest: DirDigest(nil)},
	})
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := wire.NewDecoder(data)
		ents := GetEntries(d)
		if d.Err() != nil || ents == nil {
			return // rejected input: fine, as long as it didn't panic
		}
		e := wire.NewEncoder(len(data))
		PutEntries(e, ents)
		d2 := wire.NewDecoder(e.Bytes())
		ents2 := GetEntries(d2)
		if d2.Err() != nil {
			t.Fatalf("re-encoded entries failed to decode: %v", d2.Err())
		}
		if len(ents2) != len(ents) {
			t.Fatalf("round-trip length %d != %d", len(ents2), len(ents))
		}
		for i := range ents {
			if ents2[i] != ents[i] {
				t.Fatalf("entry %d changed across round-trip", i)
			}
		}
		if d2.Done() != nil {
			t.Fatal("re-encode left trailing bytes")
		}
	})
}
