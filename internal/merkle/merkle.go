// Package merkle computes incremental Merkle hash trees over
// localfs.FileSystem subtrees: per-file content digests and per-directory
// digests over the sorted (name, type, child-digest) tuples of the
// directory's entries. Two copies of a hierarchy have equal root digests
// exactly when their structure and contents match, regardless of where in a
// store the copy lives — the digest covers names and bytes, never absolute
// paths, modes, or times — so a primary-path copy and a replica-area copy of
// the same tree compare equal. Replica maintenance (internal/repl) uses the
// digests to walk only mismatching directory nodes and ship only changed
// files, turning a full-tree re-push into an O(changed + depth) delta.
//
// A Cache memoizes digests per path and invalidates the affected path, its
// ancestors, and its descendants whenever the underlying store reports a
// mutation (localfs.MutationNotifier), so the common steady-state question
// "has anything under this root changed?" is answered without re-hashing.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"path"
	"strings"
	"sync"

	"repro/internal/cas"
	"repro/internal/localfs"
)

// DigestLen is the byte length of a digest (SHA-256).
const DigestLen = 32

// Digest is a content-structural SHA-256 digest of a file, symlink, or
// directory subtree.
type Digest [DigestLen]byte

// IsZero reports whether the digest is the zero value (no digest computed).
func (d Digest) IsZero() bool { return d == Digest{} }

// Domain-separation prefixes keyed by entry type, so a file whose contents
// happen to spell a directory listing can never collide with that directory.
func typeByte(t localfs.FileType) byte {
	switch t {
	case localfs.TypeDir:
		return 'd'
	case localfs.TypeSymlink:
		return 'l'
	default:
		return 'f'
	}
}

// FileDigest hashes a regular file's contents. Since the chunk-store
// refactor the digest is derived from the file's chunk manifest rather than
// the raw byte stream, so the manifest is the digest's leaf level: equal
// digests imply equal manifests, and a file-level digest mismatch hands the
// sync protocol a manifest it can diff block by block.
func FileDigest(data []byte) Digest {
	return ManifestDigest(cas.Split(data))
}

// ManifestDigest hashes a file's chunk manifest: the ordered (hash, length)
// pairs under the regular-file domain byte. Two files have equal digests
// exactly when their chunk decompositions — and therefore their bytes —
// are identical.
func ManifestDigest(m cas.Manifest) Digest {
	h := sha256.New()
	h.Write([]byte{typeByte(localfs.TypeRegular)})
	var lenBuf [4]byte
	for _, c := range m {
		h.Write(c.Hash[:])
		binary.BigEndian.PutUint32(lenBuf[:], c.Len)
		h.Write(lenBuf[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// SymlinkDigest hashes a symlink's target.
func SymlinkDigest(target string) Digest {
	h := sha256.New()
	h.Write([]byte{typeByte(localfs.TypeSymlink)})
	h.Write([]byte(target))
	var d Digest
	h.Sum(d[:0])
	return d
}

// DirDigest hashes a directory from its children's (name, type, digest)
// tuples; entries must be in sorted name order (localfs Readdir order).
func DirDigest(entries []Entry) Digest {
	h := sha256.New()
	h.Write([]byte{typeByte(localfs.TypeDir)})
	var lenBuf [4]byte
	for _, ent := range entries {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(ent.Name)))
		h.Write(lenBuf[:])
		h.Write([]byte(ent.Name))
		h.Write([]byte{typeByte(ent.Type)})
		h.Write(ent.Digest[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// Entry is one directory child with its subtree digest: the unit of the
// digest-exchange protocol (a directory's delta walk compares entry lists).
type Entry struct {
	Name   string
	Type   localfs.FileType
	Digest Digest
}

// Cache computes subtree digests over one store, memoizing per path. When
// the store implements localfs.MutationNotifier the memo is invalidated
// automatically on every mutation; otherwise memoization is disabled and
// every call recomputes (correct, just slower).
type Cache struct {
	fs      localfs.FileSystem
	caching bool
	store   *cas.Store // optional: fed every computed manifest, invalidated in step

	mu        sync.Mutex
	memo      map[string]Digest
	manifests map[string]cas.Manifest
	gen       uint64 // bumped on every invalidation; guards stale memoization
}

// NewCache builds a digest cache over fs, subscribing to its mutation
// notifications when available.
func NewCache(fs localfs.FileSystem) *Cache {
	c := &Cache{fs: fs, memo: make(map[string]Digest), manifests: make(map[string]cas.Manifest)}
	if n, ok := fs.(localfs.MutationNotifier); ok {
		c.caching = true
		n.OnMutation(c.Invalidate)
	}
	return c
}

// NewCacheWithStore is NewCache plus a content-addressed block index kept in
// lockstep: every manifest the cache computes is registered with store, and
// every invalidation forgets the affected subtree there, so the index's
// HAVE answers track the digests the node serves.
func NewCacheWithStore(fs localfs.FileSystem, store *cas.Store) *Cache {
	c := NewCache(fs)
	c.store = store
	return c
}

// Invalidate drops memoized digests for p, every ancestor of p (their
// directory digests embed p's), and every descendant (p may have been
// removed or renamed wholesale). Safe to call from a store's mutation hook:
// it takes only the cache's own mutex and never calls back into the store.
func (c *Cache) Invalidate(p string) {
	p = path.Clean("/" + p)
	if c.store != nil {
		// The block index only holds regular files, so ancestors need no
		// forgetting there — just p and its descendants. ForgetTree takes
		// only the index mutex (see the cas.Store lock-order note).
		c.store.ForgetTree(p)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if len(c.memo) == 0 && len(c.manifests) == 0 {
		return
	}
	delete(c.memo, p)
	delete(c.manifests, p)
	for dir := p; dir != "/"; {
		dir = path.Dir(dir)
		delete(c.memo, dir)
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	for k := range c.memo {
		if strings.HasPrefix(k, prefix) {
			delete(c.memo, k)
		}
	}
	for k := range c.manifests {
		if strings.HasPrefix(k, prefix) {
			delete(c.manifests, k)
		}
	}
}

// InvalidateAll empties the memo.
func (c *Cache) InvalidateAll() {
	if c.store != nil {
		c.store.Reset()
	}
	c.mu.Lock()
	c.gen++
	c.memo = make(map[string]Digest)
	c.manifests = make(map[string]cas.Manifest)
	c.mu.Unlock()
}

// DigestOf returns the subtree digest at path p, computing (and memoizing)
// as needed. The cache mutex is never held across store calls — the store's
// mutation hook runs under the store's own lock and takes the cache mutex,
// so holding both here in the opposite order would deadlock. A generation
// counter discards computations that raced a mutation instead.
func (c *Cache) DigestOf(p string) (Digest, error) {
	p = path.Clean("/" + p)
	var gen uint64
	if c.caching {
		c.mu.Lock()
		if d, ok := c.memo[p]; ok {
			c.mu.Unlock()
			return d, nil
		}
		gen = c.gen
		c.mu.Unlock()
	}
	attr, err := c.fs.LookupPath(p)
	if err != nil {
		return Digest{}, err
	}
	d, err := c.compute(p, attr)
	if err != nil {
		return Digest{}, err
	}
	if c.caching {
		c.mu.Lock()
		if c.gen == gen {
			c.memo[p] = d
		}
		c.mu.Unlock()
	}
	return d, nil
}

// compute hashes one node, recursing through DigestOf for directory children
// so every level is memoized independently.
func (c *Cache) compute(p string, attr localfs.Attr) (Digest, error) {
	switch attr.Type {
	case localfs.TypeSymlink:
		target, _, err := c.fs.Readlink(attr.Ino)
		if err != nil {
			return Digest{}, err
		}
		return SymlinkDigest(target), nil
	case localfs.TypeDir:
		ents, _, err := c.fs.Readdir(attr.Ino)
		if err != nil {
			return Digest{}, err
		}
		list := make([]Entry, 0, len(ents))
		for _, ent := range ents {
			cd, err := c.DigestOf(childPath(p, ent.Name))
			if err != nil {
				return Digest{}, err
			}
			list = append(list, Entry{Name: ent.Name, Type: ent.Type, Digest: cd})
		}
		return DirDigest(list), nil
	default:
		m, err := c.ManifestOf(p)
		if err != nil {
			return Digest{}, err
		}
		return ManifestDigest(m), nil
	}
}

// ManifestOf returns the chunk manifest of the regular file at p, computing
// (and memoizing) as needed. Computing a manifest also registers it with the
// attached block index, so serving a digest for a file doubles as indexing
// its blocks for later HAVE/CHUNK_FETCH queries. Same locking discipline as
// DigestOf: the cache mutex is never held across store calls.
func (c *Cache) ManifestOf(p string) (cas.Manifest, error) {
	p = path.Clean("/" + p)
	var gen uint64
	if c.caching {
		c.mu.Lock()
		if m, ok := c.manifests[p]; ok {
			c.mu.Unlock()
			return m, nil
		}
		gen = c.gen
		c.mu.Unlock()
	}
	data, err := c.fs.ReadFile(p)
	if err != nil {
		return nil, err
	}
	m := cas.Split(data)
	fresh := true
	if c.caching {
		c.mu.Lock()
		if c.gen == gen {
			c.manifests[p] = m
		} else {
			fresh = false
		}
		c.mu.Unlock()
	}
	if fresh && c.store != nil {
		c.store.AddFile(p, m)
	}
	return m, nil
}

// CachedManifest returns the memoized manifest for p without recomputing.
// This is what replication *believes* the file holds: the anti-entropy
// scrub compares it against a fresh re-chunk of the actual bytes, so silent
// corruption (which fires no mutation notification and therefore never
// invalidates the memo) becomes detectable.
func (c *Cache) CachedManifest(p string) (cas.Manifest, bool) {
	p = path.Clean("/" + p)
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.manifests[p]
	return m, ok
}

// Entries lists the immediate children of a directory with their subtree
// digests, in sorted name order. ok is false when p does not exist or is not
// a directory.
func (c *Cache) Entries(p string) ([]Entry, bool, error) {
	p = path.Clean("/" + p)
	attr, err := c.fs.LookupPath(p)
	if err != nil || attr.Type != localfs.TypeDir {
		return nil, false, nil
	}
	ents, _, err := c.fs.Readdir(attr.Ino)
	if err != nil {
		return nil, false, nil
	}
	list := make([]Entry, 0, len(ents))
	for _, ent := range ents {
		cd, err := c.DigestOf(childPath(p, ent.Name))
		if err != nil {
			return nil, false, err
		}
		list = append(list, Entry{Name: ent.Name, Type: ent.Type, Digest: cd})
	}
	return list, true, nil
}

func childPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// DigestPath computes the subtree digest at p without any caching — the
// oracle-side primitive for tests and the chaos convergence checker.
func DigestPath(fs localfs.FileSystem, p string) (Digest, error) {
	return (&Cache{fs: fs}).DigestOf(p)
}
