// Package maint is the background maintenance subsystem: one per-node
// engine running two cooperating loops off a shared per-tick token budget.
//
// The anti-entropy scrub catches what no foreground event can: silent media
// corruption (which fires no mutation notification, so every digest memo
// keeps describing the intended bytes), invalidations lost to crashes, and
// heal races that left a settled replica diverged. Each round it hash-checks
// a sampled window of the local block index, re-chunks a sliding window of
// local files against the manifests replication believes, and exchanges
// TREE_DIGESTs with the replica candidates of every owned root, scheduling a
// delta re-sync when a settled copy diverges.
//
// The capacity rebalancer consumes the used/free accounting nodes gossip on
// leaf-set keep-alive traffic. When local utilization crosses the high-water
// mark it picks victim hierarchies (smallest first), re-salts their
// placement name to find a less-utilized owner, migrates the subtree there
// under the MIGRATION_NOT_COMPLETE flag protocol with chunk-negotiated
// transfer, flips the level-1 special link in one atomic apply, and retires
// the old storage root. A target crash mid-move aborts safely: the flag
// stays armed on the incomplete copy, the link still names the old location,
// and every acknowledged byte remains readable at the source.
//
// The engine owns scheduling, budgets, and policy only; each bounded action
// it takes is a library call on the replication engine or the host node.
// Everything is driven by explicit Tick calls in deterministic order, so
// simulated clusters replay maintenance exactly from a seed.
package maint

import (
	"sort"
	"sync"

	"repro/internal/cas"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/simnet"
)

// Load is one node's capacity accounting, as gossiped on leaf-set traffic.
type Load struct {
	Used     int64
	Capacity int64 // 0 = unlimited
}

// Utilization returns Used/Capacity, 0 for unlimited stores.
func (l Load) Utilization() float64 {
	if l.Capacity <= 0 {
		return 0
	}
	return float64(l.Used) / float64(l.Capacity)
}

// Host is the node surface the engine drives. All placement knowledge
// (salting, link encoding, routed applies) stays behind it in internal/core;
// the engine sees only bounded, addressable actions.
type Host interface {
	// Rep returns the node's replication engine.
	Rep() *repl.Engine
	// Self returns the node's network address.
	Self() simnet.Addr
	// OwnsKey reports whether this node is the overlay root for pn's key.
	OwnsKey(pn string) (bool, simnet.Cost)
	// Route resolves the current owner of pn's key.
	Route(pn string) (simnet.Addr, simnet.Cost, error)
	// Candidates returns the node's current replica candidates.
	Candidates(k int) []simnet.Addr
	// LocalLoad reads the contributed store's live capacity accounting.
	LocalLoad() Load
	// PeerLoads returns the freshest gossiped loads, keyed by address.
	PeerLoads() map[simnet.Addr]Load
	// ProbeLoad fetches a node's capacity accounting directly (FSSTAT), for
	// candidates whose gossiped load has not reached this node yet.
	ProbeLoad(addr simnet.Addr) (Load, simnet.Cost, error)
	// EligibleVictim reports whether a tracked root is a self-verified
	// level-1 hierarchy this node may migrate: the root has the level-1
	// shape and the controlling special link (when one exists) still names
	// exactly this placement and storage root.
	EligibleVictim(tc obs.TraceContext, t repl.Track) (bool, simnet.Cost)
	// Salt returns the salted placement-name probe for a base name.
	Salt(base string, attempt int) string
	// BaseName strips the salt from a placement name.
	BaseName(pn string) string
	// NewStoreRoot allocates a fresh node-unique storage root for pn.
	NewStoreRoot(pn string) string
	// Relink atomically flips the level-1 entry for base into a special
	// link naming (pn, storeRoot), through the routed apply path so the
	// link host's replicas mirror the flip.
	Relink(tc obs.TraceContext, base, pn, storeRoot string) (simnet.Cost, error)
	// UntrackAt drops a root-tracking record on a peer.
	UntrackAt(tc obs.TraceContext, to simnet.Addr, root string) (simnet.Cost, error)
	// SyncReplicas runs one replica-synchronization pass (tombstone
	// propagation and replica refresh after a completed move).
	SyncReplicas() simnet.Cost
}

// Options configures one maintenance engine.
type Options struct {
	Host     Host
	Registry *obs.Registry
	Events   *obs.EventLog
	Replicas int

	// Scrub enables the anti-entropy loop; Rebalance the capacity loop.
	Scrub     bool
	Rebalance bool

	// TokensPerTick is the shared work budget both loops draw from each
	// round: one token per digest exchange or file verification, one per
	// MiB migrated. Default 64.
	TokensPerTick int
	// VerifyFiles caps files re-chunked against their manifests per round
	// (sliding cursor). Default 4.
	VerifyFiles int
	// VerifyBlocks caps indexed blocks hash-checked per round (sliding
	// cursor). Default 32.
	VerifyBlocks int
	// HighWater is the utilization that arms the rebalancer (default 0.8);
	// LowWater is where a round stops shedding (default 0.6).
	HighWater float64
	LowWater  float64
	// SaltProbes bounds the re-salting attempts per victim. Default 4.
	SaltProbes int
	// MoveBytes caps the bytes migrated per round. Default 8 MiB.
	MoveBytes int64
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.TokensPerTick <= 0 {
		o.TokensPerTick = 64
	}
	if o.VerifyFiles == 0 {
		o.VerifyFiles = 4
	}
	if o.VerifyBlocks == 0 {
		o.VerifyBlocks = 32
	}
	if o.HighWater <= 0 {
		o.HighWater = 0.8
	}
	if o.LowWater <= 0 {
		o.LowWater = 0.6
	}
	if o.SaltProbes <= 0 {
		o.SaltProbes = 4
	}
	if o.MoveBytes <= 0 {
		o.MoveBytes = 8 << 20
	}
	return o
}

// Engine is one node's maintenance engine. Tick runs one bounded round of
// both loops; all state between rounds is the pair of scrub cursors.
type Engine struct {
	host   Host
	opts   Options
	events *obs.EventLog

	mu          sync.Mutex
	fileCursor  string   // last file verified; the next round resumes after it
	blockCursor cas.Hash // block-index sampling cursor

	scrubRounds      *obs.Counter
	scrubDivergences *obs.Counter
	scrubRepaired    *obs.Counter
	scrubBadBlocks   *obs.Counter
	rebalMoves       *obs.Counter
	rebalBytes       *obs.Counter
	utilization      *obs.Gauge // local store utilization, basis points
}

// New builds an engine; it does nothing until Tick is called.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{host: opts.Host, opts: opts, events: opts.Events}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.scrubRounds = reg.Counter("maint.scrub.rounds")
	e.scrubDivergences = reg.Counter("maint.scrub.divergences")
	e.scrubRepaired = reg.Counter("maint.scrub.repaired")
	e.scrubBadBlocks = reg.Counter("maint.scrub.badblocks")
	e.rebalMoves = reg.Counter("maint.rebalance.moves")
	e.rebalBytes = reg.Counter("maint.rebalance.bytes")
	e.utilization = reg.Gauge("maint.util.bp")
	return e
}

// Reset clears the scrub cursors (a revived node starts from an empty
// store, so resumed cursors would point into purged state).
func (e *Engine) Reset() {
	e.mu.Lock()
	e.fileCursor = ""
	e.blockCursor = cas.Hash{}
	e.mu.Unlock()
}

// Enabled reports whether any maintenance loop is configured on.
func (e *Engine) Enabled() bool { return e.opts.Scrub || e.opts.Rebalance }

// Tick runs one maintenance round: a scrub round then a rebalance round,
// both drawing from the shared token budget. Returns the simulated cost.
// Callers drive Tick explicitly (per chaos step, per scale epoch, per
// maintenance timer) so the RPC sequence is a pure function of call order.
func (e *Engine) Tick() simnet.Cost {
	ld := e.host.LocalLoad()
	e.utilization.Set(int64(ld.Utilization() * 10000))
	if !e.Enabled() {
		return 0
	}
	tokens := e.opts.TokensPerTick
	var total simnet.Cost
	if e.opts.Scrub {
		total = simnet.Seq(total, e.scrubRound(obs.TraceContext{}, &tokens))
	}
	if e.opts.Rebalance {
		total = simnet.Seq(total, e.rebalanceRound(obs.TraceContext{}, &tokens))
	}
	return total
}

// verifyTarget is one local file scheduled for re-chunk verification with
// the helpers a repair may fetch blocks from.
type verifyTarget struct {
	phys    string
	helpers []repl.BlockSource
}

// scrubRound runs one bounded anti-entropy pass: local block-index
// verification, file verification against the memoized manifests, then
// digest exchanges with the replica candidates of every owned root.
// Verification runs first so a corrupt primary is repaired (or its memo
// dropped, making its digests honest) before its digests are compared —
// otherwise the exchange would propagate corruption as truth.
func (e *Engine) scrubRound(tc obs.TraceContext, tokens *int) simnet.Cost {
	e.scrubRounds.Add(1)
	rep := e.host.Rep()
	var total simnet.Cost

	// Local block verification: hash-check a cursor window of the index.
	// Bad locations are pruned as a side effect of the failed Get.
	if e.opts.VerifyBlocks > 0 {
		e.mu.Lock()
		cursor := e.blockCursor
		e.mu.Unlock()
		next, _, bad := rep.VerifyBlocks(cursor, e.opts.VerifyBlocks)
		e.mu.Lock()
		e.blockCursor = next
		e.mu.Unlock()
		if bad > 0 {
			e.scrubBadBlocks.Add(uint64(bad))
		}
	}

	tracks := rep.Tracks()

	// File verification: walk every local copy's regular files in sorted
	// order and re-chunk a budget-bounded window past the cursor.
	if e.opts.VerifyFiles > 0 {
		var targets []verifyTarget
		for _, t := range tracks {
			if t.Dead {
				continue
			}
			src, files := rep.LocalFiles(t.Root)
			if len(files) == 0 {
				continue
			}
			owns, c := e.host.OwnsKey(t.PN)
			total = simnet.Seq(total, c)
			var helpers []repl.BlockSource
			if owns && src == t.Root {
				for _, cand := range e.host.Candidates(e.opts.Replicas) {
					helpers = append(helpers, repl.BlockSource{Addr: cand})
				}
			} else if !owns {
				owner, c, err := e.host.Route(t.PN)
				total = simnet.Seq(total, c)
				if err == nil && owner != e.host.Self() {
					helpers = []repl.BlockSource{{Addr: owner}}
				}
			}
			for _, f := range files {
				hs := make([]repl.BlockSource, len(helpers))
				for i, h := range helpers {
					hs[i] = h
					if h.Phys == "" {
						if src == t.Root {
							hs[i].Phys = repl.RepPath(f)
						} else {
							hs[i].Phys = repl.PrimaryRoot(f)
						}
					}
				}
				targets = append(targets, verifyTarget{phys: f, helpers: hs})
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].phys < targets[j].phys })
		total = simnet.Seq(total, e.verifyWindow(tc, targets, tokens))
	}

	// Digest exchange: compare every owned, settled root against each
	// replica candidate's copy and schedule a delta re-sync on divergence.
	for _, t := range tracks {
		if *tokens <= 0 {
			break
		}
		if t.Dead {
			continue
		}
		owns, c := e.host.OwnsKey(t.PN)
		total = simnet.Seq(total, c)
		if !owns {
			continue
		}
		for _, cand := range e.host.Candidates(e.opts.Replicas) {
			if *tokens <= 0 {
				break
			}
			*tokens--
			diverged, c, err := rep.CheckReplica(tc, cand, t.Root)
			total = simnet.Seq(total, c)
			if err != nil || !diverged {
				continue
			}
			e.scrubDivergences.Add(1)
			if e.events != nil {
				e.events.Add(obs.EvScrubRepair, string(cand), t.Root)
			}
			c, err = rep.EnsureReplica(tc, cand, t.Root)
			total = simnet.Seq(total, c)
			if err == nil {
				e.scrubRepaired.Add(1)
			}
		}
	}
	return total
}

// verifyWindow verifies up to VerifyFiles targets past the cursor, wrapping
// at the end of the sorted list so every file is eventually visited.
func (e *Engine) verifyWindow(tc obs.TraceContext, targets []verifyTarget, tokens *int) simnet.Cost {
	if len(targets) == 0 {
		return 0
	}
	e.mu.Lock()
	cursor := e.fileCursor
	e.mu.Unlock()
	start := sort.Search(len(targets), func(i int) bool { return targets[i].phys > cursor })
	var total simnet.Cost
	rep := e.host.Rep()
	last := cursor
	for k := 0; k < len(targets) && k < e.opts.VerifyFiles && *tokens > 0; k++ {
		tgt := targets[(start+k)%len(targets)]
		*tokens--
		outcome, c := rep.VerifyFile(tc, tgt.phys, tgt.helpers)
		total = simnet.Seq(total, c)
		last = tgt.phys
		switch outcome {
		case repl.VerifyRepaired:
			e.scrubDivergences.Add(1)
			e.scrubRepaired.Add(1)
			if e.events != nil {
				e.events.Add(obs.EvScrubRepair, string(e.host.Self()), tgt.phys)
			}
		case repl.VerifyFailed:
			e.scrubDivergences.Add(1)
		}
	}
	e.mu.Lock()
	e.fileCursor = last
	e.mu.Unlock()
	return total
}

// victim is one migratable hierarchy with its local size.
type victim struct {
	t     repl.Track
	bytes int64
}

// rebalanceRound sheds load when local utilization crosses the high-water
// mark: victims are migrated smallest-first to the least-utilized owner
// reachable by re-salting, until utilization drops under the low-water mark
// or the round's byte/token budget runs out.
func (e *Engine) rebalanceRound(tc obs.TraceContext, tokens *int) simnet.Cost {
	ld := e.host.LocalLoad()
	if ld.Capacity <= 0 || ld.Utilization() < e.opts.HighWater {
		return 0
	}
	rep := e.host.Rep()
	var total simnet.Cost

	var victims []victim
	for _, t := range rep.Tracks() {
		if t.Dead {
			continue
		}
		owns, c := e.host.OwnsKey(t.PN)
		total = simnet.Seq(total, c)
		if !owns {
			continue
		}
		ok, c := e.host.EligibleVictim(tc, t)
		total = simnet.Seq(total, c)
		if !ok {
			continue
		}
		st := rep.StatLocal(t.Root)
		if !st.Exists || st.Flag || st.Bytes <= 0 {
			continue
		}
		victims = append(victims, victim{t: t, bytes: st.Bytes})
	}
	// Smallest first: shedding the small hierarchies keeps each move (and
	// the window during which a crash could waste transfer work) short.
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].bytes != victims[j].bytes {
			return victims[i].bytes < victims[j].bytes
		}
		return victims[i].t.Root < victims[j].t.Root
	})

	var moved int64
	for _, v := range victims {
		ld = e.host.LocalLoad()
		if ld.Utilization() < e.opts.LowWater {
			break
		}
		if *tokens <= 0 || moved >= e.opts.MoveBytes {
			break
		}
		c, ok := e.moveVictim(tc, v, tokens)
		total = simnet.Seq(total, c)
		if ok {
			moved += v.bytes
		}
	}
	if moved > 0 {
		// Propagate the retired roots' tombstones and re-replicate eagerly
		// rather than waiting for the next membership event.
		total = simnet.Seq(total, e.host.SyncReplicas())
	}
	return total
}

// moveVictim migrates one hierarchy: pick the least-utilized owner among
// the re-salted placement probes, push the subtree to a fresh storage root
// there, flip the level-1 link, and retire the old root. Any failure aborts
// with the link still naming the old (complete, readable) copy.
func (e *Engine) moveVictim(tc obs.TraceContext, v victim, tokens *int) (simnet.Cost, bool) {
	var total simnet.Cost
	base := e.host.BaseName(v.t.PN)
	localU := e.host.LocalLoad().Utilization()
	peers := e.host.PeerLoads()

	var destAddr simnet.Addr
	var destPN string
	bestU := localU
	for attempt := 1; attempt <= e.opts.SaltProbes; attempt++ {
		pn := e.host.Salt(base, attempt)
		if pn == v.t.PN {
			continue
		}
		addr, c, err := e.host.Route(pn)
		total = simnet.Seq(total, c)
		if err != nil || addr == e.host.Self() {
			continue
		}
		ld, known := peers[addr]
		if !known {
			var c simnet.Cost
			var err error
			ld, c, err = e.host.ProbeLoad(addr)
			total = simnet.Seq(total, c)
			if err != nil {
				continue
			}
		}
		// Project the move: the destination must absorb the bytes without
		// itself crossing the high-water mark, and must be strictly less
		// utilized than we are (no ping-pong).
		if ld.Capacity > 0 {
			if float64(ld.Used+v.bytes)/float64(ld.Capacity) >= e.opts.HighWater {
				continue
			}
		}
		if u := ld.Utilization(); u < bestU {
			bestU, destAddr, destPN = u, addr, pn
		}
	}
	if destAddr == "" {
		return total, false
	}

	*tokens -= 1 + int(v.bytes>>20)
	newRoot := e.host.NewStoreRoot(destPN)
	c, err := e.host.Rep().MigrateTree(tc, destAddr, repl.Track{PN: destPN, Root: newRoot, Ver: v.t.Ver}, v.t.Root)
	total = simnet.Seq(total, c)
	if err != nil {
		// Mid-move failure: the migration flag stays armed on the partial
		// copy and the link still points at the source. A later round (or
		// the flag-armed copy's owner) retries or discards; acknowledged
		// data never left the source.
		if e.events != nil {
			e.events.Add(obs.EvRebalanceMove, string(destAddr), "abort "+v.t.Root)
		}
		return total, false
	}
	c, err = e.host.Relink(tc, base, destPN, newRoot)
	total = simnet.Seq(total, c)
	if err != nil {
		return total, false
	}
	// Ownership has flipped; retire the old storage root. An unsalted home
	// was replaced in place by the link itself (the relink removed it), so
	// only its tracking record is dropped — a tombstone would re-remove
	// the path and take the fresh link with it.
	rep := e.host.Rep()
	if v.t.Root == "/"+base {
		rep.Untrack(v.t.Root)
		for _, cand := range e.host.Candidates(e.opts.Replicas) {
			c, _ := e.host.UntrackAt(tc, cand, v.t.Root)
			total = simnet.Seq(total, c)
		}
	} else {
		rep.Tombstone(v.t.Root)
	}
	e.rebalMoves.Add(1)
	e.rebalBytes.Add(uint64(v.bytes))
	if e.events != nil {
		e.events.Add(obs.EvRebalanceMove, string(destAddr), v.t.Root+" -> "+newRoot)
	}
	return total, true
}
