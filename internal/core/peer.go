package core

import (
	"time"

	"repro/internal/cas"
	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/merkle"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/pastry"
	"repro/internal/repl"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// engineOverlay adapts the node's Pastry instance to repl.Overlay. It reads
// n.overlay at call time because Revive replaces the overlay object.
type engineOverlay struct{ n *Node }

func (o engineOverlay) EnsureRootFor(key id.ID) (bool, simnet.Cost) {
	return o.n.overlay.EnsureRootFor(key)
}

func (o engineOverlay) ReplicaCandidates(k int) []pastry.NodeInfo {
	return o.n.overlay.ReplicaCandidates(k)
}

func (o engineOverlay) Route(key id.ID) (pastry.RouteResult, error) {
	return o.n.overlay.Route(key)
}

// enginePeer adapts the node's kosha-service and NFS clients to repl.Peer.
type enginePeer struct{ n *Node }

func (p enginePeer) Mirror(tc obs.TraceContext, to simnet.Addr, t Track, op FSOp, primary bool) (simnet.Cost, error) {
	return p.n.mirrorArea(tc, to, t, op, primary)
}

func (p enginePeer) StatTree(tc obs.TraceContext, to simnet.Addr, root string) (TreeStat, simnet.Cost, error) {
	return p.n.remoteStatTree(tc, to, root)
}

func (p enginePeer) Promote(tc obs.TraceContext, to simnet.Addr, t Track) (bool, simnet.Cost, error) {
	return p.n.promote(tc, to, t)
}

func (p enginePeer) DigestTree(tc obs.TraceContext, to simnet.Addr, root string) (TreeDigest, simnet.Cost, error) {
	return p.n.remoteDigestTree(tc, to, root)
}

func (p enginePeer) DirDigests(tc obs.TraceContext, to simnet.Addr, dir string) ([]merkle.Entry, bool, simnet.Cost, error) {
	return p.n.remoteDirDigests(tc, to, dir)
}

func (p enginePeer) LookupPath(tc obs.TraceContext, to simnet.Addr, phys string) (nfs.Handle, localfs.Attr, simnet.Cost, error) {
	return p.n.remoteLookupPath(tc, to, phys)
}

func (p enginePeer) ReadDir(tc obs.TraceContext, to simnet.Addr, fh nfs.Handle) ([]nfs.DirEntry, simnet.Cost, error) {
	return p.n.nfsCtx(tc).ReaddirAll(to, fh, 256)
}

func (p enginePeer) ReadStream(tc obs.TraceContext, to simnet.Addr, fh nfs.Handle, off int64, chunk, chunks int) ([]byte, bool, simnet.Cost, error) {
	return p.n.nfsCtx(tc).ReadStream(to, fh, off, chunk, chunks)
}

func (p enginePeer) ReadLink(tc obs.TraceContext, to simnet.Addr, phys string) (string, simnet.Cost, error) {
	return p.n.readLink(tc, to, phys)
}

func (p enginePeer) ChunkManifest(tc obs.TraceContext, to simnet.Addr, phys string, want []cas.Hash) (cas.Manifest, bool, []bool, simnet.Cost, error) {
	return p.n.remoteChunkManifest(tc, to, phys, want)
}

func (p enginePeer) ChunkFetch(tc obs.TraceContext, to simnet.Addr, phys string, hashes []cas.Hash) ([][]byte, simnet.Cost, error) {
	return p.n.remoteChunkFetch(tc, to, phys, hashes)
}

var _ repl.Peer = enginePeer{}
var _ repl.Overlay = engineOverlay{}

// --- kosha service (client side) ---

// apply sends a mutation to the primary for key at addr. A non-nil trace
// records the serving node, the replica fan-out width, and an apply span.
func (n *Node) apply(tr *obs.Trace, to simnet.Addr, key id.ID, t Track, op FSOp) (localfs.Attr, nfs.Handle, simnet.Cost, error) {
	e := wire.NewEncoder(256 + len(op.Data))
	e.PutUint32(kApply)
	r := applyReq{Key: key, Track: t, Op: op}
	r.encode(e)
	resp, cost, err := n.callKosha(tr.Ctx(), to, e.Bytes())
	if err != nil {
		return localfs.Attr{}, nfs.Handle{}, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	code := d.Uint32()
	attr, fh, fanout := getApplyReplyBody(d)
	if d.Err() != nil {
		return localfs.Attr{}, nfs.Handle{}, cost, d.Err()
	}
	if err := codeToError(code); err != nil {
		return attr, fh, cost, err
	}
	tr.AddSpan("apply", string(to), time.Duration(cost))
	tr.SetServedBy(string(to))
	if fanout > 0 {
		tr.SetReplicas(fanout)
	}
	return attr, fh, cost, nil
}

// mirror ships a mutation to one replica (replica area).
func (n *Node) mirror(tc obs.TraceContext, to simnet.Addr, t Track, op FSOp) (simnet.Cost, error) {
	return n.mirrorArea(tc, to, t, op, false)
}

// mirrorArea ships a mutation to another node; primary selects the
// namespace it lands in.
func (n *Node) mirrorArea(tc obs.TraceContext, to simnet.Addr, t Track, op FSOp, primary bool) (simnet.Cost, error) {
	e := wire.NewEncoder(256 + len(op.Data))
	e.PutUint32(kMirror)
	r := applyReq{Track: t, Op: op, Primary: primary}
	r.encode(e)
	resp, cost, err := n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	code := d.Uint32()
	if d.Err() != nil {
		return cost, d.Err()
	}
	return cost, codeToError(code)
}

// remoteStatTree summarizes a subtree on another node.
func (n *Node) remoteStatTree(tc obs.TraceContext, to simnet.Addr, root string) (TreeStat, simnet.Cost, error) {
	e := wire.NewEncoder(64)
	e.PutUint32(kStatTree)
	e.PutString(root)
	resp, cost, err := n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return TreeStat{}, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return TreeStat{}, cost, codeToError(code)
	}
	st := TreeStat{Exists: d.Bool(), Files: d.Int64(), Dirs: d.Int64(), Bytes: d.Int64(), Flag: d.Bool(), Ver: d.Uint64()}
	return st, cost, d.Err()
}

// remoteDigestTree fetches the Merkle digest summary of a subtree on
// another node.
func (n *Node) remoteDigestTree(tc obs.TraceContext, to simnet.Addr, root string) (TreeDigest, simnet.Cost, error) {
	e := wire.NewEncoder(64)
	e.PutUint32(kTreeDigest)
	e.PutString(root)
	resp, cost, err := n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return TreeDigest{}, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return TreeDigest{}, cost, codeToError(code)
	}
	td := TreeDigest{Exists: d.Bool(), Flag: d.Bool(), Ver: d.Uint64(), Root: merkle.GetDigest(d)}
	return td, cost, d.Err()
}

// remoteDirDigests lists the immediate children of a remote directory with
// their subtree digests; ok is false when the directory is missing.
func (n *Node) remoteDirDigests(tc obs.TraceContext, to simnet.Addr, dir string) ([]merkle.Entry, bool, simnet.Cost, error) {
	e := wire.NewEncoder(64)
	e.PutUint32(kDirDigests)
	e.PutString(dir)
	resp, cost, err := n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return nil, false, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return nil, false, cost, codeToError(code)
	}
	ok := d.Bool()
	ents := merkle.GetEntries(d)
	return ents, ok, cost, d.Err()
}

// remoteChunkManifest fetches the chunk manifest of a remote regular file
// plus the remote block index's HAVE bits for a WANT list (CHUNK_MANIFEST).
// A short or missing HAVE reply is normalized to all-false: negotiation is
// an optimization, so "don't know" must read as "ship it".
func (n *Node) remoteChunkManifest(tc obs.TraceContext, to simnet.Addr, phys string, want []cas.Hash) (cas.Manifest, bool, []bool, simnet.Cost, error) {
	e := wire.NewEncoder(64 + len(want)*32)
	e.PutUint32(kChunkManifest)
	e.PutString(phys)
	cas.PutHashes(e, want)
	resp, cost, err := n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return nil, false, nil, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return nil, false, nil, cost, codeToError(code)
	}
	exists := d.Bool()
	man := cas.GetManifest(d)
	have := cas.GetBools(d)
	if d.Err() != nil {
		return nil, false, nil, cost, d.Err()
	}
	if len(have) != len(want) {
		have = make([]bool, len(want))
	}
	return man, exists, have, cost, nil
}

// remoteChunkFetch retrieves blocks by content hash (CHUNK_FETCH); blocks[i]
// is nil for hashes the remote could not serve. The engine verifies every
// returned block against its hash, so no verification happens here.
func (n *Node) remoteChunkFetch(tc obs.TraceContext, to simnet.Addr, phys string, hashes []cas.Hash) ([][]byte, simnet.Cost, error) {
	e := wire.NewEncoder(64 + len(hashes)*32)
	e.PutUint32(kChunkFetch)
	e.PutString(phys)
	cas.PutHashes(e, hashes)
	resp, cost, err := n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return nil, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return nil, cost, codeToError(code)
	}
	cnt := d.ArrayLen()
	blocks := make([][]byte, 0, cnt)
	for i := 0; i < cnt; i++ {
		if d.Bool() {
			blocks = append(blocks, d.Opaque())
		} else {
			blocks = append(blocks, nil)
		}
	}
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	return blocks, cost, nil
}

// replicaSet asks the primary for its current replica holders of a key,
// caching the answer per subtree root. The cache is dropped whenever the
// node's view of membership changes.
func (n *Node) replicaSet(tc obs.TraceContext, primary simnet.Addr, key id.ID, root string) ([]simnet.Addr, simnet.Cost, error) {
	n.mu.Lock()
	if reps, ok := n.replicaCache[root]; ok {
		n.mu.Unlock()
		return reps, 0, nil
	}
	n.mu.Unlock()
	e := wire.NewEncoder(32)
	e.PutUint32(kReplicas)
	e.PutFixedOpaque(key[:])
	resp, cost, err := n.callKosha(tc, primary, e.Bytes())
	if err != nil {
		return nil, cost, n.noteErr(primary, err)
	}
	d := wire.NewDecoder(resp)
	if code := d.Uint32(); code != codeOK {
		return nil, cost, codeToError(code)
	}
	cnt := d.ArrayLen()
	reps := make([]simnet.Addr, 0, cnt)
	for i := 0; i < cnt; i++ {
		reps = append(reps, simnet.Addr(d.String()))
	}
	if d.Err() != nil {
		return nil, cost, d.Err()
	}
	n.mu.Lock()
	n.replicaCache[root] = reps
	n.mu.Unlock()
	return reps, cost, nil
}

// dropRootHandle forgets a cached export root handle. A node that crashed
// and rejoined re-incarnates its store under a new handle generation, so a
// caller observing ErrStale on a cached handle drops it and refetches.
func (n *Node) dropRootHandle(to simnet.Addr) {
	n.mu.Lock()
	delete(n.rootHandles, to)
	n.mu.Unlock()
}

// remoteFSStat fetches FSSTAT from a node's export, refreshing a stale
// cached root handle once.
func (n *Node) remoteFSStat(to simnet.Addr) (nfs.FSStat, simnet.Cost, error) {
	var total simnet.Cost
	for attempt := 0; ; attempt++ {
		rootH, c, err := n.rootHandle(to)
		total = simnet.Seq(total, c)
		if err != nil {
			return nfs.FSStat{}, total, err
		}
		st, c, err := n.nfsc.FSStat(to, rootH)
		total = simnet.Seq(total, c)
		if err != nil && nfs.IsStatus(err, nfs.ErrStale) && attempt == 0 {
			n.dropRootHandle(to)
			continue
		}
		return st, total, err
	}
}

// rootHandle returns (and caches) the NFS root handle of a node's export.
func (n *Node) rootHandle(to simnet.Addr) (nfs.Handle, simnet.Cost, error) {
	n.mu.Lock()
	h, ok := n.rootHandles[to]
	n.mu.Unlock()
	if ok {
		return h, 0, nil
	}
	h, cost, err := n.nfsc.MountRoot(to)
	if err != nil {
		return nfs.Handle{}, cost, err
	}
	n.mu.Lock()
	n.rootHandles[to] = h
	n.mu.Unlock()
	return h, cost, nil
}

// promote asks target to move its replica-area copy to the primary path and
// run read-repair against the current replica set. The changed result
// reports whether the target's state moved — handles resolved before the
// call may then be stale and must be re-resolved.
func (n *Node) promote(tc obs.TraceContext, to simnet.Addr, t Track) (changed bool, cost simnet.Cost, err error) {
	e := wire.NewEncoder(128)
	e.PutUint32(kPromote)
	putTrack(e, t)
	resp, cost, err := n.callKosha(tc, to, e.Bytes())
	if err != nil {
		return false, cost, n.noteErr(to, err)
	}
	d := wire.NewDecoder(resp)
	if cerr := codeToError(d.Uint32()); cerr != nil {
		return false, cost, cerr
	}
	return d.Bool(), cost, nil
}
