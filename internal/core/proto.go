package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/wire"
)

// KoshaService is the simnet service name for koshad-to-koshad RPCs: the
// interposed mutation path (apply-at-primary with replica fan-out, Section
// 4.2) and the replica-maintenance traffic (Section 4.3).
const KoshaService = "kosha"

// kosha service procedure numbers.
const (
	kApply    = 1 // execute an FS op at the primary; primary fans out
	kMirror   = 2 // execute an FS op at a replica; no fan-out
	kStatTree = 3 // summarize a subtree (existence, files, bytes, flag)
	kUntrack  = 4 // drop root-tracking metadata for a removed subtree
	kPromote  = 5 // move a replica-area copy to the primary path
	kReplicas = 6 // report the primary's current replica holders for a key
)

// kosha reply codes beyond NFS statuses.
const (
	codeOK         = 0
	codeNotPrimary = 1 // receiver no longer owns the key; caller re-resolves
	codeNFSBase    = 100
)

// ErrNotPrimary signals that the contacted node is not the current primary
// replica for the key; the caller must re-resolve through the overlay.
var ErrNotPrimary = errors.New("kosha: node is not the primary replica for key")

// procKosha is the pseudo-procedure used when a kosha-service reply carries
// an NFS status (the mutation executed through the store rather than an NFS
// RPC proper).
const procKosha = nfs.Proc(200)

// FSOpKind enumerates the path-based store mutations replicated to mirrors.
type FSOpKind uint32

const (
	FSMkdirAll FSOpKind = iota + 1
	FSMkdir             // strict: fails if the directory exists
	FSCreate
	FSWrite
	FSSetattr
	FSRemove
	FSRmdir
	FSRemoveAll // recursive removal (migration resync, forced deletes)
	FSRename
	FSSymlink
	FSWriteFile // create-or-truncate plus full contents, used by migration
)

func (k FSOpKind) String() string {
	switch k {
	case FSMkdirAll:
		return "mkdirall"
	case FSCreate:
		return "create"
	case FSWrite:
		return "write"
	case FSSetattr:
		return "setattr"
	case FSRemove:
		return "remove"
	case FSRmdir:
		return "rmdir"
	case FSMkdir:
		return "mkdir"
	case FSRemoveAll:
		return "removeall"
	case FSRename:
		return "rename"
	case FSSymlink:
		return "symlink"
	case FSWriteFile:
		return "writefile"
	default:
		return fmt.Sprintf("fsop(%d)", uint32(k))
	}
}

// FSOp is one path-based store mutation. Path/Path2 are physical store
// paths. The same structure is executed at the primary (Apply) and shipped
// verbatim to replicas (Mirror), which keeps replica stores byte-identical
// mirrors of the primary's hierarchy (Section 4.2).
type FSOp struct {
	Kind    FSOpKind
	Path    string
	Path2   string // rename destination
	Data    []byte // write / writefile payload
	Offset  int64
	Mode    uint32
	Excl    bool
	Target  string // symlink target
	SetAttr localfs.SetAttr
	Prune   bool // rmdir/remove: prune empty scaffolding above
}

func putFSOp(e *wire.Encoder, op FSOp) {
	e.PutUint32(uint32(op.Kind))
	e.PutString(op.Path)
	e.PutString(op.Path2)
	e.PutOpaque(op.Data)
	e.PutInt64(op.Offset)
	e.PutUint32(op.Mode)
	e.PutBool(op.Excl)
	e.PutString(op.Target)
	putSetAttr(e, op.SetAttr)
	e.PutBool(op.Prune)
}

func getFSOp(d *wire.Decoder) FSOp {
	var op FSOp
	op.Kind = FSOpKind(d.Uint32())
	op.Path = d.String()
	op.Path2 = d.String()
	op.Data = d.Opaque()
	op.Offset = d.Int64()
	op.Mode = d.Uint32()
	op.Excl = d.Bool()
	op.Target = d.String()
	op.SetAttr = getSetAttr(d)
	op.Prune = d.Bool()
	return op
}

// setattr encoding mirrors internal/nfs's field-presence mask.
const (
	saMode = 1 << iota
	saUID
	saGID
	saSize
	saMtime
	saAtime
)

func putSetAttr(e *wire.Encoder, sa localfs.SetAttr) {
	var mask uint32
	if sa.Mode != nil {
		mask |= saMode
	}
	if sa.UID != nil {
		mask |= saUID
	}
	if sa.GID != nil {
		mask |= saGID
	}
	if sa.Size != nil {
		mask |= saSize
	}
	if sa.Mtime != nil {
		mask |= saMtime
	}
	if sa.Atime != nil {
		mask |= saAtime
	}
	e.PutUint32(mask)
	if sa.Mode != nil {
		e.PutUint32(*sa.Mode)
	}
	if sa.UID != nil {
		e.PutUint32(*sa.UID)
	}
	if sa.GID != nil {
		e.PutUint32(*sa.GID)
	}
	if sa.Size != nil {
		e.PutInt64(*sa.Size)
	}
	if sa.Mtime != nil {
		e.PutInt64(sa.Mtime.UnixNano())
	}
	if sa.Atime != nil {
		e.PutInt64(sa.Atime.UnixNano())
	}
}

func getSetAttr(d *wire.Decoder) localfs.SetAttr {
	var sa localfs.SetAttr
	mask := d.Uint32()
	if mask&saMode != 0 {
		v := d.Uint32()
		sa.Mode = &v
	}
	if mask&saUID != 0 {
		v := d.Uint32()
		sa.UID = &v
	}
	if mask&saGID != 0 {
		v := d.Uint32()
		sa.GID = &v
	}
	if mask&saSize != 0 {
		v := d.Int64()
		sa.Size = &v
	}
	if mask&saMtime != 0 {
		v := time.Unix(0, d.Int64())
		sa.Mtime = &v
	}
	if mask&saAtime != 0 {
		v := time.Unix(0, d.Int64())
		sa.Atime = &v
	}
	return sa
}

// Track carries subtree-ownership metadata alongside mutations so replicas
// know which hierarchies they hold and for which keys, enabling them to act
// when they are promoted to primary (Section 4.4). Ver is the subtree's
// mutation counter: the primary bumps it on every apply, replicas record
// the value shipped with each mirror, and replica maintenance uses it to
// tell a fresh copy from one left behind by an old membership — higher
// version wins.
type Track struct {
	PN   string // controlling placement name; Key(PN) is the DHT key
	Root string // physical path of the replicated hierarchy root
	Link string // for level-1 special links: the link's name ("" if none)
	Ver  uint64 // subtree mutation counter
	Dead bool   // tombstone: the hierarchy was deleted at this version
}

func putTrack(e *wire.Encoder, t Track) {
	e.PutString(t.PN)
	e.PutString(t.Root)
	e.PutString(t.Link)
	e.PutUint64(t.Ver)
	e.PutBool(t.Dead)
}

func getTrack(d *wire.Decoder) Track {
	return Track{PN: d.String(), Root: d.String(), Link: d.String(), Ver: d.Uint64(), Dead: d.Bool()}
}

// applyReq is the body of kApply and kMirror. Primary marks a mirror that
// must land in the receiver's primary namespace rather than the replica
// area: migration pushes to a key's new owner, whose copy must be directly
// servable (Section 4.3.1).
type applyReq struct {
	Key     id.ID // DHT key the primary must own (kApply only)
	Track   Track
	Op      FSOp
	Primary bool
}

func (r *applyReq) encode(e *wire.Encoder) {
	e.PutFixedOpaque(r.Key[:])
	putTrack(e, r.Track)
	putFSOp(e, r.Op)
	e.PutBool(r.Primary)
}

func decodeApplyReq(d *wire.Decoder) applyReq {
	var r applyReq
	d.FixedOpaque(r.Key[:])
	r.Track = getTrack(d)
	r.Op = getFSOp(d)
	r.Primary = d.Bool()
	return r
}

// applyReply carries the result of an Apply/Mirror.
type applyReply struct {
	Code uint32
	Attr localfs.Attr
	FH   nfs.Handle
}

// TreeStat summarizes a replicated hierarchy for cheap divergence checks
// during replica maintenance.
type TreeStat struct {
	Exists bool
	Files  int64
	Dirs   int64
	Bytes  int64
	Flag   bool   // MIGRATION_NOT_COMPLETE present
	Ver    uint64 // the holder's recorded mutation counter for the root
}

// Same reports whether two summaries describe equivalent, settled trees.
func (t TreeStat) Same(o TreeStat) bool {
	return t.Exists == o.Exists && !t.Flag && !o.Flag &&
		t.Files == o.Files && t.Dirs == o.Dirs && t.Bytes == o.Bytes
}

func codeToError(code uint32) error {
	switch code {
	case codeOK:
		return nil
	case codeNotPrimary:
		return ErrNotPrimary
	default:
		return &nfs.Error{Proc: procKosha, Status: nfs.Status(code - codeNFSBase)}
	}
}
