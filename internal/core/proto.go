package core

import (
	"errors"
	"time"

	"repro/internal/id"
	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/repl"
	"repro/internal/wire"
)

// KoshaService is the simnet service name for koshad-to-koshad RPCs: the
// interposed mutation path (apply-at-primary with replica fan-out, Section
// 4.2) and the replica-maintenance traffic (Section 4.3).
const KoshaService = "kosha"

// kosha service procedure numbers.
const (
	kApply      = 1 // execute an FS op at the primary; primary fans out
	kMirror     = 2 // execute an FS op at a replica; no fan-out
	kStatTree   = 3 // summarize a subtree (existence, files, bytes, flag)
	kUntrack    = 4 // drop root-tracking metadata for a removed subtree
	kPromote    = 5 // move a replica-area copy to the primary path
	kReplicas   = 6 // report the primary's current replica holders for a key
	kTreeDigest = 7 // Merkle root digest of a subtree (anti-entropy check)
	kDirDigests = 8 // immediate children of a directory with subtree digests
	// Block-level negotiation (CHUNK_MANIFEST / CHUNK_FETCH): the
	// content-addressed delta-sync procedures layered under the digest
	// exchange. kChunkManifest returns a file's chunk manifest plus HAVE
	// bits for a WANT list; kChunkFetch serves block bytes by content hash.
	kChunkManifest = 9
	kChunkFetch    = 10
)

// kosha reply codes beyond NFS statuses.
const (
	codeOK         = 0
	codeNotPrimary = 1 // receiver no longer owns the key; caller re-resolves
	codeNFSBase    = 100
)

// ErrNotPrimary signals that the contacted node is not the current primary
// replica for the key; the caller must re-resolve through the overlay.
var ErrNotPrimary = errors.New("kosha: node is not the primary replica for key")

// procKosha is the pseudo-procedure used when a kosha-service reply carries
// an NFS status (the mutation executed through the store rather than an NFS
// RPC proper).
const procKosha = nfs.Proc(200)

// The replication data model (mutation records, subtree-ownership tracking,
// tree summaries) lives in internal/repl; core aliases the types so the rest
// of the package — and external consumers — keep their spelling.
type (
	// FSOpKind enumerates the path-based store mutations replicated to
	// mirrors.
	FSOpKind = repl.FSOpKind
	// FSOp is one path-based store mutation (see repl.FSOp).
	FSOp = repl.FSOp
	// Track carries subtree-ownership metadata alongside mutations (see
	// repl.Track).
	Track = repl.Track
	// TreeStat summarizes a replicated hierarchy for cheap divergence
	// checks (see repl.TreeStat).
	TreeStat = repl.TreeStat
	// TreeDigest summarizes a replicated hierarchy by its Merkle root
	// digest (see repl.TreeDigest).
	TreeDigest = repl.TreeDigest
)

const (
	FSMkdirAll   = repl.FSMkdirAll
	FSMkdir      = repl.FSMkdir
	FSCreate     = repl.FSCreate
	FSWrite      = repl.FSWrite
	FSSetattr    = repl.FSSetattr
	FSRemove     = repl.FSRemove
	FSRmdir      = repl.FSRmdir
	FSRemoveAll  = repl.FSRemoveAll
	FSRename     = repl.FSRename
	FSSymlink    = repl.FSSymlink
	FSWriteFile  = repl.FSWriteFile
	FSWriteV     = repl.FSWriteV
	FSChunkWrite = repl.FSChunkWrite
	FSRelink     = repl.FSRelink
)

func putFSOp(e *wire.Encoder, op FSOp) {
	e.PutUint32(uint32(op.Kind))
	e.PutString(op.Path)
	e.PutString(op.Path2)
	e.PutOpaque(op.Data)
	e.PutInt64(op.Offset)
	e.PutUint32(op.Mode)
	e.PutBool(op.Excl)
	e.PutString(op.Target)
	putSetAttr(e, op.SetAttr)
	e.PutBool(op.Prune)
	nfs.PutWriteSpans(e, op.Spans)
	e.PutUint32(uint32(len(op.Chunks)))
	for _, cr := range op.Chunks {
		e.PutDigest(cr.Hash)
		e.PutUint32(cr.Len)
		e.PutBool(cr.Inline)
	}
}

func getFSOp(d *wire.Decoder) FSOp {
	var op FSOp
	op.Kind = FSOpKind(d.Uint32())
	op.Path = d.String()
	op.Path2 = d.String()
	op.Data = d.Opaque()
	op.Offset = d.Int64()
	op.Mode = d.Uint32()
	op.Excl = d.Bool()
	op.Target = d.String()
	op.SetAttr = getSetAttr(d)
	op.Prune = d.Bool()
	op.Spans = nfs.GetWriteSpans(d)
	if n := d.ArrayLen(); n > 0 && d.Err() == nil {
		op.Chunks = make([]repl.ChunkRef, 0, n)
		for i := 0; i < n; i++ {
			op.Chunks = append(op.Chunks, repl.ChunkRef{Hash: d.Digest(), Len: d.Uint32(), Inline: d.Bool()})
		}
	}
	return op
}

// setattr encoding mirrors internal/nfs's field-presence mask.
const (
	saMode = 1 << iota
	saUID
	saGID
	saSize
	saMtime
	saAtime
)

func putSetAttr(e *wire.Encoder, sa localfs.SetAttr) {
	var mask uint32
	if sa.Mode != nil {
		mask |= saMode
	}
	if sa.UID != nil {
		mask |= saUID
	}
	if sa.GID != nil {
		mask |= saGID
	}
	if sa.Size != nil {
		mask |= saSize
	}
	if sa.Mtime != nil {
		mask |= saMtime
	}
	if sa.Atime != nil {
		mask |= saAtime
	}
	e.PutUint32(mask)
	if sa.Mode != nil {
		e.PutUint32(*sa.Mode)
	}
	if sa.UID != nil {
		e.PutUint32(*sa.UID)
	}
	if sa.GID != nil {
		e.PutUint32(*sa.GID)
	}
	if sa.Size != nil {
		e.PutInt64(*sa.Size)
	}
	if sa.Mtime != nil {
		e.PutInt64(sa.Mtime.UnixNano())
	}
	if sa.Atime != nil {
		e.PutInt64(sa.Atime.UnixNano())
	}
}

func getSetAttr(d *wire.Decoder) localfs.SetAttr {
	var sa localfs.SetAttr
	mask := d.Uint32()
	if mask&saMode != 0 {
		v := d.Uint32()
		sa.Mode = &v
	}
	if mask&saUID != 0 {
		v := d.Uint32()
		sa.UID = &v
	}
	if mask&saGID != 0 {
		v := d.Uint32()
		sa.GID = &v
	}
	if mask&saSize != 0 {
		v := d.Int64()
		sa.Size = &v
	}
	if mask&saMtime != 0 {
		v := time.Unix(0, d.Int64())
		sa.Mtime = &v
	}
	if mask&saAtime != 0 {
		v := time.Unix(0, d.Int64())
		sa.Atime = &v
	}
	return sa
}

func putTrack(e *wire.Encoder, t Track) {
	e.PutString(t.PN)
	e.PutString(t.Root)
	e.PutString(t.Link)
	e.PutUint64(t.Ver)
	e.PutBool(t.Dead)
}

func getTrack(d *wire.Decoder) Track {
	return Track{PN: d.String(), Root: d.String(), Link: d.String(), Ver: d.Uint64(), Dead: d.Bool()}
}

// applyReq is the body of kApply and kMirror. Primary marks a mirror that
// must land in the receiver's primary namespace rather than the replica
// area: migration pushes to a key's new owner, whose copy must be directly
// servable (Section 4.3.1).
type applyReq struct {
	Key     id.ID // DHT key the primary must own (kApply only)
	Track   Track
	Op      FSOp
	Primary bool
}

func (r *applyReq) encode(e *wire.Encoder) {
	e.PutFixedOpaque(r.Key[:])
	putTrack(e, r.Track)
	putFSOp(e, r.Op)
	e.PutBool(r.Primary)
}

func decodeApplyReq(d *wire.Decoder) applyReq {
	var r applyReq
	d.FixedOpaque(r.Key[:])
	r.Track = getTrack(d)
	r.Op = getFSOp(d)
	r.Primary = d.Bool()
	return r
}

// applyReply carries the result of an Apply/Mirror.
type applyReply struct {
	Code uint32
	Attr localfs.Attr
	FH   nfs.Handle
}

func codeToError(code uint32) error {
	switch code {
	case codeOK:
		return nil
	case codeNotPrimary:
		return ErrNotPrimary
	default:
		return &nfs.Error{Proc: procKosha, Status: nfs.Status(code - codeNFSBase)}
	}
}
