package core

import (
	"bytes"
	"fmt"
	"repro/internal/obs"
	"testing"

	"repro/internal/simnet"
)

// TestReadFromReplicasSpreadsLoad exercises the Section 4.2 extension:
// with ReadFromReplicas on, repeated reads of one file rotate across the
// primary and its K replica holders.
func TestReadFromReplicasSpreadsLoad(t *testing.T) {
	_, nodes := testCluster(t, 6, 71, Config{Replicas: 2, ReadFromReplicas: true})
	m := nodes[0].NewMount()
	payload := bytes.Repeat([]byte{0x5a}, 8192)
	if _, err := m.WriteFile("/spread/data.bin", payload); err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.LookupPath("/spread/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		data, eof, _, err := m.Read(fvh, 0, len(payload))
		if err != nil || !eof || !bytes.Equal(data, payload) {
			t.Fatalf("read %d: eof=%v err=%v", i, eof, err)
		}
	}
	spread := m.ReadSpread()
	if len(spread) != 3 {
		t.Fatalf("reads hit %d nodes (%v), want primary + 2 replicas", len(spread), spread)
	}
	for addr, cnt := range spread {
		if cnt < 5 {
			t.Fatalf("node %s served only %d of 30 reads: %v", addr, cnt, spread)
		}
	}
}

// TestReadFromReplicasFallsBack verifies that a dead replica never breaks a
// read: the rotation transparently falls back to the primary.
func TestReadFromReplicasFallsBack(t *testing.T) {
	net, nodes := testCluster(t, 6, 72, Config{Replicas: 2, ReadFromReplicas: true})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/fb/f", []byte("still here")); err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.LookupPath("/fb/f")
	if err != nil {
		t.Fatal(err)
	}
	// Kill one replica holder (not the primary, not the client).
	pl, _, _ := nodes[0].ResolvePath("/fb")
	var primary *Node
	for _, nd := range nodes {
		if nd.Addr() == pl.Node {
			primary = nd
		}
	}
	reps := primary.Overlay().ReplicaCandidates(2)
	victim := reps[0].Addr
	if victim == nodes[0].Addr() {
		victim = reps[1].Addr
	}
	net.SetDown(victim, true)

	for i := 0; i < 20; i++ {
		data, _, _, err := m.Read(fvh, 0, 100)
		if err != nil || string(data) != "still here" {
			t.Fatalf("read %d with dead replica: %q err=%v", i, data, err)
		}
	}
}

// TestReadFromReplicasConsistentAfterWrite checks that replica reads never
// return stale data under the synchronous mirror path.
func TestReadFromReplicasConsistentAfterWrite(t *testing.T) {
	_, nodes := testCluster(t, 5, 73, Config{Replicas: 2, ReadFromReplicas: true})
	m := nodes[1].NewMount()
	if _, err := m.WriteFile("/c/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fvh, _, _, err := m.LookupPath("/c/f")
	if err != nil {
		t.Fatal(err)
	}
	for round := 2; round < 10; round++ {
		content := []byte(fmt.Sprintf("v%d", round))
		if _, _, err := m.Write(fvh, 0, content); err != nil {
			t.Fatal(err)
		}
		// Several reads, all rotations must see the newest write.
		for i := 0; i < 6; i++ {
			data, _, _, err := m.Read(fvh, 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(content) {
				t.Fatalf("round %d read %d: got %q want %q", round, i, data, content)
			}
		}
	}
}

// TestReplicaSetRPC covers the kReplicas protocol directly.
func TestReplicaSetRPC(t *testing.T) {
	_, nodes := testCluster(t, 6, 74, Config{Replicas: 3})
	m := nodes[0].NewMount()
	if _, err := m.WriteFile("/rs/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := nodes[0].ResolvePath("/rs")
	reps, _, err := nodes[0].replicaSet(obs.TraceContext{}, pl.Node, Key(pl.PN()), pl.SubtreeRoot())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("replica set size %d, want 3", len(reps))
	}
	for _, r := range reps {
		if r == pl.Node {
			t.Fatal("primary listed as its own replica")
		}
	}
	// Asking a non-primary yields NotPrimary.
	var wrong simnet.Addr
	for _, nd := range nodes {
		if nd.Addr() != pl.Node {
			wrong = nd.Addr()
			break
		}
	}
	if _, _, err := nodes[0].replicaSet(obs.TraceContext{}, wrong, Key(pl.PN()), "/different-root"); err != ErrNotPrimary {
		t.Fatalf("non-primary replicaSet err = %v", err)
	}
}
