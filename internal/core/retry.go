package core

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// retrier wraps a simnet.Caller with a bounded retry budget and capped
// exponential backoff for transient transport failures. It exists so a
// single lost message (a dropped datagram, a blip of asymmetric partition)
// does not surface as ErrUnreachable to koshad's client paths, where
// noteErr/withFailover would falsely mark a live node dead and fail over —
// exactly the churn amplification a lossy link must not cause.
//
// Only simnet.ErrUnreachable is retried: NFS status errors and kosha
// protocol errors are real answers from a live peer. The overlay's own
// liveness probes (pastry Stabilize pings) deliberately bypass the retrier —
// failure detection must keep seeing raw timeouts.
//
// Backoff is charged as simulated cost on the returned Cost, keeping runs
// deterministic; jitter comes from a seeded splitmix64 sequence so a failing
// schedule replays from one logged seed.
type retrier struct {
	net      simnet.Caller
	attempts int           // total tries per call, >= 1
	base     time.Duration // first backoff step
	cap      time.Duration // backoff ceiling
	state    atomic.Uint64 // splitmix64 jitter state, seeded from Config.Seed
	retries  *obs.Counter
	giveups  *obs.Counter
}

// newRetrier builds the node's retrying caller from its config. reg hosts
// the retry counters so they surface in node snapshots and cluster stats.
func newRetrier(net simnet.Caller, cfg Config, reg *obs.Registry) *retrier {
	r := &retrier{
		net:      net,
		attempts: cfg.RetryAttempts,
		base:     cfg.RetryBackoff,
		cap:      cfg.RetryBackoffCap,
		retries:  reg.Counter(obs.CtrRetries),
		giveups:  reg.Counter(obs.CtrGiveups),
	}
	r.state.Store(cfg.Seed ^ 0x9e3779b97f4a7c15)
	return r
}

// splitmix64 advances the jitter state and returns the next value. Atomic so
// concurrent mounts on one node draw from one deterministic sequence without
// a lock (the interleaving under real concurrency is scheduling-dependent,
// but single-goroutine harness runs — the reproduction path — are exact).
func (r *retrier) splitmix64() uint64 {
	z := r.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff returns the pause before retry number try (0-based): exponential
// growth capped at r.cap, with the upper half jittered so retry storms from
// many callers decorrelate.
func (r *retrier) backoff(try int) time.Duration {
	d := r.base
	for i := 0; i < try && d < r.cap; i++ {
		d *= 2
	}
	if d > r.cap {
		d = r.cap
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(r.splitmix64()%uint64(half+1))
}

// Call implements simnet.Caller. Transient unreachability is retried up to
// the budget, each retry preceded by a backoff charged to the returned cost;
// any other outcome (success, handler error, status error) returns
// immediately with the accumulated cost.
func (r *retrier) Call(from, to simnet.Addr, service string, req []byte) ([]byte, simnet.Cost, error) {
	return r.CallCtx(obs.TraceContext{}, from, to, service, req)
}

// CallCtx is Call with trace-context propagation: when ctx is valid and the
// wrapped transport supports it, each attempt (including retries after
// transient unreachability) carries the same context, so a retried exchange
// still records its server span under the originating trace.
func (r *retrier) CallCtx(ctx obs.TraceContext, from, to simnet.Addr, service string, req []byte) ([]byte, simnet.Cost, error) {
	cc, hasCtx := r.net.(simnet.CtxCaller)
	var total simnet.Cost
	for try := 0; ; try++ {
		var resp []byte
		var cost simnet.Cost
		var err error
		if ctx.Valid() && hasCtx {
			resp, cost, err = cc.CallCtx(ctx, from, to, service, req)
		} else {
			resp, cost, err = r.net.Call(from, to, service, req)
		}
		total = simnet.Seq(total, cost)
		if err == nil || !errors.Is(err, simnet.ErrUnreachable) {
			return resp, total, err
		}
		if try >= r.attempts-1 {
			r.giveups.Add(1)
			return resp, total, err
		}
		total = simnet.Seq(total, simnet.Cost(r.backoff(try)))
		r.retries.Add(1)
	}
}
