// Package core implements Kosha itself (Sections 3-5): the koshad loopback
// daemon that interposes on NFS operations for the virtual mount, hashes
// directory names onto the Pastry overlay, forwards NFS RPCs to the node
// that stores each directory, maintains K replicas on leaf-set neighbors,
// and transparently fails over when nodes die.
//
// Layout of each node's contributed store (its /kosha_store): the store's
// root corresponds to the virtual root /kosha. A distributed directory at
// virtual depth i is identified by the chain of placement names of its
// controlling ancestors (pn_1 .. pn_i, each a directory name optionally
// carrying a "#salt" redirection suffix, Section 3.3); its subtree is
// stored on the node owning hash(pn_i), rooted at a single store-level
// directory that encodes the whole chain (see ChainRoot). Files and deeper
// (non-distributed) subdirectories nest below that root under their plain
// names (Section 3.1). The parent directory lists a distributed child via a
// special link — a symlink named `name` whose target is the child's
// placement name — which resolution follows before rehashing, exactly as in
// Section 3.3.
package core

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"path"
	"strings"

	"repro/internal/id"
	"repro/internal/repl"
)

// SaltSep separates a directory name from its redirection salt in placement
// names. Names containing it are reserved by Kosha.
const SaltSep = "#"

// MigrationFlag is the sentinel file created at the root of a replicated
// hierarchy while content migration is in flight (see repl.MigrationFlag).
const MigrationFlag = repl.MigrationFlag

// saltLen is the number of hex digits in a redirection salt.
const saltLen = 8

// Salt derives the deterministic salt for the attempt'th redirection of a
// directory name. The paper concatenates "a random salt"; a deterministic
// per-attempt salt has the same placement properties (uniform rehash) while
// keeping simulations reproducible across the 50-seed sweeps.
func Salt(name string, attempt int) string {
	sum := sha1.Sum([]byte(fmt.Sprintf("%s|salt|%d", name, attempt)))
	return hex.EncodeToString(sum[:])[:saltLen]
}

// Salted returns the placement name for the attempt'th redirection of name;
// attempt 0 is the unsalted name.
func Salted(name string, attempt int) string {
	if attempt == 0 {
		return name
	}
	return name + SaltSep + Salt(name, attempt)
}

// IsSalted reports whether s looks like a salted placement name.
func IsSalted(s string) bool {
	i := strings.LastIndex(s, SaltSep)
	if i < 0 || len(s)-i-1 != saltLen {
		return false
	}
	for _, c := range s[i+1:] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// BaseName strips the salt from a placement name.
func BaseName(pn string) string {
	if IsSalted(pn) {
		return pn[:strings.LastIndex(pn, SaltSep)]
	}
	return pn
}

// Key returns the DHT key for a placement name: "a 128-bit unique key is
// created via a SHA-1 hash of the directory name" (Section 3.1).
func Key(pn string) id.ID { return id.HashKey(pn) }

// SplitVirtual normalizes a virtual path (relative to the mount point) and
// returns its components. "/" yields nil.
func SplitVirtual(vpath string) []string {
	clean := path.Clean("/" + vpath)
	if clean == "/" {
		return nil
	}
	return strings.Split(clean[1:], "/")
}

// JoinVirtual reassembles components into a canonical virtual path.
func JoinVirtual(parts []string) string {
	if len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}

// ControllingDepth returns the depth (1-based component index) of the
// directory that controls placement of a path whose directory chain has
// dirDepth components, under distribution level L: subdirectories deeper
// than L stay on the same node as their depth-L ancestor (Section 3.2).
func ControllingDepth(dirDepth, level int) int {
	if level < 1 {
		level = 1
	}
	if dirDepth < level {
		return dirDepth
	}
	return level
}

// ChainSep is the reserved control byte prefixing every allocated storage
// root (see Node.newStoreRoot): it keeps subtree storage out of virtual
// listings and out of reach of user names, so a hierarchy's data can never
// collide with a parent directory's own content when one node hosts both —
// the parent's entry for a distributed child is always the special link.
const ChainSep = "\x01"

// ChainRoot joins placement names into a deterministic store path; used by
// tests that reason about legacy chain-style layouts.
func ChainRoot(chain []string) string {
	if len(chain) == 0 {
		return "/"
	}
	return "/" + strings.Join(chain, ChainSep)
}

// PhysPath joins a chain root with components below it.
func PhysPath(chain []string, rest []string) string {
	root := ChainRoot(chain)
	if len(rest) == 0 {
		return root
	}
	if root == "/" {
		return "/" + strings.Join(rest, "/")
	}
	return root + "/" + strings.Join(rest, "/")
}

// LinkMarker prefixes every special link's target, distinguishing Kosha's
// placement links from user-created symlinks regardless of how the link is
// later renamed (a renamed link keeps pointing at the original placement
// name, Section 4.1.4).
const LinkMarker = "\x02"

// linkSep separates the placement name from the storage root inside a
// special link's target.
const linkSep = "\x03"

// MakeLinkTarget encodes a special-link target: the placement name (whose
// hash selects the storage node) plus the hierarchy's physical storage
// root on that node. Decoupling the storage root from the name is what
// makes renames cheap AND safe: a rename relocates the root to a fresh
// path (a local rename on the holder), so any resolver cache still mapping
// the old virtual name to the old storage path dangles harmlessly instead
// of aliasing the renamed directory.
func MakeLinkTarget(pn, storeRoot string) string {
	return LinkMarker + pn + linkSep + storeRoot
}

// ParseLinkTarget decodes a symlink target; ok is false for user symlinks.
func ParseLinkTarget(target string) (pn, storeRoot string, ok bool) {
	if !strings.HasPrefix(target, LinkMarker) {
		return "", "", false
	}
	rest := target[len(LinkMarker):]
	i := strings.Index(rest, linkSep)
	if i < 0 {
		return "", "", false
	}
	return rest[:i], rest[i+len(linkSep):], true
}

// RepArea is the reserved store subtree holding replica copies (see
// repl.RepArea).
const RepArea = repl.RepArea

// RepPath translates a primary-relative physical path into the replica
// area.
func RepPath(p string) string { return repl.RepPath(p) }

// ValidName reports whether a name may be created in the virtual file
// system. Besides the usual component rules, names matching the salted
// placement pattern and names containing Kosha's reserved control bytes
// are rejected: they would be ambiguous with redirection artifacts
// (Section 3.3's "#salt" concatenation reserves that shape).
func ValidName(name string) error {
	switch {
	case name == "" || name == "." || name == "..":
		return fmt.Errorf("kosha: invalid name %q", name)
	case len(name) > 255:
		return fmt.Errorf("kosha: name too long (%d bytes)", len(name))
	case strings.ContainsRune(name, '/'):
		return fmt.Errorf("kosha: name %q contains '/'", name)
	case strings.Contains(name, ChainSep) || strings.Contains(name, LinkMarker) || strings.Contains(name, linkSep):
		return fmt.Errorf("kosha: name %q contains a reserved control byte", name)
	case IsSalted(name):
		return fmt.Errorf("kosha: name %q matches the reserved redirection pattern", name)
	case name == MigrationFlag:
		return fmt.Errorf("kosha: name %q is reserved", name)
	case name == RepArea[1:]:
		return fmt.Errorf("kosha: name %q is reserved", name)
	}
	return nil
}

// Hidden reports whether a physical directory entry must be hidden from
// virtual listings: salted placement directories (their special link
// already lists them under the plain name), the migration flag, and the
// replica area.
func Hidden(name string) bool {
	return name == MigrationFlag || name == RepArea[1:] || IsSalted(name) ||
		strings.Contains(name, ChainSep)
}
