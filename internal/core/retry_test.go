package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

func retryRig(t *testing.T) (*simnet.Network, *obs.Registry) {
	t.Helper()
	net := simnet.New(simnet.LAN100)
	net.Register("srv", "echo", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		return req, 0, nil
	})
	net.AddNode("cli")
	return net, obs.NewRegistry()
}

func TestRetrierRecoversFromTransientDrop(t *testing.T) {
	net, reg := retryRig(t)
	var calls atomic.Int64
	net.SetFaults(func(from, to simnet.Addr, service string) simnet.LinkFault {
		// Lose only the first transmission.
		return simnet.LinkFault{Drop: calls.Add(1) == 1}
	})
	r := newRetrier(net, Config{Seed: 7}.withDefaults(), reg)
	resp, cost, err := r.Call("cli", "srv", "echo", []byte("hi"))
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if string(resp) != "hi" {
		t.Fatalf("resp = %q", resp)
	}
	if got := reg.Counter(obs.CtrRetries).Load(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := reg.Counter(obs.CtrGiveups).Load(); got != 0 {
		t.Fatalf("giveups = %d, want 0", got)
	}
	// The first try burned the RPC timeout, plus a backoff before retry two.
	if cost <= net.Timeout {
		t.Fatalf("cost %v should exceed the burned timeout %v", cost, net.Timeout)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	net, reg := retryRig(t)
	var calls atomic.Int64
	net.SetFaults(func(from, to simnet.Addr, service string) simnet.LinkFault {
		calls.Add(1)
		return simnet.LinkFault{Drop: true}
	})
	cfg := Config{Seed: 7, RetryAttempts: 3}.withDefaults()
	r := newRetrier(net, cfg, reg)
	_, _, err := r.Call("cli", "srv", "echo", []byte("hi"))
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("transmissions = %d, want 3 (budget)", got)
	}
	if got := reg.Counter(obs.CtrGiveups).Load(); got != 1 {
		t.Fatalf("giveups = %d, want 1", got)
	}
}

func TestRetrierDoesNotRetryRealAnswers(t *testing.T) {
	net, reg := retryRig(t)
	boom := errors.New("handler says no")
	var served atomic.Int64
	net.Register("srv", "fail", func(from simnet.Addr, req []byte) ([]byte, simnet.Cost, error) {
		served.Add(1)
		return nil, 0, boom
	})
	r := newRetrier(net, Config{}.withDefaults(), reg)
	_, _, err := r.Call("cli", "srv", "fail", nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if served.Load() != 1 {
		t.Fatalf("handler ran %d times; errors from a live peer must not be retried", served.Load())
	}
	if reg.Counter(obs.CtrRetries).Load() != 0 {
		t.Fatal("retries counted for a non-transient error")
	}
}

func TestRetrierDisabled(t *testing.T) {
	net, reg := retryRig(t)
	var calls atomic.Int64
	net.SetFaults(func(from, to simnet.Addr, service string) simnet.LinkFault {
		calls.Add(1)
		return simnet.LinkFault{Drop: true}
	})
	r := newRetrier(net, Config{RetryAttempts: -1}.withDefaults(), reg)
	if _, _, err := r.Call("cli", "srv", "echo", nil); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("transmissions = %d, want 1 when retries are disabled", calls.Load())
	}
}

// Backoff sequences are a pure function of the seed: same seed, same pauses —
// the property that makes chaos schedules replayable from one logged value.
func TestRetrierBackoffDeterministic(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		_, reg := retryRig(t)
		r := newRetrier(nil, Config{Seed: seed}.withDefaults(), reg)
		var out []time.Duration
		for try := 0; try < 6; try++ {
			out = append(out, r.backoff(try))
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("try %d: %v != %v for identical seeds", i, a[i], b[i])
		}
	}
	cfg := Config{}.withDefaults()
	for i, d := range a {
		if d < cfg.RetryBackoff/2 || d > cfg.RetryBackoffCap {
			t.Fatalf("try %d: backoff %v outside [%v/2, %v]", i, d, cfg.RetryBackoff, cfg.RetryBackoffCap)
		}
	}
}
