package core

import (
	"errors"
	"fmt"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/localfs"
	"repro/internal/nfs"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// VH is a virtual file handle: the identifier koshad hands the local NFS
// client in place of a real handle (Section 4.1.2). The indirection lets
// koshad transparently rebind a handle to a replica when the primary fails.
type VH uint64

// RootVH is the virtual handle of the mount root (/kosha).
const RootVH VH = 1

// ventry is one row of the virtual-handle table: virtual handle → full
// path, storage node, and real handle (Section 4.1.2 stores exactly this).
// Rows are immutable once published in the table; rebinding installs a
// fresh row (see vtable).
type ventry struct {
	vpath    string
	kind     localfs.FileType
	node     simnet.Addr
	fh       nfs.Handle
	physPath string
	pn       string // controlling placement name
	root     string // physical subtree root of the replicated hierarchy
	place    Place  // directories: resolved place for child operations
	cached   bool   // served from the name cache, not a fresh resolution
}

// DirEntry is one row of a virtual directory listing.
type DirEntry struct {
	Name string
	Type localfs.FileType
}

// Mount is the client view of the Kosha file system through one node's
// koshad, corresponding to the virtual mount point /kosha (Figure 1). All
// operations return the simulated cost including the interposition constant
// I, overlay lookups, and forwarded NFS RPCs. A Mount is safe for concurrent
// use by multiple goroutines; its hot-path state — the virtual-handle table
// and the metadata caches — is sharded so operations on different files do
// not serialize on a global mutex (see vtable and metaCache).
type Mount struct {
	n *Node

	vt vtable // sharded virtual-handle table

	rr        atomic.Uint64 // round-robin cursor for replica reads
	readsFrom sync.Map      // simnet.Addr → *atomic.Int64 read counters

	// Streaming state (readahead windows, write-back buffers), keyed by
	// virtual handle. Populated only when Config enables streaming, so the
	// default write-through/stop-and-wait paths pay one empty-map lookup at
	// most.
	smu     sync.Mutex
	streams map[VH]*stream

	// Client-side metadata caches; the clock is a Mount field so TTL tests
	// can warp time per mount.
	now  func() time.Time // injectable clock for TTL tests
	meta metaCache        // sharded attribute + name caches

	// Ring-walk cache for root listings: enumerating the live membership is
	// O(ring) leaf-set RPCs, so the mount memoizes the node list briefly
	// (Config.RingCacheTTL), keyed on the node's ring epoch so overlay
	// membership events (joins, departures, revivals) invalidate it ahead of
	// the TTL.
	ringMu    sync.Mutex
	ringNodes []simnet.Addr
	ringEpoch uint64
	ringAt    time.Time
}

// NewMount attaches a client to the node's koshad.
func (n *Node) NewMount() *Mount {
	m := &Mount{
		n:       n,
		streams: make(map[VH]*stream),
		now:     time.Now,
	}
	m.meta.init()
	m.vt.init(&ventry{
		vpath: "/",
		kind:  localfs.TypeDir,
		place: Place{VRoot: true, Store: "/"},
	})
	return m
}

// --- client-side metadata caches (cache stage of the pipeline) ---

func (m *Mount) cacheAttr(vpath string, a localfs.Attr) {
	if m.n.cfg.AttrCacheTTL <= 0 {
		return
	}
	m.meta.putAttr(vpath, a, m.now())
}

func (m *Mount) cachedAttr(vpath string) (localfs.Attr, bool) {
	ttl := m.n.cfg.AttrCacheTTL
	if ttl <= 0 {
		return localfs.Attr{}, false
	}
	return m.meta.getAttr(vpath, m.now(), ttl)
}

func (m *Mount) invalAttr(vpath string) {
	m.meta.dropAttr(vpath)
}

// dnlcPut caches a resolved child entry and its attributes.
func (m *Mount) dnlcPut(ve ventry, a localfs.Attr) {
	if m.n.cfg.NameCacheTTL > 0 {
		m.meta.putName(ve, a, m.now())
	}
	m.cacheAttr(ve.vpath, a)
}

func (m *Mount) dnlcGet(vpath string) (ventry, localfs.Attr, bool) {
	ttl := m.n.cfg.NameCacheTTL
	if ttl <= 0 {
		return ventry{}, localfs.Attr{}, false
	}
	return m.meta.getName(vpath, m.now(), ttl)
}

// dropMetaUnder invalidates cached metadata for vpath and everything below
// it (rename/remove/failover relocate whole subtrees).
func (m *Mount) dropMetaUnder(vpath string) {
	m.meta.dropUnder(vpath)
}

// Root returns the mount's root virtual handle.
func (m *Mount) Root() VH { return RootVH }

// ErrBadHandle is returned for unknown virtual handles.
var ErrBadHandle = errors.New("kosha: unknown virtual handle")

func (m *Mount) entry(vh VH) (*ventry, error) { return m.vt.get(vh) }

func (m *Mount) insert(de *ventry) VH { return m.vt.insert(de) }

func (m *Mount) replace(vh VH, de *ventry) { m.vt.set(vh, de) }

// forget drops a virtual handle (e.g. after unlink). The root handle is
// permanent. Dirty write-back data is flushed best-effort first — internal
// helpers (WriteFile) drop handles on return and must not lose buffered
// bytes; Close is the path where flush errors surface.
func (m *Mount) forget(vh VH) {
	if vh == RootVH {
		return
	}
	if m.n.cfg.WriteBackBytes > 0 {
		m.flushVH(nil, vh) //nolint:errcheck // best-effort; Close reports
	}
	m.cancelStream(vh)
	m.vt.delete(vh)
}

// Forget releases a virtual handle the client no longer references,
// mirroring the kernel's FORGET upcall; without it long-lived mounts would
// pin every handle ever issued. The root handle is permanent.
func (m *Mount) Forget(vh VH) { m.forget(vh) }

// Lookup resolves name within the directory dir, returning a new virtual
// handle (Section 4.1.3). Below the distribution level the parent's real
// handle answers with a single forwarded LOOKUP; at distributed levels the
// resolver (hash + route + special links) locates the child's node.
func (m *Mount) Lookup(dir VH, name string) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.beginAt(obs.OpcLookup, dir, name)
	vh, attr, cost, err := m.lookup(o.tr, dir, name)
	o.done(cost, err)
	return vh, attr, cost, err
}

func (m *Mount) lookup(tr *obs.Trace, dir VH, name string) (VH, localfs.Attr, simnet.Cost, error) {
	de, err := m.entry(dir)
	if err != nil {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, err
	}
	if de.kind != localfs.TypeDir {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, &nfs.Error{Proc: nfs.ProcLookup, Status: nfs.ErrNotDir}
	}
	if !m.distributedAt(de) {
		// Name-cache hit: the child was resolved (or pre-warmed by
		// READDIRPLUS) within the TTL; no network at all. The entry must
		// belong to the same hierarchy incarnation as the parent handle in
		// use — re-created directories get fresh storage roots, so a root
		// mismatch exposes entries cached before the re-creation. A stale
		// hit that slips through self-heals: handle ops return
		// NFS3ERR_STALE and path ops NFS3ERR_NOENT, both of which the
		// failover path retries against a fresh resolution.
		if ve, a, ok := m.dnlcGet(path.Join(de.vpath, name)); ok &&
			ve.node == de.node && ve.root == de.root {
			ve.cached = true
			return m.insert(&ve), a, m.n.cfg.InterposeCost, nil
		}
		var out VH
		var attr localfs.Attr
		cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
			fh, a, c, err := m.n.nfsT(tr).Lookup(de.node, de.fh, name)
			if err != nil {
				return c, err
			}
			attr = a
			childPlace := de.place
			childPlace.Rest = append(append([]string(nil), de.place.Rest...), name)
			ve := ventry{
				vpath:    path.Join(de.vpath, name),
				kind:     a.Type,
				node:     de.node,
				fh:       fh,
				physPath: path.Join(de.physPath, name),
				pn:       de.pn,
				root:     de.root,
				place:    childPlace,
			}
			m.dnlcPut(ve, a)
			out = m.insert(&ve)
			return c, nil
		})
		return out, attr, cost, err
	}

	total := m.n.cfg.InterposeCost
	child, attr, cost, err := m.materializeRetry(tr, path.Join(de.vpath, name))
	total = simnet.Seq(total, cost)
	if err != nil {
		return 0, localfs.Attr{}, total, err
	}
	return m.insert(child), attr, total, nil
}

// Getattr fetches attributes for a virtual handle. Within the attribute
// cache's TTL a hit costs only the interposition constant — no RPC — just
// as the kernel NFS client's acregmin/acdirmin window the paper assumes.
func (m *Mount) Getattr(vh VH) (localfs.Attr, simnet.Cost, error) {
	o := m.begin(obs.OpcGetattr, m.vpathOf(vh))
	attr, cost, err := m.getattr(o.tr, vh)
	o.done(cost, err)
	return attr, cost, err
}

func (m *Mount) getattr(tr *obs.Trace, vh VH) (localfs.Attr, simnet.Cost, error) {
	if vh == RootVH {
		return localfs.Attr{Ino: 1, Type: localfs.TypeDir, Mode: 0o755, Nlink: 2}, m.n.cfg.InterposeCost, nil
	}
	if de, err := m.entry(vh); err == nil {
		if a, ok := m.cachedAttr(de.vpath); ok {
			return a, m.n.cfg.InterposeCost, nil
		}
	}
	// The fetched attributes must reflect buffered write-back data (size,
	// mtime), so dirty spans land first.
	fcost, ferr := m.flushVH(tr, vh)
	if ferr != nil {
		return localfs.Attr{}, fcost, ferr
	}
	var attr localfs.Attr
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		a, c, err := m.n.nfsT(tr).Getattr(de.node, de.fh)
		if err == nil {
			attr = a
			m.cacheAttr(de.vpath, a)
		}
		return c, err
	})
	return attr, simnet.Seq(fcost, cost), err
}

// Setattr updates attributes through the primary, which mirrors to replicas.
func (m *Mount) Setattr(vh VH, sa localfs.SetAttr) (localfs.Attr, simnet.Cost, error) {
	o := m.begin(obs.OpcSetattr, m.vpathOf(vh))
	attr, cost, err := m.setattr(o.tr, vh, sa)
	o.done(cost, err)
	return attr, cost, err
}

func (m *Mount) setattr(tr *obs.Trace, vh VH, sa localfs.SetAttr) (localfs.Attr, simnet.Cost, error) {
	// Buffered writes precede the attribute change in program order.
	fcost, ferr := m.flushVH(tr, vh)
	if ferr != nil {
		return localfs.Attr{}, fcost, ferr
	}
	var attr localfs.Attr
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		a, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSSetattr, Path: de.physPath, SetAttr: sa})
		if err == nil {
			attr = a
			m.invalAttr(de.vpath)
		}
		return c, err
	})
	return attr, simnet.Seq(fcost, cost), err
}

// Read returns up to count bytes of the file at offset. With
// Config.ReadFromReplicas enabled, reads rotate across the primary and its
// replica holders (the Section 4.2 optimization); any replica-side failure
// falls back to the primary path transparently.
func (m *Mount) Read(vh VH, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	o := m.begin(obs.OpcRead, m.vpathOf(vh))
	data, eof, cost, err := m.read(o.tr, vh, offset, count)
	o.done(cost, err)
	return data, eof, cost, err
}

func (m *Mount) read(tr *obs.Trace, vh VH, offset int64, count int) ([]byte, bool, simnet.Cost, error) {
	// Read-your-writes: this handle's buffered write-back data must land
	// before bytes are served back.
	fcost, ferr := m.flushVH(tr, vh)
	if ferr != nil {
		return nil, false, fcost, ferr
	}
	if m.n.cfg.ReadaheadChunks > 0 {
		data, eof, cost, err := m.readAhead(tr, vh, offset, count)
		return data, eof, simnet.Seq(fcost, cost), err
	}
	var data []byte
	var eof bool
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		if m.n.cfg.ReadFromReplicas && m.n.cfg.Replicas > 0 && de.kind == localfs.TypeRegular {
			if d, e, c, ok := m.readViaReplica(tr, de, offset, count); ok {
				data, eof = d, e
				return c, nil
			}
		}
		d, e, c, err := m.n.nfsT(tr).Read(de.node, de.fh, offset, count)
		if err == nil {
			data, eof = d, e
			m.countRead(de.node)
			if de.node == m.n.addr {
				c = simnet.Seq(c, m.n.cfg.LoopbackXfer(len(d)))
			}
		}
		return c, err
	})
	return data, eof, simnet.Seq(fcost, cost), err
}

// readViaReplica attempts one read against a rotating replica holder;
// ok=false means the caller should use the primary.
func (m *Mount) readViaReplica(tr *obs.Trace, de *ventry, offset int64, count int) ([]byte, bool, simnet.Cost, bool) {
	reps, total, err := m.n.replicaSet(tr.Ctx(), de.node, Key(de.pn), de.root)
	if err != nil || len(reps) == 0 {
		return nil, false, total, false
	}
	idx := (m.rr.Add(1) - 1) % uint64(len(reps)+1)
	if idx == 0 {
		return nil, false, total, false // the primary's turn
	}
	rep := reps[idx-1]
	fh, _, c, err := m.n.remoteLookupPath(tr.Ctx(), rep, RepPath(de.physPath))
	total = simnet.Seq(total, c)
	if err != nil {
		return nil, false, total, false
	}
	d, e, c, err := m.n.nfsT(tr).Read(rep, fh, offset, count)
	total = simnet.Seq(total, c)
	if err != nil {
		return nil, false, total, false
	}
	m.countRead(rep)
	tr.SetServedBy(string(rep))
	if rep == m.n.addr {
		total = simnet.Seq(total, m.n.cfg.LoopbackXfer(len(d)))
	}
	return d, e, total, true
}

// countRead bumps the per-node read counter. Lock-free on the steady path:
// concurrent reads against different (or the same) nodes no longer
// serialize on a mount-global mutex.
func (m *Mount) countRead(addr simnet.Addr) {
	c, ok := m.readsFrom.Load(addr)
	if !ok {
		c, _ = m.readsFrom.LoadOrStore(addr, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// ReadSpread reports how many reads this mount served from each node,
// for observability and the replica-read ablation. The returned map is a
// copy the caller owns.
func (m *Mount) ReadSpread() map[simnet.Addr]int64 {
	out := make(map[simnet.Addr]int64)
	m.readsFrom.Range(func(k, v any) bool {
		out[k.(simnet.Addr)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Write stores data at offset through the primary, which synchronously
// mirrors the write to the K replicas (Section 4.2).
func (m *Mount) Write(vh VH, offset int64, data []byte) (int, simnet.Cost, error) {
	o := m.begin(obs.OpcWrite, m.vpathOf(vh))
	n, cost, err := m.write(o.tr, vh, offset, data)
	o.done(cost, err)
	return n, cost, err
}

func (m *Mount) write(tr *obs.Trace, vh VH, offset int64, data []byte) (int, simnet.Cost, error) {
	if m.n.cfg.WriteBackBytes > 0 {
		if n, cost, handled, err := m.writeBuffered(tr, vh, offset, data); handled {
			return n, cost, err
		}
	}
	n := 0
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		_, _, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSWrite, Path: de.physPath, Offset: offset, Data: data})
		if err == nil {
			n = len(data)
			m.invalAttr(de.vpath)
			if de.node == m.n.addr {
				c = simnet.Seq(c, m.n.cfg.LoopbackXfer(len(data)))
			}
		}
		return c, err
	})
	return n, cost, err
}

// Create makes a regular file in dir (Section 4.1.4): the primary for the
// parent directory creates the primary replica and returns its handle.
func (m *Mount) Create(dir VH, name string, mode uint32, exclusive bool) (VH, localfs.Attr, simnet.Cost, error) {
	o := m.beginAt(obs.OpcCreate, dir, name)
	vh, attr, cost, err := m.create(o.tr, dir, name, mode, exclusive)
	o.done(cost, err)
	return vh, attr, cost, err
}

func (m *Mount) create(tr *obs.Trace, dir VH, name string, mode uint32, exclusive bool) (VH, localfs.Attr, simnet.Cost, error) {
	var out VH
	var attr localfs.Attr
	if err := ValidName(name); err != nil {
		return 0, localfs.Attr{}, m.n.cfg.InterposeCost, err
	}
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.place.VRoot {
			return 0, ErrRootOnlyDirs
		}
		if de.kind != localfs.TypeDir {
			return 0, &nfs.Error{Proc: nfs.ProcCreate, Status: nfs.ErrNotDir}
		}
		phys := path.Join(de.physPath, name)
		a, fh, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSCreate, Path: phys, Mode: mode, Excl: exclusive})
		if err != nil {
			return c, err
		}
		attr = a
		m.dropMetaUnder(path.Join(de.vpath, name))
		m.invalAttr(de.vpath)
		out = m.insert(&ventry{
			vpath:    path.Join(de.vpath, name),
			kind:     localfs.TypeRegular,
			node:     de.node,
			fh:       fh,
			physPath: phys,
			pn:       de.pn,
			root:     de.root,
			place:    de.place,
		})
		return c, nil
	})
	return out, attr, cost, err
}

// Symlink creates a user symbolic link in dir. Targets beginning with
// Kosha's reserved link marker are rejected to keep user symlinks
// distinguishable from placement links.
func (m *Mount) Symlink(dir VH, name, target string) (VH, simnet.Cost, error) {
	o := m.beginAt(obs.OpcSymlink, dir, name)
	vh, cost, err := m.symlink(o.tr, dir, name, target)
	o.done(cost, err)
	return vh, cost, err
}

func (m *Mount) symlink(tr *obs.Trace, dir VH, name, target string) (VH, simnet.Cost, error) {
	if err := ValidName(name); err != nil {
		return 0, m.n.cfg.InterposeCost, err
	}
	if _, _, ok := ParseLinkTarget(target); ok {
		return 0, m.n.cfg.InterposeCost, fmt.Errorf("kosha: symlink target begins with a reserved marker")
	}
	var out VH
	cost, err := m.withFailover(tr, dir, func(de *ventry) (simnet.Cost, error) {
		if de.place.VRoot {
			return 0, ErrRootOnlyDirs
		}
		phys := path.Join(de.physPath, name)
		_, fh, c, err := m.n.apply(tr, de.node, Key(de.pn), Track{PN: de.pn, Root: de.root},
			FSOp{Kind: FSSymlink, Path: phys, Target: target})
		if err != nil {
			return c, err
		}
		m.dropMetaUnder(path.Join(de.vpath, name))
		m.invalAttr(de.vpath)
		out = m.insert(&ventry{
			vpath:    path.Join(de.vpath, name),
			kind:     localfs.TypeSymlink,
			node:     de.node,
			fh:       fh,
			physPath: phys,
			pn:       de.pn,
			root:     de.root,
			place:    de.place,
		})
		return c, nil
	})
	return out, cost, err
}

// Readlink reads a user symlink's target.
func (m *Mount) Readlink(vh VH) (string, simnet.Cost, error) {
	o := m.begin(obs.OpcReadlink, m.vpathOf(vh))
	target, cost, err := m.readlink(o.tr, vh)
	o.done(cost, err)
	return target, cost, err
}

func (m *Mount) readlink(tr *obs.Trace, vh VH) (string, simnet.Cost, error) {
	var target string
	cost, err := m.withFailover(tr, vh, func(de *ventry) (simnet.Cost, error) {
		t, c, err := m.n.nfsT(tr).Readlink(de.node, de.fh)
		if err == nil {
			target = t
		}
		return c, err
	})
	return target, cost, err
}
